// src/obs: the unified metrics registry (sharded lock-free counters /
// gauges / log2 histograms) and the deterministic span tracer. The load-
// bearing properties: multi-thread increments aggregate exactly after a
// join (exited threads' shards retained), aggregation concurrent with
// recording is data-race-free (CI runs this under TSan), export order is
// registration order, disabled endpoints record nothing, and a traced
// cluster scenario exports a byte-identical Chrome trace across runs.

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "sim/scenario.h"

namespace p2drm {
namespace obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(RegistryTest, RegistrationIsIdempotentAndExportOrderIsStable) {
  Registry reg;
  Registry::Id b = reg.Counter("b");
  Registry::Id a = reg.Counter("a");
  Registry::Id g = reg.Gauge("g");
  EXPECT_EQ(reg.Counter("b"), b);  // same (name, kind) -> same id
  EXPECT_EQ(reg.Gauge("g"), g);
  EXPECT_NE(a, b);

  auto values = reg.Aggregate();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].name, "b");  // first-registration order, not sorted
  EXPECT_EQ(values[1].name, "a");
  EXPECT_EQ(values[2].name, "g");
  EXPECT_EQ(values[2].kind, Registry::Kind::kGauge);
}

TEST(RegistryTest, MultiThreadCounterSumsExactlyAfterJoin) {
  Registry reg;
  Registry::Id ctr = reg.Counter("ctr");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, ctr] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) reg.Add(ctr);
      reg.Add(ctr, 5);
    });
  }
  for (auto& t : threads) t.join();
  // Every thread has exited; their shards must still aggregate.
  auto values = reg.Aggregate();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].counter, kThreads * (kPerThread + 5));
}

TEST(RegistryTest, GaugeSumsSignedDeltasAcrossThreads) {
  Registry reg;
  Registry::Id depth = reg.Gauge("depth");
  reg.GaugeAdd(depth, 10);
  std::thread t([&reg, depth] { reg.GaugeAdd(depth, -7); });
  t.join();
  EXPECT_EQ(reg.Aggregate()[0].gauge, 3);
}

TEST(RegistryTest, AggregateConcurrentWithRecordingIsMonotone) {
  // TSan target: Aggregate() while another thread increments must be
  // race-free, and a monotonically incremented counter must read
  // monotonically (each slot a point-in-time lower bound).
  Registry reg;
  Registry::Id ctr = reg.Counter("ctr");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) reg.Add(ctr);
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t now = reg.Aggregate()[0].counter;
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GE(reg.Aggregate()[0].counter, last);
}

TEST(RegistryTest, Log2BucketsAndUpperBounds) {
  EXPECT_EQ(Registry::BucketOf(0), 0u);
  EXPECT_EQ(Registry::BucketOf(1), 1u);
  EXPECT_EQ(Registry::BucketOf(2), 2u);
  EXPECT_EQ(Registry::BucketOf(3), 2u);
  EXPECT_EQ(Registry::BucketOf(4), 3u);
  EXPECT_EQ(Registry::BucketOf(1023), 10u);
  EXPECT_EQ(Registry::BucketOf(1024), 11u);
  // Everything wider than the table collapses into the last bucket.
  EXPECT_EQ(Registry::BucketOf(~std::uint64_t{0}),
            Registry::kHistogramBuckets - 1);
  EXPECT_EQ(Registry::BucketUpperBound(0), 0u);
  EXPECT_EQ(Registry::BucketUpperBound(1), 1u);
  EXPECT_EQ(Registry::BucketUpperBound(10), 1023u);
  // Consistency: a value is never above its own bucket's upper bound.
  for (std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 65536ull}) {
    EXPECT_LE(v, Registry::BucketUpperBound(Registry::BucketOf(v)));
  }
}

TEST(RegistryTest, HistogramCountSumAndQuantiles) {
  Registry reg;
  Registry::Id h = reg.Histogram("lat");
  // 90 samples in bucket 7 (64..127), 10 in bucket 11 (1024..2047).
  for (int i = 0; i < 90; ++i) reg.Observe(h, 100);
  for (int i = 0; i < 10; ++i) reg.Observe(h, 2000);
  auto values = reg.Aggregate();
  ASSERT_EQ(values.size(), 1u);
  const auto& hist = values[0].hist;
  EXPECT_EQ(values[0].kind, Registry::Kind::kHistogram);
  EXPECT_EQ(hist.count, 100u);
  EXPECT_EQ(hist.sum, 90u * 100 + 10u * 2000);
  EXPECT_EQ(hist.buckets[Registry::BucketOf(100)], 90u);
  EXPECT_EQ(hist.buckets[Registry::BucketOf(2000)], 10u);
  // Quantiles are bucket upper bounds: p50 lands in the 100s bucket,
  // p99 in the 2000s bucket.
  EXPECT_EQ(hist.Quantile(0.5), Registry::BucketUpperBound(7));
  EXPECT_EQ(hist.Quantile(0.99), Registry::BucketUpperBound(11));
  EXPECT_EQ(hist.Max(), Registry::BucketUpperBound(11));
}

TEST(RegistryTest, EmptyHistogramQuantilesAreZero) {
  Registry reg;
  reg.Histogram("empty");
  auto values = reg.Aggregate();
  const auto& hist = values[0].hist;
  EXPECT_EQ(hist.count, 0u);
  EXPECT_EQ(hist.Quantile(0.5), 0u);
  EXPECT_EQ(hist.Max(), 0u);
}

TEST(RegistryTest, DisabledRegistryRecordsNothing) {
  Registry reg;
  Registry::Id ctr = reg.Counter("ctr");
  Registry::Id h = reg.Histogram("h");
  reg.set_enabled(false);
  reg.Add(ctr, 100);
  reg.Observe(h, 42);
  EXPECT_EQ(reg.Aggregate()[0].counter, 0u);
  EXPECT_EQ(reg.Aggregate()[1].hist.count, 0u);
  reg.set_enabled(true);
  reg.Add(ctr);  // re-enabling resumes recording on the same ids
  EXPECT_EQ(reg.Aggregate()[0].counter, 1u);
}

// ------------------------------------------------------------------ tracer

TEST(TracerTest, RecordsEventsAndSpansNullSafe) {
  Tracer tracer;
  tracer.Begin("work");
  tracer.Instant("tick", "n", 3);
  tracer.End("work");
  { Span span(&tracer, "scoped"); }
  { Span null_span(nullptr, "ignored"); }  // must not crash
  EXPECT_TRUE(tracer.Contains("work"));
  EXPECT_TRUE(tracer.Contains("tick"));
  EXPECT_TRUE(tracer.Contains("scoped"));
  EXPECT_FALSE(tracer.Contains("ignored"));
  EXPECT_EQ(tracer.event_count(), 5u);  // B + i + E + span's B/E
  EXPECT_EQ(tracer.dropped_count(), 0u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  tracer.Begin("work");
  { Span span(&tracer, "scoped"); }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, RingDropsOldestPastCapacity) {
  Tracer tracer(/*ring_capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) tracer.Instant("tick", "i", i);
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped_count(), 12u);
}

TEST(TracerTest, ExportsChromeTraceEventsWithInjectedClock) {
  Tracer tracer;
  std::uint64_t fake_now = 100;
  tracer.set_time_source([&fake_now] { return fake_now; });
  tracer.SetThreadName("test-thread");
  tracer.Begin("span");
  fake_now = 250;
  tracer.End("span");
  tracer.Instant("mark", "v", 7);
  tracer.set_time_source(nullptr);

  std::string payload;
  bool first = true;
  tracer.AppendChromeTraceEvents(&payload, /*pid=*/3, "proc", &first);
  EXPECT_NE(payload.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(payload.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(payload.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(payload.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(payload.find("\"ts\":250"), std::string::npos);
  EXPECT_NE(payload.find("\"args\":{\"v\":7}"), std::string::npos);
  EXPECT_NE(payload.find("process_name"), std::string::npos);
  EXPECT_NE(payload.find("\"proc\""), std::string::npos);
  EXPECT_NE(payload.find("test-thread"), std::string::npos);
  EXPECT_NE(payload.find("\"pid\":3"), std::string::npos);
}

// --------------------------------------------- scenario-level determinism

/// A small replica-failover scenario; returns the exported trace payload
/// plus the aggregated registry rendered as "name=value" lines.
std::string TraceScenarioOnce(const std::string& journal_prefix) {
  sim::ScenarioConfig cfg;
  cfg.name = "obs_failover";
  cfg.seed = 7;
  cfg.num_users = 60;
  cfg.total_requests = 1200;
  cfg.batch_size = 4;
  cfg.mean_think_us = 1'000'000;
  cfg.retry_hint_ms = 100;
  cfg.overload_max_attempts = 6;
  cfg.cluster.enabled = true;
  cfg.cluster.replica_count = 3;
  cfg.cluster.shards_per_replica = 2;
  cfg.cluster.journal_prefix = journal_prefix;
  cfg.cluster.crash_at_us = 400'000;
  cfg.cluster.crash_replica = 1;
  cfg.cluster.failover_detect_us = 200'000;

  Tracer tracer;
  Registry registry;
  cfg.obs.tracer = &tracer;
  cfg.obs.registry = &registry;
  sim::ScenarioResult r = sim::ScenarioDriver(cfg).Run();
  EXPECT_EQ(r.cluster.double_spends, 0u);
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.Contains("cluster.crash"));
  EXPECT_TRUE(tracer.Contains("recovery_gate"));
  EXPECT_TRUE(tracer.Contains("journal_replay"));

  std::string out;
  bool first = true;
  tracer.AppendChromeTraceEvents(&out, 0, cfg.name, &first);
  for (const auto& v : registry.Aggregate()) {
    out += "\n" + v.name + "=" +
           std::to_string(v.kind == Registry::Kind::kGauge
                              ? static_cast<std::uint64_t>(v.gauge)
                              : v.counter);
  }
  return out;
}

TEST(ObsScenarioTest, TracedClusterScenarioIsByteIdenticalAcrossRuns) {
  const std::string prefix = ::testing::TempDir() + "/obs_failover.journal";
  std::string run1 = TraceScenarioOnce(prefix);
  std::string run2 = TraceScenarioOnce(prefix);
  EXPECT_EQ(run1, run2);
  // The failover counters really fired.
  EXPECT_NE(run1.find("cluster.crashes=1"), std::string::npos);
  // Every replica runtime's queue drained (gauges deterministic at 0).
  EXPECT_NE(run1.find("cluster.r0.queue_depth=0"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace p2drm
