// Repudiative Information Retrieval: query construction, metering,
// repudiation strength.

#include "rir/rir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "crypto/drbg.h"

namespace p2drm {
namespace rir {
namespace {

std::vector<std::vector<std::uint8_t>> MakeCatalog(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> catalog(n);
  for (std::size_t i = 0; i < n; ++i) {
    catalog[i].assign(8, static_cast<std::uint8_t>(i));
  }
  return catalog;
}

TEST(RirServer, ServesRequestedItemsInOrder) {
  RirServer server(MakeCatalog(10));
  auto out = server.Query({3, 7, 1});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0][0], 3);
  EXPECT_EQ(out[1][0], 7);
  EXPECT_EQ(out[2][0], 1);
}

TEST(RirServer, MetersPerItemAndPerQuery) {
  RirServer server(MakeCatalog(10));
  server.Query({1, 2, 3});
  server.Query({4});
  EXPECT_EQ(server.ItemsServed(), 4u);
  EXPECT_EQ(server.QueriesServed(), 2u);
  ASSERT_EQ(server.ObservationLog().size(), 2u);
  EXPECT_EQ(server.ObservationLog()[0],
            (std::vector<std::size_t>{1, 2, 3}));
}

TEST(RirServer, OutOfRangeRejectsWholeQueryUncharged) {
  RirServer server(MakeCatalog(5));
  EXPECT_THROW(server.Query({1, 99}), std::out_of_range);
  EXPECT_EQ(server.ItemsServed(), 0u);
  EXPECT_EQ(server.QueriesServed(), 0u);
}

TEST(RirClient, RejectsBadParameters) {
  EXPECT_THROW(RirClient(0, {}, 1), std::invalid_argument);
  EXPECT_THROW(RirClient(10, {}, 0), std::invalid_argument);
  EXPECT_THROW(RirClient(10, {}, 11), std::invalid_argument);
  EXPECT_THROW(RirClient(3, {1.0, 2.0}, 1), std::invalid_argument);
  EXPECT_THROW(RirClient(2, {0.0, 0.0}, 1), std::invalid_argument);
  EXPECT_THROW(RirClient(2, {-1.0, 2.0}, 1), std::invalid_argument);
}

TEST(RirClient, QueryContainsRealIndexAndKDistinctItems) {
  crypto::HmacDrbg rng("rir-query");
  RirClient client(100, {}, 8);
  for (std::size_t real : {0u, 42u, 99u}) {
    auto q = client.BuildQuery(real, &rng);
    EXPECT_EQ(q.size(), 8u);
    EXPECT_NE(std::find(q.begin(), q.end(), real), q.end());
    std::set<std::size_t> uniq(q.begin(), q.end());
    EXPECT_EQ(uniq.size(), q.size());
    for (std::size_t i : q) EXPECT_LT(i, 100u);
  }
  EXPECT_THROW(client.BuildQuery(100, &rng), std::out_of_range);
}

TEST(RirClient, KEqualsOneIsPlainRetrieval) {
  crypto::HmacDrbg rng("rir-k1");
  RirClient client(10, {}, 1);
  auto q = client.BuildQuery(4, &rng);
  EXPECT_EQ(q, (std::vector<std::size_t>{4}));
}

TEST(RirClient, RealIndexPositionIsUniform) {
  crypto::HmacDrbg rng("rir-pos");
  RirClient client(50, {}, 5);
  std::array<int, 5> position_counts{};
  constexpr int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    auto q = client.BuildQuery(7, &rng);
    auto it = std::find(q.begin(), q.end(), 7u);
    position_counts[static_cast<std::size_t>(it - q.begin())]++;
  }
  for (int c : position_counts) {
    EXPECT_GT(c, kTrials / 5 / 2);   // 500+
    EXPECT_LT(c, kTrials / 5 * 2);   // <2000
  }
}

TEST(RirClient, DecoysFollowPopularity) {
  // Item 0 is 100x more popular than the rest: it should appear as a
  // decoy far more often than an unpopular item.
  crypto::HmacDrbg rng("rir-pop");
  std::vector<double> pop(20, 1.0);
  pop[0] = 100.0;
  RirClient client(20, pop, 4);
  int zero_count = 0, nine_count = 0;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    auto q = client.BuildQuery(5, &rng);  // real item is 5
    if (std::find(q.begin(), q.end(), 0u) != q.end()) ++zero_count;
    if (std::find(q.begin(), q.end(), 9u) != q.end()) ++nine_count;
  }
  EXPECT_GT(zero_count, 5 * nine_count);
}

TEST(GuessProbability, UniformPriorGivesOneOverK) {
  std::vector<double> uniform(10, 1.0);
  EXPECT_DOUBLE_EQ(GuessProbability({1, 2, 3, 4}, uniform), 0.25);
  EXPECT_DOUBLE_EQ(GuessProbability({7}, uniform), 1.0);
}

TEST(GuessProbability, SkewedPriorWeakensRepudiation) {
  // If one item in the set is overwhelmingly popular, the adversary bets
  // on it: repudiation degrades. This is why decoys must be drawn from
  // the popularity prior.
  std::vector<double> pop = {100.0, 1.0, 1.0, 1.0};
  double g = GuessProbability({0, 1, 2, 3}, pop);
  EXPECT_NEAR(g, 100.0 / 103.0, 1e-9);
  EXPECT_GT(g, 0.9);
}

TEST(GuessProbability, EmptyQueryIsZero) {
  EXPECT_DOUBLE_EQ(GuessProbability({}, {1.0}), 0.0);
}

// End-to-end: k trades bandwidth for repudiation.
class RirTradeoffTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RirTradeoffTest, BandwidthVsRepudiation) {
  std::size_t k = GetParam();
  crypto::HmacDrbg rng("rir-tradeoff-" + std::to_string(k));
  constexpr std::size_t kN = 200;
  RirServer server(MakeCatalog(kN));
  std::vector<double> uniform(kN, 1.0);
  RirClient client(kN, uniform, k);

  double total_guess = 0;
  constexpr int kQueries = 50;
  for (int i = 0; i < kQueries; ++i) {
    std::size_t real = static_cast<std::size_t>(rng.NextUint64(kN));
    auto q = client.BuildQuery(real, &rng);
    auto blobs = server.Query(q);
    EXPECT_EQ(blobs.size(), k);  // bandwidth = k blobs
    total_guess += GuessProbability(q, uniform);
  }
  // Uniform prior: adversary guess rate is exactly 1/k.
  EXPECT_NEAR(total_guess / kQueries, 1.0 / static_cast<double>(k), 1e-9);
  // And the server metered every item for billing.
  EXPECT_EQ(server.ItemsServed(), k * kQueries);
}

INSTANTIATE_TEST_SUITE_P(Ks, RirTradeoffTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace rir
}  // namespace p2drm
