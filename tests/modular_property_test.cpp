// Property tests for modular arithmetic laws — the algebra the whole
// crypto stack silently relies on (blind-signature correctness is exactly
// the homomorphism (m·r^e)^d ≡ m^d·r mod n).

#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "bignum/prime.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace bignum {
namespace {

class ModularLawsTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  crypto::HmacDrbg MakeRng() const {
    return crypto::HmacDrbg("modlaws-" + std::to_string(GetParam()));
  }
};

TEST_P(ModularLawsTest, AddSubMulModConsistency) {
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(96);
  if (m.IsEven()) m = m + BigInt(1);
  for (int i = 0; i < 40; ++i) {
    BigInt a = rng.Below(m);
    BigInt b = rng.Below(m);
    // AddMod/SubMod/MulMod agree with the definitional forms.
    EXPECT_EQ(a.AddMod(b, m).ToHex(), ((a + b).Mod(m)).ToHex());
    EXPECT_EQ(a.SubMod(b, m).ToHex(), ((a - b).Mod(m)).ToHex());
    EXPECT_EQ(a.MulMod(b, m).ToHex(), ((a * b).Mod(m)).ToHex());
    // Inverses: a - b + b ≡ a.
    EXPECT_EQ(a.SubMod(b, m).AddMod(b, m).ToHex(), a.ToHex());
  }
}

TEST_P(ModularLawsTest, PowModLaws) {
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(80);
  if (m.IsEven()) m = m + BigInt(1);
  for (int i = 0; i < 15; ++i) {
    BigInt a = rng.Below(m);
    BigInt x = rng.Below(BigInt(1000));
    BigInt y = rng.Below(BigInt(1000));
    // a^(x+y) = a^x * a^y  (mod m)
    EXPECT_EQ(a.PowMod(x + y, m).ToHex(),
              a.PowMod(x, m).MulMod(a.PowMod(y, m), m).ToHex());
    // (a^x)^y = a^(x*y)  (mod m)
    EXPECT_EQ(a.PowMod(x, m).PowMod(y, m).ToHex(),
              a.PowMod(x * y, m).ToHex());
  }
}

TEST_P(ModularLawsTest, MultiplicativeHomomorphism) {
  // (a*b)^e ≡ a^e * b^e — the property Chaum blinding depends on.
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(80);
  if (m.IsEven()) m = m + BigInt(1);
  BigInt e(65537);
  for (int i = 0; i < 15; ++i) {
    BigInt a = rng.Below(m);
    BigInt b = rng.Below(m);
    EXPECT_EQ(a.MulMod(b, m).PowMod(e, m).ToHex(),
              a.PowMod(e, m).MulMod(b.PowMod(e, m), m).ToHex());
  }
}

TEST_P(ModularLawsTest, InverseIsTwoSided) {
  auto rng = MakeRng();
  BigInt p = GeneratePrime(72, 12, &rng);
  for (int i = 0; i < 25; ++i) {
    BigInt a = rng.Below(p);
    if (a.IsZero()) continue;
    BigInt inv = a.InvMod(p);
    EXPECT_EQ(a.MulMod(inv, p).ToDec(), "1");
    EXPECT_EQ(inv.MulMod(a, p).ToDec(), "1");
    // Double inverse is identity.
    EXPECT_EQ(inv.InvMod(p).ToHex(), a.ToHex());
  }
}

TEST_P(ModularLawsTest, FermatAndEulerOnRandomPrimes) {
  auto rng = MakeRng();
  BigInt p = GeneratePrime(96, 12, &rng);
  BigInt q = GeneratePrime(96, 12, &rng);
  BigInt n = p * q;
  BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  for (int i = 0; i < 6; ++i) {
    BigInt a = BigInt(2) + rng.Below(p - BigInt(3));
    // Fermat: a^(p-1) ≡ 1 (mod p).
    EXPECT_EQ(a.PowMod(p - BigInt(1), p).ToDec(), "1");
    // Euler: gcd(a, n)=1 ⇒ a^phi(n) ≡ 1 (mod n).
    if (BigInt::Gcd(a, n) == BigInt(1)) {
      EXPECT_EQ(a.PowMod(phi, n).ToDec(), "1");
    }
  }
}

TEST_P(ModularLawsTest, RsaRoundTripAlgebra) {
  // The raw RSA identity built from scratch: m^(e*d) ≡ m (mod pq).
  auto rng = MakeRng();
  BigInt e(65537);
  BigInt p = GenerateRsaPrime(80, e, 12, &rng);
  BigInt q = GenerateRsaPrime(80, e, 12, &rng);
  if (p == q) return;
  BigInt n = p * q;
  BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  BigInt d = e.InvMod(phi);
  for (int i = 0; i < 8; ++i) {
    BigInt m = rng.Below(n);
    EXPECT_EQ(m.PowMod(e, n).PowMod(d, n).ToHex(), m.ToHex());
  }
}

TEST_P(ModularLawsTest, MontgomeryAgreesWithGenericPowMod) {
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(128);
  if (m.IsEven()) m = m + BigInt(1);
  Montgomery mont(m);
  for (int i = 0; i < 10; ++i) {
    BigInt base = rng.Below(m);
    BigInt exp = rng.Below(BigInt(1) << 64);
    EXPECT_EQ(mont.PowMod(base, exp).ToHex(), base.PowMod(exp, m).ToHex());
  }
}

TEST_P(ModularLawsTest, CrtReconstruction) {
  // The CRT identity used by RsaPrivateOp, checked in isolation.
  auto rng = MakeRng();
  BigInt p = GeneratePrime(64, 12, &rng);
  BigInt q = GeneratePrime(64, 12, &rng);
  if (p == q) return;
  BigInt n = p * q;
  BigInt qinv = q.InvMod(p);
  for (int i = 0; i < 20; ++i) {
    BigInt x = rng.Below(n);
    BigInt xp = x.Mod(p);
    BigInt xq = x.Mod(q);
    BigInt h = qinv.MulMod(xp.SubMod(xq.Mod(p), p), p);
    BigInt rebuilt = xq + h * q;
    EXPECT_EQ(rebuilt.ToHex(), x.ToHex());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularLawsTest,
                         ::testing::Values(11u, 23u, 47u, 91u));

}  // namespace
}  // namespace bignum
}  // namespace p2drm
