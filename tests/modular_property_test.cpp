// Property tests for modular arithmetic laws — the algebra the whole
// crypto stack silently relies on (blind-signature correctness is exactly
// the homomorphism (m·r^e)^d ≡ m^d·r mod n).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/limbs.h"
#include "bignum/montgomery.h"
#include "bignum/prime.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace bignum {
namespace {

class ModularLawsTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  crypto::HmacDrbg MakeRng() const {
    return crypto::HmacDrbg("modlaws-" + std::to_string(GetParam()));
  }
};

TEST_P(ModularLawsTest, AddSubMulModConsistency) {
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(96);
  if (m.IsEven()) m = m + BigInt(1);
  for (int i = 0; i < 40; ++i) {
    BigInt a = rng.Below(m);
    BigInt b = rng.Below(m);
    // AddMod/SubMod/MulMod agree with the definitional forms.
    EXPECT_EQ(a.AddMod(b, m).ToHex(), ((a + b).Mod(m)).ToHex());
    EXPECT_EQ(a.SubMod(b, m).ToHex(), ((a - b).Mod(m)).ToHex());
    EXPECT_EQ(a.MulMod(b, m).ToHex(), ((a * b).Mod(m)).ToHex());
    // Inverses: a - b + b ≡ a.
    EXPECT_EQ(a.SubMod(b, m).AddMod(b, m).ToHex(), a.ToHex());
  }
}

TEST_P(ModularLawsTest, PowModLaws) {
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(80);
  if (m.IsEven()) m = m + BigInt(1);
  for (int i = 0; i < 15; ++i) {
    BigInt a = rng.Below(m);
    BigInt x = rng.Below(BigInt(1000));
    BigInt y = rng.Below(BigInt(1000));
    // a^(x+y) = a^x * a^y  (mod m)
    EXPECT_EQ(a.PowMod(x + y, m).ToHex(),
              a.PowMod(x, m).MulMod(a.PowMod(y, m), m).ToHex());
    // (a^x)^y = a^(x*y)  (mod m)
    EXPECT_EQ(a.PowMod(x, m).PowMod(y, m).ToHex(),
              a.PowMod(x * y, m).ToHex());
  }
}

TEST_P(ModularLawsTest, MultiplicativeHomomorphism) {
  // (a*b)^e ≡ a^e * b^e — the property Chaum blinding depends on.
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(80);
  if (m.IsEven()) m = m + BigInt(1);
  BigInt e(65537);
  for (int i = 0; i < 15; ++i) {
    BigInt a = rng.Below(m);
    BigInt b = rng.Below(m);
    EXPECT_EQ(a.MulMod(b, m).PowMod(e, m).ToHex(),
              a.PowMod(e, m).MulMod(b.PowMod(e, m), m).ToHex());
  }
}

TEST_P(ModularLawsTest, InverseIsTwoSided) {
  auto rng = MakeRng();
  BigInt p = GeneratePrime(72, 12, &rng);
  for (int i = 0; i < 25; ++i) {
    BigInt a = rng.Below(p);
    if (a.IsZero()) continue;
    BigInt inv = a.InvMod(p);
    EXPECT_EQ(a.MulMod(inv, p).ToDec(), "1");
    EXPECT_EQ(inv.MulMod(a, p).ToDec(), "1");
    // Double inverse is identity.
    EXPECT_EQ(inv.InvMod(p).ToHex(), a.ToHex());
  }
}

TEST_P(ModularLawsTest, FermatAndEulerOnRandomPrimes) {
  auto rng = MakeRng();
  BigInt p = GeneratePrime(96, 12, &rng);
  BigInt q = GeneratePrime(96, 12, &rng);
  BigInt n = p * q;
  BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  for (int i = 0; i < 6; ++i) {
    BigInt a = BigInt(2) + rng.Below(p - BigInt(3));
    // Fermat: a^(p-1) ≡ 1 (mod p).
    EXPECT_EQ(a.PowMod(p - BigInt(1), p).ToDec(), "1");
    // Euler: gcd(a, n)=1 ⇒ a^phi(n) ≡ 1 (mod n).
    if (BigInt::Gcd(a, n) == BigInt(1)) {
      EXPECT_EQ(a.PowMod(phi, n).ToDec(), "1");
    }
  }
}

TEST_P(ModularLawsTest, RsaRoundTripAlgebra) {
  // The raw RSA identity built from scratch: m^(e*d) ≡ m (mod pq).
  auto rng = MakeRng();
  BigInt e(65537);
  BigInt p = GenerateRsaPrime(80, e, 12, &rng);
  BigInt q = GenerateRsaPrime(80, e, 12, &rng);
  if (p == q) return;
  BigInt n = p * q;
  BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  BigInt d = e.InvMod(phi);
  for (int i = 0; i < 8; ++i) {
    BigInt m = rng.Below(n);
    EXPECT_EQ(m.PowMod(e, n).PowMod(d, n).ToHex(), m.ToHex());
  }
}

TEST_P(ModularLawsTest, MontgomeryAgreesWithGenericPowMod) {
  auto rng = MakeRng();
  BigInt m = rng.BitsExact(128);
  if (m.IsEven()) m = m + BigInt(1);
  Montgomery mont(m);
  for (int i = 0; i < 10; ++i) {
    BigInt base = rng.Below(m);
    BigInt exp = rng.Below(BigInt(1) << 64);
    EXPECT_EQ(mont.PowMod(base, exp).ToHex(), base.PowMod(exp, m).ToHex());
  }
}

TEST_P(ModularLawsTest, CrtReconstruction) {
  // The CRT identity used by RsaPrivateOp, checked in isolation.
  auto rng = MakeRng();
  BigInt p = GeneratePrime(64, 12, &rng);
  BigInt q = GeneratePrime(64, 12, &rng);
  if (p == q) return;
  BigInt n = p * q;
  BigInt qinv = q.InvMod(p);
  for (int i = 0; i < 20; ++i) {
    BigInt x = rng.Below(n);
    BigInt xp = x.Mod(p);
    BigInt xq = x.Mod(q);
    BigInt h = qinv.MulMod(xp.SubMod(xq.Mod(p), p), p);
    BigInt rebuilt = xq + h * q;
    EXPECT_EQ(rebuilt.ToHex(), x.ToHex());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularLawsTest,
                         ::testing::Values(11u, 23u, 47u, 91u));

// -- differential coverage for the 64-bit limb kernels ----------------------
//
// The CIOS Montgomery kernels (montgomery.cpp) and the arena Karatsuba
// (limbs.cpp) are checked against arithmetic that shares none of their
// code: schoolbook multiplication plus Knuth Algorithm D division. The
// suite runs at the three widths with fixed-width kernels (512/1024/2048
// bits) so every dispatch target gets exercised.

class KernelDifferentialTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    rng_.reset(new crypto::HmacDrbg("kernel-diff-" +
                                    std::to_string(GetParam())));
    modulus_ = rng_->BitsExact(GetParam());
    if (modulus_.IsEven()) modulus_ = modulus_ + BigInt(1);
    mont_.reset(new Montgomery(modulus_));
    // R and R^-1 mod N via plain shift / extended gcd — independent of
    // everything the Montgomery context precomputed.
    r_ = (BigInt(1) << (64 * mont_->width())).Mod(modulus_);
    r_inv_ = r_.InvMod(modulus_);
  }

  // Division-based reference for the Montgomery product a*b*R^-1 mod N.
  BigInt RefMontMul(const BigInt& a, const BigInt& b) const {
    return (a * b * r_inv_).Mod(modulus_);
  }

  // Division-based square-and-multiply reference for base^exp mod N.
  BigInt RefPowMod(const BigInt& base, const BigInt& exp) const {
    BigInt acc(1);
    for (std::size_t i = exp.BitLength(); i > 0; --i) {
      acc = acc.MulMod(acc, modulus_);
      if (exp.Bit(i - 1)) acc = acc.MulMod(base, modulus_);
    }
    return acc;
  }

  std::unique_ptr<crypto::HmacDrbg> rng_;
  std::unique_ptr<Montgomery> mont_;
  BigInt modulus_;
  BigInt r_;      // R mod N
  BigInt r_inv_;  // R^-1 mod N
};

TEST_P(KernelDifferentialTest, MontMulMatchesDivisionReference) {
  for (int i = 0; i < 12; ++i) {
    BigInt a = rng_->Below(modulus_);
    BigInt b = rng_->Below(modulus_);
    EXPECT_EQ(mont_->MulMont(a, b).ToHex(), RefMontMul(a, b).ToHex());
  }
}

TEST_P(KernelDifferentialTest, SpanMontMulMatchesBoxedPath) {
  Scratch scratch;
  const std::size_t w = mont_->width();
  std::vector<Limb> a64(w), b64(w), out64(w);
  for (int i = 0; i < 8; ++i) {
    BigInt a = rng_->Below(modulus_);
    BigInt b = rng_->Below(modulus_);
    mont_->Load(a64.data(), a);
    mont_->Load(b64.data(), b);
    mont_->MontMulLimbs(out64.data(), a64.data(), b64.data(), &scratch);
    EXPECT_EQ(mont_->Unload(out64.data()).ToHex(), RefMontMul(a, b).ToHex());
    // Aliased output (out == a) must behave identically.
    mont_->MontMulLimbs(a64.data(), a64.data(), b64.data(), &scratch);
    EXPECT_EQ(mont_->Unload(a64.data()).ToHex(), RefMontMul(a, b).ToHex());
  }
}

TEST_P(KernelDifferentialTest, RedcMatchesDivisionReference) {
  // FromMont is REDC: a ↦ a*R^-1 mod N.
  for (int i = 0; i < 12; ++i) {
    BigInt a = rng_->Below(modulus_);
    EXPECT_EQ(mont_->FromMont(a).ToHex(), (a * r_inv_).Mod(modulus_).ToHex());
    // ToMont/FromMont round-trips through Montgomery form.
    EXPECT_EQ(mont_->FromMont(mont_->ToMont(a)).ToHex(), a.ToHex());
  }
}

TEST_P(KernelDifferentialTest, PowModMatchesDivisionReference) {
  for (int i = 0; i < 4; ++i) {
    BigInt base = rng_->Below(modulus_);
    BigInt exp = rng_->BitsExact(256);
    EXPECT_EQ(mont_->PowMod(base, exp).ToHex(), RefPowMod(base, exp).ToHex());
  }
  // One full-width exponent so both window sizes (4-bit for short
  // exponents, 5-bit above 512 bits) run at every modulus width.
  BigInt base = rng_->Below(modulus_);
  BigInt exp = rng_->BitsExact(GetParam());
  EXPECT_EQ(mont_->PowMod(base, exp).ToHex(), RefPowMod(base, exp).ToHex());
}

TEST_P(KernelDifferentialTest, EdgeOperands) {
  const BigInt zero(0), one(1);
  const BigInt n_minus_1 = modulus_ - one;
  const BigInt r_minus_1 = (r_ - one).Mod(modulus_);  // (R mod N) - 1
  const std::vector<BigInt> edges = {zero, one, n_minus_1, r_minus_1, r_};
  for (const BigInt& a : edges) {
    for (const BigInt& b : edges) {
      EXPECT_EQ(mont_->MulMont(a, b).ToHex(), RefMontMul(a, b).ToHex());
    }
    for (const BigInt& e : {zero, one, BigInt(2), n_minus_1}) {
      EXPECT_EQ(mont_->PowMod(a, e).ToHex(), RefPowMod(a, e).ToHex());
    }
  }
}

TEST_P(KernelDifferentialTest, OperandsShorterThanModulus) {
  // Values far narrower than the modulus must pack into width() limbs
  // with correct zero-extension on both the boxed and span paths.
  for (std::size_t bits : {1u, 31u, 64u, 65u, 130u}) {
    BigInt a = rng_->BitsExact(bits);
    BigInt b = rng_->Below(modulus_);
    EXPECT_EQ(mont_->MulMont(a, b).ToHex(), RefMontMul(a, b).ToHex());
    EXPECT_EQ(mont_->PowMod(a, BigInt(3)).ToHex(),
              RefPowMod(a, BigInt(3)).ToHex());
  }
}

TEST_P(KernelDifferentialTest, WarmPowModAllocatesNothing) {
  // The acceptance criterion for the allocation-free hot path: once a
  // Scratch has seen one exponentiation, further MontMul/PowMod work
  // must never touch the heap.
  Scratch scratch;
  const std::size_t w = mont_->width();
  std::vector<Limb> base(w), out(w);
  std::vector<Limb> exp64(w);
  BigInt exp = rng_->BitsExact(GetParam());
  Pack32To64(exp64.data(), w, exp.limbs().data(), exp.limbs().size());
  mont_->Load(base.data(), rng_->Below(modulus_));

  mont_->PowModLimbs(out.data(), base.data(), LimbSpan{exp64.data(), w},
                     &scratch);  // warm-up: arena reaches high-water mark
  const std::uint64_t warm = scratch.heap_allocations();
  for (int i = 0; i < 10; ++i) {
    mont_->PowModLimbs(out.data(), base.data(), LimbSpan{exp64.data(), w},
                       &scratch);
    mont_->MontMulLimbs(out.data(), out.data(), base.data(), &scratch);
  }
  EXPECT_EQ(scratch.heap_allocations(), warm)
      << "warm Montgomery path allocated on the heap";
}

INSTANTIATE_TEST_SUITE_P(Widths, KernelDifferentialTest,
                         ::testing::Values(512u, 1024u, 2048u));

TEST(KaratsubaDifferentialTest, WideProductsSurviveDivisionRoundTrip) {
  // 2048-bit operands are 32 limbs — above the 20-limb Karatsuba
  // threshold, so operator* runs the arena recursion. Knuth division
  // (independent code) must invert the product exactly.
  crypto::HmacDrbg rng("karatsuba-diff");
  const std::uint64_t before = KernelStats().karatsuba_mults;
  for (int i = 0; i < 6; ++i) {
    BigInt a = rng.BitsExact(2048);
    BigInt b = rng.BitsExact(1500 + 100 * i);  // unbalanced widths too
    BigInt c = a * b;
    EXPECT_EQ((c / a).ToHex(), b.ToHex());
    EXPECT_EQ((c % a).ToHex(), "0");
    // Residue check mod a 31-bit prime: cheap, independent reduction.
    const BigInt p(2147483647);
    EXPECT_EQ(c.Mod(p).ToHex(), a.Mod(p).MulMod(b.Mod(p), p).ToHex());
  }
  EXPECT_GT(KernelStats().karatsuba_mults, before)
      << "expected wide products to dispatch through Karatsuba";
}

}  // namespace
}  // namespace bignum
}  // namespace p2drm
