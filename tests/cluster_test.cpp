// Cluster subsystem: consistent-hash ownership, journal-based failover
// (torn tails included), migration edge cases, and the cluster-mode
// scenario harness's determinism + no-double-spend guarantee.

#include "cluster/provider_cluster.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <vector>

#include "cluster/hash_ring.h"
#include "core/errors.h"
#include "server/server_runtime.h"
#include "sim/scenario.h"

namespace p2drm {
namespace cluster {
namespace {

using core::Status;

rel::LicenseId MakeId(std::uint64_t n) {
  rel::LicenseId id;
  for (int i = 0; i < 8; ++i) {
    id.bytes[i] = static_cast<std::uint8_t>(n >> (8 * (7 - i)));
  }
  id.bytes[15] = static_cast<std::uint8_t>(n * 37);
  return id;
}

/// First id (by serial) whose CURRENT ring owner is \p replica.
rel::LicenseId IdOwnedBy(const ProviderCluster& cluster,
                         std::uint32_t replica, std::uint64_t start = 0) {
  for (std::uint64_t n = start;; ++n) {
    rel::LicenseId id = MakeId(n ^ 0xF00Dull);
    if (cluster.OwnerOf(id) == replica) return id;
  }
}

/// Removes every journal file a test cluster under \p prefix could have
/// left behind (replicas beyond the configured count included — AddReplica
/// grows the family).
void RemoveJournals(const std::string& prefix) {
  for (std::uint32_t r = 0; r < 8; ++r) {
    std::string rp = ProviderCluster::ReplicaJournalPrefix(prefix, r);
    std::remove(rp.c_str());
    for (std::size_t k = 0; k < 8; ++k) {
      std::remove(server::ServerRuntime::SegmentPath(rp, k).c_str());
    }
  }
}

// -- hash ring ---------------------------------------------------------------

TEST(HashRingTest, OwnershipIsPureFunctionOfMembership) {
  HashRing a(64);
  HashRing b(64);
  // Same membership, different insertion histories.
  for (std::uint32_t r = 0; r < 4; ++r) a.AddReplica(r);
  b.AddReplica(2);
  b.AddReplica(0);
  b.AddReplica(3);
  b.AddReplica(5);
  b.RemoveReplica(5);
  b.AddReplica(1);
  ASSERT_EQ(a.ReplicaCount(), b.ReplicaCount());
  for (std::uint64_t n = 0; n < 5000; ++n) {
    rel::LicenseId id = MakeId(n);
    EXPECT_EQ(a.OwnerOf(id), b.OwnerOf(id));
  }
  // Histories differ, so epochs do — placement must not depend on that.
  EXPECT_EQ(a.epoch(), 4u);
  EXPECT_EQ(b.epoch(), 6u);
}

TEST(HashRingTest, VirtualNodesSpreadOwnership) {
  HashRing ring(64);
  for (std::uint32_t r = 0; r < 4; ++r) ring.AddReplica(r);
  std::map<std::uint32_t, std::size_t> hist;
  const std::size_t kIds = 20000;
  for (std::uint64_t n = 0; n < kIds; ++n) ++hist[ring.OwnerOf(MakeId(n))];
  for (std::uint32_t r = 0; r < 4; ++r) {
    // With 64 vnodes each replica's share stays within a loose band of
    // the fair 25%.
    EXPECT_GT(hist[r], kIds / 10) << "replica " << r;
    EXPECT_LT(hist[r], kIds / 2) << "replica " << r;
  }
}

TEST(HashRingTest, RemovalMovesOnlyTheDeadReplicasRanges) {
  HashRing ring(64);
  for (std::uint32_t r = 0; r < 4; ++r) ring.AddReplica(r);
  std::vector<std::uint32_t> before;
  const std::uint64_t kIds = 10000;
  before.reserve(kIds);
  for (std::uint64_t n = 0; n < kIds; ++n) {
    before.push_back(ring.OwnerOf(MakeId(n)));
  }
  ring.RemoveReplica(2);
  std::uint64_t moved = 0;
  for (std::uint64_t n = 0; n < kIds; ++n) {
    std::uint32_t now = ring.OwnerOf(MakeId(n));
    EXPECT_NE(now, 2u);
    if (before[n] != 2) {
      // The consistent-hash property: survivors' ids never move.
      EXPECT_EQ(now, before[n]) << "id " << n << " moved needlessly";
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, EpochBumpsOnlyOnRealMembershipChange) {
  HashRing ring(8);
  EXPECT_EQ(ring.epoch(), 0u);
  ring.AddReplica(7);
  EXPECT_EQ(ring.epoch(), 1u);
  ring.AddReplica(7);  // no-op
  EXPECT_EQ(ring.epoch(), 1u);
  ring.RemoveReplica(3);  // no-op
  EXPECT_EQ(ring.epoch(), 1u);
  ring.RemoveReplica(7);
  EXPECT_EQ(ring.epoch(), 2u);
  EXPECT_EQ(ring.ReplicaCount(), 0u);
}

// -- provider cluster --------------------------------------------------------

TEST(ProviderClusterTest, RoutedSpendRedirectsAndDetectsDoubleSpend) {
  ClusterConfig cc;
  cc.replica_count = 3;
  cc.shards_per_replica = 2;
  ProviderCluster cluster(cc);  // no journaling needed here

  rel::LicenseId id = IdOwnedBy(cluster, 1);
  // Addressed to a non-owner: typed redirect naming the live owner.
  SpendOutcome wrong = cluster.SpendOneAt(2, id);
  EXPECT_EQ(wrong.status, Status::kWrongReplica);
  EXPECT_EQ(wrong.owner, 1u);
  EXPECT_EQ(cluster.TotalSpentSize(), 0u);  // nothing committed

  EXPECT_EQ(cluster.SpendOneAt(1, id).status, Status::kOk);
  EXPECT_EQ(cluster.SpendOneAt(1, id).status, Status::kAlreadySpent);
  EXPECT_EQ(cluster.ReplicaSpentSize(1), 1u);
}

TEST(ProviderClusterTest, FailoverReplaysTornJournalOntoSurvivors) {
  const std::string prefix = ::testing::TempDir() + "/cluster_failover";
  RemoveJournals(prefix);

  ClusterConfig cc;
  cc.replica_count = 3;
  cc.shards_per_replica = 2;
  cc.journal_prefix = prefix;
  ProviderCluster cluster(cc);

  // Spend a population routed to its owners; remember the victim's ids.
  std::vector<rel::LicenseId> on_victim;
  for (std::uint64_t n = 0; n < 600; ++n) {
    rel::LicenseId id = MakeId(n);
    std::uint32_t owner = cluster.OwnerOf(id);
    ASSERT_EQ(cluster.SpendOneAt(owner, id).status, Status::kOk);
    if (owner == 1) on_victim.push_back(id);
  }
  ASSERT_GT(on_victim.size(), 50u);
  ASSERT_EQ(cluster.JournalRecordCount(1), on_victim.size());

  // Kill it mid-append: in-memory spent set gone, torn tail on disk.
  cluster.Crash(1, /*tear_journal_tail=*/true);
  EXPECT_FALSE(cluster.IsAlive(1));
  EXPECT_TRUE(cluster.Recovering());
  EXPECT_EQ(cluster.AliveCount(), 2u);

  // The moved ranges are GATED until replay completes…
  std::uint32_t heir = cluster.OwnerOf(on_victim.front());
  ASSERT_NE(heir, 1u);
  EXPECT_EQ(cluster.SpendOneAt(heir, on_victim.front()).status,
            Status::kOverloaded);
  // …and the dead replica answers with a redirect to the heir.
  SpendOutcome redirect = cluster.SpendOneAt(1, on_victim.front());
  EXPECT_EQ(redirect.status, Status::kWrongReplica);
  EXPECT_EQ(redirect.owner, heir);

  FailoverStats stats = cluster.CompleteFailover();
  EXPECT_FALSE(cluster.Recovering());
  EXPECT_EQ(stats.dead_replica, 1u);
  EXPECT_EQ(stats.records, on_victim.size());
  EXPECT_EQ(stats.imported_fresh, on_victim.size());
  EXPECT_EQ(stats.imported_duplicates, 0u);
  EXPECT_GE(stats.torn_tails, 1u);  // the injected partial record

  // The paper's invariant across the handoff: every id the dead replica
  // committed is still refused by its new owner.
  for (const rel::LicenseId& id : on_victim) {
    EXPECT_EQ(cluster.SpendOneAt(cluster.OwnerOf(id), id).status,
              Status::kAlreadySpent);
  }
}

TEST(ProviderClusterTest, FailoverOfIdleReplicaReplaysNothing) {
  const std::string prefix = ::testing::TempDir() + "/cluster_idle";
  RemoveJournals(prefix);

  ClusterConfig cc;
  cc.replica_count = 3;
  cc.shards_per_replica = 2;
  cc.journal_prefix = prefix;
  ProviderCluster cluster(cc);

  // Replica 2 never spends anything: its segment files exist but are
  // empty — the empty-segment migration edge case.
  rel::LicenseId gated = IdOwnedBy(cluster, 2);
  cluster.Crash(2, /*tear_journal_tail=*/false);
  std::uint32_t heir = cluster.OwnerOf(gated);
  EXPECT_EQ(cluster.SpendOneAt(heir, gated).status, Status::kOverloaded);

  FailoverStats stats = cluster.CompleteFailover();
  EXPECT_GT(stats.segments, 0u);  // files were scanned…
  EXPECT_EQ(stats.records, 0u);   // …and held zero records
  EXPECT_EQ(stats.imported_fresh, 0u);
  EXPECT_EQ(stats.torn_tails, 0u);

  // Gate lifted; the range accepts fresh traffic on the heir.
  EXPECT_EQ(cluster.SpendOneAt(heir, gated).status, Status::kOk);
}

TEST(ProviderClusterTest, JoiningReplicaInheritsSpentHistory) {
  const std::string prefix = ::testing::TempDir() + "/cluster_join";
  RemoveJournals(prefix);

  ClusterConfig cc;
  cc.replica_count = 2;
  cc.shards_per_replica = 2;
  cc.journal_prefix = prefix;
  ProviderCluster cluster(cc);

  std::vector<rel::LicenseId> spent;
  for (std::uint64_t n = 0; n < 400; ++n) {
    rel::LicenseId id = MakeId(n);
    ASSERT_EQ(cluster.SpendOneAt(cluster.OwnerOf(id), id).status, Status::kOk);
    spent.push_back(id);
  }

  std::uint64_t epoch_before = cluster.epoch();
  std::uint32_t joiner = cluster.AddReplica();
  EXPECT_EQ(joiner, 2u);
  EXPECT_EQ(cluster.epoch(), epoch_before + 1);
  EXPECT_EQ(cluster.AliveCount(), 3u);

  // Some ranges must have moved to the joiner, and for those the spent
  // history must have moved too: migration onto a shard that already
  // owns keys of its own is just "no keys moved FROM it" — every
  // previously spent id stays refused at its current owner.
  std::size_t moved = 0;
  for (const rel::LicenseId& id : spent) {
    std::uint32_t owner = cluster.OwnerOf(id);
    if (owner == joiner) ++moved;
    EXPECT_EQ(cluster.SpendOneAt(owner, id).status, Status::kAlreadySpent);
  }
  EXPECT_GT(moved, 0u);
  EXPECT_EQ(cluster.ReplicaSpentSize(joiner), moved);
}

// -- cluster-mode scenario harness -------------------------------------------

sim::ScenarioConfig SmallFailoverScenario(const std::string& prefix) {
  sim::ScenarioConfig cfg;
  cfg.name = "test_failover";
  cfg.seed = 7;
  cfg.num_users = 300;
  cfg.total_requests = 2400;
  cfg.batch_size = 4;
  cfg.queue_capacity = 512;
  cfg.mean_think_us = 5'000'000;
  cfg.ramp_us = 8'000'000;
  cfg.retry_hint_ms = 100;
  cfg.overload_max_attempts = 6;
  cfg.cluster.enabled = true;
  cfg.cluster.replica_count = 3;
  cfg.cluster.shards_per_replica = 2;
  cfg.cluster.journal_prefix = prefix;
  cfg.cluster.crash_at_us = 3'000'000;
  cfg.cluster.crash_replica = 1;
  cfg.cluster.tear_journal_tail = true;
  cfg.cluster.failover_detect_us = 200'000;
  cfg.cluster.replay_per_record_us = 5;
  return cfg;
}

TEST(ClusterScenarioTest, FailoverScenarioClosesAccountingWithoutDoubleSpends) {
  const std::string prefix = ::testing::TempDir() + "/cluster_scenario";
  RemoveJournals(prefix);
  sim::ScenarioConfig cfg = SmallFailoverScenario(prefix);
  sim::ScenarioResult r = sim::ScenarioDriver(cfg).Run();

  EXPECT_TRUE(r.cluster.enabled);
  // The crash really happened and was really recovered.
  EXPECT_EQ(r.cluster.replicas_alive_final, 2u);
  EXPECT_GT(r.cluster.ring_epoch_final, cfg.cluster.replica_count);
  EXPECT_GT(r.cluster.replayed_records, 0u);
  EXPECT_GE(r.cluster.torn_tails_skipped, 1u);
  EXPECT_GT(r.cluster.audit_rechecks, 0u);
  EXPECT_EQ(r.cluster.double_spends, 0u);
  // Terminal buckets partition the issued items.
  EXPECT_EQ(r.TotalCompleted() + r.TotalExhausted() +
                r.TotalRedirectedTerminal(),
            r.TotalIssued());
  // The real spent sets agree with the harness's completion count: every
  // completed item is spent somewhere, and nothing on the dead replica
  // was double-counted (imports that survived the crash are fresh on
  // their heir, not extra completions).
  EXPECT_GE(r.cluster.total_spent_final, r.TotalCompleted());
}

TEST(ClusterScenarioTest, FailoverScenarioIsDeterministic) {
  const std::string prefix = ::testing::TempDir() + "/cluster_scenario_det";
  RemoveJournals(prefix);
  sim::ScenarioConfig cfg = SmallFailoverScenario(prefix);
  sim::ScenarioResult a = sim::ScenarioDriver(cfg).Run();
  sim::ScenarioResult b = sim::ScenarioDriver(cfg).Run();
  EXPECT_EQ(a.virtual_duration_us, b.virtual_duration_us);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.batches_sent, b.batches_sent);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.cluster.redirect_responses, b.cluster.redirect_responses);
  EXPECT_EQ(a.cluster.replayed_records, b.cluster.replayed_records);
  EXPECT_EQ(a.cluster.imported_fresh, b.cluster.imported_fresh);
  EXPECT_EQ(a.cluster.total_spent_final, b.cluster.total_spent_final);
  for (std::size_t f = 0; f < sim::kFlowCount; ++f) {
    EXPECT_EQ(a.flows[f].completed, b.flows[f].completed);
    EXPECT_EQ(a.flows[f].sheds, b.flows[f].sheds);
    EXPECT_EQ(a.flows[f].exhausted, b.flows[f].exhausted);
    EXPECT_EQ(a.flows[f].redirected, b.flows[f].redirected);
  }
}

}  // namespace
}  // namespace cluster
}  // namespace p2drm
