// Canonical codec: round trips, boundary values, truncation errors.

#include "net/codec.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace net {
namespace {

TEST(Codec, ScalarRoundTrip) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  ByteReader r(w.Bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Codec, BoundaryValues) {
  ByteWriter w;
  w.U8(0);
  w.U8(255);
  w.U32(0);
  w.U32(0xffffffffu);
  w.U64(0);
  w.U64(~0ull);
  ByteReader r(w.Bytes());
  EXPECT_EQ(r.U8(), 0);
  EXPECT_EQ(r.U8(), 255);
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_EQ(r.U32(), 0xffffffffu);
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_EQ(r.U64(), ~0ull);
}

TEST(Codec, BigEndianLayout) {
  ByteWriter w;
  w.U32(0x01020304);
  ASSERT_EQ(w.Size(), 4u);
  EXPECT_EQ(w.Bytes()[0], 0x01);
  EXPECT_EQ(w.Bytes()[3], 0x04);
}

TEST(Codec, BlobRoundTrip) {
  ByteWriter w;
  std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  w.Blob(blob);
  w.Blob(std::vector<std::uint8_t>{});  // empty blob is legal
  ByteReader r(w.Bytes());
  EXPECT_EQ(r.Blob(), blob);
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(Codec, StringRoundTrip) {
  ByteWriter w;
  w.String("hello");
  w.String("");
  w.String(std::string("\0binary\0", 8));
  ByteReader r(w.Bytes());
  EXPECT_EQ(r.String(), "hello");
  EXPECT_EQ(r.String(), "");
  EXPECT_EQ(r.String(), std::string("\0binary\0", 8));
}

TEST(Codec, FixedRoundTrip) {
  ByteWriter w;
  std::array<std::uint8_t, 16> arr;
  for (int i = 0; i < 16; ++i) arr[i] = static_cast<std::uint8_t>(i * 3);
  w.Fixed(arr);
  ByteReader r(w.Bytes());
  EXPECT_EQ(r.Fixed<16>(), arr);
}

TEST(Codec, TruncatedReadThrows) {
  ByteWriter w;
  w.U32(42);
  ByteReader r(w.Bytes());
  (void)r.U16();
  EXPECT_THROW(r.U32(), CodecError);
}

TEST(Codec, TruncatedBlobThrows) {
  ByteWriter w;
  w.U32(100);  // claims 100 bytes follow, but none do
  ByteReader r(w.Bytes());
  EXPECT_THROW(r.Blob(), CodecError);
}

TEST(Codec, ExpectEndDetectsTrailing) {
  ByteWriter w;
  w.U8(1);
  w.U8(2);
  ByteReader r(w.Bytes());
  (void)r.U8();
  EXPECT_THROW(r.ExpectEnd(), CodecError);
  (void)r.U8();
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(Codec, RemainingTracksPosition) {
  ByteWriter w;
  w.U64(7);
  ByteReader r(w.Bytes());
  EXPECT_EQ(r.Remaining(), 8u);
  (void)r.U32();
  EXPECT_EQ(r.Remaining(), 4u);
}

TEST(Codec, TakeMovesBuffer) {
  ByteWriter w;
  w.U8(9);
  auto bytes = w.Take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.Size(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace p2drm
