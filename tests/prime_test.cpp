// Tests for Miller–Rabin and prime generation.

#include "bignum/prime.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace p2drm {
namespace bignum {
namespace {

crypto::HmacDrbg MakeRng(const std::string& label) {
  return crypto::HmacDrbg(label);
}

TEST(TrialDivision, SmallComposites) {
  EXPECT_FALSE(PassesTrialDivision(BigInt(4)) &&
               !(BigInt(4) == BigInt(2)));
  EXPECT_FALSE(PassesTrialDivision(BigInt(9)));
  EXPECT_FALSE(PassesTrialDivision(BigInt(1000003LL * 3)));
}

TEST(TrialDivision, SmallPrimesPass) {
  EXPECT_TRUE(PassesTrialDivision(BigInt(2)));
  EXPECT_TRUE(PassesTrialDivision(BigInt(3)));
  EXPECT_TRUE(PassesTrialDivision(BigInt(2039)));
  // A prime larger than the table: must not be flagged.
  EXPECT_TRUE(PassesTrialDivision(BigInt(104729)));
}

TEST(MillerRabin, KnownSmallPrimes) {
  auto rng = MakeRng("mr-small");
  for (std::int64_t p : {2, 3, 5, 7, 11, 101, 65537, 104729}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), 16, &rng)) << p;
  }
}

TEST(MillerRabin, KnownSmallComposites) {
  auto rng = MakeRng("mr-comp");
  for (std::int64_t c : {1, 4, 6, 9, 15, 21, 100, 65535, 104730}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), 16, &rng)) << c;
  }
}

TEST(MillerRabin, CarmichaelNumbers) {
  // Carmichael numbers fool Fermat but not Miller–Rabin.
  auto rng = MakeRng("mr-carmichael");
  for (std::int64_t c : {561, 1105, 1729, 2465, 2821, 6601, 8911, 41041,
                         825265}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), 16, &rng)) << c;
  }
}

TEST(MillerRabin, KnownLargePrimes) {
  auto rng = MakeRng("mr-large");
  // 2^127 - 1 (Mersenne), 2^89 - 1 (Mersenne).
  EXPECT_TRUE(IsProbablePrime((BigInt(1) << 127) - BigInt(1), 16, &rng));
  EXPECT_TRUE(IsProbablePrime((BigInt(1) << 89) - BigInt(1), 16, &rng));
  // 10^18 + 9 is prime.
  EXPECT_TRUE(IsProbablePrime(BigInt::FromDec("1000000000000000009"), 16, &rng));
}

TEST(MillerRabin, KnownLargeComposites) {
  auto rng = MakeRng("mr-large-comp");
  // 2^128 + 1 = 59649589127497217 * 5704689200685129054721 (F7, composite).
  EXPECT_FALSE(IsProbablePrime((BigInt(1) << 128) + BigInt(1), 16, &rng));
  // Product of two 64-bit primes.
  BigInt p = BigInt::FromDec("18446744073709551557");
  BigInt q = BigInt::FromDec("18446744073709551533");
  EXPECT_FALSE(IsProbablePrime(p * q, 16, &rng));
}

TEST(MillerRabin, EdgeCases) {
  auto rng = MakeRng("mr-edge");
  EXPECT_FALSE(IsProbablePrime(BigInt(0), 8, &rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(1), 8, &rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(-7), 8, &rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(2), 8, &rng));
}

class PrimeGenTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrimeGenTest, GeneratedPrimeHasExactBitsAndIsPrime) {
  std::size_t bits = GetParam();
  auto rng = MakeRng("gen-" + std::to_string(bits));
  BigInt p = GeneratePrime(bits, 16, &rng);
  EXPECT_EQ(p.BitLength(), bits);
  EXPECT_TRUE(p.IsOdd());
  auto rng2 = MakeRng("check");
  EXPECT_TRUE(IsProbablePrime(p, 24, &rng2));
}

INSTANTIATE_TEST_SUITE_P(Widths, PrimeGenTest,
                         ::testing::Values(64, 128, 192, 256, 384));

TEST(RsaPrimeGen, CoprimeToPublicExponent) {
  auto rng = MakeRng("rsa-prime");
  BigInt e(65537);
  BigInt p = GenerateRsaPrime(256, e, 16, &rng);
  EXPECT_EQ(BigInt::Gcd(p - BigInt(1), e).ToDec(), "1");
  EXPECT_EQ(p.BitLength(), 256u);
}

TEST(PrimeGen, DeterministicForSeed) {
  auto rng1 = MakeRng("same-seed");
  auto rng2 = MakeRng("same-seed");
  EXPECT_EQ(GeneratePrime(128, 8, &rng1).ToHex(),
            GeneratePrime(128, 8, &rng2).ToHex());
}

}  // namespace
}  // namespace bignum
}  // namespace p2drm
