// Streaming batch pipeline (ISSUE 9): the Stream* entry points overlap
// batch B+1's verify with batch B's signing, yet must stay bit-identical
// to the synchronous batch calls under a fixed seed — commits in submit
// order, each commit tail in index order, DRBG forks drawn dispatch-side.
// Also covered: a batch shed at the mutate stage leaves no trace even
// while other streamed batches are in flight, the streamed deposit window
// defers account credits without reordering double-spend resolution, and
// the window makespan is exact under an injected tick source.

#include <cstddef>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/content_provider.h"
#include "core/payment.h"
#include "server/server_runtime.h"
#include "server/signer_pool.h"
#include "sim/provider_stack.h"

namespace p2drm {
namespace core {
namespace {

using Stack = sim::ProviderStack;

// -- streaming vs serial: bit-identical mixed flows --------------------------

TEST(StreamingPipeline, MixedFlowsBitIdenticalToSerial) {
  // Same seed, same call sequence. The serial stack runs the synchronous
  // batch entry points; the streaming stack runs the same batches through
  // Stream* with a 2-batch window over a 3-signer pool, so two batches
  // are genuinely in flight while later ones are being verified.
  Stack serial("streaming-identical", 2);
  Stack streaming("streaming-identical", 2, 512, 4096,
                  /*signer_pool_size=*/3, /*max_batches_in_flight=*/2);
  ASSERT_NE(streaming.cp.Pool(), nullptr);

  // Fixture creation is the same sequence on both stacks, so every key,
  // coin and license going in is already bit-identical.
  auto fixtures = [](Stack& s) {
    struct F {
      std::vector<ContentProvider::RedeemItem> redeem1, redeem2;
      std::vector<ContentProvider::PurchaseItem> purchase;
      std::vector<ContentProvider::ExchangeItem> exchange;
    } f;
    Pseudonym* giver = s.NewPseudonym();
    Pseudonym* taker = s.NewPseudonym();
    for (int i = 0; i < 3; ++i) {
      f.redeem1.push_back({s.NewBearer(giver), taker->cert});
    }
    // In-batch duplicate: the detected-double-redemption leg must stream
    // identically too.
    f.redeem1.push_back(f.redeem1[0]);
    Pseudonym* buyer = s.NewPseudonym();
    for (int i = 0; i < 2; ++i) {
      f.purchase.push_back({buyer->cert, s.content, s.Pay(30)});
    }
    Pseudonym* owner = s.NewPseudonym();
    for (int i = 0; i < 2; ++i) {
      rel::License lic = s.NewBoundLicense(owner);
      f.exchange.push_back({lic, s.PossessionSig(owner, lic)});
    }
    for (int i = 0; i < 2; ++i) {
      f.redeem2.push_back({s.NewBearer(giver), taker->cert});
    }
    return f;
  };
  auto fs = fixtures(serial);
  auto ff = fixtures(streaming);

  auto out_r1 = serial.cp.RedeemAnonymousBatch(fs.redeem1);
  auto out_p = serial.cp.PurchaseBatch(fs.purchase);
  auto out_e = serial.cp.ExchangeBatch(fs.exchange);
  auto out_r2 = serial.cp.RedeemAnonymousBatch(fs.redeem2);

  std::optional<std::vector<ContentProvider::PurchaseResult>> got_r1, got_p,
      got_r2;
  std::optional<std::vector<ContentProvider::ExchangeResult>> got_e;
  std::vector<std::string> commit_order;
  streaming.cp.StreamRedeemBatch(std::move(ff.redeem1), [&](auto out) {
    commit_order.push_back("r1");
    got_r1 = std::move(out);
  });
  streaming.cp.StreamPurchaseBatch(std::move(ff.purchase), [&](auto out) {
    commit_order.push_back("p");
    got_p = std::move(out);
  });
  streaming.cp.StreamExchangeBatch(std::move(ff.exchange), [&](auto out) {
    commit_order.push_back("e");
    got_e = std::move(out);
  });
  streaming.cp.StreamRedeemBatch(std::move(ff.redeem2), [&](auto out) {
    commit_order.push_back("r2");
    got_r2 = std::move(out);
  });
  // A 2-batch window with four submissions means the first two batches
  // committed while later ones were streaming in — real overlap, not a
  // disguised serial run.
  EXPECT_EQ(streaming.cp.StreamingInFlight(), 2u);
  ASSERT_TRUE(got_r1.has_value());
  ASSERT_TRUE(got_p.has_value());
  EXPECT_FALSE(got_e.has_value());

  streaming.cp.FlushStreaming();
  EXPECT_EQ(streaming.cp.StreamingInFlight(), 0u);
  ASSERT_TRUE(got_e.has_value());
  ASSERT_TRUE(got_r2.has_value());
  EXPECT_EQ(commit_order,
            (std::vector<std::string>{"r1", "p", "e", "r2"}));

  ASSERT_EQ(got_r1->size(), out_r1.size());
  for (std::size_t i = 0; i < out_r1.size(); ++i) {
    EXPECT_EQ((*got_r1)[i].status, out_r1[i].status) << "redeem1 " << i;
    EXPECT_EQ((*got_r1)[i].license.Serialize(), out_r1[i].license.Serialize())
        << "redeem1 " << i;
  }
  EXPECT_EQ((*got_r1)[3].status, Status::kAlreadySpent);
  ASSERT_EQ(got_p->size(), out_p.size());
  for (std::size_t i = 0; i < out_p.size(); ++i) {
    EXPECT_EQ((*got_p)[i].status, out_p[i].status) << "purchase " << i;
    EXPECT_EQ((*got_p)[i].license.Serialize(), out_p[i].license.Serialize())
        << "purchase " << i;
  }
  ASSERT_EQ(got_e->size(), out_e.size());
  for (std::size_t i = 0; i < out_e.size(); ++i) {
    EXPECT_EQ((*got_e)[i].status, out_e[i].status) << "exchange " << i;
    EXPECT_EQ((*got_e)[i].anonymous_license.Serialize(),
              out_e[i].anonymous_license.Serialize())
        << "exchange " << i;
  }
  ASSERT_EQ(got_r2->size(), out_r2.size());
  for (std::size_t i = 0; i < out_r2.size(); ++i) {
    EXPECT_EQ((*got_r2)[i].status, out_r2[i].status) << "redeem2 " << i;
    EXPECT_EQ((*got_r2)[i].license.Serialize(), out_r2[i].license.Serialize())
        << "redeem2 " << i;
  }
  EXPECT_EQ(serial.cp.LicensesIssued(), streaming.cp.LicensesIssued());
}

// -- shed at mutate leaves no trace while other batches are in flight --------

TEST(StreamingPipeline, ShedAtMutateLeavesNoTraceUnderOverlap) {
  // One shard with a one-item queue; 2-signer pool, window of 4 so a
  // healthy batch stays in flight while the next one is shed.
  Stack stack("streaming-shed", 1, 512, /*queue_capacity=*/1,
              /*signer_pool_size=*/2, /*max_batches_in_flight=*/4);
  Pseudonym* giver = stack.NewPseudonym();
  Pseudonym* taker = stack.NewPseudonym();
  std::vector<ContentProvider::RedeemItem> ok_items, shed_items;
  for (int i = 0; i < 2; ++i) {
    ok_items.push_back({stack.NewBearer(giver), taker->cert});
    shed_items.push_back({stack.NewBearer(giver), taker->cert});
  }

  std::optional<std::vector<ContentProvider::PurchaseResult>> got_ok, got_shed;
  stack.cp.StreamRedeemBatch(ok_items,
                             [&](auto out) { got_ok = std::move(out); });
  EXPECT_EQ(stack.cp.StreamingInFlight(), 1u);
  // The healthy batch's spends are already recorded (mutate runs inline
  // at Stream time); its licenses are still being signed.
  std::size_t spent_before = stack.cp.SpentSetSize();
  std::uint64_t issued_before = stack.cp.LicensesIssued();

  // Park the only spend shard: every mutate submission is now shed.
  server::ServerRuntime* rt = stack.cp.Runtime();
  ASSERT_NE(rt, nullptr);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  rt->Submit(0, [gate](server::ShardContext&) { gate.wait(); });

  stack.cp.StreamRedeemBatch(shed_items,
                             [&](auto out) { got_shed = std::move(out); });
  release.set_value();
  rt->Drain();
  stack.cp.FlushStreaming();

  ASSERT_TRUE(got_ok.has_value());
  ASSERT_TRUE(got_shed.has_value());
  for (const auto& r : *got_ok) EXPECT_EQ(r.status, Status::kOk);
  // Typed shed status, no spend recorded, nothing signed for the shed
  // batch — only the healthy batch's licenses were issued.
  for (const auto& r : *got_shed) EXPECT_EQ(r.status, Status::kOverloaded);
  EXPECT_EQ(stack.cp.SpentSetSize(), spent_before);
  EXPECT_EQ(stack.cp.LicensesIssued(), issued_before + ok_items.size());

  // No trace means the identical retry succeeds once the queue has room.
  auto retried = stack.cp.RedeemAnonymousBatch(shed_items);
  for (const auto& r : retried) EXPECT_EQ(r.status, Status::kOk);
}

// -- streamed deposits: deferred credit, submission-ordered resolution -------

TEST(StreamingDeposits, BitIdenticalToSerialBatchesWithDeferredCredit) {
  Stack serial("streaming-deposit", 0);
  Stack streaming("streaming-deposit", 0);

  auto fixtures = [](Stack& s) {
    struct F {
      std::vector<PaymentProvider::DepositItem> batch1, batch2;
    } f;
    for (const Coin& c : s.Pay(30)) f.batch1.push_back({c, Stack::kAccount});
    for (const Coin& c : s.Pay(30)) f.batch2.push_back({c, Stack::kAccount});
    // Cross-batch double spend: batch2 re-deposits batch1's first coin.
    // Resolution must stay submission-ordered even though the account
    // credits are deferred to the flush.
    f.batch2.push_back(f.batch1[0]);
    return f;
  };
  auto fs = fixtures(serial);
  auto ff = fixtures(streaming);

  auto out1 = serial.bank.DepositBatch(fs.batch1);
  auto out2 = serial.bank.DepositBatch(fs.batch2);
  std::uint64_t serial_balance = serial.bank.Balance(Stack::kAccount);

  std::uint64_t balance_before = streaming.bank.Balance(Stack::kAccount);
  std::optional<std::vector<Status>> got1, got2;
  streaming.bank.StreamDepositBatch(ff.batch1,
                                    [&](auto out) { got1 = std::move(out); });
  streaming.bank.StreamDepositBatch(ff.batch2,
                                    [&](auto out) { got2 = std::move(out); });
  EXPECT_EQ(streaming.bank.StreamingDepositsInFlight(), 2u);
  // Both batches' serials are burned (mutate ran inline) but no account
  // has been credited yet: the commit tail is the deferred part.
  EXPECT_EQ(streaming.bank.Balance(Stack::kAccount), balance_before);

  streaming.bank.FlushDeposits();
  EXPECT_EQ(streaming.bank.StreamingDepositsInFlight(), 0u);
  ASSERT_TRUE(got1.has_value());
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(*got1, out1);
  EXPECT_EQ(*got2, out2);
  EXPECT_NE(got2->back(), Status::kOk);  // the cross-batch double spend
  EXPECT_EQ(streaming.bank.Balance(Stack::kAccount), serial_balance);
}

// -- injected tick pins the streaming window's makespan ----------------------

TEST(StreamingPipeline, InjectedTickPinsStreamingMakespan) {
  // No shards, no pool: the streamed batch runs its stages inline, so
  // the deterministic tick source pins every number. Each stage spans
  // one 7us tick (6 samples inside Submit) and the flush takes the 7th
  // sample, so the window makespan is exactly 42us.
  Stack stack("streaming-timings", /*redeem_shards=*/0, 512);
  std::uint64_t tick = 0;
  stack.cp.set_time_source([&tick]() {
    tick += 7;
    return tick;
  });

  Pseudonym* giver = stack.NewPseudonym();
  Pseudonym* taker = stack.NewPseudonym();
  std::vector<ContentProvider::RedeemItem> items;
  items.push_back({stack.NewBearer(giver), taker->cert});
  items.push_back({stack.NewBearer(giver), taker->cert});

  std::optional<std::vector<ContentProvider::PurchaseResult>> got;
  stack.cp.StreamRedeemBatch(std::move(items),
                             [&](auto out) { got = std::move(out); });
  auto timings = stack.cp.FlushStreaming();
  ASSERT_TRUE(got.has_value());
  for (const auto& r : *got) ASSERT_EQ(r.status, Status::kOk);

  EXPECT_EQ(timings.items, 2u);
  EXPECT_EQ(timings.verify_us, 7.0);
  EXPECT_EQ(timings.spend_us, 7.0);
  EXPECT_EQ(timings.issue_us, 7.0);
  EXPECT_EQ(timings.makespan_us, 42.0);
  // FlushStreaming also refreshes LastBatchTimings.
  EXPECT_EQ(stack.cp.LastBatchTimings().makespan_us, 42.0);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
