// Generic batch pipeline (ISSUE 4): the shared server::BatchPipeline
// stage machinery, the exchange and deposit batch flows built on it, and
// the client-side overload retry loop.
//
// Pinned properties:
//  * stage contract — verify -> mutate -> issue -> commit, kOverloaded
//    shed possible at the mutate stage ONLY, shed items skip issue and
//    commit entirely;
//  * determinism — parallel ExchangeBatch is bit-identical to serial
//    under a fixed DRBG seed (fork-drawing rule);
//  * deposit idempotency — one credit per coin serial, within a batch,
//    across batches, and across the single/batched paths;
//  * client retry — UserAgent re-batches only the shed indices, honors
//    retry_after_ms (capped), and stops at the attempt budget.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/content_provider.h"
#include "core/metrics.h"
#include "core/system.h"
#include "crypto/blind_rsa.h"
#include "crypto/drbg.h"
#include "net/rpc.h"
#include "server/batch_pipeline.h"
#include "sim/provider_stack.h"

namespace p2drm {
namespace core {
namespace {

using Stack = sim::ProviderStack;

// -- pipeline stage contract -------------------------------------------------

TEST(BatchPipelineStages, ShedsAtMutateOnlyAndSkipsShedItems) {
  server::BatchPipeline::Plan plan;
  plan.item_count = 5;
  std::vector<Status> final_status(5, Status::kOk);
  std::vector<std::size_t> forked, issued, committed, rejected;

  // Item 4 fails verification; items 0..3 survive.
  plan.verify = [&] {
    final_status[4] = Status::kBadSignature;
    return std::vector<std::size_t>{0, 1, 2, 3};
  };
  // Item 1 is shed; item 2 is a detected duplicate that still proceeds.
  plan.mutate = [&](const std::vector<std::size_t>& eligible) {
    EXPECT_EQ(eligible, (std::vector<std::size_t>{0, 1, 2, 3}));
    return std::vector<Status>{Status::kOk, Status::kOverloaded,
                               Status::kAlreadySpent, Status::kOk};
  };
  plan.proceed = [](Status s) { return s == Status::kAlreadySpent; };
  plan.begin_issue = [&](std::size_t n) { EXPECT_EQ(n, 3u); };
  plan.draw_fork = [&](std::size_t k, std::size_t i) {
    EXPECT_EQ(k, forked.size());  // ascending k, dispatch-side
    forked.push_back(i);
  };
  plan.issue = [&](std::size_t k, std::size_t i, Status s) {
    (void)k;
    EXPECT_NE(s, Status::kOverloaded);
    issued.push_back(i);
  };
  plan.commit = [&](std::size_t k, std::size_t i, Status) {
    (void)k;
    committed.push_back(i);
  };
  plan.reject = [&](std::size_t i, Status s) {
    rejected.push_back(i);
    final_status[i] = s;
  };

  auto t = server::BatchPipeline::Run(plan, nullptr);

  // Fork draw, issue (serial executor) and commit all saw exactly the
  // live items, in index order; the shed item touched none of them.
  std::vector<std::size_t> live{0, 2, 3};
  EXPECT_EQ(forked, live);
  EXPECT_EQ(issued, live);
  EXPECT_EQ(committed, live);
  EXPECT_EQ(rejected, (std::vector<std::size_t>{1}));
  EXPECT_EQ(final_status[1], Status::kOverloaded);
  EXPECT_EQ(t.items, 5u);
  EXPECT_EQ(t.shed, 1u);
  EXPECT_EQ(t.committed, 3u);
}

TEST(BatchPipelineStages, OverloadedNeverProceedsEvenIfFlowSaysSo) {
  server::BatchPipeline::Plan plan;
  plan.item_count = 1;
  bool issued = false, rejected = false;
  plan.mutate = [&](const std::vector<std::size_t>&) {
    return std::vector<Status>{Status::kOverloaded};
  };
  plan.proceed = [](Status) { return true; };  // hostile flow
  plan.issue = [&](std::size_t, std::size_t, Status) { issued = true; };
  plan.reject = [&](std::size_t, Status s) {
    rejected = true;
    EXPECT_EQ(s, Status::kOverloaded);
  };
  auto t = server::BatchPipeline::Run(plan, nullptr);
  EXPECT_FALSE(issued);
  EXPECT_TRUE(rejected);
  EXPECT_EQ(t.shed, 1u);
}

// -- exchange batch ----------------------------------------------------------

TEST(ExchangePipeline, ParallelExchangeBitIdenticalToSerial) {
  // Same seed, same call sequence; only redeem_shards differs. The batch
  // includes a duplicate so the kAlreadySpent leg is covered.
  Stack serial("exchange-identical", 0);
  Stack sharded("exchange-identical", 4);

  constexpr int kLicenses = 6;
  Pseudonym* owner_serial = serial.NewPseudonym();
  Pseudonym* owner_sharded = sharded.NewPseudonym();
  std::vector<ContentProvider::ExchangeItem> items_serial, items_sharded;
  for (int i = 0; i < kLicenses; ++i) {
    rel::License lic_serial = serial.NewBoundLicense(owner_serial);
    rel::License lic_sharded = sharded.NewBoundLicense(owner_sharded);
    ASSERT_EQ(lic_serial.Serialize(), lic_sharded.Serialize());
    items_serial.push_back(
        {lic_serial, serial.PossessionSig(owner_serial, lic_serial)});
    items_sharded.push_back(
        {lic_sharded, sharded.PossessionSig(owner_sharded, lic_sharded)});
  }
  // Duplicate of item 0: the second occurrence loses the spend race
  // deterministically (first-wins in index order).
  items_serial.push_back(items_serial[0]);
  items_sharded.push_back(items_sharded[0]);

  auto out_serial = serial.cp.ExchangeBatch(items_serial);
  auto out_sharded = sharded.cp.ExchangeBatch(items_sharded);
  ASSERT_EQ(out_serial.size(), out_sharded.size());
  for (std::size_t i = 0; i < out_serial.size(); ++i) {
    EXPECT_EQ(out_serial[i].status, out_sharded[i].status) << "item " << i;
    EXPECT_EQ(out_serial[i].anonymous_license.Serialize(),
              out_sharded[i].anonymous_license.Serialize())
        << "item " << i;
  }
  for (int i = 0; i < kLicenses; ++i) {
    EXPECT_EQ(out_serial[i].status, Status::kOk);
  }
  EXPECT_EQ(out_serial[kLicenses].status, Status::kAlreadySpent);
  EXPECT_EQ(serial.cp.LicensesIssued(), sharded.cp.LicensesIssued());

  auto timings = sharded.cp.LastBatchTimings();
  EXPECT_EQ(timings.items, items_sharded.size());
  EXPECT_GT(timings.verify_us, 0.0);
  EXPECT_GT(timings.issue_us, 0.0);

  // The single-item path is a batch of one: the next exchange issues
  // identical bytes on both stacks.
  rel::License one_serial = serial.NewBoundLicense(owner_serial);
  rel::License one_sharded = sharded.NewBoundLicense(owner_sharded);
  auto ex_serial = serial.cp.ExchangeForAnonymous(
      one_serial, serial.PossessionSig(owner_serial, one_serial));
  auto ex_sharded = sharded.cp.ExchangeForAnonymous(
      one_sharded, sharded.PossessionSig(owner_sharded, one_sharded));
  ASSERT_EQ(ex_serial.status, Status::kOk);
  EXPECT_EQ(ex_serial.anonymous_license.Serialize(),
            ex_sharded.anonymous_license.Serialize());

  // The bearers are genuine and redeemable downstream.
  Pseudonym* taker = serial.NewPseudonym();
  EXPECT_EQ(serial.cp
                .RedeemAnonymous(out_serial[0].anonymous_license, taker->cert)
                .status,
            Status::kOk);
}

TEST(ExchangePipeline, BatchMatchesSingleItemRejections) {
  Stack stack("exchange-rejects", 2);
  Pseudonym* owner = stack.NewPseudonym();

  rel::License good = stack.NewBoundLicense(owner);
  rel::License forged = stack.NewBoundLicense(owner);
  forged.issuer_signature[0] ^= 0x01;

  // A genuinely non-transferable license (the rights are signed, so
  // flipping the bit on a retail license would only look like a
  // forgery).
  rel::Rights no_transfer = rel::Rights::FullRetail();
  no_transfer.allow_transfer = false;
  rel::ContentId locked_content = stack.cp.Publish(
      "Locked", std::vector<std::uint8_t>(16, 0x11), 30, no_transfer);
  auto locked = stack.cp.Purchase(owner->cert, locked_content, stack.Pay(30));
  ASSERT_EQ(locked.status, Status::kOk);

  rel::License good2 = stack.NewBoundLicense(owner);

  std::vector<ContentProvider::ExchangeItem> items;
  items.push_back({good, stack.PossessionSig(owner, good)});       // ok
  items.push_back({forged, stack.PossessionSig(owner, forged)});   // bad sig
  items.push_back(
      {locked.license, stack.PossessionSig(owner, locked.license)});  // no xfer
  items.push_back({good2, stack.PossessionSig(owner, good)});  // wrong proof

  auto out = stack.cp.ExchangeBatch(items);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].status, Status::kOk);
  EXPECT_EQ(out[1].status, Status::kBadSignature);
  EXPECT_EQ(out[2].status, Status::kNotTransferable);
  EXPECT_EQ(out[3].status, Status::kBadSignature);

  // Statuses match the single-item path for the same inputs.
  EXPECT_EQ(
      stack.cp.ExchangeForAnonymous(forged, items[1].possession_sig).status,
      Status::kBadSignature);
  EXPECT_EQ(stack.cp.ExchangeForAnonymous(locked.license,
                                          items[2].possession_sig)
                .status,
            Status::kNotTransferable);
  EXPECT_EQ(
      stack.cp.ExchangeForAnonymous(good2, items[3].possession_sig).status,
      Status::kBadSignature);
}

TEST(ExchangePipeline, OverloadShedsAtSpendStageAndLeavesNoTrace) {
  // One shard with a one-item queue: while the worker is parked on a
  // gate task, every SpendBatch submission is shed.
  Stack stack("exchange-shed", 1, 512, /*queue_capacity=*/1);
  Pseudonym* owner = stack.NewPseudonym();
  std::vector<ContentProvider::ExchangeItem> items;
  for (int i = 0; i < 3; ++i) {
    rel::License lic = stack.NewBoundLicense(owner);
    items.push_back({lic, stack.PossessionSig(owner, lic)});
  }

  server::ServerRuntime* rt = stack.cp.Runtime();
  ASSERT_NE(rt, nullptr);
  std::size_t spent_before = stack.cp.SpentSetSize();
  std::uint64_t issued_before = stack.cp.LicensesIssued();
  OpCounters ops_before = AggregateOps();

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  rt->Submit(0, [gate](server::ShardContext&) { gate.wait(); });

  auto shed = stack.cp.ExchangeBatch(items);
  release.set_value();
  rt->Drain();

  // Every item was shed at the mutate stage: typed status, no spend, no
  // bearer signed, nothing issued — the held licenses are untouched.
  for (const auto& r : shed) EXPECT_EQ(r.status, Status::kOverloaded);
  EXPECT_EQ(stack.cp.SpentSetSize(), spent_before);
  EXPECT_EQ(stack.cp.LicensesIssued(), issued_before);
  EXPECT_EQ((AggregateOps() - ops_before).sign, 0u);
  // The verify stage did run (possession proofs cost full verifies).
  EXPECT_GT((AggregateOps() - ops_before).verify, 0u);

  // The identical retry succeeds once the queue has room.
  auto retried = stack.cp.ExchangeBatch(items);
  for (const auto& r : retried) EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(stack.cp.SpentSetSize(), spent_before + items.size());
}

// -- deposit batch -----------------------------------------------------------

Coin MintCoin(PaymentProvider* bank, crypto::HmacDrbg* rng,
              std::uint32_t denomination, const std::string& account) {
  Coin coin;
  rng->Fill(coin.serial.data(), coin.serial.size());
  coin.denomination = denomination;
  const crypto::RsaPublicKey& key = bank->DenominationKey(denomination);
  crypto::BlindingContext ctx =
      crypto::BlindMessage(key, coin.CanonicalBytes(), rng);
  bignum::BigInt blind_sig;
  EXPECT_EQ(bank->Withdraw(account, denomination, ctx.blinded, &blind_sig),
            Status::kOk);
  coin.signature = crypto::Unblind(key, ctx, blind_sig);
  return coin;
}

TEST(DepositPipeline, ExactlyOneCreditPerSerial) {
  for (std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
    SCOPED_TRACE("deposit_shards=" + std::to_string(shards));
    crypto::HmacDrbg rng("deposit-idem-" + std::to_string(shards));
    PaymentProviderConfig pc;
    pc.deposit_shards = shards;
    PaymentProvider bank(512, &rng, pc);
    bank.OpenAccount("pat", 1000);
    bank.OpenAccount("shop", 0);

    Coin a = MintCoin(&bank, &rng, 10, "pat");
    Coin b = MintCoin(&bank, &rng, 5, "pat");
    Coin forged = MintCoin(&bank, &rng, 10, "pat");
    forged.signature[0] ^= 0x01;

    // Same coin twice in ONE batch: one credit, one typed double-spend.
    std::vector<PaymentProvider::DepositItem> batch = {
        {a, "shop"}, {a, "shop"}, {b, "shop"}, {forged, "shop"},
        {b, "nobody"}};
    auto st = bank.DepositBatch(batch);
    ASSERT_EQ(st.size(), 5u);
    EXPECT_EQ(st[0], Status::kOk);
    EXPECT_EQ(st[1], Status::kDoubleSpend);
    EXPECT_EQ(st[2], Status::kOk);
    EXPECT_EQ(st[3], Status::kPaymentFailed);
    EXPECT_EQ(st[4], Status::kUnknownAccount);
    EXPECT_EQ(bank.Balance("shop"), 15u);
    EXPECT_EQ(bank.DepositedCoins(), 2u);
    EXPECT_EQ(bank.DoubleSpendAttempts(), 1u);

    // Across batches, and across the single/batched paths: the serial
    // set is shared, so a repeat is a double spend everywhere.
    EXPECT_EQ(bank.DepositBatch({{a, "shop"}})[0], Status::kDoubleSpend);
    EXPECT_EQ(bank.Deposit(b, "shop"), Status::kDoubleSpend);
    Coin c = MintCoin(&bank, &rng, 20, "pat");
    EXPECT_EQ(bank.Deposit(c, "shop"), Status::kOk);
    EXPECT_EQ(bank.DepositBatch({{c, "shop"}})[0], Status::kDoubleSpend);
    EXPECT_EQ(bank.Balance("shop"), 35u);
    EXPECT_EQ(bank.DepositedCoins(), 3u);
    EXPECT_EQ(bank.DoubleSpendAttempts(), 4u);
  }
}

TEST(DepositPipeline, ShardedBatchMatchesSerialStatuses) {
  crypto::HmacDrbg rng_a("deposit-deterministic");
  crypto::HmacDrbg rng_b("deposit-deterministic");
  PaymentProviderConfig sharded_cfg;
  sharded_cfg.deposit_shards = 4;
  PaymentProvider serial(512, &rng_a);
  PaymentProvider sharded(512, &rng_b, sharded_cfg);
  std::vector<PaymentProvider::DepositItem> items_serial, items_sharded;
  serial.OpenAccount("pat", 1000);
  serial.OpenAccount("shop", 0);
  sharded.OpenAccount("pat", 1000);
  sharded.OpenAccount("shop", 0);
  for (int i = 0; i < 8; ++i) {
    items_serial.push_back({MintCoin(&serial, &rng_a, 5, "pat"), "shop"});
    items_sharded.push_back({MintCoin(&sharded, &rng_b, 5, "pat"), "shop"});
  }
  items_serial.push_back(items_serial[2]);
  items_sharded.push_back(items_sharded[2]);

  auto st_serial = serial.DepositBatch(items_serial);
  auto st_sharded = sharded.DepositBatch(items_sharded);
  EXPECT_EQ(st_serial, st_sharded);
  EXPECT_EQ(serial.Balance("shop"), sharded.Balance("shop"));
  EXPECT_EQ(st_serial.back(), Status::kDoubleSpend);
}

// -- client retry loop -------------------------------------------------------

/// Builds a batch response shedding every sub-request with \p hint_ms.
std::vector<std::uint8_t> ShedAll(const net::RequestEnvelope& env,
                                  std::uint32_t hint_ms) {
  net::ByteReader r(env.payload);
  std::uint32_t n = r.U32();
  net::ByteWriter body;
  body.U32(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    r.U8();
    r.Blob();
    body.U8(static_cast<std::uint8_t>(Status::kOverloaded));
    net::ByteWriter hint;
    hint.U32(hint_ms);
    body.Blob(hint.Take());
  }
  net::ResponseEnvelope resp;
  resp.tag = env.tag;
  resp.correlation_id = env.correlation_id;
  resp.status = Status::kOk;
  resp.payload = body.Take();
  return resp.Encode();
}

class AgentRetryTest : public ::testing::Test {
 protected:
  AgentRetryTest() : rng_("agent-retry") {
    SystemConfig cfg;
    cfg.ca_key_bits = 512;
    cfg.ttp_key_bits = 512;
    cfg.bank_key_bits = 512;
    cfg.cp.signing_key_bits = 512;
    system_ = std::make_unique<P2drmSystem>(cfg, &rng_);
    content_ = system_->cp().Publish(
        "Song", std::vector<std::uint8_t>(64, 0x5a), 7,
        rel::Rights::FullRetail());

    AgentConfig acfg;
    acfg.pseudonym_bits = 512;
    acfg.overload_max_attempts = 3;
    acfg.overload_backoff_cap_ms = 1;  // honor hints without slow sleeps
    agent_ = std::make_unique<UserAgent>("alice", acfg, system_.get(), &rng_);

    // Interpose the cp endpoint: the first `shed_batches_` batch
    // envelopes are shed wholesale with a typed hint (the server is
    // never invoked), everything else dispatches normally.
    system_->transport().RegisterEndpoint(
        P2drmSystem::kCpEndpoint,
        [this](const std::vector<std::uint8_t>& wire) {
          net::RequestEnvelope env = net::RequestEnvelope::Decode(wire);
          if (env.tag == net::kBatchTag && batch_calls_++ < shed_batches_) {
            return ShedAll(env, hint_ms_);
          }
          return system_->cp_service().Dispatch(wire);
        });
  }

  crypto::HmacDrbg rng_;
  std::unique_ptr<P2drmSystem> system_;
  std::unique_ptr<UserAgent> agent_;
  rel::ContentId content_ = 0;
  int batch_calls_ = 0;
  int shed_batches_ = 0;
  std::uint32_t hint_ms_ = 7;
};

TEST_F(AgentRetryTest, RetriesShedItemsAndSucceeds) {
  shed_batches_ = 1;
  std::vector<rel::License> lics;
  auto statuses = agent_->BuyContentBatch({content_, content_}, &lics);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[1], Status::kOk);
  EXPECT_FALSE(lics[0].wrapped_content_key.empty());

  const RetryStats& stats = agent_->OverloadRetries();
  EXPECT_EQ(stats.retried_items, 2u);      // both items re-sent once
  EXPECT_EQ(stats.retry_round_trips, 1u);  // in one extra round trip
  EXPECT_EQ(stats.backoff_ms, 1u);         // hint 7ms honored, capped at 1
  EXPECT_EQ(stats.exhausted_items, 0u);
  EXPECT_EQ(batch_calls_, 2);
}

TEST_F(AgentRetryTest, StopsAtAttemptBudgetAndRefundsCoins) {
  shed_batches_ = 1 << 20;  // server never recovers
  std::uint64_t wallet_before = agent_->WalletValue() +
                                system_->bank().Balance("alice");
  auto statuses = agent_->BuyContentBatch({content_}, nullptr);
  EXPECT_EQ(statuses[0], Status::kOverloaded);
  EXPECT_EQ(batch_calls_, 3);  // budget: 1 try + 2 retries

  const RetryStats& stats = agent_->OverloadRetries();
  EXPECT_EQ(stats.retried_items, 2u);
  EXPECT_EQ(stats.retry_round_trips, 2u);
  EXPECT_EQ(stats.exhausted_items, 1u);
  // A shed item provably never executed: the coins are refunded, so no
  // value was destroyed.
  EXPECT_EQ(agent_->WalletValue() + system_->bank().Balance("alice"),
            wallet_before);
}

TEST_F(AgentRetryTest, VirtualTimeBackoffHonorsMultiSecondHintsNoSleeps) {
  // A server that never recovers, hinting FIVE SECONDS per retry — with
  // real sleeps the budget below would cost 10s of wall clock. The wait
  // hook serves every wait by advancing the system's virtual timebase
  // instead, so the retry loop, the refund path and the metrics are all
  // exercised at zero wall-clock cost (the ISSUE 5 open item).
  shed_batches_ = 1 << 20;
  hint_ms_ = 5000;

  AgentConfig acfg;
  acfg.pseudonym_bits = 512;
  acfg.overload_max_attempts = 3;
  acfg.overload_backoff_cap_ms = 60'000;  // do not cap the 5s hints
  sim::VirtualClock& timebase = system_->timebase();
  acfg.wait_hook = [&timebase](std::uint32_t wait_ms) {
    timebase.AdvanceUs(static_cast<std::uint64_t>(wait_ms) * 1000ull);
  };
  UserAgent bob("bob", acfg, system_.get(), &rng_);

  std::uint64_t virtual_t0_us = timebase.NowUs();
  std::uint64_t wealth_before =
      bob.WalletValue() + system_->bank().Balance("bob");
  auto wall_t0 = std::chrono::steady_clock::now();
  auto statuses = bob.BuyContentBatch({content_}, nullptr);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_t0)
                       .count();

  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], Status::kOverloaded);
  const RetryStats& stats = bob.OverloadRetries();
  EXPECT_EQ(stats.retried_items, 2u);
  EXPECT_EQ(stats.retry_round_trips, 2u);
  EXPECT_EQ(stats.exhausted_items, 1u);
  // Both 5s hints honored IN FULL — in virtual time, deterministically.
  EXPECT_EQ(stats.backoff_ms, 10'000u);
  EXPECT_EQ(timebase.NowUs() - virtual_t0_us, 10'000'000u);
  // Wall clock saw crypto, not waiting: far below the 10s of hints
  // (loose bound — TSan CI runs this file).
  EXPECT_LT(wall_ms, 5000.0);
  // The exhausted item's coins were provably never deposited: refunded.
  EXPECT_EQ(bob.WalletValue() + system_->bank().Balance("bob"),
            wealth_before);
}

// -- injectable pipeline time source -----------------------------------------

TEST(PipelineTimings, InjectedTimeSourcePinsStageTimings) {
  // A deterministic tick source makes LastBatchTimings exact: each
  // pipeline stage spans exactly one tick of 7us, wall clock nowhere.
  Stack stack("timings-injected", /*redeem_shards=*/0, 512);
  std::uint64_t tick = 0;
  stack.cp.set_time_source([&tick]() {
    tick += 7;
    return tick;
  });

  Pseudonym* giver = stack.NewPseudonym();
  Pseudonym* taker = stack.NewPseudonym();
  std::vector<ContentProvider::RedeemItem> items;
  items.push_back({stack.NewBearer(giver), taker->cert});
  items.push_back({stack.NewBearer(giver), taker->cert});
  auto results = stack.cp.RedeemAnonymousBatch(items);
  for (const auto& r : results) ASSERT_EQ(r.status, Status::kOk);

  auto timings = stack.cp.LastBatchTimings();
  EXPECT_EQ(timings.items, 2u);
  EXPECT_EQ(timings.verify_us, 7.0);
  EXPECT_EQ(timings.spend_us, 7.0);
  EXPECT_EQ(timings.issue_us, 7.0);
  // End-to-end span of the synchronous run: first verify sample to last
  // issue sample, 5 ticks.
  EXPECT_EQ(timings.makespan_us, 35.0);
}

// -- client exchange batch ---------------------------------------------------

TEST(ExchangeClientBatch, GiveAndReceiveBatchRoundTrip) {
  crypto::HmacDrbg rng("exchange-client-batch");
  SystemConfig cfg;
  cfg.ca_key_bits = 512;
  cfg.ttp_key_bits = 512;
  cfg.bank_key_bits = 512;
  cfg.cp.signing_key_bits = 512;
  cfg.cp.redeem_shards = 2;   // exchange/redeem issue on shard workers
  cfg.bank.deposit_shards = 2;  // coin checks shard at the bank
  P2drmSystem system(cfg, &rng);
  std::vector<rel::ContentId> contents;
  for (int i = 0; i < 3; ++i) {
    contents.push_back(system.cp().Publish(
        "title-" + std::to_string(i), std::vector<std::uint8_t>(64, 0x5a),
        10, rel::Rights::FullRetail()));
  }

  AgentConfig acfg;
  acfg.pseudonym_bits = 512;
  UserAgent alice("alice", acfg, &system, &rng);
  UserAgent bob("bob", acfg, &system, &rng);

  std::vector<rel::License> lics;
  auto bought = alice.BuyContentBatch(contents, &lics);
  std::vector<rel::LicenseId> ids;
  for (std::size_t i = 0; i < bought.size(); ++i) {
    ASSERT_EQ(bought[i], Status::kOk);
    ids.push_back(lics[i].id);
  }

  // One round trip gives all three away; the device forgets them.
  std::vector<std::vector<std::uint8_t>> bearers;
  auto gave = alice.GiveLicenseBatch(ids, &bearers);
  for (std::size_t i = 0; i < gave.size(); ++i) {
    EXPECT_EQ(gave[i], Status::kOk) << "item " << i;
    EXPECT_FALSE(bearers[i].empty());
    EXPECT_EQ(alice.device().FindLicense(ids[i]), nullptr);
  }

  // One round trip redeems all three on Bob's side.
  auto received = bob.ReceiveLicenseBatch(bearers);
  for (Status s : received) EXPECT_EQ(s, Status::kOk);
  EXPECT_EQ(bob.Play(contents[0]).decision, rel::Decision::kAllow);

  // A copied bearer cannot be redeemed twice.
  auto replay = bob.ReceiveLicenseBatch(bearers);
  for (Status s : replay) EXPECT_EQ(s, Status::kAlreadySpent);

  // An unknown id fails locally and spends no round trip for that item.
  rel::LicenseId bogus;
  auto missing = alice.GiveLicenseBatch({bogus}, nullptr);
  EXPECT_EQ(missing[0], Status::kBadRequest);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
