// Unit and property tests for the BigInt arithmetic substrate.

#include "bignum/bigint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "bignum/montgomery.h"

namespace p2drm {
namespace bignum {
namespace {

TEST(BigIntBasics, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.IsNegative());
  EXPECT_EQ(z.ToHex(), "0");
  EXPECT_EQ(z.ToDec(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
}

TEST(BigIntBasics, Int64Construction) {
  EXPECT_EQ(BigInt(0).ToDec(), "0");
  EXPECT_EQ(BigInt(1).ToDec(), "1");
  EXPECT_EQ(BigInt(-1).ToDec(), "-1");
  EXPECT_EQ(BigInt(123456789).ToDec(), "123456789");
  EXPECT_EQ(BigInt(-9223372036854775807LL).ToDec(), "-9223372036854775807");
  EXPECT_EQ(BigInt::FromUint64(0xffffffffffffffffull).ToHex(),
            "ffffffffffffffff");
}

TEST(BigIntBasics, HexRoundTrip) {
  const char* cases[] = {"0", "1", "ff", "100", "deadbeef",
                         "123456789abcdef0123456789abcdef",
                         "ffffffffffffffffffffffffffffffff"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::FromHex(c).ToHex(), c) << c;
  }
  EXPECT_EQ(BigInt::FromHex("-ff").ToHex(), "-ff");
  EXPECT_EQ(BigInt::FromHex("0xABC").ToHex(), "abc");
}

TEST(BigIntBasics, DecRoundTrip) {
  const char* cases[] = {"0", "7", "4294967296", "18446744073709551616",
                         "340282366920938463463374607431768211455",
                         "99999999999999999999999999999999999999999"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::FromDec(c).ToDec(), c) << c;
  }
  EXPECT_EQ(BigInt::FromDec("-12345678901234567890").ToDec(),
            "-12345678901234567890");
}

TEST(BigIntBasics, FromHexRejectsGarbage) {
  EXPECT_THROW(BigInt::FromHex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigInt::FromDec("12a"), std::invalid_argument);
}

TEST(BigIntBasics, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::FromBytes(bytes);
  EXPECT_EQ(v.ToHex(), "102030405");
  EXPECT_EQ(v.ToBytes(), bytes);
}

TEST(BigIntBasics, BytesLeadingZerosStripped) {
  std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x7f};
  BigInt v = BigInt::FromBytes(bytes);
  EXPECT_EQ(v.ToBytes(), std::vector<std::uint8_t>({0x7f}));
}

TEST(BigIntBasics, ToBytesPadded) {
  BigInt v = BigInt::FromHex("abcd");
  auto padded = v.ToBytesPadded(4);
  EXPECT_EQ(padded, std::vector<std::uint8_t>({0x00, 0x00, 0xab, 0xcd}));
  EXPECT_THROW(v.ToBytesPadded(1), std::length_error);
}

TEST(BigIntBasics, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(2).BitLength(), 2u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::FromHex("1" + std::string(64, '0')).BitLength(), 257u);
}

TEST(BigIntArith, AdditionSigns) {
  EXPECT_EQ((BigInt(5) + BigInt(7)).ToDec(), "12");
  EXPECT_EQ((BigInt(-5) + BigInt(-7)).ToDec(), "-12");
  EXPECT_EQ((BigInt(5) + BigInt(-7)).ToDec(), "-2");
  EXPECT_EQ((BigInt(-5) + BigInt(7)).ToDec(), "2");
  EXPECT_EQ((BigInt(5) + BigInt(-5)).ToDec(), "0");
}

TEST(BigIntArith, SubtractionSigns) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).ToDec(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).ToDec(), "2");
  EXPECT_EQ((BigInt(5) - BigInt(5)).ToDec(), "0");
}

TEST(BigIntArith, CarryPropagation) {
  BigInt a = BigInt::FromHex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a + BigInt(1)).ToHex(), "100000000000000000000000000000000");
  EXPECT_EQ((a + BigInt(1) - BigInt(1)).ToHex(), a.ToHex());
}

TEST(BigIntArith, MultiplySmall) {
  EXPECT_EQ((BigInt(12345) * BigInt(6789)).ToDec(), "83810205");
  EXPECT_EQ((BigInt(-12345) * BigInt(6789)).ToDec(), "-83810205");
  EXPECT_EQ((BigInt(-12345) * BigInt(-6789)).ToDec(), "83810205");
  EXPECT_EQ((BigInt(12345) * BigInt(0)).ToDec(), "0");
}

TEST(BigIntArith, MultiplyLargeKnown) {
  // 2^128 - 1 squared = 2^256 - 2^129 + 1
  BigInt a = BigInt::FromHex("ffffffffffffffffffffffffffffffff");
  BigInt sq = a * a;
  BigInt expected = (BigInt(1) << 256) - (BigInt(1) << 129) + BigInt(1);
  EXPECT_EQ(sq.ToHex(), expected.ToHex());
}

TEST(BigIntArith, DivModSmall) {
  BigInt q, r;
  BigInt::DivMod(BigInt(100), BigInt(7), &q, &r);
  EXPECT_EQ(q.ToDec(), "14");
  EXPECT_EQ(r.ToDec(), "2");
}

TEST(BigIntArith, DivModCSemantics) {
  // Truncated division; remainder carries dividend sign.
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToDec(), "-3");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToDec(), "-1");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToDec(), "-3");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToDec(), "1");
}

TEST(BigIntArith, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
}

TEST(BigIntArith, ModNonNegative) {
  EXPECT_EQ(BigInt(-7).Mod(BigInt(3)).ToDec(), "2");
  EXPECT_EQ(BigInt(7).Mod(BigInt(3)).ToDec(), "1");
  EXPECT_EQ(BigInt(-9).Mod(BigInt(3)).ToDec(), "0");
}

TEST(BigIntArith, KnuthDHardCase) {
  // Forces the qhat correction path: divisor top limb just below 2^32.
  BigInt num = BigInt::FromHex("7fffffff800000010000000000000000");
  BigInt den = BigInt::FromHex("800000008000000200000005");
  BigInt q, r;
  BigInt::DivMod(num, den, &q, &r);
  EXPECT_EQ((q * den + r).ToHex(), num.ToHex());
  EXPECT_LT(r.CompareMagnitude(den), 0);
}

TEST(BigIntArith, Shifts) {
  BigInt v = BigInt::FromHex("123456789abcdef");
  EXPECT_EQ((v << 4).ToHex(), "123456789abcdef0");
  EXPECT_EQ((v >> 4).ToHex(), "123456789abcde");
  EXPECT_EQ((v << 64 >> 64).ToHex(), v.ToHex());
  EXPECT_EQ((v >> 200).ToHex(), "0");
  EXPECT_EQ((BigInt(1) << 100).BitLength(), 101u);
}

TEST(BigIntArith, SqrtExactAndFloor) {
  EXPECT_EQ(BigInt(0).Sqrt().ToDec(), "0");
  EXPECT_EQ(BigInt(1).Sqrt().ToDec(), "1");
  EXPECT_EQ(BigInt(144).Sqrt().ToDec(), "12");
  EXPECT_EQ(BigInt(145).Sqrt().ToDec(), "12");
  BigInt big = BigInt::FromDec("123456789123456789");
  BigInt s = big.Sqrt();
  EXPECT_LE((s * s).Compare(big), 0);
  BigInt s1 = s + BigInt(1);
  EXPECT_GT((s1 * s1).Compare(big), 0);
}

TEST(BigIntModular, PowModKnown) {
  // 3^200 mod 50 = 1 (3^20 ≡ 1 mod 50, 200 = 20*10)
  EXPECT_EQ(BigInt(3).PowMod(BigInt(200), BigInt(50)).ToDec(), "1");
  // Fermat: a^(p-1) ≡ 1 mod p
  BigInt p = BigInt::FromDec("1000000007");
  EXPECT_EQ(BigInt(123456).PowMod(p - BigInt(1), p).ToDec(), "1");
  // mod 1 == 0
  EXPECT_EQ(BigInt(5).PowMod(BigInt(3), BigInt(1)).ToDec(), "0");
  // exponent 0
  EXPECT_EQ(BigInt(5).PowMod(BigInt(0), BigInt(7)).ToDec(), "1");
}

TEST(BigIntModular, PowModEvenModulus) {
  // Even modulus exercises the non-Montgomery path.
  EXPECT_EQ(BigInt(3).PowMod(BigInt(5), BigInt(100)).ToDec(), "43");
  EXPECT_EQ(BigInt(7).PowMod(BigInt(4), BigInt(48)).ToDec(), "1");
}

TEST(BigIntModular, InvModKnown) {
  BigInt inv = BigInt(3).InvMod(BigInt(7));
  EXPECT_EQ(inv.ToDec(), "5");  // 3*5=15≡1 mod 7
  EXPECT_THROW(BigInt(2).InvMod(BigInt(4)), std::domain_error);
}

TEST(BigIntModular, GcdKnown) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(18)).ToDec(), "6");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToDec(), "5");
  EXPECT_EQ(BigInt::Gcd(BigInt(-48), BigInt(18)).ToDec(), "6");
}

TEST(BigIntModular, ExtendedGcdBezout) {
  BigInt x, y;
  BigInt g = BigInt::ExtendedGcd(BigInt(240), BigInt(46), &x, &y);
  EXPECT_EQ(g.ToDec(), "2");
  EXPECT_EQ((BigInt(240) * x + BigInt(46) * y).ToDec(), "2");
}

// ---------------------------------------------------------------------------
// Randomized property tests against 64-bit reference arithmetic.
// ---------------------------------------------------------------------------

class BigIntPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BigIntPropertyTest, MatchesUint64Arithmetic) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = rng() >> (rng() % 33);
    std::uint64_t b = rng() >> (rng() % 33);
    BigInt ba = BigInt::FromUint64(a);
    BigInt bb = BigInt::FromUint64(b);
    if (a <= ~b) {  // a + b does not wrap
      EXPECT_EQ((ba + bb).ToHex(), BigInt::FromUint64(a + b).ToHex());
    }
    if (a >= b) {
      EXPECT_EQ((ba - bb).ToHex(), BigInt::FromUint64(a - b).ToHex());
    }
    // 32x32 multiply fits in 64 bits.
    std::uint64_t a32 = a & 0xffffffffu, b32 = b & 0xffffffffu;
    EXPECT_EQ((BigInt::FromUint64(a32) * BigInt::FromUint64(b32)).ToHex(),
              BigInt::FromUint64(a32 * b32).ToHex());
    if (b != 0) {
      EXPECT_EQ((ba / bb).ToHex(), BigInt::FromUint64(a / b).ToHex());
      EXPECT_EQ((ba % bb).ToHex(), BigInt::FromUint64(a % b).ToHex());
    }
  }
}

TEST_P(BigIntPropertyTest, DivModInvariantWideOperands) {
  std::mt19937_64 rng(GetParam() * 7919u + 13u);
  for (int i = 0; i < 100; ++i) {
    // Random widths from 1 to 12 limbs.
    auto random_bigint = [&rng](int limbs) {
      std::vector<std::uint32_t> v(limbs);
      for (auto& l : v) l = static_cast<std::uint32_t>(rng());
      return BigInt::FromLimbs(std::move(v), false);
    };
    BigInt num = random_bigint(1 + static_cast<int>(rng() % 12));
    BigInt den = random_bigint(1 + static_cast<int>(rng() % 8));
    if (den.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(num, den, &q, &r);
    EXPECT_EQ((q * den + r).ToHex(), num.ToHex());
    EXPECT_LT(r.CompareMagnitude(den), 0);
  }
}

TEST_P(BigIntPropertyTest, MulCommutativeAssociativeDistributive) {
  std::mt19937_64 rng(GetParam() * 104729u + 7u);
  auto random_bigint = [&rng](int limbs) {
    std::vector<std::uint32_t> v(limbs);
    for (auto& l : v) l = static_cast<std::uint32_t>(rng());
    return BigInt::FromLimbs(std::move(v), rng() % 2 == 0);
  };
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_bigint(1 + static_cast<int>(rng() % 6));
    BigInt b = random_bigint(1 + static_cast<int>(rng() % 6));
    BigInt c = random_bigint(1 + static_cast<int>(rng() % 6));
    EXPECT_EQ((a * b).ToHex(), (b * a).ToHex());
    EXPECT_EQ(((a * b) * c).ToHex(), (a * (b * c)).ToHex());
    EXPECT_EQ((a * (b + c)).ToHex(), (a * b + a * c).ToHex());
  }
}

TEST_P(BigIntPropertyTest, KaratsubaMatchesSchoolbook) {
  // Operands above the Karatsuba threshold (32 limbs) checked against the
  // identity (a*b)/b == a.
  std::mt19937_64 rng(GetParam() * 31337u + 3u);
  auto random_bigint = [&rng](int limbs) {
    std::vector<std::uint32_t> v(limbs);
    for (auto& l : v) l = static_cast<std::uint32_t>(rng());
    if (!v.empty() && v.back() == 0) v.back() = 1;
    return BigInt::FromLimbs(std::move(v), false);
  };
  for (int i = 0; i < 10; ++i) {
    BigInt a = random_bigint(40 + static_cast<int>(rng() % 40));
    BigInt b = random_bigint(40 + static_cast<int>(rng() % 40));
    BigInt prod = a * b;
    EXPECT_EQ((prod / b).ToHex(), a.ToHex());
    EXPECT_EQ((prod % b).ToHex(), "0");
  }
}

TEST_P(BigIntPropertyTest, ShiftMultiplyEquivalence) {
  std::mt19937_64 rng(GetParam() * 65537u + 11u);
  for (int i = 0; i < 50; ++i) {
    std::uint64_t v = rng();
    std::size_t s = rng() % 100;
    BigInt b = BigInt::FromUint64(v);
    EXPECT_EQ((b << s).ToHex(), (b * (BigInt(1) << s)).ToHex());
    EXPECT_EQ((b >> s).ToHex(), (b / (BigInt(1) << s)).ToHex());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

// ---------------------------------------------------------------------------
// Montgomery context.
// ---------------------------------------------------------------------------

TEST(Montgomery, RejectsBadModuli) {
  EXPECT_THROW(Montgomery(BigInt(0)), std::domain_error);
  EXPECT_THROW(Montgomery(BigInt(1)), std::domain_error);
  EXPECT_THROW(Montgomery(BigInt(8)), std::domain_error);
  EXPECT_THROW(Montgomery(BigInt(-7)), std::domain_error);
}

TEST(Montgomery, RoundTripForm) {
  BigInt m = BigInt::FromDec("1000000007");
  Montgomery mont(m);
  for (std::int64_t v : {0LL, 1LL, 2LL, 999999999LL, 123456789LL}) {
    BigInt x(v);
    EXPECT_EQ(mont.FromMont(mont.ToMont(x)).ToDec(), x.ToDec());
  }
}

TEST(Montgomery, MulMatchesMulMod) {
  BigInt m = BigInt::FromHex("f000000000000000000000000000000d");  // odd
  Montgomery mont(m);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::FromUint64(rng()).Mod(m);
    BigInt b = BigInt::FromUint64(rng()) * BigInt::FromUint64(rng());
    b = b.Mod(m);
    BigInt expect = a.MulMod(b, m);
    BigInt got = mont.FromMont(
        mont.MulMont(mont.ToMont(a), mont.ToMont(b)));
    EXPECT_EQ(got.ToHex(), expect.ToHex());
  }
}

TEST(Montgomery, PowModMatchesNaive) {
  BigInt m = BigInt::FromDec("999999999989");  // prime, odd
  Montgomery mont(m);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20; ++i) {
    BigInt base = BigInt::FromUint64(rng()).Mod(m);
    std::uint64_t exp = rng() % 1000;
    BigInt naive(1);
    for (std::uint64_t k = 0; k < exp; ++k) naive = naive.MulMod(base, m);
    EXPECT_EQ(mont.PowMod(base, BigInt::FromUint64(exp)).ToHex(),
              naive.ToHex());
  }
}

TEST(Montgomery, LargeModulusFermat) {
  // 2^127 - 1 is a Mersenne prime.
  BigInt p = (BigInt(1) << 127) - BigInt(1);
  Montgomery mont(p);
  BigInt a = BigInt::FromDec("31415926535897932384626433");
  EXPECT_EQ(mont.PowMod(a, p - BigInt(1)).ToDec(), "1");
}

}  // namespace
}  // namespace bignum
}  // namespace p2drm
