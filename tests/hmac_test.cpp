// HMAC-SHA256 (RFC 4231) and HKDF (RFC 5869) test vectors.

#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace crypto {
namespace {

std::vector<std::uint8_t> FromHex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

TEST(Hmac, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  std::string msg = "Hi There";
  Digest256 mac = HmacSha256(
      key, reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  std::string key_s = "Jefe";
  std::vector<std::uint8_t> key(key_s.begin(), key_s.end());
  std::string msg = "what do ya want for nothing?";
  Digest256 mac = HmacSha256(
      key, reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  std::vector<std::uint8_t> key(20, 0xaa);
  std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(DigestToHex(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  std::vector<std::uint8_t> key(131, 0xaa);
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  Digest256 mac = HmacSha256(
      key, reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  std::vector<std::uint8_t> ikm(22, 0x0b);
  std::vector<std::uint8_t> salt = FromHex("000102030405060708090a0b0c");
  std::vector<std::uint8_t> info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  Digest256 prk = HkdfExtract(salt, ikm);
  EXPECT_EQ(DigestToHex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  std::vector<std::uint8_t> okm = HkdfExpand(prk, info, 42);
  std::vector<std::uint8_t> expected = FromHex(
      "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
      "34007208d5b887185865");
  EXPECT_EQ(okm, expected);
}

TEST(Hkdf, EmptySaltUsesZeros) {
  std::vector<std::uint8_t> ikm(22, 0x0b);
  Digest256 prk = HkdfExtract({}, ikm);
  // RFC 5869 test case 3 PRK.
  EXPECT_EQ(DigestToHex(prk),
            "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
  std::vector<std::uint8_t> okm = HkdfExpand(prk, {}, 42);
  std::vector<std::uint8_t> expected = FromHex(
      "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
      "9d201395faa4b61a96c8");
  EXPECT_EQ(okm, expected);
}

TEST(Hkdf, ExpandLengthLimit) {
  Digest256 prk{};
  EXPECT_NO_THROW(HkdfExpand(prk, {}, 255 * 32));
  EXPECT_THROW(HkdfExpand(prk, {}, 255 * 32 + 1), std::length_error);
}

TEST(ConstantTime, EqualsAndDiffers) {
  std::vector<std::uint8_t> a = {1, 2, 3, 4};
  std::vector<std::uint8_t> b = {1, 2, 3, 4};
  std::vector<std::uint8_t> c = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEquals(a.data(), b.data(), 4));
  EXPECT_FALSE(ConstantTimeEquals(a.data(), c.data(), 4));
  EXPECT_TRUE(ConstantTimeEquals(a.data(), c.data(), 3));
  EXPECT_TRUE(ConstantTimeEquals(a.data(), b.data(), 0));
}

}  // namespace
}  // namespace crypto
}  // namespace p2drm
