// Whole-system wiring: latency accounting, fraud pipeline edge cases,
// multi-party scenarios that cross several actors.

#include "core/system.h"

#include <gtest/gtest.h>

#include "core/agent.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

SystemConfig SmallConfig() {
  SystemConfig cfg;
  cfg.ca_key_bits = 512;
  cfg.ttp_key_bits = 512;
  cfg.bank_key_bits = 512;
  cfg.cp.signing_key_bits = 512;
  return cfg;
}

AgentConfig SmallAgent() {
  AgentConfig cfg;
  cfg.pseudonym_bits = 512;
  return cfg;
}

TEST(SystemTest, LatencyModelAccumulatesAcrossFullFlow) {
  crypto::HmacDrbg rng("system-latency");
  SystemConfig cfg = SmallConfig();
  cfg.latency.per_message_us = 1000;
  P2drmSystem system(cfg, &rng);
  rel::ContentId c = system.cp().Publish("X", {1, 2, 3}, 5,
                                         rel::Rights::FullRetail());
  std::uint64_t t0 = system.transport().SimulatedTimeUs();
  UserAgent alice("alice", SmallAgent(), &system, &rng);
  ASSERT_EQ(alice.BuyContent(c, nullptr), Status::kOk);
  std::uint64_t elapsed = system.transport().SimulatedTimeUs() - t0;
  // Enrol(2 RTs) + pseudonym(1 RT) + withdraw(>=1 RT) + purchase(1 RT):
  // at least 10 message-halves of 1ms each.
  EXPECT_GE(elapsed, 10'000u);
}

TEST(SystemTest, ProcessFraudOnCleanSystemIsEmpty) {
  crypto::HmacDrbg rng("system-clean");
  P2drmSystem system(SmallConfig(), &rng);
  EXPECT_TRUE(system.ProcessFraud().empty());
  EXPECT_EQ(system.ttp().OpenedCount(), 0u);
}

TEST(SystemTest, MultipleFraudsAllIdentified) {
  crypto::HmacDrbg rng("system-multifraud");
  P2drmSystem system(SmallConfig(), &rng);
  rel::ContentId c = system.cp().Publish("X", {9}, 1,
                                         rel::Rights::FullRetail());
  UserAgent seller("seller", SmallAgent(), &system, &rng);
  UserAgent cheat1("cheat1", SmallAgent(), &system, &rng);
  UserAgent cheat2("cheat2", SmallAgent(), &system, &rng);
  UserAgent victim1("victim1", SmallAgent(), &system, &rng);
  UserAgent victim2("victim2", SmallAgent(), &system, &rng);

  // Two independent double-redemption frauds.
  for (auto [cheat, victim] :
       {std::pair<UserAgent*, UserAgent*>{&cheat1, &victim1},
        std::pair<UserAgent*, UserAgent*>{&cheat2, &victim2}}) {
    rel::License lic;
    ASSERT_EQ(seller.BuyContent(c, &lic), Status::kOk);
    std::vector<std::uint8_t> bearer;
    ASSERT_EQ(seller.GiveLicense(lic.id, &bearer), Status::kOk);
    ASSERT_EQ(cheat->ReceiveLicense(bearer, nullptr), Status::kOk);
    system.clock().Advance(1);
    ASSERT_EQ(victim->ReceiveLicense(bearer, nullptr),
              Status::kAlreadySpent);
  }

  auto identified = system.ProcessFraud();
  EXPECT_EQ(identified.size(), 2u);
  EXPECT_EQ(system.ttp().OpenedCount(), 2u);
  EXPECT_EQ(system.cp().Crl().Size(), 2u);
  // Queue drained: a second pass finds nothing.
  EXPECT_TRUE(system.ProcessFraud().empty());
}

TEST(SystemTest, RevokedTakerCannotRedeem) {
  crypto::HmacDrbg rng("system-revoked-taker");
  P2drmSystem system(SmallConfig(), &rng);
  rel::ContentId c = system.cp().Publish("X", {1}, 1,
                                         rel::Rights::FullRetail());
  UserAgent alice("alice", SmallAgent(), &system, &rng);
  AgentConfig reuse = SmallAgent();
  reuse.pseudonym_max_uses = 100;  // bob reuses one pseudonym
  UserAgent bob("bob", reuse, &system, &rng);

  // Bob's pseudonym gets revoked (e.g. after prior fraud).
  Pseudonym* bob_pseudonym = bob.EnsurePseudonym();
  system.cp().Revoke(bob_pseudonym->cert.KeyId());

  rel::License lic;
  ASSERT_EQ(alice.BuyContent(c, &lic), Status::kOk);
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kOk);
  EXPECT_EQ(bob.ReceiveLicense(bearer, nullptr), Status::kRevoked);
  // The bearer license was NOT consumed by the rejected attempt…
  UserAgent carol("carol", SmallAgent(), &system, &rng);
  EXPECT_EQ(carol.ReceiveLicense(bearer, nullptr), Status::kOk);
}

TEST(SystemTest, BankConservationAcrossTheEconomy) {
  crypto::HmacDrbg rng("system-conservation");
  P2drmSystem system(SmallConfig(), &rng);
  rel::ContentId c = system.cp().Publish("X", {1}, 7,
                                         rel::Rights::FullRetail());
  UserAgent alice("alice", SmallAgent(), &system, &rng);
  UserAgent bob("bob", SmallAgent(), &system, &rng);

  ASSERT_EQ(alice.BuyContent(c, nullptr), Status::kOk);
  ASSERT_EQ(bob.BuyContent(c, nullptr), Status::kOk);

  // Total value is conserved: accounts + outstanding wallet coins.
  std::uint64_t total = system.bank().Balance("alice") +
                        system.bank().Balance("bob") +
                        system.bank().Balance("cp") + alice.WalletValue() +
                        bob.WalletValue();
  EXPECT_EQ(total, 2000u);  // two opening balances of 1000
  EXPECT_EQ(system.bank().Balance("cp"), 14u);  // two sales at 7
}

TEST(SystemTest, BatchPurchaseMatchesSingleSemantics) {
  crypto::HmacDrbg rng("system-batch-buy");
  P2drmSystem system(SmallConfig(), &rng);
  rel::ContentId a = system.cp().Publish("A", {1}, 3,
                                         rel::Rights::FullRetail());
  rel::ContentId b = system.cp().Publish("B", {2}, 5,
                                         rel::Rights::FullRetail());
  AgentConfig acfg = SmallAgent();
  acfg.pseudonym_max_uses = 16;  // no fresh keygen per batch item
  UserAgent alice("alice", acfg, &system, &rng);

  std::uint64_t msgs_before = system.transport().GrandTotal().messages;
  alice.EnsurePseudonym();
  ASSERT_EQ(alice.WithdrawCoins(8), Status::kOk);  // pre-fund the wallet
  std::uint64_t prep_msgs =
      system.transport().GrandTotal().messages - msgs_before;

  std::vector<rel::License> licenses;
  auto statuses = alice.BuyContentBatch({a, 999999, b}, &licenses);
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[1], Status::kUnknownContent);  // failed locally
  EXPECT_EQ(statuses[2], Status::kOk);
  EXPECT_EQ(licenses[0].content_id, a);
  EXPECT_EQ(licenses[2].content_id, b);
  // Both licenses landed on the device.
  EXPECT_NE(alice.device().FindLicense(licenses[0].id), nullptr);
  EXPECT_NE(alice.device().FindLicense(licenses[2].id), nullptr);
  // The two server-side purchases rode ONE round trip (2 messages).
  std::uint64_t batch_msgs = system.transport().GrandTotal().messages -
                             msgs_before - prep_msgs;
  EXPECT_EQ(batch_msgs, 2u);
}

TEST(SystemTest, BatchRedeemDetectsDoubleSpendWithinBatch) {
  crypto::HmacDrbg rng("system-batch-redeem");
  P2drmSystem system(SmallConfig(), &rng);
  rel::ContentId c = system.cp().Publish("X", {1}, 1,
                                         rel::Rights::FullRetail());
  UserAgent seller("seller", SmallAgent(), &system, &rng);
  AgentConfig reuse = SmallAgent();
  reuse.pseudonym_max_uses = 16;
  UserAgent taker("taker", reuse, &system, &rng);

  rel::License l1, l2;
  ASSERT_EQ(seller.BuyContent(c, &l1), Status::kOk);
  ASSERT_EQ(seller.BuyContent(c, &l2), Status::kOk);
  std::vector<std::uint8_t> bearer1, bearer2;
  ASSERT_EQ(seller.GiveLicense(l1.id, &bearer1), Status::kOk);
  ASSERT_EQ(seller.GiveLicense(l2.id, &bearer2), Status::kOk);

  // One batch: valid, duplicate-of-first, garbage, valid.
  std::vector<rel::License> out;
  auto statuses = taker.ReceiveLicenseBatch(
      {bearer1, bearer1, {0x00, 0x01}, bearer2}, &out);
  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_EQ(statuses[0], Status::kOk);
  EXPECT_EQ(statuses[1], Status::kAlreadySpent);  // caught inside the batch
  EXPECT_EQ(statuses[2], Status::kBadRequest);    // never hit the wire
  EXPECT_EQ(statuses[3], Status::kOk);
  EXPECT_EQ(out[0].content_id, c);
  EXPECT_EQ(out[3].content_id, c);
}

TEST(SystemTest, TransferPreservesRightsExactly) {
  crypto::HmacDrbg rng("system-rights-preserved");
  P2drmSystem system(SmallConfig(), &rng);
  rel::Rights rights = rel::Rights::FullRetail();
  rights.play_count = 9;
  rights.min_security_level = 1;
  rel::ContentId c = system.cp().Publish("X", {1}, 3, rights);
  UserAgent alice("alice", SmallAgent(), &system, &rng);
  UserAgent bob("bob", SmallAgent(), &system, &rng);

  rel::License lic;
  ASSERT_EQ(alice.BuyContent(c, &lic), Status::kOk);
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kOk);
  rel::License bob_lic;
  ASSERT_EQ(bob.ReceiveLicense(bearer, &bob_lic), Status::kOk);
  // Same rights expression survives both hops of the exchange.
  EXPECT_TRUE(bob_lic.rights == rights);
  // But a fresh license id and a fresh binding.
  EXPECT_NE(bob_lic.id, lic.id);
  EXPECT_NE(bob_lic.bound_key, lic.bound_key);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
