// Sharded server runtime: routing, spend serialization under races,
// bounded-queue backpressure, journal segments, and the amortizing batch
// verifier — plus the content provider's batched redemption fast path.

#include "server/server_runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <cstdio>
#include <future>
#include <thread>
#include <unistd.h>

#include "core/certification_authority.h"
#include "core/content_provider.h"
#include "core/smartcard.h"
#include "core/ttp.h"
#include "crypto/blind_rsa.h"
#include "crypto/drbg.h"
#include "obs/registry.h"
#include "server/batch_verifier.h"
#include "server/shard_router.h"

namespace p2drm {
namespace server {
namespace {

using core::Status;

rel::LicenseId MakeId(std::uint64_t n) {
  rel::LicenseId id;
  for (int i = 0; i < 8; ++i) {
    id.bytes[i] = static_cast<std::uint8_t>(n >> (8 * (7 - i)));
  }
  id.bytes[15] = static_cast<std::uint8_t>(n * 37);
  return id;
}

// -- router ------------------------------------------------------------------

TEST(ShardRouterTest, DeterministicAndInRange) {
  ShardRouter router(4);
  for (std::uint64_t n = 0; n < 1000; ++n) {
    std::size_t s = router.ShardFor(MakeId(n));
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, router.ShardFor(MakeId(n)));  // stable
  }
}

TEST(ShardRouterTest, SpreadsCounterIds) {
  ShardRouter router(8);
  std::vector<std::size_t> hist(8, 0);
  for (std::uint64_t n = 0; n < 8000; ++n) {
    ++hist[router.ShardFor(MakeId(n))];
  }
  for (std::size_t count : hist) {
    EXPECT_GT(count, 500u);  // no empty or starved shard
  }
}

// -- spent-set shard ---------------------------------------------------------

TEST(SpentSetShardTest, InsertContainsAcrossBackends) {
  for (auto backend :
       {store::SpentSetBackend::kHashSet, store::SpentSetBackend::kSortedVector,
        store::SpentSetBackend::kLinearScan, store::SpentSetBackend::kFlat}) {
    store::SpentSetShard shard(backend);
    EXPECT_TRUE(shard.Insert(MakeId(1)));
    EXPECT_FALSE(shard.Insert(MakeId(1)));
    EXPECT_TRUE(shard.Contains(MakeId(1)));
    EXPECT_FALSE(shard.Contains(MakeId(2)));
    EXPECT_EQ(shard.Size(), 1u);
  }
}

TEST(SpentSetShardTest, HashMemoryCountsBucketArray) {
  store::SpentSetShard shard(store::SpentSetBackend::kHashSet);
  for (std::uint64_t n = 0; n < 1000; ++n) shard.Insert(MakeId(n));
  // At least the payload plus one pointer per element (node link) and
  // one pointer per bucket.
  std::size_t floor = 1000 * (sizeof(rel::LicenseId) + sizeof(void*));
  EXPECT_GT(shard.MemoryBytes(), floor);
}

// -- runtime: spend path -----------------------------------------------------

TEST(ServerRuntimeTest, SpendBatchStatuses) {
  ServerRuntimeConfig cfg;
  cfg.shard_count = 4;
  ServerRuntime rt(cfg);
  // Duplicate inside one batch: first occurrence wins.
  std::vector<rel::LicenseId> ids = {MakeId(1), MakeId(2), MakeId(1)};
  std::vector<Status> st;
  rt.SpendBatch(ids, &st);
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], Status::kOk);
  EXPECT_EQ(st[1], Status::kOk);
  EXPECT_EQ(st[2], Status::kAlreadySpent);
  // Replay across calls is also a double spend.
  EXPECT_EQ(rt.SpendOne(MakeId(2)), Status::kAlreadySpent);
  EXPECT_EQ(rt.SpendOne(MakeId(3)), Status::kOk);
  EXPECT_EQ(rt.SpentSize(), 3u);
  EXPECT_EQ(rt.Processed(), 5u);
}

TEST(ServerRuntimeTest, ConcurrentDoubleRedeemWinsExactlyOnce) {
  // The race the sharded design must kill: the same license id submitted
  // from many client threads at once must succeed exactly once, while
  // unrelated traffic proceeds on every shard.
  ServerRuntimeConfig cfg;
  cfg.shard_count = 4;
  cfg.queue_capacity = 1 << 14;
  ServerRuntime rt(cfg);

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200;
  const rel::LicenseId hot = MakeId(0xdeadbeef);
  std::atomic<int> hot_wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<rel::LicenseId> ids;
      ids.push_back(hot);  // every thread races on the hot id...
      for (std::uint64_t n = 0; n < kPerThread; ++n) {
        // ...amid its own unique traffic.
        ids.push_back(MakeId(0x1000000ull * (t + 1) + n));
      }
      std::vector<Status> st;
      rt.SpendBatch(ids, &st, /*shed_on_full=*/false);
      if (st[0] == Status::kOk) hot_wins.fetch_add(1);
      for (std::size_t i = 1; i < st.size(); ++i) {
        EXPECT_EQ(st[i], Status::kOk);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hot_wins.load(), 1);
  EXPECT_EQ(rt.SpentSize(), 1u + kThreads * kPerThread);
}

TEST(ServerRuntimeTest, BoundedQueueShedsWithOverloaded) {
  ServerRuntimeConfig cfg;
  cfg.shard_count = 2;
  cfg.queue_capacity = 8;
  ServerRuntime rt(cfg);

  // Park both workers so the queues cannot drain.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  for (std::size_t s = 0; s < rt.shard_count(); ++s) {
    rt.Submit(s, [gate](ShardContext&) { gate.wait(); });
  }
  std::vector<rel::LicenseId> flood;
  for (std::uint64_t n = 0; n < 256; ++n) flood.push_back(MakeId(n));
  std::vector<Status> st;
  rt.SpendBatch(flood, &st, /*shed_on_full=*/true);
  release.set_value();
  rt.Drain();

  std::size_t shed = 0;
  for (Status s : st) {
    if (s == Status::kOverloaded) ++shed;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(rt.Overloads(), 0u);
  // Shed ids left no trace and can be retried successfully.
  std::vector<Status> retry;
  rt.SpendBatch(flood, &retry, /*shed_on_full=*/false);
  for (std::size_t i = 0; i < flood.size(); ++i) {
    EXPECT_EQ(retry[i],
              st[i] == Status::kOk ? Status::kAlreadySpent : Status::kOk);
  }
}

TEST(ServerRuntimeTest, RunAllExecutesEveryTaskAcrossShards) {
  ServerRuntimeConfig cfg;
  cfg.shard_count = 4;
  ServerRuntime rt(cfg);

  constexpr std::size_t kTasks = 100;
  std::atomic<std::size_t> ran{0};
  std::mutex m;
  std::set<std::size_t> shards_used;
  std::vector<ServerRuntime::Task> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&](ShardContext& ctx) {
      ran.fetch_add(1);
      std::lock_guard<std::mutex> lock(m);
      shards_used.insert(ctx.index);
    });
  }
  rt.RunAll(std::move(tasks));
  // Submit-and-join: every task has completed by the time RunAll returns,
  // and round-robin placement used every worker.
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(shards_used.size(), 4u);

  // An empty submission is a no-op, not a hang.
  rt.RunAll({});
}

TEST(ServerRuntimeTest, JournalSegmentsSurviveShardCountChange) {
  std::string prefix = ::testing::TempDir() + "/srv_journal_test";
  // Fresh start: remove any leftovers from a previous run.
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }

  {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 4;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    std::vector<rel::LicenseId> ids;
    for (std::uint64_t n = 0; n < 64; ++n) ids.push_back(MakeId(n));
    std::vector<Status> st;
    rt.SpendBatch(ids, &st, /*shed_on_full=*/false);
    for (Status s : st) EXPECT_EQ(s, Status::kOk);
  }
  {
    // Restart with a DIFFERENT shard count: replay re-routes every id to
    // its new home shard.
    ServerRuntimeConfig cfg;
    cfg.shard_count = 2;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    EXPECT_EQ(rt.SpentSize(), 64u);
    EXPECT_EQ(rt.SpendOne(MakeId(5)), Status::kAlreadySpent);
    EXPECT_EQ(rt.SpendOne(MakeId(1000)), Status::kOk);
  }
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }
}

TEST(ServerRuntimeTest, DuplicateJournalRecordsReplayIdempotently) {
  std::string prefix = ::testing::TempDir() + "/srv_journal_dup";
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }

  std::size_t clean_size;
  std::size_t clean_bytes;
  {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 2;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    std::vector<rel::LicenseId> ids;
    for (std::uint64_t n = 0; n < 40; ++n) ids.push_back(MakeId(n));
    std::vector<Status> st;
    rt.SpendBatch(ids, &st, /*shed_on_full=*/false);
    clean_size = rt.SpentSize();
    clean_bytes = rt.SpentMemoryBytes();
    ASSERT_EQ(clean_size, 40u);
  }
  // A botched migration leaves OVERLAPPING history: copy shard 0's
  // segment into a legacy unsharded journal, duplicating its records.
  {
    std::FILE* src =
        std::fopen(ServerRuntime::SegmentPath(prefix, 0).c_str(), "rb");
    ASSERT_NE(src, nullptr);
    std::FILE* dst = std::fopen(prefix.c_str(), "wb");
    ASSERT_NE(dst, nullptr);
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, src)) > 0) {
      std::fwrite(buf, 1, got, dst);
    }
    std::fclose(src);
    std::fclose(dst);
  }
  {
    // Replay sees every record twice; the spent set (and its memory
    // accounting) must come out exactly as from the clean history, and
    // imports/replays must not count as processed traffic.
    ServerRuntimeConfig cfg;
    cfg.shard_count = 2;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    EXPECT_EQ(rt.SpentSize(), clean_size);
    EXPECT_EQ(rt.SpentMemoryBytes(), clean_bytes);
    EXPECT_EQ(rt.Processed(), 0u);
    EXPECT_EQ(rt.SpendOne(MakeId(7)), Status::kAlreadySpent);
  }
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }
}

TEST(ServerRuntimeTest, ImportSpentIsIdempotentAndJournalsFreshIdsOnce) {
  std::string prefix = ::testing::TempDir() + "/srv_import";
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }

  std::vector<rel::LicenseId> ids;
  for (std::uint64_t n = 0; n < 50; ++n) ids.push_back(MakeId(n));
  {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 3;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    // Half the ids are already spent locally; the import overlaps them.
    std::vector<rel::LicenseId> local(ids.begin(), ids.begin() + 25);
    std::vector<Status> st;
    rt.SpendBatch(local, &st, /*shed_on_full=*/false);

    ServerRuntime::ImportStats first = rt.ImportSpent(ids);
    EXPECT_EQ(first.fresh, 25u);
    EXPECT_EQ(first.duplicates, 25u);
    EXPECT_EQ(rt.SpentSize(), 50u);
    // Replaying the SAME migration again must change nothing.
    ServerRuntime::ImportStats second = rt.ImportSpent(ids);
    EXPECT_EQ(second.fresh, 0u);
    EXPECT_EQ(second.duplicates, 50u);
    EXPECT_EQ(rt.SpentSize(), 50u);
    // Imports are not client traffic.
    EXPECT_EQ(rt.Processed(), 25u);  // only the SpendBatch items
  }
  {
    // Fresh imports were journaled exactly once: a restart still refuses
    // every id, and the scan sees 50 records total (25 spends + 25
    // imports, no re-journaled duplicates).
    ServerRuntime::JournalScanStats scan =
        ServerRuntime::ForEachJournalRecord(prefix, nullptr);
    EXPECT_EQ(scan.records, 50u);
    EXPECT_EQ(scan.torn_tails, 0u);
    ServerRuntimeConfig cfg;
    cfg.shard_count = 3;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    EXPECT_EQ(rt.SpentSize(), 50u);
    for (const rel::LicenseId& id : ids) {
      EXPECT_EQ(rt.SpendOne(id), Status::kAlreadySpent);
    }
  }
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }
}

TEST(ServerRuntimeTest, FlatAndHashBackendsAgreeThroughRuntimeAndRestart) {
  std::string prefix_flat = ::testing::TempDir() + "/srv_diff_flat";
  std::string prefix_hash = ::testing::TempDir() + "/srv_diff_hash";
  for (const std::string& p : {prefix_flat, prefix_hash}) {
    std::remove(p.c_str());
    for (std::size_t i = 0; i < 8; ++i) {
      std::remove(ServerRuntime::SegmentPath(p, i).c_str());
    }
  }

  // Identical randomized traffic (duplicates, overlapping imports) through
  // a flat+group-commit runtime and the legacy hash+per-record runtime:
  // every status, size, and import tally must agree — the storage engine
  // swap is invisible at the contract level.
  auto config = [](store::SpentSetBackend backend, bool group_commit,
                   const std::string& prefix) {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 3;
    cfg.spent_backend = backend;
    cfg.group_commit_journal = group_commit;
    cfg.journal_path_prefix = prefix;
    return cfg;
  };
  {
    ServerRuntime flat(
        config(store::SpentSetBackend::kFlat, true, prefix_flat));
    ServerRuntime hash(
        config(store::SpentSetBackend::kHashSet, false, prefix_hash));
    crypto::HmacDrbg rng("runtime-differential");
    for (int round = 0; round < 20; ++round) {
      std::vector<rel::LicenseId> ids;
      std::size_t n = 1 + rng.NextUint64(60);
      for (std::size_t i = 0; i < n; ++i) {
        ids.push_back(MakeId(rng.NextUint64(500)));  // heavy duplicates
      }
      if (rng.NextUint64(3) == 0) {
        ServerRuntime::ImportStats fa = flat.ImportSpent(ids);
        ServerRuntime::ImportStats ha = hash.ImportSpent(ids);
        ASSERT_EQ(fa.fresh, ha.fresh) << "round " << round;
        ASSERT_EQ(fa.duplicates, ha.duplicates) << "round " << round;
      } else {
        std::vector<Status> sf, sh;
        flat.SpendBatch(ids, &sf, /*shed_on_full=*/false);
        hash.SpendBatch(ids, &sh, /*shed_on_full=*/false);
        ASSERT_EQ(sf, sh) << "round " << round;
      }
      ASSERT_EQ(flat.SpentSize(), hash.SpentSize()) << "round " << round;
    }
  }
  // Cross-restart, cross-backend: each journal replays into a runtime
  // using the OTHER backend (group-committed blocks and per-record
  // journals are one on-disk format as far as replay is concerned).
  {
    ServerRuntime flat_from_hash(
        config(store::SpentSetBackend::kFlat, true, prefix_hash));
    ServerRuntime hash_from_flat(
        config(store::SpentSetBackend::kHashSet, false, prefix_flat));
    EXPECT_EQ(flat_from_hash.SpentSize(), hash_from_flat.SpentSize());
    for (std::uint64_t n = 0; n < 500; ++n) {
      ASSERT_EQ(flat_from_hash.SpendOne(MakeId(n)),
                hash_from_flat.SpendOne(MakeId(n)))
          << n;
    }
  }
  for (const std::string& p : {prefix_flat, prefix_hash}) {
    std::remove(p.c_str());
    for (std::size_t i = 0; i < 8; ++i) {
      std::remove(ServerRuntime::SegmentPath(p, i).c_str());
    }
  }
}

TEST(ServerRuntimeTest, TornGroupCommitBlockDropsWholeBlockAndRecovers) {
  std::string prefix = ::testing::TempDir() + "/srv_torn_block";
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }

  constexpr std::uint64_t kN = 64;
  std::vector<rel::LicenseId> ids;
  for (std::uint64_t n = 0; n < kN; ++n) ids.push_back(MakeId(n));
  {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 2;
    cfg.journal_path_prefix = prefix;  // group commit is the default
    ServerRuntime rt(cfg);
    std::vector<Status> st;
    rt.SpendBatch(ids, &st, /*shed_on_full=*/false);
    for (Status s : st) ASSERT_EQ(s, Status::kOk);
    ASSERT_EQ(rt.SpentSize(), kN);
  }
  // Shard 0's share of the batch was journaled as ONE group-committed
  // block; a crash that tears 5 bytes off its tail lands INSIDE that
  // block, and the CRC covers the whole block — so replay must drop every
  // id in it, not just the last one.
  ShardRouter router(2);
  std::size_t shard0_ids = 0;
  for (const auto& id : ids) {
    if (router.ShardFor(id) == 0) ++shard0_ids;
  }
  ASSERT_GT(shard0_ids, 1u);  // the tear must cost >1 record to be a test
  {
    std::string seg = ServerRuntime::SegmentPath(prefix, 0);
    std::FILE* f = std::fopen(seg.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size - 5), 0);
    std::fclose(f);
  }
  ServerRuntime::JournalScanStats scan =
      ServerRuntime::ForEachJournalRecord(prefix, nullptr);
  EXPECT_EQ(scan.torn_tails, 1u);
  EXPECT_EQ(scan.records, kN - shard0_ids);  // whole block gone
  {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 2;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    EXPECT_EQ(rt.SpentSize(), kN - shard0_ids);
    // Lost ids are re-spendable (the provider never confirmed them
    // durable); survivors still refuse. Re-spending everything restores
    // the full set and re-journals the lost block.
    std::vector<Status> st;
    rt.SpendBatch(ids, &st, /*shed_on_full=*/false);
    std::size_t ok = 0, dup = 0;
    for (Status s : st) (s == Status::kOk ? ok : dup) += 1;
    EXPECT_EQ(ok, shard0_ids);
    EXPECT_EQ(dup, kN - shard0_ids);
    EXPECT_EQ(rt.SpentSize(), kN);
  }
  // The reopen truncated the torn tail before appending, so the healed
  // journal replays clean and complete.
  scan = ServerRuntime::ForEachJournalRecord(prefix, nullptr);
  EXPECT_EQ(scan.torn_tails, 0u);
  EXPECT_EQ(scan.records, kN);
  {
    ServerRuntimeConfig cfg;
    cfg.shard_count = 2;
    cfg.journal_path_prefix = prefix;
    ServerRuntime rt(cfg);
    EXPECT_EQ(rt.SpentSize(), kN);
  }
  std::remove(prefix.c_str());
  for (std::size_t i = 0; i < 8; ++i) {
    std::remove(ServerRuntime::SegmentPath(prefix, i).c_str());
  }
}

TEST(ServerRuntimeTest, SpentBytesGaugeTracksMemoryBytes) {
  ServerRuntimeConfig cfg;
  cfg.shard_count = 4;
  ServerRuntime rt(cfg);
  obs::Registry registry;
  rt.set_observability(&registry, "srv.");

  auto gauge = [&registry]() -> std::int64_t {
    for (const auto& m : registry.Aggregate()) {
      if (m.name == "srv.spent.bytes") return m.gauge;
    }
    ADD_FAILURE() << "srv.spent.bytes not registered";
    return -1;
  };
  EXPECT_EQ(gauge(), 0);

  // Across growth (rehashes move the footprint in steps, and the gauge is
  // updated as a delta per task) the quiesced gauge must equal the honest
  // per-shard MemoryBytes sum exactly.
  std::vector<rel::LicenseId> ids;
  for (std::uint64_t n = 0; n < 3000; ++n) ids.push_back(MakeId(n));
  std::vector<Status> st;
  rt.SpendBatch(ids, &st, /*shed_on_full=*/false);
  rt.Drain();
  EXPECT_EQ(gauge(), static_cast<std::int64_t>(rt.SpentMemoryBytes()));
  EXPECT_GT(gauge(), 0);

  // Imports grow the set through the other write path; same contract.
  std::vector<rel::LicenseId> more;
  for (std::uint64_t n = 3000; n < 9000; ++n) more.push_back(MakeId(n));
  rt.ImportSpent(more);
  rt.Drain();
  EXPECT_EQ(gauge(), static_cast<std::int64_t>(rt.SpentMemoryBytes()));
}

// -- batch verifier ----------------------------------------------------------

class BatchVerifierTest : public ::testing::Test {
 protected:
  BatchVerifierTest()
      : rng_("batch-verifier-test"),
        key_(crypto::GenerateRsaKey(512, &rng_)),
        pub_(key_.PublicKey()) {}

  std::vector<std::uint8_t> RandomMsg() {
    std::vector<std::uint8_t> msg(48);
    rng_.Fill(msg.data(), msg.size());
    return msg;
  }

  crypto::HmacDrbg rng_;
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey pub_;
};

TEST_F(BatchVerifierTest, SameKeyBatchAcceptsGenuineWithOneVerify) {
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<std::vector<std::uint8_t>> sigs;
  for (int i = 0; i < 16; ++i) {
    msgs.push_back(RandomMsg());
    sigs.push_back(crypto::RsaSignFdh(key_, msgs.back()));
  }
  BatchVerifier verifier;
  std::vector<bool> ok = verifier.VerifySameKeyBatch(pub_, msgs, sigs, &rng_);
  for (bool v : ok) EXPECT_TRUE(v);
  BatchVerifierStats stats = verifier.stats();
  EXPECT_EQ(stats.items, 16u);
  EXPECT_EQ(stats.full_verifies, 1u);  // one screen for the whole group
  EXPECT_EQ(stats.screened_groups, 1u);
  EXPECT_EQ(stats.screen_failures, 0u);
}

TEST_F(BatchVerifierTest, SameKeyBatchIsolatesTamperedItems) {
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<std::vector<std::uint8_t>> sigs;
  for (int i = 0; i < 8; ++i) {
    msgs.push_back(RandomMsg());
    sigs.push_back(crypto::RsaSignFdh(key_, msgs.back()));
  }
  sigs[3][10] ^= 0x01;  // corrupt one signature
  sigs[6] = std::vector<std::uint8_t>(4, 0xab);  // structurally wrong

  BatchVerifier verifier;
  std::vector<bool> ok = verifier.VerifySameKeyBatch(pub_, msgs, sigs, &rng_);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ok[i], i != 3 && i != 6) << "item " << i;
  }
  BatchVerifierStats stats = verifier.stats();
  EXPECT_EQ(stats.screen_failures, 1u);  // screen tripped, fell back
}

TEST_F(BatchVerifierTest, PseudonymCertsVerifiedOncePerDistinctCert) {
  crypto::RsaPrivateKey ca = crypto::GenerateRsaKey(512, &rng_);
  std::vector<core::PseudonymCertificate> certs(3);
  for (auto& cert : certs) {
    cert.pseudonym_key = pub_;
    cert.escrow.resize(24);
    rng_.Fill(cert.escrow.data(), cert.escrow.size());
    cert.ca_signature = crypto::RsaSignFdh(ca, cert.CanonicalBytes());
  }
  BatchVerifier verifier;
  // 12 checks over 3 distinct certs: 3 full verifies, 9 cache hits.
  for (int round = 0; round < 4; ++round) {
    for (const auto& cert : certs) {
      EXPECT_TRUE(verifier.VerifyPseudonymCert(ca.PublicKey(), cert));
    }
  }
  BatchVerifierStats stats = verifier.stats();
  EXPECT_EQ(stats.full_verifies, 3u);
  EXPECT_EQ(stats.cert_cache_hits, 9u);

  // A forged cert is rejected and the rejection is cached too.
  core::PseudonymCertificate forged = certs[0];
  forged.escrow.push_back(0x7f);
  EXPECT_FALSE(verifier.VerifyPseudonymCert(ca.PublicKey(), forged));
  EXPECT_FALSE(verifier.VerifyPseudonymCert(ca.PublicKey(), forged));
  EXPECT_EQ(verifier.stats().cert_cache_hits, 10u);
}

// -- content provider batch fast path ---------------------------------------

class ShardedProviderTest : public ::testing::Test {
 protected:
  ShardedProviderTest()
      : rng_("sharded-cp-test"),
        ca_(512, &rng_),
        ttp_(512, &rng_),
        bank_(512, &rng_),
        cp_(Config(), &rng_, &clock_, &bank_, ca_.PublicKey()),
        card_("Sam", 512, &rng_) {
    card_.StoreIdentityCertificate(ca_.Enrol("Sam", card_.MasterKey()));
    bank_.OpenAccount("sam", 10000);
    content_ = cp_.Publish("Album", std::vector<std::uint8_t>(64, 0x5a), 30,
                           rel::Rights::FullRetail());
  }

  static core::ContentProviderConfig Config() {
    core::ContentProviderConfig c;
    c.signing_key_bits = 512;
    c.redeem_shards = 2;
    return c;
  }

  core::Pseudonym* NewPseudonym() {
    core::PseudonymRequest req =
        card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
    bignum::BigInt sig =
        ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded);
    return card_.FinishPseudonym(std::move(req), sig, ca_.PublicKey());
  }

  std::vector<core::Coin> Pay(std::uint64_t amount) {
    std::vector<core::Coin> coins;
    for (auto d : core::PlanCoins(amount)) {
      core::Coin coin;
      rng_.Fill(coin.serial.data(), coin.serial.size());
      coin.denomination = d;
      const auto& key = bank_.DenominationKey(d);
      auto ctx = crypto::BlindMessage(key, coin.CanonicalBytes(), &rng_);
      bignum::BigInt blind_sig;
      EXPECT_EQ(bank_.Withdraw("sam", d, ctx.blinded, &blind_sig),
                Status::kOk);
      coin.signature = crypto::Unblind(key, ctx, blind_sig);
      coins.push_back(coin);
    }
    return coins;
  }

  /// Buys and exchanges one license, returning the anonymous bearer.
  rel::License NewBearer(core::Pseudonym* p) {
    auto bought = cp_.Purchase(p->cert, content_, Pay(30));
    EXPECT_EQ(bought.status, Status::kOk);
    auto sig = card_.SignWithPseudonym(
        p->cert.KeyId(),
        core::ContentProvider::TransferChallengeBytes(bought.license.id));
    auto exch = cp_.ExchangeForAnonymous(bought.license, sig);
    EXPECT_EQ(exch.status, Status::kOk);
    return exch.anonymous_license;
  }

  crypto::HmacDrbg rng_;
  core::SimClock clock_;
  core::CertificationAuthority ca_;
  core::TrustedThirdParty ttp_;
  core::PaymentProvider bank_;
  core::ContentProvider cp_;
  core::SmartCard card_;
  rel::ContentId content_ = 0;
};

TEST_F(ShardedProviderTest, BatchRedeemMatchesItemSemantics) {
  core::Pseudonym* giver = NewPseudonym();
  core::Pseudonym* taker = NewPseudonym();
  rel::License bearer_a = NewBearer(giver);
  rel::License bearer_b = NewBearer(giver);

  // A genuine batch with a duplicate: the repeated pseudonym and the
  // same-key screen make the whole batch cost 2 full verifications (one
  // screened group + one distinct cert) for 3 items.
  auto before = cp_.BatchVerifyStats();
  std::vector<core::ContentProvider::RedeemItem> items = {
      {bearer_a, taker->cert},
      {bearer_a, taker->cert},  // duplicate inside the batch
      {bearer_b, taker->cert},
  };
  auto results = cp_.RedeemAnonymousBatch(items);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, Status::kOk);
  EXPECT_EQ(results[1].status, Status::kAlreadySpent);
  EXPECT_EQ(results[2].status, Status::kOk);
  EXPECT_EQ(results[0].license.bound_key, taker->cert.KeyId());
  EXPECT_FALSE(results[0].license.wrapped_content_key.empty());

  auto delta = cp_.BatchVerifyStats() - before;
  EXPECT_LT(delta.full_verifies, items.size());
  EXPECT_GT(delta.cert_cache_hits, 0u);
  EXPECT_EQ(delta.screen_failures, 0u);

  // The in-batch duplicate is a detected double redemption with evidence.
  EXPECT_EQ(cp_.DoubleRedemptionAttempts(), 1u);
  auto evidence = cp_.TakeFraudEvidence();
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_EQ(evidence[0].first.license_id, bearer_a.id);

  // A tampered license in a later batch fails alone — the screen trips,
  // falls back per item, and the honest item still reports correctly.
  rel::License forged = bearer_b;
  forged.rights.play_count = 7;  // breaks the issuer signature
  auto mixed = cp_.RedeemAnonymousBatch(
      {{forged, taker->cert}, {bearer_b, taker->cert}});
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0].status, Status::kBadSignature);
  EXPECT_EQ(mixed[1].status, Status::kAlreadySpent);
  EXPECT_GT(cp_.BatchVerifyStats().screen_failures, 0u);

  // Re-redeeming through the SINGLE-item path still hits the shards.
  auto again = cp_.RedeemAnonymous(bearer_b, taker->cert);
  EXPECT_EQ(again.status, Status::kAlreadySpent);
}

TEST_F(ShardedProviderTest, RevokedTakerRejectedInBatch) {
  core::Pseudonym* giver = NewPseudonym();
  core::Pseudonym* taker = NewPseudonym();
  rel::License bearer = NewBearer(giver);
  cp_.Revoke(taker->cert.KeyId());
  auto results = cp_.RedeemAnonymousBatch({{bearer, taker->cert}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, Status::kRevoked);
  // The bearer was not burned by the failed attempt.
  core::Pseudonym* honest = NewPseudonym();
  EXPECT_EQ(cp_.RedeemAnonymous(bearer, honest->cert).status, Status::kOk);
}

}  // namespace
}  // namespace server
}  // namespace p2drm
