// ChaCha20 against RFC 8439 test vectors.

#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <string>

namespace p2drm {
namespace crypto {
namespace {

std::array<std::uint8_t, 32> TestKey() {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  return key;
}

std::string ToHex(const std::vector<std::uint8_t>& v) {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  for (auto b : v) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xf]);
  }
  return s;
}

TEST(ChaCha20, Rfc8439Section231KeystreamBlock) {
  // RFC 8439 §2.3.2 block function test vector, counter = 1.
  std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 c(TestKey(), nonce, 1);
  std::vector<std::uint8_t> ks(64);
  c.Keystream(ks.data(), ks.size());
  EXPECT_EQ(ToHex(ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Section24Encryption) {
  // RFC 8439 §2.4.2: the "sunscreen" plaintext.
  std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  ChaCha20 c(TestKey(), nonce, 1);
  std::vector<std::uint8_t> pt(plaintext.begin(), plaintext.end());
  std::vector<std::uint8_t> ct = c.Crypt(pt);
  EXPECT_EQ(ToHex(ct).substr(0, 64),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Round trip.
  ChaCha20 d(TestKey(), nonce, 1);
  EXPECT_EQ(d.Crypt(ct), pt);
}

TEST(ChaCha20, StreamSplitMatchesWhole) {
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> data(300, 0xab);

  ChaCha20 whole(TestKey(), nonce);
  std::vector<std::uint8_t> expected = whole.Crypt(data);

  ChaCha20 split(TestKey(), nonce);
  std::vector<std::uint8_t> got = data;
  // Uneven chunks crossing the 64-byte block boundary.
  std::size_t offsets[] = {0, 1, 63, 64, 130, 200, 300};
  for (std::size_t i = 0; i + 1 < sizeof(offsets) / sizeof(offsets[0]); ++i) {
    split.Crypt(got.data() + offsets[i], offsets[i + 1] - offsets[i]);
  }
  EXPECT_EQ(got, expected);
}

TEST(ChaCha20, DifferentNoncesDiverge) {
  std::array<std::uint8_t, 12> n1{}, n2{};
  n2[11] = 1;
  std::vector<std::uint8_t> zeros(64, 0);
  ChaCha20 a(TestKey(), n1);
  ChaCha20 b(TestKey(), n2);
  EXPECT_NE(a.Crypt(zeros), b.Crypt(zeros));
}

TEST(ChaCha20, CounterOverflowAdvancesCleanly) {
  // Start near the 32-bit counter boundary; must not crash or repeat.
  std::array<std::uint8_t, 12> nonce{};
  ChaCha20 c(TestKey(), nonce, 0xffffffffu);
  std::vector<std::uint8_t> ks(192);
  c.Keystream(ks.data(), ks.size());
  // Blocks must differ.
  EXPECT_NE(std::vector<std::uint8_t>(ks.begin(), ks.begin() + 64),
            std::vector<std::uint8_t>(ks.begin() + 64, ks.begin() + 128));
}

}  // namespace
}  // namespace crypto
}  // namespace p2drm
