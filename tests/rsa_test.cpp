// RSA key generation, FDH signatures and hybrid encryption.

#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include <thread>

#include "crypto/drbg.h"

namespace p2drm {
namespace crypto {
namespace {

using bignum::BigInt;

// Key generation is expensive; share fixtures across tests in this file.
const RsaPrivateKey& TestKey512() {
  static const RsaPrivateKey key = [] {
    HmacDrbg rng("rsa-test-key-512");
    return GenerateRsaKey(512, &rng);
  }();
  return key;
}

const RsaPrivateKey& TestKey1024() {
  static const RsaPrivateKey key = [] {
    HmacDrbg rng("rsa-test-key-1024");
    return GenerateRsaKey(1024, &rng);
  }();
  return key;
}

std::vector<std::uint8_t> Msg(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(RsaKeyGen, ParametersConsistent) {
  const RsaPrivateKey& key = TestKey512();
  EXPECT_EQ(key.n.BitLength(), 512u);
  EXPECT_EQ((key.p * key.q).ToHex(), key.n.ToHex());
  BigInt phi = (key.p - BigInt(1)) * (key.q - BigInt(1));
  EXPECT_EQ(key.e.MulMod(key.d, phi).ToDec(), "1");
  EXPECT_EQ(key.dp.ToHex(), (key.d % (key.p - BigInt(1))).ToHex());
  EXPECT_EQ(key.dq.ToHex(), (key.d % (key.q - BigInt(1))).ToHex());
  EXPECT_EQ(key.qinv.MulMod(key.q, key.p).ToDec(), "1");
}

TEST(RsaKeyGen, RejectsBadSizes) {
  HmacDrbg rng("bad");
  EXPECT_THROW(GenerateRsaKey(100, &rng), std::invalid_argument);
  EXPECT_THROW(GenerateRsaKey(513, &rng), std::invalid_argument);
}

TEST(RsaKeyGen, DeterministicForSeed) {
  HmacDrbg r1("det"), r2("det");
  EXPECT_EQ(GenerateRsaKey(512, &r1).n.ToHex(),
            GenerateRsaKey(512, &r2).n.ToHex());
}

TEST(RsaRawOps, PublicPrivateRoundTrip) {
  const RsaPrivateKey& key = TestKey512();
  HmacDrbg rng("roundtrip");
  for (int i = 0; i < 10; ++i) {
    BigInt m = rng.Below(key.n);
    BigInt c = RsaPublicOp(key.PublicKey(), m);
    EXPECT_EQ(RsaPrivateOp(key, c).ToHex(), m.ToHex());
    // And the other direction (sign then verify op).
    BigInt s = RsaPrivateOp(key, m);
    EXPECT_EQ(RsaPublicOp(key.PublicKey(), s).ToHex(), m.ToHex());
  }
}

TEST(RsaRawOps, RangeChecks) {
  const RsaPrivateKey& key = TestKey512();
  EXPECT_THROW(RsaPublicOp(key.PublicKey(), key.n), std::domain_error);
  EXPECT_THROW(RsaPrivateOp(key, key.n + BigInt(1)), std::domain_error);
}

TEST(RsaSerialization, PublicKeyRoundTrip) {
  RsaPublicKey pub = TestKey512().PublicKey();
  auto bytes = pub.Serialize();
  RsaPublicKey back = RsaPublicKey::Deserialize(bytes);
  EXPECT_TRUE(pub == back);
  EXPECT_EQ(DigestToHex(pub.Fingerprint()), DigestToHex(back.Fingerprint()));
}

TEST(RsaSerialization, DeserializeRejectsTruncated) {
  RsaPublicKey pub = TestKey512().PublicKey();
  auto bytes = pub.Serialize();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(RsaPublicKey::Deserialize(bytes), std::out_of_range);
}

TEST(Mgf1, KnownLengthAndDeterminism) {
  std::vector<std::uint8_t> seed = {1, 2, 3};
  auto a = Mgf1Sha256(seed, 100);
  auto b = Mgf1Sha256(seed, 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  auto c = Mgf1Sha256(seed, 33);
  EXPECT_TRUE(std::equal(c.begin(), c.end(), a.begin()));
}

TEST(Fdh, RepresentativeBelowModulus) {
  RsaPublicKey pub = TestKey512().PublicKey();
  for (int i = 0; i < 20; ++i) {
    BigInt h = FdhHash(Msg("message " + std::to_string(i)), pub);
    EXPECT_LT(h.Compare(pub.n), 0);
    EXPECT_FALSE(h.IsNegative());
  }
}

TEST(FdhSignature, SignVerify) {
  const RsaPrivateKey& key = TestKey512();
  auto msg = Msg("license: content=42 rights=play*3");
  auto sig = RsaSignFdh(key, msg);
  EXPECT_EQ(sig.size(), key.PublicKey().ModulusBytes());
  EXPECT_TRUE(RsaVerifyFdh(key.PublicKey(), msg, sig));
}

TEST(FdhSignature, RejectsTamperedMessage) {
  const RsaPrivateKey& key = TestKey512();
  auto sig = RsaSignFdh(key, Msg("original"));
  EXPECT_FALSE(RsaVerifyFdh(key.PublicKey(), Msg("tampered"), sig));
}

TEST(FdhSignature, RejectsTamperedSignature) {
  const RsaPrivateKey& key = TestKey512();
  auto msg = Msg("original");
  auto sig = RsaSignFdh(key, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(RsaVerifyFdh(key.PublicKey(), msg, sig));
}

TEST(FdhSignature, RejectsWrongKey) {
  const RsaPrivateKey& key = TestKey512();
  const RsaPrivateKey& other = TestKey1024();
  auto msg = Msg("original");
  auto sig = RsaSignFdh(key, msg);
  EXPECT_FALSE(RsaVerifyFdh(other.PublicKey(), msg, sig));
}

TEST(FdhSignature, RejectsBadLength) {
  const RsaPrivateKey& key = TestKey512();
  auto msg = Msg("original");
  auto sig = RsaSignFdh(key, msg);
  sig.pop_back();
  EXPECT_FALSE(RsaVerifyFdh(key.PublicKey(), msg, sig));
}

TEST(FdhSignature, DeterministicSignature) {
  const RsaPrivateKey& key = TestKey512();
  auto msg = Msg("deterministic");
  EXPECT_EQ(RsaSignFdh(key, msg), RsaSignFdh(key, msg));
}

TEST(FdhSignature, ConcurrentSigningMatchesSerial) {
  // Threads share one key (and its CRT Montgomery contexts); each signs
  // its own message stream. The thread-local scratch arenas behind the
  // 64-bit kernels must keep every result identical to the serial run.
  const RsaPrivateKey& key = TestKey1024();
  constexpr int kThreads = 4;
  constexpr int kMsgsPerThread = 8;

  std::vector<std::vector<std::vector<std::uint8_t>>> serial(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kMsgsPerThread; ++i) {
      serial[t].push_back(
          RsaSignFdh(key, Msg("concurrent-" + std::to_string(t) + "-" +
                              std::to_string(i))));
    }
  }

  std::vector<std::vector<std::vector<std::uint8_t>>> threaded(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&key, &threaded, t] {
      for (int i = 0; i < kMsgsPerThread; ++i) {
        threaded[t].push_back(
            RsaSignFdh(key, Msg("concurrent-" + std::to_string(t) + "-" +
                                std::to_string(i))));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(threaded[t], serial[t]) << "thread " << t;
  }
}

TEST(HybridEncryption, RoundTrip) {
  const RsaPrivateKey& key = TestKey512();
  HmacDrbg rng("hybrid");
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 1000u}) {
    std::vector<std::uint8_t> pt(len, 0x5a);
    HybridCiphertext ct = RsaHybridEncrypt(key.PublicKey(), pt, &rng);
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(RsaHybridDecrypt(key, ct, &back)) << len;
    EXPECT_EQ(back, pt);
  }
}

TEST(HybridEncryption, TamperedBodyFailsMac) {
  const RsaPrivateKey& key = TestKey512();
  HmacDrbg rng("hybrid2");
  std::vector<std::uint8_t> pt(100, 0x11);
  HybridCiphertext ct = RsaHybridEncrypt(key.PublicKey(), pt, &rng);
  ct.body[50] ^= 1;
  std::vector<std::uint8_t> back;
  EXPECT_FALSE(RsaHybridDecrypt(key, ct, &back));
}

TEST(HybridEncryption, TamperedTagFails) {
  const RsaPrivateKey& key = TestKey512();
  HmacDrbg rng("hybrid3");
  std::vector<std::uint8_t> pt(100, 0x22);
  HybridCiphertext ct = RsaHybridEncrypt(key.PublicKey(), pt, &rng);
  ct.tag[0] ^= 1;
  std::vector<std::uint8_t> back;
  EXPECT_FALSE(RsaHybridDecrypt(key, ct, &back));
}

TEST(HybridEncryption, SerializationRoundTrip) {
  const RsaPrivateKey& key = TestKey512();
  HmacDrbg rng("hybrid4");
  std::vector<std::uint8_t> pt = Msg("serialize me");
  HybridCiphertext ct = RsaHybridEncrypt(key.PublicKey(), pt, &rng);
  auto bytes = ct.Serialize();
  HybridCiphertext back = HybridCiphertext::Deserialize(bytes);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(RsaHybridDecrypt(key, back, &out));
  EXPECT_EQ(out, pt);
}

TEST(HybridEncryption, CiphertextsAreRandomized) {
  const RsaPrivateKey& key = TestKey512();
  HmacDrbg rng("hybrid5");
  std::vector<std::uint8_t> pt = Msg("same plaintext");
  auto c1 = RsaHybridEncrypt(key.PublicKey(), pt, &rng);
  auto c2 = RsaHybridEncrypt(key.PublicKey(), pt, &rng);
  EXPECT_NE(c1.encapsulated, c2.encapsulated);
  EXPECT_NE(c1.body, c2.body);
}

// Parameterized sweep: sign/verify must hold across modulus sizes.
class RsaModulusSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaModulusSweep, SignVerifyAcrossSizes) {
  HmacDrbg rng("sweep-" + std::to_string(GetParam()));
  RsaPrivateKey key = GenerateRsaKey(GetParam(), &rng);
  auto msg = Msg("sweep message");
  auto sig = RsaSignFdh(key, msg);
  EXPECT_TRUE(RsaVerifyFdh(key.PublicKey(), msg, sig));
  auto bad = msg;
  bad.push_back('!');
  EXPECT_FALSE(RsaVerifyFdh(key.PublicKey(), bad, sig));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaModulusSweep,
                         ::testing::Values(256, 384, 512, 768));

}  // namespace
}  // namespace crypto
}  // namespace p2drm
