// Transport: routing, metering, anonymity label, latency model.

#include "net/transport.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace net {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<std::uint8_t> v) {
  return std::vector<std::uint8_t>(v);
}

TEST(Transport, RoutesToHandler) {
  Transport t;
  t.RegisterEndpoint("echo", [](const std::vector<std::uint8_t>& req) {
    return req;
  });
  auto resp = t.Call("alice", "echo", Bytes({1, 2, 3}));
  EXPECT_EQ(resp, Bytes({1, 2, 3}));
}

TEST(Transport, UnknownEndpointThrows) {
  Transport t;
  EXPECT_THROW(t.Call("alice", "nowhere", {}), std::out_of_range);
}

TEST(Transport, TryCallReportsUnknownEndpointWithoutThrowing) {
  Transport t;
  std::vector<std::uint8_t> resp;
  EXPECT_FALSE(t.TryCall("alice", "nowhere", Bytes({1}), &resp));
  EXPECT_TRUE(resp.empty());
  // Failed lookups are not metered.
  EXPECT_EQ(t.GrandTotal().messages, 0u);

  t.RegisterEndpoint("echo", [](const std::vector<std::uint8_t>& req) {
    return req;
  });
  EXPECT_TRUE(t.TryCall("alice", "echo", Bytes({1, 2}), &resp));
  EXPECT_EQ(resp, Bytes({1, 2}));
}

TEST(Transport, MetersRequestsPerChannel) {
  Transport t;
  t.RegisterEndpoint("svc", [](const std::vector<std::uint8_t>&) {
    return Bytes({9, 9});
  });
  t.Call("alice", "svc", Bytes({1, 2, 3}));
  t.Call("alice", "svc", Bytes({4}));
  t.Call("bob", "svc", Bytes({5}));

  ChannelStats alice = t.StatsFor("alice", "svc");
  EXPECT_EQ(alice.messages, 2u);
  EXPECT_EQ(alice.bytes, 4u);
  ChannelStats bob = t.StatsFor("bob", "svc");
  EXPECT_EQ(bob.messages, 1u);
  EXPECT_EQ(bob.bytes, 1u);
  EXPECT_EQ(t.StatsFor("carol", "svc").messages, 0u);
}

TEST(Transport, TotalIncludesResponses) {
  Transport t;
  t.RegisterEndpoint("svc", [](const std::vector<std::uint8_t>&) {
    return Bytes({9, 9, 9});  // 3-byte response
  });
  t.Call("alice", "svc", Bytes({1, 2}));  // 2-byte request
  ChannelStats total = t.TotalFor("svc");
  EXPECT_EQ(total.messages, 2u);  // request + response
  EXPECT_EQ(total.bytes, 5u);
  ChannelStats grand = t.GrandTotal();
  EXPECT_EQ(grand.messages, 2u);
  EXPECT_EQ(grand.bytes, 5u);
}

TEST(Transport, AnonymousCallerIsMeteredUnderLabel) {
  Transport t;
  t.RegisterEndpoint("svc", [](const std::vector<std::uint8_t>&) {
    return Bytes({});
  });
  t.Call(Transport::kAnonymous, "svc", Bytes({1}));
  EXPECT_EQ(t.StatsFor(Transport::kAnonymous, "svc").messages, 1u);
  // No named-caller channel exists.
  EXPECT_EQ(t.StatsFor("alice", "svc").messages, 0u);
}

TEST(Transport, LatencyModelAccumulates) {
  LatencyModel model;
  model.per_message_us = 100;
  model.per_kib_us = 1024;  // 1us per byte
  Transport t(model);
  t.RegisterEndpoint("svc", [](const std::vector<std::uint8_t>&) {
    return std::vector<std::uint8_t>(512, 0);
  });
  t.Call("a", "svc", std::vector<std::uint8_t>(1024, 0));
  // request: 100 + 1024, response: 100 + 512.
  EXPECT_EQ(t.SimulatedTimeUs(), 100u + 1024u + 100u + 512u);
}

TEST(Transport, ResetStatsClearsCountersNotHandlers) {
  Transport t;
  t.RegisterEndpoint("svc", [](const std::vector<std::uint8_t>&) {
    return Bytes({});
  });
  t.Call("a", "svc", Bytes({1}));
  t.ResetStats();
  EXPECT_EQ(t.GrandTotal().messages, 0u);
  EXPECT_EQ(t.SimulatedTimeUs(), 0u);
  EXPECT_NO_THROW(t.Call("a", "svc", Bytes({1})));
}

TEST(LatencyModel, CostFormula) {
  LatencyModel m;
  m.per_message_us = 50;
  m.per_kib_us = 2048;
  EXPECT_EQ(m.CostUs(0), 50u);
  EXPECT_EQ(m.CostUs(1024), 50u + 2048u);
  EXPECT_EQ(m.CostUs(512), 50u + 1024u);
}

TEST(LatencyModel, CostSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  // bytes * per_kib_us overflows u64: the cost must pin at "forever",
  // not wrap around to a tiny number that corrupts the timebase.
  LatencyModel m;
  m.per_message_us = 0;
  m.per_kib_us = kMax;
  EXPECT_EQ(m.CostUs(3), kMax);  // 3 * kMax would wrap
  // A large but in-range product stays exact.
  m.per_kib_us = 1u << 20;
  EXPECT_EQ(m.CostUs(static_cast<std::size_t>(1) << 30),
            (static_cast<std::uint64_t>(1) << 40));
  // Per-message cost near the ceiling cannot wrap when the bandwidth
  // term lands on top.
  m.per_message_us = kMax - 1;
  m.per_kib_us = 1024;
  EXPECT_EQ(m.CostUs(4096), kMax);
  // And a genuinely overflowing product saturates end to end.
  m.per_message_us = 5;
  m.per_kib_us = kMax / 2;
  EXPECT_EQ(m.CostUs(static_cast<std::size_t>(1) << 40), kMax);
}

TEST(LatencyModel, SubKibMessagesRoundUpNotDown) {
  // A 1-byte message on a slow link must cost at least 1us of bandwidth
  // time, not silently floor to 0 (the old integer-truncation bug).
  LatencyModel m;
  m.per_message_us = 0;
  m.per_kib_us = 100;
  EXPECT_EQ(m.CostUs(1), 1u);    // ceil(100/1024)
  EXPECT_EQ(m.CostUs(10), 1u);   // ceil(1000/1024)
  EXPECT_EQ(m.CostUs(11), 2u);   // ceil(1100/1024)
  EXPECT_EQ(m.CostUs(0), 0u);    // empty messages stay free of bandwidth
  LatencyModel zero;
  EXPECT_EQ(zero.CostUs(4096), 0u);  // zero-cost model stays zero
}

}  // namespace
}  // namespace net
}  // namespace p2drm
