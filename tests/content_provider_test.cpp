// Content provider: purchase, anonymous exchange/redeem, fraud, journal.

#include "core/content_provider.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/certification_authority.h"
#include "core/smartcard.h"
#include "crypto/blind_rsa.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class ContentProviderTest : public ::testing::Test {
 protected:
  ContentProviderTest()
      : rng_("cp-test"),
        ca_(512, &rng_),
        ttp_(512, &rng_),
        bank_(512, &rng_),
        cp_(Config(), &rng_, &clock_, &bank_, ca_.PublicKey()),
        card_("Carol", 512, &rng_) {
    card_.StoreIdentityCertificate(ca_.Enrol("Carol", card_.MasterKey()));
    bank_.OpenAccount("carol", 1000);
    content_ = cp_.Publish("Album", std::vector<std::uint8_t>(100, 0x5a), 30,
                           rel::Rights::FullRetail());
  }

  static ContentProviderConfig Config() {
    ContentProviderConfig c;
    c.signing_key_bits = 512;
    return c;
  }

  Pseudonym* NewPseudonym() {
    PseudonymRequest req =
        card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
    bignum::BigInt sig =
        ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded);
    return card_.FinishPseudonym(std::move(req), sig, ca_.PublicKey());
  }

  Coin WithdrawCoin(std::uint32_t denom) {
    Coin coin;
    rng_.Fill(coin.serial.data(), coin.serial.size());
    coin.denomination = denom;
    const auto& key = bank_.DenominationKey(denom);
    auto ctx = crypto::BlindMessage(key, coin.CanonicalBytes(), &rng_);
    bignum::BigInt blind_sig;
    EXPECT_EQ(bank_.Withdraw("carol", denom, ctx.blinded, &blind_sig),
              Status::kOk);
    coin.signature = crypto::Unblind(key, ctx, blind_sig);
    return coin;
  }

  std::vector<Coin> Pay(std::uint64_t amount) {
    std::vector<Coin> coins;
    for (auto d : PlanCoins(amount)) coins.push_back(WithdrawCoin(d));
    return coins;
  }

  crypto::HmacDrbg rng_;
  SimClock clock_;
  CertificationAuthority ca_;
  TrustedThirdParty ttp_;
  PaymentProvider bank_;
  ContentProvider cp_;
  SmartCard card_;
  rel::ContentId content_ = 0;
};

TEST_F(ContentProviderTest, CatalogAndContent) {
  auto offers = cp_.Catalog();
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].title, "Album");
  EXPECT_EQ(offers[0].price, 30u);
  EXPECT_TRUE(cp_.FindOffer(content_).has_value());
  EXPECT_FALSE(cp_.FindOffer(999).has_value());
  const auto& enc = cp_.GetContent(content_);
  EXPECT_EQ(enc.ciphertext.size(), 100u);
  // Published content is actually encrypted.
  EXPECT_NE(enc.ciphertext, std::vector<std::uint8_t>(100, 0x5a));
  EXPECT_THROW(cp_.GetContent(999), std::out_of_range);
}

TEST_F(ContentProviderTest, SuccessfulAnonymousPurchase) {
  Pseudonym* p = NewPseudonym();
  auto result = cp_.Purchase(p->cert, content_, Pay(30));
  ASSERT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.license.kind, rel::LicenseKind::kUserBound);
  EXPECT_EQ(result.license.content_id, content_);
  EXPECT_EQ(result.license.bound_key, p->cert.KeyId());
  EXPECT_FALSE(result.license.wrapped_content_key.empty());
  EXPECT_TRUE(crypto::RsaVerifyFdh(cp_.PublicKey(),
                                   result.license.CanonicalBytes(),
                                   result.license.issuer_signature));
  EXPECT_EQ(cp_.LicensesIssued(), 1u);
  EXPECT_EQ(bank_.Balance("carol"), 970u);
}

TEST_F(ContentProviderTest, PurchaseRejectsWrongPrice) {
  Pseudonym* p = NewPseudonym();
  EXPECT_EQ(cp_.Purchase(p->cert, content_, Pay(20)).status,
            Status::kWrongPrice);
  EXPECT_EQ(cp_.Purchase(p->cert, content_, Pay(40)).status,
            Status::kWrongPrice);
}

TEST_F(ContentProviderTest, PurchaseRejectsBadCertificate) {
  Pseudonym* p = NewPseudonym();
  PseudonymCertificate forged = p->cert;
  forged.escrow.push_back(0);  // breaks the CA signature
  EXPECT_EQ(cp_.Purchase(forged, content_, Pay(30)).status,
            Status::kBadCertificate);
}

TEST_F(ContentProviderTest, PurchaseRejectsUnknownContent) {
  Pseudonym* p = NewPseudonym();
  EXPECT_EQ(cp_.Purchase(p->cert, 999, Pay(30)).status,
            Status::kUnknownContent);
}

TEST_F(ContentProviderTest, PurchaseRejectsDoubleSpentCoin) {
  Pseudonym* p = NewPseudonym();
  auto coins = Pay(30);
  ASSERT_EQ(cp_.Purchase(p->cert, content_, coins).status, Status::kOk);
  // Replaying the same coins fails at the bank.
  EXPECT_EQ(cp_.Purchase(p->cert, content_, coins).status,
            Status::kDoubleSpend);
}

TEST_F(ContentProviderTest, PurchaseRejectsRevokedPseudonym) {
  Pseudonym* p = NewPseudonym();
  cp_.Revoke(p->cert.KeyId());
  EXPECT_EQ(cp_.Purchase(p->cert, content_, Pay(30)).status,
            Status::kRevoked);
}

TEST_F(ContentProviderTest, ExchangeProducesAnonymousLicense) {
  Pseudonym* p = NewPseudonym();
  auto bought = cp_.Purchase(p->cert, content_, Pay(30));
  ASSERT_EQ(bought.status, Status::kOk);

  auto sig = card_.SignWithPseudonym(
      p->cert.KeyId(),
      ContentProvider::TransferChallengeBytes(bought.license.id));
  auto exch = cp_.ExchangeForAnonymous(bought.license, sig);
  ASSERT_EQ(exch.status, Status::kOk);
  EXPECT_EQ(exch.anonymous_license.kind, rel::LicenseKind::kAnonymous);
  EXPECT_EQ(exch.anonymous_license.content_id, content_);
  EXPECT_TRUE(exch.anonymous_license.wrapped_content_key.empty());
  EXPECT_NE(exch.anonymous_license.id, bought.license.id);
  // Old license id is now spent: exchanging again fails.
  EXPECT_EQ(cp_.ExchangeForAnonymous(bought.license, sig).status,
            Status::kAlreadySpent);
}

TEST_F(ContentProviderTest, ExchangeRejectsWrongPossession) {
  Pseudonym* p = NewPseudonym();
  Pseudonym* other = NewPseudonym();
  auto bought = cp_.Purchase(p->cert, content_, Pay(30));
  ASSERT_EQ(bought.status, Status::kOk);
  // Buy with `other` too, so its key is registered with the CP.
  ASSERT_EQ(cp_.Purchase(other->cert, content_, Pay(30)).status, Status::kOk);

  // Signature by the wrong pseudonym is rejected.
  auto bad_sig = card_.SignWithPseudonym(
      other->cert.KeyId(),
      ContentProvider::TransferChallengeBytes(bought.license.id));
  EXPECT_EQ(cp_.ExchangeForAnonymous(bought.license, bad_sig).status,
            Status::kBadSignature);
}

TEST_F(ContentProviderTest, ExchangeRejectsNonTransferableRights) {
  rel::ContentId rental = cp_.Publish(
      "Rental", std::vector<std::uint8_t>(10, 1), 5, rel::Rights::Rental(99));
  Pseudonym* p = NewPseudonym();
  auto bought = cp_.Purchase(p->cert, rental, Pay(5));
  ASSERT_EQ(bought.status, Status::kOk);
  auto sig = card_.SignWithPseudonym(
      p->cert.KeyId(),
      ContentProvider::TransferChallengeBytes(bought.license.id));
  EXPECT_EQ(cp_.ExchangeForAnonymous(bought.license, sig).status,
            Status::kNotTransferable);
}

TEST_F(ContentProviderTest, ExchangeRejectsForgedLicense) {
  Pseudonym* p = NewPseudonym();
  auto bought = cp_.Purchase(p->cert, content_, Pay(30));
  ASSERT_EQ(bought.status, Status::kOk);
  rel::License forged = bought.license;
  forged.rights.play_count = 1;  // tamper
  auto sig = card_.SignWithPseudonym(
      p->cert.KeyId(), ContentProvider::TransferChallengeBytes(forged.id));
  EXPECT_EQ(cp_.ExchangeForAnonymous(forged, sig).status,
            Status::kBadSignature);
}

TEST_F(ContentProviderTest, RedeemBindsToTakerAndSpendsOnce) {
  Pseudonym* giver = NewPseudonym();
  auto bought = cp_.Purchase(giver->cert, content_, Pay(30));
  ASSERT_EQ(bought.status, Status::kOk);
  auto sig = card_.SignWithPseudonym(
      giver->cert.KeyId(),
      ContentProvider::TransferChallengeBytes(bought.license.id));
  auto exch = cp_.ExchangeForAnonymous(bought.license, sig);
  ASSERT_EQ(exch.status, Status::kOk);

  Pseudonym* taker = NewPseudonym();
  auto redeemed = cp_.RedeemAnonymous(exch.anonymous_license, taker->cert);
  ASSERT_EQ(redeemed.status, Status::kOk);
  EXPECT_EQ(redeemed.license.kind, rel::LicenseKind::kUserBound);
  EXPECT_EQ(redeemed.license.bound_key, taker->cert.KeyId());
  EXPECT_FALSE(redeemed.license.wrapped_content_key.empty());

  // Second redemption: detected, fraud evidence produced.
  Pseudonym* cheater = NewPseudonym();
  auto again = cp_.RedeemAnonymous(exch.anonymous_license, cheater->cert);
  EXPECT_EQ(again.status, Status::kAlreadySpent);
  EXPECT_EQ(cp_.DoubleRedemptionAttempts(), 1u);
  auto evidence = cp_.TakeFraudEvidence();
  ASSERT_EQ(evidence.size(), 1u);
  EXPECT_EQ(evidence[0].first.license_id, exch.anonymous_license.id);
  // Queue drained.
  EXPECT_TRUE(cp_.TakeFraudEvidence().empty());
}

TEST_F(ContentProviderTest, RedeemRejectsNonAnonymousLicense) {
  Pseudonym* p = NewPseudonym();
  auto bought = cp_.Purchase(p->cert, content_, Pay(30));
  ASSERT_EQ(bought.status, Status::kOk);
  EXPECT_EQ(cp_.RedeemAnonymous(bought.license, p->cert).status,
            Status::kBadRequest);
}

TEST_F(ContentProviderTest, FraudEvidenceConvincesTtp) {
  Pseudonym* giver = NewPseudonym();
  auto bought = cp_.Purchase(giver->cert, content_, Pay(30));
  auto sig = card_.SignWithPseudonym(
      giver->cert.KeyId(),
      ContentProvider::TransferChallengeBytes(bought.license.id));
  auto exch = cp_.ExchangeForAnonymous(bought.license, sig);
  ASSERT_EQ(exch.status, Status::kOk);

  Pseudonym* taker = NewPseudonym();
  clock_.Advance(10);
  ASSERT_EQ(cp_.RedeemAnonymous(exch.anonymous_license, taker->cert).status,
            Status::kOk);
  clock_.Advance(10);
  Pseudonym* cheat = NewPseudonym();
  ASSERT_EQ(cp_.RedeemAnonymous(exch.anonymous_license, cheat->cert).status,
            Status::kAlreadySpent);

  auto evidence = cp_.TakeFraudEvidence();
  ASSERT_EQ(evidence.size(), 1u);
  auto opened = ttp_.OpenEscrow(evidence[0], cp_.PublicKey());
  ASSERT_TRUE(opened.opened) << opened.reason;
  EXPECT_EQ(opened.card_id, card_.CardId());
}

TEST_F(ContentProviderTest, SpentJournalSurvivesRestart) {
  std::string journal = testing::TempDir() + "cp_journal_test.log";
  std::remove(journal.c_str());

  rel::LicenseId spent_id;
  {
    ContentProviderConfig cfg = Config();
    cfg.spent_journal_path = journal;
    ContentProvider cp(cfg, &rng_, &clock_, &bank_, ca_.PublicKey());
    rel::ContentId cid = cp.Publish("X", std::vector<std::uint8_t>(4, 1), 5,
                                    rel::Rights::FullRetail());
    Pseudonym* p = NewPseudonym();
    auto bought = cp.Purchase(p->cert, cid, Pay(5));
    ASSERT_EQ(bought.status, Status::kOk);
    auto sig = card_.SignWithPseudonym(
        p->cert.KeyId(),
        ContentProvider::TransferChallengeBytes(bought.license.id));
    ASSERT_EQ(cp.ExchangeForAnonymous(bought.license, sig).status,
              Status::kOk);
    spent_id = bought.license.id;
    EXPECT_EQ(cp.SpentSetSize(), 1u);
  }
  {
    // "Restart": a fresh provider instance rebuilds the spent set.
    ContentProviderConfig cfg = Config();
    cfg.spent_journal_path = journal;
    ContentProvider cp(cfg, &rng_, &clock_, &bank_, ca_.PublicKey());
    EXPECT_EQ(cp.SpentSetSize(), 1u);
  }
  std::remove(journal.c_str());
}

TEST_F(ContentProviderTest, DistinctPseudonymCounting) {
  Pseudonym* p1 = NewPseudonym();
  Pseudonym* p2 = NewPseudonym();
  cp_.Purchase(p1->cert, content_, Pay(30));
  cp_.Purchase(p2->cert, content_, Pay(30));
  cp_.Purchase(p1->cert, content_, Pay(30));
  EXPECT_EQ(cp_.DistinctPseudonymsSeen(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
