// End-to-end integration: full system over the wire via UserAgent.

#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/system.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

SystemConfig SmallSystem() {
  SystemConfig cfg;
  cfg.ca_key_bits = 512;
  cfg.ttp_key_bits = 512;
  cfg.bank_key_bits = 512;
  cfg.cp.signing_key_bits = 512;
  return cfg;
}

AgentConfig SmallAgent() {
  AgentConfig cfg;
  cfg.pseudonym_bits = 512;
  cfg.pseudonym_max_uses = 1;
  return cfg;
}

class E2eTest : public ::testing::Test {
 protected:
  E2eTest() : rng_("e2e"), system_(SmallSystem(), &rng_) {
    song_ = system_.cp().Publish("Song", std::vector<std::uint8_t>(512, 0xaa),
                                 30, rel::Rights::FullRetail());
    movie_ = system_.cp().Publish(
        "Movie", std::vector<std::uint8_t>(2048, 0xbb), 87,
        rel::Rights::MeteredPlay(3));
  }

  crypto::HmacDrbg rng_;
  P2drmSystem system_;
  rel::ContentId song_ = 0;
  rel::ContentId movie_ = 0;
};

TEST_F(E2eTest, PurchaseAndPlayEndToEnd) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  rel::License lic;
  ASSERT_EQ(alice.BuyContent(song_, &lic), Status::kOk);
  EXPECT_EQ(lic.content_id, song_);

  UseResult r = alice.Play(song_);
  ASSERT_EQ(r.decision, rel::Decision::kAllow) << r.error;
  EXPECT_EQ(r.plaintext, std::vector<std::uint8_t>(512, 0xaa));
}

TEST_F(E2eTest, BankBalanceReflectsPurchases) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  std::uint64_t before = system_.bank().Balance("alice");
  ASSERT_EQ(alice.BuyContent(song_, nullptr), Status::kOk);
  // Exactly the price left the account (coins are withdrawn on demand).
  EXPECT_EQ(system_.bank().Balance("alice") + 30, before);
  // The merchant got paid.
  EXPECT_EQ(system_.bank().Balance("cp"), 30u);
}

TEST_F(E2eTest, PurchaseIsPseudonymous) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  ASSERT_EQ(alice.BuyContent(song_, nullptr), Status::kOk);
  ASSERT_EQ(alice.BuyContent(movie_, nullptr), Status::kOk);
  // Two purchases, two distinct pseudonyms (policy: fresh per purchase) —
  // the CP cannot link them.
  EXPECT_EQ(system_.cp().DistinctPseudonymsSeen(), 2u);
  // No identified debit record exists for the purchases.
  EXPECT_TRUE(system_.bank().DebitLog().empty());
  // And the CP endpoint only ever saw anonymous callers for purchases.
  EXPECT_EQ(system_.transport().StatsFor("alice", "cp").messages, 0u);
}

TEST_F(E2eTest, PseudonymReusePolicyLinksPurchases) {
  AgentConfig reuse = SmallAgent();
  reuse.pseudonym_max_uses = 10;
  UserAgent bob("bob", reuse, &system_, &rng_);
  ASSERT_EQ(bob.BuyContent(song_, nullptr), Status::kOk);
  ASSERT_EQ(bob.BuyContent(movie_, nullptr), Status::kOk);
  EXPECT_EQ(system_.cp().DistinctPseudonymsSeen(), 1u);
}

TEST_F(E2eTest, TransferEndToEnd) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  UserAgent bob("bob", SmallAgent(), &system_, &rng_);

  rel::License lic;
  ASSERT_EQ(alice.BuyContent(song_, &lic), Status::kOk);
  ASSERT_EQ(alice.Play(song_).decision, rel::Decision::kAllow);

  // Alice gives the license away (anonymous exchange)…
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kOk);
  // …her device no longer plays it…
  EXPECT_NE(alice.Play(song_).decision, rel::Decision::kAllow);
  // …and Bob redeems and plays.
  rel::License bob_lic;
  ASSERT_EQ(bob.ReceiveLicense(bearer, &bob_lic), Status::kOk);
  EXPECT_EQ(bob_lic.content_id, song_);
  UseResult r = bob.Play(song_);
  ASSERT_EQ(r.decision, rel::Decision::kAllow) << r.error;
  EXPECT_EQ(r.plaintext, std::vector<std::uint8_t>(512, 0xaa));
}

TEST_F(E2eTest, TransferIsUnlinkableAtProvider) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  UserAgent bob("bob", SmallAgent(), &system_, &rng_);
  rel::License lic;
  ASSERT_EQ(alice.BuyContent(song_, &lic), Status::kOk);
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kOk);
  ASSERT_EQ(bob.ReceiveLicense(bearer, nullptr), Status::kOk);

  // The CP saw: alice's purchase pseudonym, and bob's redeem pseudonym.
  // The only thing they share is the content id — same as any two
  // unrelated customers. All transfer traffic arrived anonymously.
  EXPECT_EQ(system_.transport().StatsFor("alice", "cp").messages, 0u);
  EXPECT_EQ(system_.transport().StatsFor("bob", "cp").messages, 0u);
  EXPECT_GE(system_.transport()
                .StatsFor(net::Transport::kAnonymous, "cp")
                .messages,
            3u);  // purchase + exchange + redeem
}

TEST_F(E2eTest, DoubleRedemptionTriggersDeanonymizationAndRevocation) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  UserAgent bob("bob", SmallAgent(), &system_, &rng_);
  UserAgent mallory("mallory", SmallAgent(), &system_, &rng_);

  rel::License lic;
  ASSERT_EQ(alice.BuyContent(song_, &lic), Status::kOk);
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kOk);

  // Mallory copies the bearer license before passing it to Bob: classic
  // double redemption.
  ASSERT_EQ(mallory.ReceiveLicense(bearer, nullptr), Status::kOk);
  system_.clock().Advance(5);
  EXPECT_EQ(bob.ReceiveLicense(bearer, nullptr), Status::kAlreadySpent);

  // Fraud pipeline: CP → TTP → identity + revocation.
  auto identified = system_.ProcessFraud();
  ASSERT_EQ(identified.size(), 1u);
  // The *second* redeemer (bob) is the one whose transcript conflicts.
  EXPECT_EQ(system_.ca().HolderName(identified[0]), "bob");
  EXPECT_EQ(system_.ttp().OpenedCount(), 1u);
  EXPECT_EQ(system_.cp().Crl().Size(), 1u);
}

TEST_F(E2eTest, HonestUsersStayAnonymous) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  ASSERT_EQ(alice.BuyContent(song_, nullptr), Status::kOk);
  ASSERT_EQ(alice.BuyContent(movie_, nullptr), Status::kOk);
  EXPECT_TRUE(system_.ProcessFraud().empty());
  EXPECT_EQ(system_.ttp().OpenedCount(), 0u);
}

TEST_F(E2eTest, InsufficientFundsFailsCleanly) {
  AgentConfig poor = SmallAgent();
  poor.initial_bank_balance = 5;
  UserAgent carol("carol", poor, &system_, &rng_);
  EXPECT_EQ(carol.BuyContent(song_, nullptr), Status::kInsufficientFunds);
  // Nothing was installed and no license was issued.
  EXPECT_NE(carol.Play(song_).decision, rel::Decision::kAllow);
}

TEST_F(E2eTest, UnknownContentFails) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  EXPECT_EQ(alice.BuyContent(9999, nullptr), Status::kUnknownContent);
}

TEST_F(E2eTest, CrlSyncPropagatesToDevice) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  rel::License lic;
  ASSERT_EQ(alice.BuyContent(song_, &lic), Status::kOk);
  system_.cp().Revoke(lic.bound_key);
  alice.SyncCrl();
  EXPECT_NE(alice.Play(song_).decision, rel::Decision::kAllow);
}

TEST_F(E2eTest, WalletWithdrawAndValue) {
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  EXPECT_EQ(alice.WalletValue(), 0u);
  ASSERT_EQ(alice.WithdrawCoins(87), Status::kOk);
  EXPECT_EQ(alice.WalletValue(), 87u);
  EXPECT_EQ(system_.bank().Balance("alice"), 1000u - 87u);
  // Buying the 30-unit song uses wallet coins first.
  ASSERT_EQ(alice.BuyContent(song_, nullptr), Status::kOk);
  EXPECT_LE(alice.WalletValue(), 87u - 30u + 100u);  // change may be withdrawn
}

TEST_F(E2eTest, MeteredLicenseTransfersWithRemainingStateReset) {
  // Movie has 3 metered plays and no transfer right → GiveLicense fails.
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  rel::License lic;
  ASSERT_EQ(alice.BuyContent(movie_, &lic), Status::kOk);
  std::vector<std::uint8_t> bearer;
  EXPECT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kNotTransferable);
}

TEST_F(E2eTest, ProtocolByteAccountingIsVisible) {
  system_.transport().ResetStats();
  UserAgent alice("alice", SmallAgent(), &system_, &rng_);
  ASSERT_EQ(alice.BuyContent(song_, nullptr), Status::kOk);
  auto total = system_.transport().GrandTotal();
  EXPECT_GT(total.messages, 0u);
  EXPECT_GT(total.bytes, 0u);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
