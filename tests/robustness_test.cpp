// Robustness: hostile bytes must never crash a parser — every decoder
// either round-trips valid input or throws a typed error. The content
// provider's endpoints face the open network in this design, so decoder
// discipline is a security property, not a nicety.

#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/certificates.h"
#include "core/delegation.h"
#include "core/payment.h"
#include "core/protocol.h"
#include "core/receipts.h"
#include "core/system.h"
#include "core/ttp.h"
#include "crypto/drbg.h"
#include "net/rpc.h"
#include "rel/license.h"

namespace p2drm {
namespace {

using crypto::HmacDrbg;

/// Feeds len-bounded random buffers to a parser and requires it to either
/// succeed or throw something derived from std::exception — never crash,
/// never hang, never UB (run under sanitizers to strengthen).
template <typename Fn>
void Hammer(const std::string& seed, Fn parse, int rounds = 300) {
  HmacDrbg rng("robustness-" + seed);
  for (int i = 0; i < rounds; ++i) {
    std::size_t len = static_cast<std::size_t>(rng.NextUint64(512));
    std::vector<std::uint8_t> buf = rng.Bytes(len);
    try {
      parse(buf);
    } catch (const std::exception&) {
      // Typed failure is the expected outcome for garbage.
    }
  }
}

TEST(Robustness, LicenseDeserializeNeverCrashes) {
  Hammer("license", [](const std::vector<std::uint8_t>& b) {
    (void)rel::License::Deserialize(b);
  });
}

TEST(Robustness, CertificatesNeverCrash) {
  Hammer("identity", [](const std::vector<std::uint8_t>& b) {
    (void)core::IdentityCertificate::Deserialize(b);
  });
  Hammer("pseudonym", [](const std::vector<std::uint8_t>& b) {
    (void)core::PseudonymCertificate::Deserialize(b);
  });
  Hammer("device", [](const std::vector<std::uint8_t>& b) {
    (void)core::DeviceCertificate::Deserialize(b);
  });
}

TEST(Robustness, CoinAndTranscriptNeverCrash) {
  Hammer("coin", [](const std::vector<std::uint8_t>& b) {
    (void)core::Coin::Deserialize(b);
  });
  Hammer("transcript", [](const std::vector<std::uint8_t>& b) {
    (void)core::RedemptionTranscript::Deserialize(b);
  });
  Hammer("evidence", [](const std::vector<std::uint8_t>& b) {
    (void)core::FraudEvidence::Deserialize(b);
  });
}

TEST(Robustness, DelegationAndReceiptsNeverCrash) {
  Hammer("delegation", [](const std::vector<std::uint8_t>& b) {
    (void)core::DelegationLicense::Deserialize(b);
  });
  Hammer("order", [](const std::vector<std::uint8_t>& b) {
    (void)core::PurchaseOrder::Deserialize(b);
  });
  Hammer("receipt", [](const std::vector<std::uint8_t>& b) {
    (void)core::PurchaseReceipt::Deserialize(b);
  });
}

TEST(Robustness, HybridCiphertextNeverCrashes) {
  Hammer("hybrid", [](const std::vector<std::uint8_t>& b) {
    (void)crypto::HybridCiphertext::Deserialize(b);
  });
}

TEST(Robustness, EndpointsSurviveGarbageRequests) {
  // The real attack surface: random bytes straight into every endpoint.
  // Since the RPC redesign the server never throws — every garbage buffer
  // must come back as a well-formed response envelope with an error
  // status.
  HmacDrbg rng("endpoint-garbage");
  core::SystemConfig cfg;
  cfg.ca_key_bits = 512;
  cfg.ttp_key_bits = 512;
  cfg.bank_key_bits = 512;
  cfg.cp.signing_key_bits = 512;
  core::P2drmSystem system(cfg, &rng);
  system.cp().Publish("X", {1, 2, 3}, 1, rel::Rights::FullRetail());

  const char* endpoints[] = {
      core::P2drmSystem::kCaEndpoint, core::P2drmSystem::kBankEndpoint,
      core::P2drmSystem::kCpEndpoint, core::P2drmSystem::kTtpEndpoint};
  int rejected = 0;
  int total = 0;
  for (int i = 0; i < 400; ++i) {
    std::size_t len = static_cast<std::size_t>(rng.NextUint64(256));
    std::vector<std::uint8_t> buf = rng.Bytes(len);
    for (const char* ep : endpoints) {
      ++total;
      std::vector<std::uint8_t> raw;
      ASSERT_TRUE(system.transport().TryCall("fuzzer", ep, buf, &raw));
      net::ResponseEnvelope resp;
      ASSERT_NO_THROW(resp = net::ResponseEnvelope::Decode(raw));
      if (resp.status != core::Status::kOk) ++rejected;
    }
  }
  // Every random buffer must be rejected with a typed status (a random
  // buffer essentially never forms a valid versioned envelope whose
  // payload also decodes as a real request).
  EXPECT_EQ(rejected, total);

  // The system still works afterwards.
  core::AgentConfig acfg;
  acfg.pseudonym_bits = 512;
  core::UserAgent alice("alice", acfg, &system, &rng);
  EXPECT_EQ(alice.BuyContent(1, nullptr), core::Status::kOk);
}

TEST(Robustness, TruncationSweepOnValidLicense) {
  // Every strict prefix of a valid encoding must throw, not mis-parse.
  HmacDrbg rng("truncate");
  rel::License lic;
  rng.Fill(lic.id.bytes.data(), lic.id.bytes.size());
  lic.content_id = 7;
  lic.rights = rel::Rights::FullRetail();
  lic.wrapped_content_key = rng.Bytes(64);
  lic.issuer_signature = rng.Bytes(64);
  auto bytes = lic.Serialize();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW((void)rel::License::Deserialize(prefix), net::CodecError)
        << "prefix length " << cut;
  }
  // The full encoding parses.
  EXPECT_NO_THROW((void)rel::License::Deserialize(bytes));
}

TEST(Robustness, BitFlipSweepOnValidLicenseSignature) {
  // Any single-bit flip anywhere in the serialized license must be caught
  // by signature verification (or fail to parse).
  HmacDrbg rng("bitflip");
  crypto::RsaPrivateKey key = crypto::GenerateRsaKey(512, &rng);
  rel::License lic;
  rng.Fill(lic.id.bytes.data(), lic.id.bytes.size());
  lic.content_id = 9;
  lic.rights = rel::Rights::MeteredPlay(3);
  lic.wrapped_content_key = rng.Bytes(32);
  lic.issuer_signature = crypto::RsaSignFdh(key, lic.CanonicalBytes());
  auto bytes = lic.Serialize();

  for (std::size_t byte = 0; byte < bytes.size(); byte += 7) {
    auto mutated = bytes;
    mutated[byte] ^= 0x04;
    try {
      rel::License parsed = rel::License::Deserialize(mutated);
      EXPECT_FALSE(crypto::RsaVerifyFdh(key.PublicKey(),
                                        parsed.CanonicalBytes(),
                                        parsed.issuer_signature))
          << "flip at byte " << byte << " survived verification";
    } catch (const std::exception&) {
      // Parse rejection is equally acceptable.
    }
  }
}

}  // namespace
}  // namespace p2drm
