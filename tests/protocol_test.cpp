// Wire protocol: message round trips, typed RPC dispatch, malformed input.

#include "core/protocol.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "crypto/drbg.h"
#include "net/rpc.h"

namespace p2drm {
namespace core {
namespace protocol {
namespace {

TEST(ProtoBigInt, RoundTrip) {
  net::ByteWriter w;
  bignum::BigInt v = bignum::BigInt::FromHex("deadbeef00112233445566778899");
  WriteBigInt(&w, v);
  WriteBigInt(&w, bignum::BigInt(0));
  net::ByteReader r(w.Bytes());
  EXPECT_EQ(ReadBigInt(&r).ToHex(), v.ToHex());
  EXPECT_TRUE(ReadBigInt(&r).IsZero());
}

crypto::RsaPublicKey SomeKey() {
  static crypto::RsaPublicKey key = [] {
    crypto::HmacDrbg rng("proto-key");
    return crypto::GenerateRsaKey(256, &rng).PublicKey();
  }();
  return key;
}

TEST(ProtoMessages, EnrolRoundTrip) {
  EnrolRequest req;
  req.holder_name = "alice";
  req.master_key = SomeKey();
  // The tag is NOT part of the body — it rides in the RPC envelope.
  auto bytes = req.Encode();
  net::ByteReader r(bytes);
  EnrolRequest back = EnrolRequest::Decode(&r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.holder_name, "alice");
  EXPECT_TRUE(back.master_key == req.master_key);
}

TEST(ProtoMessages, WithdrawRoundTrip) {
  WithdrawRequest req;
  req.account = "bob";
  req.denomination = 50;
  req.blinded = bignum::BigInt::FromHex("abcdef");
  auto bytes = req.Encode();
  net::ByteReader r(bytes);
  WithdrawRequest back = WithdrawRequest::Decode(&r);
  EXPECT_EQ(back.account, "bob");
  EXPECT_EQ(back.denomination, 50u);
  EXPECT_EQ(back.blinded.ToHex(), "abcdef");

  WithdrawResponse resp;
  resp.blind_signature = bignum::BigInt::FromHex("1234");
  WithdrawResponse rback = WithdrawResponse::Decode(resp.Encode());
  EXPECT_EQ(rback.blind_signature.ToHex(), "1234");
}

TEST(ProtoMessages, PurchaseRoundTrip) {
  PurchaseRequest req;
  req.buyer.pseudonym_key = SomeKey();
  req.buyer.escrow = {1, 2};
  req.buyer.ca_signature = {3, 4};
  req.content_id = 42;
  Coin c;
  c.serial.fill(9);
  c.denomination = 10;
  c.signature = {5};
  req.payment = {c, c};
  auto bytes = req.Encode();
  net::ByteReader r(bytes);
  PurchaseRequest back = PurchaseRequest::Decode(&r);
  EXPECT_EQ(back.content_id, 42u);
  ASSERT_EQ(back.payment.size(), 2u);
  EXPECT_EQ(back.payment[0].denomination, 10u);
  EXPECT_EQ(back.buyer.escrow, req.buyer.escrow);
}

TEST(ProtoMessages, RequestTagsAreDeclared) {
  // The typed stub keys on Req::kTag; pin the wire values.
  EXPECT_EQ(EnrolRequest::kTag, Tag::kEnrol);
  EXPECT_EQ(WithdrawRequest::kTag, Tag::kWithdraw);
  EXPECT_EQ(PurchaseRequest::kTag, Tag::kPurchase);
  EXPECT_EQ(RedeemRequest::kTag, Tag::kRedeem);
  EXPECT_EQ(OpenEscrowRequest::kTag, Tag::kOpenEscrow);
  // No protocol tag may collide with the reserved batch tag.
  EXPECT_NE(static_cast<std::uint8_t>(Tag::kOpenEscrow), net::kBatchTag);
}

TEST(ProtoMessages, CatalogRoundTrip) {
  CatalogResponse resp;
  Offer o;
  o.content_id = 7;
  o.title = "Title";
  o.price = 30;
  o.rights = rel::Rights::FullRetail();
  resp.offers = {o, o};
  CatalogResponse back = CatalogResponse::Decode(resp.Encode());
  ASSERT_EQ(back.offers.size(), 2u);
  EXPECT_EQ(back.offers[0].title, "Title");
  EXPECT_TRUE(back.offers[1].rights == o.rights);
}

TEST(ProtoMessages, FetchContentRoundTrip) {
  FetchContentResponse resp;
  resp.content.content_id = 3;
  resp.content.nonce.fill(7);
  resp.content.ciphertext = {1, 2, 3};
  FetchContentResponse back = FetchContentResponse::Decode(resp.Encode());
  EXPECT_EQ(back.content.content_id, 3u);
  EXPECT_EQ(back.content.nonce[0], 7);
  EXPECT_EQ(back.content.ciphertext, resp.content.ciphertext);
}

TEST(ProtoMessages, OpenEscrowRoundTrip) {
  OpenEscrowResponse resp;
  resp.opened = true;
  resp.card_id = 99;
  resp.reason = "";
  OpenEscrowResponse back = OpenEscrowResponse::Decode(resp.Encode());
  EXPECT_TRUE(back.opened);
  EXPECT_EQ(back.card_id, 99u);
}

// -- endpoint dispatch through a real system ---------------------------------

class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest()
      : rng_("dispatch"),
        system_(Config(), &rng_),
        rpc_(&system_.transport(), "x") {}

  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.ca_key_bits = 512;
    cfg.ttp_key_bits = 512;
    cfg.bank_key_bits = 512;
    cfg.cp.signing_key_bits = 512;
    return cfg;
  }

  /// Sends a hand-built envelope and decodes the response envelope.
  net::ResponseEnvelope RawRoundTrip(const std::string& endpoint,
                                     const net::RequestEnvelope& env) {
    auto raw = system_.transport().Call("x", endpoint, env.Encode());
    return net::ResponseEnvelope::Decode(raw);
  }

  crypto::HmacDrbg rng_;
  P2drmSystem system_;
  net::Rpc rpc_;
};

TEST_F(DispatchTest, UnknownTagReturnsStatus) {
  net::RequestEnvelope env;
  env.tag = 0x7f;  // no such protocol message
  env.correlation_id = 5;
  for (const char* ep :
       {P2drmSystem::kCaEndpoint, P2drmSystem::kBankEndpoint,
        P2drmSystem::kCpEndpoint, P2drmSystem::kTtpEndpoint}) {
    net::ResponseEnvelope resp = RawRoundTrip(ep, env);
    EXPECT_EQ(resp.status, Status::kUnknownTag) << ep;
    EXPECT_EQ(resp.correlation_id, 5u) << ep;
  }
}

TEST_F(DispatchTest, TruncatedPayloadReturnsBadRequest) {
  net::RequestEnvelope env;
  env.tag = static_cast<std::uint8_t>(Tag::kPurchase);
  env.payload = {0x00};  // far too short for a PurchaseRequest
  net::ResponseEnvelope resp = RawRoundTrip(P2drmSystem::kCpEndpoint, env);
  EXPECT_EQ(resp.status, Status::kBadRequest);
}

TEST_F(DispatchTest, VersionMismatchIsRejected) {
  net::RequestEnvelope env;
  env.version = 99;
  env.tag = static_cast<std::uint8_t>(Tag::kCatalog);
  net::ResponseEnvelope resp = RawRoundTrip(P2drmSystem::kCpEndpoint, env);
  EXPECT_EQ(resp.status, Status::kVersionMismatch);
}

TEST_F(DispatchTest, CatalogOverTheWire) {
  system_.cp().Publish("A", {1, 2, 3}, 5, rel::Rights::UnlimitedPlay());
  auto resp = rpc_.Call(P2drmSystem::kCpEndpoint, CatalogRequest{});
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp.value.offers.size(), 1u);
  EXPECT_EQ(resp.value.offers[0].title, "A");
}

TEST_F(DispatchTest, FetchUnknownContentReturnsStatus) {
  FetchContentRequest req;
  req.content_id = 12345;
  auto resp = rpc_.Call(P2drmSystem::kCpEndpoint, req);
  EXPECT_EQ(resp.status, Status::kUnknownContent);
}

TEST_F(DispatchTest, UnknownEndpointReturnsUnavailable) {
  auto resp = rpc_.Call("no-such-endpoint", CatalogRequest{});
  EXPECT_EQ(resp.status, Status::kUnavailable);
}

TEST_F(DispatchTest, CrlFetchOverTheWire) {
  system_.cp().Revoke(rel::KeyFingerprint{});
  auto resp = rpc_.Call(P2drmSystem::kCpEndpoint, FetchCrlRequest{});
  ASSERT_TRUE(resp.ok());
  auto crl = store::RevocationList::Deserialize(
      resp.value.crl_snapshot, store::CrlStrategy::kSortedSet);
  EXPECT_EQ(crl.Size(), 1u);
}

}  // namespace
}  // namespace protocol
}  // namespace core
}  // namespace p2drm
