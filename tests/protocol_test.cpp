// Wire protocol: message round trips, endpoint dispatch, malformed input.

#include "core/protocol.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace protocol {
namespace {

TEST(ProtoBigInt, RoundTrip) {
  net::ByteWriter w;
  bignum::BigInt v = bignum::BigInt::FromHex("deadbeef00112233445566778899");
  WriteBigInt(&w, v);
  WriteBigInt(&w, bignum::BigInt(0));
  net::ByteReader r(w.Bytes());
  EXPECT_EQ(ReadBigInt(&r).ToHex(), v.ToHex());
  EXPECT_TRUE(ReadBigInt(&r).IsZero());
}

crypto::RsaPublicKey SomeKey() {
  static crypto::RsaPublicKey key = [] {
    crypto::HmacDrbg rng("proto-key");
    return crypto::GenerateRsaKey(256, &rng).PublicKey();
  }();
  return key;
}

TEST(ProtoMessages, EnrolRoundTrip) {
  EnrolRequest req;
  req.holder_name = "alice";
  req.master_key = SomeKey();
  auto bytes = req.Encode();
  net::ByteReader r(bytes);
  EXPECT_EQ(static_cast<Tag>(r.U8()), Tag::kEnrol);
  EnrolRequest back = EnrolRequest::Decode(&r);
  EXPECT_EQ(back.holder_name, "alice");
  EXPECT_TRUE(back.master_key == req.master_key);
}

TEST(ProtoMessages, WithdrawRoundTrip) {
  WithdrawRequest req;
  req.account = "bob";
  req.denomination = 50;
  req.blinded = bignum::BigInt::FromHex("abcdef");
  auto bytes = req.Encode();
  net::ByteReader r(bytes);
  EXPECT_EQ(static_cast<Tag>(r.U8()), Tag::kWithdraw);
  WithdrawRequest back = WithdrawRequest::Decode(&r);
  EXPECT_EQ(back.account, "bob");
  EXPECT_EQ(back.denomination, 50u);
  EXPECT_EQ(back.blinded.ToHex(), "abcdef");

  WithdrawResponse resp;
  resp.status = Status::kInsufficientFunds;
  WithdrawResponse rback = WithdrawResponse::Decode(resp.Encode());
  EXPECT_EQ(rback.status, Status::kInsufficientFunds);
}

TEST(ProtoMessages, PurchaseRoundTrip) {
  PurchaseRequest req;
  req.buyer.pseudonym_key = SomeKey();
  req.buyer.escrow = {1, 2};
  req.buyer.ca_signature = {3, 4};
  req.content_id = 42;
  Coin c;
  c.serial.fill(9);
  c.denomination = 10;
  c.signature = {5};
  req.payment = {c, c};
  auto bytes = req.Encode();
  net::ByteReader r(bytes);
  EXPECT_EQ(static_cast<Tag>(r.U8()), Tag::kPurchase);
  PurchaseRequest back = PurchaseRequest::Decode(&r);
  EXPECT_EQ(back.content_id, 42u);
  ASSERT_EQ(back.payment.size(), 2u);
  EXPECT_EQ(back.payment[0].denomination, 10u);
  EXPECT_EQ(back.buyer.escrow, req.buyer.escrow);
}

TEST(ProtoMessages, PurchaseResponseErrorOmitsLicense) {
  PurchaseResponse resp;
  resp.status = Status::kWrongPrice;
  auto bytes = resp.Encode();
  PurchaseResponse back = PurchaseResponse::Decode(bytes);
  EXPECT_EQ(back.status, Status::kWrongPrice);
  // Small encoding: status + empty blob.
  EXPECT_LE(bytes.size(), 16u);
}

TEST(ProtoMessages, CatalogRoundTrip) {
  CatalogResponse resp;
  Offer o;
  o.content_id = 7;
  o.title = "Title";
  o.price = 30;
  o.rights = rel::Rights::FullRetail();
  resp.offers = {o, o};
  CatalogResponse back = CatalogResponse::Decode(resp.Encode());
  ASSERT_EQ(back.offers.size(), 2u);
  EXPECT_EQ(back.offers[0].title, "Title");
  EXPECT_TRUE(back.offers[1].rights == o.rights);
}

TEST(ProtoMessages, FetchContentRoundTrip) {
  FetchContentResponse resp;
  resp.status = Status::kOk;
  resp.content.content_id = 3;
  resp.content.nonce.fill(7);
  resp.content.ciphertext = {1, 2, 3};
  FetchContentResponse back = FetchContentResponse::Decode(resp.Encode());
  EXPECT_EQ(back.content.content_id, 3u);
  EXPECT_EQ(back.content.nonce[0], 7);
  EXPECT_EQ(back.content.ciphertext, resp.content.ciphertext);
}

TEST(ProtoMessages, OpenEscrowRoundTrip) {
  OpenEscrowResponse resp;
  resp.opened = true;
  resp.card_id = 99;
  resp.reason = "";
  OpenEscrowResponse back = OpenEscrowResponse::Decode(resp.Encode());
  EXPECT_TRUE(back.opened);
  EXPECT_EQ(back.card_id, 99u);
}

// -- endpoint dispatch through a real system ---------------------------------

class DispatchTest : public ::testing::Test {
 protected:
  DispatchTest() : rng_("dispatch"), system_(Config(), &rng_) {}

  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.ca_key_bits = 512;
    cfg.ttp_key_bits = 512;
    cfg.bank_key_bits = 512;
    cfg.cp.signing_key_bits = 512;
    return cfg;
  }

  crypto::HmacDrbg rng_;
  P2drmSystem system_;
};

TEST_F(DispatchTest, UnknownTagThrowsCodecError) {
  std::vector<std::uint8_t> junk = {0x7f, 0x00};
  EXPECT_THROW(system_.transport().Call("x", P2drmSystem::kCaEndpoint, junk),
               net::CodecError);
  EXPECT_THROW(system_.transport().Call("x", P2drmSystem::kBankEndpoint, junk),
               net::CodecError);
  EXPECT_THROW(system_.transport().Call("x", P2drmSystem::kCpEndpoint, junk),
               net::CodecError);
  EXPECT_THROW(system_.transport().Call("x", P2drmSystem::kTtpEndpoint, junk),
               net::CodecError);
}

TEST_F(DispatchTest, TruncatedMessageThrows) {
  std::vector<std::uint8_t> truncated = {
      static_cast<std::uint8_t>(Tag::kPurchase), 0x00};
  EXPECT_THROW(
      system_.transport().Call("x", P2drmSystem::kCpEndpoint, truncated),
      net::CodecError);
}

TEST_F(DispatchTest, CatalogOverTheWire) {
  system_.cp().Publish("A", {1, 2, 3}, 5, rel::Rights::UnlimitedPlay());
  auto raw = system_.transport().Call("x", P2drmSystem::kCpEndpoint,
                                      CatalogRequest{}.Encode());
  auto resp = CatalogResponse::Decode(raw);
  ASSERT_EQ(resp.offers.size(), 1u);
  EXPECT_EQ(resp.offers[0].title, "A");
}

TEST_F(DispatchTest, FetchUnknownContentReturnsStatus) {
  FetchContentRequest req;
  req.content_id = 12345;
  auto raw = system_.transport().Call("x", P2drmSystem::kCpEndpoint,
                                      req.Encode());
  auto resp = FetchContentResponse::Decode(raw);
  EXPECT_EQ(resp.status, Status::kUnknownContent);
}

TEST_F(DispatchTest, CrlFetchOverTheWire) {
  system_.cp().Revoke(rel::KeyFingerprint{});
  auto raw = system_.transport().Call("x", P2drmSystem::kCpEndpoint,
                                      FetchCrlRequest{}.Encode());
  auto resp = FetchCrlResponse::Decode(raw);
  auto crl = store::RevocationList::Deserialize(
      resp.crl_snapshot, store::CrlStrategy::kSortedSet);
  EXPECT_EQ(crl.Size(), 1u);
}

}  // namespace
}  // namespace protocol
}  // namespace core
}  // namespace p2drm
