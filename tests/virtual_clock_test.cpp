// The unified virtual timebase: VirtualClock, EventLoop determinism,
// SimClock as a seconds view, and the Transport charging wire latency
// into a bound clock.

#include "sim/virtual_clock.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/clock.h"
#include "net/transport.h"

namespace p2drm {
namespace {

TEST(VirtualClock, StartsAtEpochAndAdvances) {
  sim::VirtualClock c;
  EXPECT_EQ(c.NowEpochSeconds(), sim::VirtualClock::kDefaultStartEpochSeconds);
  c.AdvanceUs(1'500'000);
  EXPECT_EQ(c.NowEpochSeconds(),
            sim::VirtualClock::kDefaultStartEpochSeconds + 1);
  c.AdvanceSeconds(10);
  EXPECT_EQ(c.NowEpochSeconds(),
            sim::VirtualClock::kDefaultStartEpochSeconds + 11);
}

TEST(VirtualClock, AdvanceToNeverMovesBackwards) {
  sim::VirtualClock c(0);
  c.AdvanceToUs(500);
  EXPECT_EQ(c.NowUs(), 500u);
  c.AdvanceToUs(100);  // no-op: virtual time is monotonic
  EXPECT_EQ(c.NowUs(), 500u);
}

TEST(VirtualClock, AdvanceSaturatesInsteadOfWrapping) {
  sim::VirtualClock c(0);
  c.AdvanceUs(~std::uint64_t{0} - 10);
  c.AdvanceUs(100);  // would wrap; must pin at max
  EXPECT_EQ(c.NowUs(), ~std::uint64_t{0});
}

TEST(VirtualClock, SecondsPathsSaturateToo) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  // A "never" sentinel through any seconds-facing path must land at the
  // maximum, not wrap u64 and rewind time.
  sim::VirtualClock c(0);
  c.AdvanceUs(123);
  c.AdvanceSeconds(kMax / 2);  // *1e6 would wrap
  EXPECT_EQ(c.NowUs(), kMax);
  sim::VirtualClock never(kMax);  // constructor takes seconds
  EXPECT_EQ(never.NowUs(), kMax);
  sim::VirtualClock s(0);
  s.SetEpochSeconds(kMax - 1);
  EXPECT_EQ(s.NowUs(), kMax);
}

TEST(SimClock, DefaultOwnsItsTimebase) {
  core::SimClock clock;
  EXPECT_EQ(clock.NowEpochSeconds(),
            sim::VirtualClock::kDefaultStartEpochSeconds);
  clock.Advance(60);
  EXPECT_EQ(clock.NowEpochSeconds(),
            sim::VirtualClock::kDefaultStartEpochSeconds + 60);
  clock.Set(42);
  EXPECT_EQ(clock.NowEpochSeconds(), 42u);
}

TEST(SimClock, IsASecondsViewOverASharedTimebase) {
  sim::VirtualClock timebase(1000);
  core::SimClock view(&timebase);
  EXPECT_EQ(view.NowEpochSeconds(), 1000u);

  // Sub-second advances accumulate in the timebase even though the
  // seconds view floors them — the old SimClock could not express this.
  timebase.AdvanceUs(900'000);
  EXPECT_EQ(view.NowEpochSeconds(), 1000u);
  timebase.AdvanceUs(100'000);
  EXPECT_EQ(view.NowEpochSeconds(), 1001u);

  // And advancing through the view moves the shared timebase.
  view.Advance(9);
  EXPECT_EQ(timebase.NowEpochSeconds(), 1010u);
  EXPECT_EQ(view.timebase(), &timebase);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  sim::VirtualClock c(0);
  sim::EventLoop loop(&c);
  std::vector<int> order;
  loop.ScheduleAt(300, [&] { order.push_back(3); });
  loop.ScheduleAt(100, [&] { order.push_back(1); });
  loop.ScheduleAt(200, [&] { order.push_back(2); });
  EXPECT_EQ(loop.RunUntilIdle(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(c.NowUs(), 300u);
}

TEST(EventLoop, TiesBreakByScheduleOrder) {
  sim::VirtualClock c(0);
  sim::EventLoop loop(&c);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    loop.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  loop.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventLoop, EventsMayScheduleMoreEvents) {
  sim::VirtualClock c(0);
  sim::EventLoop loop(&c);
  std::vector<std::uint64_t> fired_at;
  // A chain: each firing schedules the next 10us later, five deep.
  std::function<void()> chain = [&] {
    fired_at.push_back(c.NowUs());
    if (fired_at.size() < 5) loop.ScheduleAfter(10, chain);
  };
  loop.ScheduleAt(0, chain);
  EXPECT_EQ(loop.RunUntilIdle(), 5u);
  EXPECT_EQ(fired_at,
            (std::vector<std::uint64_t>{0, 10, 20, 30, 40}));
}

TEST(EventLoop, ThePastIsClampedToNow) {
  sim::VirtualClock c(0);
  sim::EventLoop loop(&c);
  c.AdvanceUs(500);
  std::uint64_t ran_at = 0;
  loop.ScheduleAt(100, [&] { ran_at = c.NowUs(); });  // 100 < now
  loop.RunUntilIdle();
  EXPECT_EQ(ran_at, 500u);  // ran "immediately", never rewound time
}

TEST(EventLoop, ScheduleAfterSaturatesAtForever) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  sim::VirtualClock c(0);
  sim::EventLoop loop(&c);
  c.AdvanceUs(kMax);  // the clock is pinned at "forever"
  std::uint64_t ran_at = 0;
  // now + 10 would wrap to 9 and fire "in the past"; it must pin.
  loop.ScheduleAfter(10, [&] { ran_at = c.NowUs(); });
  loop.RunUntilIdle();
  EXPECT_EQ(ran_at, kMax);
  EXPECT_EQ(sim::SaturatingAddUs(kMax - 3, 10), kMax);
  EXPECT_EQ(sim::SaturatingAddUs(7, 10), 17u);
}

TEST(EventLoop, RunUntilStopsAtTheFence) {
  sim::VirtualClock c(0);
  sim::EventLoop loop(&c);
  int ran = 0;
  loop.ScheduleAt(100, [&] { ++ran; });
  loop.ScheduleAt(200, [&] { ++ran; });
  loop.ScheduleAt(301, [&] { ++ran; });
  EXPECT_EQ(loop.RunUntil(300), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(c.NowUs(), 300u);  // advanced to the fence, not past it
  EXPECT_EQ(loop.PendingCount(), 1u);
}

TEST(Transport, ChargesLatencyIntoBoundTimebase) {
  net::LatencyModel model;
  model.per_message_us = 100;
  model.per_kib_us = 1024;  // 1us per byte
  net::Transport t(model);
  sim::VirtualClock timebase(0);
  t.BindClock(&timebase);
  t.RegisterEndpoint("svc", [](const std::vector<std::uint8_t>&) {
    return std::vector<std::uint8_t>(512, 0);
  });
  t.Call("a", "svc", std::vector<std::uint8_t>(1024, 0));
  // request: 100 + 1024; response: 100 + 512 — all charged into the
  // shared timebase AND metered on the transport.
  EXPECT_EQ(timebase.NowUs(), 100u + 1024u + 100u + 512u);
  EXPECT_EQ(t.SimulatedTimeUs(), timebase.NowUs());

  // ResetStats clears the per-transport meter; virtual time never
  // rewinds.
  t.ResetStats();
  EXPECT_EQ(t.SimulatedTimeUs(), 0u);
  EXPECT_EQ(timebase.NowUs(), 100u + 1024u + 100u + 512u);
}

}  // namespace
}  // namespace p2drm
