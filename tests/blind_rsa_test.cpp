// Chaum blind signatures: correctness and blindness properties.

#include "crypto/blind_rsa.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace p2drm {
namespace crypto {
namespace {

using bignum::BigInt;

const RsaPrivateKey& SignerKey() {
  static const RsaPrivateKey key = [] {
    HmacDrbg rng("blind-signer-key");
    return GenerateRsaKey(512, &rng);
  }();
  return key;
}

std::vector<std::uint8_t> Msg(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(BlindRsa, UnblindedSignatureVerifies) {
  HmacDrbg rng("session-1");
  RsaPublicKey pub = SignerKey().PublicKey();
  auto msg = Msg("pseudonym-certificate-request");

  BlindingContext ctx = BlindMessage(pub, msg, &rng);
  BigInt blind_sig = SignBlinded(SignerKey(), ctx.blinded);
  auto sig = Unblind(pub, ctx, blind_sig);

  EXPECT_TRUE(RsaVerifyFdh(pub, msg, sig));
}

TEST(BlindRsa, MatchesDirectSignature) {
  // FDH is deterministic, so the unblinded signature must equal the direct
  // signature on the same message.
  HmacDrbg rng("session-2");
  RsaPublicKey pub = SignerKey().PublicKey();
  auto msg = Msg("coin-serial-0001");

  BlindingContext ctx = BlindMessage(pub, msg, &rng);
  auto sig = Unblind(pub, ctx, SignBlinded(SignerKey(), ctx.blinded));
  EXPECT_EQ(sig, RsaSignFdh(SignerKey(), msg));
}

TEST(BlindRsa, BlindedValueHidesMessage) {
  // Two different messages blinded with fresh randomness: the signer-visible
  // values must differ from the FDH representatives and from each other.
  HmacDrbg rng("session-3");
  RsaPublicKey pub = SignerKey().PublicKey();
  auto m1 = Msg("message-1");
  auto m2 = Msg("message-2");
  BlindingContext c1 = BlindMessage(pub, m1, &rng);
  BlindingContext c2 = BlindMessage(pub, m2, &rng);
  EXPECT_NE(c1.blinded.ToHex(), FdhHash(m1, pub).ToHex());
  EXPECT_NE(c2.blinded.ToHex(), FdhHash(m2, pub).ToHex());
  EXPECT_NE(c1.blinded.ToHex(), c2.blinded.ToHex());
}

TEST(BlindRsa, SameMessageBlindsDifferently) {
  // Unlinkability across sessions: identical messages produce independent
  // blinded values under fresh randomness.
  HmacDrbg rng("session-4");
  RsaPublicKey pub = SignerKey().PublicKey();
  auto msg = Msg("identical");
  BlindingContext c1 = BlindMessage(pub, msg, &rng);
  BlindingContext c2 = BlindMessage(pub, msg, &rng);
  EXPECT_NE(c1.blinded.ToHex(), c2.blinded.ToHex());
  // Yet both unblind to the same valid signature.
  auto s1 = Unblind(pub, c1, SignBlinded(SignerKey(), c1.blinded));
  auto s2 = Unblind(pub, c2, SignBlinded(SignerKey(), c2.blinded));
  EXPECT_EQ(s1, s2);
}

TEST(BlindRsa, WrongBlindingFactorFails) {
  HmacDrbg rng("session-5");
  RsaPublicKey pub = SignerKey().PublicKey();
  auto msg = Msg("message");
  BlindingContext ctx = BlindMessage(pub, msg, &rng);
  BigInt blind_sig = SignBlinded(SignerKey(), ctx.blinded);
  // Corrupt the stored inverse: unblinding must yield a bad signature.
  ctx.r_inv = ctx.r_inv.AddMod(BigInt(1), pub.n);
  auto sig = Unblind(pub, ctx, blind_sig);
  EXPECT_FALSE(RsaVerifyFdh(pub, msg, sig));
}

TEST(BlindRsa, SignatureForOneMessageDoesNotVerifyAnother) {
  HmacDrbg rng("session-6");
  RsaPublicKey pub = SignerKey().PublicKey();
  BlindingContext ctx = BlindMessage(pub, Msg("alpha"), &rng);
  auto sig = Unblind(pub, ctx, SignBlinded(SignerKey(), ctx.blinded));
  EXPECT_TRUE(RsaVerifyFdh(pub, Msg("alpha"), sig));
  EXPECT_FALSE(RsaVerifyFdh(pub, Msg("beta"), sig));
}

TEST(BlindRsa, BlindingFactorIsInvertible) {
  HmacDrbg rng("session-7");
  RsaPublicKey pub = SignerKey().PublicKey();
  for (int i = 0; i < 10; ++i) {
    BlindingContext ctx = BlindMessage(pub, Msg("m" + std::to_string(i)), &rng);
    EXPECT_EQ(ctx.r.MulMod(ctx.r_inv, pub.n).ToDec(), "1");
  }
}

// Property sweep: the full blind-sign-unblind-verify cycle holds for many
// messages and fresh randomness.
class BlindCycleSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlindCycleSweep, FullCycle) {
  HmacDrbg rng("cycle-" + std::to_string(GetParam()));
  RsaPublicKey pub = SignerKey().PublicKey();
  auto msg = Msg("sweep-message-" + std::to_string(GetParam()));
  BlindingContext ctx = BlindMessage(pub, msg, &rng);
  auto sig = Unblind(pub, ctx, SignBlinded(SignerKey(), ctx.blinded));
  EXPECT_TRUE(RsaVerifyFdh(pub, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Cycles, BlindCycleSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace crypto
}  // namespace p2drm
