// License structure: canonical bytes, serialization, signing integration.

#include "rel/license.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace p2drm {
namespace rel {
namespace {

License MakeLicense() {
  License lic;
  for (int i = 0; i < 16; ++i) lic.id.bytes[i] = static_cast<std::uint8_t>(i);
  lic.kind = LicenseKind::kUserBound;
  lic.content_id = 77;
  for (int i = 0; i < 32; ++i) lic.bound_key[i] = static_cast<std::uint8_t>(200 - i);
  lic.rights = Rights::MeteredPlay(5);
  lic.issued_at_s = 1'234'567;
  lic.wrapped_content_key = {9, 8, 7};
  lic.issuer_signature = {1, 1, 2, 3, 5, 8};
  return lic;
}

TEST(License, SerializeRoundTrip) {
  License lic = MakeLicense();
  License back = License::Deserialize(lic.Serialize());
  EXPECT_TRUE(back == lic);
}

TEST(License, AnonymousRoundTrip) {
  License lic = MakeLicense();
  lic.kind = LicenseKind::kAnonymous;
  lic.bound_key = KeyFingerprint{};  // all-zero for anonymous
  lic.wrapped_content_key.clear();
  License back = License::Deserialize(lic.Serialize());
  EXPECT_TRUE(back == lic);
  EXPECT_EQ(back.kind, LicenseKind::kAnonymous);
}

TEST(License, CanonicalBytesExcludeSignature) {
  License a = MakeLicense();
  License b = a;
  b.issuer_signature = {0xff, 0xee};
  EXPECT_EQ(a.CanonicalBytes(), b.CanonicalBytes());
  EXPECT_NE(a.Serialize(), b.Serialize());
}

TEST(License, CanonicalBytesCoverAllSignedFields) {
  License base = MakeLicense();
  auto changed = [&base](auto mutate) {
    License m = base;
    mutate(&m);
    return m.CanonicalBytes() != base.CanonicalBytes();
  };
  EXPECT_TRUE(changed([](License* l) { l->id.bytes[0] ^= 1; }));
  EXPECT_TRUE(changed([](License* l) { l->kind = LicenseKind::kAnonymous; }));
  EXPECT_TRUE(changed([](License* l) { l->content_id += 1; }));
  EXPECT_TRUE(changed([](License* l) { l->bound_key[5] ^= 1; }));
  EXPECT_TRUE(changed([](License* l) { l->rights.play_count -= 1; }));
  EXPECT_TRUE(changed([](License* l) { l->issued_at_s += 1; }));
  EXPECT_TRUE(changed([](License* l) { l->wrapped_content_key.push_back(0); }));
}

TEST(License, DeserializeRejectsBadKind) {
  License lic = MakeLicense();
  auto bytes = lic.Serialize();
  // Canonical blob starts after a 4-byte length; kind is at offset 4+16.
  bytes[4 + 16] = 0x7f;
  EXPECT_THROW(License::Deserialize(bytes), net::CodecError);
}

TEST(License, DeserializeRejectsTruncated) {
  auto bytes = MakeLicense().Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(License::Deserialize(bytes), net::CodecError);
}

TEST(License, DeserializeRejectsTrailingGarbage) {
  auto bytes = MakeLicense().Serialize();
  bytes.push_back(0x00);
  EXPECT_THROW(License::Deserialize(bytes), net::CodecError);
}

TEST(License, SignVerifyOverCanonicalBytes) {
  crypto::HmacDrbg rng("license-sign");
  crypto::RsaPrivateKey key = crypto::GenerateRsaKey(512, &rng);
  License lic = MakeLicense();
  lic.issuer_signature = crypto::RsaSignFdh(key, lic.CanonicalBytes());
  EXPECT_TRUE(crypto::RsaVerifyFdh(key.PublicKey(), lic.CanonicalBytes(),
                                   lic.issuer_signature));
  // Any field change invalidates the signature.
  lic.content_id += 1;
  EXPECT_FALSE(crypto::RsaVerifyFdh(key.PublicKey(), lic.CanonicalBytes(),
                                    lic.issuer_signature));
}

TEST(LicenseId, HexAndOrdering) {
  LicenseId a, b;
  a.bytes.fill(0);
  b.bytes.fill(0);
  b.bytes[15] = 1;
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.ToHex(), std::string(32, '0'));
  EXPECT_EQ(b.ToHex().substr(30), "01");
}

TEST(LicenseId, HashIsUsable) {
  std::hash<LicenseId> h;
  LicenseId a, b;
  a.bytes.fill(1);
  b.bytes.fill(2);
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(a));
}

TEST(License, ToStringMentionsKindAndContent) {
  License lic = MakeLicense();
  std::string s = lic.ToString();
  EXPECT_NE(s.find("user-bound"), std::string::npos);
  EXPECT_NE(s.find("77"), std::string::npos);
}

}  // namespace
}  // namespace rel
}  // namespace p2drm
