// Blind e-cash: withdrawal, deposit, double-spend detection, baseline debit.

#include "core/payment.h"

#include <gtest/gtest.h>

#include "crypto/blind_rsa.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class PaymentTest : public ::testing::Test {
 protected:
  PaymentTest() : rng_("payment-test"), bank_(512, &rng_) {
    bank_.OpenAccount("alice", 500);
    bank_.OpenAccount("shop", 0);
  }

  /// Client-side withdrawal: mint serial, blind, withdraw, unblind.
  Coin WithdrawCoin(const std::string& account, std::uint32_t denom) {
    Coin coin;
    rng_.Fill(coin.serial.data(), coin.serial.size());
    coin.denomination = denom;
    const auto& key = bank_.DenominationKey(denom);
    auto ctx = crypto::BlindMessage(key, coin.CanonicalBytes(), &rng_);
    bignum::BigInt blind_sig;
    EXPECT_EQ(bank_.Withdraw(account, denom, ctx.blinded, &blind_sig),
              Status::kOk);
    coin.signature = crypto::Unblind(key, ctx, blind_sig);
    return coin;
  }

  crypto::HmacDrbg rng_;
  PaymentProvider bank_;
};

TEST_F(PaymentTest, DenominationsAscendAndIncludeUnit) {
  const auto& d = PaymentProvider::Denominations();
  ASSERT_FALSE(d.empty());
  EXPECT_EQ(d.front(), 1u);
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_LT(d[i - 1], d[i]);
}

TEST_F(PaymentTest, WithdrawDebitsAccount) {
  WithdrawCoin("alice", 50);
  EXPECT_EQ(bank_.Balance("alice"), 450u);
}

TEST_F(PaymentTest, WithdrawnCoinVerifies) {
  Coin coin = WithdrawCoin("alice", 10);
  EXPECT_TRUE(crypto::RsaVerifyFdh(bank_.DenominationKey(10),
                                   coin.CanonicalBytes(), coin.signature));
}

TEST_F(PaymentTest, CoinFromOneDenomKeyFailsAnother) {
  Coin coin = WithdrawCoin("alice", 10);
  // Claiming a higher denomination with the same signature must fail:
  // the denomination is enforced by key separation.
  Coin forged = coin;
  forged.denomination = 100;
  EXPECT_EQ(bank_.Deposit(forged, "shop"), Status::kPaymentFailed);
}

TEST_F(PaymentTest, DepositCreditsAndRejectsDoubleSpend) {
  Coin coin = WithdrawCoin("alice", 20);
  EXPECT_EQ(bank_.Deposit(coin, "shop"), Status::kOk);
  EXPECT_EQ(bank_.Balance("shop"), 20u);
  EXPECT_EQ(bank_.Deposit(coin, "shop"), Status::kDoubleSpend);
  EXPECT_EQ(bank_.Balance("shop"), 20u);
  EXPECT_EQ(bank_.DoubleSpendAttempts(), 1u);
  EXPECT_EQ(bank_.DepositedCoins(), 1u);
}

TEST_F(PaymentTest, InsufficientFundsRejected) {
  bank_.OpenAccount("poor", 5);
  bignum::BigInt sig;
  EXPECT_EQ(bank_.Withdraw("poor", 100, bignum::BigInt(123), &sig),
            Status::kInsufficientFunds);
  EXPECT_EQ(bank_.Balance("poor"), 5u);
}

TEST_F(PaymentTest, UnknownAccountAndDenomination) {
  bignum::BigInt sig;
  EXPECT_EQ(bank_.Withdraw("nobody", 10, bignum::BigInt(1), &sig),
            Status::kUnknownAccount);
  EXPECT_EQ(bank_.Withdraw("alice", 3, bignum::BigInt(1), &sig),
            Status::kBadRequest);
  Coin c;
  c.denomination = 10;
  EXPECT_EQ(bank_.Deposit(c, "nobody"), Status::kUnknownAccount);
  EXPECT_THROW(bank_.DenominationKey(3), std::invalid_argument);
  EXPECT_THROW(bank_.Balance("nobody"), std::invalid_argument);
}

TEST_F(PaymentTest, ForgedCoinRejected) {
  Coin coin;
  rng_.Fill(coin.serial.data(), coin.serial.size());
  coin.denomination = 10;
  coin.signature.assign(64, 0xab);
  EXPECT_EQ(bank_.Deposit(coin, "shop"), Status::kPaymentFailed);
}

TEST_F(PaymentTest, WithdrawalIsUnlinkableToDeposit) {
  // The bank sees the blinded value at withdrawal and the serial at
  // deposit; they must not match trivially.
  Coin coin;
  rng_.Fill(coin.serial.data(), coin.serial.size());
  coin.denomination = 10;
  const auto& key = bank_.DenominationKey(10);
  auto ctx = crypto::BlindMessage(key, coin.CanonicalBytes(), &rng_);
  bignum::BigInt blind_sig;
  ASSERT_EQ(bank_.Withdraw("alice", 10, ctx.blinded, &blind_sig), Status::kOk);
  coin.signature = crypto::Unblind(key, ctx, blind_sig);

  // What the bank saw (blinded) differs from the coin's FDH representative.
  EXPECT_NE(ctx.blinded.ToHex(),
            crypto::FdhHash(coin.CanonicalBytes(), key).ToHex());
  // And the coin still deposits fine.
  EXPECT_EQ(bank_.Deposit(coin, "shop"), Status::kOk);
}

TEST_F(PaymentTest, DirectDebitMovesFundsAndLogs) {
  EXPECT_EQ(bank_.DirectDebit("alice", "shop", 30, 1111), Status::kOk);
  EXPECT_EQ(bank_.Balance("alice"), 470u);
  EXPECT_EQ(bank_.Balance("shop"), 30u);
  ASSERT_EQ(bank_.DebitLog().size(), 1u);
  EXPECT_EQ(bank_.DebitLog()[0].account, "alice");
  EXPECT_EQ(bank_.DebitLog()[0].payee, "shop");
  EXPECT_EQ(bank_.DebitLog()[0].amount, 30u);
}

TEST_F(PaymentTest, BlindWithdrawalLeavesNoPayeeRecord) {
  WithdrawCoin("alice", 10);
  Coin c = WithdrawCoin("alice", 20);
  EXPECT_EQ(bank_.Deposit(c, "shop"), Status::kOk);
  // The identified debit log stays empty on the e-cash path.
  EXPECT_TRUE(bank_.DebitLog().empty());
}

TEST(CoinSerialization, RoundTrip) {
  Coin c;
  for (int i = 0; i < 16; ++i) c.serial[i] = static_cast<std::uint8_t>(i);
  c.denomination = 50;
  c.signature = {1, 2, 3};
  Coin back = Coin::Deserialize(c.Serialize());
  EXPECT_EQ(back.serial, c.serial);
  EXPECT_EQ(back.denomination, 50u);
  EXPECT_EQ(back.signature, c.signature);
}

TEST(PlanCoins, ExactGreedyCover) {
  EXPECT_TRUE(PlanCoins(0).empty());
  EXPECT_EQ(PlanCoins(1), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(PlanCoins(3), (std::vector<std::uint32_t>{2, 1}));
  EXPECT_EQ(PlanCoins(87), (std::vector<std::uint32_t>{50, 20, 10, 5, 2}));
  EXPECT_EQ(PlanCoins(289),
            (std::vector<std::uint32_t>{100, 100, 50, 20, 10, 5, 2, 2}));
  // Every plan sums to the amount.
  for (std::uint64_t amount : {7u, 13u, 99u, 101u, 250u, 999u}) {
    std::uint64_t sum = 0;
    for (auto d : PlanCoins(amount)) sum += d;
    EXPECT_EQ(sum, amount);
  }
}

}  // namespace
}  // namespace core
}  // namespace p2drm
