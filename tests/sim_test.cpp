// Simulation utilities: Zipf sampling, stats, linkability analysis.

#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "sim/linkability.h"
#include "sim/stats.h"
#include "sim/zipf.h"

namespace p2drm {
namespace sim {
namespace {

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::invalid_argument);
}

TEST(Zipf, StaysInRange) {
  crypto::HmacDrbg rng("zipf-range");
  ZipfGenerator z(10, 1.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(z.Next(&rng), 10u);
  }
}

TEST(Zipf, AlphaZeroIsRoughlyUniform) {
  crypto::HmacDrbg rng("zipf-uniform");
  ZipfGenerator z(4, 0.0);
  std::array<int, 4> counts{};
  for (int i = 0; i < 8000; ++i) counts[z.Next(&rng)]++;
  for (int c : counts) {
    EXPECT_GT(c, 1600);  // expected 2000 ± generous slack
    EXPECT_LT(c, 2400);
  }
}

TEST(Zipf, HighAlphaConcentratesOnHead) {
  crypto::HmacDrbg rng("zipf-skew");
  ZipfGenerator z(100, 1.2);
  int head = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (z.Next(&rng) < 10) ++head;
  }
  // With alpha=1.2 over 100 items, the top-10 carry well over half the mass.
  EXPECT_GT(head, kN / 2);
}

TEST(Zipf, RankProbabilitiesDecrease) {
  crypto::HmacDrbg rng("zipf-mono");
  ZipfGenerator z(5, 1.0);
  std::array<int, 5> counts{};
  for (int i = 0; i < 20000; ++i) counts[z.Next(&rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(LatencyStats, MeanAndPercentiles) {
  LatencyStats s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  EXPECT_NEAR(s.Percentile(50), 50, 1.0);
  EXPECT_NEAR(s.Percentile(99), 99, 1.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NE(s.Summary().find("p95"), std::string::npos);
}

TEST(Linkability, BaselineAccountIsFullyLinkable) {
  std::vector<Observation> obs;
  for (int u = 0; u < 5; ++u) {
    for (int k = 0; k < 4; ++k) {
      obs.push_back({static_cast<std::uint64_t>(u),
                     "account-" + std::to_string(u)});
    }
  }
  auto report = AnalyzeLinkability(obs);
  EXPECT_EQ(report.same_user_pairs, 5u * 6u);  // 5 users × C(4,2)
  EXPECT_EQ(report.linkable_pairs, report.same_user_pairs);
  EXPECT_DOUBLE_EQ(report.linkability, 1.0);
  EXPECT_EQ(report.distinct_credentials, 5u);
  EXPECT_EQ(report.largest_profile, 4u);
}

TEST(Linkability, FreshPseudonymPerPurchaseIsUnlinkable) {
  std::vector<Observation> obs;
  int serial = 0;
  for (int u = 0; u < 5; ++u) {
    for (int k = 0; k < 4; ++k) {
      obs.push_back({static_cast<std::uint64_t>(u),
                     "pseudonym-" + std::to_string(serial++)});
    }
  }
  auto report = AnalyzeLinkability(obs);
  EXPECT_EQ(report.linkable_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.linkability, 0.0);
  EXPECT_EQ(report.largest_profile, 1u);
}

TEST(Linkability, PartialReuseIsBetween) {
  // Each user has 4 purchases on 2 pseudonyms (2 uses each):
  // linkable pairs per user = 2 * C(2,2) = 2 of C(4,2)=6 → 1/3.
  std::vector<Observation> obs;
  for (int u = 0; u < 10; ++u) {
    for (int k = 0; k < 4; ++k) {
      obs.push_back({static_cast<std::uint64_t>(u),
                     "p-" + std::to_string(u) + "-" + std::to_string(k / 2)});
    }
  }
  auto report = AnalyzeLinkability(obs);
  EXPECT_NEAR(report.linkability, 1.0 / 3.0, 1e-9);
}

TEST(Linkability, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(AnalyzeLinkability({}).linkability, 0.0);
  auto r = AnalyzeLinkability({{1, "x"}});
  EXPECT_EQ(r.same_user_pairs, 0u);
  EXPECT_DOUBLE_EQ(r.linkability, 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace p2drm
