// HMAC-DRBG determinism and distribution sanity; RandomSource helpers.

#include "crypto/drbg.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace p2drm {
namespace crypto {
namespace {

using bignum::BigInt;

TEST(HmacDrbg, DeterministicForSeed) {
  HmacDrbg a("seed-1");
  HmacDrbg b("seed-1");
  EXPECT_EQ(a.Bytes(64), b.Bytes(64));
}

TEST(HmacDrbg, DifferentSeedsDiverge) {
  HmacDrbg a("seed-1");
  HmacDrbg b("seed-2");
  EXPECT_NE(a.Bytes(64), b.Bytes(64));
}

TEST(HmacDrbg, SequentialCallsDiffer) {
  HmacDrbg a("seed");
  auto first = a.Bytes(32);
  auto second = a.Bytes(32);
  EXPECT_NE(first, second);
}

TEST(HmacDrbg, ReseedChangesStream) {
  HmacDrbg a("seed");
  HmacDrbg b("seed");
  (void)a.Bytes(32);
  (void)b.Bytes(32);
  b.Reseed({1, 2, 3});
  EXPECT_NE(a.Bytes(32), b.Bytes(32));
}

TEST(HmacDrbg, ByteDistributionRoughlyUniform) {
  HmacDrbg rng("distribution");
  std::array<int, 256> counts{};
  constexpr int kN = 65536;
  for (int i = 0; i < kN / 32; ++i) {
    auto bytes = rng.Bytes(32);
    for (auto b : bytes) counts[b]++;
  }
  // Expected 256 per bucket; allow generous 5-sigma-ish bounds.
  for (int c : counts) {
    EXPECT_GT(c, 128);
    EXPECT_LT(c, 512);
  }
}

// -- forks -------------------------------------------------------------------

TEST(HmacDrbgFork, SameSeedAndTagReproduces) {
  HmacDrbg a("fork-seed");
  HmacDrbg b("fork-seed");
  HmacDrbg child_a = a.Fork("issue");
  HmacDrbg child_b = b.Fork("issue");
  EXPECT_EQ(child_a.Bytes(64), child_b.Bytes(64));
  // The parents advanced identically too.
  EXPECT_EQ(a.Bytes(64), b.Bytes(64));
}

TEST(HmacDrbgFork, DistinctTagsDiverge) {
  HmacDrbg a("fork-seed");
  HmacDrbg b("fork-seed");
  HmacDrbg child_a = a.Fork("issue-0");
  HmacDrbg child_b = b.Fork("issue-1");
  EXPECT_NE(child_a.Bytes(64), child_b.Bytes(64));
}

TEST(HmacDrbgFork, ChildIsIndependentOfLaterParentDraws) {
  // Draws from the parent after the fork must not perturb the child:
  // that independence is what lets a fork move to a worker thread while
  // the dispatch thread keeps consuming the parent.
  HmacDrbg a("fork-seed");
  HmacDrbg b("fork-seed");
  HmacDrbg child_a = a.Fork("worker");
  HmacDrbg child_b = b.Fork("worker");
  (void)a.Bytes(1024);  // only parent a advances
  EXPECT_EQ(child_a.Bytes(64), child_b.Bytes(64));
}

TEST(HmacDrbgFork, ParentStateBindsTheChild) {
  // The same tag forked at different parent positions yields different
  // children — a fork is a draw, not a rewind.
  HmacDrbg a("fork-seed");
  HmacDrbg b("fork-seed");
  (void)b.Bytes(32);
  EXPECT_NE(a.Fork("issue").Bytes(64), b.Fork("issue").Bytes(64));
}

TEST(HmacDrbgFork, ChildAndParentStreamsDiffer) {
  HmacDrbg a("fork-seed");
  HmacDrbg child = a.Fork("issue");
  EXPECT_NE(child.Bytes(64), a.Bytes(64));
}

TEST(ForkRandomFn, ForksAnyRandomSource) {
  SystemRandom sys;
  HmacDrbg child_a = ForkRandom(&sys, {0x01});
  HmacDrbg child_b = ForkRandom(&sys, {0x01});
  // Children are seeded by fresh parent entropy, so even equal tags
  // yield unrelated streams here.
  EXPECT_NE(child_a.Bytes(64), child_b.Bytes(64));
}

TEST(RandomSource, BelowStaysInRange) {
  HmacDrbg rng("below");
  BigInt bound = BigInt::FromDec("1000000");
  for (int i = 0; i < 200; ++i) {
    BigInt v = rng.Below(bound);
    EXPECT_FALSE(v.IsNegative());
    EXPECT_LT(v.Compare(bound), 0);
  }
  EXPECT_THROW(rng.Below(BigInt(0)), std::domain_error);
  EXPECT_THROW(rng.Below(BigInt(-5)), std::domain_error);
}

TEST(RandomSource, BelowOneIsZero) {
  HmacDrbg rng("one");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(rng.Below(BigInt(1)).IsZero());
}

TEST(RandomSource, BelowCoversSmallRange) {
  HmacDrbg rng("cover");
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Below(BigInt(8)).ToDec());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomSource, BitsExactSetsTopBit) {
  HmacDrbg rng("bits");
  for (std::size_t bits : {1u, 2u, 7u, 8u, 9u, 31u, 32u, 33u, 257u}) {
    BigInt v = rng.BitsExact(bits);
    EXPECT_EQ(v.BitLength(), bits) << bits;
  }
  EXPECT_THROW(rng.BitsExact(0), std::domain_error);
}

TEST(RandomSource, BetweenInclusive) {
  HmacDrbg rng("between");
  BigInt lo(10), hi(12);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    BigInt v = rng.Between(lo, hi);
    EXPECT_GE(v.Compare(lo), 0);
    EXPECT_LE(v.Compare(hi), 0);
    seen.insert(v.ToDec());
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_THROW(rng.Between(hi, lo), std::domain_error);
}

TEST(RandomSource, NextUint64Bound) {
  HmacDrbg rng("u64");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
  EXPECT_EQ(rng.NextUint64(1), 0u);
  EXPECT_THROW(rng.NextUint64(0), std::domain_error);
}

TEST(SystemRandom, ProducesVaryingBytes) {
  SystemRandom sr;
  auto a = sr.Bytes(32);
  auto b = sr.Bytes(32);
  EXPECT_NE(a, b);  // astronomically unlikely to collide
}

}  // namespace
}  // namespace crypto
}  // namespace p2drm
