// Star licenses: user-attributed restrictions and their enforcement.

#include "core/delegation.h"

#include <gtest/gtest.h>

#include "core/agent.h"
#include "core/system.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

rel::KeyFingerprint NamedDelegate(const std::string& who) {
  return crypto::Sha256::Hash("delegate:" + who);
}

class DelegationTest : public ::testing::Test {
 protected:
  DelegationTest() : rng_("delegation-test"), system_(Config(), &rng_) {
    film_ = system_.cp().Publish("Film", std::vector<std::uint8_t>(256, 0x66),
                                 10, rel::Rights::MeteredPlay(10));
    AgentConfig acfg;
    acfg.pseudonym_bits = 512;
    parent_ = std::make_unique<UserAgent>("parent", acfg, &system_, &rng_);
    EXPECT_EQ(parent_->BuyContent(film_, &license_), Status::kOk);
    delegator_key_ = parent_->card()
                         .FindPseudonym(license_.bound_key)
                         ->cert.pseudonym_key;
  }

  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.ca_key_bits = 512;
    cfg.ttp_key_bits = 512;
    cfg.bank_key_bits = 512;
    cfg.cp.signing_key_bits = 512;
    return cfg;
  }

  DelegationLicense MakeDelegation(const rel::Rights& restrictions) {
    DelegationLicense d;
    EXPECT_TRUE(CreateDelegation(&parent_->card(), license_,
                                 NamedDelegate("kid"), restrictions,
                                 system_.clock().NowEpochSeconds(), &rng_,
                                 &d));
    return d;
  }

  crypto::HmacDrbg rng_;
  P2drmSystem system_;
  rel::ContentId film_ = 0;
  std::unique_ptr<UserAgent> parent_;
  rel::License license_;
  crypto::RsaPublicKey delegator_key_;
};

TEST_F(DelegationTest, RoundTripSerialization) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  DelegationLicense back = DelegationLicense::Deserialize(d.Serialize());
  EXPECT_EQ(back.id, d.id);
  EXPECT_EQ(back.parent_id, license_.id);
  EXPECT_TRUE(back.restrictions == d.restrictions);
  EXPECT_EQ(back.delegator_signature, d.delegator_signature);
}

TEST_F(DelegationTest, ValidDelegationValidates) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  EXPECT_EQ(ValidateDelegation(d, license_, delegator_key_),
            DelegationCheck::kOk);
}

TEST_F(DelegationTest, TamperedRestrictionFails) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  d.restrictions.play_count = 9999;  // kid edits the delegation
  EXPECT_EQ(ValidateDelegation(d, license_, delegator_key_),
            DelegationCheck::kBadSignature);
}

TEST_F(DelegationTest, WrongParentFails) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  rel::License other = license_;
  other.id.bytes[0] ^= 1;
  EXPECT_EQ(ValidateDelegation(d, other, delegator_key_),
            DelegationCheck::kWrongParent);
}

TEST_F(DelegationTest, WrongDelegatorKeyFails) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  crypto::HmacDrbg other_rng("other");
  auto other_key = crypto::GenerateRsaKey(512, &other_rng).PublicKey();
  EXPECT_EQ(ValidateDelegation(d, license_, other_key),
            DelegationCheck::kWrongParent);  // fingerprint mismatch
}

TEST_F(DelegationTest, EffectiveRightsAreIntersection) {
  rel::Rights restriction = rel::Rights::MeteredPlay(2);
  restriction.allow_copy = true;      // delegate tries to sneak copy in
  restriction.allow_transfer = true;  // and transfer
  DelegationLicense d = MakeDelegation(restriction);
  rel::Rights effective = EffectiveRights(d, license_);
  EXPECT_EQ(effective.play_count, 2u);      // min(10, 2)
  EXPECT_FALSE(effective.allow_copy);       // never inherited
  EXPECT_FALSE(effective.allow_transfer);   // never inherited
  EXPECT_TRUE(effective.allow_play);
}

TEST_F(DelegationTest, DeviceEnforcesDelegatedMeter) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  ASSERT_EQ(parent_->device().InstallDelegation(d, delegator_key_),
            DelegationCheck::kOk);
  const auto& enc = system_.cp().GetContent(film_);

  EXPECT_EQ(parent_->device()
                .UseDelegated(d.id, rel::Action::kPlay, &parent_->card(), enc)
                .decision,
            rel::Decision::kAllow);
  EXPECT_EQ(parent_->device()
                .UseDelegated(d.id, rel::Action::kPlay, &parent_->card(), enc)
                .decision,
            rel::Decision::kAllow);
  // Third delegated play: the 2-play restriction bites (parent has 10).
  EXPECT_EQ(parent_->device()
                .UseDelegated(d.id, rel::Action::kPlay, &parent_->card(), enc)
                .decision,
            rel::Decision::kDeniedExhausted);
  EXPECT_EQ(parent_->device().DelegatedPlaysUsed(d.id), 2u);
  // Delegated plays also consumed the parent meter.
  EXPECT_EQ(parent_->device().PlaysUsed(license_.id), 2u);
}

TEST_F(DelegationTest, DelegatedPlaysDecryptCorrectly) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(2));
  ASSERT_EQ(parent_->device().InstallDelegation(d, delegator_key_),
            DelegationCheck::kOk);
  UseResult r = parent_->device().UseDelegated(
      d.id, rel::Action::kPlay, &parent_->card(),
      system_.cp().GetContent(film_));
  ASSERT_EQ(r.decision, rel::Decision::kAllow) << r.error;
  EXPECT_EQ(r.plaintext, std::vector<std::uint8_t>(256, 0x66));
}

TEST_F(DelegationTest, DelegationExpiryEnforced) {
  rel::Rights timed = rel::Rights::UnlimitedPlay();
  timed.expiry_epoch_s = system_.clock().NowEpochSeconds() + 100;
  DelegationLicense d = MakeDelegation(timed);
  ASSERT_EQ(parent_->device().InstallDelegation(d, delegator_key_),
            DelegationCheck::kOk);
  const auto& enc = system_.cp().GetContent(film_);
  EXPECT_EQ(parent_->device()
                .UseDelegated(d.id, rel::Action::kPlay, &parent_->card(), enc)
                .decision,
            rel::Decision::kAllow);
  system_.clock().Advance(101);
  EXPECT_EQ(parent_->device()
                .UseDelegated(d.id, rel::Action::kPlay, &parent_->card(), enc)
                .decision,
            rel::Decision::kDeniedExpired);
}

TEST_F(DelegationTest, InstallRequiresParentOnDevice) {
  DelegationLicense d = MakeDelegation(rel::Rights::MeteredPlay(1));
  CompliantDevice other("other", 2, &system_.clock(), &rng_);
  EXPECT_EQ(other.InstallDelegation(d, delegator_key_),
            DelegationCheck::kWrongParent);
}

TEST_F(DelegationTest, DelegationDiesWithTransferredParent) {
  // The film license is not transferable (MeteredPlay), so use a retail one.
  rel::ContentId album = system_.cp().Publish(
      "Album", std::vector<std::uint8_t>(64, 1), 5, rel::Rights::FullRetail());
  rel::License parent_lic;
  ASSERT_EQ(parent_->BuyContent(album, &parent_lic), Status::kOk);
  auto key = parent_->card()
                 .FindPseudonym(parent_lic.bound_key)
                 ->cert.pseudonym_key;
  DelegationLicense d;
  ASSERT_TRUE(CreateDelegation(&parent_->card(), parent_lic,
                               NamedDelegate("kid"), rel::Rights::MeteredPlay(5),
                               system_.clock().NowEpochSeconds(), &rng_, &d));
  ASSERT_EQ(parent_->device().InstallDelegation(d, key), DelegationCheck::kOk);

  // Parent gives the license away; the delegation must stop working.
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(parent_->GiveLicense(parent_lic.id, &bearer), Status::kOk);
  UseResult r = parent_->device().UseDelegated(
      d.id, rel::Action::kPlay, &parent_->card(),
      system_.cp().GetContent(album));
  EXPECT_NE(r.decision, rel::Decision::kAllow);
  EXPECT_NE(r.error.find("parent license"), std::string::npos);
}

TEST_F(DelegationTest, CardWithoutPseudonymCannotCreate) {
  SmartCard stranger("stranger", 512, &rng_);
  DelegationLicense d;
  EXPECT_FALSE(CreateDelegation(&stranger, license_, NamedDelegate("kid"),
                                rel::Rights::MeteredPlay(1),
                                0, &rng_, &d));
}

TEST(RightsIntersect, MostRestrictiveWins) {
  rel::Rights a = rel::Rights::FullRetail();
  a.play_count = 10;
  a.expiry_epoch_s = 1000;
  a.min_security_level = 1;
  rel::Rights b = rel::Rights::UnlimitedPlay();
  b.play_count = 3;
  b.expiry_epoch_s = 2000;
  b.min_security_level = 4;
  rel::Rights r = rel::Rights::Intersect(a, b);
  EXPECT_EQ(r.play_count, 3u);
  EXPECT_EQ(r.expiry_epoch_s, 1000u);
  EXPECT_EQ(r.min_security_level, 4);
  EXPECT_FALSE(r.allow_copy);      // b lacks copy
  EXPECT_FALSE(r.allow_transfer);  // b lacks transfer
  EXPECT_TRUE(r.allow_play);
}

TEST(RightsIntersect, NoExpiryYieldsOtherExpiry) {
  rel::Rights a = rel::Rights::UnlimitedPlay();  // no expiry
  rel::Rights b = rel::Rights::Rental(500);
  EXPECT_EQ(rel::Rights::Intersect(a, b).expiry_epoch_s, 500u);
  EXPECT_EQ(rel::Rights::Intersect(b, a).expiry_epoch_s, 500u);
  EXPECT_EQ(rel::Rights::Intersect(a, a).expiry_epoch_s, rel::kNoExpiry);
}

TEST(RightsIntersect, SubsetRelation) {
  rel::Rights full = rel::Rights::FullRetail();
  rel::Rights metered = rel::Rights::MeteredPlay(3);
  EXPECT_TRUE(metered.IsSubsetOf(full));
  EXPECT_FALSE(full.IsSubsetOf(metered));
  EXPECT_TRUE(full.IsSubsetOf(full));
}

}  // namespace
}  // namespace core
}  // namespace p2drm
