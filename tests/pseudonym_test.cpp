// Pseudonym issuance: card ↔ CA blind protocol, escrow, unlinkability.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/certification_authority.h"
#include "core/smartcard.h"
#include "core/ttp.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class PseudonymTest : public ::testing::Test {
 protected:
  PseudonymTest()
      : rng_("pseudonym-test"),
        ca_(512, &rng_),
        ttp_(512, &rng_),
        card_("Alice", 512, &rng_) {
    card_.StoreIdentityCertificate(ca_.Enrol("Alice", card_.MasterKey()));
  }

  Pseudonym* Issue() {
    PseudonymRequest req =
        card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
    bignum::BigInt blind_sig =
        ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded);
    return card_.FinishPseudonym(std::move(req), blind_sig, ca_.PublicKey());
  }

  crypto::HmacDrbg rng_;
  CertificationAuthority ca_;
  TrustedThirdParty ttp_;
  SmartCard card_;
};

TEST_F(PseudonymTest, EnrolmentProducesVerifiableIdentity) {
  EXPECT_TRUE(card_.IsEnrolled());
  EXPECT_EQ(card_.CardId(), 1u);
  EXPECT_EQ(ca_.EnrolledCards(), 1u);
  EXPECT_EQ(ca_.HolderName(1), "Alice");
}

TEST_F(PseudonymTest, IssuanceYieldsValidCertificate) {
  Pseudonym* p = Issue();
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(VerifyPseudonymCert(ca_.PublicKey(), p->cert));
  EXPECT_EQ(ca_.PseudonymsIssued(card_.CardId()), 1u);
}

TEST_F(PseudonymTest, UnenrolledCardCannotBegin) {
  SmartCard fresh("Eve", 512, &rng_);
  EXPECT_THROW(fresh.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey()),
               std::logic_error);
}

TEST_F(PseudonymTest, UnknownCardRejectedByCa) {
  PseudonymRequest req =
      card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
  EXPECT_THROW(ca_.SignPseudonymBlinded(999, req.blinding.blinded),
               std::invalid_argument);
}

TEST_F(PseudonymTest, WrongBlindSignatureRejectedByCard) {
  PseudonymRequest req =
      card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
  // Response corrupted in transit.
  bignum::BigInt bogus =
      ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded) +
      bignum::BigInt(1);
  EXPECT_EQ(card_.FinishPseudonym(std::move(req), bogus, ca_.PublicKey()),
            nullptr);
}

TEST_F(PseudonymTest, PseudonymsAreDistinctAndUnlinkableAtCa) {
  Pseudonym* p1 = Issue();
  Pseudonym* p2 = Issue();
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  // Different keys, different certs — nothing shared for the CP to link.
  EXPECT_FALSE(p1->cert.pseudonym_key == p2->cert.pseudonym_key);
  EXPECT_NE(p1->cert.KeyId(), p2->cert.KeyId());
  EXPECT_NE(p1->cert.escrow, p2->cert.escrow);
  // And neither certificate contains the master key bytes (no trivial
  // identity leak in the serialization).
  auto master = card_.MasterKey().Serialize();
  auto c1 = p1->cert.Serialize();
  EXPECT_EQ(std::search(c1.begin(), c1.end(), master.begin(), master.end()),
            c1.end());
}

TEST_F(PseudonymTest, EscrowOpensToCardId) {
  Pseudonym* p = Issue();
  ASSERT_NE(p, nullptr);
  auto ct = crypto::HybridCiphertext::Deserialize(p->cert.escrow);
  // Simulate the TTP's private decryption via OpenEscrow path pieces:
  // (direct key access is test-only).
  // Here we verify through the public fraud path in ttp_test; this test
  // only checks the escrow decodes as a hybrid ciphertext.
  EXPECT_FALSE(ct.encapsulated.empty());
  EXPECT_FALSE(ct.body.empty());
}

TEST_F(PseudonymTest, UsablePseudonymPolicy) {
  EXPECT_EQ(card_.UsablePseudonym(1), nullptr);
  Pseudonym* p = Issue();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(card_.UsablePseudonym(1), p);
  p->purchases_used = 1;
  EXPECT_EQ(card_.UsablePseudonym(1), nullptr);  // exhausted under policy 1
  EXPECT_EQ(card_.UsablePseudonym(5), p);        // still usable under policy 5
}

TEST_F(PseudonymTest, FindPseudonymByFingerprint) {
  Pseudonym* p = Issue();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(card_.FindPseudonym(p->cert.KeyId()), p);
  rel::KeyFingerprint other{};
  EXPECT_EQ(card_.FindPseudonym(other), nullptr);
}

TEST_F(PseudonymTest, SignWithPseudonymAndUnwrap) {
  Pseudonym* p = Issue();
  ASSERT_NE(p, nullptr);
  std::vector<std::uint8_t> msg = {1, 2, 3};
  auto sig = card_.SignWithPseudonym(p->cert.KeyId(), msg);
  ASSERT_FALSE(sig.empty());
  EXPECT_TRUE(crypto::RsaVerifyFdh(p->cert.pseudonym_key, msg, sig));

  // Wrap a content key to the pseudonym and unwrap through the card.
  std::vector<std::uint8_t> ck(32, 0x42);
  auto wrapped =
      crypto::RsaHybridEncrypt(p->cert.pseudonym_key, ck, &rng_).Serialize();
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(card_.UnwrapContentKey(p->cert.KeyId(), wrapped, &out));
  EXPECT_EQ(out, ck);

  // Unknown pseudonym/garbage fail safely.
  EXPECT_FALSE(card_.UnwrapContentKey(rel::KeyFingerprint{}, wrapped, &out));
  EXPECT_FALSE(card_.UnwrapContentKey(p->cert.KeyId(), {1, 2, 3}, &out));
  EXPECT_TRUE(card_.SignWithPseudonym(rel::KeyFingerprint{}, msg).empty());
}

}  // namespace
}  // namespace core
}  // namespace p2drm
