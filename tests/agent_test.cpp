// UserAgent client logic: wallet management, pseudonym policy, edge cases.

#include "core/agent.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() : rng_("agent-test"), system_(Config(), &rng_) {
    cheap_ = system_.cp().Publish("Cheap", std::vector<std::uint8_t>(16, 1),
                                  3, rel::Rights::FullRetail());
    pricey_ = system_.cp().Publish("Pricey", std::vector<std::uint8_t>(16, 2),
                                   87, rel::Rights::FullRetail());
  }

  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.ca_key_bits = 512;
    cfg.ttp_key_bits = 512;
    cfg.bank_key_bits = 512;
    cfg.cp.signing_key_bits = 512;
    return cfg;
  }

  static AgentConfig DefaultAgent() {
    AgentConfig cfg;
    cfg.pseudonym_bits = 512;
    return cfg;
  }

  crypto::HmacDrbg rng_;
  P2drmSystem system_;
  rel::ContentId cheap_ = 0;
  rel::ContentId pricey_ = 0;
};

TEST_F(AgentTest, ConstructionEnrolsAndCertifies) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  EXPECT_TRUE(a.card().IsEnrolled());
  EXPECT_TRUE(
      VerifyDeviceCert(system_.ca().PublicKey(), a.device().Certificate()));
  EXPECT_EQ(system_.bank().Balance("alice"), 1000u);
}

TEST_F(AgentTest, WalletExactCoverFromMixedDenominations) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  ASSERT_EQ(a.WithdrawCoins(87), Status::kOk);  // 50+20+10+5+2
  EXPECT_EQ(a.WalletCoins(), 5u);
  ASSERT_EQ(a.BuyContent(pricey_, nullptr), Status::kOk);
  EXPECT_EQ(a.WalletValue(), 0u);  // exact spend, no change
}

TEST_F(AgentTest, FragmentedWalletTriggersTopUp) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  // Wallet holds a 50 only; price 3 needs small coins → withdraw more.
  ASSERT_EQ(a.WithdrawCoins(50), Status::kOk);
  EXPECT_EQ(a.WalletCoins(), 1u);
  ASSERT_EQ(a.BuyContent(cheap_, nullptr), Status::kOk);
  // The 50 stays; a 2+1 was withdrawn for the exact payment.
  EXPECT_EQ(a.WalletValue(), 50u);
}

TEST_F(AgentTest, PseudonymPolicyReuseCount) {
  AgentConfig cfg = DefaultAgent();
  cfg.pseudonym_max_uses = 3;
  UserAgent a("alice", cfg, &system_, &rng_);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(a.BuyContent(cheap_, nullptr), Status::kOk);
  }
  EXPECT_EQ(a.card().pseudonyms().size(), 1u);
  ASSERT_EQ(a.BuyContent(cheap_, nullptr), Status::kOk);  // 4th buy
  EXPECT_EQ(a.card().pseudonyms().size(), 2u);
}

TEST_F(AgentTest, EnsurePseudonymIdempotentUnderPolicy) {
  AgentConfig cfg = DefaultAgent();
  cfg.pseudonym_max_uses = 100;
  UserAgent a("alice", cfg, &system_, &rng_);
  Pseudonym* p1 = a.EnsurePseudonym();
  Pseudonym* p2 = a.EnsurePseudonym();
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(a.card().pseudonyms().size(), 1u);
}

TEST_F(AgentTest, GiveUnknownLicenseFails) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  rel::LicenseId bogus;
  bogus.bytes.fill(0x77);
  std::vector<std::uint8_t> bearer;
  EXPECT_EQ(a.GiveLicense(bogus, &bearer), Status::kBadRequest);
}

TEST_F(AgentTest, ReceiveGarbageFails) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  EXPECT_EQ(a.ReceiveLicense({1, 2, 3}, nullptr), Status::kBadRequest);
}

TEST_F(AgentTest, ReceiveTamperedBearerFails) {
  UserAgent alice("alice", DefaultAgent(), &system_, &rng_);
  UserAgent bob("bob", DefaultAgent(), &system_, &rng_);
  rel::License lic;
  ASSERT_EQ(alice.BuyContent(cheap_, &lic), Status::kOk);
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(alice.GiveLicense(lic.id, &bearer), Status::kOk);
  // Flip a byte inside the canonical region.
  bearer[10] ^= 1;
  EXPECT_EQ(bob.ReceiveLicense(bearer, nullptr), Status::kBadSignature);
}

TEST_F(AgentTest, PlayUnknownContentFailsGracefully) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  UseResult r = a.Play(424242);
  EXPECT_NE(r.decision, rel::Decision::kAllow);
  EXPECT_FALSE(r.error.empty());
}

TEST_F(AgentTest, MultiplePurchasesOfSameContentCoexist) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  rel::License l1, l2;
  ASSERT_EQ(a.BuyContent(cheap_, &l1), Status::kOk);
  ASSERT_EQ(a.BuyContent(cheap_, &l2), Status::kOk);
  EXPECT_NE(l1.id, l2.id);
  EXPECT_EQ(a.device().LicensesFor(cheap_).size(), 2u);
  // Giving one away leaves the other playable.
  std::vector<std::uint8_t> bearer;
  ASSERT_EQ(a.GiveLicense(l1.id, &bearer), Status::kOk);
  EXPECT_EQ(a.Play(cheap_).decision, rel::Decision::kAllow);
}

TEST_F(AgentTest, WalletValueTracksWithdrawals) {
  UserAgent a("alice", DefaultAgent(), &system_, &rng_);
  EXPECT_EQ(a.WalletValue(), 0u);
  ASSERT_EQ(a.WithdrawCoins(0), Status::kOk);  // no-op
  EXPECT_EQ(a.WalletValue(), 0u);
  ASSERT_EQ(a.WithdrawCoins(123), Status::kOk);
  EXPECT_EQ(a.WalletValue(), 123u);
  EXPECT_EQ(system_.bank().Balance("alice"), 877u);
}

TEST_F(AgentTest, InsufficientBankBalanceSurfacesCleanly) {
  AgentConfig poor = DefaultAgent();
  poor.initial_bank_balance = 2;
  UserAgent a("pauper", poor, &system_, &rng_);
  EXPECT_EQ(a.BuyContent(cheap_, nullptr), Status::kInsufficientFunds);
  // No value was lost: whatever was withdrawn mid-attempt sits in the
  // wallet as bearer coins; account + wallet still hold the original 2.
  EXPECT_EQ(system_.bank().Balance("pauper") + a.WalletValue(), 2u);
  // And the content was not delivered.
  EXPECT_NE(a.Play(cheap_).decision, rel::Decision::kAllow);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
