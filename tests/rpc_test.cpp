// RPC layer: envelope round trips, version gating, typed dispatch,
// malformed payloads, status propagation and the batch envelope.

#include "net/rpc.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace net {
namespace {

using core::Status;

// -- test protocol: an echo service ------------------------------------------

struct EchoResponse {
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> Encode() const {
    ByteWriter w;
    w.Blob(data);
    return w.Take();
  }
  static EchoResponse Decode(const std::vector<std::uint8_t>& b) {
    ByteReader r(b);
    EchoResponse m;
    m.data = r.Blob();
    return m;
  }
};

struct EchoRequest {
  static constexpr std::uint8_t kTag = 0x42;
  using Response = EchoResponse;
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> Encode() const {
    ByteWriter w;
    w.Blob(data);
    return w.Take();
  }
  static EchoRequest Decode(ByteReader* r) {
    EchoRequest m;
    m.data = r->Blob();
    return m;
  }
};

// A request whose handler always fails with a domain status.
struct FailRequest {
  static constexpr std::uint8_t kTag = 0x43;
  using Response = EchoResponse;
  std::vector<std::uint8_t> Encode() const { return {}; }
  static FailRequest Decode(ByteReader*) { return {}; }
};

// A request whose handler throws (must surface as kInternalError).
struct ThrowRequest {
  static constexpr std::uint8_t kTag = 0x44;
  using Response = EchoResponse;
  std::vector<std::uint8_t> Encode() const { return {}; }
  static ThrowRequest Decode(ByteReader*) { return {}; }
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : rpc_(&transport_, "tester") {
    registry_.Register<EchoRequest>(
        [](const EchoRequest& req, EchoResponse* resp) {
          resp->data = req.data;
          return Status::kOk;
        });
    registry_.Register<FailRequest>(
        [](const FailRequest&, EchoResponse*) { return Status::kRevoked; });
    registry_.Register<ThrowRequest>(
        [](const ThrowRequest&, EchoResponse*) -> Status {
          throw std::runtime_error("handler exploded");
        });
    registry_.BindTo(&transport_, "svc");
  }

  Transport transport_;
  ServiceRegistry registry_;
  Rpc rpc_;
};

// -- envelopes ---------------------------------------------------------------

TEST(RpcEnvelope, RequestRoundTrip) {
  RequestEnvelope env;
  env.tag = 0x21;
  env.correlation_id = 0xdeadbeef01020304ull;
  env.payload = {1, 2, 3, 4};
  RequestEnvelope back = RequestEnvelope::Decode(env.Encode());
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.tag, 0x21);
  EXPECT_EQ(back.correlation_id, 0xdeadbeef01020304ull);
  EXPECT_EQ(back.payload, env.payload);
}

TEST(RpcEnvelope, ResponseRoundTrip) {
  ResponseEnvelope env;
  env.tag = 0x21;
  env.correlation_id = 77;
  env.status = Status::kAlreadySpent;
  env.payload = {9};
  ResponseEnvelope back = ResponseEnvelope::Decode(env.Encode());
  EXPECT_EQ(back.status, Status::kAlreadySpent);
  EXPECT_EQ(back.correlation_id, 77u);
  EXPECT_EQ(back.payload, env.payload);
}

TEST(RpcEnvelope, TruncationThrowsCodecError) {
  RequestEnvelope env;
  env.payload = {1, 2, 3};
  auto bytes = env.Encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW((void)RequestEnvelope::Decode(prefix), CodecError)
        << "prefix length " << cut;
  }
  // Trailing junk is rejected too.
  bytes.push_back(0);
  EXPECT_THROW((void)RequestEnvelope::Decode(bytes), CodecError);
}

// -- typed call path ---------------------------------------------------------

TEST_F(RpcTest, TypedEchoRoundTrip) {
  EchoRequest req;
  req.data = {10, 20, 30};
  auto resp = rpc_.Call("svc", req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value.data, req.data);
}

TEST_F(RpcTest, HandlerStatusPropagates) {
  auto resp = rpc_.Call("svc", FailRequest{});
  EXPECT_EQ(resp.status, Status::kRevoked);
}

TEST_F(RpcTest, HandlerExceptionBecomesInternalError) {
  auto resp = rpc_.Call("svc", ThrowRequest{});
  EXPECT_EQ(resp.status, Status::kInternalError);
}

TEST_F(RpcTest, UnknownEndpointIsUnavailableNotAThrow) {
  auto resp = rpc_.Call("nowhere", EchoRequest{});
  EXPECT_EQ(resp.status, Status::kUnavailable);
}

struct UnregisteredRequest {
  static constexpr std::uint8_t kTag = 0x7e;
  using Response = EchoResponse;
  std::vector<std::uint8_t> Encode() const { return {}; }
};

TEST_F(RpcTest, UnknownTagIsRejected) {
  auto resp = rpc_.Call("svc", UnregisteredRequest{});
  EXPECT_EQ(resp.status, Status::kUnknownTag);
}

TEST_F(RpcTest, VersionMismatchIsRejected) {
  RequestEnvelope env;
  env.version = kProtocolVersion + 1;
  env.tag = EchoRequest::kTag;
  env.payload = EchoRequest{}.Encode();
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  EXPECT_EQ(resp.status, Status::kVersionMismatch);
}

TEST_F(RpcTest, MalformedPayloadIsBadRequest) {
  // Valid envelope, garbage body: the typed decode must fail cleanly.
  RequestEnvelope env;
  env.tag = EchoRequest::kTag;
  env.payload = {0xff, 0xff, 0xff, 0xff, 1};  // blob length way past end
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  EXPECT_EQ(resp.status, Status::kBadRequest);
}

TEST_F(RpcTest, TrailingPayloadBytesAreBadRequest) {
  RequestEnvelope env;
  env.tag = EchoRequest::kTag;
  env.payload = EchoRequest{}.Encode();
  env.payload.push_back(0x55);  // smuggled trailing byte
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  EXPECT_EQ(resp.status, Status::kBadRequest);
}

TEST_F(RpcTest, CorrelationIdIsEchoed) {
  RequestEnvelope env;
  env.tag = EchoRequest::kTag;
  env.correlation_id = 424242;
  env.payload = EchoRequest{}.Encode();
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  EXPECT_EQ(resp.correlation_id, 424242u);
  EXPECT_EQ(resp.tag, EchoRequest::kTag);
}

// -- batch envelope ----------------------------------------------------------

TEST_F(RpcTest, BatchOf64EchoesInOneRoundTrip) {
  std::vector<EchoRequest> reqs(64);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].data = {static_cast<std::uint8_t>(i),
                    static_cast<std::uint8_t>(i * 3)};
  }
  auto results = rpc_.CallBatch("svc", reqs);
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "item " << i;
    EXPECT_EQ(results[i].value.data, reqs[i].data) << "item " << i;
  }
  // The whole batch rode ONE metered round trip: 1 request + 1 response.
  ChannelStats total = transport_.GrandTotal();
  EXPECT_EQ(total.messages, 2u);
}

TEST_F(RpcTest, BatchItemFailuresAreIndependent) {
  // Mix known-bad items in by hand: raw batch with echo, unknown tag, echo.
  ByteWriter w;
  w.U32(3);
  w.U8(EchoRequest::kTag);
  EchoRequest first;
  first.data = {1};
  w.Blob(first.Encode());
  w.U8(0x7e);  // unregistered tag
  w.Blob({});
  w.U8(EchoRequest::kTag);
  EchoRequest third;
  third.data = {3};
  w.Blob(third.Encode());

  RequestEnvelope env;
  env.tag = kBatchTag;
  env.payload = w.Take();
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  ASSERT_EQ(resp.status, Status::kOk);

  ByteReader r(resp.payload);
  ASSERT_EQ(r.U32(), 3u);
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kOk);
  EXPECT_EQ(EchoResponse::Decode(r.Blob()).data, first.data);
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kUnknownTag);
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kOk);
  EXPECT_EQ(EchoResponse::Decode(r.Blob()).data, third.data);
}

TEST_F(RpcTest, NestedBatchIsRejectedPerItem) {
  ByteWriter w;
  w.U32(1);
  w.U8(kBatchTag);  // batch inside a batch
  w.Blob({});
  RequestEnvelope env;
  env.tag = kBatchTag;
  env.payload = w.Take();
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  ASSERT_EQ(resp.status, Status::kOk);
  ByteReader r(resp.payload);
  ASSERT_EQ(r.U32(), 1u);
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kBadRequest);
}

TEST_F(RpcTest, OversizedBatchCountIsBadRequest) {
  ByteWriter w;
  w.U32(static_cast<std::uint32_t>(kMaxBatchItems + 1));
  RequestEnvelope env;
  env.tag = kBatchTag;
  env.payload = w.Take();
  auto raw = transport_.Call("tester", "svc", env.Encode());
  ResponseEnvelope resp = ResponseEnvelope::Decode(raw);
  EXPECT_EQ(resp.status, Status::kBadRequest);
}

TEST_F(RpcTest, EmptyBatchIsFreeOfWireTraffic) {
  auto results = rpc_.CallBatch("svc", std::vector<EchoRequest>{});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(transport_.GrandTotal().messages, 0u);
}

TEST_F(RpcTest, OversizedClientBatchIsChunkedNotRejected) {
  // The typed stub splits at kMaxBatchItems, so callers can hand it any N.
  std::vector<EchoRequest> reqs(kMaxBatchItems + 5);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].data = {static_cast<std::uint8_t>(i & 0xff)};
  }
  auto results = rpc_.CallBatch("svc", reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "item " << i;
    EXPECT_EQ(results[i].value.data, reqs[i].data);
  }
  // Two chunks → two round trips → four metered messages.
  EXPECT_EQ(transport_.GrandTotal().messages, 4u);
}

TEST_F(RpcTest, BatchToUnknownEndpointFailsEveryItem) {
  std::vector<EchoRequest> reqs(3);
  auto results = rpc_.CallBatch("nowhere", reqs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, Status::kUnavailable);
  }
}

// -- batch handler fast path --------------------------------------------------

// Tag served by a whole-batch handler (the server-side amortization hook).
struct BulkRequest {
  static constexpr std::uint8_t kTag = 0x45;
  using Response = EchoResponse;
  std::vector<std::uint8_t> data;
  std::vector<std::uint8_t> Encode() const {
    ByteWriter w;
    w.Blob(data);
    return w.Take();
  }
  static BulkRequest Decode(ByteReader* r) {
    BulkRequest m;
    m.data = r->Blob();
    return m;
  }
};

TEST_F(RpcTest, BatchHandlerReceivesWholeGroupInOneCall) {
  std::vector<std::size_t> call_sizes;
  registry_.RegisterBatch<BulkRequest>(
      [&call_sizes](const std::vector<BulkRequest>& reqs,
                    std::vector<EchoResponse>* resps) {
        call_sizes.push_back(reqs.size());
        std::vector<Status> st(reqs.size(), Status::kOk);
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          (*resps)[i].data = reqs[i].data;
        }
        return st;
      });
  std::vector<BulkRequest> reqs(32);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].data = {static_cast<std::uint8_t>(i)};
  }
  auto resps = rpc_.CallBatch("svc", reqs);
  ASSERT_EQ(resps.size(), 32u);
  for (std::size_t i = 0; i < resps.size(); ++i) {
    ASSERT_TRUE(resps[i].ok());
    EXPECT_EQ(resps[i].value.data, reqs[i].data);
  }
  // ONE handler invocation for all 32 items — the amortization hook.
  ASSERT_EQ(call_sizes.size(), 1u);
  EXPECT_EQ(call_sizes[0], 32u);
}

TEST_F(RpcTest, OverloadedStatusRoundTripsPerItem) {
  // A backpressuring server sheds only some items; each status must
  // survive the envelope round trip independently.
  registry_.RegisterBatch<BulkRequest>(
      [](const std::vector<BulkRequest>& reqs,
         std::vector<EchoResponse>* resps) {
        std::vector<Status> st(reqs.size());
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          if (i % 2 == 0) {
            st[i] = Status::kOk;
            (*resps)[i].data = reqs[i].data;
          } else {
            st[i] = Status::kOverloaded;
          }
        }
        return st;
      });
  std::vector<BulkRequest> reqs(8);
  auto resps = rpc_.CallBatch("svc", reqs);
  ASSERT_EQ(resps.size(), 8u);
  for (std::size_t i = 0; i < resps.size(); ++i) {
    EXPECT_EQ(resps[i].status,
              i % 2 == 0 ? Status::kOk : Status::kOverloaded);
    // Shed items carry the registry's typed retry hint; served items
    // carry none.
    EXPECT_EQ(resps[i].retry_after_ms,
              i % 2 == 0 ? 0u : registry_.overload_retry_hint_ms());
  }
}

TEST_F(RpcTest, OverloadedSingleCallCarriesRetryHint) {
  registry_.set_overload_retry_hint_ms(125);
  registry_.Register<FailRequest>(
      [](const FailRequest&, EchoResponse*) { return Status::kOverloaded; });
  auto resp = rpc_.Call("svc", FailRequest{});
  EXPECT_EQ(resp.status, Status::kOverloaded);
  EXPECT_TRUE(resp.overloaded());
  EXPECT_EQ(resp.retry_after_ms, 125u);

  // Every other failure status still carries no hint.
  registry_.Register<FailRequest>(
      [](const FailRequest&, EchoResponse*) { return Status::kRevoked; });
  resp = rpc_.Call("svc", FailRequest{});
  EXPECT_EQ(resp.status, Status::kRevoked);
  EXPECT_EQ(resp.retry_after_ms, 0u);
}

TEST_F(RpcTest, BatchHandlerCoexistsWithPerItemDispatch) {
  registry_.RegisterBatch<BulkRequest>(
      [](const std::vector<BulkRequest>& reqs,
         std::vector<EchoResponse>* resps) {
        std::vector<Status> st(reqs.size(), Status::kOk);
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          (*resps)[i].data = {0x77};
        }
        return st;
      });
  // A mixed batch: Echo items keep per-item dispatch, Bulk items take
  // the grouped path, and results come back in wire order.
  ByteWriter w;
  w.U32(3);
  w.U8(EchoRequest::kTag);
  EchoRequest echo;
  echo.data = {0x11};
  w.Blob(echo.Encode());
  w.U8(BulkRequest::kTag);
  BulkRequest bulk;
  w.Blob(bulk.Encode());
  w.U8(EchoRequest::kTag);
  w.Blob(echo.Encode());

  RequestEnvelope env;
  env.tag = kBatchTag;
  env.payload = w.Take();
  ResponseEnvelope resp =
      ResponseEnvelope::Decode(registry_.Dispatch(env.Encode()));
  ASSERT_EQ(resp.status, Status::kOk);
  ByteReader r(resp.payload);
  ASSERT_EQ(r.U32(), 3u);
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kOk);
  EXPECT_EQ(EchoResponse::Decode(r.Blob()).data, echo.data);
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kOk);
  EXPECT_EQ(EchoResponse::Decode(r.Blob()).data,
            std::vector<std::uint8_t>{0x77});
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kOk);
  EXPECT_EQ(EchoResponse::Decode(r.Blob()).data, echo.data);
}

TEST_F(RpcTest, BatchHandlerUndecodableItemIsBadRequestOnly) {
  std::vector<std::size_t> call_sizes;
  registry_.RegisterBatch<BulkRequest>(
      [&call_sizes](const std::vector<BulkRequest>& reqs,
                    std::vector<EchoResponse>* resps) {
        call_sizes.push_back(reqs.size());
        std::vector<Status> st(reqs.size(), Status::kOk);
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          (*resps)[i].data = reqs[i].data;
        }
        return st;
      });
  ByteWriter w;
  w.U32(2);
  w.U8(BulkRequest::kTag);
  w.Blob({0xff});  // truncated: not a valid Blob-encoded body
  w.U8(BulkRequest::kTag);
  BulkRequest good;
  good.data = {0x42};
  w.Blob(good.Encode());

  RequestEnvelope env;
  env.tag = kBatchTag;
  env.payload = w.Take();
  ResponseEnvelope resp =
      ResponseEnvelope::Decode(registry_.Dispatch(env.Encode()));
  ASSERT_EQ(resp.status, Status::kOk);
  ByteReader r(resp.payload);
  ASSERT_EQ(r.U32(), 2u);
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kBadRequest);
  EXPECT_TRUE(r.Blob().empty());
  EXPECT_EQ(static_cast<Status>(r.U8()), Status::kOk);
  EXPECT_EQ(EchoResponse::Decode(r.Blob()).data, good.data);
  // The bad item never reached the typed handler.
  ASSERT_EQ(call_sizes.size(), 1u);
  EXPECT_EQ(call_sizes[0], 1u);
}

TEST_F(RpcTest, WrongReplicaCarriesRedirectHint) {
  // A cluster front-end that does not own the key answers kWrongReplica
  // with a typed {ring epoch, owner} hint in the payload section — the
  // same side-channel pattern as the kOverloaded retry hint.
  registry_.RegisterRaw(
      FailRequest::kTag,
      [](const std::vector<std::uint8_t>&, std::vector<std::uint8_t>* body) {
        *body = EncodeRedirectHint(RedirectHint{/*ring_epoch=*/9,
                                                /*owner=*/3});
        return Status::kWrongReplica;
      });
  auto resp = rpc_.Call("svc", FailRequest{});
  EXPECT_EQ(resp.status, Status::kWrongReplica);
  EXPECT_TRUE(resp.wrong_replica());
  EXPECT_EQ(resp.redirect.ring_epoch, 9u);
  EXPECT_EQ(resp.redirect.owner, 3u);
  EXPECT_EQ(resp.retry_after_ms, 0u);  // redirects carry no backoff

  // Batched: each item's redirect hint survives the batch envelope
  // independently.
  std::vector<FailRequest> reqs(3);
  auto resps = rpc_.CallBatch("svc", reqs);
  ASSERT_EQ(resps.size(), 3u);
  for (const auto& r : resps) {
    EXPECT_EQ(r.status, Status::kWrongReplica);
    EXPECT_EQ(r.redirect.ring_epoch, 9u);
    EXPECT_EQ(r.redirect.owner, 3u);
  }
}

TEST_F(RpcTest, MalformedRedirectHintDecodesToZero) {
  // A hint is advice, not protocol: garbage decodes to the zero hint
  // instead of throwing (same contract as the retry hint).
  RedirectHint hint = DecodeRedirectHint({1, 2, 3});
  EXPECT_EQ(hint.ring_epoch, 0u);
  EXPECT_EQ(hint.owner, 0u);
}

TEST_F(RpcTest, ThrowingBatchHandlerFailsItsGroupInternally) {
  registry_.RegisterBatch<BulkRequest>(
      [](const std::vector<BulkRequest>&,
         std::vector<EchoResponse>*) -> std::vector<Status> {
        throw std::runtime_error("batch handler exploded");
      });
  std::vector<BulkRequest> reqs(4);
  auto resps = rpc_.CallBatch("svc", reqs);
  ASSERT_EQ(resps.size(), 4u);
  for (const auto& r : resps) {
    EXPECT_EQ(r.status, Status::kInternalError);
  }
}

}  // namespace
}  // namespace net
}  // namespace p2drm
