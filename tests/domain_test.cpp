// Authorized domains: private membership, shared licenses, compliance.

#include "core/domain.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class DomainTest : public ::testing::Test {
 protected:
  DomainTest() : rng_("domain-test"), system_(Config(), &rng_) {
    film_ = system_.cp().Publish("Family Film",
                                 std::vector<std::uint8_t>(512, 0x44), 20,
                                 rel::Rights::MeteredPlay(3));
    DomainConfig dcfg;
    dcfg.max_members = 3;
    dcfg.agent.pseudonym_bits = 512;
    dcfg.agent.initial_bank_balance = 1000;
    manager_ = std::make_unique<DomainManager>("home-hub", dcfg, &system_,
                                               &rng_);
  }

  static SystemConfig Config() {
    SystemConfig cfg;
    cfg.ca_key_bits = 512;
    cfg.ttp_key_bits = 512;
    cfg.bank_key_bits = 512;
    cfg.cp.signing_key_bits = 512;
    return cfg;
  }

  DeviceCertificate MakeMember(const std::string& name,
                               std::uint8_t level = 2) {
    auto device = std::make_unique<CompliantDevice>(name, level,
                                                    &system_.clock(), &rng_);
    DeviceCertificate cert =
        system_.ca().CertifyDevice(device->DeviceKey(), level);
    devices_.push_back(std::move(device));
    return cert;
  }

  crypto::HmacDrbg rng_;
  P2drmSystem system_;
  rel::ContentId film_ = 0;
  std::unique_ptr<DomainManager> manager_;
  std::vector<std::unique_ptr<CompliantDevice>> devices_;
};

TEST_F(DomainTest, MembersJoinUpToLimit) {
  EXPECT_EQ(manager_->Join(MakeMember("tv")), Status::kOk);
  EXPECT_EQ(manager_->Join(MakeMember("tablet")), Status::kOk);
  EXPECT_EQ(manager_->Join(MakeMember("phone")), Status::kOk);
  EXPECT_EQ(manager_->MemberCount(), 3u);
  // Domain is full (compliance bound).
  EXPECT_EQ(manager_->Join(MakeMember("console")), Status::kBadRequest);
}

TEST_F(DomainTest, ForgedDeviceCertRejected) {
  DeviceCertificate cert = MakeMember("tv");
  cert.security_level ^= 1;  // breaks the CA signature
  EXPECT_EQ(manager_->Join(cert), Status::kBadCertificate);
}

TEST_F(DomainTest, RevokedDeviceRejected) {
  DeviceCertificate cert = MakeMember("tv");
  system_.cp().Revoke(cert.device_id);
  EXPECT_EQ(manager_->Join(cert), Status::kRevoked);
}

TEST_F(DomainTest, MembersShareTheDomainLicense) {
  DeviceCertificate tv = MakeMember("tv");
  DeviceCertificate tablet = MakeMember("tablet");
  ASSERT_EQ(manager_->Join(tv), Status::kOk);
  ASSERT_EQ(manager_->Join(tablet), Status::kOk);
  ASSERT_EQ(manager_->AcquireContent(film_), Status::kOk);

  UseResult r1 = manager_->MemberPlay(tv.device_id, film_);
  ASSERT_EQ(r1.decision, rel::Decision::kAllow) << r1.error;
  EXPECT_EQ(r1.plaintext, std::vector<std::uint8_t>(512, 0x44));
  UseResult r2 = manager_->MemberPlay(tablet.device_id, film_);
  ASSERT_EQ(r2.decision, rel::Decision::kAllow) << r2.error;
  // One domain-wide meter: two plays consumed.
  EXPECT_EQ(manager_->DomainPlaysUsed(film_), 2u);
}

TEST_F(DomainTest, DomainMeterIsShared) {
  DeviceCertificate tv = MakeMember("tv");
  ASSERT_EQ(manager_->Join(tv), Status::kOk);
  ASSERT_EQ(manager_->AcquireContent(film_), Status::kOk);  // 3 plays
  EXPECT_EQ(manager_->MemberPlay(tv.device_id, film_).decision,
            rel::Decision::kAllow);
  EXPECT_EQ(manager_->MemberPlay(tv.device_id, film_).decision,
            rel::Decision::kAllow);
  EXPECT_EQ(manager_->MemberPlay(tv.device_id, film_).decision,
            rel::Decision::kAllow);
  EXPECT_EQ(manager_->MemberPlay(tv.device_id, film_).decision,
            rel::Decision::kDeniedExhausted);
}

TEST_F(DomainTest, NonMembersGetNothing) {
  ASSERT_EQ(manager_->AcquireContent(film_), Status::kOk);
  DeviceCertificate outsider = MakeMember("outsider");
  UseResult r = manager_->MemberPlay(outsider.device_id, film_);
  EXPECT_NE(r.decision, rel::Decision::kAllow);
  EXPECT_NE(r.error.find("not a domain member"), std::string::npos);
}

TEST_F(DomainTest, NoLicenseNoPlay) {
  DeviceCertificate tv = MakeMember("tv");
  ASSERT_EQ(manager_->Join(tv), Status::kOk);
  UseResult r = manager_->MemberPlay(tv.device_id, film_);
  EXPECT_NE(r.decision, rel::Decision::kAllow);
}

TEST_F(DomainTest, SecurityLevelGatesMembers) {
  rel::Rights strict = rel::Rights::UnlimitedPlay();
  strict.min_security_level = 3;
  rel::ContentId hd = system_.cp().Publish(
      "HD", std::vector<std::uint8_t>(16, 1), 5, strict);
  DeviceCertificate weak = MakeMember("weak", 1);
  DeviceCertificate strong = MakeMember("strong", 4);
  ASSERT_EQ(manager_->Join(weak), Status::kOk);
  ASSERT_EQ(manager_->Join(strong), Status::kOk);
  ASSERT_EQ(manager_->AcquireContent(hd), Status::kOk);
  EXPECT_EQ(manager_->MemberPlay(weak.device_id, hd).decision,
            rel::Decision::kDeniedSecurityLevel);
  EXPECT_EQ(manager_->MemberPlay(strong.device_id, hd).decision,
            rel::Decision::kAllow);
}

TEST_F(DomainTest, CrlSyncExpelsRevokedMembers) {
  DeviceCertificate tv = MakeMember("tv");
  ASSERT_EQ(manager_->Join(tv), Status::kOk);
  ASSERT_EQ(manager_->AcquireContent(film_), Status::kOk);
  ASSERT_EQ(manager_->MemberPlay(tv.device_id, film_).decision,
            rel::Decision::kAllow);

  system_.cp().Revoke(tv.device_id);
  manager_->SyncCrl();
  EXPECT_FALSE(manager_->IsMember(tv.device_id));
  EXPECT_NE(manager_->MemberPlay(tv.device_id, film_).decision,
            rel::Decision::kAllow);
}

TEST_F(DomainTest, LeaveRemovesMember) {
  DeviceCertificate tv = MakeMember("tv");
  ASSERT_EQ(manager_->Join(tv), Status::kOk);
  EXPECT_TRUE(manager_->Leave(tv.device_id));
  EXPECT_FALSE(manager_->Leave(tv.device_id));
  EXPECT_EQ(manager_->MemberCount(), 0u);
}

TEST_F(DomainTest, ProviderNeverLearnsMembership) {
  std::size_t pseudonyms_before = system_.cp().DistinctPseudonymsSeen();
  ASSERT_EQ(manager_->Join(MakeMember("tv")), Status::kOk);
  ASSERT_EQ(manager_->Join(MakeMember("tablet")), Status::kOk);
  // Joining is purely local: no new provider-visible credentials.
  EXPECT_EQ(system_.cp().DistinctPseudonymsSeen(), pseudonyms_before);
  // Acquisition shows the provider exactly one pseudonym — the domain's —
  // regardless of member count.
  ASSERT_EQ(manager_->AcquireContent(film_), Status::kOk);
  EXPECT_EQ(system_.cp().DistinctPseudonymsSeen(), pseudonyms_before + 1);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
