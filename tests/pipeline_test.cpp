// Three-stage issuance pipeline (ISSUE 3): parallel issuance on the
// shard workers must be bit-identical to serial issuance under a fixed
// DRBG seed; PurchaseBatch must match Purchase() item for item with
// amortized verification; the per-thread metrics shards must aggregate
// exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/content_provider.h"
#include "core/metrics.h"
#include "crypto/drbg.h"
#include "sim/provider_stack.h"

namespace p2drm {
namespace core {
namespace {

// One full deterministic provider stack per test; two stacks built from
// the same seed and driven through the same call sequence hold
// bit-identical keys and licenses, which is what lets the tests compare
// serial (redeem_shards = 0) against parallel issuance.
using Stack = sim::ProviderStack;

// -- parallel vs serial issuance ---------------------------------------------

TEST(IssuancePipeline, ParallelIssuanceBitIdenticalToSerial) {
  // Same seed, same call sequence; only redeem_shards differs. The batch
  // includes an in-batch duplicate so the double-redemption (transcript
  // signing without issuance) leg is covered too.
  Stack serial("pipeline-identical", 0);
  Stack sharded("pipeline-identical", 4);

  constexpr int kBearers = 6;
  std::vector<rel::License> bearers_serial, bearers_sharded;
  Pseudonym* giver_serial = serial.NewPseudonym();
  Pseudonym* giver_sharded = sharded.NewPseudonym();
  for (int i = 0; i < kBearers; ++i) {
    bearers_serial.push_back(serial.NewBearer(giver_serial));
    bearers_sharded.push_back(sharded.NewBearer(giver_sharded));
    // Pre-redemption state is already bit-identical.
    ASSERT_EQ(bearers_serial[i].Serialize(), bearers_sharded[i].Serialize());
  }
  Pseudonym* taker_serial = serial.NewPseudonym();
  Pseudonym* taker_sharded = sharded.NewPseudonym();
  ASSERT_EQ(taker_serial->cert.Serialize(), taker_sharded->cert.Serialize());

  std::vector<ContentProvider::RedeemItem> items_serial, items_sharded;
  for (int i = 0; i < kBearers; ++i) {
    items_serial.push_back({bearers_serial[i], taker_serial->cert});
    items_sharded.push_back({bearers_sharded[i], taker_sharded->cert});
  }
  // Duplicate of item 0: detected double redemption inside the batch.
  items_serial.push_back(items_serial[0]);
  items_sharded.push_back(items_sharded[0]);

  auto out_serial = serial.cp.RedeemAnonymousBatch(items_serial);
  auto out_sharded = sharded.cp.RedeemAnonymousBatch(items_sharded);
  ASSERT_EQ(out_serial.size(), out_sharded.size());
  for (std::size_t i = 0; i < out_serial.size(); ++i) {
    EXPECT_EQ(out_serial[i].status, out_sharded[i].status) << "item " << i;
    EXPECT_EQ(out_serial[i].license.Serialize(),
              out_sharded[i].license.Serialize())
        << "item " << i;
  }
  EXPECT_EQ(out_serial[kBearers].status, Status::kAlreadySpent);

  // Receipts (first-seen transcripts) are bit-identical as well.
  for (int i = 0; i < kBearers; ++i) {
    auto t_serial = serial.cp.TranscriptFor(bearers_serial[i].id);
    auto t_sharded = sharded.cp.TranscriptFor(bearers_sharded[i].id);
    ASSERT_TRUE(t_serial.has_value());
    ASSERT_TRUE(t_sharded.has_value());
    EXPECT_EQ(t_serial->Serialize(), t_sharded->Serialize()) << "item " << i;
  }
  // So is the fraud evidence from the duplicate.
  auto ev_serial = serial.cp.TakeFraudEvidence();
  auto ev_sharded = sharded.cp.TakeFraudEvidence();
  ASSERT_EQ(ev_serial.size(), 1u);
  ASSERT_EQ(ev_sharded.size(), 1u);
  EXPECT_EQ(ev_serial[0].Serialize(), ev_sharded[0].Serialize());

  EXPECT_EQ(serial.cp.LicensesIssued(), sharded.cp.LicensesIssued());
  // And the single-item path is a batch of one: the next bearer redeems
  // identically through RedeemAnonymous on both stacks.
  rel::License one_serial = serial.NewBearer(giver_serial);
  rel::License one_sharded = sharded.NewBearer(giver_sharded);
  auto r_serial = serial.cp.RedeemAnonymous(one_serial, taker_serial->cert);
  auto r_sharded = sharded.cp.RedeemAnonymous(one_sharded, taker_sharded->cert);
  EXPECT_EQ(r_serial.status, Status::kOk);
  EXPECT_EQ(r_serial.license.Serialize(), r_sharded.license.Serialize());
}

TEST(IssuancePipeline, IssueStageRunsOnShardWorkers) {
  Stack stack("pipeline-workers", 3);
  Pseudonym* giver = stack.NewPseudonym();
  Pseudonym* taker = stack.NewPseudonym();
  std::vector<ContentProvider::RedeemItem> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back({stack.NewBearer(giver), taker->cert});
  }
  auto out = stack.cp.RedeemAnonymousBatch(items);
  for (const auto& r : out) EXPECT_EQ(r.status, Status::kOk);

  // The signing work accrued on the workers' sim clocks (measured wall
  // time of SignRedemption), not just on the dispatch thread.
  const server::ServerRuntime* rt = stack.cp.Runtime();
  ASSERT_NE(rt, nullptr);
  std::uint64_t issue_us_on_workers = 0;
  for (std::size_t s = 0; s < rt->shard_count(); ++s) {
    issue_us_on_workers += rt->ShardSimClockUs(s);
  }
  EXPECT_GT(issue_us_on_workers, 0u);

  auto timings = stack.cp.LastBatchTimings();
  EXPECT_EQ(timings.items, items.size());
  EXPECT_GT(timings.verify_us, 0.0);
  EXPECT_GT(timings.issue_us, 0.0);
}

// -- batched purchases -------------------------------------------------------

TEST(PurchasePipeline, BatchMatchesSingleItemSemantics) {
  Stack stack("purchase-batch", 2);
  Pseudonym* buyer = stack.NewPseudonym();

  std::vector<ContentProvider::PurchaseItem> items;
  items.push_back({buyer->cert, stack.content, stack.Pay(30)});   // ok
  items.push_back({buyer->cert, stack.content, stack.Pay(20)});   // wrong price
  items.push_back({buyer->cert, 999, stack.Pay(30)});             // unknown id
  items.push_back({buyer->cert, stack.content, items[0].payment});  // reused coins
  items.push_back({buyer->cert, stack.content, stack.Pay(30)});   // ok

  auto before = stack.cp.BatchVerifyStats();
  auto out = stack.cp.PurchaseBatch(items);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].status, Status::kOk);
  EXPECT_EQ(out[1].status, Status::kWrongPrice);
  EXPECT_EQ(out[2].status, Status::kUnknownContent);
  EXPECT_EQ(out[3].status, Status::kDoubleSpend);
  EXPECT_EQ(out[4].status, Status::kOk);

  // Issued licenses are genuine, bound, and carry a wrapped content key.
  for (std::size_t i : {0u, 4u}) {
    EXPECT_TRUE(crypto::RsaVerifyFdh(stack.cp.PublicKey(),
                                     out[i].license.CanonicalBytes(),
                                     out[i].license.issuer_signature));
    EXPECT_EQ(out[i].license.bound_key, buyer->cert.KeyId());
    EXPECT_FALSE(out[i].license.wrapped_content_key.empty());
  }

  // One distinct certificate: one full verification for five items.
  auto delta = stack.cp.BatchVerifyStats() - before;
  EXPECT_EQ(delta.full_verifies, 1u);
  EXPECT_EQ(delta.cert_cache_hits, 4u);

  // A revoked buyer is rejected before any money moves.
  stack.cp.Revoke(buyer->cert.KeyId());
  auto coins = stack.Pay(30);
  auto rejected = stack.cp.PurchaseBatch({{buyer->cert, stack.content, coins}});
  EXPECT_EQ(rejected[0].status, Status::kRevoked);
  // The coins were not deposited: a later honest purchase can spend them.
  Pseudonym* honest = stack.NewPseudonym();
  EXPECT_EQ(stack.cp.Purchase(honest->cert, stack.content, coins).status,
            Status::kOk);
}

// -- sharded metrics ---------------------------------------------------------

TEST(ShardedMetrics, ThreadIncrementsAggregateExactly) {
  OpCounters before = AggregateOps();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        GlobalOps().sign += 1;
        if (i % 2 == 0) GlobalOps().verify += 1;
      }
    });
  }
  for (auto& th : threads) th.join();
  // Shards survive their threads: the aggregate is exact after the join.
  OpCounters delta = AggregateOps() - before;
  EXPECT_EQ(delta.sign, kThreads * kPerThread);
  EXPECT_EQ(delta.verify, kThreads * kPerThread / 2);
}

TEST(ShardedMetrics, WriterThreadSeesItsOwnShard) {
  OpCountersShard& mine = GlobalOps();
  std::uint64_t sign_before = mine.Snapshot().sign;
  std::thread other([] { GlobalOps().sign += 1000; });
  other.join();
  // Another thread's increments land on its shard, not this one's...
  EXPECT_EQ(mine.Snapshot().sign, sign_before);
  // ...and GlobalOps() is stable per thread.
  EXPECT_EQ(&GlobalOps(), &mine);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
