// ScenarioDriver: determinism, accounting, overload shedding and
// full-hint honoring — all in virtual time, no wall-clock sleeps.

#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace sim {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig cfg;
  cfg.name = "test";
  cfg.seed = 7;
  cfg.num_users = 200;
  cfg.total_requests = 2000;
  cfg.batch_size = 4;
  cfg.shard_count = 4;
  cfg.queue_capacity = 512;
  cfg.mean_think_us = 1'000'000;
  cfg.ramp_us = 500'000;
  return cfg;
}

TEST(Scenario, AccountingCloses) {
  ScenarioResult r = ScenarioDriver(SmallConfig()).Run();
  EXPECT_EQ(r.TotalIssued(), 2000u);
  // Every issued item resolves: completed or retry-budget exhausted.
  EXPECT_EQ(r.TotalCompleted() + r.TotalExhausted(), r.TotalIssued());
  EXPECT_GT(r.virtual_duration_us, 0u);
  EXPECT_GT(r.batches_sent, 0u);
  // Latency samples align with completions.
  std::uint64_t samples = 0;
  for (const FlowStats& f : r.flows) samples += f.latency.Count();
  EXPECT_EQ(samples, r.TotalCompleted());
}

TEST(Scenario, SameSeedReplaysBitIdentically) {
  ScenarioConfig cfg = SmallConfig();
  ScenarioResult a = ScenarioDriver(cfg).Run();
  ScenarioResult b = ScenarioDriver(cfg).Run();
  EXPECT_EQ(a.virtual_duration_us, b.virtual_duration_us);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.batches_sent, b.batches_sent);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.zipf_top1pct_hits, b.zipf_top1pct_hits);
  for (std::size_t f = 0; f < kFlowCount; ++f) {
    EXPECT_EQ(a.flows[f].issued, b.flows[f].issued);
    EXPECT_EQ(a.flows[f].completed, b.flows[f].completed);
    EXPECT_EQ(a.flows[f].sheds, b.flows[f].sheds);
    EXPECT_EQ(a.flows[f].latency.Percentile(50),
              b.flows[f].latency.Percentile(50));
    EXPECT_EQ(a.flows[f].latency.Max(), b.flows[f].latency.Max());
  }
}

TEST(Scenario, DifferentSeedsDiverge) {
  ScenarioConfig cfg = SmallConfig();
  ScenarioResult a = ScenarioDriver(cfg).Run();
  cfg.seed = 8;
  ScenarioResult b = ScenarioDriver(cfg).Run();
  // Think times and flow draws differ, so the virtual end time does.
  EXPECT_NE(a.virtual_duration_us, b.virtual_duration_us);
}

TEST(Scenario, TinyQueueShedsAndRetriesRecover) {
  ScenarioConfig cfg = SmallConfig();
  cfg.queue_capacity = 2;  // backlog bound of two items per shard
  cfg.ramp_us = 0;         // flash crowd
  cfg.retry_hint_ms = 20;
  ScenarioResult r = ScenarioDriver(cfg).Run();
  EXPECT_GT(r.TotalSheds(), 0u);
  std::uint64_t retried = 0;
  for (const FlowStats& f : r.flows) retried += f.retried;
  EXPECT_GT(retried, 0u);
  EXPECT_GT(r.backoff_ms_honored, 0u);
  EXPECT_EQ(r.TotalCompleted() + r.TotalExhausted(), r.TotalIssued());
}

TEST(Scenario, SingleAttemptBudgetExhaustsEveryShed) {
  ScenarioConfig cfg = SmallConfig();
  cfg.queue_capacity = 2;
  cfg.ramp_us = 0;
  cfg.overload_max_attempts = 1;  // never retry
  ScenarioResult r = ScenarioDriver(cfg).Run();
  EXPECT_GT(r.TotalSheds(), 0u);
  // With no retries every shed is an exhausted item and vice versa.
  EXPECT_EQ(r.TotalSheds(), r.TotalExhausted());
  EXPECT_EQ(r.backoff_ms_honored, 0u);
}

TEST(Scenario, MultiSecondHintsAreHonoredInVirtualTime) {
  ScenarioConfig cfg = SmallConfig();
  cfg.queue_capacity = 2;
  cfg.ramp_us = 0;
  cfg.retry_hint_ms = 3000;  // 3s per retry wait: poison for real sleeps
  ScenarioResult r = ScenarioDriver(cfg).Run();
  ASSERT_GT(r.backoff_ms_honored, 0u);
  // Hints are honored in full (no cap): the honored total is a whole
  // multiple of the hint, and the run spans at least one full wait.
  EXPECT_EQ(r.backoff_ms_honored % 3000, 0u);
  EXPECT_GE(r.virtual_duration_us, 3'000'000u);
}

TEST(Scenario, BurstWindowAcceleratesArrivals) {
  // Same workload with and without a 100x think-time burst over the
  // whole run: the burst must compress the virtual schedule.
  ScenarioConfig cfg = SmallConfig();
  cfg.total_requests = 4000;  // ~5 closed-loop rounds per user
  ScenarioResult calm = ScenarioDriver(cfg).Run();
  cfg.bursts.push_back({0, ~std::uint64_t{0}, 0.01});
  ScenarioResult bursty = ScenarioDriver(cfg).Run();
  EXPECT_LT(bursty.virtual_duration_us, calm.virtual_duration_us);
  // The burst changes pacing, never the request budget.
  EXPECT_EQ(bursty.TotalIssued(), calm.TotalIssued());
}

TEST(Scenario, ZipfSkewConcentratesPurchaseLoad) {
  // Purchases route to their content's home shard, so a skewed catalog
  // must pile purchase load onto the hot shards: with a tiny backlog
  // bound, heavy skew sheds far more than a uniform catalog.
  ScenarioConfig cfg = SmallConfig();
  cfg.mix = {0.0, 1.0, 0.0, 0.0};  // purchase only
  cfg.ramp_us = 0;                 // flash crowd
  cfg.queue_capacity = 16;
  cfg.overload_max_attempts = 1;   // count raw sheds, no retry noise
  cfg.zipf_alpha = 0.0;            // uniform catalog
  ScenarioResult uniform = ScenarioDriver(cfg).Run();
  cfg.zipf_alpha = 2.0;            // one title dominates
  ScenarioResult skewed = ScenarioDriver(cfg).Run();
  EXPECT_GT(skewed.zipf_top1pct_hits, uniform.zipf_top1pct_hits);
  EXPECT_GT(skewed.TotalSheds(), uniform.TotalSheds());
  EXPECT_GE(skewed.max_backlog_items, uniform.max_backlog_items);
}

TEST(Scenario, ZeroBatchSizeStillTerminates) {
  // batch_size = 0 is clamped to one item per batch; the run must end
  // (an un-clamped zero-item batch never advances the stop condition).
  ScenarioConfig cfg = SmallConfig();
  cfg.batch_size = 0;
  cfg.total_requests = 100;
  ScenarioResult r = ScenarioDriver(cfg).Run();
  EXPECT_GE(r.TotalIssued(), 100u);
  EXPECT_EQ(r.TotalCompleted() + r.TotalExhausted(), r.TotalIssued());
}

TEST(Scenario, MixWeightsSteerFlows) {
  ScenarioConfig cfg = SmallConfig();
  cfg.mix = {1.0, 0.0, 0.0, 0.0};  // redeem only
  ScenarioResult r = ScenarioDriver(cfg).Run();
  EXPECT_EQ(r.flows[static_cast<std::size_t>(Flow::kRedeem)].issued,
            r.TotalIssued());
  EXPECT_EQ(r.flows[static_cast<std::size_t>(Flow::kPurchase)].issued, 0u);
}

}  // namespace
}  // namespace sim
}  // namespace p2drm
