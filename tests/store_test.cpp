// Stores: Bloom filter, spent set (all backends), revocation list, CRC log.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <unistd.h>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "store/append_log.h"
#include "store/bloom_filter.h"
#include "store/revocation_list.h"
#include "store/spent_set.h"

namespace p2drm {
namespace store {
namespace {

rel::LicenseId Id(std::uint64_t n) {
  rel::LicenseId id;
  for (int i = 0; i < 8; ++i) {
    id.bytes[i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  // Spread into the upper half too, so ids differ in many bytes.
  for (int i = 8; i < 16; ++i) {
    id.bytes[i] = static_cast<std::uint8_t>((n * 2654435761u) >> (8 * (i - 8)));
  }
  return id;
}

rel::DeviceId Dev(std::uint64_t n) {
  rel::DeviceId d{};
  for (int i = 0; i < 8; ++i) d[i] = static_cast<std::uint8_t>(n >> (8 * i));
  return d;
}

// -- Bloom filter -----------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto id = Id(i);
    bf.Insert(id.bytes.data(), id.bytes.size());
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto id = Id(i);
    EXPECT_TRUE(bf.MayContain(id.bytes.data(), id.bytes.size())) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  BloomFilter bf(10000, 10);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    auto id = Id(i);
    bf.Insert(id.bytes.data(), id.bytes.size());
  }
  int fp = 0;
  for (std::uint64_t i = 100000; i < 110000; ++i) {
    auto id = Id(i);
    if (bf.MayContain(id.bytes.data(), id.bytes.size())) ++fp;
  }
  // 10 bits/entry → ~1% theoretical; allow generous 3%.
  EXPECT_LT(fp, 300);
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter bf(100);
  auto id = Id(1);
  EXPECT_FALSE(bf.MayContain(id.bytes.data(), id.bytes.size()));
  EXPECT_DOUBLE_EQ(bf.FillRatio(), 0.0);
}

TEST(BloomFilter, FillRatioGrows) {
  BloomFilter bf(100, 10);
  double prev = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto id = Id(i);
    bf.Insert(id.bytes.data(), id.bytes.size());
  }
  EXPECT_GT(bf.FillRatio(), prev);
  EXPECT_LT(bf.FillRatio(), 0.8);  // near 0.5 at design load
}

// -- SpentSet (parameterized over backends) -----------------------------------

class SpentSetTest : public ::testing::TestWithParam<SpentSetBackend> {};

TEST_P(SpentSetTest, InsertContainsBasics) {
  SpentSet set(GetParam());
  EXPECT_FALSE(set.Contains(Id(1)));
  EXPECT_TRUE(set.Insert(Id(1)));
  EXPECT_TRUE(set.Contains(Id(1)));
  EXPECT_FALSE(set.Contains(Id(2)));
  EXPECT_EQ(set.Size(), 1u);
}

TEST_P(SpentSetTest, DoubleInsertRejected) {
  SpentSet set(GetParam());
  EXPECT_TRUE(set.Insert(Id(42)));
  EXPECT_FALSE(set.Insert(Id(42)));  // the double-redemption signal
  EXPECT_EQ(set.Size(), 1u);
}

TEST_P(SpentSetTest, ManyEntriesAllFound) {
  SpentSet set(GetParam());
  constexpr std::uint64_t kN = 500;
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_TRUE(set.Insert(Id(i)));
  EXPECT_EQ(set.Size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_TRUE(set.Contains(Id(i)));
  for (std::uint64_t i = kN; i < kN + 100; ++i) {
    EXPECT_FALSE(set.Contains(Id(i)));
  }
}

TEST_P(SpentSetTest, MemoryAccountingNonZero) {
  SpentSet set(GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) set.Insert(Id(i));
  EXPECT_GT(set.MemoryBytes(), 100u * 16u / 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SpentSetTest,
                         ::testing::Values(SpentSetBackend::kHashSet,
                                           SpentSetBackend::kSortedVector,
                                           SpentSetBackend::kLinearScan,
                                           SpentSetBackend::kFlat),
                         [](const auto& info) {
                           std::string name = SpentSetBackendName(info.param);
                           return name == "hash-set"        ? "HashSet"
                                  : name == "sorted-vector" ? "SortedVector"
                                  : name == "linear-scan"   ? "LinearScan"
                                                            : "Flat";
                         });

TEST(SpentSet, BackendsAgree) {
  SpentSet a(SpentSetBackend::kHashSet);
  SpentSet b(SpentSetBackend::kSortedVector);
  SpentSet c(SpentSetBackend::kLinearScan);
  SpentSet d(SpentSetBackend::kFlat);
  crypto::HmacDrbg rng("agree");
  for (int i = 0; i < 300; ++i) {
    auto id = Id(rng.NextUint64(200));  // collisions on purpose
    bool ra = a.Insert(id);
    bool rb = b.Insert(id);
    bool rc = c.Insert(id);
    bool rd = d.Insert(id);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(rb, rc);
    EXPECT_EQ(rc, rd);
  }
  EXPECT_EQ(a.Size(), b.Size());
  EXPECT_EQ(b.Size(), c.Size());
  EXPECT_EQ(c.Size(), d.Size());
}

// Differential: the flat table must agree with unordered_set operation by
// operation under a randomized, duplicate-heavy workload that crosses many
// rehash boundaries (the table starts at 64 slots and doubles at 7/8 load,
// so 40k distinct ids force ~10 rehashes mid-stream).
TEST(SpentSet, FlatMatchesHashSetRandomized) {
  SpentSet flat(SpentSetBackend::kFlat);
  SpentSet hash(SpentSetBackend::kHashSet);
  crypto::HmacDrbg rng("flat-differential");
  for (int i = 0; i < 120000; ++i) {
    auto id = Id(rng.NextUint64(40000));  // ~3x duplicates
    if (rng.NextUint64(4) == 0) {
      ASSERT_EQ(flat.Contains(id), hash.Contains(id)) << "op " << i;
    } else {
      ASSERT_EQ(flat.Insert(id), hash.Insert(id)) << "op " << i;
    }
  }
  ASSERT_EQ(flat.Size(), hash.Size());
  // Post-hoc sweep: every id the hash set holds must probe present in the
  // flat table, and a disjoint range must probe absent in both.
  for (std::uint64_t i = 0; i < 40000; ++i) {
    ASSERT_EQ(flat.Contains(Id(i)), hash.Contains(Id(i))) << i;
  }
  for (std::uint64_t i = 40000; i < 41000; ++i) {
    ASSERT_FALSE(flat.Contains(Id(i)));
  }
}

// The batch APIs must be bit-identical to N scalar calls — including the
// first-wins rule for duplicates INSIDE one batch (the runtime journals
// exactly the fresh ids, so a double-counted duplicate would double-journal).
TEST(SpentSet, BatchApisMatchScalarAcrossBackends) {
  for (auto backend : {SpentSetBackend::kHashSet, SpentSetBackend::kFlat}) {
    SpentSet batched(backend);
    SpentSet scalar(backend);
    crypto::HmacDrbg rng("batch-differential");
    std::vector<rel::LicenseId> ids;
    for (int round = 0; round < 40; ++round) {
      // Odd batch sizes exercise the pipelined window's tail handling.
      std::size_t n = 1 + rng.NextUint64(97);
      ids.clear();
      for (std::size_t i = 0; i < n; ++i) {
        ids.push_back(Id(rng.NextUint64(800)));
      }
      // A guaranteed in-batch duplicate pair: first wins, second does not.
      if (n >= 2) ids[n - 1] = ids[0];
      std::vector<std::uint8_t> fresh(n, 0xAA), hit(n, 0xAA);
      batched.InsertBatch(ids.data(), n, fresh.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(fresh[i] != 0, scalar.Insert(ids[i]))
            << SpentSetBackendName(backend) << " round " << round << " item "
            << i;
      }
      batched.ContainsBatch(ids.data(), n, hit.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hit[i] != 0, scalar.Contains(ids[i]))
            << SpentSetBackendName(backend) << " round " << round << " item "
            << i;
      }
    }
    ASSERT_EQ(batched.Size(), scalar.Size()) << SpentSetBackendName(backend);
  }
}

// Replaying the same import twice (duplicate ImportSpent) must be a no-op
// the second time on every backend — InsertBatch reports nothing fresh and
// the size is unchanged. This is the idempotency the journal-replay path
// (server_runtime.cpp ReplayJournals) depends on.
TEST(SpentSet, DuplicateImportReplayIsIdempotent) {
  for (auto backend : {SpentSetBackend::kHashSet, SpentSetBackend::kFlat}) {
    SpentSet set(backend);
    constexpr std::size_t kN = 5000;
    std::vector<rel::LicenseId> ids;
    for (std::uint64_t i = 0; i < kN; ++i) ids.push_back(Id(i));
    std::vector<std::uint8_t> fresh(kN, 0);
    set.InsertBatch(ids.data(), kN, fresh.data());
    for (std::size_t i = 0; i < kN; ++i) ASSERT_TRUE(fresh[i]) << i;
    // Second replay of the identical import.
    set.InsertBatch(ids.data(), kN, fresh.data());
    for (std::size_t i = 0; i < kN; ++i) ASSERT_FALSE(fresh[i]) << i;
    ASSERT_EQ(set.Size(), kN) << SpentSetBackendName(backend);
  }
}

// Rehash boundaries: inserting one-at-a-time versus in one batch must land
// on the same table geometry (MemoryBytes is exact for flat, so equality
// proves the rehash points depend only on the insert sequence).
TEST(SpentSet, FlatRehashDeterministicAcrossBatching) {
  SpentSet one_by_one(SpentSetBackend::kFlat);
  SpentSet in_batches(SpentSetBackend::kFlat);
  constexpr std::size_t kN = 3000;  // crosses several doublings from 64
  std::vector<rel::LicenseId> ids;
  for (std::uint64_t i = 0; i < kN; ++i) ids.push_back(Id(i * 7 + 1));
  for (const auto& id : ids) one_by_one.Insert(id);
  std::vector<std::uint8_t> fresh(kN, 0);
  // Deliberately awkward chunk sizes straddling the doubling points.
  for (std::size_t base = 0; base < kN;) {
    std::size_t n = std::min<std::size_t>(kN - base, 13 + base % 50);
    in_batches.InsertBatch(ids.data() + base, n, fresh.data());
    base += n;
  }
  EXPECT_EQ(one_by_one.Size(), in_batches.Size());
  EXPECT_EQ(one_by_one.MemoryBytes(), in_batches.MemoryBytes());
  EXPECT_GT(one_by_one.MemoryBytes(), kN * 16u);  // honest: holds the ids
}

// -- RevocationList -----------------------------------------------------------

class CrlTest : public ::testing::TestWithParam<CrlStrategy> {};

TEST_P(CrlTest, RevokeAndCheck) {
  RevocationList crl(GetParam(), 100);
  EXPECT_FALSE(crl.IsRevoked(Dev(1)));
  crl.Revoke(Dev(1));
  EXPECT_TRUE(crl.IsRevoked(Dev(1)));
  EXPECT_FALSE(crl.IsRevoked(Dev(2)));
  EXPECT_EQ(crl.Size(), 1u);
}

TEST_P(CrlTest, VersionBumpsOncePerNewEntry) {
  RevocationList crl(GetParam(), 100);
  EXPECT_EQ(crl.Version(), 0u);
  crl.Revoke(Dev(1));
  EXPECT_EQ(crl.Version(), 1u);
  crl.Revoke(Dev(1));  // idempotent
  EXPECT_EQ(crl.Version(), 1u);
  crl.Revoke(Dev(2));
  EXPECT_EQ(crl.Version(), 2u);
}

TEST_P(CrlTest, SerializeRoundTrip) {
  RevocationList crl(GetParam(), 100);
  for (std::uint64_t i = 0; i < 50; ++i) crl.Revoke(Dev(i));
  auto bytes = crl.Serialize();
  RevocationList back =
      RevocationList::Deserialize(bytes, CrlStrategy::kSortedSet);
  EXPECT_EQ(back.Version(), crl.Version());
  EXPECT_EQ(back.Size(), crl.Size());
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(back.IsRevoked(Dev(i)));
  EXPECT_FALSE(back.IsRevoked(Dev(99)));
}

TEST_P(CrlTest, EntriesSnapshot) {
  RevocationList crl(GetParam(), 10);
  crl.Revoke(Dev(3));
  crl.Revoke(Dev(7));
  auto entries = crl.Entries();
  EXPECT_EQ(entries.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CrlTest,
                         ::testing::Values(CrlStrategy::kSortedSet,
                                           CrlStrategy::kBloomFronted,
                                           CrlStrategy::kLinearScan));

// -- AppendLog ---------------------------------------------------------------

class AppendLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "append_log_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(AppendLogTest, AppendAndReplay) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({});
    log.Append({9});
    EXPECT_EQ(log.AppendedRecords(), 3u);
  }
  std::vector<std::vector<std::uint8_t>> records;
  std::size_t n = AppendLog::Replay(
      path_, [&records](const std::vector<std::uint8_t>& r) {
        records.push_back(r);
      });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(records[1].empty());
  EXPECT_EQ(records[2], (std::vector<std::uint8_t>{9}));
}

TEST_F(AppendLogTest, MissingFileReplaysNothing) {
  std::size_t n = AppendLog::Replay(path_ + ".nope",
                                    [](const std::vector<std::uint8_t>&) {});
  EXPECT_EQ(n, 0u);
}

TEST_F(AppendLogTest, TornTailStopsCleanly) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({4, 5, 6});
  }
  // Truncate mid-record.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
  std::fclose(f);

  std::vector<std::vector<std::uint8_t>> records;
  std::size_t n = AppendLog::Replay(
      path_, [&records](const std::vector<std::uint8_t>& r) {
        records.push_back(r);
      });
  EXPECT_EQ(n, 1u);  // only the intact first record
  EXPECT_EQ(records[0], (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(AppendLogTest, ReplayWithStatsReportsTornTail) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({4, 5, 6});
  }
  AppendLog::ReplayStats clean = AppendLog::ReplayWithStats(path_, nullptr);
  EXPECT_EQ(clean.delivered, 2u);
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.valid_bytes, 2u * (8 + 3));

  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
  std::fclose(f);

  AppendLog::ReplayStats torn = AppendLog::ReplayWithStats(path_, nullptr);
  EXPECT_EQ(torn.delivered, 1u);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.valid_bytes, 8u + 3u);  // just past the intact record
}

TEST_F(AppendLogTest, ReopenAfterTornTailTruncatesAndStaysReplayable) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({4, 5, 6});
  }
  // Crash mid-append: the second record loses its last 2 bytes.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
  std::fclose(f);

  // Reopening for append must truncate the torn tail FIRST — otherwise
  // this append would land behind garbage and be unreplayable forever.
  {
    AppendLog log(path_);
    log.Append({7, 8, 9});
  }
  std::vector<std::vector<std::uint8_t>> records;
  AppendLog::ReplayStats stats = AppendLog::ReplayWithStats(
      path_, [&records](const std::vector<std::uint8_t>& r) {
        records.push_back(r);
      });
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(records[1], (std::vector<std::uint8_t>{7, 8, 9}));
}

TEST_F(AppendLogTest, CorruptPayloadDetectedByCrc) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3, 4, 5});
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8 + 2, SEEK_SET);  // into the payload
  std::fputc(0xFF, f);
  std::fclose(f);

  std::size_t n =
      AppendLog::Replay(path_, [](const std::vector<std::uint8_t>&) {});
  EXPECT_EQ(n, 0u);
}

// -- group commit (AppendMany) ----------------------------------------------

TEST_F(AppendLogTest, AppendManyDeliversOneBlockCountingEachRecord) {
  // 5 fixed-width 16-byte records in one group-committed block.
  std::vector<std::uint8_t> records(5 * 16);
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  {
    AppendLog log(path_);
    log.AppendMany(records.data(), 16, 5);
    // AppendedRecords counts logical records, not write() calls.
    EXPECT_EQ(log.AppendedRecords(), 5u);
  }
  // On disk the block is ONE framed record whose payload is the 5 records
  // back to back; the replay consumer is responsible for splitting it.
  std::vector<std::vector<std::uint8_t>> blocks;
  AppendLog::ReplayStats stats = AppendLog::ReplayWithStats(
      path_, [&blocks](const std::vector<std::uint8_t>& r) {
        blocks.push_back(r);
      });
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], records);
  EXPECT_EQ(stats.valid_bytes, 8u + records.size());
}

TEST_F(AppendLogTest, AppendManyMixesWithSingleRecords) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    std::vector<std::uint8_t> block(3 * 16, 0x5A);
    log.AppendMany(block.data(), 16, 3);
    log.Append({7});
    EXPECT_EQ(log.AppendedRecords(), 5u);
  }
  std::vector<std::size_t> sizes;
  AppendLog::Replay(path_, [&sizes](const std::vector<std::uint8_t>& r) {
    sizes.push_back(r.size());
  });
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 48, 1}));
}

TEST_F(AppendLogTest, AppendManyZeroRecordsWritesNothing) {
  {
    AppendLog log(path_);
    log.AppendMany(nullptr, 16, 0);
    EXPECT_EQ(log.AppendedRecords(), 0u);
  }
  std::size_t n =
      AppendLog::Replay(path_, [](const std::vector<std::uint8_t>&) {});
  EXPECT_EQ(n, 0u);
}

// The torn-tail rule for group commit: the CRC covers the WHOLE block, so a
// tear landing inside a block (not just between records) must drop the whole
// block — partial batches never replay, which is what keeps "fresh ids were
// journaled atomically with their InsertBatch group" true after a crash.
TEST_F(AppendLogTest, TornTailInsideBlockDropsWholeBlock) {
  std::vector<std::uint8_t> block(8 * 16);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>(i);
  }
  {
    AppendLog log(path_);
    log.Append({9, 9, 9});          // intact single record before the block
    log.AppendMany(block.data(), 16, 8);
  }
  // Tear INSIDE the block: keep its header and the first 3.5 records.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  long keep = (8 + 3) + 8 + 3 * 16 + 8;  // first record + block header + 3.5
  ASSERT_EQ(ftruncate(fileno(f), keep), 0);
  std::fclose(f);

  std::vector<std::vector<std::uint8_t>> delivered;
  AppendLog::ReplayStats stats = AppendLog::ReplayWithStats(
      path_, [&delivered](const std::vector<std::uint8_t>& r) {
        delivered.push_back(r);
      });
  EXPECT_TRUE(stats.torn_tail);
  ASSERT_EQ(delivered.size(), 1u);  // only the single record survives
  EXPECT_EQ(delivered[0], (std::vector<std::uint8_t>{9, 9, 9}));
  EXPECT_EQ(stats.valid_bytes, 8u + 3u);

  // Reopening for append truncates the torn block and stays appendable —
  // a fresh group commit after the crash replays cleanly.
  {
    AppendLog log(path_);
    std::vector<std::uint8_t> fresh_block(2 * 16, 0xBB);
    log.AppendMany(fresh_block.data(), 16, 2);
  }
  delivered.clear();
  stats = AppendLog::ReplayWithStats(
      path_, [&delivered](const std::vector<std::uint8_t>& r) {
        delivered.push_back(r);
      });
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (std::vector<std::uint8_t>{9, 9, 9}));
  EXPECT_EQ(delivered[1], std::vector<std::uint8_t>(32, 0xBB));
}

TEST_F(AppendLogTest, ReopenAppends) {
  {
    AppendLog log(path_);
    log.Append({1});
  }
  {
    AppendLog log(path_);
    log.Append({2});
  }
  std::vector<std::uint8_t> seen;
  AppendLog::Replay(path_, [&seen](const std::vector<std::uint8_t>& r) {
    seen.push_back(r[0]);
  });
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 2}));
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  std::string s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace store
}  // namespace p2drm
