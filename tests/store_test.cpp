// Stores: Bloom filter, spent set (all backends), revocation list, CRC log.

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "crypto/drbg.h"
#include "store/append_log.h"
#include "store/bloom_filter.h"
#include "store/revocation_list.h"
#include "store/spent_set.h"

namespace p2drm {
namespace store {
namespace {

rel::LicenseId Id(std::uint64_t n) {
  rel::LicenseId id;
  for (int i = 0; i < 8; ++i) {
    id.bytes[i] = static_cast<std::uint8_t>(n >> (8 * i));
  }
  // Spread into the upper half too, so ids differ in many bytes.
  for (int i = 8; i < 16; ++i) {
    id.bytes[i] = static_cast<std::uint8_t>((n * 2654435761u) >> (8 * (i - 8)));
  }
  return id;
}

rel::DeviceId Dev(std::uint64_t n) {
  rel::DeviceId d{};
  for (int i = 0; i < 8; ++i) d[i] = static_cast<std::uint8_t>(n >> (8 * i));
  return d;
}

// -- Bloom filter -----------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto id = Id(i);
    bf.Insert(id.bytes.data(), id.bytes.size());
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    auto id = Id(i);
    EXPECT_TRUE(bf.MayContain(id.bytes.data(), id.bytes.size())) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateReasonable) {
  BloomFilter bf(10000, 10);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    auto id = Id(i);
    bf.Insert(id.bytes.data(), id.bytes.size());
  }
  int fp = 0;
  for (std::uint64_t i = 100000; i < 110000; ++i) {
    auto id = Id(i);
    if (bf.MayContain(id.bytes.data(), id.bytes.size())) ++fp;
  }
  // 10 bits/entry → ~1% theoretical; allow generous 3%.
  EXPECT_LT(fp, 300);
}

TEST(BloomFilter, EmptyFilterRejectsEverything) {
  BloomFilter bf(100);
  auto id = Id(1);
  EXPECT_FALSE(bf.MayContain(id.bytes.data(), id.bytes.size()));
  EXPECT_DOUBLE_EQ(bf.FillRatio(), 0.0);
}

TEST(BloomFilter, FillRatioGrows) {
  BloomFilter bf(100, 10);
  double prev = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto id = Id(i);
    bf.Insert(id.bytes.data(), id.bytes.size());
  }
  EXPECT_GT(bf.FillRatio(), prev);
  EXPECT_LT(bf.FillRatio(), 0.8);  // near 0.5 at design load
}

// -- SpentSet (parameterized over backends) -----------------------------------

class SpentSetTest : public ::testing::TestWithParam<SpentSetBackend> {};

TEST_P(SpentSetTest, InsertContainsBasics) {
  SpentSet set(GetParam());
  EXPECT_FALSE(set.Contains(Id(1)));
  EXPECT_TRUE(set.Insert(Id(1)));
  EXPECT_TRUE(set.Contains(Id(1)));
  EXPECT_FALSE(set.Contains(Id(2)));
  EXPECT_EQ(set.Size(), 1u);
}

TEST_P(SpentSetTest, DoubleInsertRejected) {
  SpentSet set(GetParam());
  EXPECT_TRUE(set.Insert(Id(42)));
  EXPECT_FALSE(set.Insert(Id(42)));  // the double-redemption signal
  EXPECT_EQ(set.Size(), 1u);
}

TEST_P(SpentSetTest, ManyEntriesAllFound) {
  SpentSet set(GetParam());
  constexpr std::uint64_t kN = 500;
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_TRUE(set.Insert(Id(i)));
  EXPECT_EQ(set.Size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_TRUE(set.Contains(Id(i)));
  for (std::uint64_t i = kN; i < kN + 100; ++i) {
    EXPECT_FALSE(set.Contains(Id(i)));
  }
}

TEST_P(SpentSetTest, MemoryAccountingNonZero) {
  SpentSet set(GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) set.Insert(Id(i));
  EXPECT_GT(set.MemoryBytes(), 100u * 16u / 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SpentSetTest,
                         ::testing::Values(SpentSetBackend::kHashSet,
                                           SpentSetBackend::kSortedVector,
                                           SpentSetBackend::kLinearScan),
                         [](const auto& info) {
                           return std::string(
                               SpentSetBackendName(info.param)) == "hash-set"
                                      ? "HashSet"
                                  : SpentSetBackendName(info.param) ==
                                            std::string("sorted-vector")
                                      ? "SortedVector"
                                      : "LinearScan";
                         });

TEST(SpentSet, BackendsAgree) {
  SpentSet a(SpentSetBackend::kHashSet);
  SpentSet b(SpentSetBackend::kSortedVector);
  SpentSet c(SpentSetBackend::kLinearScan);
  crypto::HmacDrbg rng("agree");
  for (int i = 0; i < 300; ++i) {
    auto id = Id(rng.NextUint64(200));  // collisions on purpose
    bool ra = a.Insert(id);
    bool rb = b.Insert(id);
    bool rc = c.Insert(id);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(rb, rc);
  }
  EXPECT_EQ(a.Size(), b.Size());
  EXPECT_EQ(b.Size(), c.Size());
}

// -- RevocationList -----------------------------------------------------------

class CrlTest : public ::testing::TestWithParam<CrlStrategy> {};

TEST_P(CrlTest, RevokeAndCheck) {
  RevocationList crl(GetParam(), 100);
  EXPECT_FALSE(crl.IsRevoked(Dev(1)));
  crl.Revoke(Dev(1));
  EXPECT_TRUE(crl.IsRevoked(Dev(1)));
  EXPECT_FALSE(crl.IsRevoked(Dev(2)));
  EXPECT_EQ(crl.Size(), 1u);
}

TEST_P(CrlTest, VersionBumpsOncePerNewEntry) {
  RevocationList crl(GetParam(), 100);
  EXPECT_EQ(crl.Version(), 0u);
  crl.Revoke(Dev(1));
  EXPECT_EQ(crl.Version(), 1u);
  crl.Revoke(Dev(1));  // idempotent
  EXPECT_EQ(crl.Version(), 1u);
  crl.Revoke(Dev(2));
  EXPECT_EQ(crl.Version(), 2u);
}

TEST_P(CrlTest, SerializeRoundTrip) {
  RevocationList crl(GetParam(), 100);
  for (std::uint64_t i = 0; i < 50; ++i) crl.Revoke(Dev(i));
  auto bytes = crl.Serialize();
  RevocationList back =
      RevocationList::Deserialize(bytes, CrlStrategy::kSortedSet);
  EXPECT_EQ(back.Version(), crl.Version());
  EXPECT_EQ(back.Size(), crl.Size());
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(back.IsRevoked(Dev(i)));
  EXPECT_FALSE(back.IsRevoked(Dev(99)));
}

TEST_P(CrlTest, EntriesSnapshot) {
  RevocationList crl(GetParam(), 10);
  crl.Revoke(Dev(3));
  crl.Revoke(Dev(7));
  auto entries = crl.Entries();
  EXPECT_EQ(entries.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CrlTest,
                         ::testing::Values(CrlStrategy::kSortedSet,
                                           CrlStrategy::kBloomFronted,
                                           CrlStrategy::kLinearScan));

// -- AppendLog ---------------------------------------------------------------

class AppendLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "append_log_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(AppendLogTest, AppendAndReplay) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({});
    log.Append({9});
    EXPECT_EQ(log.AppendedRecords(), 3u);
  }
  std::vector<std::vector<std::uint8_t>> records;
  std::size_t n = AppendLog::Replay(
      path_, [&records](const std::vector<std::uint8_t>& r) {
        records.push_back(r);
      });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(records[1].empty());
  EXPECT_EQ(records[2], (std::vector<std::uint8_t>{9}));
}

TEST_F(AppendLogTest, MissingFileReplaysNothing) {
  std::size_t n = AppendLog::Replay(path_ + ".nope",
                                    [](const std::vector<std::uint8_t>&) {});
  EXPECT_EQ(n, 0u);
}

TEST_F(AppendLogTest, TornTailStopsCleanly) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({4, 5, 6});
  }
  // Truncate mid-record.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
  std::fclose(f);

  std::vector<std::vector<std::uint8_t>> records;
  std::size_t n = AppendLog::Replay(
      path_, [&records](const std::vector<std::uint8_t>& r) {
        records.push_back(r);
      });
  EXPECT_EQ(n, 1u);  // only the intact first record
  EXPECT_EQ(records[0], (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(AppendLogTest, ReplayWithStatsReportsTornTail) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({4, 5, 6});
  }
  AppendLog::ReplayStats clean = AppendLog::ReplayWithStats(path_, nullptr);
  EXPECT_EQ(clean.delivered, 2u);
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.valid_bytes, 2u * (8 + 3));

  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
  std::fclose(f);

  AppendLog::ReplayStats torn = AppendLog::ReplayWithStats(path_, nullptr);
  EXPECT_EQ(torn.delivered, 1u);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.valid_bytes, 8u + 3u);  // just past the intact record
}

TEST_F(AppendLogTest, ReopenAfterTornTailTruncatesAndStaysReplayable) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3});
    log.Append({4, 5, 6});
  }
  // Crash mid-append: the second record loses its last 2 bytes.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 2), 0);
  std::fclose(f);

  // Reopening for append must truncate the torn tail FIRST — otherwise
  // this append would land behind garbage and be unreplayable forever.
  {
    AppendLog log(path_);
    log.Append({7, 8, 9});
  }
  std::vector<std::vector<std::uint8_t>> records;
  AppendLog::ReplayStats stats = AppendLog::ReplayWithStats(
      path_, [&records](const std::vector<std::uint8_t>& r) {
        records.push_back(r);
      });
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(records[1], (std::vector<std::uint8_t>{7, 8, 9}));
}

TEST_F(AppendLogTest, CorruptPayloadDetectedByCrc) {
  {
    AppendLog log(path_);
    log.Append({1, 2, 3, 4, 5});
  }
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8 + 2, SEEK_SET);  // into the payload
  std::fputc(0xFF, f);
  std::fclose(f);

  std::size_t n =
      AppendLog::Replay(path_, [](const std::vector<std::uint8_t>&) {});
  EXPECT_EQ(n, 0u);
}

TEST_F(AppendLogTest, ReopenAppends) {
  {
    AppendLog log(path_);
    log.Append({1});
  }
  {
    AppendLog log(path_);
    log.Append({2});
  }
  std::vector<std::uint8_t> seen;
  AppendLog::Replay(path_, [&seen](const std::vector<std::uint8_t>& r) {
    seen.push_back(r[0]);
  });
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{1, 2}));
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  std::string s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace store
}  // namespace p2drm
