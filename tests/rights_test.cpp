// Rights expressions: encoding, evaluation, factories.

#include "rel/rights.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace rel {
namespace {

Rights EncodeDecode(const Rights& r) {
  net::ByteWriter w;
  r.Encode(&w);
  net::ByteReader reader(w.Bytes());
  Rights out = Rights::Decode(&reader);
  EXPECT_TRUE(reader.AtEnd());
  return out;
}

TEST(Rights, EncodingRoundTripAllFields) {
  Rights r;
  r.allow_play = true;
  r.allow_display = false;
  r.allow_print = true;
  r.allow_copy = true;
  r.allow_transfer = false;
  r.play_count = 42;
  r.expiry_epoch_s = 1'800'000'000ull;
  r.min_security_level = 3;
  EXPECT_TRUE(EncodeDecode(r) == r);
}

TEST(Rights, EncodingIsCanonical) {
  // Same rights encode to identical bytes (signatures depend on this).
  Rights r = Rights::FullRetail();
  net::ByteWriter w1, w2;
  r.Encode(&w1);
  r.Encode(&w2);
  EXPECT_EQ(w1.Bytes(), w2.Bytes());
}

TEST(Rights, Factories) {
  EXPECT_TRUE(Rights::UnlimitedPlay().allow_play);
  EXPECT_EQ(Rights::UnlimitedPlay().play_count, kUnlimitedPlays);
  EXPECT_EQ(Rights::MeteredPlay(3).play_count, 3u);
  EXPECT_EQ(Rights::Rental(123).expiry_epoch_s, 123u);
  EXPECT_TRUE(Rights::FullRetail().allow_transfer);
  EXPECT_TRUE(Rights::FullRetail().allow_copy);
  EXPECT_FALSE(Rights::UnlimitedPlay().allow_transfer);
}

TEST(Evaluate, GrantsAndDeniesByAction) {
  Rights r = Rights::UnlimitedPlay();
  UsageState s;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 0, 5), Decision::kAllow);
  EXPECT_EQ(Evaluate(r, s, Action::kDisplay, 0, 5), Decision::kAllow);
  EXPECT_EQ(Evaluate(r, s, Action::kCopy, 0, 5), Decision::kDeniedAction);
  EXPECT_EQ(Evaluate(r, s, Action::kTransfer, 0, 5), Decision::kDeniedAction);
  EXPECT_EQ(Evaluate(r, s, Action::kPrint, 0, 5), Decision::kDeniedAction);
}

TEST(Evaluate, PlayCountExhaustion) {
  Rights r = Rights::MeteredPlay(2);
  UsageState s;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 0, 5), Decision::kAllow);
  s.plays_used = 1;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 0, 5), Decision::kAllow);
  s.plays_used = 2;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 0, 5), Decision::kDeniedExhausted);
}

TEST(Evaluate, PlayCountDoesNotLimitDisplay) {
  Rights r = Rights::MeteredPlay(1);
  UsageState s;
  s.plays_used = 99;
  EXPECT_EQ(Evaluate(r, s, Action::kDisplay, 0, 5), Decision::kAllow);
}

TEST(Evaluate, Expiry) {
  Rights r = Rights::Rental(1000);
  UsageState s;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 999, 5), Decision::kAllow);
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 1000, 5), Decision::kAllow);
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 1001, 5), Decision::kDeniedExpired);
}

TEST(Evaluate, NoExpiryNeverExpires) {
  Rights r = Rights::UnlimitedPlay();
  UsageState s;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, ~0ull, 5), Decision::kAllow);
}

TEST(Evaluate, SecurityLevelGate) {
  Rights r = Rights::UnlimitedPlay();
  r.min_security_level = 3;
  UsageState s;
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 0, 2),
            Decision::kDeniedSecurityLevel);
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 0, 3), Decision::kAllow);
}

TEST(Evaluate, SecurityCheckedBeforeExpiry) {
  Rights r = Rights::Rental(10);
  r.min_security_level = 3;
  UsageState s;
  // Both violated: security wins (checked first, deliberate layering).
  EXPECT_EQ(Evaluate(r, s, Action::kPlay, 100, 0),
            Decision::kDeniedSecurityLevel);
}

TEST(Names, Strings) {
  EXPECT_STREQ(ActionName(Action::kPlay), "play");
  EXPECT_STREQ(ActionName(Action::kTransfer), "transfer");
  EXPECT_STREQ(DecisionName(Decision::kAllow), "allow");
  EXPECT_STREQ(DecisionName(Decision::kDeniedExpired), "denied:expired");
  EXPECT_NE(Rights::FullRetail().ToString().find("transfer"),
            std::string::npos);
}

}  // namespace
}  // namespace rel
}  // namespace p2drm
