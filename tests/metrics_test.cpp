// core::GlobalOps / core::AggregateOps: the sharded per-thread crypto-op
// counters behind the RT-2 table. The properties that matter: increments
// from a thread that has EXITED are still in the aggregate (shards are
// retained for the process lifetime), concurrent aggregation while a
// worker increments is well-defined (relaxed atomics — run under TSan by
// CI), and quiesced aggregation is exact.
//
// Every test asserts on DELTAS from a baseline AggregateOps() snapshot:
// the registry is process-global, so absolute values depend on what ran
// before.

#include "core/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace p2drm {
namespace core {
namespace {

TEST(OpCountersTest, DeltaAndTotalArithmetic) {
  OpCounters a;
  a.sign = 10;
  a.verify = 4;
  a.keygen = 1;
  OpCounters b;
  b.sign = 3;
  b.verify = 4;
  OpCounters d = a - b;
  EXPECT_EQ(d.sign, 7u);
  EXPECT_EQ(d.verify, 0u);
  EXPECT_EQ(d.keygen, 1u);
  EXPECT_EQ(d.Total(), 8u);
  EXPECT_NE(d.ToString().find("sign=7"), std::string::npos);
}

TEST(AggregateOpsTest, OwnThreadIncrementsAreAggregated) {
  OpCounters before = AggregateOps();
  GlobalOps().sign.fetch_add(3, std::memory_order_relaxed);
  GlobalOps().hybrid_dec.fetch_add(2, std::memory_order_relaxed);
  OpCounters delta = AggregateOps() - before;
  EXPECT_EQ(delta.sign, 3u);
  EXPECT_EQ(delta.hybrid_dec, 2u);
  EXPECT_EQ(delta.verify, 0u);
}

TEST(AggregateOpsTest, ExitedThreadCountsAreRetained) {
  OpCounters before = AggregateOps();
  std::thread t([] {
    for (int i = 0; i < 1000; ++i) {
      GlobalOps().verify.fetch_add(1, std::memory_order_relaxed);
    }
    GlobalOps().blind_sign.fetch_add(7, std::memory_order_relaxed);
  });
  t.join();
  // The thread is gone; its shard must not be.
  OpCounters delta = AggregateOps() - before;
  EXPECT_EQ(delta.verify, 1000u);
  EXPECT_EQ(delta.blind_sign, 7u);
}

TEST(AggregateOpsTest, ManyThreadsSumExactlyAfterJoin) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  OpCounters before = AggregateOps();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        GlobalOps().sign.fetch_add(1, std::memory_order_relaxed);
      }
      GlobalOps().keygen.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  OpCounters delta = AggregateOps() - before;
  EXPECT_EQ(delta.sign, kThreads * kPerThread);
  EXPECT_EQ(delta.keygen, static_cast<std::uint64_t>(kThreads));
}

TEST(AggregateOpsTest, ConcurrentAggregateIsACleanLowerBound) {
  // The documented contract: aggregating WHILE another thread increments
  // is data-race-free (TSan is the real judge here) and each field is a
  // point-in-time lower bound — so successive aggregates of a
  // monotonically incremented field must themselves be monotone.
  OpCounters before = AggregateOps();
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      GlobalOps().blind_prep.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t now = (AggregateOps() - before).blind_prep;
    EXPECT_GE(now, last);
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // Quiesced: the final aggregate sees everything the writer did.
  EXPECT_GE((AggregateOps() - before).blind_prep, last);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
