// Usage statistics without user tracking: randomized response mechanics,
// estimator accuracy, deniability bounds.

#include "core/usage_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

TEST(RandomizedResponder, RejectsBadProbability) {
  EXPECT_THROW(RandomizedResponder(0.0), std::invalid_argument);
  EXPECT_THROW(RandomizedResponder(-0.5), std::invalid_argument);
  EXPECT_THROW(RandomizedResponder(1.5), std::invalid_argument);
  EXPECT_NO_THROW(RandomizedResponder(1.0));
  EXPECT_THROW(UsageAggregator(0.0), std::invalid_argument);
}

TEST(RandomizedResponder, PEqualsOneIsTruthful) {
  crypto::HmacDrbg rng("rr-truthful");
  RandomizedResponder r(1.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(r.Respond(true, &rng));
    EXPECT_FALSE(r.Respond(false, &rng));
  }
  EXPECT_DOUBLE_EQ(r.ReportConfidence(), 1.0);
}

TEST(RandomizedResponder, LowPFlipsOften) {
  crypto::HmacDrbg rng("rr-flip");
  RandomizedResponder r(0.1);
  int affirmative = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (r.Respond(false, &rng)) ++affirmative;
  }
  // Truth is always false; expected affirmative rate = (1-p)/2 = 0.45.
  EXPECT_NEAR(static_cast<double>(affirmative) / kN, 0.45, 0.03);
}

TEST(RandomizedResponder, ConfidenceBounds) {
  EXPECT_NEAR(RandomizedResponder(0.5).ReportConfidence(), 0.75, 1e-12);
  // As p → 0 a single report approaches a coin flip: full deniability.
  EXPECT_NEAR(RandomizedResponder(0.02).ReportConfidence(), 0.51, 1e-12);
}

TEST(UsageAggregator, ExactWhenTruthful) {
  crypto::HmacDrbg rng("agg-exact");
  RandomizedResponder r(1.0);
  UsageAggregator agg(1.0);
  for (int i = 0; i < 500; ++i) {
    agg.AddReport(7, r.Respond(i % 5 == 0, &rng));  // 100 true plays
  }
  EXPECT_EQ(agg.RawCount(7), 100u);
  EXPECT_EQ(agg.TotalReports(7), 500u);
  EXPECT_DOUBLE_EQ(agg.EstimatedCount(7), 100.0);
}

class EstimatorSweep : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorSweep, EstimateConvergesToTruth) {
  double p = GetParam();
  crypto::HmacDrbg rng("agg-sweep-" + std::to_string(p));
  RandomizedResponder responder(p);
  UsageAggregator agg(p);

  constexpr int kReports = 40000;
  constexpr double kTrueRate = 0.3;
  int true_plays = 0;
  for (int i = 0; i < kReports; ++i) {
    bool played = rng.NextUint64(10) < 10 * kTrueRate;
    if (played) ++true_plays;
    agg.AddReport(1, responder.Respond(played, &rng));
  }
  double estimate = agg.EstimatedCount(1);
  // Standard error ~ sqrt(n)/p; allow 5 sigma.
  double tolerance = 5.0 * std::sqrt(static_cast<double>(kReports)) / p;
  EXPECT_NEAR(estimate, static_cast<double>(true_plays), tolerance)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(TruthProbabilities, EstimatorSweep,
                         ::testing::Values(1.0, 0.75, 0.5, 0.25));

TEST(UsageAggregator, EstimateClampedToValidRange) {
  UsageAggregator agg(0.5);
  // All-negative reports: raw estimator would be negative; clamp to 0.
  for (int i = 0; i < 100; ++i) agg.AddReport(3, false);
  EXPECT_DOUBLE_EQ(agg.EstimatedCount(3), 0.0);
  // All-affirmative: clamp to total.
  UsageAggregator agg2(0.5);
  for (int i = 0; i < 100; ++i) agg2.AddReport(3, true);
  EXPECT_DOUBLE_EQ(agg2.EstimatedCount(3), 100.0);
}

TEST(UsageAggregator, UnknownContentIsZero) {
  UsageAggregator agg(0.5);
  EXPECT_EQ(agg.RawCount(99), 0u);
  EXPECT_EQ(agg.TotalReports(99), 0u);
  EXPECT_DOUBLE_EQ(agg.EstimatedCount(99), 0.0);
}

TEST(UsageAggregator, PerTitleIsolation) {
  crypto::HmacDrbg rng("agg-iso");
  RandomizedResponder r(1.0);
  UsageAggregator agg(1.0);
  agg.AddReport(1, r.Respond(true, &rng));
  agg.AddReport(2, r.Respond(false, &rng));
  EXPECT_EQ(agg.RawCount(1), 1u);
  EXPECT_EQ(agg.RawCount(2), 0u);
}

TEST(UsageStats, AggregateAccuracyWithoutUserTracking) {
  // The paper's requirement in one test: the provider obtains accurate
  // per-title royalty statistics while a single user's report remains
  // deniable.
  crypto::HmacDrbg rng("agg-royalty");
  constexpr double p = 0.5;
  RandomizedResponder responder(p);
  UsageAggregator agg(p);

  // Title 10: 60% of 20000 users played. Title 20: 5%.
  int true10 = 0, true20 = 0;
  for (int u = 0; u < 20000; ++u) {
    bool p10 = rng.NextUint64(100) < 60;
    bool p20 = rng.NextUint64(100) < 5;
    true10 += p10;
    true20 += p20;
    agg.AddReport(10, responder.Respond(p10, &rng));
    agg.AddReport(20, responder.Respond(p20, &rng));
  }
  // Royalty split estimate within a few percent of truth.
  EXPECT_NEAR(agg.EstimatedCount(10) / true10, 1.0, 0.05);
  EXPECT_NEAR(agg.EstimatedCount(20) / true20, 1.0, 0.25);  // rarer → noisier
  // While any individual report carries only 75% confidence.
  EXPECT_DOUBLE_EQ(responder.ReportConfidence(), 0.75);
}

}  // namespace
}  // namespace core
}  // namespace p2drm
