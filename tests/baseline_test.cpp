// Baseline identified DRM: functionality and the privacy leak it models.

#include "baseline/identified_drm.h"

#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : rng_("baseline-test"),
        bank_(512, &rng_),
        drm_(512, &rng_, &clock_, &bank_) {
    bank_.OpenAccount("alice", 500);
    bank_.OpenAccount("bob", 500);
    drm_.RegisterAccount("alice");
    drm_.RegisterAccount("bob");
    plaintext_.assign(128, 0x3c);
    content_ = drm_.Publish("Song", plaintext_, 30, rel::Rights::FullRetail());
  }

  crypto::HmacDrbg rng_;
  core::SimClock clock_;
  core::PaymentProvider bank_;
  IdentifiedDrm drm_;
  std::vector<std::uint8_t> plaintext_;
  rel::ContentId content_ = 0;
};

TEST_F(BaselineTest, PurchaseDebitsAndIssues) {
  auto r = drm_.Purchase("alice", content_);
  ASSERT_EQ(r.status, core::Status::kOk);
  EXPECT_EQ(bank_.Balance("alice"), 470u);
  EXPECT_EQ(bank_.Balance("baseline-cp"), 30u);
  EXPECT_EQ(r.license.content_id, content_);
  EXPECT_TRUE(crypto::RsaVerifyFdh(drm_.PublicKey(),
                                   r.license.CanonicalBytes(),
                                   r.license.issuer_signature));
}

TEST_F(BaselineTest, PurchaseIsFullyLogged) {
  drm_.Purchase("alice", content_);
  ASSERT_EQ(drm_.ActivityLog().size(), 1u);
  const auto& rec = drm_.ActivityLog()[0];
  EXPECT_EQ(rec.kind, ActivityRecord::Kind::kPurchase);
  EXPECT_EQ(rec.account, "alice");  // the privacy leak, by construction
  EXPECT_EQ(rec.content_id, content_);
}

TEST_F(BaselineTest, IdentifiedDebitLogGrows) {
  drm_.Purchase("alice", content_);
  // The bank also knows: account, payee, amount.
  ASSERT_EQ(bank_.DebitLog().size(), 1u);
  EXPECT_EQ(bank_.DebitLog()[0].account, "alice");
  EXPECT_EQ(bank_.DebitLog()[0].payee, "baseline-cp");
}

TEST_F(BaselineTest, UnknownAccountOrContentRejected) {
  EXPECT_EQ(drm_.Purchase("nobody", content_).status,
            core::Status::kUnknownAccount);
  EXPECT_EQ(drm_.Purchase("alice", 999).status,
            core::Status::kUnknownContent);
}

TEST_F(BaselineTest, InsufficientFundsRejected) {
  bank_.OpenAccount("pauper", 1);
  drm_.RegisterAccount("pauper");
  EXPECT_EQ(drm_.Purchase("pauper", content_).status,
            core::Status::kInsufficientFunds);
}

TEST_F(BaselineTest, TransferReassignsOwnershipAndLogsBothSides) {
  auto r = drm_.Purchase("alice", content_);
  ASSERT_EQ(r.status, core::Status::kOk);
  auto t = drm_.Transfer("alice", "bob", r.license.id);
  ASSERT_EQ(t.status, core::Status::kOk);

  // Alice can no longer authorize plays, Bob can.
  std::array<std::uint8_t, 32> key;
  EXPECT_EQ(drm_.AuthorizePlay("alice", r.license.id, &key),
            core::Status::kBadRequest);
  EXPECT_EQ(drm_.AuthorizePlay("bob", t.license.id, &key), core::Status::kOk);

  // The provider logged the social edge: alice → bob.
  bool saw_out = false, saw_in = false;
  for (const auto& rec : drm_.ActivityLog()) {
    if (rec.kind == ActivityRecord::Kind::kTransferOut &&
        rec.account == "alice") {
      saw_out = true;
    }
    if (rec.kind == ActivityRecord::Kind::kTransferIn && rec.account == "bob") {
      saw_in = true;
    }
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in);
}

TEST_F(BaselineTest, TransferRequiresOwnershipAndRight) {
  auto r = drm_.Purchase("alice", content_);
  ASSERT_EQ(r.status, core::Status::kOk);
  EXPECT_EQ(drm_.Transfer("bob", "alice", r.license.id).status,
            core::Status::kBadRequest);

  rel::ContentId locked = drm_.Publish("Locked", plaintext_, 10,
                                       rel::Rights::UnlimitedPlay());
  auto r2 = drm_.Purchase("alice", locked);
  ASSERT_EQ(r2.status, core::Status::kOk);
  EXPECT_EQ(drm_.Transfer("alice", "bob", r2.license.id).status,
            core::Status::kNotTransferable);
}

TEST_F(BaselineTest, AuthorizedPlayDecryptsContent) {
  auto r = drm_.Purchase("alice", content_);
  ASSERT_EQ(r.status, core::Status::kOk);
  std::array<std::uint8_t, 32> key;
  ASSERT_EQ(drm_.AuthorizePlay("alice", r.license.id, &key),
            core::Status::kOk);
  const auto& enc = drm_.GetContent(content_);
  crypto::ChaCha20 cipher(key, enc.nonce);
  EXPECT_EQ(cipher.Crypt(enc.ciphertext), plaintext_);
}

TEST_F(BaselineTest, PlayAuthorizationsAreLoggedToo) {
  auto r = drm_.Purchase("alice", content_);
  std::array<std::uint8_t, 32> key;
  drm_.AuthorizePlay("alice", r.license.id, &key);
  drm_.AuthorizePlay("alice", r.license.id, &key);
  // Purchase + 2 play auths: usage tracking, the paper's §usage-track threat.
  EXPECT_EQ(drm_.ProfileEntries(), 3u);
}

TEST_F(BaselineTest, EveryPurchaseIsLinkableToTheAccount) {
  drm_.Purchase("alice", content_);
  rel::ContentId c2 = drm_.Publish("B", plaintext_, 10, rel::Rights::FullRetail());
  drm_.Purchase("alice", c2);
  // Both records carry the same account string: linkability = 1.
  int alice_recs = 0;
  for (const auto& rec : drm_.ActivityLog()) {
    if (rec.account == "alice") ++alice_recs;
  }
  EXPECT_EQ(alice_recs, 2);
}

}  // namespace
}  // namespace baseline
}  // namespace p2drm
