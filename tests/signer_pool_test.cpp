// Tests for server::SignerPool: the dedicated work-stealing pool the
// streaming pipeline fans the issue stage out to. Covers completion
// across pool sizes, the deterministic steal path (a blocked owner's
// work finishes on a thief), drain-then-exit shutdown with tickets
// outstanding, and the queue-depth/steal metrics. The shutdown and
// steal tests also run under TSan in CI — the pool's sleep/wake and
// per-deque locking contracts are only trusted because the race
// detector agrees.

#include "server/signer_pool.h"

#include <atomic>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "obs/registry.h"

namespace p2drm {
namespace {

TEST(SignerPool, RunAllExecutesEveryItemAcrossPoolSizes) {
  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    server::SignerPool pool(workers);
    ASSERT_EQ(pool.worker_count(), workers);
    const std::size_t n = 101;  // not a multiple of any pool size above
    // Disjoint per-k writes — the Plan::issue contract; RunAll's join
    // establishes the happens-before the plain reads below rely on.
    std::vector<int> hits(n, 0);
    pool.RunAll(n, [&hits](server::SignerContext&, std::size_t k) {
      hits[k] += 1;
    });
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(hits[k], 1) << "workers=" << workers << " k=" << k;
    }
  }
}

TEST(SignerPool, TicketWaitJoinsExactlyItsBatch) {
  server::SignerPool pool(4);
  std::atomic<std::size_t> a{0};
  std::atomic<std::size_t> b{0};
  server::SignerPool::Ticket ta = pool.SubmitBatch(
      64, [&a](server::SignerContext&, std::size_t) { ++a; });
  server::SignerPool::Ticket tb = pool.SubmitBatch(
      32, [&b](server::SignerContext&, std::size_t) { ++b; });
  tb.Wait();
  EXPECT_EQ(b.load(), 32u);
  ta.Wait();
  EXPECT_EQ(a.load(), 64u);
  // Waiting again on a completed ticket is a no-op, not a hang.
  ta.Wait();
}

TEST(SignerPool, BlockedOwnersWorkFinishesOnAThief) {
  server::SignerPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());

  // Batch A: one item; whichever worker picks it up (the owner, or a
  // thief that got there first) parks on the gate.
  std::atomic<std::size_t> parked{99};
  server::SignerPool::Ticket ta = pool.SubmitBatch(
      1, [gate, &parked](server::SignerContext& ctx, std::size_t) {
        parked.store(ctx.index);
        gate.wait();
      });

  // Batch B: one item per worker deque. The parked worker's item can
  // only complete by a steal, so Wait() returning while the gate is
  // still closed proves the free worker stole it.
  std::vector<std::size_t> ran_on(2, 99);
  server::SignerPool::Ticket tb = pool.SubmitBatch(
      2, [&ran_on](server::SignerContext& ctx, std::size_t k) {
        ran_on[k] = ctx.index;
      });
  tb.Wait();
  std::size_t free_worker = 1 - parked.load();
  EXPECT_EQ(ran_on[0], free_worker);
  EXPECT_EQ(ran_on[1], free_worker);
  EXPECT_GE(pool.Steals(), 1u);

  release.set_value();
  ta.Wait();
}

TEST(SignerPool, DestructorDrainsOutstandingTickets) {
  // Shutdown with queued work and NO Wait: the destructor must not exit
  // a worker until every dealt item has run (drain-then-exit), and a
  // ticket held past destruction must observe the completed batch.
  std::atomic<std::size_t> ran{0};
  server::SignerPool::Ticket ticket;
  {
    server::SignerPool pool(3);
    for (int round = 0; round < 8; ++round) {
      ticket = pool.SubmitBatch(
          64, [&ran](server::SignerContext&, std::size_t) {
            ran.fetch_add(1, std::memory_order_relaxed);
          });
    }
  }
  EXPECT_EQ(ran.load(), 8u * 64u);
  ticket.Wait();  // completed during drain; must return immediately
}

TEST(SignerPool, ShutdownRacesStealsCleanly) {
  // Steal-during-shutdown stress (the TSan target): tiny uneven batches
  // keep thieves active while the destructor runs. Every item must run
  // exactly once, every time.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> ran{0};
    {
      server::SignerPool pool(4);
      for (std::size_t b = 1; b <= 5; ++b) {
        pool.SubmitBatch(b * 7, [&ran](server::SignerContext&, std::size_t) {
          ran.fetch_add(1, std::memory_order_relaxed);
        });
      }
    }
    EXPECT_EQ(ran.load(), 7u + 14u + 21u + 28u + 35u);
  }
}

TEST(SignerPool, SimClockAccruesPerWorker) {
  server::SignerPool pool(2);
  pool.RunAll(10, [](server::SignerContext& ctx, std::size_t) {
    ctx.AccrueSimClockUs(5);
  });
  std::uint64_t total = pool.WorkerSimClockUs(0) + pool.WorkerSimClockUs(1);
  EXPECT_EQ(total, 50u);
  EXPECT_GE(pool.MaxWorkerSimClockUs(), 25u);  // one worker did >= half
  EXPECT_LE(pool.MaxWorkerSimClockUs(), 50u);
}

TEST(SignerPool, ObservabilityGaugeZeroAtQuiesceAndStealsExported) {
  obs::Registry registry;
  server::SignerPool pool(2);
  pool.set_observability(&registry, "pool.");
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  server::SignerPool::Ticket park = pool.SubmitBatch(
      1, [gate](server::SignerContext&, std::size_t) { gate.wait(); });
  server::SignerPool::Ticket work = pool.SubmitBatch(
      8, [](server::SignerContext&, std::size_t) {});
  work.Wait();
  release.set_value();
  park.Wait();

  bool saw_gauge = false;
  bool saw_steals = false;
  for (const auto& m : registry.Aggregate()) {
    if (m.name == "pool.queue_depth") {
      saw_gauge = true;
      EXPECT_EQ(m.gauge, 0) << "queue depth must be exact at quiesce";
    }
    if (m.name == "pool.steals") {
      saw_steals = true;
      EXPECT_EQ(m.counter, pool.Steals());
    }
  }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_steals);
}

}  // namespace
}  // namespace p2drm
