// Certificate flavours: serialization, signing, domain separation.

#include "core/certificates.h"

#include <gtest/gtest.h>

#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

const crypto::RsaPrivateKey& CaKey() {
  static const crypto::RsaPrivateKey key = [] {
    crypto::HmacDrbg rng("cert-test-ca");
    return crypto::GenerateRsaKey(512, &rng);
  }();
  return key;
}

crypto::RsaPublicKey SomeKey(const std::string& seed) {
  crypto::HmacDrbg rng(seed);
  return crypto::GenerateRsaKey(256, &rng).PublicKey();
}

TEST(IdentityCert, SerializeRoundTripAndVerify) {
  IdentityCertificate cert;
  cert.holder_name = "Alice Example";
  cert.card_id = 7;
  cert.master_key = SomeKey("alice-master");
  cert.ca_signature = crypto::RsaSignFdh(CaKey(), cert.CanonicalBytes());

  auto bytes = cert.Serialize();
  IdentityCertificate back = IdentityCertificate::Deserialize(bytes);
  EXPECT_EQ(back.holder_name, cert.holder_name);
  EXPECT_EQ(back.card_id, cert.card_id);
  EXPECT_TRUE(back.master_key == cert.master_key);
  EXPECT_TRUE(VerifyIdentityCert(CaKey().PublicKey(), back));
}

TEST(IdentityCert, TamperedFieldsFailVerification) {
  IdentityCertificate cert;
  cert.holder_name = "Alice";
  cert.card_id = 1;
  cert.master_key = SomeKey("k1");
  cert.ca_signature = crypto::RsaSignFdh(CaKey(), cert.CanonicalBytes());

  IdentityCertificate bad = cert;
  bad.holder_name = "Mallory";
  EXPECT_FALSE(VerifyIdentityCert(CaKey().PublicKey(), bad));
  bad = cert;
  bad.card_id = 999;
  EXPECT_FALSE(VerifyIdentityCert(CaKey().PublicKey(), bad));
}

TEST(PseudonymCert, SerializeRoundTripAndVerify) {
  PseudonymCertificate cert;
  cert.pseudonym_key = SomeKey("pseud-1");
  cert.escrow = {1, 2, 3, 4};
  cert.ca_signature = crypto::RsaSignFdh(CaKey(), cert.CanonicalBytes());

  PseudonymCertificate back =
      PseudonymCertificate::Deserialize(cert.Serialize());
  EXPECT_TRUE(back.pseudonym_key == cert.pseudonym_key);
  EXPECT_EQ(back.escrow, cert.escrow);
  EXPECT_TRUE(VerifyPseudonymCert(CaKey().PublicKey(), back));
  EXPECT_EQ(back.KeyId(), cert.pseudonym_key.Fingerprint());
}

TEST(PseudonymCert, EscrowIsCovered) {
  PseudonymCertificate cert;
  cert.pseudonym_key = SomeKey("pseud-2");
  cert.escrow = {1, 2, 3};
  cert.ca_signature = crypto::RsaSignFdh(CaKey(), cert.CanonicalBytes());
  // Swapping the escrow (the de-anonymization hook) must break the cert —
  // otherwise a fraudster could splice in someone else's identity.
  cert.escrow = {9, 9, 9};
  EXPECT_FALSE(VerifyPseudonymCert(CaKey().PublicKey(), cert));
}

TEST(DeviceCert, SerializeRoundTripAndVerify) {
  DeviceCertificate cert;
  cert.device_key = SomeKey("dev-1");
  cert.device_id = cert.device_key.Fingerprint();
  cert.security_level = 3;
  cert.ca_signature = crypto::RsaSignFdh(CaKey(), cert.CanonicalBytes());

  DeviceCertificate back = DeviceCertificate::Deserialize(cert.Serialize());
  EXPECT_EQ(back.security_level, 3);
  EXPECT_EQ(back.device_id, cert.device_id);
  EXPECT_TRUE(VerifyDeviceCert(CaKey().PublicKey(), back));
  // Security level is covered by the signature (a level-0 device must not
  // be able to claim level 3).
  back.security_level = 5;
  EXPECT_FALSE(VerifyDeviceCert(CaKey().PublicKey(), back));
}

TEST(Certificates, DomainSeparationBetweenFlavours) {
  // A signature over an identity certificate must not verify as a
  // pseudonym certificate even with identical field bytes.
  IdentityCertificate id_cert;
  id_cert.holder_name = "x";
  id_cert.card_id = 1;
  id_cert.master_key = SomeKey("shared");
  id_cert.ca_signature = crypto::RsaSignFdh(CaKey(), id_cert.CanonicalBytes());

  PseudonymCertificate pseud;
  pseud.pseudonym_key = id_cert.master_key;
  pseud.escrow = {};
  pseud.ca_signature = id_cert.ca_signature;
  EXPECT_FALSE(VerifyPseudonymCert(CaKey().PublicKey(), pseud));
}

}  // namespace
}  // namespace core
}  // namespace p2drm
