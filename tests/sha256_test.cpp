// SHA-256 against FIPS 180-4 / NIST CAVP vectors.

#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace p2drm {
namespace crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(std::string(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  Digest256 oneshot = Sha256::Hash(msg);
  // Byte-at-a-time.
  Sha256 h;
  for (char c : msg) h.Update(std::string(1, c));
  EXPECT_EQ(DigestToHex(h.Final()), DigestToHex(oneshot));
  EXPECT_EQ(DigestToHex(oneshot),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, ResetReuses) {
  Sha256 h;
  h.Update(std::string("garbage"));
  (void)h.Final();
  h.Reset();
  h.Update(std::string("abc"));
  EXPECT_EQ(DigestToHex(h.Final()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, BoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries must not crash and
  // must differ pairwise.
  std::vector<std::string> hashes;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    hashes.push_back(DigestToHex(Sha256::Hash(std::string(len, 'x'))));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]);
    }
  }
}

TEST(Sha256, DigestToBytesMatches) {
  Digest256 d = Sha256::Hash(std::string("abc"));
  auto bytes = DigestToBytes(d);
  ASSERT_EQ(bytes.size(), 32u);
  EXPECT_EQ(bytes[0], 0xba);
  EXPECT_EQ(bytes[31], 0xad);
}

}  // namespace
}  // namespace crypto
}  // namespace p2drm
