// TTP: fraud evidence verification and conditional de-anonymization.

#include "core/ttp.h"

#include <gtest/gtest.h>

#include "core/certification_authority.h"
#include "core/smartcard.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class TtpTest : public ::testing::Test {
 protected:
  TtpTest()
      : rng_("ttp-test"),
        ca_(512, &rng_),
        ttp_(512, &rng_),
        cp_key_(crypto::GenerateRsaKey(512, &rng_)),
        card_("Bob", 512, &rng_) {
    card_.StoreIdentityCertificate(ca_.Enrol("Bob", card_.MasterKey()));
    PseudonymRequest req =
        card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
    bignum::BigInt sig =
        ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded);
    pseudonym_ = card_.FinishPseudonym(std::move(req), sig, ca_.PublicKey());
  }

  RedemptionTranscript MakeTranscript(std::uint64_t lid_seed,
                                      std::uint64_t ts) {
    RedemptionTranscript t;
    for (int i = 0; i < 16; ++i) {
      t.license_id.bytes[i] = static_cast<std::uint8_t>(lid_seed >> (i % 8));
    }
    t.pseudonym_cert = pseudonym_->cert.Serialize();
    t.timestamp_s = ts;
    t.cp_signature = crypto::RsaSignFdh(cp_key_, t.CanonicalBytes());
    return t;
  }

  crypto::HmacDrbg rng_;
  CertificationAuthority ca_;
  TrustedThirdParty ttp_;
  crypto::RsaPrivateKey cp_key_;
  SmartCard card_;
  Pseudonym* pseudonym_ = nullptr;
};

TEST_F(TtpTest, ValidEvidenceOpensEscrowToCardId) {
  FraudEvidence evidence;
  evidence.first = MakeTranscript(1, 100);
  evidence.second = MakeTranscript(1, 200);  // same lid, later attempt
  auto result = ttp_.OpenEscrow(evidence, cp_key_.PublicKey());
  ASSERT_TRUE(result.opened) << result.reason;
  EXPECT_EQ(result.card_id, card_.CardId());
  EXPECT_EQ(ttp_.OpenedCount(), 1u);
  // The CA can then map the card id to the holder.
  EXPECT_EQ(ca_.HolderName(result.card_id), "Bob");
}

TEST_F(TtpTest, RefusesUnsignedTranscripts) {
  FraudEvidence evidence;
  evidence.first = MakeTranscript(1, 100);
  evidence.second = MakeTranscript(1, 200);
  evidence.second.cp_signature[0] ^= 1;
  auto result = ttp_.OpenEscrow(evidence, cp_key_.PublicKey());
  EXPECT_FALSE(result.opened);
  EXPECT_EQ(ttp_.RefusedCount(), 1u);
  EXPECT_NE(result.reason.find("signature"), std::string::npos);
}

TEST_F(TtpTest, RefusesMismatchedLicenseIds) {
  FraudEvidence evidence;
  evidence.first = MakeTranscript(1, 100);
  evidence.second = MakeTranscript(2, 200);  // different license
  auto result = ttp_.OpenEscrow(evidence, cp_key_.PublicKey());
  EXPECT_FALSE(result.opened);
  EXPECT_NE(result.reason.find("different licenses"), std::string::npos);
}

TEST_F(TtpTest, RefusesIdenticalTranscripts) {
  // Replaying the same transcript twice is not evidence of fraud.
  FraudEvidence evidence;
  evidence.first = MakeTranscript(1, 100);
  evidence.second = evidence.first;
  auto result = ttp_.OpenEscrow(evidence, cp_key_.PublicKey());
  EXPECT_FALSE(result.opened);
  EXPECT_NE(result.reason.find("identical"), std::string::npos);
}

TEST_F(TtpTest, RefusesEvidenceFromWrongProvider) {
  crypto::HmacDrbg other_rng("other-cp");
  crypto::RsaPrivateKey other_cp = crypto::GenerateRsaKey(512, &other_rng);
  FraudEvidence evidence;
  evidence.first = MakeTranscript(1, 100);
  evidence.second = MakeTranscript(1, 200);
  // Verifies under cp_key_ but the TTP is told to check other_cp's key.
  auto result = ttp_.OpenEscrow(evidence, other_cp.PublicKey());
  EXPECT_FALSE(result.opened);
}

TEST_F(TtpTest, HonestUsersAreNeverOpened) {
  // No evidence → no opening. Counter stays zero.
  EXPECT_EQ(ttp_.OpenedCount(), 0u);
}

TEST(Transcript, SerializationRoundTrip) {
  RedemptionTranscript t;
  for (int i = 0; i < 16; ++i) t.license_id.bytes[i] = static_cast<std::uint8_t>(i);
  t.pseudonym_cert = {1, 2, 3};
  t.timestamp_s = 42;
  t.cp_signature = {4, 5};
  RedemptionTranscript back =
      RedemptionTranscript::Deserialize(t.Serialize());
  EXPECT_EQ(back.license_id, t.license_id);
  EXPECT_EQ(back.pseudonym_cert, t.pseudonym_cert);
  EXPECT_EQ(back.timestamp_s, 42u);
  EXPECT_EQ(back.cp_signature, t.cp_signature);

  FraudEvidence e;
  e.first = t;
  e.second = t;
  FraudEvidence eback = FraudEvidence::Deserialize(e.Serialize());
  EXPECT_EQ(eback.first.timestamp_s, 42u);
  EXPECT_EQ(eback.second.pseudonym_cert, t.pseudonym_cert);
}

TEST(EscrowPayload, RoundTripAndLengthCheck) {
  EscrowPayload p;
  p.card_id = 123456;
  for (int i = 0; i < 16; ++i) p.nonce[i] = static_cast<std::uint8_t>(i);
  EscrowPayload back;
  ASSERT_TRUE(EscrowPayload::Deserialize(p.Serialize(), &back));
  EXPECT_EQ(back.card_id, 123456u);
  EXPECT_EQ(back.nonce, p.nonce);
  EXPECT_FALSE(EscrowPayload::Deserialize({1, 2, 3}, &back));
}

}  // namespace
}  // namespace core
}  // namespace p2drm
