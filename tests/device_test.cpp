// Compliant device: license install, rights enforcement, CRL, decryption.

#include "core/device.h"

#include <gtest/gtest.h>

#include "core/certification_authority.h"
#include "core/smartcard.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : rng_("device-test"),
        ca_(512, &rng_),
        ttp_(512, &rng_),
        bank_(512, &rng_),
        cp_(Config(), &rng_, &clock_, &bank_, ca_.PublicKey()),
        card_("Dave", 512, &rng_),
        device_("dave-player", 2, &clock_, &rng_) {
    card_.StoreIdentityCertificate(ca_.Enrol("Dave", card_.MasterKey()));
    device_.InstallCertificate(
        ca_.CertifyDevice(device_.DeviceKey(), device_.security_level()));
    bank_.OpenAccount("dave", 1000);
    plaintext_.assign(256, 0x77);
    content_ = cp_.Publish("Track", plaintext_, 10, rel::Rights::MeteredPlay(2));
  }

  static ContentProviderConfig Config() {
    ContentProviderConfig c;
    c.signing_key_bits = 512;
    return c;
  }

  Pseudonym* NewPseudonym() {
    PseudonymRequest req =
        card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
    bignum::BigInt sig =
        ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded);
    return card_.FinishPseudonym(std::move(req), sig, ca_.PublicKey());
  }

  std::vector<Coin> Pay(std::uint64_t amount) {
    std::vector<Coin> coins;
    for (auto d : PlanCoins(amount)) {
      Coin coin;
      rng_.Fill(coin.serial.data(), coin.serial.size());
      coin.denomination = d;
      const auto& key = bank_.DenominationKey(d);
      auto ctx = crypto::BlindMessage(key, coin.CanonicalBytes(), &rng_);
      bignum::BigInt blind_sig;
      EXPECT_EQ(bank_.Withdraw("dave", d, ctx.blinded, &blind_sig),
                Status::kOk);
      coin.signature = crypto::Unblind(key, ctx, blind_sig);
      coins.push_back(std::move(coin));
    }
    return coins;
  }

  rel::License Buy(Pseudonym* p) {
    auto r = cp_.Purchase(p->cert, content_, Pay(10));
    EXPECT_EQ(r.status, Status::kOk);
    return r.license;
  }

  crypto::HmacDrbg rng_;
  SimClock clock_;
  CertificationAuthority ca_;
  TrustedThirdParty ttp_;
  PaymentProvider bank_;
  ContentProvider cp_;
  SmartCard card_;
  CompliantDevice device_;
  std::vector<std::uint8_t> plaintext_;
  rel::ContentId content_ = 0;
};

TEST_F(DeviceTest, CertificateVerifies) {
  EXPECT_TRUE(VerifyDeviceCert(ca_.PublicKey(), device_.Certificate()));
  EXPECT_EQ(device_.Certificate().security_level, 2);
}

TEST_F(DeviceTest, InstallRejectsForgedLicense) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);
  lic.rights.play_count = rel::kUnlimitedPlays;  // tamper: unlimited plays
  EXPECT_FALSE(device_.InstallLicense(lic, cp_.PublicKey()));
  EXPECT_TRUE(device_.LicensesFor(content_).empty());
}

TEST_F(DeviceTest, PlayDecryptsToOriginalPlaintext) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));

  UseResult r = device_.Use(content_, rel::Action::kPlay, &card_,
                            cp_.GetContent(content_));
  ASSERT_EQ(r.decision, rel::Decision::kAllow) << r.error;
  EXPECT_EQ(r.plaintext, plaintext_);
  EXPECT_EQ(device_.PlaysUsed(lic.id), 1u);
}

TEST_F(DeviceTest, PlayMeterExhausts) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);  // metered: 2 plays
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));
  auto enc = cp_.GetContent(content_);
  EXPECT_EQ(device_.Use(content_, rel::Action::kPlay, &card_, enc).decision,
            rel::Decision::kAllow);
  EXPECT_EQ(device_.Use(content_, rel::Action::kPlay, &card_, enc).decision,
            rel::Decision::kAllow);
  EXPECT_EQ(device_.Use(content_, rel::Action::kPlay, &card_, enc).decision,
            rel::Decision::kDeniedExhausted);
  EXPECT_EQ(device_.PlaysUsed(lic.id), 2u);
}

TEST_F(DeviceTest, RentalExpiresWithClock) {
  rel::ContentId rental =
      cp_.Publish("Rental", plaintext_, 5,
                  rel::Rights::Rental(clock_.NowEpochSeconds() + 100));
  Pseudonym* p = NewPseudonym();
  auto r = cp_.Purchase(p->cert, rental, Pay(5));
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_TRUE(device_.InstallLicense(r.license, cp_.PublicKey()));
  auto enc = cp_.GetContent(rental);

  EXPECT_EQ(device_.Use(rental, rel::Action::kPlay, &card_, enc).decision,
            rel::Decision::kAllow);
  clock_.Advance(101);
  EXPECT_EQ(device_.Use(rental, rel::Action::kPlay, &card_, enc).decision,
            rel::Decision::kDeniedExpired);
}

TEST_F(DeviceTest, SecurityLevelEnforced) {
  rel::Rights strict = rel::Rights::UnlimitedPlay();
  strict.min_security_level = 5;  // device is level 2
  rel::ContentId hd = cp_.Publish("HD", plaintext_, 5, strict);
  Pseudonym* p = NewPseudonym();
  auto r = cp_.Purchase(p->cert, hd, Pay(5));
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_TRUE(device_.InstallLicense(r.license, cp_.PublicKey()));
  EXPECT_EQ(device_
                .Use(hd, rel::Action::kPlay, &card_, cp_.GetContent(hd))
                .decision,
            rel::Decision::kDeniedSecurityLevel);
}

TEST_F(DeviceTest, NoLicenseNoPlay) {
  UseResult r = device_.Use(content_, rel::Action::kPlay, &card_,
                            cp_.GetContent(content_));
  EXPECT_NE(r.decision, rel::Decision::kAllow);
  EXPECT_TRUE(r.plaintext.empty());
}

TEST_F(DeviceTest, WrongCardCannotDecrypt) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));
  // A different card without the pseudonym's private key.
  SmartCard other("Eve", 512, &rng_);
  UseResult r = device_.Use(content_, rel::Action::kPlay, &other,
                            cp_.GetContent(content_));
  EXPECT_NE(r.decision, rel::Decision::kAllow);
  EXPECT_TRUE(r.plaintext.empty());
}

TEST_F(DeviceTest, CrlBlocksRevokedPseudonym) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));

  cp_.Revoke(p->cert.KeyId());
  device_.UpdateCrl(cp_.Crl());
  EXPECT_EQ(device_.CrlVersion(), cp_.Crl().Version());

  UseResult r = device_.Use(content_, rel::Action::kPlay, &card_,
                            cp_.GetContent(content_));
  EXPECT_NE(r.decision, rel::Decision::kAllow);
  EXPECT_NE(r.error.find("revoked"), std::string::npos);
}

TEST_F(DeviceTest, StaleCrlIgnored) {
  cp_.Revoke(rel::KeyFingerprint{});  // version 1
  device_.UpdateCrl(cp_.Crl());
  std::uint64_t v = device_.CrlVersion();
  // Re-applying the same snapshot does not regress.
  device_.UpdateCrl(cp_.Crl());
  EXPECT_EQ(device_.CrlVersion(), v);
}

TEST_F(DeviceTest, MismatchedContentBlobRejected) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));
  rel::ContentId other =
      cp_.Publish("Other", plaintext_, 5, rel::Rights::UnlimitedPlay());
  UseResult r = device_.Use(content_, rel::Action::kPlay, &card_,
                            cp_.GetContent(other));
  EXPECT_NE(r.decision, rel::Decision::kAllow);
}

TEST_F(DeviceTest, TransferActionNeedsTransferRight) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);  // MeteredPlay: no transfer right
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));
  UseResult r = device_.Use(content_, rel::Action::kTransfer, &card_,
                            cp_.GetContent(content_));
  EXPECT_EQ(r.decision, rel::Decision::kDeniedAction);
}

TEST_F(DeviceTest, FindAndRemoveLicense) {
  Pseudonym* p = NewPseudonym();
  rel::License lic = Buy(p);
  ASSERT_TRUE(device_.InstallLicense(lic, cp_.PublicKey()));
  EXPECT_NE(device_.FindLicense(lic.id), nullptr);
  EXPECT_TRUE(device_.RemoveLicense(lic.id));
  EXPECT_EQ(device_.FindLicense(lic.id), nullptr);
  EXPECT_FALSE(device_.RemoveLicense(lic.id));
}

}  // namespace
}  // namespace core
}  // namespace p2drm
