// Anonymous non-repudiation: orders, receipts, dispute resolution.

#include "core/receipts.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/certification_authority.h"
#include "core/ttp.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace core {
namespace {

class ReceiptsTest : public ::testing::Test {
 protected:
  ReceiptsTest()
      : rng_("receipts-test"),
        ca_(512, &rng_),
        ttp_(512, &rng_),
        provider_key_(crypto::GenerateRsaKey(512, &rng_)),
        card_("Grace", 512, &rng_) {
    card_.StoreIdentityCertificate(ca_.Enrol("Grace", card_.MasterKey()));
    PseudonymRequest req =
        card_.BeginPseudonym(ca_.PublicKey(), ttp_.EscrowKey());
    bignum::BigInt sig =
        ca_.SignPseudonymBlinded(card_.CardId(), req.blinding.blinded);
    pseudonym_ = card_.FinishPseudonym(std::move(req), sig, ca_.PublicKey());
    license_id_.bytes.fill(0xaa);
  }

  /// Runs the full order→receipt flow and returns all artifacts.
  void MakeEvidence(PurchaseOrder* order, PurchaseReceipt* receipt,
                    CommitmentOpening* opening) {
    ASSERT_TRUE(CreateOrder(&card_, pseudonym_->cert.KeyId(), 42, 30, 1000,
                            &rng_, order, opening));
    *receipt = IssueReceipt(provider_key_, *order, license_id_, 1001);
  }

  crypto::HmacDrbg rng_;
  CertificationAuthority ca_;
  TrustedThirdParty ttp_;
  crypto::RsaPrivateKey provider_key_;
  SmartCard card_;
  Pseudonym* pseudonym_ = nullptr;
  rel::LicenseId license_id_;
};

TEST_F(ReceiptsTest, ValidEvidenceHolds) {
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);
  EXPECT_EQ(ResolveDispute(order, receipt, pseudonym_->cert.pseudonym_key,
                           provider_key_.PublicKey(), &opening),
            DisputeVerdict::kEvidenceHolds);
  // Without self-de-anonymization the structural checks still pass.
  EXPECT_EQ(ResolveDispute(order, receipt, pseudonym_->cert.pseudonym_key,
                           provider_key_.PublicKey(), nullptr),
            DisputeVerdict::kEvidenceHolds);
}

TEST_F(ReceiptsTest, SerializationRoundTrips) {
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);

  PurchaseOrder order2 = PurchaseOrder::Deserialize(order.Serialize());
  PurchaseReceipt receipt2 = PurchaseReceipt::Deserialize(receipt.Serialize());
  EXPECT_EQ(ResolveDispute(order2, receipt2, pseudonym_->cert.pseudonym_key,
                           provider_key_.PublicKey(), &opening),
            DisputeVerdict::kEvidenceHolds);
}

TEST_F(ReceiptsTest, BuyerCannotRepudiateOrder) {
  // The order verifies only under the buyer's pseudonym key: "I never
  // ordered this" fails against the NRO.
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);
  crypto::HmacDrbg other_rng("other");
  auto other_key = crypto::GenerateRsaKey(512, &other_rng).PublicKey();
  EXPECT_EQ(ResolveDispute(order, receipt, other_key,
                           provider_key_.PublicKey(), nullptr),
            DisputeVerdict::kBadOrderSignature);
}

TEST_F(ReceiptsTest, ProviderCannotRepudiateReceipt) {
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);
  crypto::HmacDrbg other_rng("other-cp");
  auto other_cp = crypto::GenerateRsaKey(512, &other_rng).PublicKey();
  EXPECT_EQ(ResolveDispute(order, receipt, pseudonym_->cert.pseudonym_key,
                           other_cp, nullptr),
            DisputeVerdict::kBadReceiptSignature);
}

TEST_F(ReceiptsTest, TamperedOrderDetected) {
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);
  order.price = 1;  // buyer claims a lower price after the fact
  EXPECT_EQ(ResolveDispute(order, receipt, pseudonym_->cert.pseudonym_key,
                           provider_key_.PublicKey(), nullptr),
            DisputeVerdict::kBadOrderSignature);
}

TEST_F(ReceiptsTest, ReceiptForDifferentOrderDetected) {
  PurchaseOrder order1, order2;
  PurchaseReceipt receipt1, receipt2;
  CommitmentOpening o1, o2;
  MakeEvidence(&order1, &receipt1, &o1);
  MakeEvidence(&order2, &receipt2, &o2);
  // Pairing order2 with receipt1 must fail the binding check.
  EXPECT_EQ(ResolveDispute(order2, receipt1, pseudonym_->cert.pseudonym_key,
                           provider_key_.PublicKey(), nullptr),
            DisputeVerdict::kMismatchedReceipt);
}

TEST_F(ReceiptsTest, WrongOpeningDetected) {
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);
  CommitmentOpening forged = opening;
  forged.nonce[0] ^= 1;
  EXPECT_EQ(ResolveDispute(order, receipt, pseudonym_->cert.pseudonym_key,
                           provider_key_.PublicKey(), &forged),
            DisputeVerdict::kBadCommitmentOpening);
}

TEST_F(ReceiptsTest, CommitmentHidesPseudonym) {
  // The order (what the resolver might see before the buyer opens) must
  // not contain the pseudonym fingerprint in the clear.
  PurchaseOrder order;
  PurchaseReceipt receipt;
  CommitmentOpening opening;
  MakeEvidence(&order, &receipt, &opening);
  auto serialized = order.Serialize();
  auto fp = pseudonym_->cert.KeyId();
  EXPECT_EQ(std::search(serialized.begin(), serialized.end(), fp.begin(),
                        fp.end()),
            serialized.end());
  // Distinct orders from the same pseudonym have distinct commitments
  // (fresh nonce): receipts do not link purchases either.
  PurchaseOrder order2;
  PurchaseReceipt receipt2;
  CommitmentOpening opening2;
  MakeEvidence(&order2, &receipt2, &opening2);
  EXPECT_NE(order.buyer_commitment, order2.buyer_commitment);
}

TEST_F(ReceiptsTest, CardWithoutPseudonymCannotOrder) {
  SmartCard stranger("stranger", 512, &rng_);
  PurchaseOrder order;
  CommitmentOpening opening;
  EXPECT_FALSE(CreateOrder(&stranger, pseudonym_->cert.KeyId(), 1, 1, 0,
                           &rng_, &order, &opening));
}

}  // namespace
}  // namespace core
}  // namespace p2drm
