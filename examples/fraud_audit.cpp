// Fraud audit: conditional anonymity under attack.
//
// Demonstrates the full abuse-handling pipeline: a cheater double-redeems
// a bearer license; the provider assembles signed fraud evidence; the TTP
// verifies it and opens the identity escrow; the pseudonym is revoked and
// devices refuse it after a CRL sync. It also demonstrates what the TTP
// will NOT do: open escrows on flimsy or forged evidence.

#include <cstdio>

#include "core/agent.h"
#include "core/protocol.h"
#include "core/system.h"
#include "crypto/drbg.h"

using namespace p2drm;        // NOLINT
using namespace p2drm::core;  // NOLINT

int main() {
  crypto::HmacDrbg rng("fraud-audit");

  SystemConfig config;
  config.ca_key_bits = 512;
  config.ttp_key_bits = 512;
  config.bank_key_bits = 512;
  config.cp.signing_key_bits = 512;
  P2drmSystem system(config, &rng);

  rel::ContentId film = system.cp().Publish(
      "Film", std::vector<std::uint8_t>(4096, 0x0f), 40,
      rel::Rights::FullRetail());

  AgentConfig acfg;
  acfg.pseudonym_bits = 512;
  UserAgent alice("alice", acfg, &system, &rng);
  UserAgent mallory("mallory", acfg, &system, &rng);
  UserAgent victim("victim", acfg, &system, &rng);

  // Mallory legitimately receives a bearer license from Alice…
  rel::License lic;
  if (alice.BuyContent(film, &lic) != Status::kOk) return 1;
  std::vector<std::uint8_t> bearer;
  if (alice.GiveLicense(lic.id, &bearer) != Status::kOk) return 1;
  std::puts("[setup] alice bought the film and produced a bearer license");

  // …redeems it, keeps a copy, and sells the copy to a victim.
  if (mallory.ReceiveLicense(bearer, nullptr) != Status::kOk) return 1;
  std::puts("[fraud] mallory redeemed the bearer license AND kept a copy");

  system.clock().Advance(3600);
  Status s = victim.ReceiveLicense(bearer, nullptr);
  std::printf("[fraud] victim tries to redeem the copy: %s\n",
              StatusName(s));

  // The provider now holds two conflicting provider-signed transcripts.
  std::printf("[cp]    double-redemption attempts on record: %llu\n",
              static_cast<unsigned long long>(
                  system.cp().DoubleRedemptionAttempts()));

  // Honest users were never at risk: before processing, zero escrows open.
  std::printf("[ttp]   escrows opened so far: %llu (honest users stay "
              "anonymous)\n",
              static_cast<unsigned long long>(system.ttp().OpenedCount()));

  // Fraud pipeline: evidence → TTP → identity → revocation.
  auto identified = system.ProcessFraud();
  if (identified.empty()) {
    std::puts("[ttp]   no escrow opened — unexpected");
    return 1;
  }
  std::printf("[ttp]   evidence verified; escrow opened -> card %llu "
              "(holder: %s)\n",
              static_cast<unsigned long long>(identified[0]),
              system.ca().HolderName(identified[0]).c_str());
  std::printf("[cp]    offending pseudonym revoked; CRL version %llu, "
              "%zu entries\n",
              static_cast<unsigned long long>(system.cp().Crl().Version()),
              system.cp().Crl().Size());

  // Note: the opened escrow belongs to the *second* redeemer — the party
  // who presented the already-spent license. In this scenario that is the
  // victim of Mallory's resale; the paper's dispute process would continue
  // out of band from this cryptographic starting point.

  // Devices enforce the revocation after a CRL sync.
  victim.SyncCrl();
  std::puts("[dev]   victim's device synced the CRL");

  // The TTP refuses to open escrows without real evidence: replaying one
  // transcript twice is not a conflict.
  auto evidence = system.cp().TakeFraudEvidence();  // queue is now empty
  std::printf("[ttp]   refused %llu malformed/insufficient requests so far\n",
              static_cast<unsigned long long>(system.ttp().RefusedCount()));

  // Forge an evidence pair with an unsigned transcript and watch it bounce.
  FraudEvidence forged;
  forged.first.license_id.bytes.fill(7);
  forged.first.pseudonym_cert = {1, 2, 3};
  forged.first.cp_signature = {9, 9};
  forged.second = forged.first;
  forged.second.timestamp_s = 1;
  protocol::OpenEscrowRequest req;
  req.evidence = forged;
  net::Rpc auditor(&system.transport(), "auditor");
  auto resp = auditor.Call(P2drmSystem::kTtpEndpoint, req);
  if (!resp.ok()) {
    // The TTP handler answers kOk with opened=false for bad evidence; a
    // non-kOk status here means the infrastructure itself broke.
    std::printf("[ttp]   unexpected RPC failure: %s\n",
                StatusName(resp.status));
    return 2;
  }
  std::printf("[ttp]   forged evidence: opened=%s (%s)\n",
              resp.value.opened ? "yes" : "no", resp.value.reason.c_str());
  return resp.value.opened ? 1 : 0;
}
