// Authorized domain: a household shares content privately.
//
// A domain manager (the "home hub") buys licenses anonymously and serves
// the family's devices. The provider sees a single pseudonymous customer;
// which devices belong to the household — and how many — stays inside the
// home. Compliance still holds: the domain is size-bounded, revoked
// devices are expelled on CRL sync, and the play meter is shared
// domain-wide. Also demonstrates a star license: the parent caps the
// kids' plays on the family device.

#include <cstdio>

#include "core/delegation.h"
#include "core/domain.h"
#include "core/system.h"
#include "crypto/drbg.h"

using namespace p2drm;        // NOLINT
using namespace p2drm::core;  // NOLINT

int main() {
  crypto::HmacDrbg rng("authorized-domain");

  SystemConfig config;
  config.ca_key_bits = 512;
  config.ttp_key_bits = 512;
  config.bank_key_bits = 512;
  config.cp.signing_key_bits = 512;
  P2drmSystem system(config, &rng);

  rel::ContentId film = system.cp().Publish(
      "Family Film", std::vector<std::uint8_t>(2048, 0x46), 20,
      rel::Rights::MeteredPlay(5));

  // The home hub: one anonymous customer from the provider's viewpoint.
  DomainConfig dcfg;
  dcfg.max_members = 3;
  dcfg.agent.pseudonym_bits = 512;
  dcfg.agent.initial_bank_balance = 500;
  DomainManager hub("home-hub", dcfg, &system, &rng);

  // Three household devices register with the hub — locally.
  CompliantDevice tv("living-room-tv", 3, &system.clock(), &rng);
  CompliantDevice tablet("tablet", 2, &system.clock(), &rng);
  CompliantDevice phone("phone", 2, &system.clock(), &rng);
  for (CompliantDevice* d : {&tv, &tablet, &phone}) {
    DeviceCertificate cert =
        system.ca().CertifyDevice(d->DeviceKey(), d->security_level());
    d->InstallCertificate(cert);
    std::printf("[hub] %s joins: %s\n", d->name().c_str(),
                StatusName(hub.Join(d->Certificate())));
  }

  // A fourth device bounces off the compliance bound.
  CompliantDevice extra("fourth-screen", 2, &system.clock(), &rng);
  extra.InstallCertificate(
      system.ca().CertifyDevice(extra.DeviceKey(), 2));
  std::printf("[hub] fourth device joins: %s (domain full)\n",
              StatusName(hub.Join(extra.Certificate())));

  // One anonymous purchase serves the whole household.
  std::printf("\n[hub] buys the film anonymously: %s\n",
              StatusName(hub.AcquireContent(film)));
  std::printf("[cp]  pseudonyms seen: %zu — membership invisible\n",
              system.cp().DistinctPseudonymsSeen());

  // Family movie night: TV plays, tablet plays; the meter is shared.
  for (const auto* d : {&tv, &tablet}) {
    UseResult r = hub.MemberPlay(d->Id(), film);
    std::printf("[%s] plays: %s (%zu bytes)\n", d->name().c_str(),
                rel::DecisionName(r.decision), r.plaintext.size());
  }
  std::printf("[hub] domain plays used: %u of 5\n",
              hub.DomainPlaysUsed(film));

  // A stranger's device gets nothing.
  UseResult denied = hub.MemberPlay(extra.Id(), film);
  std::printf("[hub] outsider device: %s\n", denied.error.c_str());

  // Revocation propagates into the home.
  system.cp().Revoke(tablet.Id());
  hub.SyncCrl();
  std::printf("\n[hub] after CRL sync, tablet is member: %s\n",
              hub.IsMember(tablet.Id()) ? "yes" : "no");

  std::printf("\nprovider knows: one pseudonym bought one film. It cannot "
              "tell a household\nof three from a single paranoid user — "
              "that is the private-domain property.\n");
  return 0;
}
