// Music store: a realistic multi-user storefront scenario.
//
// Several customers buy Zipf-popular tracks under different pseudonym
// policies, play them on their devices, and the example then prints the
// store's-eye view: what the provider could profile, versus what it would
// know with a conventional identified DRM. This is the scenario the
// paper's introduction motivates — retail content distribution without
// customer profiling.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/agent.h"
#include "core/system.h"
#include "crypto/drbg.h"
#include "sim/linkability.h"
#include "sim/zipf.h"

using namespace p2drm;        // NOLINT
using namespace p2drm::core;  // NOLINT

int main() {
  crypto::HmacDrbg rng("music-store");

  SystemConfig config;
  config.ca_key_bits = 512;
  config.ttp_key_bits = 512;
  config.bank_key_bits = 512;
  config.cp.signing_key_bits = 512;
  P2drmSystem store(config, &rng);

  // Catalog: ten tracks at various prices, full retail rights.
  const char* titles[] = {"Overture", "Nocturne",  "Prelude", "Fugue",
                          "Sonata",   "Rhapsody",  "Etude",   "Waltz",
                          "Mazurka",  "Capriccio"};
  std::vector<rel::ContentId> catalog;
  for (int i = 0; i < 10; ++i) {
    catalog.push_back(store.cp().Publish(
        titles[i], std::vector<std::uint8_t>(2048, static_cast<std::uint8_t>(i)),
        5 + 3 * (i % 4), rel::Rights::FullRetail()));
  }
  std::printf("catalog: %zu tracks published\n\n", catalog.size());

  // Customers with different privacy postures.
  AgentConfig paranoid;  // fresh pseudonym every purchase
  paranoid.pseudonym_bits = 512;
  paranoid.pseudonym_max_uses = 1;
  AgentConfig casual = paranoid;  // reuses each pseudonym 5 times
  casual.pseudonym_max_uses = 5;

  struct Customer {
    std::unique_ptr<UserAgent> agent;
    std::uint64_t true_id;
  };
  std::vector<Customer> customers;
  customers.push_back({std::make_unique<UserAgent>("ada", paranoid, &store, &rng), 0});
  customers.push_back({std::make_unique<UserAgent>("bob", paranoid, &store, &rng), 1});
  customers.push_back({std::make_unique<UserAgent>("cyd", casual, &store, &rng), 2});
  customers.push_back({std::make_unique<UserAgent>("dee", casual, &store, &rng), 3});

  // Shopping spree: each customer buys 6 Zipf-popular tracks and plays
  // each once.
  sim::ZipfGenerator zipf(catalog.size(), 1.0);
  std::vector<sim::Observation> provider_view;
  int purchases = 0, plays = 0;
  for (int round = 0; round < 6; ++round) {
    for (auto& c : customers) {
      rel::ContentId track = catalog[zipf.Next(&rng)];
      rel::License lic;
      if (c.agent->BuyContent(track, &lic) != Status::kOk) continue;
      ++purchases;
      provider_view.push_back(
          {c.true_id,
           std::string(lic.bound_key.begin(), lic.bound_key.end())});
      if (c.agent->Play(track).decision == rel::Decision::kAllow) ++plays;
    }
  }
  std::printf("activity: %d purchases, %d plays across %zu customers\n\n",
              purchases, plays, customers.size());

  // The store's-eye view.
  auto report = sim::AnalyzeLinkability(provider_view);
  std::printf("what the provider can see (P2DRM):\n");
  std::printf("  distinct credentials observed : %zu\n",
              report.distinct_credentials);
  std::printf("  longest linkable profile      : %zu purchases\n",
              report.largest_profile);
  std::printf("  same-customer pair linkability: %.3f\n", report.linkability);
  std::printf("  identities in provider state  : 0 (pseudonyms only)\n");
  std::printf("  identified bank debit records : %zu (e-cash leaves none)\n\n",
              store.bank().DebitLog().size());

  std::printf("what an identified DRM would know instead:\n");
  std::printf("  every row above keyed by account name; linkability 1.000,\n"
              "  profile length = full purchase history, plus a bank debit\n"
              "  row per purchase naming customer and store.\n\n");

  std::printf("note the policy difference: ada/bob (fresh pseudonyms) are\n"
              "unlinkable; cyd/dee (pseudonym reused 5x) leak short "
              "profiles.\n");
  return 0;
}
