// Quickstart: the minimal happy path through the public API.
//
// Builds the whole P2DRM system (CA, TTP, bank, content provider) on an
// in-process transport, creates one user, and walks through: publish →
// anonymous purchase → local playback. Start here.

#include <cstdio>

#include "core/agent.h"
#include "core/system.h"
#include "crypto/drbg.h"

using namespace p2drm;        // NOLINT
using namespace p2drm::core;  // NOLINT

int main() {
  // Deterministic randomness so the example is reproducible; use
  // crypto::SystemRandom for real entropy.
  crypto::HmacDrbg rng("quickstart");

  // 1. Stand up the infrastructure. 512-bit keys keep the demo snappy —
  //    they are NOT a secure parameter choice.
  SystemConfig config;
  config.ca_key_bits = 512;
  config.ttp_key_bits = 512;
  config.bank_key_bits = 512;
  config.cp.signing_key_bits = 512;
  P2drmSystem system(config, &rng);
  std::puts("[1] infrastructure up: CA, TTP, bank, content provider");

  // 2. The provider publishes a track: content is encrypted at publish
  //    time; the ciphertext itself is freely distributable.
  std::vector<std::uint8_t> master_recording(1024, 0x2a);
  rel::ContentId track = system.cp().Publish(
      "Demo Track", master_recording, /*price=*/15,
      rel::Rights::FullRetail());
  std::printf("[2] published \"Demo Track\" (content id %llu, price 15)\n",
              static_cast<unsigned long long>(track));

  // 3. A user joins: smart card enrolment and device certification happen
  //    inside the constructor, over the wire.
  AgentConfig agent_config;
  agent_config.pseudonym_bits = 512;
  agent_config.pseudonym_max_uses = 1;  // fresh pseudonym per purchase
  UserAgent alice("alice", agent_config, &system, &rng);
  std::puts("[3] alice enrolled: card certified, device certified");

  // 4. Anonymous purchase. Under the hood: blind pseudonym certificate,
  //    blind-signed e-cash, anonymous channel to the provider.
  rel::License license;
  Status status = alice.BuyContent(track, &license);
  if (status != Status::kOk) {
    std::printf("purchase failed: %s\n", StatusName(status));
    return 1;
  }
  std::printf("[4] purchased anonymously; license %s...\n",
              license.id.ToHex().substr(0, 12).c_str());
  std::printf("    provider saw %zu distinct pseudonym(s), 0 identities\n",
              system.cp().DistinctPseudonymsSeen());

  // 5. Play it. The device checks the license, the card unwraps the
  //    content key, and the plaintext comes back.
  UseResult result = alice.Play(track);
  if (result.decision != rel::Decision::kAllow) {
    std::printf("playback denied: %s\n", result.error.c_str());
    return 1;
  }
  bool intact = result.plaintext == master_recording;
  std::printf("[5] played %zu bytes, matches master recording: %s\n",
              result.plaintext.size(), intact ? "yes" : "NO");
  return intact ? 0 : 1;
}
