// Dispute resolution and royalty statistics — the two "economics" pieces
// of privacy-preserving DRM.
//
// Part 1: an anonymous buyer and the provider exchange non-repudiation
// evidence (signed order + signed receipt). When the provider later denies
// the sale, the buyer wins the dispute without ever having identified
// themselves at purchase time — they self-de-anonymize only to the
// resolver, by opening a commitment.
//
// Part 2: devices report play events through randomized response; the
// provider computes accurate per-title royalty shares while no individual
// report can be held against a user.

#include <cstdio>

#include "core/agent.h"
#include "core/receipts.h"
#include "core/system.h"
#include "core/usage_stats.h"
#include "crypto/drbg.h"

using namespace p2drm;        // NOLINT
using namespace p2drm::core;  // NOLINT

int main() {
  crypto::HmacDrbg rng("dispute-royalties");

  SystemConfig config;
  config.ca_key_bits = 512;
  config.ttp_key_bits = 512;
  config.bank_key_bits = 512;
  config.cp.signing_key_bits = 512;
  P2drmSystem system(config, &rng);

  rel::ContentId song = system.cp().Publish(
      "Hit Single", std::vector<std::uint8_t>(1024, 0x33), 12,
      rel::Rights::FullRetail());

  AgentConfig acfg;
  acfg.pseudonym_bits = 512;
  UserAgent alice("alice", acfg, &system, &rng);

  // ---- Part 1: anonymous non-repudiation ---------------------------------
  std::puts("== dispute resolution ==");
  rel::License lic;
  if (alice.BuyContent(song, &lic) != Status::kOk) return 1;
  Pseudonym* pseudonym = alice.card().FindPseudonym(lic.bound_key);

  // Buyer builds a signed order (NRO) with a hidden-identity commitment…
  PurchaseOrder order;
  CommitmentOpening opening;
  if (!CreateOrder(&alice.card(), lic.bound_key, song, 12,
                   system.clock().NowEpochSeconds(), &rng, &order,
                   &opening)) {
    return 1;
  }
  std::puts("[alice] signed purchase order (pseudonym hidden behind a "
            "commitment)");

  // …and the provider issues a receipt (NRR) binding order → license.
  // (Stand-in provider key: in the wire protocol this runs next to
  // Purchase; here we show the artifact flow.)
  crypto::HmacDrbg cp_rng("cp-receipt-key");
  crypto::RsaPrivateKey cp_key = crypto::GenerateRsaKey(512, &cp_rng);
  PurchaseReceipt receipt = IssueReceipt(
      cp_key, order, lic.id, system.clock().NowEpochSeconds());
  std::puts("[cp]    issued signed receipt binding the order to the license");

  // Months later: "we never sold you that license."
  DisputeVerdict verdict =
      ResolveDispute(order, receipt, pseudonym->cert.pseudonym_key,
                     cp_key.PublicKey(), &opening);
  std::printf("[court] verdict: %s — the receipt is undeniable, and alice "
              "proved the\n        order was hers by opening the "
              "commitment to the resolver only\n",
              DisputeVerdictName(verdict));

  // Forged claims fail: a different opening does not match.
  CommitmentOpening wrong = opening;
  wrong.nonce[0] ^= 1;
  std::printf("[court] impostor claiming the same order: %s\n",
              DisputeVerdictName(
                  ResolveDispute(order, receipt, pseudonym->cert.pseudonym_key,
                                 cp_key.PublicKey(), &wrong)));

  // ---- Part 2: royalties without user tracking ---------------------------
  std::puts("\n== royalty statistics ==");
  constexpr double kTruthP = 0.5;
  RandomizedResponder responder(kTruthP);
  UsageAggregator aggregator(kTruthP);

  // 5000 devices report whether they played each of two titles this month.
  int truth_hit = 0, truth_b = 0;
  for (int device = 0; device < 5000; ++device) {
    bool played_hit = rng.NextUint64(100) < 70;  // 70% played the hit
    bool played_b = rng.NextUint64(100) < 10;    // 10% played the b-side
    truth_hit += played_hit;
    truth_b += played_b;
    aggregator.AddReport(1, responder.Respond(played_hit, &rng));
    aggregator.AddReport(2, responder.Respond(played_b, &rng));
  }
  std::printf("[cp]    hit single: estimated %.0f plays (truth %d)\n",
              aggregator.EstimatedCount(1), truth_hit);
  std::printf("[cp]    b-side:     estimated %.0f plays (truth %d)\n",
              aggregator.EstimatedCount(2), truth_b);
  std::printf("[user]  confidence an adversary gets from any single "
              "report: %.0f%% (50%% = coin flip)\n",
              responder.ReportConfidence() * 100.0);
  std::puts("\nusage tracking for royalties: yes. user tracking: no — the "
            "paper's requirement.");
  return 0;
}
