// License transfer: the paper's anonymous-license exchange, end to end.
//
// Alice buys an album and gives it to Bob. The provider participates in
// both halves of the hand-over — it retires Alice's license and issues
// Bob's — yet it cannot link giver and taker: the bearer license between
// them carries no key, and both calls arrive over an anonymous channel.
// The example also shows the enforcement backstop: the retired license
// stops playing, and the bearer instrument redeems exactly once.

#include <cstdio>

#include "core/agent.h"
#include "core/system.h"
#include "crypto/drbg.h"

using namespace p2drm;        // NOLINT
using namespace p2drm::core;  // NOLINT

int main() {
  crypto::HmacDrbg rng("license-transfer");

  SystemConfig config;
  config.ca_key_bits = 512;
  config.ttp_key_bits = 512;
  config.bank_key_bits = 512;
  config.cp.signing_key_bits = 512;
  P2drmSystem system(config, &rng);

  rel::ContentId album = system.cp().Publish(
      "Transferable Album", std::vector<std::uint8_t>(4096, 0x61),
      /*price=*/25, rel::Rights::FullRetail());

  AgentConfig acfg;
  acfg.pseudonym_bits = 512;
  UserAgent alice("alice", acfg, &system, &rng);
  UserAgent bob("bob", acfg, &system, &rng);

  // Alice buys and enjoys the album.
  rel::License alice_license;
  if (alice.BuyContent(album, &alice_license) != Status::kOk) return 1;
  std::printf("[alice] bought the album; plays: %s\n",
              rel::DecisionName(alice.Play(album).decision));

  // --- the hand-over ------------------------------------------------------
  // Step 1 (giver): exchange the key-bound license for a bearer license.
  std::vector<std::uint8_t> bearer;
  Status s = alice.GiveLicense(alice_license.id, &bearer);
  std::printf("[alice] exchanged license for a %zu-byte bearer license: %s\n",
              bearer.size(), StatusName(s));

  // Alice's own copy is dead from this moment.
  std::printf("[alice] tries to play her retired copy: %s\n",
              rel::DecisionName(alice.Play(album).decision));

  // Step 2 (out of band): Alice hands Bob the bearer bytes — a USB stick,
  // an email, anything. No provider involved.

  // Step 3 (taker): Bob redeems the bearer license under a fresh pseudonym.
  rel::License bob_license;
  s = bob.ReceiveLicense(bearer, &bob_license);
  std::printf("[bob]   redeemed the bearer license: %s\n", StatusName(s));
  std::printf("[bob]   plays the album: %s\n",
              rel::DecisionName(bob.Play(album).decision));

  // --- what the provider learned ------------------------------------------
  std::printf("\nprovider's view of the transfer:\n");
  std::printf("  pseudonyms seen: %zu (alice's buy, bob's redeem — "
              "no shared identifier)\n",
              system.cp().DistinctPseudonymsSeen());
  std::printf("  spent-license ids recorded: %zu (16 bytes each)\n",
              system.cp().SpentSetSize());
  std::printf("  anonymous-channel calls: %llu (no caller identity on any "
              "of them)\n",
              static_cast<unsigned long long>(
                  system.transport()
                      .StatsFor(net::Transport::kAnonymous, "cp")
                      .messages));

  // --- enforcement backstop -------------------------------------------------
  // The bearer license is single-use: replaying it fails and generates
  // fraud evidence.
  rel::License dummy;
  s = bob.ReceiveLicense(bearer, &dummy);
  std::printf("\nreplaying the bearer license: %s (double redemption "
              "detected)\n",
              StatusName(s));
  auto identified = system.ProcessFraud();
  std::printf("fraud pipeline de-anonymized %zu card(s)", identified.size());
  if (!identified.empty()) {
    std::printf(" -> card %llu (%s)",
                static_cast<unsigned long long>(identified[0]),
                system.ca().HolderName(identified[0]).c_str());
  }
  std::printf("; CRL now has %zu entries\n", system.cp().Crl().Size());
  return 0;
}
