#!/usr/bin/env python3
"""CI gate for the RSA hot path (docs/bignum.md).

Reads the gbench JSON written by bench_crypto (BENCH_bench_crypto.json)
and fails the build unless:

  1. BM_RsaSignFdh/2048 (CRT signing, the per-item issue cost every
     server bench amortizes) sustains at least --min-sign-ops signatures
     per second. The workflow pins this to 2x the pre-kernel baseline,
     so a regression that gives back the 64-bit limb win turns CI red.
  2. The injected "config" block shows the kernels actually ran as
     shipped: 64-bit limbs, and the 2048-bit CRT halves dispatching to
     the fixed-width-16 Montgomery kernel (not the generic loop).

Usage: check_crypto_perf.py BENCH_bench_crypto.json --min-sign-ops 465
"""

import argparse
import json
import sys


def ops_per_second(entry):
    """Signatures/second from a gbench iteration entry."""
    unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
        entry.get("time_unit", "ns")]
    seconds = entry["real_time"] * unit
    if seconds <= 0:
        raise SystemExit(f"nonsensical real_time in {entry['name']}")
    return 1.0 / seconds


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("report")
    parser.add_argument("--bench", default="BM_RsaSignFdh/2048")
    parser.add_argument("--min-sign-ops", type=float, required=True)
    args = parser.parse_args()

    with open(args.report) as f:
        doc = json.load(f)

    runs = [b for b in doc.get("benchmarks", [])
            if b.get("name") == args.bench
            and b.get("run_type", "iteration") == "iteration"]
    if not runs:
        raise SystemExit(f"{args.report}: no iteration runs for {args.bench}")
    # Best of the repetitions: the gate asks "can the kernel hit the
    # floor", and the minimum time is the least noisy estimator of that.
    ops = max(ops_per_second(b) for b in runs)

    config = doc.get("config", {})
    failures = []
    if ops < args.min_sign_ops:
        failures.append(
            f"{args.bench}: {ops:.0f} ops/s < floor {args.min_sign_ops:.0f}")
    if config.get("bignum_limb_bits") != 64:
        failures.append(
            f"config.bignum_limb_bits = {config.get('bignum_limb_bits')!r}, "
            "expected 64 - kernel config not recorded or wrong limb width")
    # fixed_width_powmods looks like "512:a,1024:b,2048:c,generic:d".
    widths = dict(kv.split(":") for kv in
                  config.get("fixed_width_powmods", "").split(",") if ":" in kv)
    if int(widths.get("1024", "0")) <= 0:
        failures.append(
            "no PowMods dispatched to the fixed width-16 kernel "
            f"(fixed_width_powmods = {config.get('fixed_width_powmods')!r}); "
            "2048-bit CRT signing should run its 1024-bit halves there")

    print(f"{args.bench}: {ops:.0f} ops/s (floor {args.min_sign_ops:.0f}), "
          f"limb_bits={config.get('bignum_limb_bits')}, "
          f"widths_hit={config.get('fixed_width_powmods')}")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("crypto perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
