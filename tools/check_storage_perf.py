#!/usr/bin/env python3
"""CI gate for the spent-set storage engine (docs/storage.md).

Reads the report written by bench_storage (BENCH_bench_storage.json) and
fails the build unless:

  1. The flat table's batch contains throughput on present ids is at
     least --min-ratio x the legacy hash-set backend at --entries
     entries. The spend path probes the spent set once per redemption,
     so this ratio IS the mutate-stage headroom the flat engine exists
     to provide; a regression that gives it back turns CI red.
  2. The "config" block shows the table geometry actually shipped:
     16-wide control-byte groups and the 7/8 max load factor. A silently
     changed geometry could trade memory for speed (or vice versa)
     without anyone noticing the RT-3 numbers moved.
  3. The flat table's measured bytes/entry stays under --max-bytes-per-
     entry — the honest-footprint satellite: 17 bytes per bucket at a
     power-of-two capacity can never legitimately exceed 39 B/entry
     (just after a rehash), so a larger number means MemoryBytes stopped
     telling the truth.

Usage: check_storage_perf.py BENCH_bench_storage.json
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("report")
    parser.add_argument("--entries", type=int, default=10000000)
    parser.add_argument("--min-ratio", type=float, default=2.0)
    parser.add_argument("--max-bytes-per-entry", type=float, default=39.0)
    args = parser.parse_args()

    with open(args.report) as f:
        doc = json.load(f)

    def metric(name):
        key = f"sweep.{args.entries}.{name}"
        if key not in doc:
            raise SystemExit(f"{args.report}: missing metric {key} "
                             "(was the sweep run at this size?)")
        return float(doc[key])

    flat_hit = metric("flat.contains_hit_mops")
    hash_hit = metric("hash-set.contains_hit_mops")
    flat_bpe = metric("flat.bytes_per_entry")
    ratio = flat_hit / hash_hit if hash_hit > 0 else float("inf")

    config = doc.get("config", {})
    failures = []
    if ratio < args.min_ratio:
        failures.append(
            f"flat contains {flat_hit:.1f} Mops/s is only {ratio:.2f}x "
            f"hash-set ({hash_hit:.1f} Mops/s) at {args.entries} entries; "
            f"floor is {args.min_ratio:.1f}x")
    if config.get("spent_flat_group_width") != 16:
        failures.append(
            f"config.spent_flat_group_width = "
            f"{config.get('spent_flat_group_width')!r}, expected 16")
    if config.get("spent_flat_max_load_factor") != 0.875:
        failures.append(
            f"config.spent_flat_max_load_factor = "
            f"{config.get('spent_flat_max_load_factor')!r}, expected 0.875")
    if flat_bpe > args.max_bytes_per_entry:
        failures.append(
            f"flat bytes/entry {flat_bpe:.1f} > {args.max_bytes_per_entry:.1f}"
            " - MemoryBytes accounting or table geometry is off")

    print(f"spent-set sweep @ {args.entries}: flat contains "
          f"{flat_hit:.1f} Mops/s vs hash-set {hash_hit:.1f} Mops/s "
          f"({ratio:.2f}x, floor {args.min_ratio:.1f}x), "
          f"flat {flat_bpe:.1f} B/entry")
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("storage perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
