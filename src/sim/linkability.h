#ifndef P2DRM_SIM_LINKABILITY_H_
#define P2DRM_SIM_LINKABILITY_H_

/// \file linkability.h
/// \brief Adversarial linkability analysis (RF-4).
///
/// Models a curious content provider that records, for every purchase, the
/// credential it saw (account name in the baseline; pseudonym fingerprint
/// in P2DRM). Two purchases are *linkable* when they show the same
/// credential. The metric is the probability that a uniformly random pair
/// of same-user purchases is linkable — 1.0 for the identified baseline,
/// (k-1)/(M-1) in expectation for pseudonyms reused k times by a user with
/// M purchases, 0 for fresh-pseudonym-per-purchase.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace p2drm {
namespace sim {

/// The provider-side observation of one purchase.
struct Observation {
  std::uint64_t true_user = 0;   ///< ground truth (never visible to the CP)
  std::string credential;        ///< what the CP actually saw
};

/// Result of the linking attack.
struct LinkabilityReport {
  std::uint64_t same_user_pairs = 0;      ///< pairs with equal true_user
  std::uint64_t linkable_pairs = 0;       ///< … that share a credential
  double linkability = 0.0;               ///< linkable / same_user (0 when no pairs)
  std::size_t distinct_credentials = 0;
  /// Size of the largest credential cluster (worst-case profile length).
  std::size_t largest_profile = 0;
};

/// Runs the pairwise linking attack over \p observations.
LinkabilityReport AnalyzeLinkability(
    const std::vector<Observation>& observations);

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_LINKABILITY_H_
