#include "sim/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2drm {
namespace sim {

ZipfGenerator::ZipfGenerator(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfGenerator::Next(bignum::RandomSource* rng) const {
  double u = rng->NextUnitDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace sim
}  // namespace p2drm
