#include "sim/bench_report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace p2drm {
namespace sim {

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

BenchReport::Entry* BenchReport::FindOrAdd(std::vector<Entry>* entries,
                                           const std::string& key) {
  for (Entry& e : *entries) {
    if (e.key == key) return &e;
  }
  entries->push_back(Entry{key, true, 0, {}});
  return &entries->back();
}

void BenchReport::Metric(const std::string& name, double value) {
  Entry* e = FindOrAdd(&entries_, name);
  e->numeric = true;
  e->number = value;
}

void BenchReport::Note(const std::string& name, const std::string& value) {
  Entry* e = FindOrAdd(&entries_, name);
  e->numeric = false;
  e->text = value;
}

void BenchReport::ConfigMetric(const std::string& name, double value) {
  Entry* e = FindOrAdd(&config_, name);
  e->numeric = true;
  e->number = value;
}

void BenchReport::ConfigNote(const std::string& name,
                             const std::string& value) {
  Entry* e = FindOrAdd(&config_, name);
  e->numeric = false;
  e->text = value;
}

void BenchReport::MetricsMetric(const std::string& name, double value) {
  Entry* e = FindOrAdd(&metrics_, name);
  e->numeric = true;
  e->number = value;
}

void BenchReport::MetricsNote(const std::string& name,
                              const std::string& value) {
  Entry* e = FindOrAdd(&metrics_, name);
  e->numeric = false;
  e->text = value;
}

namespace {

void AppendEscaped(std::ostringstream* os, const std::string& s) {
  *os << '"';
  for (char c : s) {
    switch (c) {
      case '"': *os << "\\\""; break;
      case '\\': *os << "\\\\"; break;
      case '\n': *os << "\\n"; break;
      case '\t': *os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
  *os << '"';
}

void AppendNumber(std::ostringstream* os, double v) {
  // JSON has no NaN/Inf; clamp to null so the file always parses.
  if (std::isnan(v) || std::isinf(v)) {
    *os << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    *os << static_cast<long long>(v);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    *os << buf;
  }
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"bench\": ";
  AppendEscaped(&os, name_);
  // The config block rides first: what the numbers below were taken
  // under. Always present so downstream tooling can rely on the key.
  os << ",\n  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    AppendEscaped(&os, config_[i].key);
    os << ": ";
    if (config_[i].numeric) {
      AppendNumber(&os, config_[i].number);
    } else {
      AppendEscaped(&os, config_[i].text);
    }
  }
  os << (config_.empty() ? "}" : "\n  }");
  // The metrics block (aggregated registry + op counters) follows the
  // config; omitted entirely when nothing was exported into it.
  if (!metrics_.empty()) {
    os << ",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      os << (i == 0 ? "\n    " : ",\n    ");
      AppendEscaped(&os, metrics_[i].key);
      os << ": ";
      if (metrics_[i].numeric) {
        AppendNumber(&os, metrics_[i].number);
      } else {
        AppendEscaped(&os, metrics_[i].text);
      }
    }
    os << "\n  }";
  }
  for (const Entry& e : entries_) {
    os << ",\n  ";
    AppendEscaped(&os, e.key);
    os << ": ";
    if (e.numeric) {
      AppendNumber(&os, e.number);
    } else {
      AppendEscaped(&os, e.text);
    }
  }
  os << "\n}\n";
  return os.str();
}

bool BenchReport::WriteJsonFile(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchReport: cannot open %s\n", path.c_str());
    return false;
  }
  std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace sim
}  // namespace p2drm
