#ifndef P2DRM_SIM_VIRTUAL_CLOCK_H_
#define P2DRM_SIM_VIRTUAL_CLOCK_H_

/// \file virtual_clock.h
/// \brief The unified virtual timebase and its discrete-event scheduler.
///
/// Before this file existed the repo kept three unrelated notions of
/// simulated time: core::SimClock seconds (license expiry), the
/// Transport's private microsecond accumulator (wire latency), and the
/// shard workers' sim clocks (service time). sim::VirtualClock is the
/// one microsecond-resolution timebase they all now read and advance:
///
///  * core::SimClock is a seconds *view* over a VirtualClock (owned or
///    shared), so advancing rental expiry advances the same time wire
///    costs accrue into.
///  * net::Transport charges every LatencyModel cost into its bound
///    VirtualClock (keeping a separate per-transport meter for the RT-2
///    accounting).
///  * sim::EventLoop schedules work at virtual instants, which is what
///    lets a bench honor multi-second retry-after hints, rental windows
///    or arrival ramps without a single wall-clock sleep.
///
/// Determinism contract (docs/simulation.md): VirtualClock and EventLoop
/// are single-threaded by design — one driving thread advances time and
/// runs events. Events firing at the same virtual instant run in
/// schedule order (sequence-number tie-break), so a fixed seed replays
/// an identical event interleaving run after run.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace p2drm {
namespace sim {

/// a + b without wrapping — instants and costs saturate at "forever"
/// across the whole timebase API (a saturated cost must pin the
/// schedule, not wrap an event into the immediate present).
inline std::uint64_t SaturatingAddUs(std::uint64_t a, std::uint64_t b) {
  return a > ~std::uint64_t{0} - b ? ~std::uint64_t{0} : a + b;
}

/// Microsecond-resolution virtual time. Absolute values are microseconds
/// since the Unix epoch so the seconds view (NowEpochSeconds) matches
/// core::SimClock's historical default start of 1'700'000'000.
class VirtualClock {
 public:
  static constexpr std::uint64_t kDefaultStartEpochSeconds =
      1'700'000'000ull;
  static constexpr std::uint64_t kUsPerSecond = 1'000'000ull;

  explicit VirtualClock(
      std::uint64_t start_epoch_s = kDefaultStartEpochSeconds)
      : now_us_(SecondsToUsSaturating(start_epoch_s)) {}

  std::uint64_t NowUs() const { return now_us_; }
  std::uint64_t NowEpochSeconds() const { return now_us_ / kUsPerSecond; }

  /// Advances by \p us (saturating at the representable maximum, so a
  /// runaway latency charge can never wrap time backwards).
  void AdvanceUs(std::uint64_t us) { now_us_ = SaturatingAddUs(now_us_, us); }
  void AdvanceSeconds(std::uint64_t s) {
    AdvanceUs(SecondsToUsSaturating(s));
  }

  /// Moves forward to \p t_us; never moves backwards (monotonicity is
  /// what the event loop's ordering guarantee rests on).
  void AdvanceToUs(std::uint64_t t_us) {
    if (t_us > now_us_) now_us_ = t_us;
  }

  /// Absolute jump, forwards or backwards — the escape hatch
  /// core::SimClock::Set has always offered tests. Not for use while an
  /// EventLoop holds pending events.
  void SetEpochSeconds(std::uint64_t epoch_s) {
    now_us_ = SecondsToUsSaturating(epoch_s);
  }

 private:
  /// Seconds -> microseconds without wrapping: a "never" sentinel like
  /// ~0ull must land at the maximum, not rewind time (the same contract
  /// AdvanceUs keeps).
  static std::uint64_t SecondsToUsSaturating(std::uint64_t s) {
    return s > ~std::uint64_t{0} / kUsPerSecond ? ~std::uint64_t{0}
                                                : s * kUsPerSecond;
  }

  std::uint64_t now_us_;
};

/// Discrete-event scheduler over a VirtualClock.
///
/// Events are closures scheduled at absolute virtual instants; running
/// one advances the clock to its instant first. Ties break by schedule
/// order (monotonic sequence number), never by heap internals, so the
/// execution order is a pure function of the schedule calls.
class EventLoop {
 public:
  using Event = std::function<void()>;

  explicit EventLoop(VirtualClock* clock) : clock_(clock) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Schedules \p fn at virtual instant \p at_us (clamped to now: the
  /// past is not schedulable). Returns the event's sequence number.
  std::uint64_t ScheduleAt(std::uint64_t at_us, Event fn);

  /// Schedules \p fn \p delay_us after the current instant (saturating:
  /// a "forever" delay lands at the maximum instant, it never wraps).
  std::uint64_t ScheduleAfter(std::uint64_t delay_us, Event fn) {
    return ScheduleAt(SaturatingAddUs(clock_->NowUs(), delay_us),
                      std::move(fn));
  }

  /// Runs the earliest pending event (advancing the clock to it).
  /// Returns false when nothing is pending.
  bool RunNext();

  /// Runs pending events up to and including instant \p t_us, then
  /// advances the clock to \p t_us. Returns the number run.
  std::uint64_t RunUntil(std::uint64_t t_us);

  /// Runs until no event is pending (events may schedule more events).
  /// Returns the number run.
  std::uint64_t RunUntilIdle();

  std::size_t PendingCount() const { return heap_.size(); }
  bool Idle() const { return heap_.empty(); }
  std::uint64_t ExecutedCount() const { return executed_; }
  VirtualClock* clock() const { return clock_; }

 private:
  struct Entry {
    std::uint64_t at_us;
    std::uint64_t seq;
    // Shared-ptr wrapper keeps Entry copyable for priority_queue while
    // the closure itself is move-only capable.
    std::shared_ptr<Event> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at_us != b.at_us) return a.at_us > b.at_us;
      return a.seq > b.seq;  // earlier schedule runs first
    }
  };

  VirtualClock* clock_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_VIRTUAL_CLOCK_H_
