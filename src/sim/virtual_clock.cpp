#include "sim/virtual_clock.h"

namespace p2drm {
namespace sim {

std::uint64_t EventLoop::ScheduleAt(std::uint64_t at_us, Event fn) {
  if (at_us < clock_->NowUs()) at_us = clock_->NowUs();
  std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at_us, seq, std::make_shared<Event>(std::move(fn))});
  return seq;
}

bool EventLoop::RunNext() {
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  clock_->AdvanceToUs(e.at_us);
  ++executed_;
  (*e.fn)();
  return true;
}

std::uint64_t EventLoop::RunUntil(std::uint64_t t_us) {
  std::uint64_t ran = 0;
  while (!heap_.empty() && heap_.top().at_us <= t_us) {
    RunNext();
    ++ran;
  }
  clock_->AdvanceToUs(t_us);
  return ran;
}

std::uint64_t EventLoop::RunUntilIdle() {
  std::uint64_t ran = 0;
  while (RunNext()) ++ran;
  return ran;
}

}  // namespace sim
}  // namespace p2drm
