#ifndef P2DRM_SIM_SCENARIO_H_
#define P2DRM_SIM_SCENARIO_H_

/// \file scenario.h
/// \brief Event-driven scenario harness: population-scale mixed-flow
/// traffic against a modeled provider, entirely in virtual time.
///
/// The paper's evaluation is a cost model, not a testbed — so the
/// repo's load story is *simulation*: drive hundreds of thousands of
/// closed-loop users through the provider's batch flows and report
/// latency/shedding behaviour that is a pure function of the scenario
/// seed. ScenarioDriver runs on one thread over sim::EventLoop /
/// sim::VirtualClock; there is not a single wall-clock sleep anywhere,
/// which is what lets a backoff storm honor multi-second retry-after
/// hints while the whole run finishes in wall-clock seconds.
///
/// The server here is a *model*, deliberately mirroring the real
/// src/server architecture rather than invoking its crypto: one
/// dispatcher resource (amortized verify, serialized — the dispatch
/// thread), N shard resources (mutate + issue, serialized per shard —
/// the shard workers), bounded per-shard backlogs that shed with a
/// typed retry hint (the kOverloaded contract), and clients that
/// re-send only shed items under a bounded attempt budget (the
/// UserAgent retry loop). Service costs are fixed virtual-microsecond
/// constants (defaults representative of 1024-bit RSA on commodity
/// hardware), NOT wall-clock measurements — measurement would break the
/// bit-identical-reports guarantee the CI determinism check enforces.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.h"
#include "obs/trace.h"
#include "sim/stats.h"
#include "sim/virtual_clock.h"

namespace p2drm {
namespace sim {

/// The four metered batch flows a client can drive.
enum class Flow : std::uint8_t {
  kRedeem = 0,
  kPurchase = 1,
  kExchange = 2,
  kDeposit = 3,
};
constexpr std::size_t kFlowCount = 4;
const char* FlowName(Flow flow);

/// Per-item service cost of one flow, in virtual microseconds.
struct FlowCost {
  std::uint64_t verify_us = 60;  ///< amortized classification (dispatcher)
  std::uint64_t mutate_us = 5;   ///< serialized state change (home shard)
  std::uint64_t issue_us = 700;  ///< private-key work (home shard)
};

/// Cluster mode (ISSUE 6): instead of one modeled provider, the scenario
/// drives a REAL cluster::ProviderCluster — N ServerRuntime replicas with
/// live spent sets and journal files — while keeping every COST modeled
/// in virtual time (per-replica dispatcher + shard resources, wire
/// latency). Spend outcomes are therefore real (actual double-spend
/// detection, actual journal replay on failover) and timing is still a
/// pure function of the seed. All zeros/false = cluster mode off; the
/// single-provider model above runs unchanged.
struct ClusterOptions {
  bool enabled = false;
  std::size_t replica_count = 4;
  std::size_t vnodes_per_replica = 64;
  std::size_t shards_per_replica = 4;
  /// Journal family base for the replicas (see
  /// cluster::ProviderCluster::ReplicaJournalPrefix). Empty disables
  /// journaling — and with it failover replay.
  std::string journal_prefix;

  // -- failure injection ----------------------------------------------
  /// Virtual instant at which `crash_replica` is killed (0 = no crash).
  std::uint64_t crash_at_us = 0;
  std::uint32_t crash_replica = 0;
  /// Tear the dead replica's journal tail (simulate death mid-append).
  bool tear_journal_tail = false;
  /// Modeled failure-detection delay before replay starts.
  std::uint64_t failover_detect_us = 500'000;
  /// Modeled replay cost per journal record; failover completes at
  /// crash + detect + per_record * records, and until then the moved
  /// ranges answer kOverloaded (the recovery gate).
  std::uint64_t replay_per_record_us = 5;
  /// After failover, re-spend every id that had committed on the dead
  /// replica; each kOk is a DOUBLE SPEND (journal replay failed).
  bool audit_after_failover = true;

  /// How many times a client chases kWrongReplica redirects for one item
  /// before giving up (terminal bucket FlowStats::redirected).
  std::size_t redirect_max_hops = 3;
};

/// An arrival burst: within [start_us, end_us) of virtual scenario time,
/// client think times are multiplied by `think_scale` (0.01 = a 100x
/// arrival-rate spike — the flash-crowd/overload knob).
struct BurstWindow {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  double think_scale = 1.0;
};

/// One named workload. Every field participates in the report's config
/// block so cross-PR trajectories stay comparable.
struct ScenarioConfig {
  std::string name = "unnamed";
  std::uint64_t seed = 1;

  std::size_t num_users = 1000;
  /// Stop issuing new batches once this many items have been sent at
  /// least once (the loop then drains in-flight work, retries included).
  std::uint64_t total_requests = 10000;
  std::size_t batch_size = 8;

  // -- server model ---------------------------------------------------
  std::size_t shard_count = 4;
  /// Per-shard backlog bound, in items; an item arriving at a fuller
  /// shard is shed with kOverloaded + retry hint.
  std::size_t queue_capacity = 4096;
  /// Dedicated signer-pool size for the issue stage — the modeled twin
  /// of server::SignerPool (cluster mode: one pool per replica). 0 keeps
  /// the legacy model where mutate + issue both serialize on the item's
  /// home shard. N > 0 frees the shard after mutate_us and runs issue_us
  /// on the earliest-available of N signer resources (lowest index
  /// breaks ties — work stealing makes the pool a single service
  /// center, so which signer is immaterial to the modeled finish time).
  std::size_t signer_pool_size = 0;
  std::array<FlowCost, kFlowCount> cost = DefaultFlowCosts();

  // -- workload shape -------------------------------------------------
  /// Relative weight of each flow (need not sum to 1; all-zero = redeem
  /// only). One flow is drawn per batch.
  std::array<double, kFlowCount> mix = {0.35, 0.35, 0.2, 0.1};
  /// Content popularity skew. Live, not cosmetic: purchase items route
  /// to their *content's* home shard (per-content royalty/usage state
  /// serializes there), so a skewed catalog concentrates purchase load
  /// on the hot content's shards while id-keyed flows stay uniform.
  double zipf_alpha = 1.0;
  std::size_t catalog_size = 10000;
  /// Mean closed-loop think time between a user's batches.
  std::uint64_t mean_think_us = 30'000'000;
  /// User start times are staggered uniformly over this window
  /// (0 = everyone's first batch fires at t=0: a flash crowd).
  std::uint64_t ramp_us = 0;
  std::vector<BurstWindow> bursts;

  // -- wire model -----------------------------------------------------
  net::LatencyModel wire = {2000, 80};  ///< per round-trip direction
  std::size_t request_bytes_per_item = 512;
  std::size_t response_bytes_per_item = 700;

  // -- client retry policy (mirrors core::AgentConfig) ---------------
  std::size_t overload_max_attempts = 3;
  /// Hint the modeled server attaches to sheds; honored IN FULL in
  /// virtual time (the whole point of the virtual timebase — compare
  /// AgentConfig::overload_backoff_cap_ms, which exists to cap real
  /// sleeps).
  std::uint32_t retry_hint_ms = 50;

  // -- multi-replica cluster mode (off by default) --------------------
  ClusterOptions cluster;

  // -- observability (off by default; not a workload knob) ------------
  /// Tracing + metrics endpoints. The engine timestamps the tracer off
  /// the scenario's virtual clock for the duration of Run() (and detaches
  /// it before returning), so a traced run is byte-identical under a
  /// fixed seed: cluster mode records the failover timeline —
  /// cluster.crash, recovery_gate / journal_replay spans, redirect
  /// instants — and the registry collects the cluster's counters.
  /// Tracing changes no modeled timing and no rng draw, so a traced run
  /// and an untraced run produce the same ScenarioResult.
  obs::Sink obs;

  static std::array<FlowCost, kFlowCount> DefaultFlowCosts() {
    return {FlowCost{60, 5, 1500},   // redeem: transcript + license sign
            FlowCost{120, 8, 900},   // purchase: cert check, deposit, sign
            FlowCost{80, 5, 800},    // exchange: possession proof, bearer
            FlowCost{90, 3, 0}};     // deposit: coin verify, credit only
  }
};

/// Accounting for one flow across a scenario run.
struct FlowStats {
  std::uint64_t issued = 0;      ///< items sent at least once
  std::uint64_t completed = 0;   ///< items that reached kOk
  std::uint64_t sheds = 0;       ///< item-level kOverloaded responses
  std::uint64_t retried = 0;     ///< item re-sends beyond the first try
  std::uint64_t exhausted = 0;   ///< items still shed at budget end
  /// Cluster mode only: items that burned their redirect-hop budget
  /// without landing on a live owner (terminal, like exhausted).
  std::uint64_t redirected = 0;
  /// Client-observed latency per completed item: the arrival of the
  /// batch response carrying its kOk minus the batch's first send — so
  /// items in one round trip share the slowest item's instant, exactly
  /// as a real UserAgent batch caller experiences it.
  LatencyStats latency;
};

/// What one ScenarioDriver::Run produces.
struct ScenarioResult {
  std::string name;
  std::uint64_t virtual_duration_us = 0;  ///< clock advance over the run
  std::uint64_t events_executed = 0;
  std::uint64_t batches_sent = 0;         ///< round trips, retries included
  std::uint64_t wire_messages = 0;        ///< requests + responses
  std::uint64_t wire_bytes = 0;
  std::uint64_t backoff_ms_honored = 0;   ///< total hinted wait served
  std::uint64_t max_backlog_items = 0;    ///< deepest shard backlog seen
  std::uint64_t zipf_top1pct_hits = 0;    ///< items on the hottest 1% ranks
  std::array<FlowStats, kFlowCount> flows;

  /// Cluster-mode accounting (all zero when cluster mode is off).
  struct ClusterStats {
    bool enabled = false;
    std::uint64_t redirect_responses = 0;  ///< item-level kWrongReplica seen
    std::uint64_t ring_epoch_final = 0;
    std::uint64_t replicas_alive_final = 0;
    std::uint64_t total_spent_final = 0;   ///< live replicas' spent-set union
    // Failover (zero unless a crash was injected and recovered):
    std::uint64_t crash_at_us = 0;
    std::uint64_t failover_completed_at_us = 0;
    std::uint64_t replayed_records = 0;
    std::uint64_t imported_fresh = 0;
    std::uint64_t imported_duplicates = 0;
    std::uint64_t torn_tails_skipped = 0;
    // Post-failover audit — the paper's invariant, checked for real:
    std::uint64_t audit_rechecks = 0;  ///< ids committed pre-crash, re-spent
    std::uint64_t double_spends = 0;   ///< audit re-spends that got kOk (MUST be 0)
  };
  ClusterStats cluster;

  std::uint64_t TotalIssued() const;
  std::uint64_t TotalCompleted() const;
  std::uint64_t TotalSheds() const;
  std::uint64_t TotalExhausted() const;
  std::uint64_t TotalRedirectedTerminal() const;
};

/// Runs one scenario to completion on the calling thread. Deterministic:
/// the result is a pure function of the config (seed included).
class ScenarioDriver {
 public:
  explicit ScenarioDriver(const ScenarioConfig& config);

  ScenarioResult Run();

 private:
  ScenarioConfig config_;
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_SCENARIO_H_
