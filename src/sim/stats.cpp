#include "sim/stats.h"

#include <numeric>
#include <sstream>

namespace p2drm {
namespace sim {

double LatencyStats::Mean() const {
  if (samples_.empty()) return 0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double LatencyStats::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t idx = static_cast<std::size_t>(rank + 0.5);
  if (idx >= samples_.size()) idx = samples_.size() - 1;
  return samples_[idx];
}

double LatencyStats::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

double LatencyStats::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

std::string LatencyStats::Summary() const {
  std::ostringstream os;
  os << "n=" << Count() << " mean=" << Mean() << "us p50=" << Percentile(50)
     << "us p95=" << Percentile(95) << "us p99=" << Percentile(99)
     << "us max=" << Max() << "us";
  return os.str();
}

}  // namespace sim
}  // namespace p2drm
