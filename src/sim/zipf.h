#ifndef P2DRM_SIM_ZIPF_H_
#define P2DRM_SIM_ZIPF_H_

/// \file zipf.h
/// \brief Zipf-distributed sampling for content popularity.
///
/// Retail content demand is heavy-tailed; the end-to-end benches sample the
/// catalog from Zipf(α) as the evaluation literature conventionally does.

#include <cstdint>
#include <vector>

#include "bignum/random_source.h"

namespace p2drm {
namespace sim {

/// Samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^alpha.
class ZipfGenerator {
 public:
  /// \param n     number of ranks (> 0)
  /// \param alpha skew; 0 = uniform, ~1 = classic web/content skew
  ZipfGenerator(std::size_t n, double alpha);

  /// Draws one rank using \p rng.
  std::size_t Next(bignum::RandomSource* rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_ZIPF_H_
