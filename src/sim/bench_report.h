#ifndef P2DRM_SIM_BENCH_REPORT_H_
#define P2DRM_SIM_BENCH_REPORT_H_

/// \file bench_report.h
/// \brief Machine-readable bench output: every bench_* binary writes a
/// `BENCH_<name>.json` next to its console report so CI can assert on
/// throughput and tail latency instead of scraping stdout.
///
/// The format is deliberately flat: one JSON object, metric names as
/// keys, numbers or strings as values. Dotted names ("shards4.p99_us")
/// namespace related metrics. The standalone benches fill this directly;
/// the Google-Benchmark benches emit gbench's own JSON through the
/// shared main in bench/gbench_json_main.h instead.
///
/// One nested object is allowed: `"config"` records the knobs the run
/// was taken under (shard counts, batch size, key bits, seed, scenario
/// names, …) so BENCH_*.json files are comparable across PRs — a perf
/// trajectory without its configuration is noise.

#include <string>
#include <utility>
#include <vector>

namespace p2drm {
namespace sim {

/// Ordered metric collection with a JSON serializer.
class BenchReport {
 public:
  /// \param bench_name the binary's name, e.g. "bench_server_scaling";
  /// the output file becomes `BENCH_<bench_name>.json`.
  explicit BenchReport(std::string bench_name);

  /// Adds (or overwrites) a numeric metric.
  void Metric(const std::string& name, double value);
  /// Adds (or overwrites) a string annotation.
  void Note(const std::string& name, const std::string& value);

  /// Adds (or overwrites) an entry in the report's `config` block —
  /// the run's configuration, kept separate from its results.
  void ConfigMetric(const std::string& name, double value);
  void ConfigNote(const std::string& name, const std::string& value);

  /// Adds (or overwrites) an entry in the report's `metrics` block — the
  /// aggregated obs::Registry / core::OpCounters dump, kept separate from
  /// the bench's own headline numbers. Emitted only when non-empty (the
  /// obs/export.h helpers fill it).
  void MetricsMetric(const std::string& name, double value);
  void MetricsNote(const std::string& name, const std::string& value);

  std::string ToJson() const;

  /// Writes `BENCH_<name>.json` into \p dir. Returns false (after
  /// printing a warning) on I/O failure; benches treat that as non-fatal.
  bool WriteJsonFile(const std::string& dir = ".") const;

  const std::string& name() const { return name_; }

 private:
  struct Entry {
    std::string key;
    bool numeric = true;
    double number = 0;
    std::string text;
  };

  static Entry* FindOrAdd(std::vector<Entry>* entries, const std::string& key);

  std::string name_;
  std::vector<Entry> config_;   ///< the nested "config" block
  std::vector<Entry> metrics_;  ///< the nested "metrics" block
  std::vector<Entry> entries_;
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_BENCH_REPORT_H_
