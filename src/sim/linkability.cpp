#include "sim/linkability.h"

#include <set>

namespace p2drm {
namespace sim {

LinkabilityReport AnalyzeLinkability(
    const std::vector<Observation>& observations) {
  LinkabilityReport report;

  // Group observation indices by true user (ground truth) and count
  // credential cluster sizes (CP's view).
  std::map<std::uint64_t, std::vector<std::size_t>> by_user;
  std::map<std::string, std::size_t> by_credential;
  for (std::size_t i = 0; i < observations.size(); ++i) {
    by_user[observations[i].true_user].push_back(i);
    by_credential[observations[i].credential] += 1;
  }
  report.distinct_credentials = by_credential.size();
  for (const auto& [cred, count] : by_credential) {
    (void)cred;
    report.largest_profile = std::max(report.largest_profile, count);
  }

  for (const auto& [user, idxs] : by_user) {
    (void)user;
    for (std::size_t a = 0; a < idxs.size(); ++a) {
      for (std::size_t b = a + 1; b < idxs.size(); ++b) {
        ++report.same_user_pairs;
        if (observations[idxs[a]].credential ==
            observations[idxs[b]].credential) {
          ++report.linkable_pairs;
        }
      }
    }
  }
  report.linkability =
      report.same_user_pairs == 0
          ? 0.0
          : static_cast<double>(report.linkable_pairs) /
                static_cast<double>(report.same_user_pairs);
  return report;
}

}  // namespace sim
}  // namespace p2drm
