#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>

#include "cluster/provider_cluster.h"
#include "crypto/drbg.h"
#include "sim/zipf.h"

namespace p2drm {
namespace sim {

const char* FlowName(Flow flow) {
  switch (flow) {
    case Flow::kRedeem: return "redeem";
    case Flow::kPurchase: return "purchase";
    case Flow::kExchange: return "exchange";
    case Flow::kDeposit: return "deposit";
  }
  return "unknown";
}

std::uint64_t ScenarioResult::TotalIssued() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.issued;
  return n;
}
std::uint64_t ScenarioResult::TotalCompleted() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.completed;
  return n;
}
std::uint64_t ScenarioResult::TotalSheds() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.sheds;
  return n;
}
std::uint64_t ScenarioResult::TotalExhausted() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.exhausted;
  return n;
}
std::uint64_t ScenarioResult::TotalRedirectedTerminal() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.redirected;
  return n;
}

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Binds a tracer to the scenario's virtual clock for the duration of a
/// Run(). RAII on purpose: the clock is a stack member of the engine, so
/// the time source MUST be detached before the engine dies — otherwise a
/// later emission would call through a dangling clock pointer.
class TracerClockScope {
 public:
  TracerClockScope(obs::Tracer* tracer, VirtualClock* clock)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    tracer_->set_time_source([clock] { return clock->NowUs(); });
    tracer_->SetThreadName("scenario");
  }
  ~TracerClockScope() {
    if (tracer_ != nullptr) tracer_->set_time_source(nullptr);
  }

  TracerClockScope(const TracerClockScope&) = delete;
  TracerClockScope& operator=(const TracerClockScope&) = delete;

 private:
  obs::Tracer* tracer_;
};

/// One in-flight client batch (shrinks to the shed indices on retries).
struct Batch {
  std::size_t user = 0;
  Flow flow = Flow::kRedeem;
  std::uint64_t first_send_us = 0;
  std::size_t attempts = 0;               ///< wire sends so far
  std::vector<std::uint64_t> keys;        ///< routing keys still unresolved
};

/// Scenario state and samplers shared by the single-provider model
/// engine and the cluster engine: the virtual timebase, the seeded rng,
/// the workload shape (flow mix, Zipf, think times, bursts) and the
/// modeled shard resource. Both engines draw from the SAME primitives so
/// their workloads are comparable knob-for-knob.
class EngineBase {
 protected:
  explicit EngineBase(const ScenarioConfig& cfg)
      : cfg_(cfg),
        clock_(/*start_epoch_s=*/0),
        loop_(&clock_),
        rng_(cfg.name + ":" + std::to_string(cfg.seed)),
        zipf_(std::max<std::size_t>(cfg.catalog_size, 1), cfg.zipf_alpha),
        hot_threshold_(std::max<std::size_t>(cfg.catalog_size / 100, 1)) {
    result_.name = cfg_.name;
    result_.flows = {};
  }

  struct ShardState {
    std::uint64_t busy_until_us = 0;
    /// Completion instants of queued + in-flight items; its size is the
    /// backlog the bounded-queue check runs against. Arrivals reach the
    /// shards in nondecreasing dispatcher order, so popping the front
    /// lazily is exact.
    std::deque<std::uint64_t> completions;
  };

  /// Issue-completion instant on the earliest-available signer of
  /// \p signers (lowest index breaks ties), starting no earlier than
  /// \p ready_us. Mirrors server::SignerPool's work-stealing property:
  /// an idle signer immediately takes the next pending item, so the pool
  /// behaves as one k-server service center and which worker signs is
  /// immaterial to the finish time.
  static std::uint64_t IssueOnPool(std::vector<std::uint64_t>* signers,
                                   std::uint64_t ready_us,
                                   std::uint64_t issue_us) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < signers->size(); ++i) {
      if ((*signers)[i] < (*signers)[best]) best = i;
    }
    std::uint64_t start = std::max((*signers)[best], ready_us);
    std::uint64_t done = start + issue_us;
    (*signers)[best] = done;
    return done;
  }

  /// Schedules every user's first batch across the ramp window.
  void ScheduleUsers() {
    for (std::size_t u = 0; u < cfg_.num_users; ++u) {
      std::uint64_t start =
          cfg_.ramp_us == 0
              ? 0
              : static_cast<std::uint64_t>(
                    (static_cast<unsigned __int128>(cfg_.ramp_us) * u) /
                    cfg_.num_users);
      loop_.ScheduleAt(start, [this, u] { FirstBatch(u); });
    }
  }

  /// The engine's per-user entry point (closed-loop batch issue).
  virtual void FirstBatch(std::size_t user) = 0;
  virtual ~EngineBase() = default;

  double U01() { return rng_.NextUnitDouble(); }

  double ThinkScaleAt(std::uint64_t t_us) const {
    double scale = 1.0;
    for (const BurstWindow& w : cfg_.bursts) {
      if (t_us >= w.start_us && t_us < w.end_us) scale *= w.think_scale;
    }
    return scale;
  }

  std::uint64_t SampleThinkUs() {
    // Exponential inter-batch think time, scaled by any active burst.
    double u = U01();
    double t = -static_cast<double>(cfg_.mean_think_us) * std::log1p(-u);
    t *= ThinkScaleAt(clock_.NowUs());
    return t < 1.0 ? 1 : static_cast<std::uint64_t>(t);
  }

  Flow SampleFlow() {
    double total = 0;
    for (double w : cfg_.mix) total += w;
    if (total <= 0) return Flow::kRedeem;
    double r = U01() * total;
    Flow last_weighted = Flow::kRedeem;
    for (std::size_t f = 0; f < kFlowCount; ++f) {
      if (cfg_.mix[f] <= 0) continue;  // zero weight can never be drawn
      last_weighted = static_cast<Flow>(f);
      r -= cfg_.mix[f];
      if (r < 0) return last_weighted;
    }
    // Floating-point rounding can leave r == 0 after the last subtract;
    // that draw belongs to the last flow with actual weight.
    return last_weighted;
  }

  FlowStats& StatsFor(Flow f) {
    return result_.flows[static_cast<std::size_t>(f)];
  }
  const FlowCost& CostFor(Flow f) const {
    return cfg_.cost[static_cast<std::size_t>(f)];
  }

  ScenarioConfig cfg_;
  VirtualClock clock_;
  EventLoop loop_;
  crypto::HmacDrbg rng_;
  ZipfGenerator zipf_;
  std::size_t hot_threshold_;
  std::uint64_t issued_items_ = 0;
  std::uint64_t route_counter_ = 0;
  ScenarioResult result_;
};

/// The single-provider model engine: one driving thread, one event loop,
/// no wall clock anywhere.
class Engine : public EngineBase {
 public:
  explicit Engine(const ScenarioConfig& cfg)
      : EngineBase(cfg),
        shards_(std::max<std::size_t>(cfg.shard_count, 1)),
        signers_(cfg.signer_pool_size, 0) {}

  ScenarioResult Run() {
    TracerClockScope trace_clock(cfg_.obs.tracer, &clock_);
    ScheduleUsers();
    loop_.RunUntilIdle();
    result_.virtual_duration_us = clock_.NowUs();
    result_.events_executed = loop_.ExecutedCount();
    return std::move(result_);
  }

 private:
  void FirstBatch(std::size_t user) override { NextBatch(user); }

  /// Client builds and sends a fresh batch (or retires when the
  /// scenario's request budget is spent).
  void NextBatch(std::size_t user) {
    if (issued_items_ >= cfg_.total_requests) return;  // user retires
    auto batch = std::make_shared<Batch>();
    batch->user = user;
    batch->flow = SampleFlow();
    batch->first_send_us = clock_.NowUs();
    // Clamped to >= 1: a zero-item batch would never move
    // issued_items_ toward the stop condition and the closed loop
    // would reschedule itself forever.
    std::size_t n = std::max<std::size_t>(cfg_.batch_size, 1);
    batch->keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t rank = zipf_.Next(&rng_);
      if (rank < hot_threshold_) ++result_.zipf_top1pct_hits;
      // Purchases serialize on per-content provider state (royalty and
      // usage counters — core/usage_stats in the real stack), so their
      // home shard is the CONTENT's home shard and popularity skew
      // concentrates load: zipf_alpha is a live contention knob.
      // Redeem/exchange/deposit route by unique license/coin ids, which
      // hash uniformly — faithful to ShardRouter over fresh ids.
      std::uint64_t key = batch->flow == Flow::kPurchase
                              ? SplitMix64(0xC0117E17ull ^ rank)
                              : SplitMix64(route_counter_++);
      batch->keys.push_back(key);
    }
    issued_items_ += n;
    StatsFor(batch->flow).issued += n;
    Send(std::move(batch));
  }

  /// One metered round trip: request wire time, then the server model.
  void Send(std::shared_ptr<Batch> batch) {
    batch->attempts += 1;
    ++result_.batches_sent;
    std::size_t req_bytes = batch->keys.size() * cfg_.request_bytes_per_item;
    result_.wire_messages += 1;
    result_.wire_bytes += req_bytes;
    loop_.ScheduleAfter(cfg_.wire.CostUs(req_bytes),
                        [this, batch = std::move(batch)]() { Serve(batch); });
  }

  /// The provider model: serialized amortized verify on the dispatcher,
  /// then per-item mutate+issue on each key's home shard behind the
  /// bounded backlog. Mirrors server::BatchPipeline's stage contract —
  /// kOverloaded originates at the shard admission point only, before
  /// any modeled state change.
  void Serve(const std::shared_ptr<Batch>& batch) {
    const FlowCost& cost = CostFor(batch->flow);
    const std::uint64_t arrival = clock_.NowUs();
    std::uint64_t verify_start = std::max(dispatcher_busy_until_, arrival);
    std::uint64_t verify_done =
        verify_start + cost.verify_us * batch->keys.size();
    dispatcher_busy_until_ = verify_done;

    std::vector<std::uint64_t> shed_keys;
    std::uint64_t last_done = verify_done;
    std::size_t accepted = 0;
    for (std::uint64_t key : batch->keys) {
      ShardState& shard = shards_[key % shards_.size()];
      while (!shard.completions.empty() &&
             shard.completions.front() <= verify_done) {
        shard.completions.pop_front();
      }
      if (shard.completions.size() >= cfg_.queue_capacity) {
        StatsFor(batch->flow).sheds += 1;
        shed_keys.push_back(key);
        continue;
      }
      std::uint64_t start = std::max(shard.busy_until_us, verify_done);
      std::uint64_t done;
      if (!signers_.empty()) {
        // Signer-pool model: the shard frees after its serialized
        // mutate; private-key work queues on the pool.
        std::uint64_t mutate_done = start + cost.mutate_us;
        shard.busy_until_us = mutate_done;
        done = IssueOnPool(&signers_, mutate_done, cost.issue_us);
      } else {
        done = start + cost.mutate_us + cost.issue_us;
        shard.busy_until_us = done;
      }
      shard.completions.push_back(done);
      result_.max_backlog_items = std::max<std::uint64_t>(
          result_.max_backlog_items, shard.completions.size());
      last_done = std::max(last_done, done);
      ++accepted;
    }

    // Response rides back once the slowest accepted item commits.
    std::size_t resp_bytes =
        batch->keys.size() * cfg_.response_bytes_per_item;
    result_.wire_messages += 1;
    result_.wire_bytes += resp_bytes;
    std::uint64_t recv =
        SaturatingAddUs(last_done, cfg_.wire.CostUs(resp_bytes));
    loop_.ScheduleAt(recv, [this, batch, accepted,
                            shed = std::move(shed_keys)]() {
      Receive(batch, accepted, shed);
    });
  }

  /// Client receives the per-item statuses: records completions,
  /// re-sends only the shed keys after honoring the full retry hint in
  /// virtual time, and — once the batch is fully resolved — schedules
  /// its next think cycle (closed loop).
  void Receive(const std::shared_ptr<Batch>& batch, std::size_t accepted,
               const std::vector<std::uint64_t>& shed) {
    FlowStats& fs = StatsFor(batch->flow);
    double item_latency =
        static_cast<double>(clock_.NowUs() - batch->first_send_us);
    for (std::size_t i = 0; i < accepted; ++i) {
      fs.completed += 1;
      fs.latency.Add(item_latency);
    }
    if (!shed.empty() && batch->attempts < cfg_.overload_max_attempts) {
      // A shed item left no server-side trace: re-batch only the shed
      // keys, after the hint — served by the event loop, not a sleep.
      fs.retried += shed.size();
      result_.backoff_ms_honored += cfg_.retry_hint_ms;
      batch->keys = shed;
      loop_.ScheduleAfter(
          static_cast<std::uint64_t>(cfg_.retry_hint_ms) * 1000ull,
          [this, batch]() { Send(batch); });
      return;
    }
    if (!shed.empty()) fs.exhausted += shed.size();
    // Batch resolved; the user thinks, then goes again.
    std::size_t user = batch->user;
    loop_.ScheduleAfter(SampleThinkUs(), [this, user]() { NextBatch(user); });
  }

  std::vector<ShardState> shards_;
  std::vector<std::uint64_t> signers_;  ///< empty = legacy shard-bound issue
  std::uint64_t dispatcher_busy_until_ = 0;
};

/// The cluster engine (ISSUE 6): same closed-loop workload, but the
/// provider is a REAL cluster::ProviderCluster — live spent sets, live
/// journal segments — fronted by per-replica MODELED resources (a
/// dispatcher and shards_per_replica shard backlogs each, identical to
/// the single-provider model). Correctness events (fresh spend,
/// double-spend rejection, journal replay on failover) are real;
/// every microsecond is virtual.
///
/// Clients share one (possibly stale) ring view. A batch splits into one
/// wire message per believed owner; a replica answers ids it does not
/// own — or any id when it is dead, modeling the fabric's
/// connection-refused path — with kWrongReplica + the live owner, which
/// refreshes the shared view and re-routes the item (bounded hops).
/// During the crash→failover window the moved ranges answer kOverloaded
/// (ProviderCluster's recovery gate), so the ordinary shed-retry loop is
/// what carries clients across the handoff.
class ClusterEngine : public EngineBase {
 public:
  explicit ClusterEngine(const ScenarioConfig& cfg) : EngineBase(cfg) {
    cluster::ClusterConfig cc;
    cc.replica_count = std::max<std::size_t>(cfg.cluster.replica_count, 2);
    cc.vnodes_per_replica = cfg.cluster.vnodes_per_replica;
    cc.shards_per_replica =
        std::max<std::size_t>(cfg.cluster.shards_per_replica, 1);
    cc.queue_capacity = std::max<std::size_t>(cfg.queue_capacity, 1);
    cc.journal_prefix = cfg.cluster.journal_prefix;
    cc.fresh_start = true;  // a scenario run owns its journal family
    cc.obs = cfg.obs;  // cluster records crash/failover instants + counters
    cluster_ = std::make_unique<cluster::ProviderCluster>(cc);
    client_ring_ = cluster_->ring();
    victim_ = static_cast<std::uint32_t>(cfg.cluster.crash_replica %
                                         cc.replica_count);
    replicas_.resize(cc.replica_count);
    for (ReplicaModel& rm : replicas_) {
      rm.shards.resize(cc.shards_per_replica);
      rm.signers.assign(cfg.signer_pool_size, 0);
    }
  }

  ScenarioResult Run() {
    TracerClockScope trace_clock(cfg_.obs.tracer, &clock_);
    ScheduleUsers();
    if (cfg_.cluster.crash_at_us > 0) {
      loop_.ScheduleAt(cfg_.cluster.crash_at_us, [this] { CrashEvent(); });
    }
    loop_.RunUntilIdle();
    result_.virtual_duration_us = clock_.NowUs();
    result_.events_executed = loop_.ExecutedCount();
    result_.cluster.enabled = true;
    result_.cluster.ring_epoch_final = cluster_->epoch();
    result_.cluster.replicas_alive_final = cluster_->AliveCount();
    result_.cluster.total_spent_final = cluster_->TotalSpentSize();
    return std::move(result_);
  }

 private:
  /// Modeled service resources of one replica (mirrors Engine's
  /// dispatcher + shard backlogs, one set per replica).
  struct ReplicaModel {
    std::uint64_t dispatcher_busy_until_us = 0;
    std::vector<ShardState> shards;
    std::vector<std::uint64_t> signers;  ///< per-replica signer pool
  };

  /// One in-flight wire message: the slice of a user's batch addressed
  /// to one replica. `outstanding` joins the slices of one think cycle.
  struct CBatch {
    std::size_t user = 0;
    Flow flow = Flow::kRedeem;
    std::uint64_t first_send_us = 0;
    std::size_t attempts = 0;  ///< wire sends (shed-retry budget)
    std::size_t hops = 0;      ///< kWrongReplica re-routes so far
    std::uint32_t target = 0;
    std::vector<rel::LicenseId> ids;
    std::shared_ptr<std::size_t> outstanding;
  };

  /// Unique per-serial license id. In cluster mode every flow routes by
  /// a fresh license/coin id (ring placement is license-keyed); the Zipf
  /// catalog draw still happens per item so the popularity metric — and
  /// the rng stream shape — matches the single-provider engine.
  static rel::LicenseId MakeId(std::uint64_t serial) {
    rel::LicenseId id;
    std::uint64_t a = SplitMix64(serial ^ 0x11D5EED5ull);
    std::uint64_t b = SplitMix64(serial + 0x9e3779b97f4a7c15ull);
    for (int i = 0; i < 8; ++i) {
      id.bytes[i] = static_cast<std::uint8_t>(a >> (56 - 8 * i));
      id.bytes[8 + i] = static_cast<std::uint8_t>(b >> (56 - 8 * i));
    }
    return id;
  }

  /// Modeled shard of an id within a replica (its own fold — which REAL
  /// runtime shard commits the id is the runtime's business).
  std::size_t ModelShardOf(const rel::LicenseId& id) const {
    std::uint64_t x = 0;
    for (int i = 8; i < 16; ++i) x = (x << 8) | id.bytes[i];
    return SplitMix64(x ^ 0x5AADull) % replicas_[0].shards.size();
  }

  void FirstBatch(std::size_t user) override { NextBatch(user); }

  void NextBatch(std::size_t user) {
    if (issued_items_ >= cfg_.total_requests) return;  // user retires
    Flow flow = SampleFlow();
    std::uint64_t now = clock_.NowUs();
    std::size_t n = std::max<std::size_t>(cfg_.batch_size, 1);
    std::vector<rel::LicenseId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t rank = zipf_.Next(&rng_);
      if (rank < hot_threshold_) ++result_.zipf_top1pct_hits;
      ids.push_back(MakeId(route_counter_++));
    }
    issued_items_ += n;
    StatsFor(flow).issued += n;
    // One wire message per believed owner (deterministic replica order).
    std::map<std::uint32_t, std::vector<rel::LicenseId>> groups;
    for (const rel::LicenseId& id : ids) {
      groups[client_ring_.OwnerOf(id)].push_back(id);
    }
    auto outstanding = std::make_shared<std::size_t>(groups.size());
    for (auto& [owner, slice] : groups) {
      auto batch = std::make_shared<CBatch>();
      batch->user = user;
      batch->flow = flow;
      batch->first_send_us = now;
      batch->target = owner;
      batch->ids = std::move(slice);
      batch->outstanding = outstanding;
      Send(std::move(batch));
    }
  }

  void Send(std::shared_ptr<CBatch> batch) {
    batch->attempts += 1;
    ++result_.batches_sent;
    std::size_t req_bytes = batch->ids.size() * cfg_.request_bytes_per_item;
    result_.wire_messages += 1;
    result_.wire_bytes += req_bytes;
    loop_.ScheduleAfter(cfg_.wire.CostUs(req_bytes),
                        [this, batch = std::move(batch)]() { Serve(batch); });
  }

  void Serve(const std::shared_ptr<CBatch>& batch) {
    const std::uint32_t r = batch->target;
    const FlowCost& cost = CostFor(batch->flow);
    std::vector<cluster::SpendOutcome> outcomes;
    cluster_->ClassifyBatch(r, batch->ids, &outcomes);

    const std::uint64_t arrival = clock_.NowUs();
    std::uint64_t verify_done = arrival;
    if (cluster_->IsAlive(r)) {
      // A live replica pays amortized verify for the whole slice; a dead
      // target's kWrongReplica comes from the fabric at wire speed.
      ReplicaModel& rm = replicas_[r];
      std::uint64_t verify_start =
          std::max(rm.dispatcher_busy_until_us, arrival);
      verify_done = verify_start + cost.verify_us * batch->ids.size();
      rm.dispatcher_busy_until_us = verify_done;
    }

    std::vector<rel::LicenseId> redirect_ids;
    std::vector<rel::LicenseId> shed_ids;
    std::vector<rel::LicenseId> admitted;
    std::uint64_t last_done = verify_done;
    for (std::size_t i = 0; i < batch->ids.size(); ++i) {
      const rel::LicenseId& id = batch->ids[i];
      switch (outcomes[i].status) {
        case core::Status::kWrongReplica:
          ++result_.cluster.redirect_responses;
          redirect_ids.push_back(id);
          break;
        case core::Status::kOverloaded:  // recovery gate: range mid-replay
          StatsFor(batch->flow).sheds += 1;
          shed_ids.push_back(id);
          break;
        default: {  // kOk: modeled backlog admission, then a real spend
          ShardState& shard = replicas_[r].shards[ModelShardOf(id)];
          while (!shard.completions.empty() &&
                 shard.completions.front() <= verify_done) {
            shard.completions.pop_front();
          }
          if (shard.completions.size() >= cfg_.queue_capacity) {
            StatsFor(batch->flow).sheds += 1;
            shed_ids.push_back(id);
            break;
          }
          std::uint64_t start = std::max(shard.busy_until_us, verify_done);
          std::uint64_t done;
          if (!replicas_[r].signers.empty()) {
            std::uint64_t mutate_done = start + cost.mutate_us;
            shard.busy_until_us = mutate_done;
            done = IssueOnPool(&replicas_[r].signers, mutate_done,
                               cost.issue_us);
          } else {
            done = start + cost.mutate_us + cost.issue_us;
            shard.busy_until_us = done;
          }
          shard.completions.push_back(done);
          result_.max_backlog_items = std::max<std::uint64_t>(
              result_.max_backlog_items, shard.completions.size());
          last_done = std::max(last_done, done);
          admitted.push_back(id);
          break;
        }
      }
    }

    if (!redirect_ids.empty() && cfg_.obs.tracer != nullptr) {
      cfg_.obs.tracer->Instant("redirect", "items", redirect_ids.size());
    }

    std::size_t completed = 0;
    if (!admitted.empty()) {
      // The real commit: actual spent-set inserts + journal appends on
      // r's runtime. Ids are unique, so every admitted id lands kOk.
      std::vector<cluster::SpendOutcome> spent;
      cluster_->SpendBatchAt(r, admitted, &spent);
      for (const cluster::SpendOutcome& o : spent) {
        if (o.status == core::Status::kOk ||
            o.status == core::Status::kAlreadySpent) {
          ++completed;
        }
      }
      if (!crashed_ && r == victim_) {
        // Remember what the future victim committed — the failover audit
        // re-spends exactly these to prove none were lost.
        committed_on_victim_.insert(committed_on_victim_.end(),
                                    admitted.begin(), admitted.end());
      }
    }

    std::size_t resp_bytes = batch->ids.size() * cfg_.response_bytes_per_item;
    result_.wire_messages += 1;
    result_.wire_bytes += resp_bytes;
    std::uint64_t recv =
        SaturatingAddUs(last_done, cfg_.wire.CostUs(resp_bytes));
    loop_.ScheduleAt(recv, [this, batch, completed,
                            shed = std::move(shed_ids),
                            redirects = std::move(redirect_ids)]() {
      Receive(batch, completed, shed, redirects);
    });
  }

  void Receive(const std::shared_ptr<CBatch>& batch, std::size_t completed,
               const std::vector<rel::LicenseId>& shed,
               const std::vector<rel::LicenseId>& redirects) {
    FlowStats& fs = StatsFor(batch->flow);
    double item_latency =
        static_cast<double>(clock_.NowUs() - batch->first_send_us);
    for (std::size_t i = 0; i < completed; ++i) {
      fs.completed += 1;
      fs.latency.Add(item_latency);
    }

    if (!shed.empty()) {
      if (batch->attempts < cfg_.overload_max_attempts) {
        // Same target on purpose: the gate lifts when failover completes,
        // so the ordinary hinted retry is the recovery path.
        fs.retried += shed.size();
        result_.backoff_ms_honored += cfg_.retry_hint_ms;
        auto child = Child(batch, batch->target, shed, batch->hops);
        loop_.ScheduleAfter(
            static_cast<std::uint64_t>(cfg_.retry_hint_ms) * 1000ull,
            [this, child]() { Send(child); });
      } else {
        fs.exhausted += shed.size();
      }
    }

    if (!redirects.empty()) {
      // The redirect hint carries the live ring epoch: the client
      // refreshes the SHARED view (every user benefits) and re-routes.
      client_ring_ = cluster_->ring();
      if (batch->hops < cfg_.cluster.redirect_max_hops) {
        std::map<std::uint32_t, std::vector<rel::LicenseId>> groups;
        for (const rel::LicenseId& id : redirects) {
          groups[client_ring_.OwnerOf(id)].push_back(id);
        }
        for (auto& [owner, slice] : groups) {
          auto child = Child(batch, owner, slice, batch->hops + 1);
          Send(std::move(child));
        }
      } else {
        fs.redirected += redirects.size();
      }
    }

    if (--*batch->outstanding == 0) {
      std::size_t user = batch->user;
      loop_.ScheduleAfter(SampleThinkUs(),
                          [this, user]() { NextBatch(user); });
    }
  }

  /// A follow-up slice (retry or re-route) joining the same think cycle.
  std::shared_ptr<CBatch> Child(const std::shared_ptr<CBatch>& parent,
                                std::uint32_t target,
                                const std::vector<rel::LicenseId>& ids,
                                std::size_t hops) {
    auto child = std::make_shared<CBatch>();
    child->user = parent->user;
    child->flow = parent->flow;
    child->first_send_us = parent->first_send_us;
    child->attempts = parent->attempts;
    child->hops = hops;
    child->target = target;
    child->ids = ids;
    child->outstanding = parent->outstanding;
    ++*child->outstanding;
    return child;
  }

  void CrashEvent() {
    if (!cluster_->IsAlive(victim_) || cluster_->Recovering()) return;
    cluster_->Crash(victim_, cfg_.cluster.tear_journal_tail);
    crashed_ = true;
    result_.cluster.crash_at_us = clock_.NowUs();
    // The recovery-gate span opens at the crash (Crash itself emitted the
    // cluster.crash instant) and closes when FailoverEvent lifts it.
    if (cfg_.obs.tracer != nullptr) cfg_.obs.tracer->Begin("recovery_gate");
    // Failover duration is modeled from what is REALLY on disk: the
    // victim's intact journal records (the torn tail, if injected, is
    // not among them). Detection and replay are two scheduled events —
    // regardless of tracing, so events_executed is identical traced or
    // not — which gives the trace a journal_replay span that starts when
    // detection fires rather than one opaque crash→done gap.
    std::uint64_t records = cluster_->JournalRecordCount(victim_);
    loop_.ScheduleAfter(cfg_.cluster.failover_detect_us, [this, records] {
      if (cfg_.obs.tracer != nullptr) {
        cfg_.obs.tracer->BeginWithArg("journal_replay", "records", records);
      }
      loop_.ScheduleAfter(cfg_.cluster.replay_per_record_us * records,
                          [this] { FailoverEvent(); });
    });
  }

  void FailoverEvent() {
    cluster::FailoverStats fo = cluster_->CompleteFailover();
    result_.cluster.failover_completed_at_us = clock_.NowUs();
    result_.cluster.replayed_records = fo.records;
    result_.cluster.imported_fresh = fo.imported_fresh;
    result_.cluster.imported_duplicates = fo.imported_duplicates;
    result_.cluster.torn_tails_skipped = fo.torn_tails;
    if (cfg_.obs.tracer != nullptr) {
      // Close in nesting order: replay ends, then the gate lifts (both at
      // this instant — CompleteFailover already emitted its own marker).
      cfg_.obs.tracer->End("journal_replay");
      cfg_.obs.tracer->End("recovery_gate");
    }
    if (!cfg_.cluster.audit_after_failover) return;
    // The invariant, checked against the real spent sets: every id the
    // victim committed must still be refused everywhere. Any kOk here is
    // a double spend that journal replay failed to prevent.
    result_.cluster.audit_rechecks = committed_on_victim_.size();
    std::map<std::uint32_t, std::vector<rel::LicenseId>> groups;
    for (const rel::LicenseId& id : committed_on_victim_) {
      groups[cluster_->OwnerOf(id)].push_back(id);
    }
    for (auto& [owner, slice] : groups) {
      std::vector<cluster::SpendOutcome> out;
      cluster_->SpendBatchAt(owner, slice, &out);
      for (const cluster::SpendOutcome& o : out) {
        if (o.status == core::Status::kOk) ++result_.cluster.double_spends;
      }
    }
  }

  std::unique_ptr<cluster::ProviderCluster> cluster_;
  cluster::HashRing client_ring_;  ///< the clients' shared (stale) view
  std::vector<ReplicaModel> replicas_;
  std::vector<rel::LicenseId> committed_on_victim_;
  std::uint32_t victim_ = 0;
  bool crashed_ = false;
};

}  // namespace

ScenarioDriver::ScenarioDriver(const ScenarioConfig& config)
    : config_(config) {}

ScenarioResult ScenarioDriver::Run() {
  if (config_.cluster.enabled) {
    ClusterEngine engine(config_);
    return engine.Run();
  }
  Engine engine(config_);
  return engine.Run();
}

}  // namespace sim
}  // namespace p2drm
