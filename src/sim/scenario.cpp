#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>

#include "crypto/drbg.h"
#include "sim/zipf.h"

namespace p2drm {
namespace sim {

const char* FlowName(Flow flow) {
  switch (flow) {
    case Flow::kRedeem: return "redeem";
    case Flow::kPurchase: return "purchase";
    case Flow::kExchange: return "exchange";
    case Flow::kDeposit: return "deposit";
  }
  return "unknown";
}

std::uint64_t ScenarioResult::TotalIssued() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.issued;
  return n;
}
std::uint64_t ScenarioResult::TotalCompleted() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.completed;
  return n;
}
std::uint64_t ScenarioResult::TotalSheds() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.sheds;
  return n;
}
std::uint64_t ScenarioResult::TotalExhausted() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows) n += f.exhausted;
  return n;
}

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One in-flight client batch (shrinks to the shed indices on retries).
struct Batch {
  std::size_t user = 0;
  Flow flow = Flow::kRedeem;
  std::uint64_t first_send_us = 0;
  std::size_t attempts = 0;               ///< wire sends so far
  std::vector<std::uint64_t> keys;        ///< routing keys still unresolved
};

/// The whole scenario engine: one driving thread, one event loop, no
/// wall clock anywhere.
class Engine {
 public:
  explicit Engine(const ScenarioConfig& cfg)
      : cfg_(cfg),
        clock_(/*start_epoch_s=*/0),
        loop_(&clock_),
        rng_(cfg.name + ":" + std::to_string(cfg.seed)),
        zipf_(std::max<std::size_t>(cfg.catalog_size, 1), cfg.zipf_alpha),
        shards_(std::max<std::size_t>(cfg.shard_count, 1)),
        hot_threshold_(std::max<std::size_t>(cfg.catalog_size / 100, 1)) {
    result_.name = cfg_.name;
    result_.flows = {};
  }

  ScenarioResult Run() {
    for (std::size_t u = 0; u < cfg_.num_users; ++u) {
      std::uint64_t start =
          cfg_.ramp_us == 0
              ? 0
              : static_cast<std::uint64_t>(
                    (static_cast<unsigned __int128>(cfg_.ramp_us) * u) /
                    cfg_.num_users);
      loop_.ScheduleAt(start, [this, u] { NextBatch(u); });
    }
    loop_.RunUntilIdle();
    result_.virtual_duration_us = clock_.NowUs();
    result_.events_executed = loop_.ExecutedCount();
    return std::move(result_);
  }

 private:
  struct ShardState {
    std::uint64_t busy_until_us = 0;
    /// Completion instants of queued + in-flight items; its size is the
    /// backlog the bounded-queue check runs against. Arrivals reach the
    /// shards in nondecreasing dispatcher order, so popping the front
    /// lazily is exact.
    std::deque<std::uint64_t> completions;
  };

  double U01() { return rng_.NextUnitDouble(); }

  double ThinkScaleAt(std::uint64_t t_us) const {
    double scale = 1.0;
    for (const BurstWindow& w : cfg_.bursts) {
      if (t_us >= w.start_us && t_us < w.end_us) scale *= w.think_scale;
    }
    return scale;
  }

  std::uint64_t SampleThinkUs() {
    // Exponential inter-batch think time, scaled by any active burst.
    double u = U01();
    double t = -static_cast<double>(cfg_.mean_think_us) * std::log1p(-u);
    t *= ThinkScaleAt(clock_.NowUs());
    return t < 1.0 ? 1 : static_cast<std::uint64_t>(t);
  }

  Flow SampleFlow() {
    double total = 0;
    for (double w : cfg_.mix) total += w;
    if (total <= 0) return Flow::kRedeem;
    double r = U01() * total;
    Flow last_weighted = Flow::kRedeem;
    for (std::size_t f = 0; f < kFlowCount; ++f) {
      if (cfg_.mix[f] <= 0) continue;  // zero weight can never be drawn
      last_weighted = static_cast<Flow>(f);
      r -= cfg_.mix[f];
      if (r < 0) return last_weighted;
    }
    // Floating-point rounding can leave r == 0 after the last subtract;
    // that draw belongs to the last flow with actual weight.
    return last_weighted;
  }

  FlowStats& StatsFor(Flow f) {
    return result_.flows[static_cast<std::size_t>(f)];
  }
  const FlowCost& CostFor(Flow f) const {
    return cfg_.cost[static_cast<std::size_t>(f)];
  }

  /// Client builds and sends a fresh batch (or retires when the
  /// scenario's request budget is spent).
  void NextBatch(std::size_t user) {
    if (issued_items_ >= cfg_.total_requests) return;  // user retires
    auto batch = std::make_shared<Batch>();
    batch->user = user;
    batch->flow = SampleFlow();
    batch->first_send_us = clock_.NowUs();
    // Clamped to >= 1: a zero-item batch would never move
    // issued_items_ toward the stop condition and the closed loop
    // would reschedule itself forever.
    std::size_t n = std::max<std::size_t>(cfg_.batch_size, 1);
    batch->keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t rank = zipf_.Next(&rng_);
      if (rank < hot_threshold_) ++result_.zipf_top1pct_hits;
      // Purchases serialize on per-content provider state (royalty and
      // usage counters — core/usage_stats in the real stack), so their
      // home shard is the CONTENT's home shard and popularity skew
      // concentrates load: zipf_alpha is a live contention knob.
      // Redeem/exchange/deposit route by unique license/coin ids, which
      // hash uniformly — faithful to ShardRouter over fresh ids.
      std::uint64_t key = batch->flow == Flow::kPurchase
                              ? SplitMix64(0xC0117E17ull ^ rank)
                              : SplitMix64(route_counter_++);
      batch->keys.push_back(key);
    }
    issued_items_ += n;
    StatsFor(batch->flow).issued += n;
    Send(std::move(batch));
  }

  /// One metered round trip: request wire time, then the server model.
  void Send(std::shared_ptr<Batch> batch) {
    batch->attempts += 1;
    ++result_.batches_sent;
    std::size_t req_bytes = batch->keys.size() * cfg_.request_bytes_per_item;
    result_.wire_messages += 1;
    result_.wire_bytes += req_bytes;
    loop_.ScheduleAfter(cfg_.wire.CostUs(req_bytes),
                        [this, batch = std::move(batch)]() { Serve(batch); });
  }

  /// The provider model: serialized amortized verify on the dispatcher,
  /// then per-item mutate+issue on each key's home shard behind the
  /// bounded backlog. Mirrors server::BatchPipeline's stage contract —
  /// kOverloaded originates at the shard admission point only, before
  /// any modeled state change.
  void Serve(const std::shared_ptr<Batch>& batch) {
    const FlowCost& cost = CostFor(batch->flow);
    const std::uint64_t arrival = clock_.NowUs();
    std::uint64_t verify_start = std::max(dispatcher_busy_until_, arrival);
    std::uint64_t verify_done =
        verify_start + cost.verify_us * batch->keys.size();
    dispatcher_busy_until_ = verify_done;

    std::vector<std::uint64_t> shed_keys;
    std::uint64_t last_done = verify_done;
    std::size_t accepted = 0;
    for (std::uint64_t key : batch->keys) {
      ShardState& shard = shards_[key % shards_.size()];
      while (!shard.completions.empty() &&
             shard.completions.front() <= verify_done) {
        shard.completions.pop_front();
      }
      if (shard.completions.size() >= cfg_.queue_capacity) {
        StatsFor(batch->flow).sheds += 1;
        shed_keys.push_back(key);
        continue;
      }
      std::uint64_t start = std::max(shard.busy_until_us, verify_done);
      std::uint64_t done = start + cost.mutate_us + cost.issue_us;
      shard.busy_until_us = done;
      shard.completions.push_back(done);
      result_.max_backlog_items = std::max<std::uint64_t>(
          result_.max_backlog_items, shard.completions.size());
      last_done = std::max(last_done, done);
      ++accepted;
    }

    // Response rides back once the slowest accepted item commits.
    std::size_t resp_bytes =
        batch->keys.size() * cfg_.response_bytes_per_item;
    result_.wire_messages += 1;
    result_.wire_bytes += resp_bytes;
    std::uint64_t recv =
        SaturatingAddUs(last_done, cfg_.wire.CostUs(resp_bytes));
    loop_.ScheduleAt(recv, [this, batch, accepted,
                            shed = std::move(shed_keys)]() {
      Receive(batch, accepted, shed);
    });
  }

  /// Client receives the per-item statuses: records completions,
  /// re-sends only the shed keys after honoring the full retry hint in
  /// virtual time, and — once the batch is fully resolved — schedules
  /// its next think cycle (closed loop).
  void Receive(const std::shared_ptr<Batch>& batch, std::size_t accepted,
               const std::vector<std::uint64_t>& shed) {
    FlowStats& fs = StatsFor(batch->flow);
    double item_latency =
        static_cast<double>(clock_.NowUs() - batch->first_send_us);
    for (std::size_t i = 0; i < accepted; ++i) {
      fs.completed += 1;
      fs.latency.Add(item_latency);
    }
    if (!shed.empty() && batch->attempts < cfg_.overload_max_attempts) {
      // A shed item left no server-side trace: re-batch only the shed
      // keys, after the hint — served by the event loop, not a sleep.
      fs.retried += shed.size();
      result_.backoff_ms_honored += cfg_.retry_hint_ms;
      batch->keys = shed;
      loop_.ScheduleAfter(
          static_cast<std::uint64_t>(cfg_.retry_hint_ms) * 1000ull,
          [this, batch]() { Send(batch); });
      return;
    }
    if (!shed.empty()) fs.exhausted += shed.size();
    // Batch resolved; the user thinks, then goes again.
    std::size_t user = batch->user;
    loop_.ScheduleAfter(SampleThinkUs(), [this, user]() { NextBatch(user); });
  }

  ScenarioConfig cfg_;
  VirtualClock clock_;
  EventLoop loop_;
  crypto::HmacDrbg rng_;
  ZipfGenerator zipf_;
  std::vector<ShardState> shards_;
  std::size_t hot_threshold_;
  std::uint64_t dispatcher_busy_until_ = 0;
  std::uint64_t issued_items_ = 0;
  std::uint64_t route_counter_ = 0;
  ScenarioResult result_;
};

}  // namespace

ScenarioDriver::ScenarioDriver(const ScenarioConfig& config)
    : config_(config) {}

ScenarioResult ScenarioDriver::Run() {
  Engine engine(config_);
  return engine.Run();
}

}  // namespace sim
}  // namespace p2drm
