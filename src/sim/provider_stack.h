#ifndef P2DRM_SIM_PROVIDER_STACK_H_
#define P2DRM_SIM_PROVIDER_STACK_H_

/// \file provider_stack.h
/// \brief One deterministic full provider stack — CA, TTP, bank, content
/// provider, smartcard — for tests and benches that drive the issuance
/// pipeline end to end.
///
/// Everything is seeded from one named HmacDrbg, so two stacks built
/// from the same seed and driven through the same call sequence hold
/// bit-identical keys, coins and licenses. That is the property the
/// pipeline's serial-vs-parallel comparisons (tests/pipeline_test.cpp)
/// and the scaling bench's per-shard-count runs rely on. Setup failures
/// throw std::runtime_error: a gtest binary reports that as a test
/// failure, a bench dies loudly.

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/certification_authority.h"
#include "core/content_provider.h"
#include "core/smartcard.h"
#include "core/ttp.h"
#include "crypto/blind_rsa.h"
#include "crypto/drbg.h"

namespace p2drm {
namespace sim {

struct ProviderStack {
  static constexpr const char* kAccount = "pat";

  ProviderStack(const std::string& seed, std::size_t redeem_shards,
                std::size_t key_bits = 512, std::size_t queue_capacity = 4096,
                std::size_t signer_pool_size = 0,
                std::size_t max_batches_in_flight = 4)
      : rng(seed),
        ca(key_bits, &rng),
        ttp(key_bits, &rng),
        bank(key_bits, &rng),
        cp(Config(redeem_shards, key_bits, queue_capacity, signer_pool_size,
                  max_batches_in_flight),
           &rng, &clock, &bank, ca.PublicKey()),
        card("Pat", key_bits, &rng) {
    card.StoreIdentityCertificate(ca.Enrol("Pat", card.MasterKey()));
    bank.OpenAccount(kAccount, 1u << 20);
    content = cp.Publish("Album", std::vector<std::uint8_t>(64, 0x5a), 30,
                         rel::Rights::FullRetail());
  }

  static core::ContentProviderConfig Config(
      std::size_t redeem_shards, std::size_t key_bits,
      std::size_t queue_capacity = 4096, std::size_t signer_pool_size = 0,
      std::size_t max_batches_in_flight = 4) {
    core::ContentProviderConfig c;
    c.signing_key_bits = key_bits;
    c.redeem_shards = redeem_shards;
    c.redeem_queue_capacity = queue_capacity;
    c.signer_pool_size = signer_pool_size;
    c.max_batches_in_flight = max_batches_in_flight;
    return c;
  }

  /// Buys one key-bound license for \p p (status-checked).
  rel::License NewBoundLicense(core::Pseudonym* p) {
    auto bought = cp.Purchase(p->cert, content, Pay(30));
    if (bought.status != core::Status::kOk) {
      throw std::runtime_error("ProviderStack: purchase failed");
    }
    return bought.license;
  }

  /// Possession proof for exchanging \p license (signed by \p p's key).
  std::vector<std::uint8_t> PossessionSig(core::Pseudonym* p,
                                          const rel::License& license) {
    return card.SignWithPseudonym(
        p->cert.KeyId(),
        core::ContentProvider::TransferChallengeBytes(license.id));
  }

  core::Pseudonym* NewPseudonym() {
    core::PseudonymRequest req =
        card.BeginPseudonym(ca.PublicKey(), ttp.EscrowKey());
    bignum::BigInt sig =
        ca.SignPseudonymBlinded(card.CardId(), req.blinding.blinded);
    core::Pseudonym* p =
        card.FinishPseudonym(std::move(req), sig, ca.PublicKey());
    if (p == nullptr) {
      throw std::runtime_error("ProviderStack: pseudonym setup failed");
    }
    return p;
  }

  /// Withdraws and unblinds coins summing to \p amount.
  std::vector<core::Coin> Pay(std::uint64_t amount) {
    std::vector<core::Coin> coins;
    for (auto d : core::PlanCoins(amount)) {
      core::Coin coin;
      rng.Fill(coin.serial.data(), coin.serial.size());
      coin.denomination = d;
      const auto& key = bank.DenominationKey(d);
      auto ctx = crypto::BlindMessage(key, coin.CanonicalBytes(), &rng);
      bignum::BigInt blind_sig;
      if (bank.Withdraw(kAccount, d, ctx.blinded, &blind_sig) !=
          core::Status::kOk) {
        throw std::runtime_error("ProviderStack: withdraw failed");
      }
      coin.signature = crypto::Unblind(key, ctx, blind_sig);
      coins.push_back(coin);
    }
    return coins;
  }

  /// Buys and exchanges one license, returning the anonymous bearer.
  rel::License NewBearer(core::Pseudonym* p) {
    auto bought = cp.Purchase(p->cert, content, Pay(30));
    if (bought.status != core::Status::kOk) {
      throw std::runtime_error("ProviderStack: purchase failed");
    }
    auto sig = card.SignWithPseudonym(
        p->cert.KeyId(),
        core::ContentProvider::TransferChallengeBytes(bought.license.id));
    auto exch = cp.ExchangeForAnonymous(bought.license, sig);
    if (exch.status != core::Status::kOk) {
      throw std::runtime_error("ProviderStack: exchange failed");
    }
    return exch.anonymous_license;
  }

  crypto::HmacDrbg rng;
  core::SimClock clock;
  core::CertificationAuthority ca;
  core::TrustedThirdParty ttp;
  core::PaymentProvider bank;
  core::ContentProvider cp;
  core::SmartCard card;
  rel::ContentId content = 0;
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_PROVIDER_STACK_H_
