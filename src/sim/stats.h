#ifndef P2DRM_SIM_STATS_H_
#define P2DRM_SIM_STATS_H_

/// \file stats.h
/// \brief Latency histogram and summary statistics for the bench harness.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace p2drm {
namespace sim {

/// Accumulates samples; reports mean and percentiles.
class LatencyStats {
 public:
  void Add(double value_us) { samples_.push_back(value_us); }

  std::size_t Count() const { return samples_.size(); }

  double Mean() const;
  /// p in [0,100]; nearest-rank on the sorted samples.
  double Percentile(double p) const;
  double Min() const;
  double Max() const;

  /// "mean=… p50=… p99=… max=…" summary line.
  std::string Summary() const;

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<double> samples_;
  void Sort() const { std::sort(samples_.begin(), samples_.end()); }
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_STATS_H_
