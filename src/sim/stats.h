#ifndef P2DRM_SIM_STATS_H_
#define P2DRM_SIM_STATS_H_

/// \file stats.h
/// \brief Latency histogram and summary statistics for the bench harness.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace p2drm {
namespace sim {

/// Accumulates samples; reports mean and percentiles.
///
/// The sample vector is sorted at most once per batch of Adds: accessors
/// sort lazily and remember it, and Add/Merge only mark the order dirty.
/// (The old behaviour — re-sorting on every accessor call — dominated
/// bench harness time at >= 1M samples.)
class LatencyStats {
 public:
  void Add(double value_us) {
    samples_.push_back(value_us);
    sorted_ = false;
  }

  /// Folds another run's samples into this one (per-shard merging).
  void Merge(const LatencyStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  std::size_t Count() const { return samples_.size(); }

  double Mean() const;
  /// p in [0,100]; nearest-rank on the sorted samples.
  double Percentile(double p) const;
  double Min() const;
  double Max() const;

  /// "mean=… p50=… p99=… max=…" summary line.
  std::string Summary() const;

 private:
  // Sorted lazily by the accessors; sorted_ tracks whether the current
  // contents are already in order so repeated accessors cost O(1).
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;

  void EnsureSorted() const {
    if (sorted_) return;
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
};

}  // namespace sim
}  // namespace p2drm

#endif  // P2DRM_SIM_STATS_H_
