#include "cluster/hash_ring.h"

#include <algorithm>

namespace p2drm {
namespace cluster {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Ring point of one virtual node. The replica id and vnode index are
/// packed before mixing so distinct (replica, vnode) pairs land on
/// distinct points with overwhelming probability; a residual collision is
/// resolved deterministically by the (point, replica) sort order.
std::uint64_t VnodePoint(std::uint32_t replica, std::size_t vnode) {
  return SplitMix64((static_cast<std::uint64_t>(replica) << 32) ^
                    static_cast<std::uint64_t>(vnode) ^
                    0xC1A57E12D00DULL);  // ring domain tag
}

}  // namespace

std::uint64_t RingPointOf(const rel::LicenseId& id) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x = (x << 8) | id.bytes[i];
  }
  std::uint64_t y = 0;
  for (int i = 8; i < 16; ++i) {
    y = (y << 8) | id.bytes[i];
  }
  // Different fold than ShardRouter::ShardFor (y-side constant XOR'd in
  // before the finalizer) so a replica's ring ranges shatter across its
  // internal shards instead of aliasing them.
  return SplitMix64(x ^ 0x5C1u) ^ SplitMix64(y);
}

void HashRing::AddReplica(std::uint32_t replica) {
  if (Contains(replica)) return;
  replicas_.insert(
      std::upper_bound(replicas_.begin(), replicas_.end(), replica), replica);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    VirtualNode node{VnodePoint(replica, v), replica};
    auto pos = std::upper_bound(
        ring_.begin(), ring_.end(), node,
        [](const VirtualNode& a, const VirtualNode& b) {
          return a.point != b.point ? a.point < b.point
                                    : a.replica < b.replica;
        });
    ring_.insert(pos, node);
  }
  ++epoch_;
}

void HashRing::RemoveReplica(std::uint32_t replica) {
  if (!Contains(replica)) return;
  replicas_.erase(
      std::remove(replicas_.begin(), replicas_.end(), replica),
      replicas_.end());
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [replica](const VirtualNode& n) {
                               return n.replica == replica;
                             }),
              ring_.end());
  ++epoch_;
}

bool HashRing::Contains(std::uint32_t replica) const {
  return std::binary_search(replicas_.begin(), replicas_.end(), replica);
}

std::uint32_t HashRing::OwnerOfPoint(std::uint64_t point) const {
  // First virtual node at or clockwise past the point; wrap to the
  // lowest node past the top of the 64-bit space.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VirtualNode& n, std::uint64_t p) { return n.point < p; });
  if (it == ring_.end()) it = ring_.begin();
  return it->replica;
}

}  // namespace cluster
}  // namespace p2drm
