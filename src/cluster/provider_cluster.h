#ifndef P2DRM_CLUSTER_PROVIDER_CLUSTER_H_
#define P2DRM_CLUSTER_PROVIDER_CLUSTER_H_

/// \file provider_cluster.h
/// \brief Multi-replica provider cluster: consistent-hash ownership over
/// N ServerRuntime replicas with journal-based failover.
///
/// One provider process is the ceiling on "millions of users": every
/// spend funnels into one ServerRuntime, so shard count is the only
/// scaling axis. ProviderCluster adds the replica axis while preserving
/// the paper's core guarantee — no license id is ever spent twice — even
/// through a replica crash:
///
///  * Ownership. A HashRing (virtual nodes, license-id keyed) partitions
///    the id space across replicas; each replica runs its own
///    ServerRuntime, whose ShardRouter then partitions the replica's
///    share across worker shards. Requests for keys a replica does not
///    own come back kWrongReplica with the current ring epoch and owner,
///    so clients with a stale ring view re-route instead of erroring.
///  * Durability. Each replica journals fresh spends into its own
///    segment family `<prefix>.r<k>.shard<j>` (ServerRuntime's existing
///    journal machinery). A crash loses the replica's memory, not its
///    journals.
///  * Failover. Crash(r) removes r from the ring (epoch bump) and opens
///    a recovery window: keys that USED to be owned by r are gated with
///    kOverloaded — the surviving owner must not admit traffic for a
///    moved range until it holds the range's spent history, or a
///    double-spend could slip through the handoff. CompleteFailover()
///    replays the dead replica's journal segments (torn tails from a
///    crash mid-append are skipped, per store::AppendLog) into each
///    record's NEW owner via ServerRuntime::ImportSpent — idempotent, so
///    overlapping or repeated segments cannot distort the spent set —
///    then lifts the gate.
///
/// Lifecycle transitions (crash, failover completion, join) are plain
/// method calls precisely so sim::EventLoop can schedule them as
/// deterministic events — node failure becomes a replayable scenario
/// (docs/cluster.md), not a flaky integration test.
///
/// Threading: each replica's ServerRuntime runs its own shard workers,
/// but ProviderCluster itself must be driven from one thread at a time
/// (the scenario driver's event loop, or a test). Spend calls use the
/// runtime's blocking submit path, so outcomes are a pure function of
/// call order.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hash_ring.h"
#include "core/errors.h"
#include "obs/trace.h"
#include "rel/ids.h"
#include "server/server_runtime.h"
#include "store/spent_set.h"

namespace p2drm {
namespace cluster {

/// Cluster-wide configuration.
struct ClusterConfig {
  std::size_t replica_count = 3;
  std::size_t vnodes_per_replica = 64;
  /// Per-replica ServerRuntime shards (the intra-replica axis).
  std::size_t shards_per_replica = 2;
  std::size_t queue_capacity = 4096;
  store::SpentSetBackend spent_backend = store::SpentSetBackend::kFlat;
  /// Journal family base: replica k journals under `<prefix>.r<k>` (each
  /// runtime then appends its own `.shard<j>`). Empty disables journaling
  /// — and with it, failover (CompleteFailover would have nothing to
  /// replay).
  std::string journal_prefix;
  /// Remove any pre-existing segment files at construction so a run is a
  /// pure function of its traffic — the scenario determinism contract.
  /// Set false to restart a cluster from surviving journals.
  bool fresh_start = true;
  /// Tracing + metrics endpoints (null = off). The tracer records the
  /// failover timeline (crash / failover-complete / replica-join instant
  /// events, emitted on the lifecycle caller's thread); the registry gets
  /// cluster.redirects / cluster.gate_sheds / cluster.crashes /
  /// cluster.failover.* counters plus each replica runtime's
  /// cluster.r<k>.* queue accounting.
  obs::Sink obs;
};

/// Per-id outcome of a routed spend.
struct SpendOutcome {
  core::Status status = core::Status::kInternalError;
  /// On kWrongReplica: the replica that owns the id under the current
  /// ring (the redirect target). Otherwise the replica that answered.
  std::uint32_t owner = 0;
};

/// What one failover replay did.
struct FailoverStats {
  std::uint32_t dead_replica = 0;
  std::size_t segments = 0;        ///< journal segments scanned
  std::uint64_t records = 0;       ///< intact records replayed
  std::uint64_t imported_fresh = 0;    ///< ids new to their inheritor
  std::uint64_t imported_duplicates = 0;  ///< ids the inheritor already had
  std::size_t torn_tails = 0;      ///< segments ending in a skipped torn tail
};

/// N provider replicas behind a consistent-hash ring.
class ProviderCluster {
 public:
  explicit ProviderCluster(const ClusterConfig& config);

  ProviderCluster(const ProviderCluster&) = delete;
  ProviderCluster& operator=(const ProviderCluster&) = delete;

  /// Journal family base of replica \p r under \p prefix.
  static std::string ReplicaJournalPrefix(const std::string& prefix,
                                          std::uint32_t r);

  const HashRing& ring() const { return ring_; }
  std::uint64_t epoch() const { return ring_.epoch(); }
  std::uint32_t OwnerOf(const rel::LicenseId& id) const {
    return ring_.OwnerOf(id);
  }
  std::size_t replica_count() const { return replicas_.size(); }
  bool IsAlive(std::uint32_t r) const {
    return r < replicas_.size() && replicas_[r].runtime != nullptr;
  }
  std::size_t AliveCount() const;
  bool Recovering() const { return recovering_; }

  /// Classifies \p ids as a request addressed to replica \p r WITHOUT
  /// touching any state — the admission decision an arriving batch faces:
  ///  * kWrongReplica — r is dead or does not own the id under the
  ///    current ring (outcome.owner names the redirect target);
  ///  * kOverloaded — the id's range is mid-failover (owned by the dead
  ///    replica until CompleteFailover lifts the gate);
  ///  * kOk — r owns the id and would spend it.
  /// Callers that model their own queueing (the scenario driver) classify
  /// first, apply backpressure, then commit the survivors via
  /// SpendBatchAt.
  void ClassifyBatch(std::uint32_t r, const std::vector<rel::LicenseId>& ids,
                     std::vector<SpendOutcome>* out) const;

  /// Full routed spend of a batch addressed to replica \p r: classifies
  /// exactly as ClassifyBatch, then commits the admitted ids on r's
  /// runtime (blocking, never queue-sheds). Admitted outcomes are kOk
  /// (freshly spent, journaled) or kAlreadySpent (double-spend attempt).
  void SpendBatchAt(std::uint32_t r, const std::vector<rel::LicenseId>& ids,
                    std::vector<SpendOutcome>* out);

  /// Single-id convenience over SpendBatchAt.
  SpendOutcome SpendOneAt(std::uint32_t r, const rel::LicenseId& id);

  /// Kills replica \p r: its runtime is destroyed (in-memory spent set
  /// lost; journal segments survive on disk), it leaves the ring (epoch
  /// bump), and the cluster enters recovery — requests for r's former
  /// ranges are gated until CompleteFailover. With \p tear_journal_tail,
  /// a partial record is appended to one of r's segments first,
  /// simulating death mid-append (the replay must skip it).
  void Crash(std::uint32_t r, bool tear_journal_tail = false);

  /// Replays the dead replica's journal segments onto each record's new
  /// owner and lifts the recovery gate. Requires Recovering().
  FailoverStats CompleteFailover();

  /// Number of intact journal records replica \p r has on disk (alive or
  /// dead) — what a failover of r would replay; the scenario driver
  /// models replay time from it.
  std::uint64_t JournalRecordCount(std::uint32_t r) const;

  /// Adds a fresh replica, migrates its ranges' spent history from the
  /// surviving owners' journals (idempotent import), and admits it to the
  /// ring. Returns the new replica id. Not allowed mid-recovery.
  std::uint32_t AddReplica();

  // -- introspection (quiesces the touched runtimes) ---------------------

  std::size_t ReplicaSpentSize(std::uint32_t r) const;
  std::size_t TotalSpentSize() const;

 private:
  struct Replica {
    std::unique_ptr<server::ServerRuntime> runtime;
  };

  /// Classification of a single id (shared by Classify/Spend paths).
  SpendOutcome ClassifyOne(std::uint32_t r, const rel::LicenseId& id) const;

  std::unique_ptr<server::ServerRuntime> MakeRuntime(std::uint32_t r) const;
  void RemoveJournalFamily(std::uint32_t r) const;

  ClusterConfig config_;
  // Registry ids (meaningful when config_.obs.registry is set).
  obs::Registry::Id obs_redirects_ = 0;
  obs::Registry::Id obs_gate_sheds_ = 0;
  obs::Registry::Id obs_crashes_ = 0;
  obs::Registry::Id obs_replicas_added_ = 0;
  obs::Registry::Id obs_failover_records_ = 0;
  obs::Registry::Id obs_failover_fresh_ = 0;
  obs::Registry::Id obs_failover_duplicates_ = 0;
  HashRing ring_;
  /// Ring as it was before the crash currently being recovered — the
  /// gate test: an id is gated iff its pre-crash owner is the dead
  /// replica.
  HashRing pre_crash_ring_;
  std::vector<Replica> replicas_;
  bool recovering_ = false;
  std::uint32_t dead_ = 0;
};

}  // namespace cluster
}  // namespace p2drm

#endif  // P2DRM_CLUSTER_PROVIDER_CLUSTER_H_
