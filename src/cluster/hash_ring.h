#ifndef P2DRM_CLUSTER_HASH_RING_H_
#define P2DRM_CLUSTER_HASH_RING_H_

/// \file hash_ring.h
/// \brief Consistent-hash ring placing spent-set ownership on replicas.
///
/// The cluster's scaling axis above per-replica sharding (ShardRouter):
/// every license id hashes to a point on a 64-bit ring, and its OWNER is
/// the replica whose next virtual node clockwise covers that point. Each
/// replica projects `vnodes_per_replica` virtual nodes onto the ring, so
/// ownership spreads evenly and removing one replica moves ONLY the
/// ranges it owned — every other id keeps its owner, which is what keeps
/// failover migration proportional to the dead replica's share instead of
/// the whole key space.
///
/// Epochs: every membership change (join, leave, crash) bumps a
/// monotonically increasing ring epoch. Replicas answer requests for keys
/// they do not own with core::Status::kWrongReplica plus the current
/// epoch and owner (net::RedirectHint), so clients with a stale view
/// re-route instead of erroring (docs/cluster.md).
///
/// Determinism contract: placement is a pure function of membership —
/// independent of insertion order, std::hash, and process lifetime (the
/// same splitmix64 discipline as ShardRouter). The scenario harness's
/// byte-identical-report guarantee rests on this.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rel/ids.h"

namespace p2drm {
namespace cluster {

/// Deterministic 64-bit ring point of a license id (splitmix64 finalizer
/// over both id halves, domain-separated from ShardRouter's shard hash so
/// ring ranges do not correlate with intra-replica shard assignment).
std::uint64_t RingPointOf(const rel::LicenseId& id);

/// Consistent-hash ring over small-integer replica ids.
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes_per_replica = 64)
      : vnodes_(vnodes_per_replica == 0 ? 1 : vnodes_per_replica) {}

  /// Adds \p replica's virtual nodes (no-op if already present). Every
  /// successful membership change bumps the epoch.
  void AddReplica(std::uint32_t replica);

  /// Removes \p replica's virtual nodes (no-op if absent).
  void RemoveReplica(std::uint32_t replica);

  bool Contains(std::uint32_t replica) const;
  std::size_t ReplicaCount() const { return replicas_.size(); }
  const std::vector<std::uint32_t>& Replicas() const { return replicas_; }
  std::size_t vnodes_per_replica() const { return vnodes_; }

  /// Monotonic membership-change counter. Starts at 0 (empty ring).
  std::uint64_t epoch() const { return epoch_; }

  /// Owner of \p id under the current membership. The ring must be
  /// non-empty.
  std::uint32_t OwnerOf(const rel::LicenseId& id) const {
    return OwnerOfPoint(RingPointOf(id));
  }

  /// Owner of an arbitrary ring point (first virtual node clockwise,
  /// wrapping past the top of the 64-bit space).
  std::uint32_t OwnerOfPoint(std::uint64_t point) const;

 private:
  struct VirtualNode {
    std::uint64_t point;
    std::uint32_t replica;
  };

  std::size_t vnodes_;
  std::uint64_t epoch_ = 0;
  std::vector<VirtualNode> ring_;        ///< sorted by (point, replica)
  std::vector<std::uint32_t> replicas_;  ///< sorted membership
};

}  // namespace cluster
}  // namespace p2drm

#endif  // P2DRM_CLUSTER_HASH_RING_H_
