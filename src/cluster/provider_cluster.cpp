#include "cluster/provider_cluster.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <unordered_map>

namespace p2drm {
namespace cluster {

namespace {

/// Appends a deliberately partial record (length/CRC header promising more
/// payload than follows) to \p path — the on-disk shape of a process dying
/// mid-Append. Creates the file if the replica never journaled to it.
void TearTail(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("provider_cluster: cannot tear journal tail at " +
                             path);
  }
  const std::uint32_t fake_len = 16;  // promises a LicenseId payload...
  const std::uint32_t fake_crc = 0xDEADBEEF;
  std::fwrite(&fake_len, sizeof fake_len, 1, f);
  std::fwrite(&fake_crc, sizeof fake_crc, 1, f);
  const std::uint8_t half[7] = {1, 2, 3, 4, 5, 6, 7};  // ...delivers 7 bytes
  std::fwrite(half, 1, sizeof half, f);
  std::fclose(f);
}

}  // namespace

std::string ProviderCluster::ReplicaJournalPrefix(const std::string& prefix,
                                                  std::uint32_t r) {
  return prefix + ".r" + std::to_string(r);
}

ProviderCluster::ProviderCluster(const ClusterConfig& config)
    : config_(config),
      ring_(config.vnodes_per_replica),
      pre_crash_ring_(config.vnodes_per_replica) {
  if (config_.replica_count == 0) {
    throw std::invalid_argument("provider_cluster: replica_count must be > 0");
  }
  if (config_.obs.registry != nullptr) {
    obs::Registry* reg = config_.obs.registry;
    obs_redirects_ = reg->Counter("cluster.redirects");
    obs_gate_sheds_ = reg->Counter("cluster.gate_sheds");
    obs_crashes_ = reg->Counter("cluster.crashes");
    obs_replicas_added_ = reg->Counter("cluster.replicas_added");
    obs_failover_records_ = reg->Counter("cluster.failover.records_replayed");
    obs_failover_fresh_ = reg->Counter("cluster.failover.imported_fresh");
    obs_failover_duplicates_ =
        reg->Counter("cluster.failover.imported_duplicates");
  }
  replicas_.resize(config_.replica_count);
  for (std::uint32_t r = 0; r < config_.replica_count; ++r) {
    if (config_.fresh_start) RemoveJournalFamily(r);
    replicas_[r].runtime = MakeRuntime(r);
    ring_.AddReplica(r);
  }
}

std::unique_ptr<server::ServerRuntime> ProviderCluster::MakeRuntime(
    std::uint32_t r) const {
  server::ServerRuntimeConfig rc;
  rc.shard_count = config_.shards_per_replica;
  rc.queue_capacity = config_.queue_capacity;
  rc.spent_backend = config_.spent_backend;
  if (!config_.journal_prefix.empty()) {
    rc.journal_path_prefix = ReplicaJournalPrefix(config_.journal_prefix, r);
  }
  auto runtime = std::make_unique<server::ServerRuntime>(rc);
  if (config_.obs.registry != nullptr) {
    runtime->set_observability(config_.obs.registry,
                               "cluster.r" + std::to_string(r) + ".");
  }
  return runtime;
}

void ProviderCluster::RemoveJournalFamily(std::uint32_t r) const {
  if (config_.journal_prefix.empty()) return;
  const std::string prefix =
      ReplicaJournalPrefix(config_.journal_prefix, r);
  std::error_code ec;
  std::filesystem::remove(prefix, ec);  // legacy unsharded journal
  // Segments are contiguous from 0, but a previous run may have used more
  // shards than this one — keep deleting past our own shard count until a
  // gap.
  for (std::size_t k = 0;; ++k) {
    const std::string seg = server::ServerRuntime::SegmentPath(prefix, k);
    if (!std::filesystem::remove(seg, ec) && k >= config_.shards_per_replica) {
      break;
    }
  }
}

std::size_t ProviderCluster::AliveCount() const {
  std::size_t n = 0;
  for (const auto& rep : replicas_) {
    if (rep.runtime != nullptr) ++n;
  }
  return n;
}

SpendOutcome ProviderCluster::ClassifyOne(std::uint32_t r,
                                          const rel::LicenseId& id) const {
  SpendOutcome out;
  const std::uint32_t owner = ring_.OwnerOf(id);
  if (!IsAlive(r) || owner != r) {
    // Dead target or stale client view: point at the live owner.
    out.status = core::Status::kWrongReplica;
    out.owner = owner;
    if (config_.obs.registry != nullptr) {
      config_.obs.registry->Add(obs_redirects_);
    }
    return out;
  }
  if (recovering_ && pre_crash_ring_.OwnerOf(id) == dead_) {
    // The id's range moved here in the crash but its spent history has
    // not been replayed yet — admitting it could double-spend. Typed
    // backpressure tells the client to retry, exactly like a full queue.
    out.status = core::Status::kOverloaded;
    out.owner = r;
    if (config_.obs.registry != nullptr) {
      config_.obs.registry->Add(obs_gate_sheds_);
    }
    return out;
  }
  out.status = core::Status::kOk;
  out.owner = r;
  return out;
}

void ProviderCluster::ClassifyBatch(std::uint32_t r,
                                    const std::vector<rel::LicenseId>& ids,
                                    std::vector<SpendOutcome>* out) const {
  out->clear();
  out->reserve(ids.size());
  for (const auto& id : ids) out->push_back(ClassifyOne(r, id));
}

void ProviderCluster::SpendBatchAt(std::uint32_t r,
                                   const std::vector<rel::LicenseId>& ids,
                                   std::vector<SpendOutcome>* out) {
  ClassifyBatch(r, ids, out);
  std::vector<rel::LicenseId> admitted;
  std::vector<std::size_t> admitted_at;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if ((*out)[i].status == core::Status::kOk) {
      admitted.push_back(ids[i]);
      admitted_at.push_back(i);
    }
  }
  if (admitted.empty()) return;
  std::vector<core::Status> statuses;
  replicas_[r].runtime->SpendBatch(admitted, &statuses,
                                   /*shed_on_full=*/false);
  for (std::size_t j = 0; j < admitted.size(); ++j) {
    (*out)[admitted_at[j]].status = statuses[j];
  }
}

SpendOutcome ProviderCluster::SpendOneAt(std::uint32_t r,
                                         const rel::LicenseId& id) {
  std::vector<SpendOutcome> out;
  SpendBatchAt(r, {id}, &out);
  return out.front();
}

void ProviderCluster::Crash(std::uint32_t r, bool tear_journal_tail) {
  if (!IsAlive(r)) {
    throw std::logic_error("provider_cluster: Crash on dead replica");
  }
  if (recovering_) {
    throw std::logic_error(
        "provider_cluster: concurrent failovers not supported");
  }
  if (ring_.ReplicaCount() < 2) {
    throw std::logic_error("provider_cluster: cannot crash the last replica");
  }
  // Destroying the runtime flushes nothing extra: every journal Append
  // already hit the OS when its spend committed. In-memory state dies here.
  replicas_[r].runtime.reset();
  if (tear_journal_tail && !config_.journal_prefix.empty()) {
    TearTail(server::ServerRuntime::SegmentPath(
        ReplicaJournalPrefix(config_.journal_prefix, r), 0));
  }
  pre_crash_ring_ = ring_;
  ring_.RemoveReplica(r);
  recovering_ = true;
  dead_ = r;
  if (config_.obs.registry != nullptr) {
    config_.obs.registry->Add(obs_crashes_);
  }
  if (config_.obs.tracer != nullptr) {
    config_.obs.tracer->Instant("cluster.crash", "replica", r);
  }
}

FailoverStats ProviderCluster::CompleteFailover() {
  if (!recovering_) {
    throw std::logic_error("provider_cluster: CompleteFailover while healthy");
  }
  FailoverStats stats;
  stats.dead_replica = dead_;
  if (!config_.journal_prefix.empty()) {
    const std::string dead_prefix =
        ReplicaJournalPrefix(config_.journal_prefix, dead_);
    // Group the dead replica's records by their NEW owner, then bulk-import
    // per survivor. ImportSpent is idempotent, so records that had already
    // migrated (e.g. an id the survivor spent pre-crash via a duplicate
    // segment) only count as duplicates.
    std::unordered_map<std::uint32_t, std::vector<rel::LicenseId>> by_owner;
    const auto scan = server::ServerRuntime::ForEachJournalRecord(
        dead_prefix, [this, &by_owner](const rel::LicenseId& id) {
          by_owner[ring_.OwnerOf(id)].push_back(id);
        });
    stats.segments = scan.segments;
    stats.records = scan.records;
    stats.torn_tails = scan.torn_tails;
    // Deterministic import order (map iteration order is not).
    for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
      auto it = by_owner.find(r);
      if (it == by_owner.end()) continue;
      const auto imported = replicas_[r].runtime->ImportSpent(it->second);
      stats.imported_fresh += imported.fresh;
      stats.imported_duplicates += imported.duplicates;
    }
  }
  recovering_ = false;
  if (config_.obs.registry != nullptr) {
    obs::Registry* reg = config_.obs.registry;
    reg->Add(obs_failover_records_, stats.records);
    reg->Add(obs_failover_fresh_, stats.imported_fresh);
    reg->Add(obs_failover_duplicates_, stats.imported_duplicates);
  }
  if (config_.obs.tracer != nullptr) {
    config_.obs.tracer->Instant("cluster.failover_complete",
                                "records_replayed", stats.records);
  }
  return stats;
}

std::uint64_t ProviderCluster::JournalRecordCount(std::uint32_t r) const {
  if (config_.journal_prefix.empty()) return 0;
  return server::ServerRuntime::ForEachJournalRecord(
             ReplicaJournalPrefix(config_.journal_prefix, r), nullptr)
      .records;
}

std::uint32_t ProviderCluster::AddReplica() {
  if (recovering_) {
    throw std::logic_error("provider_cluster: AddReplica mid-failover");
  }
  const std::uint32_t r = static_cast<std::uint32_t>(replicas_.size());
  if (config_.fresh_start) RemoveJournalFamily(r);
  replicas_.push_back(Replica{});
  replicas_[r].runtime = MakeRuntime(r);

  // Join migration: the ranges the newcomer takes over already have spent
  // history on the current owners. Admit it to the ring first (so OwnerOf
  // names the post-join owner), then pull every record that moved to r
  // out of the surviving owners' journals. Until the import below
  // finishes, r simply has an incomplete spent set — but no traffic can
  // reach it either, because this whole method runs before the caller
  // routes anything at the new epoch.
  ring_.AddReplica(r);
  if (!config_.journal_prefix.empty()) {
    std::vector<rel::LicenseId> moved;
    for (std::uint32_t peer = 0; peer < r; ++peer) {
      if (!IsAlive(peer)) continue;
      server::ServerRuntime::ForEachJournalRecord(
          ReplicaJournalPrefix(config_.journal_prefix, peer),
          [this, r, &moved](const rel::LicenseId& id) {
            if (ring_.OwnerOf(id) == r) moved.push_back(id);
          });
    }
    if (!moved.empty()) replicas_[r].runtime->ImportSpent(moved);
  }
  if (config_.obs.registry != nullptr) {
    config_.obs.registry->Add(obs_replicas_added_);
  }
  if (config_.obs.tracer != nullptr) {
    config_.obs.tracer->Instant("cluster.replica_join", "replica", r);
  }
  return r;
}

std::size_t ProviderCluster::ReplicaSpentSize(std::uint32_t r) const {
  return IsAlive(r) ? replicas_[r].runtime->SpentSize() : 0;
}

std::size_t ProviderCluster::TotalSpentSize() const {
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    total += ReplicaSpentSize(r);
  }
  return total;
}

}  // namespace cluster
}  // namespace p2drm
