#ifndef P2DRM_SERVER_SERVER_RUNTIME_H_
#define P2DRM_SERVER_SERVER_RUNTIME_H_

/// \file server_runtime.h
/// \brief Sharded concurrent runtime for the content provider's stateful
/// redemption path.
///
/// The provider's scalability choke point is the per-redemption state
/// update: a spent-set insert plus a journal append, today serialized on
/// one thread. The runtime decomposes that state into N independent
/// shards (ShardRouter: license-id hash → shard). Each shard owns
///  * one store::SpentSetShard partition (no internal locking — the
///    shard's single worker thread is the lock),
///  * one redemption-journal segment (`<prefix>.shard<k>`),
///  * one bounded task queue with typed backpressure: when a queue is
///    full the submission is shed with core::Status::kOverloaded instead
///    of growing without bound.
///
/// Same-id races are impossible by construction: every spend attempt for
/// a given license id routes to the same shard and serializes on its
/// worker, so exactly one of any number of concurrent double-redemption
/// attempts wins.
///
/// Storage hot path (docs/storage.md): a shard task probes its whole
/// group through SpentSetShard::InsertBatch (flat-table group probes with
/// next-item prefetch) and journals the batch's fresh ids as one
/// group-committed AppendMany block — per-item allocation and the
/// write()-per-record syscall are both gone from the spend stage.
///
/// Thread-safety contract: Submit/TrySubmit/SpendBatch/SpendOne may be
/// called from any number of threads concurrently. The aggregate
/// accessors (SpentSize, Processed, …) quiesce the queues first and are
/// accurate when no other thread is submitting concurrently.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/errors.h"
#include "obs/registry.h"
#include "rel/ids.h"
#include "server/shard_router.h"
#include "store/append_log.h"
#include "store/spent_set.h"

namespace p2drm {
namespace server {

/// Simple counting latch (C++17 stand-in for std::latch).
class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(m_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// Runtime configuration.
struct ServerRuntimeConfig {
  std::size_t shard_count = 4;
  /// Per-shard queue bound, counted in items (task weight). A submission
  /// that would push a non-empty queue past this bound is shed with
  /// kOverloaded. An oversize submission to an empty queue is accepted so
  /// a single batch larger than the bound cannot starve forever.
  std::size_t queue_capacity = 4096;
  store::SpentSetBackend spent_backend = store::SpentSetBackend::kFlat;
  /// When non-empty, shard k journals fresh spends to
  /// `<prefix>.shard<k>`, and construction replays every existing
  /// segment — plus a legacy unsharded journal at `<prefix>` itself —
  /// routing each id to its current home shard (so the shard count may
  /// change between runs).
  std::string journal_path_prefix;
  /// Group commit (docs/storage.md): a shard task's fresh spends are
  /// gathered into the shard's retained scratch buffer and journaled as
  /// ONE CRC'd block via AppendLog::AppendMany — one write() per shard
  /// group instead of one per record. Off = the legacy per-record Append
  /// path (kept as the bench_server_scaling mutate-stage baseline).
  /// Either way a spend is durable before SpendBatch returns it as kOk.
  bool group_commit_journal = true;
};

/// What a shard task sees: the shard's own state, touched only from the
/// shard's worker thread.
struct ShardContext {
  explicit ShardContext(store::SpentSetBackend backend) : spent(backend) {}

  std::size_t index = 0;
  store::SpentSetShard spent;
  store::AppendLog* journal = nullptr;  ///< null when journaling is off
  /// Per-shard simulated-time clock (microseconds) for benches that model
  /// service time the way the transport's LatencyModel models wire time.
  std::uint64_t sim_clock_us = 0;
  std::uint64_t processed = 0;  ///< items completed on this shard
  /// Retained gather arena for group-committed journal blocks: fresh ids
  /// are packed here back to back before one AppendMany call. Capacity
  /// sticks across batches, so the steady-state spend path allocates
  /// nothing.
  std::vector<std::uint8_t> journal_scratch;
  /// Last MemoryBytes() value pushed to the `<prefix>spent.bytes` gauge;
  /// workers publish deltas so the gauge tracks the aggregate footprint.
  std::size_t spent_bytes_reported = 0;
};

/// Fixed pool of shard workers behind bounded queues.
class ServerRuntime {
 public:
  /// A task runs on its shard's worker thread with exclusive access to
  /// the shard context. Tasks must not call back into the runtime.
  using Task = std::function<void(ShardContext&)>;

  explicit ServerRuntime(const ServerRuntimeConfig& config);
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t ShardFor(const rel::LicenseId& id) const {
    return router_.ShardFor(id);
  }

  /// Enqueues \p task on \p shard; \p weight is the item count it
  /// represents (for queue accounting). Returns false — shedding the
  /// task — when the queue is over capacity.
  bool TrySubmit(std::size_t shard, Task task, std::size_t weight = 1);

  /// Blocking submit: waits for queue room instead of shedding.
  void Submit(std::size_t shard, Task task, std::size_t weight = 1);

  /// Grouped blocking submit: enqueues every (task, weight) pair on
  /// \p shard under ONE lock acquisition and ONE worker wake (each shard
  /// has exactly one worker, so a single notify drains the whole group).
  /// Waits for room for the group's total weight with the same
  /// oversize-meets-empty-queue acceptance rule as Submit. RunAll and
  /// SpendBatch both feed shards through here.
  void SubmitAll(std::size_t shard,
                 std::vector<std::pair<Task, std::size_t>> tasks);

  /// Submit-and-join work queue for the issuance stage: fans \p tasks
  /// out across the shard workers (task i runs on shard i mod N) and
  /// blocks until every one has completed. Submission is blocking, never
  /// shedding — backpressure (kOverloaded) is applied at the spend
  /// stage, before any state changes; work that reaches the issue stage
  /// is already committed and must not be dropped. Tasks must not call
  /// back into the runtime.
  void RunAll(std::vector<Task> tasks);

  /// Waits until every shard queue is empty and every worker is idle.
  void Drain() const;

  /// Routes \p ids to their home shards and marks them spent; fresh
  /// inserts are journaled. On return, out[i] is kOk (freshly spent),
  /// kAlreadySpent (double redemption), or — only when \p shed_on_full —
  /// kOverloaded (queue full; the id was NOT marked). Blocks until every
  /// accepted id has been processed. Duplicate ids within one call
  /// resolve in index order: the first occurrence wins.
  void SpendBatch(const std::vector<rel::LicenseId>& ids,
                  std::vector<core::Status>* out, bool shed_on_full = true);

  /// Single-id spend through the same serialization point; never sheds.
  core::Status SpendOne(const rel::LicenseId& id);

  // -- journal export/import (cluster migration hooks) -------------------

  /// What one ImportSpent call did.
  struct ImportStats {
    std::uint64_t fresh = 0;       ///< ids newly inserted (and journaled)
    std::uint64_t duplicates = 0;  ///< ids this runtime already had
  };

  /// Bulk-inserts \p ids into their home shards' spent sets — the import
  /// side of journal-based migration (a dead replica's journal replayed
  /// onto this one, or a joining replica pulling its ranges). Idempotent:
  /// ids already present are counted as duplicates and neither re-inserted
  /// nor re-journaled, so replaying a segment twice cannot distort the
  /// spent set, its MemoryBytes, or the journal. Imports do not count as
  /// processed traffic. Blocking, never sheds.
  ImportStats ImportSpent(const std::vector<rel::LicenseId>& ids);

  /// What a full journal scan under one prefix saw.
  struct JournalScanStats {
    std::size_t segments = 0;      ///< segment files found (legacy included)
    std::uint64_t records = 0;     ///< intact license-id records delivered
    std::size_t torn_tails = 0;    ///< segments ending in a skipped torn tail
  };

  /// The export side of migration: streams every intact license-id record
  /// under \p prefix — the legacy unsharded journal plus every contiguous
  /// `<prefix>.shard<k>` segment — to \p fn (which may be null to count
  /// only). Static: works on the journals of a runtime that no longer
  /// exists, which is exactly the failover case. Torn tails (a crash
  /// mid-append) are skipped per segment, not fatal.
  static JournalScanStats ForEachJournalRecord(
      const std::string& prefix,
      const std::function<void(const rel::LicenseId&)>& fn);

  // -- aggregate introspection (quiesces the queues first) ---------------

  std::size_t SpentSize() const;
  std::size_t SpentMemoryBytes() const;
  std::uint64_t Processed() const;
  std::uint64_t Overloads() const;
  std::size_t ShardSpentSize(std::size_t shard) const;
  std::uint64_t ShardProcessed(std::size_t shard) const;
  std::uint64_t ShardSimClockUs(std::size_t shard) const;
  std::size_t QueueHighWater(std::size_t shard) const;

  /// Journal segment path for \p shard under \p prefix.
  static std::string SegmentPath(const std::string& prefix, std::size_t shard);

  /// Wires queue accounting into \p registry (null = off): a
  /// `<prefix>queue_depth` gauge (+weight on accept, -weight on
  /// completion), a `<prefix>sheds` counter on every TrySubmit
  /// rejection, and a `<prefix>spent.bytes` gauge tracking the summed
  /// SpentSetShard::MemoryBytes across shards (each worker publishes the
  /// delta against its last report after a mutating task, so the gauge is
  /// exact at quiesce — RT-3 resident-footprint accounting in scenario
  /// reports). Call before traffic starts; the ids are read by the
  /// submit paths and workers without synchronization after that.
  void set_observability(obs::Registry* registry, const std::string& prefix);

 private:
  struct Shard {
    explicit Shard(store::SpentSetBackend backend) : ctx(backend) {}

    mutable std::mutex m;
    std::condition_variable work_cv;        // queue became non-empty / stop
    std::condition_variable space_cv;       // queue has room again
    mutable std::condition_variable idle_cv;  // queue empty and worker idle
    std::deque<std::pair<Task, std::size_t>> queue;
    std::size_t pending_items = 0;  // queued + in-flight weight
    bool busy = false;
    std::size_t high_water = 0;
    std::uint64_t overloads = 0;
    bool stop = false;  // guarded by m
    ShardContext ctx;
    std::unique_ptr<store::AppendLog> journal;
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);
  void ReplayJournals();
  /// Journals the ids with fresh[i] != 0 from a shard task: one
  /// group-committed AppendMany block (default) or per-record Appends
  /// (legacy baseline). Runs on the shard's worker thread.
  void JournalFreshIds(ShardContext& ctx,
                       const std::vector<rel::LicenseId>& ids,
                       const std::vector<std::uint8_t>& fresh) const;
  /// Publishes the shard's MemoryBytes delta to the spent.bytes gauge.
  void UpdateSpentBytesGauge(ShardContext& ctx) const;
  /// Waits for \p shard to go idle and returns with its mutex held.
  std::unique_lock<std::mutex> QuiesceShard(std::size_t shard) const;

  ServerRuntimeConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Queue observability (null = off; see set_observability).
  obs::Registry* obs_registry_ = nullptr;
  obs::Registry::Id obs_queue_depth_ = 0;
  obs::Registry::Id obs_sheds_ = 0;
  obs::Registry::Id obs_spent_bytes_ = 0;
};

}  // namespace server
}  // namespace p2drm

#endif  // P2DRM_SERVER_SERVER_RUNTIME_H_
