#include "server/batch_pipeline.h"

namespace p2drm {
namespace server {

BatchPipelineTimings BatchPipeline::Run(const Plan& plan,
                                        const IssueExecutor& executor,
                                        const TimeSourceUs& now_us,
                                        const PipelineObs* pobs) {
  BatchPipelineTimings t;
  t.items = plan.item_count;
  if (plan.item_count == 0) return t;

  const auto now = [&now_us]() -> std::uint64_t {
    return now_us != nullptr ? now_us() : SteadyNowUs();
  };
  obs::Tracer* tracer = pobs != nullptr ? pobs->tracer : nullptr;

  // Stage 1 — verify (dispatch thread, amortized, read-only).
  std::uint64_t stage_t0 = now();
  const std::uint64_t run_t0 = stage_t0;
  if (tracer != nullptr) tracer->Begin(pobs->span_verify);
  std::vector<std::size_t> eligible;
  if (plan.verify != nullptr) {
    eligible = plan.verify();
  } else {
    eligible.resize(plan.item_count);
    for (std::size_t i = 0; i < plan.item_count; ++i) eligible[i] = i;
  }
  if (tracer != nullptr) tracer->End(pobs->span_verify);
  t.verify_us = static_cast<double>(now() - stage_t0);

  // Stage 2 — mutate (the flow's serialization point; the only stage
  // that may shed).
  stage_t0 = now();
  if (tracer != nullptr) tracer->Begin(pobs->span_mutate);
  std::vector<core::Status> mutated;
  if (plan.mutate != nullptr) {
    mutated = plan.mutate(eligible);
  } else {
    mutated.assign(eligible.size(), core::Status::kOk);
  }
  if (tracer != nullptr) tracer->End(pobs->span_mutate);
  t.mutate_us = static_cast<double>(now() - stage_t0);

  // Partition into the live set (kOk, plus whatever `proceed` admits)
  // and rejections. kOverloaded can never proceed: a shed item must
  // leave no trace beyond its status.
  std::vector<std::size_t> live;  // indices into `eligible`
  live.reserve(eligible.size());
  for (std::size_t j = 0; j < eligible.size(); ++j) {
    core::Status s = mutated[j];
    bool proceeds = s == core::Status::kOk ||
                    (s != core::Status::kOverloaded && plan.proceed != nullptr &&
                     plan.proceed(s));
    if (proceeds) {
      live.push_back(j);
      continue;
    }
    if (s == core::Status::kOverloaded) ++t.shed;
    if (plan.reject != nullptr) plan.reject(eligible[j], s);
  }
  t.committed = live.size();

  // Stage 3 — issue: forks first (dispatch thread, ascending k), then
  // the fan-out, joined before the timing stops.
  stage_t0 = now();
  if (tracer != nullptr) tracer->Begin(pobs->span_issue);
  if (plan.begin_issue != nullptr) plan.begin_issue(live.size());
  if (plan.draw_fork != nullptr) {
    for (std::size_t k = 0; k < live.size(); ++k) {
      plan.draw_fork(k, eligible[live[k]]);
    }
  }
  if (plan.issue != nullptr && !live.empty()) {
    auto work = [&](std::size_t k) {
      std::size_t j = live[k];
      plan.issue(k, eligible[j], mutated[j]);
    };
    if (executor != nullptr) {
      executor(live.size(), work);
    } else {
      for (std::size_t k = 0; k < live.size(); ++k) work(k);
    }
  }
  if (tracer != nullptr) tracer->End(pobs->span_issue);
  const std::uint64_t issue_t1 = now();
  t.issue_us = static_cast<double>(issue_t1 - stage_t0);
  // Six clock samples total, same as before makespan existed — the
  // injected-tick timing tests stay exact.
  t.makespan_us = static_cast<double>(issue_t1 - run_t0);

  // Commit tail — dispatch thread, ascending k.
  if (plan.commit != nullptr) {
    for (std::size_t k = 0; k < live.size(); ++k) {
      std::size_t j = live[k];
      plan.commit(k, eligible[j], mutated[j]);
    }
  }

  if (pobs != nullptr && pobs->registry != nullptr) {
    obs::Registry* reg = pobs->registry;
    reg->Observe(pobs->hist_verify_us, static_cast<std::uint64_t>(t.verify_us));
    reg->Observe(pobs->hist_mutate_us, static_cast<std::uint64_t>(t.mutate_us));
    reg->Observe(pobs->hist_issue_us, static_cast<std::uint64_t>(t.issue_us));
    reg->Add(pobs->ctr_items, t.items);
    if (t.shed != 0) reg->Add(pobs->ctr_shed, t.shed);
  }
  return t;
}

}  // namespace server
}  // namespace p2drm
