#include "server/stage_executor.h"

#include <atomic>
#include <utility>
#include <vector>

#include "core/errors.h"

namespace p2drm {
namespace server {

struct StagedBatchPipeline::InFlightBatch {
  BatchPipeline::Plan plan;
  const PipelineObs* pobs = nullptr;
  std::function<void()> on_commit;

  std::vector<std::size_t> eligible;     // verify survivors (item indices)
  std::vector<core::Status> mutated;     // per-eligible mutate status
  std::vector<std::size_t> live;         // indices into eligible

  SignerPool::Ticket ticket;             // empty when issued inline

  BatchPipelineTimings t;                // verify/mutate busy; issue below
  // Issue busy time accrues from the pool workers while the dispatch
  // thread keeps running — summed relaxed, read after ticket.Wait().
  std::atomic<std::uint64_t> issue_busy_us{0};
};

StagedBatchPipeline::StagedBatchPipeline(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.max_batches_in_flight == 0) cfg_.max_batches_in_flight = 1;
}

StagedBatchPipeline::~StagedBatchPipeline() {
  while (!inflight_.empty()) CommitHead();
}

std::uint64_t StagedBatchPipeline::Now() const {
  return cfg_.now_us != nullptr ? cfg_.now_us() : SteadyNowUs();
}

void StagedBatchPipeline::set_observability(obs::Registry* registry,
                                            const std::string& prefix) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  gauge_inflight_ = registry_->Gauge(prefix + "batches_in_flight");
}

void StagedBatchPipeline::Submit(BatchPipeline::Plan plan,
                                 const PipelineObs* pobs,
                                 std::function<void()> on_commit) {
  // Deterministic commit points: only when the window is full. Never on
  // "the ticket happens to be done" — that would make the interleaving
  // of commit(B) and verify(B+n) depend on worker scheduling.
  while (inflight_.size() >= cfg_.max_batches_in_flight) CommitHead();

  auto b = std::make_unique<InFlightBatch>();
  b->plan = std::move(plan);
  b->pobs = pobs;
  b->on_commit = std::move(on_commit);
  b->t.items = b->plan.item_count;

  obs::Tracer* tracer = pobs != nullptr ? pobs->tracer : nullptr;

  // Stage 1 — verify (dispatch thread). The first verify-t0 of a window
  // doubles as the window's makespan start.
  std::uint64_t stage_t0 = Now();
  if (!window_open_) {
    window_open_ = true;
    window_start_us_ = stage_t0;
  }
  if (tracer != nullptr) tracer->Begin(pobs->span_verify);
  if (b->plan.verify != nullptr) {
    b->eligible = b->plan.verify();
  } else {
    b->eligible.resize(b->plan.item_count);
    for (std::size_t i = 0; i < b->plan.item_count; ++i) b->eligible[i] = i;
  }
  if (tracer != nullptr) tracer->End(pobs->span_verify);
  b->t.verify_us = static_cast<double>(Now() - stage_t0);

  // Stage 2 — mutate (the only shed point, surfaced before Submit
  // returns so a shed item has no trace even under overlap).
  stage_t0 = Now();
  if (tracer != nullptr) tracer->Begin(pobs->span_mutate);
  if (b->plan.mutate != nullptr) {
    b->mutated = b->plan.mutate(b->eligible);
  } else {
    b->mutated.assign(b->eligible.size(), core::Status::kOk);
  }
  if (tracer != nullptr) tracer->End(pobs->span_mutate);
  b->t.mutate_us = static_cast<double>(Now() - stage_t0);

  b->live.reserve(b->eligible.size());
  for (std::size_t j = 0; j < b->eligible.size(); ++j) {
    core::Status s = b->mutated[j];
    bool proceeds =
        s == core::Status::kOk ||
        (s != core::Status::kOverloaded && b->plan.proceed != nullptr &&
         b->plan.proceed(s));
    if (proceeds) {
      b->live.push_back(j);
      continue;
    }
    if (s == core::Status::kOverloaded) ++b->t.shed;
    if (b->plan.reject != nullptr) b->plan.reject(b->eligible[j], s);
  }
  b->t.committed = b->live.size();

  // Forks on the dispatch thread, ascending k — the shared-RNG draws
  // stay in Submit order, which is the whole bit-identical guarantee.
  if (b->plan.begin_issue != nullptr) b->plan.begin_issue(b->live.size());
  if (b->plan.draw_fork != nullptr) {
    for (std::size_t k = 0; k < b->live.size(); ++k) {
      b->plan.draw_fork(k, b->eligible[b->live[k]]);
    }
  }

  // Stage 3 — issue. Pool: fan out and return (no tracer span — B/E
  // spans must nest per-thread and in-flight batches interleave; the
  // per-flow issue histogram still gets the busy time at commit).
  // No pool: run inline, preserving Run's span + timing shape.
  if (b->plan.issue != nullptr && !b->live.empty()) {
    if (cfg_.pool != nullptr) {
      InFlightBatch* bp = b.get();
      TimeSourceUs now_us = cfg_.now_us;  // workers need their own copy
      b->ticket = cfg_.pool->SubmitBatch(
          b->live.size(),
          [bp, now_us](SignerContext& ctx, std::size_t k) {
            std::uint64_t t0 =
                now_us != nullptr ? now_us() : SteadyNowUs();
            std::size_t j = bp->live[k];
            bp->plan.issue(k, bp->eligible[j], bp->mutated[j]);
            std::uint64_t t1 =
                now_us != nullptr ? now_us() : SteadyNowUs();
            ctx.AccrueSimClockUs(t1 - t0);
            bp->issue_busy_us.fetch_add(t1 - t0, std::memory_order_relaxed);
          });
    } else {
      stage_t0 = Now();
      if (tracer != nullptr) tracer->Begin(pobs->span_issue);
      for (std::size_t k = 0; k < b->live.size(); ++k) {
        std::size_t j = b->live[k];
        b->plan.issue(k, b->eligible[j], b->mutated[j]);
      }
      if (tracer != nullptr) tracer->End(pobs->span_issue);
      b->issue_busy_us.store(Now() - stage_t0, std::memory_order_relaxed);
    }
  }

  inflight_.push_back(std::move(b));
  if (registry_ != nullptr) registry_->GaugeAdd(gauge_inflight_, 1);
}

void StagedBatchPipeline::CommitHead() {
  InFlightBatch& b = *inflight_.front();
  b.ticket.Wait();  // no-op for inline/empty batches
  b.t.issue_us = static_cast<double>(
      b.issue_busy_us.load(std::memory_order_relaxed));

  if (b.plan.commit != nullptr) {
    for (std::size_t k = 0; k < b.live.size(); ++k) {
      std::size_t j = b.live[k];
      b.plan.commit(k, b.eligible[j], b.mutated[j]);
    }
  }

  // Same per-batch registry shape as BatchPipeline::Run, emitted at
  // commit time from the dispatch thread.
  if (b.pobs != nullptr && b.pobs->registry != nullptr) {
    obs::Registry* reg = b.pobs->registry;
    reg->Observe(b.pobs->hist_verify_us,
                 static_cast<std::uint64_t>(b.t.verify_us));
    reg->Observe(b.pobs->hist_mutate_us,
                 static_cast<std::uint64_t>(b.t.mutate_us));
    reg->Observe(b.pobs->hist_issue_us,
                 static_cast<std::uint64_t>(b.t.issue_us));
    reg->Add(b.pobs->ctr_items, b.t.items);
    if (b.t.shed != 0) reg->Add(b.pobs->ctr_shed, b.t.shed);
  }

  agg_.verify_us += b.t.verify_us;
  agg_.mutate_us += b.t.mutate_us;
  agg_.issue_us += b.t.issue_us;
  agg_.items += b.t.items;
  agg_.shed += b.t.shed;
  agg_.committed += b.t.committed;

  if (b.on_commit != nullptr) b.on_commit();
  inflight_.pop_front();
  if (registry_ != nullptr) registry_->GaugeAdd(gauge_inflight_, -1);
}

BatchPipelineTimings StagedBatchPipeline::Flush() {
  while (!inflight_.empty()) CommitHead();
  BatchPipelineTimings t = agg_;
  if (window_open_) {
    t.makespan_us = static_cast<double>(Now() - window_start_us_);
  }
  agg_ = BatchPipelineTimings{};
  window_open_ = false;
  return t;
}

}  // namespace server
}  // namespace p2drm
