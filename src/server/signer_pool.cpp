#include "server/signer_pool.h"

namespace p2drm {
namespace server {

// Completion state for one SubmitBatch call. `remaining` is guarded by
// `m`; the last item to finish notifies under the lock, and the
// shared_ptr keeps the batch alive until every item AND every ticket
// copy has let go, so there is no destroyed-while-notifying window.
struct SignerPool::Batch {
  Job work;
  std::mutex m;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
};

void SignerPool::Ticket::Wait() {
  if (batch_ == nullptr) return;
  std::unique_lock<std::mutex> lk(batch_->m);
  batch_->done_cv.wait(lk, [this] { return batch_->remaining == 0; });
}

SignerPool::SignerPool(std::size_t worker_count) {
  if (worker_count == 0) worker_count = 1;
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->ctx.index = i;
  }
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

SignerPool::~SignerPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

SignerPool::Ticket SignerPool::SubmitBatch(std::size_t count, Job work) {
  auto batch = std::make_shared<Batch>();
  batch->work = std::move(work);
  batch->remaining = count;
  Ticket ticket(batch);
  if (count == 0) return ticket;

  // Publish the item count BEFORE dealing: a worker that wakes on the
  // notify below and finds its deque still empty rechecks the predicate
  // (pending_ > 0 holds) and rescans — a bounded spin that closes once
  // the deal loop finishes, never a lost wakeup.
  pending_.fetch_add(count, std::memory_order_release);
  const std::size_t n = workers_.size();
  for (std::size_t k = 0; k < count; ++k) {
    Worker& w = *workers_[k % n];
    std::lock_guard<std::mutex> lk(w.m);
    w.dq.push_back(Item{batch, k});
  }
  if (registry_ != nullptr) {
    registry_->GaugeAdd(gauge_queue_, static_cast<std::int64_t>(count));
  }
  {
    // Empty critical section: pairs with the waiter's predicate check so
    // the notify cannot land between "predicate false" and "blocked".
    std::lock_guard<std::mutex> lk(sleep_m_);
  }
  sleep_cv_.notify_all();
  return ticket;
}

void SignerPool::RunAll(std::size_t count, Job work) {
  SubmitBatch(count, std::move(work)).Wait();
}

std::uint64_t SignerPool::Steals() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) {
    total += w->steals.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t SignerPool::MaxWorkerSimClockUs() const {
  std::uint64_t max_us = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    std::uint64_t us = WorkerSimClockUs(i);
    if (us > max_us) max_us = us;
  }
  return max_us;
}

void SignerPool::set_observability(obs::Registry* registry,
                                   const std::string& prefix) {
  registry_ = registry;
  if (registry_ == nullptr) return;
  gauge_queue_ = registry_->Gauge(prefix + "queue_depth");
  ctr_steals_ = registry_->Counter(prefix + "steals");
}

bool SignerPool::TryRunOne(std::size_t self_index) {
  Worker& self = *workers_[self_index];
  Item item;
  bool got = false;
  bool stolen = false;
  {
    std::lock_guard<std::mutex> lk(self.m);
    if (!self.dq.empty()) {
      item = std::move(self.dq.front());
      self.dq.pop_front();
      got = true;
    }
  }
  if (!got) {
    const std::size_t n = workers_.size();
    for (std::size_t d = 1; d < n && !got; ++d) {
      Worker& victim = *workers_[(self_index + d) % n];
      std::lock_guard<std::mutex> lk(victim.m);
      if (!victim.dq.empty()) {
        item = std::move(victim.dq.back());  // steal-from-back
        victim.dq.pop_back();
        got = true;
        stolen = true;
      }
    }
  }
  if (!got) return false;

  pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (stolen) {
    self.steals.fetch_add(1, std::memory_order_relaxed);
    if (registry_ != nullptr) registry_->Add(ctr_steals_);
  }
  // Gauge decrements at dequeue, before the work runs — queue_depth is
  // "queued, not yet started", deterministically zero at quiesce.
  if (registry_ != nullptr) registry_->GaugeAdd(gauge_queue_, -1);

  item.batch->work(self.ctx, item.k);
  self.ctx.executed.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(item.batch->m);
    if (--item.batch->remaining == 0) item.batch->done_cv.notify_all();
  }
  return true;
}

void SignerPool::WorkerLoop(std::size_t index) {
  for (;;) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lk(sleep_m_);
    sleep_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    // Exit only once the deques are provably drained: stop_ set and no
    // dealt item unpopped. An item popped elsewhere but still running
    // belongs to that worker; its ticket completes independently.
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace server
}  // namespace p2drm
