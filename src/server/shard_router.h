#ifndef P2DRM_SERVER_SHARD_ROUTER_H_
#define P2DRM_SERVER_SHARD_ROUTER_H_

/// \file shard_router.h
/// \brief License-id → shard routing for the sharded server runtime.
///
/// Routing is the concurrency mechanism of the redemption path: every
/// license id has exactly one home shard, so all spend attempts for the
/// same id — including a double-redemption race from many connections —
/// serialize on that shard's worker without any lock on the spent set
/// itself. The router must therefore be (a) deterministic across the
/// process lifetime and restarts, and (b) independent of std::hash, whose
/// layout is implementation-defined.

#include <cstddef>
#include <cstdint>

#include "rel/ids.h"

namespace p2drm {
namespace server {

/// Deterministic LicenseId → shard-index map.
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  std::size_t shard_count() const { return shard_count_; }

  /// Home shard of \p id. License ids are uniformly random 16-byte
  /// strings, but journal replay and tests feed counter-derived ids, so
  /// the full id is mixed (splitmix64 finalizer) before reduction.
  std::size_t ShardFor(const rel::LicenseId& id) const {
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x = (x << 8) | id.bytes[i];
    }
    std::uint64_t y = 0;
    for (int i = 8; i < 16; ++i) {
      y = (y << 8) | id.bytes[i];
    }
    std::uint64_t z = x ^ (y * 0x9e3779b97f4a7c15ull);
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<std::size_t>(z % shard_count_);
  }

 private:
  std::size_t shard_count_;
};

}  // namespace server
}  // namespace p2drm

#endif  // P2DRM_SERVER_SHARD_ROUTER_H_
