#ifndef P2DRM_SERVER_BATCH_PIPELINE_H_
#define P2DRM_SERVER_BATCH_PIPELINE_H_

/// \file batch_pipeline.h
/// \brief The generic three-stage batch machinery every metered server
/// flow shares.
///
/// Redeem, purchase, exchange and coin deposit all process a batch the
/// same way; this class is that shape, extracted so each flow supplies
/// only its callbacks instead of its own copy of the stage loop:
///
///   1. **verify** — amortized, read-only classification on the dispatch
///      thread (screened same-key signature checks, memoized certificate
///      checks, shared CRL pass). Returns the surviving item indices;
///      the flow records rejection statuses itself.
///   2. **mutate** — the flow's serialized state change (spent-set
///      inserts on each id's home shard, coin deposits at the bank).
///      This stage is the ONLY backpressure point: an item whose shard
///      queue is full comes back kOverloaded, is reported through
///      `reject`, and never reaches the issue or commit stages — by
///      construction a shed item has no server-side trace and the
///      client may retry it verbatim.
///   3. **issue** — per-item private-key work fanned out through the
///      caller's executor (ServerRuntime::RunAll on the shard workers,
///      or a serial loop when no runtime exists). Before the fan-out,
///      `draw_fork` runs on the dispatch thread for every live item in
///      index order — the fork-drawing rule that makes parallel
///      issuance bit-identical to serial under a fixed DRBG seed.
///      A short **commit** tail then applies the result mutations on
///      the dispatch thread, again in index order.
///
/// The pipeline owns stage ordering, the live-item bookkeeping and the
/// per-stage wall timings; it holds no state of its own, so one flow
/// may run it reentrantly with different plans.

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/errors.h"
#include "obs/trace.h"

namespace p2drm {
namespace server {

/// Injectable monotonic microsecond source for stage timings. Null means
/// "wall clock" (SteadyNowUs). A deterministic source makes
/// BatchPipelineTimings / ContentProvider::LastBatchTimings testable and
/// lets virtual-time harnesses express service cost in the same timebase
/// as wire latency. Must be safe to call from the issue-stage executor's
/// worker threads.
using TimeSourceUs = std::function<std::uint64_t()>;

/// The default TimeSourceUs: steady_clock, microseconds.
inline std::uint64_t SteadyNowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wall-clock per-stage breakdown of one pipeline run (microseconds).
/// `issue_us` is the dispatch thread's wait on the fan-out; the signing
/// work itself accrues wherever the executor runs it.
/// Under the synchronous Run the three stage numbers are consecutive
/// wall spans and `makespan_us` is their end-to-end span (verify start
/// to issue join; the commit tail samples no clock, so it is excluded —
/// same as it always was from the per-stage numbers). Under the
/// streaming StagedBatchPipeline the stage numbers are per-stage BUSY
/// sums across the window's batches while `makespan_us` is the window's
/// wall span — overlap makes makespan < verify+mutate+issue, which is
/// exactly what bench_server_scaling Part G gates.
struct BatchPipelineTimings {
  double verify_us = 0;  ///< stage 1: amortized classification
  double mutate_us = 0;  ///< stage 2: serialized state change
  double issue_us = 0;   ///< stage 3: fork draw + fan-out + join
  double makespan_us = 0;  ///< end-to-end span (see above)
  std::size_t items = 0;     ///< batch size
  std::size_t shed = 0;      ///< items shed kOverloaded at the mutate stage
  std::size_t committed = 0; ///< items that reached issue + commit
};

/// Observability hooks for one flow's pipeline runs: stage spans on the
/// tracer and per-stage latency histograms + shed/item counters on the
/// registry. Either endpoint may be null (off). Span names must be
/// static literals (the tracer stores the pointer); the registry ids are
/// meaningful only when `registry` is non-null — whoever sets the
/// registry registers all five.
struct PipelineObs {
  obs::Tracer* tracer = nullptr;
  obs::Registry* registry = nullptr;
  const char* span_verify = "pipeline.verify";
  const char* span_mutate = "pipeline.mutate";
  const char* span_issue = "pipeline.issue";
  obs::Registry::Id hist_verify_us = 0;
  obs::Registry::Id hist_mutate_us = 0;
  obs::Registry::Id hist_issue_us = 0;
  obs::Registry::Id ctr_items = 0;
  obs::Registry::Id ctr_shed = 0;
};

/// Orchestrates one batch through verify -> mutate -> issue -> commit.
class BatchPipeline {
 public:
  /// Runs \p work(k) for every k in [0, count), returning when all calls
  /// have completed. The work must be thread-safe and write only
  /// disjoint per-k state (ContentProvider::ForEachIssue is the shard
  /// fan-out instance).
  using IssueExecutor = std::function<void(
      std::size_t count, const std::function<void(std::size_t)>& work)>;

  /// One flow's callbacks. Every callback is optional: a null `verify`
  /// admits all items, a null `mutate` maps them all to kOk, and a flow
  /// with no signing work (coin deposits) simply leaves `issue` empty.
  ///
  /// Index vocabulary: `item` is an index into the caller's batch,
  /// `k` is an index into the live set (items that passed verify and
  /// whose mutate status proceeds), assigned in ascending item order.
  struct Plan {
    std::size_t item_count = 0;

    /// Stage 1 (dispatch thread). Records rejection statuses on the
    /// flow's own result array and returns the surviving item indices,
    /// ascending.
    std::function<std::vector<std::size_t>()> verify;

    /// Stage 2 (flow-chosen serialization point). Returns one status
    /// per eligible item, aligned with the argument. kOk always
    /// proceeds to issue; kOverloaded never does.
    std::function<std::vector<core::Status>(
        const std::vector<std::size_t>& eligible)>
        mutate;

    /// Whether a non-kOk, non-kOverloaded mutate status still goes
    /// through issue + commit (redemption signs a fraud-evidence
    /// transcript for kAlreadySpent). Null: only kOk proceeds.
    std::function<bool(core::Status)> proceed;

    /// Called once with the live-item count before any draw_fork call,
    /// so the flow can size its fork/result arrays.
    std::function<void(std::size_t live_count)> begin_issue;

    /// Fork-drawing hook: dispatch thread, ascending k, before the
    /// fan-out. This ordering is what a fixed seed's bit-identical
    /// serial/parallel guarantee rests on.
    std::function<void(std::size_t k, std::size_t item)> draw_fork;

    /// Stage 3 work for live item k. Runs under the executor — possibly
    /// concurrently — and must write only disjoint per-k state.
    std::function<void(std::size_t k, std::size_t item,
                       core::Status mutate_status)>
        issue;

    /// Commit tail for live item k: dispatch thread, ascending k.
    std::function<void(std::size_t k, std::size_t item,
                       core::Status mutate_status)>
        commit;

    /// Called (dispatch thread, ascending item) for every item whose
    /// mutate status did not proceed — including kOverloaded sheds.
    std::function<void(std::size_t item, core::Status mutate_status)> reject;
  };

  /// Runs \p plan to completion. \p executor fans out the issue stage;
  /// when null the issue calls run serially on the dispatch thread.
  /// \p now_us supplies the stage-timing clock (null = steady_clock).
  /// \p pobs, when non-null, receives stage spans and per-stage latency
  /// histograms — all emitted from the dispatch thread.
  static BatchPipelineTimings Run(const Plan& plan,
                                  const IssueExecutor& executor,
                                  const TimeSourceUs& now_us = nullptr,
                                  const PipelineObs* pobs = nullptr);
};

}  // namespace server
}  // namespace p2drm

#endif  // P2DRM_SERVER_BATCH_PIPELINE_H_
