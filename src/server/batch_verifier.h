#ifndef P2DRM_SERVER_BATCH_VERIFIER_H_
#define P2DRM_SERVER_BATCH_VERIFIER_H_

/// \file batch_verifier.h
/// \brief Amortized server-side crypto for batched redemptions.
///
/// A naive batch of k redemptions costs 2k full RSA-FDH verifications
/// (license signature + pseudonym certificate per item) plus 2k
/// Montgomery context setups, because crypto::RsaVerifyFdh rebuilds the
/// context on every call. This verifier amortizes all three server-side
/// costs:
///
///  * Montgomery context reuse — one context per modulus, cached for the
///    verifier's lifetime and shared across items and batches.
///  * Grouped same-key verification — all licenses in a batch are signed
///    by the provider's own key, so the whole group is checked with ONE
///    full-width verification: the Bellare–Garay–Rabin small-exponents
///    screen, Π s_i^{r_i} raised to e against Π H(m_i)^{r_i}, with the
///    two products computed by Straus interleaving so the squarings are
///    shared across the batch. A failed screen falls back to per-item
///    verification to identify the bad items, so acceptance is always
///    sound per item; fresh random 32-bit exponents bound the screen's
///    cheat probability by 2^-32 per batch.
///  * Pseudonym-certificate memoization — certificates are immutable, so
///    each distinct certificate is verified once (keyed by digest) and
///    repeats within and across batches are cache hits.
///  * Shared CRL probe pass — one pass answers every item's (bloom-
///    fronted) revocation probe, consulting the list once per distinct
///    key.
///
/// Thread-safety: the context cache and certificate cache are mutex
/// guarded, so cached single verifications (VerifyFdh) may run from shard
/// workers concurrently; the batch entry points are meant for the
/// provider's dispatch thread.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "bignum/montgomery.h"
#include "bignum/random_source.h"
#include "core/certificates.h"
#include "crypto/rsa.h"
#include "rel/ids.h"
#include "store/revocation_list.h"

namespace p2drm {
namespace server {

/// Amortization counters. `full_verifies` is the number of full-width
/// RSA verification operations actually performed — the quantity the
/// RT-2 cost table and the server-scaling bench compare against `items`.
struct BatchVerifierStats {
  std::uint64_t items = 0;            ///< signature checks requested
  std::uint64_t full_verifies = 0;    ///< full RSA verifications performed
  std::uint64_t screened_groups = 0;  ///< same-key groups screened in one op
  std::uint64_t screen_failures = 0;  ///< screens that fell back to per-item
  std::uint64_t cert_cache_hits = 0;  ///< pseudonym certs answered from cache
  std::uint64_t crl_probe_hits = 0;   ///< CRL probes answered within the pass

  BatchVerifierStats operator-(const BatchVerifierStats& o) const {
    return BatchVerifierStats{items - o.items,
                              full_verifies - o.full_verifies,
                              screened_groups - o.screened_groups,
                              screen_failures - o.screen_failures,
                              cert_cache_hits - o.cert_cache_hits,
                              crl_probe_hits - o.crl_probe_hits};
  }
};

/// Batch-amortized RSA-FDH verification with cached Montgomery contexts.
class BatchVerifier {
 public:
  /// Certificate-verdict cache bound; the cache resets when full so
  /// fabricated certificates cannot grow server memory without limit.
  static constexpr std::size_t kCertCacheMaxEntries = 4096;

  BatchVerifier() = default;
  BatchVerifier(const BatchVerifier&) = delete;
  BatchVerifier& operator=(const BatchVerifier&) = delete;

  /// The cached Montgomery context for \p pub's modulus (created on
  /// first use). The reference stays valid for the verifier's lifetime.
  const bignum::Montgomery& ContextFor(const crypto::RsaPublicKey& pub);

  /// Single RSA-FDH verification using the cached context. Counts one
  /// full verification.
  bool VerifyFdh(const crypto::RsaPublicKey& pub,
                 const std::vector<std::uint8_t>& msg,
                 const std::vector<std::uint8_t>& sig);

  /// Verifies k (message, signature) pairs under ONE public key with the
  /// small-exponents screen (one full verification for the whole group
  /// when all signatures are genuine). \p msgs and \p sigs are aligned;
  /// the result is per-item validity. \p rng supplies the screen's
  /// random exponents and must not be null.
  std::vector<bool> VerifySameKeyBatch(
      const crypto::RsaPublicKey& pub,
      const std::vector<std::vector<std::uint8_t>>& msgs,
      const std::vector<std::vector<std::uint8_t>>& sigs,
      bignum::RandomSource* rng);

  /// Pseudonym-certificate verification memoized by certificate digest.
  bool VerifyPseudonymCert(const crypto::RsaPublicKey& ca_key,
                           const core::PseudonymCertificate& cert);

  /// One shared revocation pass: probes the (bloom-fronted) CRL once per
  /// distinct key and answers repeats from the pass cache. Result is
  /// aligned with \p keys.
  std::vector<bool> CrlProbePass(const store::RevocationList& crl,
                                 const std::vector<rel::KeyFingerprint>& keys);

  BatchVerifierStats stats() const {
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
  }

 private:
  const bignum::Montgomery& ContextForLocked(const crypto::RsaPublicKey& pub);
  bool VerifyFdhWith(const bignum::Montgomery& mont,
                     const crypto::RsaPublicKey& pub,
                     const std::vector<std::uint8_t>& msg,
                     const std::vector<std::uint8_t>& sig);

  mutable std::mutex m_;
  BatchVerifierStats stats_;
  // Montgomery contexts keyed by modulus bytes.
  std::map<std::vector<std::uint8_t>, std::unique_ptr<bignum::Montgomery>>
      contexts_;
  // Pseudonym-cert verdicts keyed by (ca-key fingerprint, cert digest).
  std::map<std::pair<rel::KeyFingerprint, rel::KeyFingerprint>, bool>
      cert_cache_;
};

}  // namespace server
}  // namespace p2drm

#endif  // P2DRM_SERVER_BATCH_VERIFIER_H_
