#ifndef P2DRM_SERVER_SIGNER_POOL_H_
#define P2DRM_SERVER_SIGNER_POOL_H_

/// \file signer_pool.h
/// \brief Dedicated work-stealing thread pool for the issue stage.
///
/// Issuance is per-item RSA private-key work with no shard affinity: it
/// touches no shard-owned state, so routing it through the spend shards
/// (ServerRuntime::RunAll) couples signing latency to spend-queue depth
/// and sizes the signing capacity to the shard count. SignerPool
/// decouples both: a small pool sized independently of the shards, one
/// bounded-latency deque per worker, and steal-from-back balancing so a
/// worker that drains its own slice finishes someone else's instead of
/// idling.
///
/// Scheduling contract:
///  * `SubmitBatch(count, work)` deals item k to deque k mod W and
///    returns a Ticket; `Ticket::Wait()` blocks until every item of that
///    batch has executed. Batches from different callers interleave
///    freely — fairness across batches is by deal order, not FIFO.
///  * A worker pops its own deque from the FRONT (oldest first, keeps
///    per-batch index order roughly ascending per worker) and steals
///    from the BACK of a victim's deque, scanning victims starting at
///    its right-hand neighbour. Back-stealing takes the work the owner
///    would reach last, which minimizes owner/thief contention.
///  * Work items must be thread-safe and write only disjoint per-k
///    state — the same contract as BatchPipeline::Plan::issue. The pool
///    guarantees nothing about WHICH worker runs an item, so issuance
///    determinism must come from dispatch-side DRBG forks, never from
///    worker identity.
///  * Shutdown drains: the destructor wakes every worker and each one
///    exits only once every queued item (its own or stolen) has run, so
///    a Ticket outstanding at destruction time still completes.
///
/// Observability (all optional, off when no registry is wired):
/// `<prefix>queue_depth` gauge counts queued-not-yet-started items and
/// is exact at quiesce; `<prefix>steals` counts successful steals.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace p2drm {
namespace server {

/// Per-worker context handed to every job the worker runs. The counters
/// are relaxed atomics so harnesses may read them while other batches
/// are still in flight; for exact values quiesce first (Ticket::Wait on
/// everything outstanding, or destruction).
struct SignerContext {
  std::size_t index = 0;  ///< worker index in [0, worker_count)

  /// Accrues measured signing time onto this worker's simulated clock —
  /// the same methodology as ServerRuntime's per-shard sim clocks, so
  /// benches can report a hardware-independent issue makespan.
  void AccrueSimClockUs(std::uint64_t us) {
    sim_clock_us.fetch_add(us, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> sim_clock_us{0};  ///< accrued signing time
  std::atomic<std::uint64_t> executed{0};      ///< jobs run by this worker
};

/// Work-stealing signer pool. All public methods are safe to call from
/// any thread except set_observability, which must precede the first
/// SubmitBatch.
class SignerPool {
 public:
  /// One unit of issue work: item k of its batch, run on some worker.
  using Job = std::function<void(SignerContext& ctx, std::size_t k)>;

 private:
  struct Batch;  // completion state shared by a ticket and its items

 public:
  /// Completion handle for one SubmitBatch call. Copyable; all copies
  /// refer to the same batch.
  class Ticket {
   public:
    Ticket() = default;
    /// Blocks until every item of the batch has executed. Establishes
    /// happens-before with each item's effects, so per-k results are
    /// safe to read afterwards without further synchronization.
    void Wait();

   private:
    friend class SignerPool;
    explicit Ticket(std::shared_ptr<Batch> batch) : batch_(std::move(batch)) {}
    std::shared_ptr<Batch> batch_;
  };

  /// Spawns \p worker_count workers (clamped to at least 1).
  explicit SignerPool(std::size_t worker_count);
  ~SignerPool();

  SignerPool(const SignerPool&) = delete;
  SignerPool& operator=(const SignerPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Deals k = 0..count-1 to the per-worker deques (k mod W) and wakes
  /// the pool. Returns immediately; the work runs concurrently with the
  /// caller. The batch's Job is shared by all its items.
  Ticket SubmitBatch(std::size_t count, Job work);

  /// SubmitBatch + Wait: the synchronous executor shape, drop-in where
  /// ServerRuntime::RunAll used to carry issue work.
  void RunAll(std::size_t count, Job work);

  /// Total successful steals across all workers (relaxed; exact at
  /// quiesce).
  std::uint64_t Steals() const;

  /// Worker i's accrued simulated signing clock (relaxed; exact after
  /// Ticket::Wait on everything outstanding).
  std::uint64_t WorkerSimClockUs(std::size_t i) const {
    return workers_[i]->ctx.sim_clock_us.load(std::memory_order_relaxed);
  }

  /// max over workers of WorkerSimClockUs — the pool's issue makespan on
  /// the simulated timebase.
  std::uint64_t MaxWorkerSimClockUs() const;

  /// Wires `<prefix>queue_depth` (gauge) and `<prefix>steals` (counter).
  /// Call before the first SubmitBatch; pass nullptr to detach.
  void set_observability(obs::Registry* registry, const std::string& prefix);

 private:
  struct Item {
    std::shared_ptr<Batch> batch;
    std::size_t k = 0;
  };

  struct Worker {
    std::mutex m;                 ///< guards dq only
    std::deque<Item> dq;
    std::atomic<std::uint64_t> steals{0};
    SignerContext ctx;
    std::thread thread;
  };

  void WorkerLoop(std::size_t index);
  bool TryRunOne(std::size_t self_index);

  std::vector<std::unique_ptr<Worker>> workers_;

  // Sleep/wake protocol: pending_ counts dealt-but-not-yet-popped items
  // and is incremented BEFORE the items are dealt, so a worker that
  // wakes early at worst spins through one empty scan while the dealer
  // finishes. Workers block on sleep_cv_ when pending_ == 0 and exit
  // only when stop_ && pending_ == 0 — i.e. after draining everything.
  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};

  obs::Registry* registry_ = nullptr;
  obs::Registry::Id gauge_queue_ = 0;
  obs::Registry::Id ctr_steals_ = 0;
};

}  // namespace server
}  // namespace p2drm

#endif  // P2DRM_SERVER_SIGNER_POOL_H_
