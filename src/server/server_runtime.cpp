#include "server/server_runtime.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace p2drm {
namespace server {

namespace {

/// True when a file exists (readably). AppendLog::Replay cannot
/// distinguish a missing segment from an empty one, and replay must not
/// stop early on an empty segment a wider run created but never wrote.
bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

std::string ServerRuntime::SegmentPath(const std::string& prefix,
                                       std::size_t shard) {
  return prefix + ".shard" + std::to_string(shard);
}

ServerRuntime::ServerRuntime(const ServerRuntimeConfig& config)
    : config_(config),
      router_(config.shard_count == 0 ? 1 : config.shard_count) {
  std::size_t n = router_.shard_count();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>(config_.spent_backend);
    shard->ctx.index = i;
    shards_.push_back(std::move(shard));
  }
  // Replay before the workers exist: the constructor thread is the only
  // one touching shard state, so no synchronization is needed yet.
  if (!config_.journal_path_prefix.empty()) {
    ReplayJournals();
    for (std::size_t i = 0; i < n; ++i) {
      shards_[i]->journal = std::make_unique<store::AppendLog>(
          SegmentPath(config_.journal_path_prefix, i));
      shards_[i]->ctx.journal = shards_[i]->journal.get();
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    shards_[i]->worker = std::thread(&ServerRuntime::WorkerLoop, this,
                                     shards_[i].get());
  }
}

ServerRuntime::~ServerRuntime() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->m);
    shard->stop = true;
    shard->work_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

ServerRuntime::JournalScanStats ServerRuntime::ForEachJournalRecord(
    const std::string& prefix,
    const std::function<void(const rel::LicenseId&)>& fn) {
  JournalScanStats stats;
  auto deliver = [&stats, &fn](const std::vector<std::uint8_t>& record) {
    constexpr std::size_t kIdWidth = sizeof(rel::LicenseId::bytes);
    // A license-id record is either one id (legacy per-record Append) or
    // a group-committed block of N ids packed back to back (AppendMany,
    // docs/storage.md). Either way `records` counts IDS, not blocks, so
    // scan totals are independent of how the writer grouped its commits.
    if (record.empty() || record.size() % kIdWidth != 0) return;
    for (std::size_t off = 0; off < record.size(); off += kIdWidth) {
      ++stats.records;
      if (!fn) continue;
      rel::LicenseId id;
      std::copy(record.begin() + static_cast<std::ptrdiff_t>(off),
                record.begin() + static_cast<std::ptrdiff_t>(off + kIdWidth),
                id.bytes.begin());
      fn(id);
    }
  };
  // Legacy unsharded journal first (migration from the single-threaded
  // provider), then every shard segment any previous run wrote. Segments
  // are contiguous from 0 (every run creates all of 0..N-1 at startup),
  // so probing until the first missing file recovers arbitrary historic
  // shard counts.
  if (FileExists(prefix)) {
    ++stats.segments;
    auto r = store::AppendLog::ReplayWithStats(prefix, deliver);
    if (r.torn_tail) ++stats.torn_tails;
  }
  for (std::size_t i = 0; FileExists(SegmentPath(prefix, i)); ++i) {
    ++stats.segments;
    auto r = store::AppendLog::ReplayWithStats(SegmentPath(prefix, i), deliver);
    if (r.torn_tail) ++stats.torn_tails;
  }
  return stats;
}

void ServerRuntime::ReplayJournals() {
  // Idempotent by construction: SpentSetShard inserts are no-ops on ids
  // already present, so overlapping legacy + sharded segments (or a
  // segment replayed twice) rebuild the same set with the same memory
  // footprint. Ids are staged into per-shard buffers and applied through
  // InsertBatch so a multi-million-record replay rides the same
  // prefetching probe loop as live traffic.
  constexpr std::size_t kFlushAt = 4096;
  std::vector<std::vector<rel::LicenseId>> pending(shards_.size());
  std::vector<std::uint8_t> fresh;
  auto flush = [this, &pending, &fresh](std::size_t s) {
    auto& ids = pending[s];
    if (ids.empty()) return;
    fresh.resize(ids.size());
    shards_[s]->ctx.spent.InsertBatch(ids.data(), ids.size(), fresh.data());
    ids.clear();
  };
  ForEachJournalRecord(config_.journal_path_prefix,
                       [this, &pending, &flush](const rel::LicenseId& id) {
                         const std::size_t s = router_.ShardFor(id);
                         pending[s].push_back(id);
                         if (pending[s].size() >= kFlushAt) flush(s);
                       });
  for (std::size_t s = 0; s < pending.size(); ++s) flush(s);
}

void ServerRuntime::JournalFreshIds(ShardContext& ctx,
                                    const std::vector<rel::LicenseId>& ids,
                                    const std::vector<std::uint8_t>& fresh)
    const {
  if (ctx.journal == nullptr) return;
  constexpr std::size_t kIdWidth = sizeof(rel::LicenseId::bytes);
  if (!config_.group_commit_journal) {
    // Legacy baseline: one record — and one write() — per fresh id.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (fresh[i]) {
        ctx.journal->Append(std::vector<std::uint8_t>(ids[i].bytes.begin(),
                                                      ids[i].bytes.end()));
      }
    }
    return;
  }
  // Group commit: pack the fresh ids into the shard's retained scratch
  // arena and hand the whole batch to AppendMany as one CRC'd block.
  auto& blob = ctx.journal_scratch;
  blob.clear();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (fresh[i]) {
      blob.insert(blob.end(), ids[i].bytes.begin(), ids[i].bytes.end());
    }
  }
  if (!blob.empty()) {
    ctx.journal->AppendMany(blob.data(), kIdWidth, blob.size() / kIdWidth);
  }
}

void ServerRuntime::UpdateSpentBytesGauge(ShardContext& ctx) const {
  if (obs_registry_ == nullptr) return;
  const std::size_t now = ctx.spent.MemoryBytes();
  if (now == ctx.spent_bytes_reported) return;
  obs_registry_->GaugeAdd(obs_spent_bytes_,
                          static_cast<std::int64_t>(now) -
                              static_cast<std::int64_t>(
                                  ctx.spent_bytes_reported));
  ctx.spent_bytes_reported = now;
}

ServerRuntime::ImportStats ServerRuntime::ImportSpent(
    const std::vector<rel::LicenseId>& ids) {
  ImportStats stats;
  if (ids.empty()) return stats;
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    groups[router_.ShardFor(ids[i])].push_back(i);
  }
  std::size_t active = 0;
  for (const auto& g : groups) {
    if (!g.empty()) ++active;
  }
  // Per-shard tallies land in disjoint slots; the latch publishes them.
  std::vector<ImportStats> per_shard(shards_.size());
  Latch done(active);
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    std::size_t weight = groups[s].size();
    ImportStats* tally = &per_shard[s];
    Submit(
        s,
        [this, &ids, &done, tally,
         group = std::move(groups[s])](ShardContext& ctx) {
          const std::size_t n = group.size();
          std::vector<rel::LicenseId> local(n);
          for (std::size_t j = 0; j < n; ++j) local[j] = ids[group[j]];
          std::vector<std::uint8_t> fresh(n);
          ctx.spent.InsertBatch(local.data(), n, fresh.data());
          // Only the fresh subset is journaled (idempotency: a replayed
          // segment must not grow the journal), as one group-commit block.
          JournalFreshIds(ctx, local, fresh);
          for (std::size_t j = 0; j < n; ++j) {
            if (fresh[j]) {
              ++tally->fresh;
            } else {
              ++tally->duplicates;
            }
          }
          UpdateSpentBytesGauge(ctx);
          done.CountDown();
        },
        weight);
  }
  done.Wait();
  for (const ImportStats& t : per_shard) {
    stats.fresh += t.fresh;
    stats.duplicates += t.duplicates;
  }
  return stats;
}

void ServerRuntime::WorkerLoop(Shard* shard) {
  for (;;) {
    Task task;
    std::size_t weight = 0;
    {
      std::unique_lock<std::mutex> lock(shard->m);
      shard->work_cv.wait(
          lock, [&] { return shard->stop || !shard->queue.empty(); });
      if (shard->queue.empty()) return;  // stopping with nothing left to do
      task = std::move(shard->queue.front().first);
      weight = shard->queue.front().second;
      shard->queue.pop_front();
      shard->busy = true;
    }
    // Decrement BEFORE running the task: completion latches count down
    // inside the task body, so anything sequenced after task() races the
    // blocked caller's wake-up. Decrementing here sequences the gauge
    // update before the latch, which is what lets a quiesced runtime
    // (every blocking Submit returned) read the gauge as exactly the
    // queued-not-yet-started items — deterministically zero — in the
    // scenario determinism check. The gauge therefore counts queue
    // depth, not queue + in-flight.
    if (obs_registry_ != nullptr) {
      obs_registry_->GaugeAdd(obs_queue_depth_,
                              -static_cast<std::int64_t>(weight));
    }
    task(shard->ctx);
    {
      std::lock_guard<std::mutex> lock(shard->m);
      shard->busy = false;
      shard->pending_items -= weight;
      shard->space_cv.notify_all();
      if (shard->queue.empty()) shard->idle_cv.notify_all();
    }
  }
}

void ServerRuntime::set_observability(obs::Registry* registry,
                                      const std::string& prefix) {
  obs_registry_ = registry;
  if (registry == nullptr) return;
  obs_queue_depth_ = registry->Gauge(prefix + "queue_depth");
  obs_sheds_ = registry->Counter(prefix + "sheds");
  obs_spent_bytes_ = registry->Gauge(prefix + "spent.bytes");
  // Seed the footprint gauge with whatever journal replay already loaded;
  // QuiesceShard both proves the worker is idle and provides the
  // happens-before edge for the worker's later reads of
  // spent_bytes_reported.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto lock = QuiesceShard(i);
    UpdateSpentBytesGauge(shards_[i]->ctx);
  }
}

bool ServerRuntime::TrySubmit(std::size_t shard_index, Task task,
                              std::size_t weight) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.m);
  // Shed when the queue already holds work and this submission would
  // push it past the bound; an oversize batch meeting an empty queue is
  // accepted so it cannot be rejected forever.
  if (shard.pending_items > 0 &&
      shard.pending_items + weight > config_.queue_capacity) {
    ++shard.overloads;
    if (obs_registry_ != nullptr) obs_registry_->Add(obs_sheds_);
    return false;
  }
  shard.pending_items += weight;
  shard.high_water = std::max(shard.high_water, shard.pending_items);
  shard.queue.emplace_back(std::move(task), weight);
  shard.work_cv.notify_one();
  if (obs_registry_ != nullptr) {
    obs_registry_->GaugeAdd(obs_queue_depth_,
                            static_cast<std::int64_t>(weight));
  }
  return true;
}

void ServerRuntime::Submit(std::size_t shard_index, Task task,
                           std::size_t weight) {
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(shard.m);
  shard.space_cv.wait(lock, [&] {
    return shard.pending_items == 0 ||
           shard.pending_items + weight <= config_.queue_capacity;
  });
  shard.pending_items += weight;
  shard.high_water = std::max(shard.high_water, shard.pending_items);
  shard.queue.emplace_back(std::move(task), weight);
  shard.work_cv.notify_one();
  if (obs_registry_ != nullptr) {
    obs_registry_->GaugeAdd(obs_queue_depth_,
                            static_cast<std::int64_t>(weight));
  }
}

void ServerRuntime::SubmitAll(
    std::size_t shard_index, std::vector<std::pair<Task, std::size_t>> tasks) {
  if (tasks.empty()) return;
  std::size_t total = 0;
  for (const auto& t : tasks) total += t.second;
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(shard.m);
  shard.space_cv.wait(lock, [&] {
    return shard.pending_items == 0 ||
           shard.pending_items + total <= config_.queue_capacity;
  });
  shard.pending_items += total;
  shard.high_water = std::max(shard.high_water, shard.pending_items);
  for (auto& t : tasks) {
    shard.queue.emplace_back(std::move(t.first), t.second);
  }
  // One worker per shard: a single wake drains the whole group.
  shard.work_cv.notify_one();
  if (obs_registry_ != nullptr) {
    obs_registry_->GaugeAdd(obs_queue_depth_, static_cast<std::int64_t>(total));
  }
}

void ServerRuntime::RunAll(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  Latch done(tasks.size());
  const std::size_t n = shards_.size();
  // Round-robin placement: issuance work has no shard affinity (it
  // touches no shard-owned state), so spreading by index keeps every
  // worker busy even when the batch's ids all hash to one shard. Each
  // shard's whole slice then enqueues through one SubmitAll — one lock
  // acquisition and one notify per shard instead of one per task.
  std::vector<std::vector<std::pair<Task, std::size_t>>> groups(n);
  for (auto& g : groups) g.reserve(tasks.size() / n + 1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    groups[i % n].emplace_back(
        [task = std::move(tasks[i]), &done](ShardContext& ctx) {
          task(ctx);
          done.CountDown();
        },
        1);
  }
  for (std::size_t s = 0; s < n; ++s) SubmitAll(s, std::move(groups[s]));
  done.Wait();
}

std::unique_lock<std::mutex> ServerRuntime::QuiesceShard(
    std::size_t shard_index) const {
  const Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(shard.m);
  shard.idle_cv.wait(lock,
                     [&] { return shard.queue.empty() && !shard.busy; });
  return lock;
}

void ServerRuntime::Drain() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) QuiesceShard(i);
}

void ServerRuntime::SpendBatch(const std::vector<rel::LicenseId>& ids,
                               std::vector<core::Status>* out,
                               bool shed_on_full) {
  out->assign(ids.size(), core::Status::kOverloaded);
  if (ids.empty()) return;

  // Route once, then hand each shard its whole slice as one task: the
  // queue is touched per shard, not per item, and index order within a
  // shard preserves first-wins semantics for duplicate ids.
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    groups[router_.ShardFor(ids[i])].push_back(i);
  }
  std::size_t active = 0;
  for (const auto& g : groups) {
    if (!g.empty()) ++active;
  }
  Latch done(active);
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    std::size_t weight = groups[s].size();
    // The task reads `ids` and writes disjoint slots of `*out`; both
    // outlive it because SpendBatch blocks on the latch below. The whole
    // group goes through one InsertBatch probe pass (applied in index
    // order, so duplicate ids keep first-wins semantics) and one
    // group-committed journal block.
    Task task = [this, &ids, out, &done, group = std::move(groups[s])](
                    ShardContext& ctx) {
      const std::size_t n = group.size();
      std::vector<rel::LicenseId> local(n);
      for (std::size_t j = 0; j < n; ++j) local[j] = ids[group[j]];
      std::vector<std::uint8_t> fresh(n);
      ctx.spent.InsertBatch(local.data(), n, fresh.data());
      JournalFreshIds(ctx, local, fresh);
      for (std::size_t j = 0; j < n; ++j) {
        (*out)[group[j]] =
            fresh[j] ? core::Status::kOk : core::Status::kAlreadySpent;
      }
      ctx.processed += n;
      UpdateSpentBytesGauge(ctx);
      done.CountDown();
    };
    if (shed_on_full) {
      if (!TrySubmit(s, std::move(task), weight)) {
        done.CountDown();  // shard shed: statuses stay kOverloaded
      }
    } else {
      // Blocking spends ride the same grouped-submit path as RunAll.
      std::vector<std::pair<Task, std::size_t>> group1;
      group1.emplace_back(std::move(task), weight);
      SubmitAll(s, std::move(group1));
    }
  }
  done.Wait();
}

core::Status ServerRuntime::SpendOne(const rel::LicenseId& id) {
  std::vector<core::Status> out;
  SpendBatch({id}, &out, /*shed_on_full=*/false);
  return out[0];
}

std::size_t ServerRuntime::SpentSize() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto lock = QuiesceShard(i);
    total += shards_[i]->ctx.spent.Size();
  }
  return total;
}

std::size_t ServerRuntime::SpentMemoryBytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto lock = QuiesceShard(i);
    total += shards_[i]->ctx.spent.MemoryBytes();
  }
  return total;
}

std::uint64_t ServerRuntime::Processed() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto lock = QuiesceShard(i);
    total += shards_[i]->ctx.processed;
  }
  return total;
}

std::uint64_t ServerRuntime::Overloads() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->m);
    total += shard->overloads;
  }
  return total;
}

std::size_t ServerRuntime::ShardSpentSize(std::size_t shard) const {
  auto lock = QuiesceShard(shard);
  return shards_[shard]->ctx.spent.Size();
}

std::uint64_t ServerRuntime::ShardProcessed(std::size_t shard) const {
  auto lock = QuiesceShard(shard);
  return shards_[shard]->ctx.processed;
}

std::uint64_t ServerRuntime::ShardSimClockUs(std::size_t shard) const {
  auto lock = QuiesceShard(shard);
  return shards_[shard]->ctx.sim_clock_us;
}

std::size_t ServerRuntime::QueueHighWater(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->m);
  return shards_[shard]->high_water;
}

}  // namespace server
}  // namespace p2drm
