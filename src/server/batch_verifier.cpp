#include "server/batch_verifier.h"

#include <utility>

#include "crypto/sha256.h"

namespace p2drm {
namespace server {

using bignum::BigInt;
using bignum::Montgomery;

const Montgomery& BatchVerifier::ContextForLocked(
    const crypto::RsaPublicKey& pub) {
  std::vector<std::uint8_t> key = pub.n.ToBytes();
  auto it = contexts_.find(key);
  if (it == contexts_.end()) {
    it = contexts_
             .emplace(std::move(key), std::make_unique<Montgomery>(pub.n))
             .first;
  }
  return *it->second;
}

const Montgomery& BatchVerifier::ContextFor(const crypto::RsaPublicKey& pub) {
  std::lock_guard<std::mutex> lock(m_);
  return ContextForLocked(pub);
}

bool BatchVerifier::VerifyFdhWith(const Montgomery& mont,
                                  const crypto::RsaPublicKey& pub,
                                  const std::vector<std::uint8_t>& msg,
                                  const std::vector<std::uint8_t>& sig) {
  if (sig.size() != pub.ModulusBytes()) return false;
  BigInt s = BigInt::FromBytes(sig);
  if (s.Compare(pub.n) >= 0) return false;
  return mont.PowMod(s, pub.e) == crypto::FdhHash(msg, pub);
}

bool BatchVerifier::VerifyFdh(const crypto::RsaPublicKey& pub,
                              const std::vector<std::uint8_t>& msg,
                              const std::vector<std::uint8_t>& sig) {
  const Montgomery& mont = ContextFor(pub);
  bool ok = VerifyFdhWith(mont, pub, msg, sig);
  std::lock_guard<std::mutex> lock(m_);
  stats_.items += 1;
  stats_.full_verifies += 1;
  return ok;
}

std::vector<bool> BatchVerifier::VerifySameKeyBatch(
    const crypto::RsaPublicKey& pub,
    const std::vector<std::vector<std::uint8_t>>& msgs,
    const std::vector<std::vector<std::uint8_t>>& sigs,
    bignum::RandomSource* rng) {
  const std::size_t n = msgs.size();
  std::vector<bool> valid(n, false);
  {
    std::lock_guard<std::mutex> lock(m_);
    stats_.items += n;
  }
  if (n == 0 || sigs.size() != n) return valid;

  const Montgomery& mont = ContextFor(pub);

  // Structural pre-screen (cheap, no exponentiation): wrong-width or
  // out-of-range signatures are invalid without touching the math.
  std::vector<std::size_t> cand;
  std::vector<BigInt> s_mont;   // signatures, Montgomery form
  std::vector<BigInt> h_mont;   // FDH images, Montgomery form
  cand.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (sigs[i].size() != pub.ModulusBytes()) continue;
    BigInt s = BigInt::FromBytes(sigs[i]);
    if (s.Compare(pub.n) >= 0) continue;
    cand.push_back(i);
    s_mont.push_back(mont.ToMont(s));
    h_mont.push_back(mont.ToMont(crypto::FdhHash(msgs[i], pub)));
  }
  if (cand.empty()) return valid;

  if (cand.size() == 1) {
    bool ok = mont.PowMod(mont.FromMont(s_mont[0]), pub.e) ==
              mont.FromMont(h_mont[0]);
    valid[cand[0]] = ok;
    std::lock_guard<std::mutex> lock(m_);
    stats_.full_verifies += 1;
    return valid;
  }

  // Small-exponents screen: accept the whole group iff
  //   (Π s_i^{r_i})^e ≡ Π H(m_i)^{r_i}   (mod n)
  // for fresh secret 32-bit exponents r_i. A cheating set of signatures
  // passes with probability <= 2^-32 (Bellare–Garay–Rabin). Both
  // products are computed by Straus interleaving: 32 shared squarings
  // for the whole group plus one multiply per set exponent bit, which is
  // what makes the screen cheaper than per-item verification even at
  // e = 65537 once certificate work is deduplicated.
  std::vector<std::uint32_t> r(cand.size());
  for (auto& ri : r) {
    std::uint8_t buf[4];
    rng->Fill(buf, sizeof(buf));
    ri = (static_cast<std::uint32_t>(buf[0]) << 24) |
         (static_cast<std::uint32_t>(buf[1]) << 16) |
         (static_cast<std::uint32_t>(buf[2]) << 8) |
         static_cast<std::uint32_t>(buf[3]);
    if (ri == 0) ri = 1;  // a zero exponent would drop the item entirely
  }

  BigInt acc_s = mont.ToMont(BigInt(1));
  BigInt acc_h = mont.ToMont(BigInt(1));
  for (int bit = 31; bit >= 0; --bit) {
    acc_s = mont.MulMont(acc_s, acc_s);
    acc_h = mont.MulMont(acc_h, acc_h);
    for (std::size_t j = 0; j < cand.size(); ++j) {
      if ((r[j] >> bit) & 1u) {
        acc_s = mont.MulMont(acc_s, s_mont[j]);
        acc_h = mont.MulMont(acc_h, h_mont[j]);
      }
    }
  }
  bool screen_ok = mont.PowMod(mont.FromMont(acc_s), pub.e) ==
                   mont.FromMont(acc_h);
  {
    std::lock_guard<std::mutex> lock(m_);
    stats_.screened_groups += 1;
    stats_.full_verifies += 1;
  }
  if (screen_ok) {
    for (std::size_t i : cand) valid[i] = true;
    return valid;
  }

  // Screen failed: at least one signature is bad. Fall back to per-item
  // verification so the good items still go through and the bad ones are
  // identified — soundness never depends on the screen accepting.
  std::uint64_t fallback_verifies = 0;
  for (std::size_t j = 0; j < cand.size(); ++j) {
    valid[cand[j]] = mont.PowMod(mont.FromMont(s_mont[j]), pub.e) ==
                     mont.FromMont(h_mont[j]);
    ++fallback_verifies;
  }
  std::lock_guard<std::mutex> lock(m_);
  stats_.screen_failures += 1;
  stats_.full_verifies += fallback_verifies;
  return valid;
}

bool BatchVerifier::VerifyPseudonymCert(
    const crypto::RsaPublicKey& ca_key,
    const core::PseudonymCertificate& cert) {
  std::pair<rel::KeyFingerprint, rel::KeyFingerprint> key{
      ca_key.Fingerprint(), crypto::Sha256::Hash(cert.Serialize())};
  {
    std::lock_guard<std::mutex> lock(m_);
    auto it = cert_cache_.find(key);
    if (it != cert_cache_.end()) {
      stats_.cert_cache_hits += 1;
      return it->second;
    }
  }
  const Montgomery& mont = ContextFor(ca_key);
  bool ok = VerifyFdhWith(mont, ca_key, cert.CanonicalBytes(),
                          cert.ca_signature);
  std::lock_guard<std::mutex> lock(m_);
  stats_.items += 1;
  stats_.full_verifies += 1;
  // The cache is pure memoization, so bounding it by epoch reset is
  // always sound. Without a bound, a client pairing one genuine license
  // with endlessly fabricated certificates could grow server memory
  // forever (rejections are cached too).
  if (cert_cache_.size() >= kCertCacheMaxEntries) cert_cache_.clear();
  cert_cache_.emplace(std::move(key), ok);
  return ok;
}

std::vector<bool> BatchVerifier::CrlProbePass(
    const store::RevocationList& crl,
    const std::vector<rel::KeyFingerprint>& keys) {
  std::vector<bool> revoked(keys.size(), false);
  std::map<rel::KeyFingerprint, bool> pass_cache;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto it = pass_cache.find(keys[i]);
    if (it != pass_cache.end()) {
      revoked[i] = it->second;
      ++hits;
      continue;
    }
    bool r = crl.IsRevoked(keys[i]);
    pass_cache.emplace(keys[i], r);
    revoked[i] = r;
  }
  std::lock_guard<std::mutex> lock(m_);
  stats_.crl_probe_hits += hits;
  return revoked;
}

}  // namespace server
}  // namespace p2drm
