#ifndef P2DRM_SERVER_STAGE_EXECUTOR_H_
#define P2DRM_SERVER_STAGE_EXECUTOR_H_

/// \file stage_executor.h
/// \brief Streaming stage-pipelined front end for BatchPipeline plans.
///
/// `BatchPipeline::Run` is submit-and-join: verify, mutate, issue and
/// commit of batch B all finish before batch B+1 starts, so the stages
/// never overlap across batches. `StagedBatchPipeline` keeps the exact
/// same Plan contract but splits a batch's lifetime in two:
///
///   Submit(plan):  verify -> mutate -> reject/shed -> draw_fork   (caller)
///                  -> issue fan-out onto a SignerPool              (async)
///   CommitHead():  join the batch's ticket -> commit tail          (caller)
///
/// The caller's thread IS the dispatch thread — there is no hidden
/// scheduler thread, so everything that touches flow state outside the
/// issue callbacks (verify, mutate, draw_fork, reject, commit) still
/// runs single-threaded on the caller, exactly as under Run. While
/// batch B's signatures grind on the pool, the caller's next Submit
/// runs batch B+1's verify/mutate — that is the cross-batch overlap.
///
/// Ordering and determinism contract (the same one Run gives, extended
/// across batches):
///  * Verify and draw_fork run inside Submit, so every shared-RNG draw
///    happens on the dispatch thread in Submit order — the DRBG stream
///    is identical to running the same batches serially, which is what
///    makes streaming issuance bit-identical to Run under a fixed seed.
///  * kOverloaded sheds surface inside Submit (reject runs before
///    Submit returns) and never reach issue or commit — a shed item has
///    no server-side trace even with other batches in flight.
///  * Commits apply strictly in batch order, each batch's tail in
///    ascending k, on the dispatch thread. Commit points are
///    deterministic: a batch commits only when the in-flight window is
///    full (inside a later Submit) or at Flush — never opportunistically
///    on worker completion, so the interleaving of commit(B) and
///    verify(B+n) is a pure function of the Submit/Flush call sequence.
///  * Corollary: batches streamed concurrently must be commit-
///    independent — a flow whose verify reads state its own commit
///    writes (e.g. exchange consulting the issued-key map) may only
///    stream batches that do not depend on each other's commits.
///
/// Timings: under streaming, per-stage numbers are BUSY time (what each
/// stage actually consumed), not wall spans — the stages overlap, so
/// their sum deliberately exceeds the window's `makespan_us` (first
/// Submit to Flush end). makespan < sum-of-busy is the overlap win
/// bench_server_scaling Part G gates.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "server/batch_pipeline.h"
#include "server/signer_pool.h"

namespace p2drm {
namespace server {

/// Streaming Submit/Flush counterpart to BatchPipeline::Run. Not
/// thread-safe: one instance belongs to one dispatch thread.
class StagedBatchPipeline {
 public:
  struct Config {
    /// Issue fan-out target. Null runs issue inline inside Submit —
    /// still useful for the deferred-commit window (deposit flow) and
    /// for deterministic-timing tests with a non-thread-safe tick.
    SignerPool* pool = nullptr;

    /// Submit blocks (committing the oldest batch) once this many
    /// batches are in flight. Bounds memory and commit latency.
    std::size_t max_batches_in_flight = 4;

    /// Stage-timing clock (null = SteadyNowUs). With a pool it is also
    /// called from the workers to measure per-item issue busy time, so
    /// it must be thread-safe then (the TimeSourceUs contract).
    TimeSourceUs now_us;
  };

  explicit StagedBatchPipeline(Config cfg);

  /// Drains in-flight batches (their commit tails run here).
  ~StagedBatchPipeline();

  StagedBatchPipeline(const StagedBatchPipeline&) = delete;
  StagedBatchPipeline& operator=(const StagedBatchPipeline&) = delete;

  /// Runs verify/mutate/draw_fork for \p plan on the calling thread,
  /// fans its issue stage out to the pool, and returns with the batch
  /// in flight. May first commit older batches to respect
  /// max_batches_in_flight. \p on_commit, when set, runs right after
  /// the batch's commit tail (still on the dispatch thread) — flows use
  /// it to snapshot per-batch results. The plan's callbacks must stay
  /// valid until the batch commits; state they capture by reference
  /// must be heap-owned by the flow, not a Submit caller's stack frame.
  void Submit(BatchPipeline::Plan plan, const PipelineObs* pobs = nullptr,
              std::function<void()> on_commit = nullptr);

  /// Joins and commits everything in flight, in batch order, and closes
  /// the timing window: returns per-stage busy sums over the window's
  /// batches plus `makespan_us` = first-Submit to Flush-end. Resets the
  /// window; an empty window returns zeros.
  BatchPipelineTimings Flush();

  /// Batches submitted but not yet committed.
  std::size_t InFlight() const { return inflight_.size(); }

  /// Wires `<prefix>batches_in_flight` (gauge, +1 at Submit, -1 at
  /// commit). Call before the first Submit; nullptr detaches.
  void set_observability(obs::Registry* registry, const std::string& prefix);

 private:
  struct InFlightBatch;

  std::uint64_t Now() const;
  void CommitHead();

  Config cfg_;
  // unique_ptr elements: issue jobs on the pool hold raw pointers into
  // the batch, so its address must survive deque growth.
  std::deque<std::unique_ptr<InFlightBatch>> inflight_;

  BatchPipelineTimings agg_;          // busy sums over the open window
  bool window_open_ = false;
  std::uint64_t window_start_us_ = 0;  // verify-t0 of the window's first Submit

  obs::Registry* registry_ = nullptr;
  obs::Registry::Id gauge_inflight_ = 0;
};

}  // namespace server
}  // namespace p2drm

#endif  // P2DRM_SERVER_STAGE_EXECUTOR_H_
