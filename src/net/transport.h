#ifndef P2DRM_NET_TRANSPORT_H_
#define P2DRM_NET_TRANSPORT_H_

/// \file transport.h
/// \brief In-process request/response transport with byte metering and a
/// simulated latency model.
///
/// The P2DRM paper's actors (content provider, CA, payment provider, TTP,
/// devices) talk over a network we simulate in-process. The transport
/// meters messages and bytes per channel — that is what regenerates the
/// protocol-cost table (RT-2) — and accumulates simulated wall-clock time
/// from a configurable latency model, standing in for the testbed the
/// authors did not describe.
///
/// A channel may be *anonymous*: the handler never sees the caller, which
/// models the anonymous-channel assumption (mix network / onion routing)
/// the paper makes for license transfer.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace p2drm {
namespace net {

/// Per-direction traffic counters.
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Fixed + per-byte latency model (microseconds).
struct LatencyModel {
  std::uint64_t per_message_us = 0;  ///< propagation + handshake cost
  std::uint64_t per_kib_us = 0;      ///< serialization/bandwidth cost

  /// Bandwidth cost rounds up: a sub-KiB message still spends wire time,
  /// so it must contribute at least 1us whenever per_kib_us > 0.
  std::uint64_t CostUs(std::size_t bytes) const {
    std::uint64_t weighted = static_cast<std::uint64_t>(bytes) * per_kib_us;
    return per_message_us + (weighted + 1023) / 1024;
  }
};

/// Synchronous in-process message bus.
class Transport {
 public:
  using Handler =
      std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

  Transport() = default;
  explicit Transport(const LatencyModel& model) : latency_(model) {}

  /// Registers (or replaces) the handler behind \p endpoint.
  void RegisterEndpoint(const std::string& endpoint, Handler handler);

  /// Sends \p request to \p endpoint and stores its response in
  /// \p response. Returns false (touching nothing) when the endpoint is
  /// unknown — the RPC layer maps that onto core::Status::kUnavailable.
  /// \param from caller label used *only* for metering; pass
  ///        Transport::kAnonymous for anonymous-channel calls.
  bool TryCall(const std::string& from, const std::string& endpoint,
               const std::vector<std::uint8_t>& request,
               std::vector<std::uint8_t>* response);

  /// Throwing convenience over TryCall (std::out_of_range on unknown
  /// endpoints). Kept for tests and raw-wire experiments; production
  /// traffic goes through net::Rpc, which never throws.
  std::vector<std::uint8_t> Call(const std::string& from,
                                 const std::string& endpoint,
                                 const std::vector<std::uint8_t>& request);

  /// Caller label standing in for an anonymizing mix network.
  static constexpr const char* kAnonymous = "<anonymous>";

  /// Traffic sent from \p from to \p to (requests only).
  ChannelStats StatsFor(const std::string& from, const std::string& to) const;
  /// Total traffic into \p endpoint, any caller, requests + responses.
  ChannelStats TotalFor(const std::string& endpoint) const;
  /// Grand totals across all channels (requests + responses).
  ChannelStats GrandTotal() const;

  /// Simulated time accumulated by the latency model.
  std::uint64_t SimulatedTimeUs() const { return simulated_us_; }

  /// Clears all counters (handlers stay registered).
  void ResetStats();

 private:
  std::map<std::string, Handler> endpoints_;
  // (from, to) -> request stats; (to) -> response stats.
  std::map<std::pair<std::string, std::string>, ChannelStats> request_stats_;
  std::map<std::string, ChannelStats> response_stats_;
  LatencyModel latency_;
  std::uint64_t simulated_us_ = 0;
};

}  // namespace net
}  // namespace p2drm

#endif  // P2DRM_NET_TRANSPORT_H_
