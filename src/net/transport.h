#ifndef P2DRM_NET_TRANSPORT_H_
#define P2DRM_NET_TRANSPORT_H_

/// \file transport.h
/// \brief In-process request/response transport with byte metering and a
/// simulated latency model.
///
/// The P2DRM paper's actors (content provider, CA, payment provider, TTP,
/// devices) talk over a network we simulate in-process. The transport
/// meters messages and bytes per channel — that is what regenerates the
/// protocol-cost table (RT-2) — and charges simulated latency from a
/// configurable model into the unified virtual timebase
/// (sim::VirtualClock), standing in for the testbed the authors did not
/// describe.
///
/// A channel may be *anonymous*: the handler never sees the caller, which
/// models the anonymous-channel assumption (mix network / onion routing)
/// the paper makes for license transfer.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/virtual_clock.h"

namespace p2drm {
namespace net {

/// Per-direction traffic counters.
struct ChannelStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Fixed + per-byte latency model (microseconds).
struct LatencyModel {
  std::uint64_t per_message_us = 0;  ///< propagation + handshake cost
  std::uint64_t per_kib_us = 0;      ///< serialization/bandwidth cost

  /// Bandwidth cost rounds up: a sub-KiB message still spends wire time,
  /// so it must contribute at least 1us whenever per_kib_us > 0. The
  /// arithmetic saturates instead of wrapping — a pathological
  /// bytes × per_kib_us product must read as "forever", not as a small
  /// cost that silently corrupts the timebase.
  std::uint64_t CostUs(std::size_t bytes) const {
    constexpr std::uint64_t kMax = ~std::uint64_t{0};
    std::uint64_t b = static_cast<std::uint64_t>(bytes);
    if (per_kib_us != 0 && b > kMax / per_kib_us) return kMax;  // "forever"
    std::uint64_t weighted = b * per_kib_us;
    std::uint64_t banded = weighted / 1024 + (weighted % 1024 != 0 ? 1 : 0);
    return sim::SaturatingAddUs(per_message_us, banded);
  }
};

/// Synchronous in-process message bus.
class Transport {
 public:
  using Handler =
      std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

  Transport() = default;
  explicit Transport(const LatencyModel& model) : latency_(model) {}

  /// Registers (or replaces) the handler behind \p endpoint.
  void RegisterEndpoint(const std::string& endpoint, Handler handler);

  /// Sends \p request to \p endpoint and stores its response in
  /// \p response. Returns false (touching nothing) when the endpoint is
  /// unknown — the RPC layer maps that onto core::Status::kUnavailable.
  /// \param from caller label used *only* for metering; pass
  ///        Transport::kAnonymous for anonymous-channel calls.
  bool TryCall(const std::string& from, const std::string& endpoint,
               const std::vector<std::uint8_t>& request,
               std::vector<std::uint8_t>* response);

  /// Throwing convenience over TryCall (std::out_of_range on unknown
  /// endpoints). Kept for tests and raw-wire experiments; production
  /// traffic goes through net::Rpc, which never throws.
  std::vector<std::uint8_t> Call(const std::string& from,
                                 const std::string& endpoint,
                                 const std::vector<std::uint8_t>& request);

  /// Caller label standing in for an anonymizing mix network.
  static constexpr const char* kAnonymous = "<anonymous>";

  /// Traffic sent from \p from to \p to (requests only).
  ChannelStats StatsFor(const std::string& from, const std::string& to) const;
  /// Total traffic into \p endpoint, any caller, requests + responses.
  ChannelStats TotalFor(const std::string& endpoint) const;
  /// Grand totals across all channels (requests + responses).
  ChannelStats GrandTotal() const;

  /// Binds the virtual timebase every LatencyModel cost is charged into
  /// (not owned; must outlive the transport's use). Unbound transports
  /// keep metering only — SimulatedTimeUs() works either way.
  void BindClock(sim::VirtualClock* clock) { clock_ = clock; }
  sim::VirtualClock* clock() const { return clock_; }

  /// Wire time THIS transport has charged through its latency model —
  /// a per-component meter, deliberately distinct from the shared
  /// timebase (which other components also advance). Reset by
  /// ResetStats; the bound VirtualClock never rewinds.
  std::uint64_t SimulatedTimeUs() const { return charged_us_; }

  /// Clears all counters (handlers stay registered, the bound timebase
  /// is untouched — virtual time is monotonic).
  void ResetStats();

 private:
  /// Meters \p cost_us and advances the bound timebase.
  void ChargeUs(std::uint64_t cost_us);

  std::map<std::string, Handler> endpoints_;
  // (from, to) -> request stats; (to) -> response stats.
  std::map<std::pair<std::string, std::string>, ChannelStats> request_stats_;
  std::map<std::string, ChannelStats> response_stats_;
  LatencyModel latency_;
  sim::VirtualClock* clock_ = nullptr;
  std::uint64_t charged_us_ = 0;
};

}  // namespace net
}  // namespace p2drm

#endif  // P2DRM_NET_TRANSPORT_H_
