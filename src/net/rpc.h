#ifndef P2DRM_NET_RPC_H_
#define P2DRM_NET_RPC_H_

/// \file rpc.h
/// \brief Typed RPC layer over the byte-metered Transport.
///
/// Every message on the wire is wrapped in a versioned envelope:
///
///   request:  u8 version | u8 tag | u64 correlation id | blob payload
///   response: u8 version | u8 tag | u64 correlation id | u8 status | blob
///
/// The payload is the protocol message body (core/protocol.h) *without*
/// its tag — the tag lives in the envelope, the status code lives in the
/// response envelope. Dispatch failures (unknown endpoint, unknown tag,
/// version mismatch, malformed payload, handler crash) come back as typed
/// core::Status codes; no exception ever crosses the wire boundary.
///
/// The batch envelope (kBatchTag) carries N independently tagged
/// sub-requests in one metered round trip, so hot paths (bulk redeem,
/// bulk purchase) amortize the per-message latency and message count
/// while unbatched traffic keeps the exact RT-2 cost accounting.
///
/// Batch fast path: a handler registered with RegisterBatch() receives
/// ALL of a batch envelope's sub-requests with its tag in one call
/// (grouped server-side, order preserved on the wire), which is what
/// lets the content provider amortize crypto across a whole batch. Tags
/// without a batch handler keep the item-at-a-time dispatch. Nothing
/// about the envelope changes either way.
///
/// Client side: Rpc::Call<Req>() — Req names its tag (Req::kTag) and its
/// response type (Req::Response), so call sites are fully typed.
/// Server side: ServiceRegistry maps tag bytes to typed handlers and
/// binds to a Transport endpoint as an ordinary handler function.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/errors.h"
#include "net/codec.h"
#include "net/transport.h"

namespace p2drm {
namespace net {

/// Current envelope version. Bump on incompatible envelope changes.
constexpr std::uint8_t kProtocolVersion = 1;

/// Reserved tag for the batch envelope (outside every actor's tag space).
constexpr std::uint8_t kBatchTag = 0xF0;

/// Upper bound on sub-requests per batch (malformed-count guard).
constexpr std::size_t kMaxBatchItems = 1024;

/// Client -> server envelope.
struct RequestEnvelope {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t tag = 0;
  std::uint64_t correlation_id = 0;
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> Encode() const;
  /// Throws CodecError on truncation.
  static RequestEnvelope Decode(const std::vector<std::uint8_t>& wire);
};

/// Server -> client envelope. \c payload carries the response body on
/// kOk and the typed u32 retry hint on kOverloaded; it is empty on every
/// other status (batch responses always carry the per-item payload
/// section).
struct ResponseEnvelope {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t tag = 0;
  std::uint64_t correlation_id = 0;
  core::Status status = core::Status::kInternalError;
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> Encode() const;
  /// Throws CodecError on truncation.
  static ResponseEnvelope Decode(const std::vector<std::uint8_t>& wire);
};

/// Typed redirect hint carried by kWrongReplica responses: which cluster
/// ring epoch the answering replica is on and which replica owns the key
/// under it. A client holding a stale ring view refreshes to \c ring_epoch
/// and re-sends to \c owner instead of treating the response as an error
/// (docs/cluster.md). Like the kOverloaded retry hint, it rides in the
/// response envelope's payload section, so the envelope wire format is
/// unchanged.
struct RedirectHint {
  std::uint64_t ring_epoch = 0;
  std::uint32_t owner = 0;
};

/// Encodes a redirect hint as a kWrongReplica response payload. Handlers
/// that shard-check ownership write this into their response body.
std::vector<std::uint8_t> EncodeRedirectHint(const RedirectHint& hint);

/// Parses a kWrongReplica payload; returns a zero hint when the payload
/// is absent or malformed (a hint is advice, not protocol).
RedirectHint DecodeRedirectHint(const std::vector<std::uint8_t>& payload);

/// Outcome of a typed call: a status plus the decoded response (valid only
/// when ok()).
template <typename Resp>
struct RpcResult {
  core::Status status = core::Status::kUnavailable;
  Resp value{};
  /// Typed retry hint carried by kOverloaded responses: how long the
  /// server suggests waiting before resubmitting, in milliseconds. 0 on
  /// every other status, and on kOverloaded replies from servers that
  /// did not attach a hint. Callers no longer need to invent a backoff
  /// from the status alone.
  std::uint32_t retry_after_ms = 0;
  /// Typed redirect hint carried by kWrongReplica responses: the ring
  /// epoch the server answered under and the replica that owns the key.
  /// Zero on every other status.
  RedirectHint redirect;

  bool ok() const { return status == core::Status::kOk; }
  bool overloaded() const { return status == core::Status::kOverloaded; }
  bool wrong_replica() const {
    return status == core::Status::kWrongReplica;
  }
};

/// Maps envelope tags to typed handlers behind one Transport endpoint.
///
/// A handler takes the decoded request and fills in the response:
///   registry.Register<proto::PurchaseRequest>(
///       [&](const proto::PurchaseRequest& req,
///           proto::PurchaseResponse* resp) -> core::Status { ... });
///
/// Dispatch never throws: malformed envelopes, unknown tags and handler
/// exceptions all become response envelopes with a non-kOk status. The
/// batch tag is handled natively — each sub-request dispatches through the
/// same handler table and gets its own per-item status.
class ServiceRegistry {
 public:
  /// Type-erased handler: payload in, encoded response body out.
  /// Returns the status placed in the response envelope; the body is
  /// used when the status is kOk (the typed response) or kWrongReplica
  /// (an EncodeRedirectHint payload).
  using RawHandler = std::function<core::Status(
      const std::vector<std::uint8_t>&, std::vector<std::uint8_t>*)>;

  /// Type-erased batch handler: all same-tag payloads of one batch
  /// envelope in, aligned statuses + bodies out (bodies are used only
  /// where the status is kOk).
  using RawBatchHandler =
      std::function<void(const std::vector<std::vector<std::uint8_t>>&,
                         std::vector<core::Status>*,
                         std::vector<std::vector<std::uint8_t>>*)>;

  /// Registers a typed handler under Req::kTag.
  template <typename Req, typename Fn>
  void Register(Fn fn) {
    RegisterRaw(
        static_cast<std::uint8_t>(Req::kTag),
        [fn = std::move(fn)](const std::vector<std::uint8_t>& payload,
                             std::vector<std::uint8_t>* out) -> core::Status {
          Req req;
          try {
            ByteReader r(payload);
            req = Req::Decode(&r);
            r.ExpectEnd();
          } catch (const CodecError&) {
            return core::Status::kBadRequest;
          }
          typename Req::Response resp;
          core::Status status = fn(req, &resp);
          if (status == core::Status::kOk) *out = resp.Encode();
          return status;
        });
  }

  /// Registers a typed batch handler under Req::kTag: one call receives
  /// every sub-request with that tag from a batch envelope, already
  /// decoded (undecodable items are answered kBadRequest individually
  /// and never reach the handler).
  ///
  ///   registry.RegisterBatch<proto::RedeemRequest>(
  ///       [&](const std::vector<proto::RedeemRequest>& reqs,
  ///           std::vector<proto::PurchaseResponse>* resps)
  ///           -> std::vector<core::Status> { ... });
  ///
  /// The returned status vector must align with \p reqs; \p resps is
  /// pre-sized to match. Unbatched requests with the same tag still go
  /// through the Register() handler, so both must be registered for a
  /// tag that serves single and batched traffic.
  template <typename Req, typename Fn>
  void RegisterBatch(Fn fn) {
    RegisterRawBatch(
        static_cast<std::uint8_t>(Req::kTag),
        [fn = std::move(fn)](
            const std::vector<std::vector<std::uint8_t>>& payloads,
            std::vector<core::Status>* statuses,
            std::vector<std::vector<std::uint8_t>>* bodies) {
          const std::size_t n = payloads.size();
          statuses->assign(n, core::Status::kBadRequest);
          bodies->assign(n, {});
          std::vector<Req> reqs;
          std::vector<std::size_t> origin;  // reqs index -> payload index
          reqs.reserve(n);
          origin.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            try {
              ByteReader r(payloads[i]);
              Req req = Req::Decode(&r);
              r.ExpectEnd();
              reqs.push_back(std::move(req));
              origin.push_back(i);
            } catch (const CodecError&) {
              // stays kBadRequest
            }
          }
          if (reqs.empty()) return;
          std::vector<typename Req::Response> resps(reqs.size());
          std::vector<core::Status> st = fn(reqs, &resps);
          if (st.size() != reqs.size() || resps.size() != reqs.size()) {
            for (std::size_t i : origin) {
              (*statuses)[i] = core::Status::kInternalError;
            }
            return;
          }
          for (std::size_t j = 0; j < reqs.size(); ++j) {
            (*statuses)[origin[j]] = st[j];
            if (st[j] == core::Status::kOk) {
              (*bodies)[origin[j]] = resps[j].Encode();
            }
          }
        });
  }

  /// Retry hint attached to kOverloaded responses (single and batch
  /// items alike): the payload of an overloaded reply becomes a u32
  /// suggested wait in milliseconds, which the client stub surfaces as
  /// RpcResult::retry_after_ms. Non-overloaded non-kOk responses keep an
  /// empty payload, so the wire cost of every other path is unchanged.
  void set_overload_retry_hint_ms(std::uint32_t ms) {
    overload_retry_hint_ms_ = ms;
  }
  std::uint32_t overload_retry_hint_ms() const {
    return overload_retry_hint_ms_;
  }

  /// Registers (or replaces) a type-erased handler for \p tag.
  void RegisterRaw(std::uint8_t tag, RawHandler handler);

  /// Registers (or replaces) a type-erased batch handler for \p tag.
  void RegisterRawBatch(std::uint8_t tag, RawBatchHandler handler);

  /// Full server-side entry point: raw request envelope bytes in, raw
  /// response envelope bytes out. Never throws.
  std::vector<std::uint8_t> Dispatch(
      const std::vector<std::uint8_t>& wire) const;

  /// Installs Dispatch() as the Transport handler for \p endpoint. The
  /// registry must outlive the transport's use of the endpoint.
  void BindTo(Transport* transport, const std::string& endpoint);

 private:
  /// Dispatches one tagged payload through the handler table (used for
  /// both single requests and batch items). Never throws.
  core::Status DispatchItem(std::uint8_t tag,
                            const std::vector<std::uint8_t>& payload,
                            std::vector<std::uint8_t>* out) const;

  /// Encoded u32 retry-hint payload for kOverloaded responses.
  std::vector<std::uint8_t> EncodeRetryHint() const;

  std::map<std::uint8_t, RawHandler> handlers_;
  std::map<std::uint8_t, RawBatchHandler> batch_handlers_;
  std::uint32_t overload_retry_hint_ms_ = 50;
};

/// Typed client stub. Owns nothing but a Transport pointer, a caller
/// label and a correlation-id counter.
class Rpc {
 public:
  /// \param from metering label for identified calls; anonymous-channel
  /// calls always go out under Transport::kAnonymous regardless.
  Rpc(Transport* transport, std::string from)
      : transport_(transport), from_(std::move(from)) {}

  const std::string& from() const { return from_; }

  /// Identified call: one request, one metered round trip.
  template <typename Req>
  RpcResult<typename Req::Response> Call(const std::string& endpoint,
                                         const Req& req) {
    return CallAs<Req>(from_, endpoint, req);
  }

  /// Anonymous-channel call (mix-network stand-in): the handler and the
  /// metering never see the caller label.
  template <typename Req>
  RpcResult<typename Req::Response> CallAnonymous(const std::string& endpoint,
                                                  const Req& req) {
    return CallAs<Req>(Transport::kAnonymous, endpoint, req);
  }

  /// Explicit-label call (tests, auditors, server-to-server traffic).
  template <typename Req>
  RpcResult<typename Req::Response> CallAs(const std::string& from,
                                           const std::string& endpoint,
                                           const Req& req) {
    RawResult raw = RawCall(from, endpoint,
                            static_cast<std::uint8_t>(Req::kTag), req.Encode());
    return DecodeTyped<typename Req::Response>(raw);
  }

  /// Homogeneous batch: N requests ride ceil(N / kMaxBatchItems) metered
  /// round trips — one for any batch that fits the size cap. Results come
  /// back index-aligned with \p reqs; a transport- or envelope-level
  /// failure replicates its status across the affected chunk's items.
  template <typename Req>
  std::vector<RpcResult<typename Req::Response>> CallBatch(
      const std::string& endpoint, const std::vector<Req>& reqs) {
    return CallBatchAs<Req>(from_, endpoint, reqs);
  }

  template <typename Req>
  std::vector<RpcResult<typename Req::Response>> CallBatchAnonymous(
      const std::string& endpoint, const std::vector<Req>& reqs) {
    return CallBatchAs<Req>(Transport::kAnonymous, endpoint, reqs);
  }

  template <typename Req>
  std::vector<RpcResult<typename Req::Response>> CallBatchAs(
      const std::string& from, const std::string& endpoint,
      const std::vector<Req>& reqs) {
    std::vector<RpcResult<typename Req::Response>> out;
    out.reserve(reqs.size());
    // Chunk to the server's size cap so callers never trip it.
    for (std::size_t start = 0; start < reqs.size();
         start += kMaxBatchItems) {
      std::size_t count = std::min(kMaxBatchItems, reqs.size() - start);
      std::vector<TaggedPayload> items;
      items.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        items.push_back({static_cast<std::uint8_t>(Req::kTag),
                         reqs[start + i].Encode()});
      }
      for (const RawResult& raw : RawBatch(from, endpoint, items)) {
        out.push_back(DecodeTyped<typename Req::Response>(raw));
      }
    }
    return out;
  }

 private:
  struct RawResult {
    core::Status status = core::Status::kUnavailable;
    std::vector<std::uint8_t> payload;
  };
  struct TaggedPayload {
    std::uint8_t tag;
    std::vector<std::uint8_t> payload;
  };

  /// Wraps, sends, unwraps; maps every failure onto a status code.
  RawResult RawCall(const std::string& from, const std::string& endpoint,
                    std::uint8_t tag, std::vector<std::uint8_t> payload);

  /// Same, for a batch envelope. Always returns items.size() results.
  std::vector<RawResult> RawBatch(const std::string& from,
                                  const std::string& endpoint,
                                  const std::vector<TaggedPayload>& items);

  /// Parses the u32 retry hint an overloaded response carries; 0 when
  /// the payload is absent or malformed (a hint is advice, not protocol).
  static std::uint32_t DecodeRetryHint(const std::vector<std::uint8_t>& payload);

  template <typename Resp>
  static RpcResult<Resp> DecodeTyped(const RawResult& raw) {
    RpcResult<Resp> out;
    out.status = raw.status;
    if (raw.status == core::Status::kOverloaded) {
      out.retry_after_ms = DecodeRetryHint(raw.payload);
      return out;
    }
    if (raw.status == core::Status::kWrongReplica) {
      out.redirect = DecodeRedirectHint(raw.payload);
      return out;
    }
    if (raw.status != core::Status::kOk) return out;
    try {
      out.value = Resp::Decode(raw.payload);
    } catch (const CodecError&) {
      out.status = core::Status::kBadResponse;
    }
    return out;
  }

  Transport* transport_;
  std::string from_;
  std::uint64_t next_correlation_ = 0;
};

}  // namespace net
}  // namespace p2drm

#endif  // P2DRM_NET_RPC_H_
