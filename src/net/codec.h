#ifndef P2DRM_NET_CODEC_H_
#define P2DRM_NET_CODEC_H_

/// \file codec.h
/// \brief Canonical binary encoding used for every on-wire message and every
/// signed structure in the repo.
///
/// Signatures in the DRM protocols are computed over these encodings, so the
/// encoding must be canonical: fixed-width big-endian integers and
/// length-prefixed blobs, no optional fields, no floats.

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace p2drm {
namespace net {

/// Thrown when a reader runs past the end of its buffer or a declared
/// length is inconsistent.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width big-endian values and length-prefixed blobs.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);

  /// 32-bit length prefix followed by raw bytes.
  void Blob(const std::vector<std::uint8_t>& v);
  void Blob(const std::uint8_t* data, std::size_t len);

  /// Fixed-width raw bytes, no length prefix.
  template <std::size_t N>
  void Fixed(const std::array<std::uint8_t, N>& v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  /// UTF-8 string as a blob.
  void String(const std::string& s);

  const std::vector<std::uint8_t>& Bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }
  std::size_t Size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reads values written by ByteWriter. Throws CodecError on underflow.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::vector<std::uint8_t> Blob();
  std::string String();

  template <std::size_t N>
  std::array<std::uint8_t, N> Fixed() {
    Require(N);
    std::array<std::uint8_t, N> out;
    std::copy(data_ + pos_, data_ + pos_ + N, out.begin());
    pos_ += N;
    return out;
  }

  /// Bytes left unread.
  std::size_t Remaining() const { return size_ - pos_; }
  /// True when the whole buffer has been consumed.
  bool AtEnd() const { return pos_ == size_; }
  /// Throws unless the buffer was consumed exactly.
  void ExpectEnd() const;

 private:
  void Require(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace net
}  // namespace p2drm

#endif  // P2DRM_NET_CODEC_H_
