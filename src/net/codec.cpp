#include "net/codec.h"

namespace p2drm {
namespace net {

void ByteWriter::U16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::U32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v >> 32));
  U32(static_cast<std::uint32_t>(v));
}

void ByteWriter::Blob(const std::vector<std::uint8_t>& v) {
  Blob(v.data(), v.size());
}

void ByteWriter::Blob(const std::uint8_t* data, std::size_t len) {
  U32(static_cast<std::uint32_t>(len));
  buf_.insert(buf_.end(), data, data + len);
}

void ByteWriter::String(const std::string& s) {
  Blob(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteReader::Require(std::size_t n) const {
  if (pos_ + n > size_) throw CodecError("ByteReader: truncated input");
}

std::uint8_t ByteReader::U8() {
  Require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::U16() {
  Require(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::U32() {
  Require(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::U64() {
  std::uint64_t hi = U32();
  std::uint64_t lo = U32();
  return (hi << 32) | lo;
}

std::vector<std::uint8_t> ByteReader::Blob() {
  std::uint32_t len = U32();
  Require(len);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

std::string ByteReader::String() {
  std::vector<std::uint8_t> b = Blob();
  return std::string(b.begin(), b.end());
}

void ByteReader::ExpectEnd() const {
  if (!AtEnd()) throw CodecError("ByteReader: trailing bytes");
}

}  // namespace net
}  // namespace p2drm
