#include "net/transport.h"

#include <stdexcept>

namespace p2drm {
namespace net {

void Transport::RegisterEndpoint(const std::string& endpoint, Handler handler) {
  endpoints_[endpoint] = std::move(handler);
}

void Transport::ChargeUs(std::uint64_t cost_us) {
  // Same saturation contract as the timebase: a "forever" cost must pin
  // the meter, not wrap it back to a small number.
  charged_us_ = sim::SaturatingAddUs(charged_us_, cost_us);
  if (clock_ != nullptr) clock_->AdvanceUs(cost_us);
}

bool Transport::TryCall(const std::string& from, const std::string& endpoint,
                        const std::vector<std::uint8_t>& request,
                        std::vector<std::uint8_t>* response) {
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) return false;
  ChannelStats& req = request_stats_[{from, endpoint}];
  req.messages += 1;
  req.bytes += request.size();
  // Request wire time elapses before the handler runs, response wire
  // time after it — a handler that reads the shared timebase sees the
  // request already delivered.
  ChargeUs(latency_.CostUs(request.size()));

  *response = it->second(request);

  ChannelStats& resp = response_stats_[endpoint];
  resp.messages += 1;
  resp.bytes += response->size();
  ChargeUs(latency_.CostUs(response->size()));
  return true;
}

std::vector<std::uint8_t> Transport::Call(
    const std::string& from, const std::string& endpoint,
    const std::vector<std::uint8_t>& request) {
  std::vector<std::uint8_t> response;
  if (!TryCall(from, endpoint, request, &response)) {
    throw std::out_of_range("Transport: unknown endpoint " + endpoint);
  }
  return response;
}

ChannelStats Transport::StatsFor(const std::string& from,
                                 const std::string& to) const {
  auto it = request_stats_.find({from, to});
  return it == request_stats_.end() ? ChannelStats{} : it->second;
}

ChannelStats Transport::TotalFor(const std::string& endpoint) const {
  ChannelStats total;
  for (const auto& [key, stats] : request_stats_) {
    if (key.second == endpoint) {
      total.messages += stats.messages;
      total.bytes += stats.bytes;
    }
  }
  auto it = response_stats_.find(endpoint);
  if (it != response_stats_.end()) {
    total.messages += it->second.messages;
    total.bytes += it->second.bytes;
  }
  return total;
}

ChannelStats Transport::GrandTotal() const {
  ChannelStats total;
  for (const auto& [key, stats] : request_stats_) {
    (void)key;
    total.messages += stats.messages;
    total.bytes += stats.bytes;
  }
  for (const auto& [key, stats] : response_stats_) {
    (void)key;
    total.messages += stats.messages;
    total.bytes += stats.bytes;
  }
  return total;
}

void Transport::ResetStats() {
  request_stats_.clear();
  response_stats_.clear();
  charged_us_ = 0;
}

}  // namespace net
}  // namespace p2drm
