#include "net/rpc.h"

namespace p2drm {
namespace net {

// -- envelopes ---------------------------------------------------------------

std::vector<std::uint8_t> RequestEnvelope::Encode() const {
  ByteWriter w;
  w.U8(version);
  w.U8(tag);
  w.U64(correlation_id);
  w.Blob(payload);
  return w.Take();
}

RequestEnvelope RequestEnvelope::Decode(const std::vector<std::uint8_t>& wire) {
  ByteReader r(wire);
  RequestEnvelope env;
  env.version = r.U8();
  env.tag = r.U8();
  env.correlation_id = r.U64();
  env.payload = r.Blob();
  r.ExpectEnd();
  return env;
}

std::vector<std::uint8_t> ResponseEnvelope::Encode() const {
  ByteWriter w;
  w.U8(version);
  w.U8(tag);
  w.U64(correlation_id);
  w.U8(static_cast<std::uint8_t>(status));
  w.Blob(payload);
  return w.Take();
}

ResponseEnvelope ResponseEnvelope::Decode(
    const std::vector<std::uint8_t>& wire) {
  ByteReader r(wire);
  ResponseEnvelope env;
  env.version = r.U8();
  env.tag = r.U8();
  env.correlation_id = r.U64();
  env.status = static_cast<core::Status>(r.U8());
  env.payload = r.Blob();
  r.ExpectEnd();
  return env;
}

// -- redirect hint -----------------------------------------------------------

std::vector<std::uint8_t> EncodeRedirectHint(const RedirectHint& hint) {
  ByteWriter w;
  w.U64(hint.ring_epoch);
  w.U32(hint.owner);
  return w.Take();
}

RedirectHint DecodeRedirectHint(const std::vector<std::uint8_t>& payload) {
  RedirectHint hint;
  try {
    ByteReader r(payload);
    hint.ring_epoch = r.U64();
    hint.owner = r.U32();
    // Deliberately no ExpectEnd: later protocol revisions may append
    // fields to the hint without breaking older clients.
  } catch (const CodecError&) {
    hint = RedirectHint{};  // absent or malformed: advice only
  }
  return hint;
}

// -- server side -------------------------------------------------------------

std::vector<std::uint8_t> ServiceRegistry::EncodeRetryHint() const {
  ByteWriter w;
  w.U32(overload_retry_hint_ms_);
  return w.Take();
}

void ServiceRegistry::RegisterRaw(std::uint8_t tag, RawHandler handler) {
  handlers_[tag] = std::move(handler);
}

void ServiceRegistry::RegisterRawBatch(std::uint8_t tag,
                                       RawBatchHandler handler) {
  batch_handlers_[tag] = std::move(handler);
}

core::Status ServiceRegistry::DispatchItem(
    std::uint8_t tag, const std::vector<std::uint8_t>& payload,
    std::vector<std::uint8_t>* out) const {
  auto it = handlers_.find(tag);
  if (it == handlers_.end()) return core::Status::kUnknownTag;
  try {
    return it->second(payload, out);
  } catch (...) {
    // Nothing a handler throws may cross the wire boundary.
    out->clear();
    return core::Status::kInternalError;
  }
}

std::vector<std::uint8_t> ServiceRegistry::Dispatch(
    const std::vector<std::uint8_t>& wire) const {
  ResponseEnvelope out;
  RequestEnvelope req;
  try {
    req = RequestEnvelope::Decode(wire);
  } catch (const CodecError&) {
    out.status = core::Status::kBadRequest;
    return out.Encode();
  }
  out.tag = req.tag;
  out.correlation_id = req.correlation_id;
  if (req.version != kProtocolVersion) {
    out.status = core::Status::kVersionMismatch;
    return out.Encode();
  }

  if (req.tag == kBatchTag) {
    // Batch payload: u32 count | count * (u8 tag, blob payload).
    // Response:      u32 count | count * (u8 status, blob payload).
    std::vector<std::pair<std::uint8_t, std::vector<std::uint8_t>>> items;
    try {
      ByteReader r(req.payload);
      std::uint32_t n = r.U32();
      if (n > kMaxBatchItems) throw CodecError("batch too large");
      items.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint8_t tag = r.U8();
        items.emplace_back(tag, r.Blob());
      }
      r.ExpectEnd();
    } catch (const CodecError&) {
      out.status = core::Status::kBadRequest;
      return out.Encode();
    }
    std::vector<core::Status> statuses(items.size(),
                                       core::Status::kInternalError);
    std::vector<std::vector<std::uint8_t>> bodies(items.size());
    // Group the items whose tag has a batch handler so the whole group is
    // handed over in one call (the server-side amortization fast path);
    // everything else dispatches item-at-a-time as before.
    std::map<std::uint8_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < items.size(); ++i) {
      std::uint8_t tag = items[i].first;
      if (tag == kBatchTag) {
        // No batch-in-batch: a nested batch item is malformed by definition.
        statuses[i] = core::Status::kBadRequest;
      } else if (batch_handlers_.count(tag) != 0) {
        groups[tag].push_back(i);
      } else {
        statuses[i] = DispatchItem(tag, items[i].second, &bodies[i]);
      }
    }
    for (const auto& [tag, indices] : groups) {
      std::vector<std::vector<std::uint8_t>> payloads;
      payloads.reserve(indices.size());
      for (std::size_t i : indices) payloads.push_back(items[i].second);
      std::vector<core::Status> st;
      std::vector<std::vector<std::uint8_t>> group_bodies;
      try {
        batch_handlers_.at(tag)(payloads, &st, &group_bodies);
      } catch (...) {
        st.clear();  // handler threw: the whole group failed internally
      }
      bool aligned =
          st.size() == indices.size() && group_bodies.size() == indices.size();
      for (std::size_t j = 0; j < indices.size(); ++j) {
        statuses[indices[j]] =
            aligned ? st[j] : core::Status::kInternalError;
        if (aligned && (st[j] == core::Status::kOk ||
                        st[j] == core::Status::kWrongReplica)) {
          bodies[indices[j]] = std::move(group_bodies[j]);
        }
      }
    }
    ByteWriter w;
    w.U32(static_cast<std::uint32_t>(items.size()));
    // Item payloads: response body on kOk (and the per-item redirect hint
    // on kWrongReplica), the typed retry hint on kOverloaded, empty
    // otherwise. The retry hint is identical for every shed item, so it
    // is encoded once for the whole batch.
    const std::vector<std::uint8_t> retry_hint = EncodeRetryHint();
    for (std::size_t i = 0; i < items.size(); ++i) {
      w.U8(static_cast<std::uint8_t>(statuses[i]));
      if (statuses[i] == core::Status::kOk ||
          statuses[i] == core::Status::kWrongReplica) {
        w.Blob(bodies[i]);
      } else if (statuses[i] == core::Status::kOverloaded) {
        w.Blob(retry_hint);
      } else {
        w.Blob({});
      }
    }
    out.status = core::Status::kOk;
    out.payload = w.Take();
    return out.Encode();
  }

  out.status = DispatchItem(req.tag, req.payload, &out.payload);
  // The payload section survives on kOk (the response body) and
  // kWrongReplica (the handler's redirect hint); kOverloaded carries the
  // registry's retry hint; every other status rides back empty.
  if (out.status != core::Status::kOk &&
      out.status != core::Status::kWrongReplica) {
    out.payload.clear();
  }
  if (out.status == core::Status::kOverloaded) out.payload = EncodeRetryHint();
  return out.Encode();
}

void ServiceRegistry::BindTo(Transport* transport,
                             const std::string& endpoint) {
  transport->RegisterEndpoint(
      endpoint, [this](const std::vector<std::uint8_t>& request) {
        return Dispatch(request);
      });
}

// -- client side -------------------------------------------------------------

std::uint32_t Rpc::DecodeRetryHint(const std::vector<std::uint8_t>& payload) {
  try {
    ByteReader r(payload);
    // Deliberately no ExpectEnd: later protocol revisions may append
    // fields to the hint without breaking older clients.
    return r.U32();
  } catch (const CodecError&) {
    return 0;  // absent or malformed hint: advice only, never an error
  }
}

Rpc::RawResult Rpc::RawCall(const std::string& from,
                            const std::string& endpoint, std::uint8_t tag,
                            std::vector<std::uint8_t> payload) {
  RequestEnvelope env;
  env.tag = tag;
  env.correlation_id = ++next_correlation_;
  env.payload = std::move(payload);

  RawResult out;
  std::vector<std::uint8_t> wire;
  if (!transport_->TryCall(from, endpoint, env.Encode(), &wire)) {
    out.status = core::Status::kUnavailable;
    return out;
  }
  ResponseEnvelope resp;
  try {
    resp = ResponseEnvelope::Decode(wire);
  } catch (const CodecError&) {
    out.status = core::Status::kBadResponse;
    return out;
  }
  // kVersionMismatch is reserved for the SERVER rejecting a request
  // before dispatch (callers treat it as provably-not-executed). A bad
  // version on the response side is post-execution decode trouble, so it
  // maps to kBadResponse like any other unusable reply.
  if (resp.version != kProtocolVersion ||
      resp.correlation_id != env.correlation_id) {
    out.status = core::Status::kBadResponse;
    return out;
  }
  out.status = resp.status;
  out.payload = std::move(resp.payload);
  return out;
}

std::vector<Rpc::RawResult> Rpc::RawBatch(
    const std::string& from, const std::string& endpoint,
    const std::vector<TaggedPayload>& items) {
  std::vector<RawResult> out(items.size());
  if (items.empty()) return out;  // nothing to send, spend no round trip
  auto fail_all = [&](core::Status s) {
    for (RawResult& r : out) r.status = s;
    return out;
  };
  if (items.size() > kMaxBatchItems) {
    return fail_all(core::Status::kBadRequest);
  }

  ByteWriter w;
  w.U32(static_cast<std::uint32_t>(items.size()));
  for (const TaggedPayload& item : items) {
    w.U8(item.tag);
    w.Blob(item.payload);
  }
  RawResult batch = RawCall(from, endpoint, kBatchTag, w.Take());
  if (batch.status != core::Status::kOk) return fail_all(batch.status);

  try {
    ByteReader r(batch.payload);
    std::uint32_t n = r.U32();
    if (n != items.size()) throw CodecError("batch count mismatch");
    for (std::uint32_t i = 0; i < n; ++i) {
      out[i].status = static_cast<core::Status>(r.U8());
      out[i].payload = r.Blob();
    }
    r.ExpectEnd();
  } catch (const CodecError&) {
    return fail_all(core::Status::kBadResponse);
  }
  return out;
}

}  // namespace net
}  // namespace p2drm
