#ifndef P2DRM_OBS_REGISTRY_H_
#define P2DRM_OBS_REGISTRY_H_

/// \file registry.h
/// \brief Unified metrics registry: counters, gauges, and fixed-bucket
/// log2 latency histograms, sharded per thread in the lock-free style of
/// core::OpCountersShard.
///
/// Each registered metric gets a stable Id; every thread that touches a
/// metric gets its own shard of relaxed atomics (created on first use,
/// retained after the thread exits so its counts keep aggregating), and
/// `Aggregate()` sums all shards under the registration mutex. Increment
/// paths take no locks: the hot path is one relaxed enabled-check, one
/// thread-local shard lookup, and one relaxed fetch_add.
///
/// Determinism contract: counter and gauge aggregates are exact once the
/// incrementing threads have quiesced (joined or drained), which is what
/// lets `bench_scenarios` put registry aggregates into its byte-compared
/// report. During concurrent increments each slot is a valid
/// point-in-time lower bound (relaxed ordering; no cross-slot snapshot
/// is implied) — same contract as core::AggregateOps().
///
/// Toggles: `set_enabled(false)` turns every record path into the relaxed
/// load + branch; compiling with -DP2DRM_OBS_DISABLED makes them empty
/// inline functions so the instrumentation costs nothing at all.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace p2drm {
namespace obs {

/// Sharded lock-free metrics registry. Registration (Counter/Gauge/
/// Histogram) takes a mutex and may be called from any thread; it is
/// idempotent by (name, kind), so wiring the same provider twice reuses
/// the existing Id. Record calls (Add/GaugeAdd/Observe) are lock-free
/// and safe from any thread, concurrently with Aggregate().
class Registry {
 public:
  using Id = std::uint32_t;

  /// log2 histogram buckets: bucket 0 holds value 0, bucket b >= 1 holds
  /// values with bit-width b (i.e. [2^(b-1), 2^b - 1]); the last bucket
  /// absorbs everything wider. 40 buckets cover a year in microseconds.
  static constexpr std::size_t kHistogramBuckets = 40;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register (or look up) a metric. Export order is first-registration
  /// order, which makes the exported block stable across identical runs.
  Id Counter(const std::string& name);
  Id Gauge(const std::string& name);
  Id Histogram(const std::string& name);

  /// Runtime on/off switch for every record path (registration and
  /// aggregation are unaffected). Relaxed; flips are advisory.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Counter increment.
  void Add(Id id, std::uint64_t delta = 1) {
#if !defined(P2DRM_OBS_DISABLED)
    if (enabled()) Record(id, delta);
#else
    (void)id;
    (void)delta;
#endif
  }

  /// Gauge delta (may be negative: queue depth goes up on submit, down on
  /// completion, possibly on different threads — the aggregate sums the
  /// signed deltas).
  void GaugeAdd(Id id, std::int64_t delta) {
#if !defined(P2DRM_OBS_DISABLED)
    if (enabled()) Record(id, static_cast<std::uint64_t>(delta));
#else
    (void)id;
    (void)delta;
#endif
  }

  /// Histogram sample (conventionally microseconds).
  void Observe(Id id, std::uint64_t value) {
#if !defined(P2DRM_OBS_DISABLED)
    if (enabled()) RecordObserve(id, value);
#else
    (void)id;
    (void)value;
#endif
  }

  /// log2 bucket index for \p value (exposed for tests).
  static std::size_t BucketOf(std::uint64_t value) {
    std::size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
  }

  /// Inclusive upper bound of bucket \p b (2^b - 1; bucket 0 = 0).
  static std::uint64_t BucketUpperBound(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t buckets[kHistogramBuckets] = {};

    /// Upper bound of the bucket holding the p-quantile sample
    /// (0 <= p <= 1); 0 when empty. A bucketed approximation: exact to
    /// within the 2x bucket width.
    std::uint64_t Quantile(double p) const;
    std::uint64_t Max() const;  ///< upper bound of the highest hit bucket
  };

  /// One metric's aggregated value.
  struct MetricValue {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;  ///< kCounter
    std::int64_t gauge = 0;     ///< kGauge
    HistogramSnapshot hist;     ///< kHistogram
  };

  /// Sums every thread's shard (shards of exited threads included), in
  /// registration order. Safe concurrently with record calls.
  std::vector<MetricValue> Aggregate() const;

 private:
  // Slot layout: each metric owns a contiguous slot range in every
  // shard. Counter/gauge = 1 slot; histogram = [count, sum, buckets...].
  struct Meta {
    std::string name;
    Kind kind;
    std::uint32_t base_slot;
  };

  // Shards grow in fixed blocks so record paths never relocate storage
  // the aggregator might be reading. Blocks are installed by the owner
  // thread with a release store; the aggregator acquire-loads them.
  static constexpr std::size_t kBlockSlots = 256;
  static constexpr std::size_t kMaxBlocks = 64;

  struct Block {
    std::atomic<std::uint64_t> slots[kBlockSlots] = {};
  };

  struct Shard {
    std::atomic<Block*> blocks[kMaxBlocks] = {};

    ~Shard() {
      for (auto& b : blocks) delete b.load(std::memory_order_relaxed);
    }
  };

  /// Hard cap on registered metrics; registrations past it return the
  /// last Id and record into it (never UB, visibly wrong instead).
  static constexpr std::size_t kMaxMetrics = 1024;

  void Record(Id id, std::uint64_t delta);
  void RecordObserve(Id id, std::uint64_t value);
  Id Register(const std::string& name, Kind kind, std::uint32_t slots);
  Shard* ThisThreadShard();
  std::atomic<std::uint64_t>* SlotForWrite(Shard* shard, std::uint32_t slot);

  std::atomic<bool> enabled_{true};
  const std::uint64_t serial_;  ///< process-unique, keys the TLS cache

  // Record paths read (base_slot, kind) without the mutex: the entry is
  // written under m_ BEFORE metric_count_ publishes it (release), and
  // readers acquire-load the count first. Fixed array: never relocates.
  struct SlotInfo {
    std::uint32_t base_slot = 0;
    Kind kind = Kind::kCounter;
  };
  SlotInfo slot_info_[kMaxMetrics];
  std::atomic<std::uint32_t> metric_count_{0};

  mutable std::mutex m_;
  std::vector<Meta> metrics_;    // guarded by m_
  std::uint32_t next_slot_ = 0;  // guarded by m_
  std::deque<Shard> shards_;     // guarded by m_ (deque: never relocates)
};

}  // namespace obs
}  // namespace p2drm

#endif  // P2DRM_OBS_REGISTRY_H_
