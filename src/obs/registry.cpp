#include "obs/registry.h"

namespace p2drm {
namespace obs {

namespace {

std::uint64_t NextRegistrySerial() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Registry::Registry() : serial_(NextRegistrySerial()) {}

Registry::~Registry() = default;

Registry::Id Registry::Register(const std::string& name, Kind kind,
                                std::uint32_t slots) {
  std::lock_guard<std::mutex> lock(m_);
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name && metrics_[i].kind == kind) {
      return static_cast<Id>(i);
    }
  }
  if (metrics_.size() >= kMaxMetrics ||
      next_slot_ + slots > kMaxBlocks * kBlockSlots) {
    return metrics_.empty() ? 0 : static_cast<Id>(metrics_.size() - 1);
  }
  metrics_.push_back(Meta{name, kind, next_slot_});
  std::uint32_t index = static_cast<std::uint32_t>(metrics_.size() - 1);
  slot_info_[index].base_slot = next_slot_;
  slot_info_[index].kind = kind;
  next_slot_ += slots;
  // Publish: record paths may now see this Id's slot info.
  metric_count_.store(index + 1, std::memory_order_release);
  return index;
}

Registry::Id Registry::Counter(const std::string& name) {
  return Register(name, Kind::kCounter, 1);
}

Registry::Id Registry::Gauge(const std::string& name) {
  return Register(name, Kind::kGauge, 1);
}

Registry::Id Registry::Histogram(const std::string& name) {
  return Register(name, Kind::kHistogram,
                  2 + static_cast<std::uint32_t>(kHistogramBuckets));
}

Registry::Shard* Registry::ThisThreadShard() {
  // Registries come and go (one per bench scenario), so the TLS cache is
  // keyed by a process-unique serial: an entry for a destroyed registry
  // can never match a live one.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& entry : cache) {
    if (entry.first == serial_) return entry.second;
  }
  Shard* shard;
  {
    std::lock_guard<std::mutex> lock(m_);
    shards_.emplace_back();
    shard = &shards_.back();
  }
  cache.emplace_back(serial_, shard);
  return shard;
}

std::atomic<std::uint64_t>* Registry::SlotForWrite(Shard* shard,
                                                   std::uint32_t slot) {
  std::size_t block_index = slot / kBlockSlots;
  if (block_index >= kMaxBlocks) return nullptr;  // metric overflow: drop
  Block* block = shard->blocks[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Block();
    // Release so the aggregator's acquire load sees zero-initialized
    // slots; only the owning thread installs blocks, so no CAS race.
    shard->blocks[block_index].store(block, std::memory_order_release);
  }
  return &block->slots[slot % kBlockSlots];
}

void Registry::Record(Id id, std::uint64_t delta) {
  if (id >= metric_count_.load(std::memory_order_acquire)) return;
  std::uint32_t base = slot_info_[id].base_slot;
  Shard* shard = ThisThreadShard();
  auto* slot = SlotForWrite(shard, base);
  if (slot != nullptr) slot->fetch_add(delta, std::memory_order_relaxed);
}

void Registry::RecordObserve(Id id, std::uint64_t value) {
  if (id >= metric_count_.load(std::memory_order_acquire)) return;
  if (slot_info_[id].kind != Kind::kHistogram) return;
  std::uint32_t base = slot_info_[id].base_slot;
  Shard* shard = ThisThreadShard();
  auto* count = SlotForWrite(shard, base);
  auto* sum = SlotForWrite(shard, base + 1);
  auto* bucket = SlotForWrite(
      shard, base + 2 + static_cast<std::uint32_t>(BucketOf(value)));
  if (count == nullptr || sum == nullptr || bucket == nullptr) return;
  count->fetch_add(1, std::memory_order_relaxed);
  sum->fetch_add(value, std::memory_order_relaxed);
  bucket->fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Registry::HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the p-quantile sample, 1-based, ceil(p * count) clamped to
  // [1, count]; integer math keeps this bit-stable across platforms.
  std::uint64_t rank = static_cast<std::uint64_t>(p * static_cast<double>(count));
  if (static_cast<double>(rank) < p * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kHistogramBuckets - 1);
}

std::uint64_t Registry::HistogramSnapshot::Max() const {
  for (std::size_t b = kHistogramBuckets; b > 0; --b) {
    if (buckets[b - 1] != 0) return BucketUpperBound(b - 1);
  }
  return 0;
}

std::vector<Registry::MetricValue> Registry::Aggregate() const {
  std::lock_guard<std::mutex> lock(m_);
  std::vector<MetricValue> out;
  out.reserve(metrics_.size());
  for (const Meta& meta : metrics_) {
    MetricValue v;
    v.name = meta.name;
    v.kind = meta.kind;
    std::size_t slot_count =
        meta.kind == Kind::kHistogram ? 2 + kHistogramBuckets : 1;
    std::uint64_t sums[2 + kHistogramBuckets] = {};
    for (const Shard& shard : shards_) {
      for (std::size_t s = 0; s < slot_count; ++s) {
        std::uint32_t slot = meta.base_slot + static_cast<std::uint32_t>(s);
        std::size_t block_index = slot / kBlockSlots;
        if (block_index >= kMaxBlocks) break;
        const Block* block =
            shard.blocks[block_index].load(std::memory_order_acquire);
        if (block == nullptr) continue;
        sums[s] +=
            block->slots[slot % kBlockSlots].load(std::memory_order_relaxed);
      }
    }
    switch (meta.kind) {
      case Kind::kCounter:
        v.counter = sums[0];
        break;
      case Kind::kGauge:
        v.gauge = static_cast<std::int64_t>(sums[0]);
        break;
      case Kind::kHistogram:
        v.hist.count = sums[0];
        v.hist.sum = sums[1];
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          v.hist.buckets[b] = sums[2 + b];
        }
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace obs
}  // namespace p2drm
