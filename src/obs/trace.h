#ifndef P2DRM_OBS_TRACE_H_
#define P2DRM_OBS_TRACE_H_

/// \file trace.h
/// \brief Span tracer: begin/end/instant events in bounded per-thread
/// ring buffers, exported as Chrome/Perfetto trace-event JSON.
///
/// Timestamps come from an injectable TimeSourceUs — the sim virtual
/// clock in scenario runs (making the trace deterministic: byte-identical
/// under a fixed seed, which CI enforces with cmp), steady_clock in real
/// runs. Event names and arg names are `const char*` and must point at
/// string literals (or storage outliving the tracer): the ring stores the
/// pointer, not a copy, so recording never allocates once a ring is at
/// capacity.
///
/// Threading contract: recording is safe from any thread (each thread
/// writes only its own ring). Export and set_time_source require the
/// recording threads to have quiesced (joined or drained) — the usual
/// state at the end of a bench pass.

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace p2drm {
namespace obs {

/// Injectable monotonic microsecond source (structurally identical to
/// server::TimeSourceUs; redeclared here so obs stays a base layer).
using TimeSourceUs = std::function<std::uint64_t()>;

class Tracer {
 public:
  /// \param ring_capacity max events retained per recording thread; the
  /// ring drops its oldest events past that (dropped_count() reports).
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install (or clear: nullptr = steady_clock) the timestamp source.
  /// Call only while no thread is recording — and clear it before the
  /// clock it captures dies (a scenario's virtual clock is stack-owned).
  void set_time_source(TimeSourceUs source);

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Names the calling thread's ring in the exported trace.
  void SetThreadName(const char* name);

  void Begin(const char* name) { Emit(Phase::kBegin, name, nullptr, 0); }
  void End(const char* name) { Emit(Phase::kEnd, name, nullptr, 0); }
  void Instant(const char* name) { Emit(Phase::kInstant, name, nullptr, 0); }
  void Instant(const char* name, const char* arg_name, std::uint64_t arg) {
    Emit(Phase::kInstant, name, arg_name, arg);
  }
  void BeginWithArg(const char* name, const char* arg_name,
                    std::uint64_t arg) {
    Emit(Phase::kBegin, name, arg_name, arg);
  }

  // -- export (recording threads quiesced) -------------------------------

  /// Appends this tracer's events to \p out as Chrome trace-event JSON
  /// objects (comma-separated, no surrounding brackets), preceded by a
  /// process_name metadata event. Events are merged across rings in
  /// (ts, tid, ring order) — deterministic when the timestamps are.
  /// \p first is the emitted-anything-yet flag shared across tracers so
  /// several scenarios can merge into one file.
  void AppendChromeTraceEvents(std::string* out, int pid,
                               const std::string& process_name,
                               bool* first) const;

  /// Writes `{"traceEvents":[<events>]}` to \p path. \p events is the
  /// payload accumulated via AppendChromeTraceEvents. Returns false on
  /// I/O failure.
  static bool WriteChromeTraceFile(const std::string& path,
                                   const std::string& events);

  /// Whether any recorded event has this name (bench self-checks).
  bool Contains(const char* name) const;

  std::size_t event_count() const;
  std::uint64_t dropped_count() const;

 private:
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };

  struct Event {
    std::uint64_t ts = 0;
    const char* name = nullptr;
    const char* arg_name = nullptr;  ///< null: no args object
    std::uint64_t arg = 0;
    Phase phase = Phase::kInstant;
  };

  struct Ring {
    std::vector<Event> events;  ///< grows to capacity, then circular
    std::size_t next = 0;       ///< overwrite cursor once at capacity
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
    const char* thread_name = nullptr;
  };

  void Emit(Phase phase, const char* name, const char* arg_name,
            std::uint64_t arg) {
#if !defined(P2DRM_OBS_DISABLED)
    if (enabled()) EmitSlow(phase, name, arg_name, arg);
#else
    (void)phase;
    (void)name;
    (void)arg_name;
    (void)arg;
#endif
  }
  void EmitSlow(Phase phase, const char* name, const char* arg_name,
                std::uint64_t arg);
  Ring* ThisThreadRing();
  /// Ring contents oldest-first (unwraps the circular cursor).
  static void InOrder(const Ring& ring, std::vector<Event>* out);

  std::atomic<bool> enabled_{true};
  const std::uint64_t serial_;
  const std::size_t ring_capacity_;
  TimeSourceUs time_source_;  ///< set while quiesced, read by recorders

  mutable std::mutex m_;
  std::deque<Ring> rings_;  // guarded by m_ (deque: never relocates)
};

/// RAII span: Begin on construction, End on destruction. Null or
/// disabled tracer: both ends are no-ops.
class Span {
 public:
  Span(Tracer* tracer, const char* name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name) {
    if (tracer_ != nullptr) tracer_->Begin(name_);
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->End(name_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
};

/// The two observability endpoints a component may be handed. Either (or
/// both) may be null: every instrumentation site treats null as off.
struct Sink {
  Tracer* tracer = nullptr;
  Registry* registry = nullptr;
};

}  // namespace obs
}  // namespace p2drm

#endif  // P2DRM_OBS_TRACE_H_
