#ifndef P2DRM_OBS_EXPORT_H_
#define P2DRM_OBS_EXPORT_H_

/// \file export.h
/// \brief Bridges from the metrics sources into sim::BenchReport's
/// `"metrics"` block, so every BENCH_*.json carries the aggregated
/// registry (and the RT-2 crypto-op table) alongside its `config` block.
///
/// Export order is the registry's registration order — stable across
/// identical runs, which keeps byte-compared scenario reports comparing.

#include <string>

#include "obs/registry.h"
#include "sim/bench_report.h"

namespace p2drm {
namespace obs {

/// Appends every metric in \p registry to \p report's metrics block,
/// each name prefixed with \p prefix. Counters and gauges become one
/// numeric entry; histograms expand to `.count`, `.sum`, `.p50`, `.p90`,
/// `.p99`, `.max` (quantiles are log2-bucket upper bounds) plus a
/// `.buckets` note listing the non-empty buckets as "b<i>:<count>".
void AppendRegistry(const Registry& registry, const std::string& prefix,
                    sim::BenchReport* report);

/// Appends core::AggregateOps() — the RT-2 crypto-op table — as
/// `ops.sign`, `ops.verify`, … so benches stop hand-rolling ToString().
/// Increment sites are untouched; this is purely the reporting side.
void AppendOpCounters(sim::BenchReport* report);

}  // namespace obs
}  // namespace p2drm

#endif  // P2DRM_OBS_EXPORT_H_
