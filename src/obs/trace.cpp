#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace p2drm {
namespace obs {

namespace {

std::uint64_t NextTracerSerial() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SteadyNowUs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : serial_(NextTracerSerial()),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

Tracer::~Tracer() = default;

void Tracer::set_time_source(TimeSourceUs source) {
  time_source_ = std::move(source);
}

Tracer::Ring* Tracer::ThisThreadRing() {
  thread_local std::vector<std::pair<std::uint64_t, Ring*>> cache;
  for (const auto& entry : cache) {
    if (entry.first == serial_) return entry.second;
  }
  Ring* ring;
  {
    std::lock_guard<std::mutex> lock(m_);
    rings_.emplace_back();
    ring = &rings_.back();
    ring->tid = static_cast<std::uint32_t>(rings_.size() - 1);
  }
  cache.emplace_back(serial_, ring);
  return ring;
}

void Tracer::SetThreadName(const char* name) {
  ThisThreadRing()->thread_name = name;
}

void Tracer::EmitSlow(Phase phase, const char* name, const char* arg_name,
                      std::uint64_t arg) {
  Event e;
  e.ts = time_source_ != nullptr ? time_source_() : SteadyNowUs();
  e.name = name;
  e.arg_name = arg_name;
  e.arg = arg;
  e.phase = phase;
  Ring* ring = ThisThreadRing();
  if (ring->events.size() < ring_capacity_) {
    ring->events.push_back(e);
    return;
  }
  // At capacity: overwrite the oldest event (bounded memory beats a
  // complete trace; dropped_count() makes the loss visible).
  ring->events[ring->next] = e;
  ring->next = (ring->next + 1) % ring_capacity_;
  ++ring->dropped;
}

void Tracer::InOrder(const Ring& ring, std::vector<Event>* out) {
  // Once the ring has wrapped, `next` points at the oldest event.
  for (std::size_t i = 0; i < ring.events.size(); ++i) {
    out->push_back(ring.events[(ring.next + i) % ring.events.size()]);
  }
}

void Tracer::AppendChromeTraceEvents(std::string* out, int pid,
                                     const std::string& process_name,
                                     bool* first) const {
  std::lock_guard<std::mutex> lock(m_);
  char buf[64];

  auto comma = [&] {
    if (!*first) out->append(",\n");
    *first = false;
  };

  comma();
  out->append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
  std::snprintf(buf, sizeof(buf), "%d", pid);
  out->append(buf);
  out->append(",\"tid\":0,\"args\":{\"name\":");
  AppendEscaped(out, process_name.c_str());
  out->append("}}");

  struct Keyed {
    Event e;
    std::uint32_t tid;
  };
  std::vector<Keyed> all;
  for (const Ring& ring : rings_) {
    if (ring.thread_name != nullptr) {
      comma();
      out->append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":");
      std::snprintf(buf, sizeof(buf), "%d", pid);
      out->append(buf);
      out->append(",\"tid\":");
      std::snprintf(buf, sizeof(buf), "%u", ring.tid);
      out->append(buf);
      out->append(",\"args\":{\"name\":");
      AppendEscaped(out, ring.thread_name);
      out->append("}}");
    }
    std::vector<Event> in_order;
    InOrder(ring, &in_order);
    for (const Event& e : in_order) all.push_back(Keyed{e, ring.tid});
  }

  // Stable on (ts, tid): per-ring recording order is chronological, so
  // ties keep their program order — B before its same-ts E.
  std::stable_sort(all.begin(), all.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.e.ts != b.e.ts) return a.e.ts < b.e.ts;
                     return a.tid < b.tid;
                   });

  for (const Keyed& k : all) {
    comma();
    out->append("{\"name\":");
    AppendEscaped(out, k.e.name);
    out->append(",\"ph\":\"");
    switch (k.e.phase) {
      case Phase::kBegin: out->push_back('B'); break;
      case Phase::kEnd: out->push_back('E'); break;
      case Phase::kInstant: out->push_back('i'); break;
    }
    out->append("\",\"ts\":");
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(k.e.ts));
    out->append(buf);
    out->append(",\"pid\":");
    std::snprintf(buf, sizeof(buf), "%d", pid);
    out->append(buf);
    out->append(",\"tid\":");
    std::snprintf(buf, sizeof(buf), "%u", k.tid);
    out->append(buf);
    if (k.e.phase == Phase::kInstant) out->append(",\"s\":\"t\"");
    if (k.e.arg_name != nullptr) {
      out->append(",\"args\":{");
      AppendEscaped(out, k.e.arg_name);
      out->push_back(':');
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(k.e.arg));
      out->append(buf);
      out->push_back('}');
    }
    out->push_back('}');
  }
}

bool Tracer::WriteChromeTraceFile(const std::string& path,
                                  const std::string& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "Tracer: cannot open %s\n", path.c_str());
    return false;
  }
  const char* head = "{\"traceEvents\":[\n";
  const char* tail = "\n]}\n";
  std::fwrite(head, 1, std::strlen(head), f);
  std::fwrite(events.data(), 1, events.size(), f);
  std::fwrite(tail, 1, std::strlen(tail), f);
  std::fclose(f);
  return true;
}

bool Tracer::Contains(const char* name) const {
  std::lock_guard<std::mutex> lock(m_);
  for (const Ring& ring : rings_) {
    for (const Event& e : ring.events) {
      if (std::strcmp(e.name, name) == 0) return true;
    }
  }
  return false;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(m_);
  std::size_t n = 0;
  for (const Ring& ring : rings_) n += ring.events.size();
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(m_);
  std::uint64_t n = 0;
  for (const Ring& ring : rings_) n += ring.dropped;
  return n;
}

}  // namespace obs
}  // namespace p2drm
