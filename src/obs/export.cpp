#include "obs/export.h"

#include "core/metrics.h"

namespace p2drm {
namespace obs {

void AppendRegistry(const Registry& registry, const std::string& prefix,
                    sim::BenchReport* report) {
  for (const Registry::MetricValue& v : registry.Aggregate()) {
    const std::string name = prefix + v.name;
    switch (v.kind) {
      case Registry::Kind::kCounter:
        report->MetricsMetric(name, static_cast<double>(v.counter));
        break;
      case Registry::Kind::kGauge:
        report->MetricsMetric(name, static_cast<double>(v.gauge));
        break;
      case Registry::Kind::kHistogram: {
        const Registry::HistogramSnapshot& h = v.hist;
        report->MetricsMetric(name + ".count", static_cast<double>(h.count));
        report->MetricsMetric(name + ".sum", static_cast<double>(h.sum));
        report->MetricsMetric(name + ".p50",
                              static_cast<double>(h.Quantile(0.50)));
        report->MetricsMetric(name + ".p90",
                              static_cast<double>(h.Quantile(0.90)));
        report->MetricsMetric(name + ".p99",
                              static_cast<double>(h.Quantile(0.99)));
        report->MetricsMetric(name + ".max", static_cast<double>(h.Max()));
        std::string buckets;
        for (std::size_t b = 0; b < Registry::kHistogramBuckets; ++b) {
          if (h.buckets[b] == 0) continue;
          if (!buckets.empty()) buckets.push_back(' ');
          buckets += "b" + std::to_string(b) + ":" +
                     std::to_string(h.buckets[b]);
        }
        report->MetricsNote(name + ".buckets", buckets);
        break;
      }
    }
  }
}

void AppendOpCounters(sim::BenchReport* report) {
  core::OpCounters ops = core::AggregateOps();
  report->MetricsMetric("ops.sign", static_cast<double>(ops.sign));
  report->MetricsMetric("ops.verify", static_cast<double>(ops.verify));
  report->MetricsMetric("ops.blind_sign", static_cast<double>(ops.blind_sign));
  report->MetricsMetric("ops.blind_prep", static_cast<double>(ops.blind_prep));
  report->MetricsMetric("ops.hybrid_enc", static_cast<double>(ops.hybrid_enc));
  report->MetricsMetric("ops.hybrid_dec", static_cast<double>(ops.hybrid_dec));
  report->MetricsMetric("ops.keygen", static_cast<double>(ops.keygen));
  report->MetricsMetric("ops.total", static_cast<double>(ops.Total()));
}

}  // namespace obs
}  // namespace p2drm
