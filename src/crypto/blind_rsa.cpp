#include "crypto/blind_rsa.h"

namespace p2drm {
namespace crypto {

using bignum::BigInt;

BlindingContext BlindMessage(const RsaPublicKey& pub,
                             const std::vector<std::uint8_t>& msg,
                             bignum::RandomSource* rng) {
  BigInt m = FdhHash(msg, pub);
  BlindingContext ctx;
  while (true) {
    ctx.r = rng->Below(pub.n);
    if (ctx.r.IsZero()) continue;
    if (BigInt::Gcd(ctx.r, pub.n) == BigInt(1)) break;
  }
  ctx.r_inv = ctx.r.InvMod(pub.n);
  BigInt re = ctx.r.PowMod(pub.e, pub.n);
  ctx.blinded = m.MulMod(re, pub.n);
  return ctx;
}

BigInt SignBlinded(const RsaPrivateKey& priv, const BigInt& blinded) {
  return RsaPrivateOp(priv, blinded);
}

std::vector<std::uint8_t> Unblind(const RsaPublicKey& pub,
                                  const BlindingContext& ctx,
                                  const BigInt& blind_sig) {
  BigInt s = blind_sig.MulMod(ctx.r_inv, pub.n);
  return s.ToBytesPadded(pub.ModulusBytes());
}

}  // namespace crypto
}  // namespace p2drm
