#ifndef P2DRM_CRYPTO_DRBG_H_
#define P2DRM_CRYPTO_DRBG_H_

/// \file drbg.h
/// \brief Deterministic and system randomness sources.
///
/// HmacDrbg follows NIST SP 800-90A HMAC_DRBG (SHA-256, no reseed
/// counters enforced — this repo uses it for reproducible key generation
/// in tests and benchmarks). SystemRandom wraps std::random_device.

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "crypto/hmac.h"

namespace p2drm {
namespace crypto {

/// NIST SP 800-90A style HMAC-DRBG over SHA-256.
class HmacDrbg : public bignum::RandomSource {
 public:
  /// Instantiates from arbitrary seed material.
  explicit HmacDrbg(const std::vector<std::uint8_t>& seed);

  /// Convenience: seeds from a string label (tests/benches).
  explicit HmacDrbg(const std::string& seed_label);

  /// Mixes additional entropy into the state.
  void Reseed(const std::vector<std::uint8_t>& material);

  void Fill(std::uint8_t* out, std::size_t len) override;

 private:
  void UpdateState(const std::vector<std::uint8_t>& provided);

  std::vector<std::uint8_t> key_;  // K, 32 bytes
  std::vector<std::uint8_t> v_;    // V, 32 bytes
};

/// Randomness from std::random_device. Suitable for examples; tests and
/// benchmarks should prefer HmacDrbg for reproducibility.
class SystemRandom : public bignum::RandomSource {
 public:
  void Fill(std::uint8_t* out, std::size_t len) override;
};

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_DRBG_H_
