#ifndef P2DRM_CRYPTO_DRBG_H_
#define P2DRM_CRYPTO_DRBG_H_

/// \file drbg.h
/// \brief Deterministic and system randomness sources.
///
/// HmacDrbg follows NIST SP 800-90A HMAC_DRBG (SHA-256, no reseed
/// counters enforced — this repo uses it for reproducible key generation
/// in tests and benchmarks). SystemRandom wraps std::random_device.

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "crypto/hmac.h"

namespace p2drm {
namespace crypto {

/// NIST SP 800-90A style HMAC-DRBG over SHA-256.
class HmacDrbg : public bignum::RandomSource {
 public:
  /// Instantiates from arbitrary seed material.
  explicit HmacDrbg(const std::vector<std::uint8_t>& seed);

  /// Convenience: seeds from a string label (tests/benches).
  explicit HmacDrbg(const std::string& seed_label);

  /// Mixes additional entropy into the state.
  void Reseed(const std::vector<std::uint8_t>& material);

  /// Derives an independent child stream bound to \p domain_tag. The
  /// parent advances by exactly one 32-byte generate, so forking is as
  /// deterministic as any other draw: the same seed and the same fork
  /// sequence reproduce the same children, and distinct domain tags (or
  /// distinct parent states) yield unrelated streams. The child shares
  /// no state with the parent afterwards, which is what lets a fork be
  /// handed to another thread while the parent keeps serving its own.
  HmacDrbg Fork(const std::vector<std::uint8_t>& domain_tag);
  HmacDrbg Fork(const std::string& domain_tag);

  void Fill(std::uint8_t* out, std::size_t len) override;

 private:
  void UpdateState(const std::vector<std::uint8_t>& provided);

  std::vector<std::uint8_t> key_;  // K, 32 bytes
  std::vector<std::uint8_t> v_;    // V, 32 bytes
};

/// Forks any RandomSource: draws 32 bytes from \p parent and binds them
/// to \p domain_tag as the seed of a fresh HmacDrbg. For an HmacDrbg
/// parent this is exactly HmacDrbg::Fork; for SystemRandom it yields a
/// fast deterministic child keyed by real entropy. The parent is
/// advanced by one 32-byte read and must not be touched concurrently;
/// the returned child is independent and safe to move to another thread.
HmacDrbg ForkRandom(bignum::RandomSource* parent,
                    const std::vector<std::uint8_t>& domain_tag);

/// Randomness from std::random_device. Suitable for examples; tests and
/// benchmarks should prefer HmacDrbg for reproducibility.
class SystemRandom : public bignum::RandomSource {
 public:
  void Fill(std::uint8_t* out, std::size_t len) override;
};

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_DRBG_H_
