#ifndef P2DRM_CRYPTO_BLIND_RSA_H_
#define P2DRM_CRYPTO_BLIND_RSA_H_

/// \file blind_rsa.h
/// \brief Chaum blind RSA-FDH signatures.
///
/// This is the unlinkability engine of the P2DRM scheme: the Certification
/// Authority signs pseudonym certificates and the payment provider signs
/// e-cash tokens *blindly*, so the issued artifact cannot be linked back to
/// the issuance session.
///
/// Protocol (requester R, signer S with key (n, e, d)):
///   1. R computes m = FDH(msg), picks random r with gcd(r, n) = 1,
///      sends b = m * r^e mod n.
///   2. S returns s' = b^d mod n (it learns nothing about m).
///   3. R unblinds s = s' * r^-1 mod n; (msg, s) verifies as a plain
///      RSA-FDH signature under S's public key.

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/random_source.h"
#include "crypto/rsa.h"

namespace p2drm {
namespace crypto {

/// Client-side state for one blind-signature session.
struct BlindingContext {
  bignum::BigInt blinded;   ///< value to send to the signer
  bignum::BigInt r;         ///< blinding factor (keep secret)
  bignum::BigInt r_inv;     ///< r^-1 mod n, cached for unblinding
};

/// Step 1: blinds the FDH representative of \p msg under \p pub.
BlindingContext BlindMessage(const RsaPublicKey& pub,
                             const std::vector<std::uint8_t>& msg,
                             bignum::RandomSource* rng);

/// Step 2 (signer side): raw signature on the blinded value.
/// The signer cannot tell this apart from any other private-key operation.
bignum::BigInt SignBlinded(const RsaPrivateKey& priv,
                           const bignum::BigInt& blinded);

/// Step 3: removes the blinding factor, producing a standard RSA-FDH
/// signature (modulus-width bytes) verifiable with RsaVerifyFdh.
std::vector<std::uint8_t> Unblind(const RsaPublicKey& pub,
                                  const BlindingContext& ctx,
                                  const bignum::BigInt& blind_sig);

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_BLIND_RSA_H_
