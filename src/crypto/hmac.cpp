#include "crypto/hmac.h"

#include <stdexcept>

namespace p2drm {
namespace crypto {

Digest256 HmacSha256(const std::vector<std::uint8_t>& key,
                     const std::uint8_t* msg, std::size_t len) {
  constexpr std::size_t kBlock = 64;
  std::vector<std::uint8_t> k = key;
  if (k.size() > kBlock) {
    Digest256 d = Sha256::Hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0);

  std::vector<std::uint8_t> ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(msg, len);
  Digest256 inner_digest = inner.Final();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Final();
}

Digest256 HmacSha256(const std::vector<std::uint8_t>& key,
                     const std::vector<std::uint8_t>& msg) {
  return HmacSha256(key, msg.data(), msg.size());
}

Digest256 HkdfExtract(const std::vector<std::uint8_t>& salt,
                      const std::vector<std::uint8_t>& ikm) {
  std::vector<std::uint8_t> s = salt;
  if (s.empty()) s.assign(32, 0);
  return HmacSha256(s, ikm);
}

std::vector<std::uint8_t> HkdfExpand(const Digest256& prk,
                                     const std::vector<std::uint8_t>& info,
                                     std::size_t out_len) {
  if (out_len > 255 * 32) {
    throw std::length_error("HkdfExpand: output too long");
  }
  std::vector<std::uint8_t> prk_key(prk.begin(), prk.end());
  std::vector<std::uint8_t> out;
  out.reserve(out_len);
  std::vector<std::uint8_t> t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    std::vector<std::uint8_t> input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter);
    Digest256 d = HmacSha256(prk_key, input);
    t.assign(d.begin(), d.end());
    std::size_t take = std::min<std::size_t>(32, out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return out;
}

bool ConstantTimeEquals(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t len) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < len; ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace crypto
}  // namespace p2drm
