#include "crypto/drbg.h"

#include <random>

namespace p2drm {
namespace crypto {

HmacDrbg::HmacDrbg(const std::vector<std::uint8_t>& seed)
    : key_(32, 0x00), v_(32, 0x01) {
  UpdateState(seed);
}

HmacDrbg::HmacDrbg(const std::string& seed_label)
    : HmacDrbg(std::vector<std::uint8_t>(seed_label.begin(),
                                         seed_label.end())) {}

void HmacDrbg::UpdateState(const std::vector<std::uint8_t>& provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  std::vector<std::uint8_t> input = v_;
  input.push_back(0x00);
  input.insert(input.end(), provided.begin(), provided.end());
  Digest256 k1 = HmacSha256(key_, input);
  key_.assign(k1.begin(), k1.end());
  Digest256 v1 = HmacSha256(key_, v_);
  v_.assign(v1.begin(), v1.end());

  if (provided.empty()) return;
  // K = HMAC(K, V || 0x01 || provided); V = HMAC(K, V)
  input = v_;
  input.push_back(0x01);
  input.insert(input.end(), provided.begin(), provided.end());
  Digest256 k2 = HmacSha256(key_, input);
  key_.assign(k2.begin(), k2.end());
  Digest256 v2 = HmacSha256(key_, v_);
  v_.assign(v2.begin(), v2.end());
}

void HmacDrbg::Reseed(const std::vector<std::uint8_t>& material) {
  UpdateState(material);
}

HmacDrbg HmacDrbg::Fork(const std::vector<std::uint8_t>& domain_tag) {
  return ForkRandom(this, domain_tag);
}

HmacDrbg HmacDrbg::Fork(const std::string& domain_tag) {
  return ForkRandom(this,
                    std::vector<std::uint8_t>(domain_tag.begin(),
                                              domain_tag.end()));
}

HmacDrbg ForkRandom(bignum::RandomSource* parent,
                    const std::vector<std::uint8_t>& domain_tag) {
  // Child seed = 32 parent bytes ‖ domain tag. The fixed-width entropy
  // prefix keeps (entropy, tag) pairs unambiguous, and HMAC-DRBG
  // instantiation mixes both through HMAC, so children with distinct
  // tags are computationally independent even under one parent state.
  std::vector<std::uint8_t> seed(32);
  parent->Fill(seed.data(), seed.size());
  seed.insert(seed.end(), domain_tag.begin(), domain_tag.end());
  return HmacDrbg(seed);
}

void HmacDrbg::Fill(std::uint8_t* out, std::size_t len) {
  std::size_t produced = 0;
  while (produced < len) {
    Digest256 v = HmacSha256(key_, v_);
    v_.assign(v.begin(), v.end());
    std::size_t take = std::min<std::size_t>(32, len - produced);
    std::copy(v_.begin(), v_.begin() + take, out + produced);
    produced += take;
  }
  UpdateState({});
}

void SystemRandom::Fill(std::uint8_t* out, std::size_t len) {
  static thread_local std::random_device rd;
  std::size_t i = 0;
  while (i < len) {
    unsigned int v = rd();
    for (std::size_t b = 0; b < sizeof(v) && i < len; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace crypto
}  // namespace p2drm
