#ifndef P2DRM_CRYPTO_HMAC_H_
#define P2DRM_CRYPTO_HMAC_H_

/// \file hmac.h
/// \brief HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"

namespace p2drm {
namespace crypto {

/// Computes HMAC-SHA256(key, message).
Digest256 HmacSha256(const std::vector<std::uint8_t>& key,
                     const std::uint8_t* msg, std::size_t len);

Digest256 HmacSha256(const std::vector<std::uint8_t>& key,
                     const std::vector<std::uint8_t>& msg);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Digest256 HkdfExtract(const std::vector<std::uint8_t>& salt,
                      const std::vector<std::uint8_t>& ikm);

/// HKDF-Expand: derives \p out_len bytes (<= 255*32) from a PRK and info.
std::vector<std::uint8_t> HkdfExpand(const Digest256& prk,
                                     const std::vector<std::uint8_t>& info,
                                     std::size_t out_len);

/// Constant-time comparison of equal-length byte strings.
bool ConstantTimeEquals(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t len);

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_HMAC_H_
