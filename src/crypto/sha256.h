#ifndef P2DRM_CRYPTO_SHA256_H_
#define P2DRM_CRYPTO_SHA256_H_

/// \file sha256.h
/// \brief FIPS 180-4 SHA-256, incremental and one-shot.

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace p2drm {
namespace crypto {

/// 32-byte digest type.
using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// Resets to the initial state.
  void Reset();

  /// Absorbs \p len bytes.
  void Update(const std::uint8_t* data, std::size_t len);
  void Update(const std::vector<std::uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& data) {
    Update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
  }

  /// Finalizes and returns the digest. The hasher must be Reset() before
  /// reuse.
  Digest256 Final();

  /// One-shot convenience.
  static Digest256 Hash(const std::uint8_t* data, std::size_t len);
  static Digest256 Hash(const std::vector<std::uint8_t>& data) {
    return Hash(data.data(), data.size());
  }
  static Digest256 Hash(const std::string& data) {
    return Hash(reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size());
  }

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Hex rendering of a digest (lower-case, 64 chars).
std::string DigestToHex(const Digest256& d);

/// Digest as a byte vector.
std::vector<std::uint8_t> DigestToBytes(const Digest256& d);

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_SHA256_H_
