#include "crypto/chacha20.h"

#include <cstring>

namespace p2drm {
namespace crypto {

namespace {

inline std::uint32_t Rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                         std::uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}

inline std::uint32_t Load32Le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(const std::array<std::uint8_t, 32>& key,
                   const std::array<std::uint8_t, 12>& nonce,
                   std::uint32_t counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = Load32Le(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = Load32Le(nonce.data() + 4 * i);
}

void ChaCha20::NextBlock() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + state_[i];
    block_[i * 4] = static_cast<std::uint8_t>(v);
    block_[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::Keystream(std::uint8_t* out, std::size_t len) {
  while (len > 0) {
    if (block_pos_ == 64) NextBlock();
    std::size_t take = std::min(len, static_cast<std::size_t>(64 - block_pos_));
    std::memcpy(out, block_.data() + block_pos_, take);
    block_pos_ += take;
    out += take;
    len -= take;
  }
}

void ChaCha20::Crypt(std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    if (block_pos_ == 64) NextBlock();
    std::size_t take = std::min(len, static_cast<std::size_t>(64 - block_pos_));
    for (std::size_t i = 0; i < take; ++i) data[i] ^= block_[block_pos_ + i];
    block_pos_ += take;
    data += take;
    len -= take;
  }
}

std::vector<std::uint8_t> ChaCha20::Crypt(
    const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> out = data;
  Crypt(out.data(), out.size());
  return out;
}

}  // namespace crypto
}  // namespace p2drm
