#include "crypto/rsa.h"

#include <stdexcept>

#include "bignum/prime.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"

namespace p2drm {
namespace crypto {

using bignum::BigInt;

namespace {

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v >> 24));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t GetU32(const std::vector<std::uint8_t>& in, std::size_t* pos) {
  if (*pos + 4 > in.size()) throw std::out_of_range("RSA deserialize: truncated");
  std::uint32_t v = (static_cast<std::uint32_t>(in[*pos]) << 24) |
                    (static_cast<std::uint32_t>(in[*pos + 1]) << 16) |
                    (static_cast<std::uint32_t>(in[*pos + 2]) << 8) |
                    static_cast<std::uint32_t>(in[*pos + 3]);
  *pos += 4;
  return v;
}

std::vector<std::uint8_t> GetBlob(const std::vector<std::uint8_t>& in,
                                  std::size_t* pos) {
  std::uint32_t len = GetU32(in, pos);
  if (*pos + len > in.size()) throw std::out_of_range("RSA deserialize: truncated");
  std::vector<std::uint8_t> blob(in.begin() + *pos, in.begin() + *pos + len);
  *pos += len;
  return blob;
}

}  // namespace

std::vector<std::uint8_t> RsaPublicKey::Serialize() const {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> nb = n.ToBytes();
  std::vector<std::uint8_t> eb = e.ToBytes();
  PutU32(&out, static_cast<std::uint32_t>(nb.size()));
  out.insert(out.end(), nb.begin(), nb.end());
  PutU32(&out, static_cast<std::uint32_t>(eb.size()));
  out.insert(out.end(), eb.begin(), eb.end());
  return out;
}

RsaPublicKey RsaPublicKey::Deserialize(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  std::vector<std::uint8_t> nb = GetBlob(bytes, &pos);
  std::vector<std::uint8_t> eb = GetBlob(bytes, &pos);
  return RsaPublicKey{BigInt::FromBytes(nb), BigInt::FromBytes(eb)};
}

Digest256 RsaPublicKey::Fingerprint() const {
  return Sha256::Hash(Serialize());
}

RsaPrivateKey GenerateRsaKey(std::size_t modulus_bits,
                             bignum::RandomSource* rng) {
  if (modulus_bits < 128 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("GenerateRsaKey: modulus_bits must be even, >= 128");
  }
  const BigInt e(65537);
  const int kMrRounds = 24;
  std::size_t half = modulus_bits / 2;
  while (true) {
    BigInt p = bignum::GenerateRsaPrime(half, e, kMrRounds, rng);
    BigInt q = bignum::GenerateRsaPrime(half, e, kMrRounds, rng);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != modulus_bits) continue;  // rare; retry
    BigInt p1 = p - BigInt(1);
    BigInt q1 = q - BigInt(1);
    BigInt phi = p1 * q1;
    BigInt d = e.InvMod(phi);
    RsaPrivateKey key;
    key.n = n;
    key.e = e;
    key.d = d;
    key.p = p;
    key.q = q;
    key.dp = d % p1;
    key.dq = d % q1;
    key.qinv = q.InvMod(p);
    key.Precompute();
    return key;
  }
}

BigInt RsaPublicOp(const RsaPublicKey& pub, const BigInt& m) {
  if (m.IsNegative() || m.Compare(pub.n) >= 0) {
    throw std::domain_error("RsaPublicOp: message out of range");
  }
  return m.PowMod(pub.e, pub.n);
}

BigInt RsaPrivateOp(const RsaPrivateKey& priv, const BigInt& c) {
  if (c.IsNegative() || c.Compare(priv.n) >= 0) {
    throw std::domain_error("RsaPrivateOp: ciphertext out of range");
  }
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv*(m1-m2) mod p,
  // m = m2 + h*q. The Montgomery p/q contexts come from the key's cache
  // when present; without it BigInt::PowMod falls back to its thread-local
  // MRU context cache (Montgomery::CachedFor), which still avoids the
  // per-call R^2 mod N rebuild but pays a lookup per exponentiation.
  BigInt m1, m2;
  if (priv.crt != nullptr) {
    m1 = priv.crt->mont_p.PowMod(c.Mod(priv.p), priv.dp);
    m2 = priv.crt->mont_q.PowMod(c.Mod(priv.q), priv.dq);
  } else {
    m1 = c.Mod(priv.p).PowMod(priv.dp, priv.p);
    m2 = c.Mod(priv.q).PowMod(priv.dq, priv.q);
  }
  BigInt h = priv.qinv.MulMod(m1.SubMod(m2.Mod(priv.p), priv.p), priv.p);
  return m2 + h * priv.q;
}

std::vector<std::uint8_t> Mgf1Sha256(const std::vector<std::uint8_t>& seed,
                                     std::size_t out_len) {
  std::vector<std::uint8_t> out;
  out.reserve(out_len);
  std::uint32_t counter = 0;
  while (out.size() < out_len) {
    std::vector<std::uint8_t> input = seed;
    PutU32(&input, counter);
    Digest256 d = Sha256::Hash(input);
    std::size_t take = std::min<std::size_t>(32, out_len - out.size());
    out.insert(out.end(), d.begin(), d.begin() + take);
    ++counter;
  }
  return out;
}

BigInt FdhHash(const std::vector<std::uint8_t>& msg, const RsaPublicKey& pub) {
  std::size_t width = pub.ModulusBytes();
  Digest256 seed_digest = Sha256::Hash(msg);
  std::vector<std::uint8_t> seed(seed_digest.begin(), seed_digest.end());
  std::vector<std::uint8_t> expanded = Mgf1Sha256(seed, width);
  expanded[0] = 0;  // force representative < 2^(8(k-1)) <= n
  return BigInt::FromBytes(expanded);
}

std::vector<std::uint8_t> RsaSignFdh(const RsaPrivateKey& priv,
                                     const std::vector<std::uint8_t>& msg) {
  RsaPublicKey pub = priv.PublicKey();
  BigInt m = FdhHash(msg, pub);
  BigInt s = RsaPrivateOp(priv, m);
  return s.ToBytesPadded(pub.ModulusBytes());
}

bool RsaVerifyFdh(const RsaPublicKey& pub, const std::vector<std::uint8_t>& msg,
                  const std::vector<std::uint8_t>& sig) {
  if (sig.size() != pub.ModulusBytes()) return false;
  BigInt s = BigInt::FromBytes(sig);
  if (s.Compare(pub.n) >= 0) return false;
  BigInt recovered = RsaPublicOp(pub, s);
  return recovered == FdhHash(msg, pub);
}

std::vector<std::uint8_t> HybridCiphertext::Serialize() const {
  std::vector<std::uint8_t> out;
  PutU32(&out, static_cast<std::uint32_t>(encapsulated.size()));
  out.insert(out.end(), encapsulated.begin(), encapsulated.end());
  PutU32(&out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

HybridCiphertext HybridCiphertext::Deserialize(
    const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  HybridCiphertext ct;
  ct.encapsulated = GetBlob(bytes, &pos);
  ct.body = GetBlob(bytes, &pos);
  if (pos + 32 != bytes.size()) {
    throw std::out_of_range("HybridCiphertext: bad tag length");
  }
  std::copy(bytes.begin() + pos, bytes.end(), ct.tag.begin());
  return ct;
}

namespace {

struct DerivedKeys {
  std::array<std::uint8_t, 32> enc_key;
  std::vector<std::uint8_t> mac_key;
  std::array<std::uint8_t, 12> nonce;
};

DerivedKeys DeriveKeys(const BigInt& shared, std::size_t width) {
  std::vector<std::uint8_t> ikm = shared.ToBytesPadded(width);
  Digest256 prk = HkdfExtract({}, ikm);
  std::vector<std::uint8_t> info = {'p', '2', 'd', 'r', 'm', '-', 'k', 'e', 'm'};
  std::vector<std::uint8_t> okm = HkdfExpand(prk, info, 32 + 32 + 12);
  DerivedKeys keys;
  std::copy(okm.begin(), okm.begin() + 32, keys.enc_key.begin());
  keys.mac_key.assign(okm.begin() + 32, okm.begin() + 64);
  std::copy(okm.begin() + 64, okm.end(), keys.nonce.begin());
  return keys;
}

}  // namespace

HybridCiphertext RsaHybridEncrypt(const RsaPublicKey& pub,
                                  const std::vector<std::uint8_t>& plaintext,
                                  bignum::RandomSource* rng) {
  BigInt x = rng->Below(pub.n);
  BigInt c0 = RsaPublicOp(pub, x);
  DerivedKeys keys = DeriveKeys(x, pub.ModulusBytes());

  HybridCiphertext ct;
  ct.encapsulated = c0.ToBytesPadded(pub.ModulusBytes());
  ChaCha20 cipher(keys.enc_key, keys.nonce);
  ct.body = cipher.Crypt(plaintext);
  Digest256 mac = HmacSha256(keys.mac_key, ct.body);
  std::copy(mac.begin(), mac.end(), ct.tag.begin());
  return ct;
}

bool RsaHybridDecrypt(const RsaPrivateKey& priv, const HybridCiphertext& ct,
                      std::vector<std::uint8_t>* plaintext) {
  BigInt c0 = BigInt::FromBytes(ct.encapsulated);
  if (c0.Compare(priv.n) >= 0) return false;
  BigInt x = RsaPrivateOp(priv, c0);
  DerivedKeys keys = DeriveKeys(x, priv.PublicKey().ModulusBytes());

  Digest256 mac = HmacSha256(keys.mac_key, ct.body);
  if (!ConstantTimeEquals(mac.data(), ct.tag.data(), mac.size())) return false;

  ChaCha20 cipher(keys.enc_key, keys.nonce);
  *plaintext = cipher.Crypt(ct.body);
  return true;
}

}  // namespace crypto
}  // namespace p2drm
