#ifndef P2DRM_CRYPTO_RSA_H_
#define P2DRM_CRYPTO_RSA_H_

/// \file rsa.h
/// \brief RSA key generation, full-domain-hash signatures, and KEM-style
/// hybrid encryption — the public-key substrate of the P2DRM protocols.
///
/// Signatures are RSA-FDH: the message is expanded with MGF1-SHA256 to the
/// modulus width (top byte zeroed so the representative is < n) and signed
/// with the private exponent via CRT. This choice matters for the paper:
/// FDH composes directly with Chaum blinding (blind_rsa.h), which is what
/// makes pseudonym certificates and e-cash unlinkable.

#include <cstdint>
#include <memory>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "bignum/random_source.h"
#include "crypto/sha256.h"

namespace p2drm {
namespace crypto {

/// RSA public key (n, e).
struct RsaPublicKey {
  bignum::BigInt n;
  bignum::BigInt e;

  /// Width of the modulus in bytes (ceil(bits/8)).
  std::size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  /// Canonical serialization: len(n) ‖ n ‖ len(e) ‖ e (32-bit BE lengths).
  std::vector<std::uint8_t> Serialize() const;
  static RsaPublicKey Deserialize(const std::vector<std::uint8_t>& bytes);

  /// SHA-256 of the canonical serialization; used as key identifier.
  Digest256 Fingerprint() const;

  bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }
};

/// Precomputed Montgomery contexts for CRT signing. Immutable once
/// built, so any number of threads may sign with the same key
/// concurrently (bignum::Montgomery is stateless after construction).
struct RsaCrtContext {
  RsaCrtContext(const bignum::BigInt& p, const bignum::BigInt& q)
      : mont_p(p), mont_q(q) {}

  bignum::Montgomery mont_p;
  bignum::Montgomery mont_q;
};

/// RSA private key with CRT parameters.
struct RsaPrivateKey {
  bignum::BigInt n;
  bignum::BigInt e;
  bignum::BigInt d;
  bignum::BigInt p;
  bignum::BigInt q;
  bignum::BigInt dp;    // d mod (p-1)
  bignum::BigInt dq;    // d mod (q-1)
  bignum::BigInt qinv;  // q^-1 mod p
  /// Cached signing contexts, shared by copies of the key. Populated by
  /// GenerateRsaKey; keys assembled by hand can call Precompute() (or
  /// not — RsaPrivateOp falls back to per-call contexts).
  std::shared_ptr<const RsaCrtContext> crt;

  RsaPublicKey PublicKey() const { return RsaPublicKey{n, e}; }

  /// Builds the cached Montgomery p/q contexts. Call once after the CRT
  /// fields are final; do NOT call while other threads may be signing.
  void Precompute() { crt = std::make_shared<RsaCrtContext>(p, q); }
};

/// Generates an RSA key pair with public exponent 65537.
/// \param modulus_bits total modulus size (e.g. 1024, 2048)
/// \param rng randomness for prime generation
RsaPrivateKey GenerateRsaKey(std::size_t modulus_bits,
                             bignum::RandomSource* rng);

/// Raw public operation m^e mod n. Requires 0 <= m < n.
bignum::BigInt RsaPublicOp(const RsaPublicKey& pub, const bignum::BigInt& m);

/// Raw private operation c^d mod n via CRT. Requires 0 <= c < n.
bignum::BigInt RsaPrivateOp(const RsaPrivateKey& priv,
                            const bignum::BigInt& c);

/// Full-domain hash of \p msg onto [0, n): MGF1-SHA256 expanded to the
/// modulus width with the top byte cleared.
bignum::BigInt FdhHash(const std::vector<std::uint8_t>& msg,
                       const RsaPublicKey& pub);

/// RSA-FDH signature over \p msg. Returns the signature as modulus-width
/// big-endian bytes.
std::vector<std::uint8_t> RsaSignFdh(const RsaPrivateKey& priv,
                                     const std::vector<std::uint8_t>& msg);

/// Verifies an RSA-FDH signature.
bool RsaVerifyFdh(const RsaPublicKey& pub, const std::vector<std::uint8_t>& msg,
                  const std::vector<std::uint8_t>& sig);

/// Hybrid ciphertext: RSA-KEM encapsulated secret + ChaCha20 body + HMAC tag.
struct HybridCiphertext {
  std::vector<std::uint8_t> encapsulated;  // modulus-width RSA block
  std::vector<std::uint8_t> body;          // ChaCha20-encrypted payload
  std::array<std::uint8_t, 32> tag;        // HMAC-SHA256 over body

  std::vector<std::uint8_t> Serialize() const;
  static HybridCiphertext Deserialize(const std::vector<std::uint8_t>& bytes);
};

/// Encrypts \p plaintext to \p pub: picks random x < n, encapsulates x^e,
/// derives (enc_key, mac_key, nonce) with HKDF, encrypts with ChaCha20 and
/// authenticates with HMAC (encrypt-then-MAC).
HybridCiphertext RsaHybridEncrypt(const RsaPublicKey& pub,
                                  const std::vector<std::uint8_t>& plaintext,
                                  bignum::RandomSource* rng);

/// Decrypts a hybrid ciphertext. Returns false on MAC failure.
bool RsaHybridDecrypt(const RsaPrivateKey& priv, const HybridCiphertext& ct,
                      std::vector<std::uint8_t>* plaintext);

/// MGF1-SHA256 mask generation (exposed for tests).
std::vector<std::uint8_t> Mgf1Sha256(const std::vector<std::uint8_t>& seed,
                                     std::size_t out_len);

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_RSA_H_
