#ifndef P2DRM_CRYPTO_CHACHA20_H_
#define P2DRM_CRYPTO_CHACHA20_H_

/// \file chacha20.h
/// \brief RFC 8439 ChaCha20 stream cipher. Used for bulk content
/// encryption in the DRM content store (the paper's content channel) and
/// as the fast keystream behind deterministic simulation randomness.

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace p2drm {
namespace crypto {

/// ChaCha20 keystream generator / stream cipher.
class ChaCha20 {
 public:
  /// \param key    32-byte key
  /// \param nonce  12-byte nonce
  /// \param counter initial block counter (RFC 8439 uses 1 for AEAD)
  ChaCha20(const std::array<std::uint8_t, 32>& key,
           const std::array<std::uint8_t, 12>& nonce,
           std::uint32_t counter = 0);

  /// XORs the keystream into the buffer in place.
  void Crypt(std::uint8_t* data, std::size_t len);

  /// Convenience: returns ciphertext (or plaintext; XOR is symmetric).
  std::vector<std::uint8_t> Crypt(const std::vector<std::uint8_t>& data);

  /// Produces raw keystream bytes.
  void Keystream(std::uint8_t* out, std::size_t len);

 private:
  void NextBlock();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // forces generation on first use
};

}  // namespace crypto
}  // namespace p2drm

#endif  // P2DRM_CRYPTO_CHACHA20_H_
