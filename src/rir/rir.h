#ifndef P2DRM_RIR_RIR_H_
#define P2DRM_RIR_RIR_H_

/// \file rir.h
/// \brief Repudiative Information Retrieval (RIR) for DRM catalogs.
///
/// The P2DRM literature (Asonov 2004, "Querying Databases Privately")
/// resolves the tension between pay-per-query DRM and query privacy by
/// *relaxing* PIR: instead of hiding the query information-theoretically
/// (which would prevent the provider from metering anything), the user
/// hides the real item inside a set of k plausible decoys. The provider
/// can count and charge queries — the DRM requirement — while the user
/// can *repudiate* any claim about which item was actually retrieved —
/// the privacy requirement. The strength of that repudiation is exactly
/// the adversary's posterior over the query set, which this module also
/// computes (the paper's "precision of the DRM system depends on the
/// robustness of the repudiation").

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bignum/random_source.h"

namespace p2drm {
namespace rir {

/// Server side: a catalog of opaque blobs served by index, metered
/// per retrieved item.
class RirServer {
 public:
  explicit RirServer(std::vector<std::vector<std::uint8_t>> catalog);

  std::size_t CatalogSize() const { return catalog_.size(); }

  /// Answers a batch query: returns the requested blobs in request order.
  /// Out-of-range indexes throw std::out_of_range (whole query rejected,
  /// nothing charged). Charges per item retrieved.
  std::vector<std::vector<std::uint8_t>> Query(
      const std::vector<std::size_t>& indexes);

  /// Pay-per-query accounting (the DRM side of the bargain).
  std::uint64_t ItemsServed() const { return items_served_; }
  std::uint64_t QueriesServed() const { return queries_served_; }

  /// The provider's observation log: every query set, verbatim. This is
  /// everything a curious provider can analyze.
  const std::vector<std::vector<std::size_t>>& ObservationLog() const {
    return log_;
  }

 private:
  std::vector<std::vector<std::uint8_t>> catalog_;
  std::vector<std::vector<std::size_t>> log_;
  std::uint64_t items_served_ = 0;
  std::uint64_t queries_served_ = 0;
};

/// Client side: builds k-item repudiable queries with popularity-matched
/// decoys.
class RirClient {
 public:
  /// \param catalog_size  N
  /// \param popularity    per-item access prior the decoys are drawn from
  ///                      (need not be normalized; uniform if empty).
  ///                      Matching the decoy distribution to the public
  ///                      popularity prior prevents the server from
  ///                      discounting implausible decoys.
  /// \param k             query-set size (>= 1); k = 1 is plain retrieval.
  RirClient(std::size_t catalog_size, std::vector<double> popularity,
            std::size_t k);

  std::size_t k() const { return k_; }

  /// Builds a query set containing \p real_index plus k-1 distinct
  /// popularity-sampled decoys, shuffled so position leaks nothing.
  std::vector<std::size_t> BuildQuery(std::size_t real_index,
                                      bignum::RandomSource* rng) const;

 private:
  std::size_t catalog_size_;
  std::vector<double> cdf_;  // popularity CDF for decoy sampling
  std::size_t k_;
};

/// The adversary's best guess: given one observed query set and the public
/// popularity prior, the posterior probability of the most likely item.
/// Repudiation degree = 1 - GuessProbability. For uniform priors this is
/// exactly 1/k.
double GuessProbability(const std::vector<std::size_t>& query,
                        const std::vector<double>& popularity);

/// Expected bandwidth cost of a k-query relative to plain retrieval
/// (k blobs instead of 1) — the privacy/bandwidth trade-off axis.
inline double BandwidthFactor(std::size_t k) {
  return static_cast<double>(k);
}

}  // namespace rir
}  // namespace p2drm

#endif  // P2DRM_RIR_RIR_H_
