#include "rir/rir.h"

#include <algorithm>
#include <stdexcept>

namespace p2drm {
namespace rir {

RirServer::RirServer(std::vector<std::vector<std::uint8_t>> catalog)
    : catalog_(std::move(catalog)) {}

std::vector<std::vector<std::uint8_t>> RirServer::Query(
    const std::vector<std::size_t>& indexes) {
  for (std::size_t i : indexes) {
    if (i >= catalog_.size()) {
      throw std::out_of_range("RirServer: index out of range");
    }
  }
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(indexes.size());
  for (std::size_t i : indexes) out.push_back(catalog_[i]);
  log_.push_back(indexes);
  items_served_ += indexes.size();
  queries_served_ += 1;
  return out;
}

RirClient::RirClient(std::size_t catalog_size, std::vector<double> popularity,
                     std::size_t k)
    : catalog_size_(catalog_size), k_(k) {
  if (catalog_size == 0) {
    throw std::invalid_argument("RirClient: empty catalog");
  }
  if (k == 0) throw std::invalid_argument("RirClient: k must be >= 1");
  if (k > catalog_size) {
    throw std::invalid_argument("RirClient: k exceeds catalog size");
  }
  if (popularity.empty()) {
    popularity.assign(catalog_size, 1.0);
  }
  if (popularity.size() != catalog_size) {
    throw std::invalid_argument("RirClient: popularity size mismatch");
  }
  cdf_.resize(catalog_size);
  double acc = 0;
  for (std::size_t i = 0; i < catalog_size; ++i) {
    if (popularity[i] < 0) {
      throw std::invalid_argument("RirClient: negative popularity");
    }
    acc += popularity[i];
    cdf_[i] = acc;
  }
  if (acc <= 0) throw std::invalid_argument("RirClient: zero total popularity");
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;
}

std::vector<std::size_t> RirClient::BuildQuery(
    std::size_t real_index, bignum::RandomSource* rng) const {
  if (real_index >= catalog_size_) {
    throw std::out_of_range("RirClient: real index out of range");
  }
  std::vector<std::size_t> query = {real_index};
  // Rejection-sample distinct popularity-weighted decoys.
  while (query.size() < k_) {
    double u = rng->NextUnitDouble();
    std::size_t candidate = static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    if (std::find(query.begin(), query.end(), candidate) == query.end()) {
      query.push_back(candidate);
    }
  }
  // Fisher–Yates shuffle: the real item's position must be uniform.
  for (std::size_t i = query.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng->NextUint64(i));
    std::swap(query[i - 1], query[j]);
  }
  return query;
}

double GuessProbability(const std::vector<std::size_t>& query,
                        const std::vector<double>& popularity) {
  if (query.empty()) return 0.0;
  // Posterior over the set is the prior restricted to the set, normalized.
  double total = 0;
  double best = 0;
  for (std::size_t i : query) {
    double p = i < popularity.size() ? popularity[i] : 1.0;
    total += p;
    best = std::max(best, p);
  }
  if (total <= 0) return 1.0 / static_cast<double>(query.size());
  return best / total;
}

}  // namespace rir
}  // namespace p2drm
