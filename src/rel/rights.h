#ifndef P2DRM_REL_RIGHTS_H_
#define P2DRM_REL_RIGHTS_H_

/// \file rights.h
/// \brief Rights expressions: what a license permits, and evaluation of a
/// usage request against a rights expression plus device-local state.
///
/// This is a compact stand-in for the rights-expression languages (ODRL,
/// XrML/MPEG-REL) the DRM literature assumes. Canonical binary encoding is
/// part of the signed license, so encoding changes are format changes.

#include <cstdint>
#include <string>

#include "net/codec.h"

namespace p2drm {
namespace rel {

/// Usage actions a device can request.
enum class Action : std::uint8_t {
  kPlay = 0,
  kDisplay = 1,
  kPrint = 2,
  kCopy = 3,
  kTransfer = 4,
};

/// Returns a human-readable action name.
const char* ActionName(Action a);

/// Sentinel: unlimited play count.
constexpr std::uint32_t kUnlimitedPlays = 0xffffffffu;
/// Sentinel: no expiry.
constexpr std::uint64_t kNoExpiry = 0;

/// A rights expression as carried inside a license.
struct Rights {
  bool allow_play = false;
  bool allow_display = false;
  bool allow_print = false;
  bool allow_copy = false;
  bool allow_transfer = false;
  /// Total permitted plays (kUnlimitedPlays = unmetered).
  std::uint32_t play_count = kUnlimitedPlays;
  /// Expiry as seconds since epoch (kNoExpiry = perpetual).
  std::uint64_t expiry_epoch_s = kNoExpiry;
  /// Minimum device security level required to exercise the rights.
  std::uint8_t min_security_level = 0;

  /// Canonical fixed-layout encoding (part of the signed license bytes).
  void Encode(net::ByteWriter* w) const;
  static Rights Decode(net::ByteReader* r);

  bool operator==(const Rights& o) const;

  /// Convenience factories for the common retail offerings.
  static Rights UnlimitedPlay();
  static Rights MeteredPlay(std::uint32_t plays);
  static Rights Rental(std::uint64_t expiry_epoch_s);
  static Rights FullRetail();  ///< play + copy + transfer, unlimited

  /// Most-restrictive combination: action flags AND, the smaller play
  /// count, the earlier expiry, the higher security requirement. Used by
  /// delegation (star) licenses — a delegate can never hold more rights
  /// than the delegator.
  static Rights Intersect(const Rights& a, const Rights& b);

  /// True when every right granted by this expression is also granted by
  /// \p other (i.e. this is a restriction of \p other).
  bool IsSubsetOf(const Rights& other) const;

  std::string ToString() const;
};

/// Device-side mutable usage state for one license.
struct UsageState {
  std::uint32_t plays_used = 0;
};

/// Result of evaluating a usage request.
enum class Decision : std::uint8_t {
  kAllow = 0,
  kDeniedAction = 1,         ///< action not granted at all
  kDeniedExhausted = 2,      ///< play count used up
  kDeniedExpired = 3,        ///< past expiry
  kDeniedSecurityLevel = 4,  ///< device below required level
};

const char* DecisionName(Decision d);

/// Evaluates \p action against \p rights and device \p state at \p now.
/// Pure function; consuming a play is the caller's responsibility on kAllow.
Decision Evaluate(const Rights& rights, const UsageState& state, Action action,
                  std::uint64_t now_epoch_s, std::uint8_t device_level);

}  // namespace rel
}  // namespace p2drm

#endif  // P2DRM_REL_RIGHTS_H_
