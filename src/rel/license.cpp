#include "rel/license.h"

#include <sstream>

namespace p2drm {
namespace rel {

const char* LicenseKindName(LicenseKind k) {
  switch (k) {
    case LicenseKind::kUserBound: return "user-bound";
    case LicenseKind::kAnonymous: return "anonymous";
  }
  return "unknown";
}

std::vector<std::uint8_t> License::CanonicalBytes() const {
  net::ByteWriter w;
  w.Fixed(id.bytes);
  w.U8(static_cast<std::uint8_t>(kind));
  w.U64(content_id);
  w.Fixed(bound_key);
  rights.Encode(&w);
  w.U64(issued_at_s);
  w.Blob(wrapped_content_key);
  return w.Take();
}

std::vector<std::uint8_t> License::Serialize() const {
  net::ByteWriter w;
  w.Blob(CanonicalBytes());
  w.Blob(issuer_signature);
  return w.Take();
}

License License::Deserialize(const std::vector<std::uint8_t>& bytes) {
  net::ByteReader outer(bytes);
  std::vector<std::uint8_t> canonical = outer.Blob();
  std::vector<std::uint8_t> sig = outer.Blob();
  outer.ExpectEnd();

  net::ByteReader r(canonical);
  License lic;
  lic.id.bytes = r.Fixed<16>();
  std::uint8_t kind = r.U8();
  if (kind > static_cast<std::uint8_t>(LicenseKind::kAnonymous)) {
    throw net::CodecError("License: bad kind");
  }
  lic.kind = static_cast<LicenseKind>(kind);
  lic.content_id = r.U64();
  lic.bound_key = r.Fixed<32>();
  lic.rights = Rights::Decode(&r);
  lic.issued_at_s = r.U64();
  lic.wrapped_content_key = r.Blob();
  r.ExpectEnd();
  lic.issuer_signature = std::move(sig);
  return lic;
}

bool License::operator==(const License& o) const {
  return id == o.id && kind == o.kind && content_id == o.content_id &&
         bound_key == o.bound_key && rights == o.rights &&
         issued_at_s == o.issued_at_s &&
         wrapped_content_key == o.wrapped_content_key &&
         issuer_signature == o.issuer_signature;
}

std::string License::ToString() const {
  std::ostringstream os;
  os << "License{" << id.ToHex().substr(0, 8) << "... "
     << LicenseKindName(kind) << " content=" << content_id << " "
     << rights.ToString() << "}";
  return os.str();
}

}  // namespace rel
}  // namespace p2drm
