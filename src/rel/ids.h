#ifndef P2DRM_REL_IDS_H_
#define P2DRM_REL_IDS_H_

/// \file ids.h
/// \brief Identifier types shared across the DRM stack.

#include <array>
#include <cstdint>
#include <string>

namespace p2drm {
namespace rel {

/// Catalog identifier of a piece of content.
using ContentId = std::uint64_t;

/// 16-byte globally unique license identifier. The uniqueness of this id is
/// what lets the content provider detect double redemption of anonymous
/// licenses (the paper's core enforcement mechanism for private transfer).
struct LicenseId {
  std::array<std::uint8_t, 16> bytes{};

  bool operator==(const LicenseId& o) const { return bytes == o.bytes; }
  bool operator!=(const LicenseId& o) const { return bytes != o.bytes; }
  bool operator<(const LicenseId& o) const { return bytes < o.bytes; }

  /// Hex rendering for logs and map keys.
  std::string ToHex() const {
    static const char* kHex = "0123456789abcdef";
    std::string s;
    s.reserve(32);
    for (auto b : bytes) {
      s.push_back(kHex[b >> 4]);
      s.push_back(kHex[b & 0xf]);
    }
    return s;
  }
};

/// 32-byte key fingerprint (SHA-256 of a serialized public key).
using KeyFingerprint = std::array<std::uint8_t, 32>;

/// 32-byte device identifier (fingerprint of the device certificate key).
using DeviceId = std::array<std::uint8_t, 32>;

}  // namespace rel
}  // namespace p2drm

namespace std {
template <>
struct hash<p2drm::rel::LicenseId> {
  size_t operator()(const p2drm::rel::LicenseId& id) const noexcept {
    // The id is already uniformly random; fold the first 8 bytes.
    size_t h = 0;
    for (int i = 0; i < 8; ++i) h = (h << 8) | id.bytes[i];
    return h;
  }
};
}  // namespace std

#endif  // P2DRM_REL_IDS_H_
