#include "rel/rights.h"

#include <algorithm>
#include <sstream>

namespace p2drm {
namespace rel {

const char* ActionName(Action a) {
  switch (a) {
    case Action::kPlay: return "play";
    case Action::kDisplay: return "display";
    case Action::kPrint: return "print";
    case Action::kCopy: return "copy";
    case Action::kTransfer: return "transfer";
  }
  return "unknown";
}

const char* DecisionName(Decision d) {
  switch (d) {
    case Decision::kAllow: return "allow";
    case Decision::kDeniedAction: return "denied:action";
    case Decision::kDeniedExhausted: return "denied:exhausted";
    case Decision::kDeniedExpired: return "denied:expired";
    case Decision::kDeniedSecurityLevel: return "denied:security-level";
  }
  return "unknown";
}

void Rights::Encode(net::ByteWriter* w) const {
  std::uint8_t flags = 0;
  if (allow_play) flags |= 1u << 0;
  if (allow_display) flags |= 1u << 1;
  if (allow_print) flags |= 1u << 2;
  if (allow_copy) flags |= 1u << 3;
  if (allow_transfer) flags |= 1u << 4;
  w->U8(flags);
  w->U32(play_count);
  w->U64(expiry_epoch_s);
  w->U8(min_security_level);
}

Rights Rights::Decode(net::ByteReader* r) {
  Rights out;
  std::uint8_t flags = r->U8();
  out.allow_play = flags & (1u << 0);
  out.allow_display = flags & (1u << 1);
  out.allow_print = flags & (1u << 2);
  out.allow_copy = flags & (1u << 3);
  out.allow_transfer = flags & (1u << 4);
  out.play_count = r->U32();
  out.expiry_epoch_s = r->U64();
  out.min_security_level = r->U8();
  return out;
}

bool Rights::operator==(const Rights& o) const {
  return allow_play == o.allow_play && allow_display == o.allow_display &&
         allow_print == o.allow_print && allow_copy == o.allow_copy &&
         allow_transfer == o.allow_transfer && play_count == o.play_count &&
         expiry_epoch_s == o.expiry_epoch_s &&
         min_security_level == o.min_security_level;
}

Rights Rights::UnlimitedPlay() {
  Rights r;
  r.allow_play = true;
  r.allow_display = true;
  return r;
}

Rights Rights::MeteredPlay(std::uint32_t plays) {
  Rights r = UnlimitedPlay();
  r.play_count = plays;
  return r;
}

Rights Rights::Rental(std::uint64_t expiry_epoch_s) {
  Rights r = UnlimitedPlay();
  r.expiry_epoch_s = expiry_epoch_s;
  return r;
}

Rights Rights::FullRetail() {
  Rights r = UnlimitedPlay();
  r.allow_copy = true;
  r.allow_transfer = true;
  return r;
}

Rights Rights::Intersect(const Rights& a, const Rights& b) {
  Rights r;
  r.allow_play = a.allow_play && b.allow_play;
  r.allow_display = a.allow_display && b.allow_display;
  r.allow_print = a.allow_print && b.allow_print;
  r.allow_copy = a.allow_copy && b.allow_copy;
  r.allow_transfer = a.allow_transfer && b.allow_transfer;
  r.play_count = std::min(a.play_count, b.play_count);
  if (a.expiry_epoch_s == kNoExpiry) {
    r.expiry_epoch_s = b.expiry_epoch_s;
  } else if (b.expiry_epoch_s == kNoExpiry) {
    r.expiry_epoch_s = a.expiry_epoch_s;
  } else {
    r.expiry_epoch_s = std::min(a.expiry_epoch_s, b.expiry_epoch_s);
  }
  r.min_security_level = std::max(a.min_security_level, b.min_security_level);
  return r;
}

bool Rights::IsSubsetOf(const Rights& other) const {
  return Intersect(*this, other) == *this;
}

std::string Rights::ToString() const {
  std::ostringstream os;
  os << "Rights{";
  if (allow_play) os << "play ";
  if (allow_display) os << "display ";
  if (allow_print) os << "print ";
  if (allow_copy) os << "copy ";
  if (allow_transfer) os << "transfer ";
  if (play_count != kUnlimitedPlays) os << "plays=" << play_count << " ";
  if (expiry_epoch_s != kNoExpiry) os << "expires=" << expiry_epoch_s << " ";
  os << "level>=" << static_cast<int>(min_security_level) << "}";
  return os.str();
}

Decision Evaluate(const Rights& rights, const UsageState& state, Action action,
                  std::uint64_t now_epoch_s, std::uint8_t device_level) {
  if (device_level < rights.min_security_level) {
    return Decision::kDeniedSecurityLevel;
  }
  if (rights.expiry_epoch_s != kNoExpiry &&
      now_epoch_s > rights.expiry_epoch_s) {
    return Decision::kDeniedExpired;
  }
  bool granted = false;
  switch (action) {
    case Action::kPlay: granted = rights.allow_play; break;
    case Action::kDisplay: granted = rights.allow_display; break;
    case Action::kPrint: granted = rights.allow_print; break;
    case Action::kCopy: granted = rights.allow_copy; break;
    case Action::kTransfer: granted = rights.allow_transfer; break;
  }
  if (!granted) return Decision::kDeniedAction;
  if (action == Action::kPlay && rights.play_count != kUnlimitedPlays &&
      state.plays_used >= rights.play_count) {
    return Decision::kDeniedExhausted;
  }
  return Decision::kAllow;
}

}  // namespace rel
}  // namespace p2drm
