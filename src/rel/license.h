#ifndef P2DRM_REL_LICENSE_H_
#define P2DRM_REL_LICENSE_H_

/// \file license.h
/// \brief License structures: key-bound licenses and the paper's anonymous
/// (generic) licenses.
///
/// A *key-bound* license names a pseudonym public key; only a device holding
/// the matching private key may exercise it. An *anonymous* license names no
/// key at all — it is a bearer instrument identified solely by its unique
/// LicenseId, redeemable exactly once at the content provider. Anonymous
/// licenses are what make private transfer possible: the provider swaps a
/// key-bound license for an anonymous one (unlinking the giver) and later
/// swaps the anonymous one for a new key-bound license (without learning the
/// taker's identity or the link between the two).

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"
#include "rel/ids.h"
#include "rel/rights.h"

namespace p2drm {
namespace rel {

/// Which flavour of license this is.
enum class LicenseKind : std::uint8_t {
  kUserBound = 0,  ///< bound to a pseudonym key fingerprint
  kAnonymous = 1,  ///< bearer license; valid for one redemption
};

const char* LicenseKindName(LicenseKind k);

/// A license as issued and signed by the content provider.
struct License {
  LicenseId id;
  LicenseKind kind = LicenseKind::kUserBound;
  ContentId content_id = 0;
  /// Fingerprint of the pseudonym key the license is bound to.
  /// All-zero for anonymous licenses.
  KeyFingerprint bound_key{};
  Rights rights;
  std::uint64_t issued_at_s = 0;
  /// Content key wrapped to the bound pseudonym key (hybrid ciphertext).
  /// Empty for anonymous licenses — the key is delivered only on redemption.
  std::vector<std::uint8_t> wrapped_content_key;
  /// Content-provider RSA-FDH signature over CanonicalBytes().
  std::vector<std::uint8_t> issuer_signature;

  /// The byte string the issuer signs: every field except the signature,
  /// in fixed canonical order.
  std::vector<std::uint8_t> CanonicalBytes() const;

  /// Full wire encoding including the signature.
  std::vector<std::uint8_t> Serialize() const;
  static License Deserialize(const std::vector<std::uint8_t>& bytes);

  /// Total serialized size in bytes (storage-overhead accounting, RT-3).
  std::size_t SerializedSize() const { return Serialize().size(); }

  bool operator==(const License& o) const;

  std::string ToString() const;
};

}  // namespace rel
}  // namespace p2drm

#endif  // P2DRM_REL_LICENSE_H_
