#include "baseline/identified_drm.h"

#include <stdexcept>

#include "core/metrics.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace p2drm {
namespace baseline {

IdentifiedDrm::IdentifiedDrm(std::size_t signing_key_bits,
                             bignum::RandomSource* rng,
                             const core::Clock* clock,
                             core::PaymentProvider* bank)
    : rng_(rng),
      clock_(clock),
      bank_(bank),
      key_(crypto::GenerateRsaKey(signing_key_bits, rng)),
      public_key_(key_.PublicKey()) {
  core::GlobalOps().keygen += 1;
  if (bank_ != nullptr) bank_->OpenAccount("baseline-cp", 0);
}

void IdentifiedDrm::RegisterAccount(const std::string& account) {
  accounts_[account] = true;
}

rel::KeyFingerprint IdentifiedDrm::AccountFingerprint(
    const std::string& account) {
  return crypto::Sha256::Hash("baseline-account:" + account);
}

rel::ContentId IdentifiedDrm::Publish(
    const std::string& title, const std::vector<std::uint8_t>& plaintext,
    std::uint64_t price, const rel::Rights& rights) {
  CatalogEntry entry;
  entry.offer.content_id = next_content_id_++;
  entry.offer.title = title;
  entry.offer.price = price;
  entry.offer.rights = rights;
  rng_->Fill(entry.content_key.data(), entry.content_key.size());
  entry.encrypted.content_id = entry.offer.content_id;
  rng_->Fill(entry.encrypted.nonce.data(), entry.encrypted.nonce.size());
  crypto::ChaCha20 cipher(entry.content_key, entry.encrypted.nonce);
  entry.encrypted.ciphertext = cipher.Crypt(plaintext);
  rel::ContentId id = entry.offer.content_id;
  catalog_.emplace(id, std::move(entry));
  return id;
}

std::vector<core::Offer> IdentifiedDrm::Catalog() const {
  std::vector<core::Offer> offers;
  offers.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_) {
    (void)id;
    offers.push_back(entry.offer);
  }
  return offers;
}

std::optional<core::Offer> IdentifiedDrm::FindOffer(rel::ContentId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return std::nullopt;
  return it->second.offer;
}

const core::EncryptedContent& IdentifiedDrm::GetContent(
    rel::ContentId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) {
    throw std::out_of_range("IdentifiedDrm: unknown content id");
  }
  return it->second.encrypted;
}

rel::License IdentifiedDrm::IssueLicense(const std::string& account,
                                         rel::ContentId content_id,
                                         const rel::Rights& rights) {
  rel::License lic;
  rng_->Fill(lic.id.bytes.data(), lic.id.bytes.size());
  lic.kind = rel::LicenseKind::kUserBound;
  lic.content_id = content_id;
  lic.bound_key = AccountFingerprint(account);
  lic.rights = rights;
  lic.issued_at_s = clock_->NowEpochSeconds();
  // No per-user wrapping: the baseline keeps content keys server-side and
  // releases them on authenticated play authorization.
  core::GlobalOps().sign += 1;
  lic.issuer_signature = crypto::RsaSignFdh(key_, lic.CanonicalBytes());
  ++licenses_issued_;
  return lic;
}

IdentifiedDrm::PurchaseResult IdentifiedDrm::Purchase(
    const std::string& account, rel::ContentId content_id) {
  PurchaseResult result;
  if (accounts_.find(account) == accounts_.end()) {
    result.status = core::Status::kUnknownAccount;
    return result;
  }
  auto offer = FindOffer(content_id);
  if (!offer.has_value()) {
    result.status = core::Status::kUnknownContent;
    return result;
  }
  core::Status pay = bank_->DirectDebit(account, "baseline-cp", offer->price,
                                        clock_->NowEpochSeconds());
  if (pay != core::Status::kOk) {
    result.status = pay;
    return result;
  }

  result.license = IssueLicense(account, content_id, offer->rights);
  licenses_.emplace(result.license.id,
                    OwnedLicense{result.license, account});
  log_.push_back(ActivityRecord{ActivityRecord::Kind::kPurchase, account,
                                content_id, clock_->NowEpochSeconds()});
  result.status = core::Status::kOk;
  return result;
}

IdentifiedDrm::PurchaseResult IdentifiedDrm::Transfer(
    const std::string& from_account, const std::string& to_account,
    const rel::LicenseId& license_id) {
  PurchaseResult result;
  if (accounts_.find(from_account) == accounts_.end() ||
      accounts_.find(to_account) == accounts_.end()) {
    result.status = core::Status::kUnknownAccount;
    return result;
  }
  auto it = licenses_.find(license_id);
  if (it == licenses_.end() || it->second.owner != from_account) {
    result.status = core::Status::kBadRequest;
    return result;
  }
  if (!it->second.license.rights.allow_transfer) {
    result.status = core::Status::kNotTransferable;
    return result;
  }
  rel::ContentId content = it->second.license.content_id;
  rel::Rights rights = it->second.license.rights;
  licenses_.erase(it);

  result.license = IssueLicense(to_account, content, rights);
  licenses_.emplace(result.license.id,
                    OwnedLicense{result.license, to_account});
  // The provider logs BOTH endpoints: the social edge is fully visible.
  log_.push_back(ActivityRecord{ActivityRecord::Kind::kTransferOut,
                                from_account, content,
                                clock_->NowEpochSeconds()});
  log_.push_back(ActivityRecord{ActivityRecord::Kind::kTransferIn, to_account,
                                content, clock_->NowEpochSeconds()});
  result.status = core::Status::kOk;
  return result;
}

core::Status IdentifiedDrm::AuthorizePlay(
    const std::string& account, const rel::LicenseId& license_id,
    std::array<std::uint8_t, 32>* content_key) {
  auto it = licenses_.find(license_id);
  if (it == licenses_.end() || it->second.owner != account) {
    return core::Status::kBadRequest;
  }
  auto cat = catalog_.find(it->second.license.content_id);
  if (cat == catalog_.end()) return core::Status::kUnknownContent;
  *content_key = cat->second.content_key;
  log_.push_back(ActivityRecord{ActivityRecord::Kind::kPlayAuth, account,
                                it->second.license.content_id,
                                clock_->NowEpochSeconds()});
  return core::Status::kOk;
}

}  // namespace baseline
}  // namespace p2drm
