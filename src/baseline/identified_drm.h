#ifndef P2DRM_BASELINE_IDENTIFIED_DRM_H_
#define P2DRM_BASELINE_IDENTIFIED_DRM_H_

/// \file identified_drm.h
/// \brief The comparison baseline: a conventional, fully identified DRM.
///
/// Functionally equivalent to the P2DRM content provider — same catalog,
/// same license format, same device-side enforcement — but with none of the
/// privacy machinery: licenses are bound to the *account*, payment is an
/// identified direct debit, and transfer is a server-side ownership update
/// between named accounts. Every operation lands in an identified activity
/// log; the size and linkability of that log versus the P2DRM provider's
/// pseudonymous view is exactly what RF-4/RT-2 measure.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/clock.h"
#include "core/content_provider.h"
#include "core/errors.h"
#include "core/payment.h"
#include "crypto/rsa.h"
#include "rel/license.h"

namespace p2drm {
namespace baseline {

/// One row of the provider's identified activity log — the privacy leak.
struct ActivityRecord {
  enum class Kind : std::uint8_t { kPurchase = 0, kTransferOut, kTransferIn, kPlayAuth };
  Kind kind = Kind::kPurchase;
  std::string account;
  rel::ContentId content_id = 0;
  std::uint64_t timestamp_s = 0;
};

/// Conventional identified DRM provider.
class IdentifiedDrm {
 public:
  IdentifiedDrm(std::size_t signing_key_bits, bignum::RandomSource* rng,
                const core::Clock* clock, core::PaymentProvider* bank);

  const crypto::RsaPublicKey& PublicKey() const { return public_key_; }

  /// Registers a user account (the bank account must already exist).
  void RegisterAccount(const std::string& account);

  // -- catalog (mirrors ContentProvider) ----------------------------------
  rel::ContentId Publish(const std::string& title,
                         const std::vector<std::uint8_t>& plaintext,
                         std::uint64_t price, const rel::Rights& rights);
  std::vector<core::Offer> Catalog() const;
  std::optional<core::Offer> FindOffer(rel::ContentId id) const;
  const core::EncryptedContent& GetContent(rel::ContentId id) const;

  // -- identified operations ------------------------------------------------

  struct PurchaseResult {
    core::Status status = core::Status::kBadRequest;
    rel::License license;
  };

  /// Identified purchase: debits the account at the bank and issues a
  /// license bound to the *account key* (deterministic per account). The
  /// provider logs who bought what, when.
  PurchaseResult Purchase(const std::string& account,
                          rel::ContentId content_id);

  /// Server-side transfer: reassigns the license from one account to
  /// another. The provider sees — and logs — both endpoints of the social
  /// edge, which is precisely what P2DRM's anonymous-license exchange hides.
  PurchaseResult Transfer(const std::string& from_account,
                          const std::string& to_account,
                          const rel::LicenseId& license_id);

  /// Unwraps the content key for an account's license (the baseline's
  /// account key lives server-side; devices authenticate by account).
  /// Logs a play-authorization event.
  core::Status AuthorizePlay(const std::string& account,
                             const rel::LicenseId& license_id,
                             std::array<std::uint8_t, 32>* content_key);

  // -- the privacy ledger -----------------------------------------------------

  const std::vector<ActivityRecord>& ActivityLog() const { return log_; }

  /// Number of (account, content) pairs the provider can prove — the
  /// profile size an attacker obtains by seizing the provider database.
  std::size_t ProfileEntries() const { return log_.size(); }

  std::uint64_t LicensesIssued() const { return licenses_issued_; }

 private:
  rel::License IssueLicense(const std::string& account,
                            rel::ContentId content_id,
                            const rel::Rights& rights);
  static rel::KeyFingerprint AccountFingerprint(const std::string& account);

  bignum::RandomSource* rng_;
  const core::Clock* clock_;
  core::PaymentProvider* bank_;
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;

  struct CatalogEntry {
    core::Offer offer;
    std::array<std::uint8_t, 32> content_key;
    core::EncryptedContent encrypted;
  };
  std::map<rel::ContentId, CatalogEntry> catalog_;
  rel::ContentId next_content_id_ = 1;

  struct OwnedLicense {
    rel::License license;
    std::string owner;
  };
  std::map<rel::LicenseId, OwnedLicense> licenses_;
  std::map<std::string, bool> accounts_;
  std::vector<ActivityRecord> log_;
  std::uint64_t licenses_issued_ = 0;
};

}  // namespace baseline
}  // namespace p2drm

#endif  // P2DRM_BASELINE_IDENTIFIED_DRM_H_
