#ifndef P2DRM_CORE_CLOCK_H_
#define P2DRM_CORE_CLOCK_H_

/// \file clock.h
/// \brief Injectable time source so rental expiry and audit timestamps are
/// deterministic in tests and simulations.
///
/// SimClock is a *seconds view* over the unified microsecond timebase
/// (sim::VirtualClock): advancing license expiry and accruing simulated
/// wire latency move the same clock, so a scenario that waits out a
/// rental window and one that honors a retry-after hint are expressed in
/// one notion of time (docs/simulation.md).

#include <cstdint>
#include <memory>

#include "sim/virtual_clock.h"

namespace p2drm {
namespace core {

/// Abstract seconds-since-epoch clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t NowEpochSeconds() const = 0;
};

/// Manually-advanced clock for tests and simulations: a seconds-facing
/// view over a sim::VirtualClock. By default it owns a private timebase
/// (the historical standalone behaviour); constructed over an external
/// timebase it becomes one reader/advancer among several — the form
/// P2drmSystem uses so expiry, wire latency and scheduled waits share
/// one clock.
class SimClock : public Clock {
 public:
  explicit SimClock(
      std::uint64_t start_epoch_s = sim::VirtualClock::kDefaultStartEpochSeconds)
      : owned_(std::make_unique<sim::VirtualClock>(start_epoch_s)),
        timebase_(owned_.get()) {}

  /// View over an external timebase (not owned; must outlive this view).
  explicit SimClock(sim::VirtualClock* timebase) : timebase_(timebase) {}

  std::uint64_t NowEpochSeconds() const override {
    return timebase_->NowEpochSeconds();
  }

  void Advance(std::uint64_t seconds) { timebase_->AdvanceSeconds(seconds); }
  void Set(std::uint64_t epoch_s) { timebase_->SetEpochSeconds(epoch_s); }

  /// The underlying microsecond timebase (for schedulers and transports
  /// that share it).
  sim::VirtualClock* timebase() const { return timebase_; }

 private:
  std::unique_ptr<sim::VirtualClock> owned_;  ///< null for external views
  sim::VirtualClock* timebase_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_CLOCK_H_
