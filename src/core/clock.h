#ifndef P2DRM_CORE_CLOCK_H_
#define P2DRM_CORE_CLOCK_H_

/// \file clock.h
/// \brief Injectable time source so rental expiry and audit timestamps are
/// deterministic in tests and simulations.

#include <cstdint>

namespace p2drm {
namespace core {

/// Abstract seconds-since-epoch clock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t NowEpochSeconds() const = 0;
};

/// Manually-advanced clock for tests and simulations.
class SimClock : public Clock {
 public:
  explicit SimClock(std::uint64_t start_epoch_s = 1'700'000'000ull)
      : now_(start_epoch_s) {}

  std::uint64_t NowEpochSeconds() const override { return now_; }

  void Advance(std::uint64_t seconds) { now_ += seconds; }
  void Set(std::uint64_t epoch_s) { now_ = epoch_s; }

 private:
  std::uint64_t now_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_CLOCK_H_
