#include "core/domain.h"

#include "core/protocol.h"
#include "crypto/chacha20.h"

namespace p2drm {
namespace core {

DomainManager::DomainManager(const std::string& name,
                             const DomainConfig& config, P2drmSystem* system,
                             bignum::RandomSource* rng)
    : config_(config),
      system_(system),
      rpc_(&system->transport(), name),
      agent_(name, config.agent, system, rng) {}

Status DomainManager::Join(const DeviceCertificate& member) {
  if (members_.size() >= config_.max_members) return Status::kBadRequest;
  if (!VerifyDeviceCert(system_->ca().PublicKey(), member)) {
    return Status::kBadCertificate;
  }
  if (revoked_.count(member.device_id) != 0 ||
      system_->cp().Crl().IsRevoked(member.device_id)) {
    return Status::kRevoked;
  }
  members_[member.device_id] = member;
  return Status::kOk;
}

bool DomainManager::Leave(const rel::DeviceId& member) {
  return members_.erase(member) != 0;
}

Status DomainManager::AcquireContent(rel::ContentId content) {
  rel::License lic;
  Status s = agent_.BuyContent(content, &lic);
  if (s != Status::kOk) return s;
  licenses_[content] = DomainLicense{lic, rel::UsageState{}};
  return Status::kOk;
}

UseResult DomainManager::MemberPlay(const rel::DeviceId& member,
                                    rel::ContentId content) {
  UseResult result;
  auto mit = members_.find(member);
  if (mit == members_.end()) {
    result.error = "device is not a domain member";
    return result;
  }
  if (revoked_.count(member) != 0) {
    result.error = "device is revoked";
    return result;
  }
  auto lit = licenses_.find(content);
  if (lit == licenses_.end()) {
    result.error = "domain holds no license for this content";
    return result;
  }
  DomainLicense& held = lit->second;

  // Domain-wide rights evaluation: the member's certified security level
  // gates the request, the play meter is shared by the whole domain.
  rel::Decision d = rel::Evaluate(
      held.license.rights, held.state, rel::Action::kPlay,
      system_->clock().NowEpochSeconds(), mit->second.security_level);
  if (d != rel::Decision::kAllow) {
    result.decision = d;
    return result;
  }

  // Fetch the encrypted blob (anonymous, cacheable) and decrypt via the
  // manager's card — the content key never reaches the member device.
  protocol::FetchContentRequest req;
  req.content_id = content;
  auto resp = rpc_.CallAnonymous(P2drmSystem::kCpEndpoint, req);
  if (!resp.ok()) {
    result.error = "content not available";
    return result;
  }

  std::vector<std::uint8_t> content_key;
  if (!agent_.card().UnwrapContentKey(held.license.bound_key,
                                      held.license.wrapped_content_key,
                                      &content_key) ||
      content_key.size() != 32) {
    result.error = "manager card cannot unwrap content key";
    return result;
  }
  std::array<std::uint8_t, 32> ck;
  std::copy(content_key.begin(), content_key.end(), ck.begin());
  crypto::ChaCha20 cipher(ck, resp.value.content.nonce);
  result.plaintext = cipher.Crypt(resp.value.content.ciphertext);
  result.decision = rel::Decision::kAllow;
  held.state.plays_used += 1;
  return result;
}

Status DomainManager::SyncCrl() {
  protocol::FetchCrlRequest req;
  auto resp = rpc_.Call(P2drmSystem::kCpEndpoint, req);
  if (!resp.ok()) return resp.status;
  store::RevocationList crl = store::RevocationList::Deserialize(
      resp.value.crl_snapshot, store::CrlStrategy::kSortedSet);
  revoked_.clear();
  for (const auto& entry : crl.Entries()) revoked_.insert(entry);
  // Expel revoked members immediately (compliance rule).
  for (auto it = members_.begin(); it != members_.end();) {
    if (revoked_.count(it->first) != 0) {
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::kOk;
}

std::uint32_t DomainManager::DomainPlaysUsed(rel::ContentId content) const {
  auto it = licenses_.find(content);
  return it == licenses_.end() ? 0 : it->second.state.plays_used;
}

}  // namespace core
}  // namespace p2drm
