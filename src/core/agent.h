#ifndef P2DRM_CORE_AGENT_H_
#define P2DRM_CORE_AGENT_H_

/// \file agent.h
/// \brief UserAgent: the client-side orchestration of every P2DRM protocol.
///
/// A user agent bundles a smart card, a compliant device and an e-cash
/// wallet, and drives the full message flows over the Transport: enrolment,
/// pseudonym issuance (blind), coin withdrawal (blind), anonymous purchase,
/// private transfer (exchange + redeem), CRL sync and local playback.
/// Purchases and transfers deliberately go over the *anonymous* channel —
/// the CP never sees a caller identity, only the payload.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/device.h"
#include "core/errors.h"
#include "core/payment.h"
#include "core/smartcard.h"
#include "core/system.h"
#include "net/rpc.h"
#include "obs/trace.h"

namespace p2drm {
namespace core {

/// Client-side policy knobs.
struct AgentConfig {
  std::size_t pseudonym_bits = 512;
  /// Purchases per pseudonym before a fresh one is minted. 1 = fully
  /// unlinkable; larger values trade CA load for linkability (RF-4).
  std::uint64_t pseudonym_max_uses = 1;
  std::uint8_t device_security_level = 2;
  std::uint64_t initial_bank_balance = 1000;
  /// Total attempts per item for kOverloaded responses (1 = never
  /// retry). A shed item is retried automatically — batches re-send
  /// only the shed indices — until it succeeds, fails differently, or
  /// the budget runs out (the final status is then kOverloaded).
  std::size_t overload_max_attempts = 3;
  /// Cap on one backoff wait honoring RpcResult::retry_after_ms
  /// (milliseconds). 0 keeps retrying without sleeping — useful in
  /// simulations where wall-clock waits carry no information.
  std::uint32_t overload_backoff_cap_ms = 50;
  /// How a backoff wait is served. Null (the default) sleeps for real.
  /// A simulation binds this to the virtual timebase instead — e.g.
  /// `[&](std::uint32_t ms) { timebase.AdvanceUs(ms * 1000ull); }` —
  /// so even multi-second retry_after_ms hints are honored at zero
  /// wall-clock cost (set overload_backoff_cap_ms high enough to stop
  /// capping them). The hook runs on the calling thread and sees the
  /// already-capped wait.
  std::function<void(std::uint32_t wait_ms)> wait_hook;
  /// Tracing + metrics endpoints (null = off): an "agent.backoff" span
  /// around each honored wait, plus agent.retried_items /
  /// agent.backoff_ms / agent.exhausted_items counters mirroring
  /// RetryStats.
  obs::Sink obs;
};

/// Client-side overload-retry accounting (one struct per agent).
struct RetryStats {
  std::uint64_t retried_items = 0;    ///< item re-sends beyond the first try
  std::uint64_t retry_round_trips = 0;  ///< extra wire calls spent retrying
  std::uint64_t backoff_ms = 0;       ///< total hinted wait honored
  std::uint64_t exhausted_items = 0;  ///< items still shed at budget end
};

/// A complete P2DRM client.
class UserAgent {
 public:
  /// Creates the card and device, opens a bank account, enrols with the CA
  /// and certifies the device (all over the Transport). Throws
  /// std::runtime_error when enrolment or device certification fails —
  /// an agent without its certificates is unusable.
  UserAgent(const std::string& name, const AgentConfig& config,
            P2drmSystem* system, bignum::RandomSource* rng);

  const std::string& name() const { return name_; }
  SmartCard& card() { return card_; }
  CompliantDevice& device() { return device_; }
  std::uint64_t WalletValue() const;
  std::size_t WalletCoins() const { return wallet_.size(); }

  /// Withdraws coins covering \p amount (blind-signature protocol with the
  /// bank; identified channel — the bank debits the account).
  Status WithdrawCoins(std::uint64_t amount);

  /// Buys \p content anonymously. Ensures a usable pseudonym and enough
  /// coins, then purchases over the anonymous channel and installs the
  /// license on the device. On success \p out (optional) receives the
  /// license.
  Status BuyContent(rel::ContentId content, rel::License* out = nullptr);

  /// Batched purchase hot path: prepares one PurchaseRequest per content
  /// id (pseudonym + coins locally), sends them all in ONE metered
  /// round trip (net::Rpc::CallBatch), and installs each returned
  /// license. Returns one status per input, index-aligned; \p out
  /// (optional) receives the licenses for the kOk entries, also
  /// index-aligned (default License elsewhere).
  std::vector<Status> BuyContentBatch(
      const std::vector<rel::ContentId>& contents,
      std::vector<rel::License>* out = nullptr);

  /// Plays content end to end: fetches the encrypted blob and renders it
  /// locally under the installed license.
  UseResult Play(rel::ContentId content);

  /// Giver half of a private transfer: exchanges the held license for an
  /// anonymous bearer license (over the anonymous channel), removes it
  /// from the device, and returns the bearer bytes to hand over.
  Status GiveLicense(const rel::LicenseId& id,
                     std::vector<std::uint8_t>* anonymous_license_bytes);

  /// Batched giver path: N held licenses exchanged for bearer licenses
  /// in ONE metered round trip (the server's ExchangeBatch fast path).
  /// Returns one status per input, index-aligned; \p bearer_bytes
  /// (optional) receives the bearer serialization for the kOk entries
  /// (empty elsewhere). Exchanged licenses are removed from the device;
  /// shed items are retried under the overload policy and, if the
  /// budget runs out, stay installed and untouched.
  std::vector<Status> GiveLicenseBatch(
      const std::vector<rel::LicenseId>& ids,
      std::vector<std::vector<std::uint8_t>>* bearer_bytes = nullptr);

  /// Taker half: redeems bearer bytes for a license bound to a fresh
  /// pseudonym and installs it.
  Status ReceiveLicense(const std::vector<std::uint8_t>& anonymous_license_bytes,
                        rel::License* out = nullptr);

  /// Batched redeem hot path: N bearer licenses redeemed in ONE metered
  /// round trip. Returns one status per input, index-aligned; \p out
  /// (optional) receives the licenses for the kOk entries.
  std::vector<Status> ReceiveLicenseBatch(
      const std::vector<std::vector<std::uint8_t>>& anonymous_license_bytes,
      std::vector<rel::License>* out = nullptr);

  /// Pulls the provider's CRL into the device.
  Status SyncCrl();

  /// Ensures a pseudonym with remaining uses exists and returns it
  /// (runs the blind issuance protocol when needed).
  Pseudonym* EnsurePseudonym();

  /// Overload-retry accounting: how many items this agent re-sent after
  /// kOverloaded sheds, the round trips and hinted backoff spent doing
  /// so, and how many items exhausted the attempt budget.
  const RetryStats& OverloadRetries() const { return retry_stats_; }

 private:
  Status WithdrawOne(std::uint32_t denomination);
  /// Removes coins summing exactly to \p amount from the wallet,
  /// withdrawing more as needed. Empty result means failure.
  std::vector<Coin> TakeCoins(std::uint64_t amount);

  /// Installs a freshly issued license on the device, charging the
  /// pseudonym use. Shared tail of the single and batched purchase/redeem
  /// paths.
  Status InstallIssued(const rel::License& license, Pseudonym* pseudonym,
                       rel::License* out);

  /// Shared wire tail of the batch paths: sends the prepared requests in
  /// one batched round trip (plus bounded retries of shed items),
  /// refunds the pre-charged pseudonym uses, installs the returned
  /// licenses and (for purchases that provably never reached the server)
  /// returns the coins to the wallet. Defined in agent.cpp; instantiated
  /// there for PurchaseRequest/RedeemRequest.
  template <typename Req>
  void FinishBatch(const std::vector<Req>& wire_reqs,
                   const std::vector<std::size_t>& wire_index,
                   const std::vector<Pseudonym*>& wire_pseudonym,
                   std::vector<Status>* statuses,
                   std::vector<rel::License>* out);

  /// Honors a kOverloaded retry hint: waits min(hint, cap) and accounts
  /// for it.
  void Backoff(std::uint32_t retry_after_ms);

  /// Anonymous call with the bounded overload-retry policy applied.
  template <typename Req>
  net::RpcResult<typename Req::Response> CallAnonymousWithRetry(
      const Req& req);

  /// Anonymous batch call with the retry policy applied per item: each
  /// extra round trip re-batches ONLY the shed indices, honoring the
  /// largest hint among them. Results stay index-aligned with \p reqs.
  template <typename Req>
  std::vector<net::RpcResult<typename Req::Response>>
  CallBatchAnonymousWithRetry(const std::vector<Req>& reqs);

  std::string name_;
  AgentConfig config_;
  P2drmSystem* system_;
  bignum::RandomSource* rng_;
  net::Rpc rpc_;
  SmartCard card_;
  CompliantDevice device_;
  std::vector<Coin> wallet_;
  RetryStats retry_stats_;
  // Retry/backoff observability ids (meaningful when config_.obs.registry
  // is set; registered in the constructor).
  obs::Registry::Id obs_retried_ = 0;
  obs::Registry::Id obs_backoff_ms_ = 0;
  obs::Registry::Id obs_exhausted_ = 0;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_AGENT_H_
