#ifndef P2DRM_CORE_METRICS_H_
#define P2DRM_CORE_METRICS_H_

/// \file metrics.h
/// \brief Crypto-operation counters for the protocol-cost table (RT-2).
///
/// Actors increment these explicitly at each public-key operation so a
/// bench can report "a P2DRM purchase costs S signatures, V verifications,
/// B blind-signature operations, E hybrid encryptions…" exactly.

#include <cstdint>
#include <string>

namespace p2drm {
namespace core {

/// Counts of public-key operations.
struct OpCounters {
  std::uint64_t sign = 0;         ///< RSA-FDH signatures produced
  std::uint64_t verify = 0;       ///< RSA-FDH verifications
  std::uint64_t blind_sign = 0;   ///< raw blind-signature operations
  std::uint64_t blind_prep = 0;   ///< client blinding/unblinding pairs
  std::uint64_t hybrid_enc = 0;   ///< RSA hybrid encryptions
  std::uint64_t hybrid_dec = 0;   ///< RSA hybrid decryptions
  std::uint64_t keygen = 0;       ///< RSA key generations

  OpCounters operator-(const OpCounters& o) const {
    return OpCounters{sign - o.sign,
                      verify - o.verify,
                      blind_sign - o.blind_sign,
                      blind_prep - o.blind_prep,
                      hybrid_enc - o.hybrid_enc,
                      hybrid_dec - o.hybrid_dec,
                      keygen - o.keygen};
  }

  std::uint64_t Total() const {
    return sign + verify + blind_sign + blind_prep + hybrid_enc + hybrid_dec +
           keygen;
  }

  std::string ToString() const {
    return "sign=" + std::to_string(sign) + " verify=" + std::to_string(verify) +
           " blind_sign=" + std::to_string(blind_sign) +
           " blind_prep=" + std::to_string(blind_prep) +
           " hyb_enc=" + std::to_string(hybrid_enc) +
           " hyb_dec=" + std::to_string(hybrid_dec) +
           " keygen=" + std::to_string(keygen);
  }
};

/// Process-wide counters (single-threaded protocol code).
OpCounters& GlobalOps();

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_METRICS_H_
