#ifndef P2DRM_CORE_METRICS_H_
#define P2DRM_CORE_METRICS_H_

/// \file metrics.h
/// \brief Crypto-operation counters for the protocol-cost table (RT-2).
///
/// Actors increment these explicitly at each public-key operation so a
/// bench can report "a P2DRM purchase costs S signatures, V verifications,
/// B blind-signature operations, E hybrid encryptions…" exactly.
///
/// Since the issuance pipeline moved RSA signing onto the server's shard
/// workers, the counters are sharded per thread: GlobalOps() hands every
/// thread its own shard (created on first use, kept for the process
/// lifetime so counts survive the thread), and AggregateOps() sums all
/// shards for the RT-2 table. Increment sites are unchanged —
/// `GlobalOps().sign += 1` now lands on the calling thread's shard — and
/// the shard fields are atomics, so an aggregate read concurrent with
/// worker increments is well-defined (each field is exact as of its own
/// load; relaxed ordering, no cross-field snapshot is implied).

#include <atomic>
#include <cstdint>
#include <string>

namespace p2drm {
namespace core {

/// Counts of public-key operations (a plain value: snapshot or delta).
struct OpCounters {
  std::uint64_t sign = 0;         ///< RSA-FDH signatures produced
  std::uint64_t verify = 0;       ///< RSA-FDH verifications
  std::uint64_t blind_sign = 0;   ///< raw blind-signature operations
  std::uint64_t blind_prep = 0;   ///< client blinding/unblinding pairs
  std::uint64_t hybrid_enc = 0;   ///< RSA hybrid encryptions
  std::uint64_t hybrid_dec = 0;   ///< RSA hybrid decryptions
  std::uint64_t keygen = 0;       ///< RSA key generations

  OpCounters operator-(const OpCounters& o) const {
    return OpCounters{sign - o.sign,
                      verify - o.verify,
                      blind_sign - o.blind_sign,
                      blind_prep - o.blind_prep,
                      hybrid_enc - o.hybrid_enc,
                      hybrid_dec - o.hybrid_dec,
                      keygen - o.keygen};
  }

  std::uint64_t Total() const {
    return sign + verify + blind_sign + blind_prep + hybrid_enc + hybrid_dec +
           keygen;
  }

  std::string ToString() const {
    return "sign=" + std::to_string(sign) + " verify=" + std::to_string(verify) +
           " blind_sign=" + std::to_string(blind_sign) +
           " blind_prep=" + std::to_string(blind_prep) +
           " hyb_enc=" + std::to_string(hybrid_enc) +
           " hyb_dec=" + std::to_string(hybrid_dec) +
           " keygen=" + std::to_string(keygen);
  }
};

/// One thread's counter shard. Field names mirror OpCounters so
/// increment sites read identically; the types are relaxed atomics so
/// AggregateOps() may read while the owning thread increments.
struct OpCountersShard {
  std::atomic<std::uint64_t> sign{0};
  std::atomic<std::uint64_t> verify{0};
  std::atomic<std::uint64_t> blind_sign{0};
  std::atomic<std::uint64_t> blind_prep{0};
  std::atomic<std::uint64_t> hybrid_enc{0};
  std::atomic<std::uint64_t> hybrid_dec{0};
  std::atomic<std::uint64_t> keygen{0};

  /// Relaxed per-field snapshot as a plain value.
  OpCounters Snapshot() const {
    OpCounters c;
    c.sign = sign.load(std::memory_order_relaxed);
    c.verify = verify.load(std::memory_order_relaxed);
    c.blind_sign = blind_sign.load(std::memory_order_relaxed);
    c.blind_prep = blind_prep.load(std::memory_order_relaxed);
    c.hybrid_enc = hybrid_enc.load(std::memory_order_relaxed);
    c.hybrid_dec = hybrid_dec.load(std::memory_order_relaxed);
    c.keygen = keygen.load(std::memory_order_relaxed);
    return c;
  }
};

/// The calling thread's counter shard (created on first use and retained
/// for the process lifetime). Writes through this reference are only
/// ever made by the owning thread; other threads may observe them via
/// AggregateOps().
OpCountersShard& GlobalOps();

/// Sum of every thread's shard, including threads that have exited.
/// Exact once the incrementing threads have quiesced (e.g. after
/// ServerRuntime::Drain() or a join); during concurrent increments each
/// field is a valid point-in-time lower bound.
OpCounters AggregateOps();

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_METRICS_H_
