#ifndef P2DRM_CORE_SYSTEM_H_
#define P2DRM_CORE_SYSTEM_H_

/// \file system.h
/// \brief Whole-system wiring: all server-side actors behind a Transport.
///
/// P2drmSystem owns the CA, TTP, bank and content provider. Each actor
/// gets a net::ServiceRegistry with typed handlers per protocol::Tag,
/// bound to an in-process Transport endpoint — the RPC envelope layer
/// (net/rpc.h) handles versioning, status codes and batching uniformly.
/// Endpoint names: "ca", "bank", "cp", "ttp".

#include <cstdint>
#include <memory>
#include <string>

#include "bignum/random_source.h"
#include "core/certification_authority.h"
#include "core/clock.h"
#include "core/content_provider.h"
#include "core/payment.h"
#include "core/ttp.h"
#include "net/rpc.h"
#include "net/transport.h"
#include "sim/virtual_clock.h"

namespace p2drm {
namespace core {

/// System-wide configuration.
struct SystemConfig {
  std::size_t ca_key_bits = 1024;
  std::size_t ttp_key_bits = 1024;
  std::size_t bank_key_bits = 1024;
  ContentProviderConfig cp;
  PaymentProviderConfig bank;
  net::LatencyModel latency;  ///< zero-cost by default
};

/// All server actors plus the transport connecting them to clients.
class P2drmSystem {
 public:
  /// Builds every actor (key generation happens here — slow at large
  /// modulus sizes) and registers the endpoints.
  P2drmSystem(const SystemConfig& config, bignum::RandomSource* rng);

  net::Transport& transport() { return transport_; }
  SimClock& clock() { return clock_; }
  /// The unified microsecond timebase: license expiry (clock()), wire
  /// latency (transport()) and scheduled waits (sim::EventLoop harnesses)
  /// all read and advance this one clock.
  sim::VirtualClock& timebase() { return timebase_; }
  CertificationAuthority& ca() { return *ca_; }
  TrustedThirdParty& ttp() { return *ttp_; }
  PaymentProvider& bank() { return *bank_; }
  ContentProvider& cp() { return *cp_; }

  /// Dispatch tables, exposed for harnesses that interpose an endpoint
  /// (fault injection) or tune the overload retry hint.
  net::ServiceRegistry& cp_service() { return cp_service_; }
  net::ServiceRegistry& bank_service() { return bank_service_; }

  /// Runs the fraud-handling pipeline: drains the CP's fraud-evidence
  /// queue, sends each item to the TTP over the wire, and — for every
  /// opened escrow — revokes the offending pseudonym key on the CP's CRL.
  /// Returns the de-anonymized card ids (for CA-side blacklisting).
  std::vector<std::uint64_t> ProcessFraud();

  /// Endpoint names.
  static constexpr const char* kCaEndpoint = "ca";
  static constexpr const char* kBankEndpoint = "bank";
  static constexpr const char* kCpEndpoint = "cp";
  static constexpr const char* kTtpEndpoint = "ttp";

 private:
  void RegisterEndpoints();

  // Declaration order matters: the timebase outlives its views/users.
  sim::VirtualClock timebase_;
  SimClock clock_;
  net::Transport transport_;
  std::unique_ptr<CertificationAuthority> ca_;
  std::unique_ptr<TrustedThirdParty> ttp_;
  std::unique_ptr<PaymentProvider> bank_;
  std::unique_ptr<ContentProvider> cp_;
  // Per-endpoint typed dispatch tables; bound into transport_ and
  // referenced by its handlers, so they live as long as the system.
  net::ServiceRegistry ca_service_;
  net::ServiceRegistry bank_service_;
  net::ServiceRegistry cp_service_;
  net::ServiceRegistry ttp_service_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_SYSTEM_H_
