#ifndef P2DRM_CORE_USAGE_STATS_H_
#define P2DRM_CORE_USAGE_STATS_H_

/// \file usage_stats.h
/// \brief Usage statistics without user tracking.
///
/// The economics of DRM need *usage* tracking — per-title play counts for
/// royalty distribution and capacity planning — but the paper's position
/// is that this must not become *user* tracking. This module implements
/// the collection side: devices report play events over the anonymous
/// channel, and each individual report is additionally protected by
/// randomized response (with probability 1-p the device reports a coin
/// flip instead of the truth), so even a provider that could somehow tie
/// a report to a user learns nothing it can rely on about that user —
/// while the per-title aggregate remains an unbiased, accurate estimator.

#include <cstdint>
#include <map>

#include "bignum/random_source.h"
#include "rel/ids.h"

namespace p2drm {
namespace core {

/// Device-side randomized-response encoder.
class RandomizedResponder {
 public:
  /// \param truth_probability p ∈ (0, 1]: report the truth with
  /// probability p, otherwise a fair coin. p = 1 disables the mechanism.
  explicit RandomizedResponder(double truth_probability);

  double truth_probability() const { return p_; }

  /// Encodes one boolean event ("I played title X this period").
  bool Respond(bool truth, bignum::RandomSource* rng) const;

  /// Plausible deniability of a single report: the posterior probability
  /// that the reported bit equals the true bit, assuming a uniform prior.
  /// p = 1 → 1.0 (no deniability); p → 0 → 0.5 (full deniability).
  double ReportConfidence() const { return p_ + (1.0 - p_) / 2.0; }

 private:
  double p_;
};

/// Provider-side aggregator with an unbiased de-noising estimator.
class UsageAggregator {
 public:
  explicit UsageAggregator(double truth_probability);

  /// Ingests one (anonymous) randomized report for \p content.
  void AddReport(rel::ContentId content, bool reported_bit);

  /// Raw affirmative reports for \p content (biased by the mechanism).
  std::uint64_t RawCount(rel::ContentId content) const;
  /// Total reports received for \p content.
  std::uint64_t TotalReports(rel::ContentId content) const;

  /// Unbiased estimate of the number of true play events:
  ///   n̂ = (raw − total·(1−p)/2) / p, clamped to [0, total].
  double EstimatedCount(rel::ContentId content) const;

 private:
  double p_;
  struct Counts {
    std::uint64_t affirmative = 0;
    std::uint64_t total = 0;
  };
  std::map<rel::ContentId, Counts> counts_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_USAGE_STATS_H_
