#include "core/metrics.h"

namespace p2drm {
namespace core {

OpCounters& GlobalOps() {
  static OpCounters counters;
  return counters;
}

}  // namespace core
}  // namespace p2drm
