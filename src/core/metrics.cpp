#include "core/metrics.h"

#include <deque>
#include <mutex>

namespace p2drm {
namespace core {

namespace {

/// All shards ever handed out. A deque never relocates elements, so the
/// thread-local references stay valid as new threads register; shards of
/// exited threads stay in place so their counts keep aggregating. The
/// registry is a function-local static, constructed on first use and
/// never destroyed before the last GlobalOps()/AggregateOps() caller in
/// practice (worker threads are joined by their owners before exit).
struct ShardRegistry {
  std::mutex m;
  std::deque<OpCountersShard> shards;
};

ShardRegistry& Registry() {
  static ShardRegistry* registry = new ShardRegistry();  // never destroyed
  return *registry;
}

}  // namespace

OpCountersShard& GlobalOps() {
  thread_local OpCountersShard* shard = [] {
    ShardRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.m);
    reg.shards.emplace_back();
    return &reg.shards.back();
  }();
  return *shard;
}

OpCounters AggregateOps() {
  ShardRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.m);
  OpCounters total;
  for (const OpCountersShard& shard : reg.shards) {
    OpCounters c = shard.Snapshot();
    total.sign += c.sign;
    total.verify += c.verify;
    total.blind_sign += c.blind_sign;
    total.blind_prep += c.blind_prep;
    total.hybrid_enc += c.hybrid_enc;
    total.hybrid_dec += c.hybrid_dec;
    total.keygen += c.keygen;
  }
  return total;
}

}  // namespace core
}  // namespace p2drm
