#ifndef P2DRM_CORE_DELEGATION_H_
#define P2DRM_CORE_DELEGATION_H_

/// \file delegation.h
/// \brief Star licenses: user-attributed restrictions on licenses.
///
/// The follow-up work to the P2DRM paper ("User-Attributed Rights in
/// DRM") lets a license *holder* — not the provider — attach further
/// restrictions when letting someone else use their content: a parent
/// capping a child's plays, an owner lending with an expiry. The
/// mechanism is a delegation ("star") license: a statement signed with
/// the pseudonym key the parent license is bound to, naming a delegate
/// and a restriction. Compliant devices enforce the *intersection* of
/// the parent rights and the restriction, so delegation can only ever
/// narrow what the provider granted.

#include <cstdint>
#include <string>
#include <vector>

#include "core/smartcard.h"
#include "crypto/rsa.h"
#include "net/codec.h"
#include "rel/ids.h"
#include "rel/license.h"
#include "rel/rights.h"

namespace p2drm {
namespace core {

/// A user-issued delegation license.
struct DelegationLicense {
  rel::LicenseId id;            ///< unique id of this delegation
  rel::LicenseId parent_id;     ///< the provider license being restricted
  rel::KeyFingerprint delegator;  ///< == parent license bound key
  /// Identifier of the delegate (a card master-key fingerprint, a named
  /// profile hash — opaque to the enforcement logic).
  rel::KeyFingerprint delegate;
  rel::Rights restrictions;     ///< effective rights = parent ∩ restrictions
  std::uint64_t created_at_s = 0;
  std::vector<std::uint8_t> delegator_signature;

  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static DelegationLicense Deserialize(const std::vector<std::uint8_t>& b);
};

/// Validation outcome for a delegation against its parent license.
enum class DelegationCheck : std::uint8_t {
  kOk = 0,
  kWrongParent = 1,     ///< parent id / delegator key mismatch
  kBadSignature = 2,    ///< not signed by the parent's bound key
  kNotDelegable = 3,    ///< parent rights do not include play at all
};

const char* DelegationCheckName(DelegationCheck c);

/// Builds and signs a delegation with the delegator's card. Returns false
/// when the card does not hold the pseudonym the parent is bound to.
bool CreateDelegation(SmartCard* delegator_card, const rel::License& parent,
                      const rel::KeyFingerprint& delegate,
                      const rel::Rights& restrictions,
                      std::uint64_t now_epoch_s, bignum::RandomSource* rng,
                      DelegationLicense* out);

/// Verifies a delegation against its parent license and the delegator's
/// public key (the key the provider bound the parent license to).
DelegationCheck ValidateDelegation(const DelegationLicense& delegation,
                                   const rel::License& parent,
                                   const crypto::RsaPublicKey& delegator_key);

/// The rights a delegate actually enjoys: parent ∩ restrictions.
rel::Rights EffectiveRights(const DelegationLicense& delegation,
                            const rel::License& parent);

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_DELEGATION_H_
