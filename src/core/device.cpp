#include "core/device.h"

#include "core/metrics.h"
#include "crypto/chacha20.h"

namespace p2drm {
namespace core {

CompliantDevice::CompliantDevice(std::string name,
                                 std::uint8_t security_level,
                                 const Clock* clock,
                                 bignum::RandomSource* rng)
    : name_(std::move(name)),
      security_level_(security_level),
      clock_(clock),
      key_(crypto::GenerateRsaKey(512, rng)),
      public_key_(key_.PublicKey()) {
  GlobalOps().keygen += 1;
}

void CompliantDevice::InstallCertificate(DeviceCertificate cert) {
  certificate_ = std::move(cert);
}

bool CompliantDevice::InstallLicense(const rel::License& license,
                                     const crypto::RsaPublicKey& provider_key) {
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(provider_key, license.CanonicalBytes(),
                            license.issuer_signature)) {
    return false;
  }
  licenses_[license.id] = Held{license, rel::UsageState{}};
  return true;
}

std::vector<const rel::License*> CompliantDevice::LicensesFor(
    rel::ContentId content) const {
  std::vector<const rel::License*> out;
  for (const auto& [id, held] : licenses_) {
    (void)id;
    if (held.license.content_id == content) out.push_back(&held.license);
  }
  return out;
}

const rel::License* CompliantDevice::FindLicense(
    const rel::LicenseId& id) const {
  auto it = licenses_.find(id);
  return it == licenses_.end() ? nullptr : &it->second.license;
}

bool CompliantDevice::RemoveLicense(const rel::LicenseId& id) {
  return licenses_.erase(id) != 0;
}

void CompliantDevice::UpdateCrl(const store::RevocationList& crl) {
  if (crl.Version() <= crl_version_) return;  // stale or same snapshot
  revoked_.clear();
  for (const auto& entry : crl.Entries()) revoked_.insert(entry);
  crl_version_ = crl.Version();
}

UseResult CompliantDevice::Use(rel::ContentId content, rel::Action action,
                               SmartCard* card,
                               const EncryptedContent& encrypted) {
  UseResult result;
  if (encrypted.content_id != content) {
    result.error = "content blob does not match requested id";
    return result;
  }

  // Pick the first license that grants the action; remember the last
  // rights-based denial for diagnostics.
  Held* chosen = nullptr;
  rel::Decision last_denial = rel::Decision::kDeniedAction;
  for (auto& [id, held] : licenses_) {
    (void)id;
    if (held.license.content_id != content) continue;
    rel::Decision d =
        rel::Evaluate(held.license.rights, held.state, action,
                      clock_->NowEpochSeconds(), security_level_);
    if (d == rel::Decision::kAllow) {
      chosen = &held;
      break;
    }
    last_denial = d;
  }
  if (chosen == nullptr) {
    result.decision = last_denial;
    result.error = "no license grants the action";
    return result;
  }

  // A compliant device refuses revoked pseudonyms even with a valid
  // license (CRL enforcement on the consumption path).
  if (revoked_.count(chosen->license.bound_key) != 0) {
    result.decision = rel::Decision::kDeniedAction;
    result.error = "bound pseudonym is revoked";
    return result;
  }

  if (action == rel::Action::kTransfer || action == rel::Action::kCopy) {
    // Non-rendering actions: permission established, nothing to decrypt.
    result.decision = rel::Decision::kAllow;
    return result;
  }

  std::vector<std::uint8_t> content_key;
  if (card == nullptr ||
      !card->UnwrapContentKey(chosen->license.bound_key,
                              chosen->license.wrapped_content_key,
                              &content_key) ||
      content_key.size() != 32) {
    result.decision = rel::Decision::kDeniedAction;
    result.error = "card cannot unwrap content key";
    return result;
  }

  std::array<std::uint8_t, 32> ck;
  std::copy(content_key.begin(), content_key.end(), ck.begin());
  crypto::ChaCha20 cipher(ck, encrypted.nonce);
  result.plaintext = cipher.Crypt(encrypted.ciphertext);
  result.decision = rel::Decision::kAllow;

  if (action == rel::Action::kPlay) {
    chosen->state.plays_used += 1;
  }
  return result;
}

std::uint32_t CompliantDevice::PlaysUsed(const rel::LicenseId& id) const {
  auto it = licenses_.find(id);
  return it == licenses_.end() ? 0 : it->second.state.plays_used;
}

DelegationCheck CompliantDevice::InstallDelegation(
    const DelegationLicense& delegation,
    const crypto::RsaPublicKey& delegator_key) {
  auto parent = licenses_.find(delegation.parent_id);
  if (parent == licenses_.end()) return DelegationCheck::kWrongParent;
  DelegationCheck check =
      ValidateDelegation(delegation, parent->second.license, delegator_key);
  if (check != DelegationCheck::kOk) return check;
  delegations_[delegation.id] =
      HeldDelegation{delegation, rel::UsageState{}};
  return DelegationCheck::kOk;
}

UseResult CompliantDevice::UseDelegated(const rel::LicenseId& delegation_id,
                                        rel::Action action,
                                        SmartCard* delegator_card,
                                        const EncryptedContent& encrypted) {
  UseResult result;
  auto dit = delegations_.find(delegation_id);
  if (dit == delegations_.end()) {
    result.error = "no such delegation installed";
    return result;
  }
  HeldDelegation& held = dit->second;
  auto pit = licenses_.find(held.delegation.parent_id);
  if (pit == licenses_.end()) {
    // The parent was removed (e.g. transferred away): the delegation dies
    // with it.
    result.error = "parent license no longer installed";
    return result;
  }
  const rel::License& parent = pit->second.license;
  if (encrypted.content_id != parent.content_id) {
    result.error = "content blob does not match delegated license";
    return result;
  }
  if (revoked_.count(parent.bound_key) != 0) {
    result.error = "bound pseudonym is revoked";
    return result;
  }

  rel::Rights effective = EffectiveRights(held.delegation, parent);
  rel::Decision d = rel::Evaluate(effective, held.state, action,
                                  clock_->NowEpochSeconds(), security_level_);
  if (d != rel::Decision::kAllow) {
    result.decision = d;
    return result;
  }
  // The parent's own meter also applies: a delegate cannot stretch an
  // exhausted parent license.
  rel::Decision parent_d =
      rel::Evaluate(parent.rights, pit->second.state, action,
                    clock_->NowEpochSeconds(), security_level_);
  if (parent_d != rel::Decision::kAllow) {
    result.decision = parent_d;
    return result;
  }

  std::vector<std::uint8_t> content_key;
  if (delegator_card == nullptr ||
      !delegator_card->UnwrapContentKey(parent.bound_key,
                                        parent.wrapped_content_key,
                                        &content_key) ||
      content_key.size() != 32) {
    result.decision = rel::Decision::kDeniedAction;
    result.error = "card cannot unwrap content key";
    return result;
  }
  std::array<std::uint8_t, 32> ck;
  std::copy(content_key.begin(), content_key.end(), ck.begin());
  crypto::ChaCha20 cipher(ck, encrypted.nonce);
  result.plaintext = cipher.Crypt(encrypted.ciphertext);
  result.decision = rel::Decision::kAllow;
  if (action == rel::Action::kPlay) {
    held.state.plays_used += 1;
    pit->second.state.plays_used += 1;
  }
  return result;
}

std::uint32_t CompliantDevice::DelegatedPlaysUsed(
    const rel::LicenseId& delegation_id) const {
  auto it = delegations_.find(delegation_id);
  return it == delegations_.end() ? 0 : it->second.state.plays_used;
}

}  // namespace core
}  // namespace p2drm
