#include "core/certification_authority.h"

#include <stdexcept>

#include "core/metrics.h"
#include "crypto/blind_rsa.h"
#include "crypto/sha256.h"

namespace p2drm {
namespace core {

CertificationAuthority::CertificationAuthority(std::size_t modulus_bits,
                                               bignum::RandomSource* rng)
    : key_(crypto::GenerateRsaKey(modulus_bits, rng)),
      public_key_(key_.PublicKey()) {
  GlobalOps().keygen += 1;
}

IdentityCertificate CertificationAuthority::Enrol(
    const std::string& holder_name, const crypto::RsaPublicKey& master_key) {
  IdentityCertificate cert;
  cert.holder_name = holder_name;
  cert.card_id = next_card_id_++;
  cert.master_key = master_key;
  cert.ca_signature = crypto::RsaSignFdh(key_, cert.CanonicalBytes());
  GlobalOps().sign += 1;
  card_holders_[cert.card_id] = holder_name;
  return cert;
}

bignum::BigInt CertificationAuthority::SignPseudonymBlinded(
    std::uint64_t card_id, const bignum::BigInt& blinded) {
  auto it = card_holders_.find(card_id);
  if (it == card_holders_.end()) {
    throw std::invalid_argument("CA: unknown card id");
  }
  pseudonym_counts_[card_id] += 1;
  GlobalOps().blind_sign += 1;
  return crypto::SignBlinded(key_, blinded);
}

DeviceCertificate CertificationAuthority::CertifyDevice(
    const crypto::RsaPublicKey& device_key, std::uint8_t security_level) {
  DeviceCertificate cert;
  cert.device_id = device_key.Fingerprint();
  cert.device_key = device_key;
  cert.security_level = security_level;
  cert.ca_signature = crypto::RsaSignFdh(key_, cert.CanonicalBytes());
  GlobalOps().sign += 1;
  return cert;
}

std::uint64_t CertificationAuthority::PseudonymsIssued(
    std::uint64_t card_id) const {
  auto it = pseudonym_counts_.find(card_id);
  return it == pseudonym_counts_.end() ? 0 : it->second;
}

std::string CertificationAuthority::HolderName(std::uint64_t card_id) const {
  auto it = card_holders_.find(card_id);
  if (it == card_holders_.end()) {
    throw std::invalid_argument("CA: unknown card id");
  }
  return it->second;
}

}  // namespace core
}  // namespace p2drm
