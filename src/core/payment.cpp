#include "core/payment.h"

#include <stdexcept>

#include "core/metrics.h"
#include "crypto/blind_rsa.h"
#include "net/codec.h"

namespace p2drm {
namespace core {

std::vector<std::uint8_t> Coin::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(0x21);  // domain tag: coin
  w.Fixed(serial);
  w.U32(denomination);
  return w.Take();
}

std::vector<std::uint8_t> Coin::Serialize() const {
  net::ByteWriter w;
  w.Fixed(serial);
  w.U32(denomination);
  w.Blob(signature);
  return w.Take();
}

Coin Coin::Deserialize(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  Coin c;
  c.serial = r.Fixed<16>();
  c.denomination = r.U32();
  c.signature = r.Blob();
  r.ExpectEnd();
  return c;
}

const std::vector<std::uint32_t>& PaymentProvider::Denominations() {
  static const std::vector<std::uint32_t> kDenoms = {1, 2, 5, 10, 20, 50, 100};
  return kDenoms;
}

PaymentProvider::PaymentProvider(std::size_t modulus_bits,
                                 bignum::RandomSource* rng) {
  for (std::uint32_t d : Denominations()) {
    denom_keys_.emplace(d, crypto::GenerateRsaKey(modulus_bits, rng));
    denom_pub_.emplace(d, denom_keys_.at(d).PublicKey());
    GlobalOps().keygen += 1;
  }
}

const crypto::RsaPublicKey& PaymentProvider::DenominationKey(
    std::uint32_t denomination) const {
  auto it = denom_pub_.find(denomination);
  if (it == denom_pub_.end()) {
    throw std::invalid_argument("PaymentProvider: unknown denomination");
  }
  return it->second;
}

void PaymentProvider::OpenAccount(const std::string& account,
                                  std::uint64_t balance) {
  accounts_[account] = balance;
}

std::uint64_t PaymentProvider::Balance(const std::string& account) const {
  auto it = accounts_.find(account);
  if (it == accounts_.end()) {
    throw std::invalid_argument("PaymentProvider: unknown account");
  }
  return it->second;
}

Status PaymentProvider::Withdraw(const std::string& account,
                                 std::uint32_t denomination,
                                 const bignum::BigInt& blinded,
                                 bignum::BigInt* blind_sig) {
  auto acct = accounts_.find(account);
  if (acct == accounts_.end()) return Status::kUnknownAccount;
  auto key = denom_keys_.find(denomination);
  if (key == denom_keys_.end()) return Status::kBadRequest;
  if (acct->second < denomination) return Status::kInsufficientFunds;

  acct->second -= denomination;
  GlobalOps().blind_sign += 1;
  *blind_sig = crypto::SignBlinded(key->second, blinded);
  return Status::kOk;
}

Status PaymentProvider::Deposit(const Coin& coin,
                                const std::string& merchant_account) {
  auto acct = accounts_.find(merchant_account);
  if (acct == accounts_.end()) return Status::kUnknownAccount;
  auto key = denom_pub_.find(coin.denomination);
  if (key == denom_pub_.end()) return Status::kBadRequest;

  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(key->second, coin.CanonicalBytes(),
                            coin.signature)) {
    return Status::kPaymentFailed;
  }
  rel::LicenseId serial_key;
  serial_key.bytes = coin.serial;
  if (!spent_serials_.Insert(serial_key)) {
    ++double_spend_attempts_;
    return Status::kDoubleSpend;
  }
  acct->second += coin.denomination;
  ++deposited_coins_;
  return Status::kOk;
}

Status PaymentProvider::DirectDebit(const std::string& account,
                                    const std::string& payee,
                                    std::uint64_t amount,
                                    std::uint64_t timestamp_s) {
  auto acct = accounts_.find(account);
  if (acct == accounts_.end()) return Status::kUnknownAccount;
  auto to = accounts_.find(payee);
  if (to == accounts_.end()) return Status::kUnknownAccount;
  if (acct->second < amount) return Status::kInsufficientFunds;
  acct->second -= amount;
  to->second += amount;
  debit_log_.push_back(DebitRecord{account, payee, amount, timestamp_s});
  return Status::kOk;
}

std::vector<std::uint32_t> PlanCoins(std::uint64_t amount) {
  std::vector<std::uint32_t> plan;
  const auto& denoms = PaymentProvider::Denominations();
  for (auto it = denoms.rbegin(); it != denoms.rend(); ++it) {
    while (amount >= *it) {
      plan.push_back(*it);
      amount -= *it;
    }
  }
  return plan;  // denominations include 1, so amount is now 0
}

}  // namespace core
}  // namespace p2drm
