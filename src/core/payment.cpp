#include "core/payment.h"

#include <algorithm>
#include <stdexcept>

#include "core/metrics.h"
#include "crypto/blind_rsa.h"
#include "net/codec.h"
#include "server/batch_pipeline.h"

namespace p2drm {
namespace core {

std::vector<std::uint8_t> Coin::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(0x21);  // domain tag: coin
  w.Fixed(serial);
  w.U32(denomination);
  return w.Take();
}

std::vector<std::uint8_t> Coin::Serialize() const {
  net::ByteWriter w;
  w.Fixed(serial);
  w.U32(denomination);
  w.Blob(signature);
  return w.Take();
}

Coin Coin::Deserialize(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  Coin c;
  c.serial = r.Fixed<16>();
  c.denomination = r.U32();
  c.signature = r.Blob();
  r.ExpectEnd();
  return c;
}

const std::vector<std::uint32_t>& PaymentProvider::Denominations() {
  static const std::vector<std::uint32_t> kDenoms = {1, 2, 5, 10, 20, 50, 100};
  return kDenoms;
}

PaymentProvider::PaymentProvider(std::size_t modulus_bits,
                                 bignum::RandomSource* rng,
                                 const PaymentProviderConfig& config)
    : config_(config), rng_(rng) {
  for (std::uint32_t d : Denominations()) {
    denom_keys_.emplace(d, crypto::GenerateRsaKey(modulus_bits, rng));
    denom_pub_.emplace(d, denom_keys_.at(d).PublicKey());
    GlobalOps().keygen += 1;
  }
  if (config_.deposit_shards > 0) {
    server::ServerRuntimeConfig rt;
    rt.shard_count = config_.deposit_shards;
    rt.queue_capacity = config_.deposit_queue_capacity;
    runtime_ = std::make_unique<server::ServerRuntime>(rt);
  }
  // Streaming deposits never fan out to a signer pool (there is no issue
  // stage); the staged pipeline contributes only its deferred-commit
  // window, so it is cheap to keep around unconditionally.
  server::StagedBatchPipeline::Config staged;
  staged.max_batches_in_flight = config_.max_batches_in_flight;
  staged_ = std::make_unique<server::StagedBatchPipeline>(std::move(staged));
}

PaymentProvider::~PaymentProvider() = default;

rel::LicenseId PaymentProvider::SerialKey(const Coin& coin) {
  rel::LicenseId key;
  key.bytes = coin.serial;
  return key;
}

Status PaymentProvider::SpendSerial(const Coin& coin) {
  Status s = runtime_ != nullptr
                 ? runtime_->SpendOne(SerialKey(coin))
                 : (spent_serials_.Insert(SerialKey(coin))
                        ? Status::kOk
                        : Status::kAlreadySpent);
  return s == Status::kOk ? Status::kOk : Status::kDoubleSpend;
}

const crypto::RsaPublicKey& PaymentProvider::DenominationKey(
    std::uint32_t denomination) const {
  auto it = denom_pub_.find(denomination);
  if (it == denom_pub_.end()) {
    throw std::invalid_argument("PaymentProvider: unknown denomination");
  }
  return it->second;
}

void PaymentProvider::OpenAccount(const std::string& account,
                                  std::uint64_t balance) {
  accounts_[account] = balance;
}

std::uint64_t PaymentProvider::Balance(const std::string& account) const {
  auto it = accounts_.find(account);
  if (it == accounts_.end()) {
    throw std::invalid_argument("PaymentProvider: unknown account");
  }
  return it->second;
}

Status PaymentProvider::Withdraw(const std::string& account,
                                 std::uint32_t denomination,
                                 const bignum::BigInt& blinded,
                                 bignum::BigInt* blind_sig) {
  auto acct = accounts_.find(account);
  if (acct == accounts_.end()) return Status::kUnknownAccount;
  auto key = denom_keys_.find(denomination);
  if (key == denom_keys_.end()) return Status::kBadRequest;
  if (acct->second < denomination) return Status::kInsufficientFunds;

  acct->second -= denomination;
  GlobalOps().blind_sign += 1;
  *blind_sig = crypto::SignBlinded(key->second, blinded);
  return Status::kOk;
}

Status PaymentProvider::Deposit(const Coin& coin,
                                const std::string& merchant_account) {
  auto acct = accounts_.find(merchant_account);
  if (acct == accounts_.end()) return Status::kUnknownAccount;
  auto key = denom_pub_.find(coin.denomination);
  if (key == denom_pub_.end()) return Status::kBadRequest;

  GlobalOps().verify += 1;
  if (!verifier_.VerifyFdh(key->second, coin.CanonicalBytes(),
                           coin.signature)) {
    return Status::kPaymentFailed;
  }
  Status spend = SpendSerial(coin);
  if (spend != Status::kOk) {
    ++double_spend_attempts_;
    return spend;
  }
  acct->second += coin.denomination;
  ++deposited_coins_;
  return Status::kOk;
}

/// Per-batch deposit state, heap-boxed so the streaming path can keep a
/// batch alive between submission and its deferred commit. `items`
/// borrows from the caller on the synchronous path (Run completes before
/// DepositBatch returns) and points at `owned` on the streaming path.
struct PaymentProvider::DepositBatchState {
  std::vector<DepositItem> owned;
  const std::vector<DepositItem>* items = nullptr;
  std::vector<Status> out;
};

server::BatchPipeline::Plan PaymentProvider::BuildDepositPlan(
    std::shared_ptr<DepositBatchState> st, bool shed_on_full) {
  const std::vector<DepositItem>& items = *st->items;
  st->out.assign(items.size(), Status::kBadRequest);

  server::BatchPipeline::Plan plan;
  plan.item_count = items.size();

  // Verify: account/denomination lookups, then ONE screened same-key
  // verification per denomination group — the key *is* the
  // denomination, so a retail batch collapses to a handful of group
  // checks on cached Montgomery contexts.
  plan.verify = [this, st] {
    const std::vector<DepositItem>& items = *st->items;
    server::BatchVerifierStats before = verifier_.stats();
    std::map<std::uint32_t, std::vector<std::size_t>> by_denom;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (accounts_.find(items[i].merchant_account) == accounts_.end()) {
        st->out[i] = Status::kUnknownAccount;
      } else if (denom_pub_.find(items[i].coin.denomination) ==
                 denom_pub_.end()) {
        st->out[i] = Status::kBadRequest;
      } else {
        by_denom[items[i].coin.denomination].push_back(i);
      }
    }
    std::vector<std::size_t> eligible;
    eligible.reserve(items.size());
    for (const auto& [denom, group] : by_denom) {
      std::vector<std::vector<std::uint8_t>> msgs;
      std::vector<std::vector<std::uint8_t>> sigs;
      msgs.reserve(group.size());
      sigs.reserve(group.size());
      for (std::size_t i : group) {
        msgs.push_back(items[i].coin.CanonicalBytes());
        sigs.push_back(items[i].coin.signature);
      }
      std::vector<bool> ok =
          verifier_.VerifySameKeyBatch(denom_pub_.at(denom), msgs, sigs, rng_);
      for (std::size_t j = 0; j < group.size(); ++j) {
        if (ok[j]) {
          eligible.push_back(group[j]);
        } else {
          st->out[group[j]] = Status::kPaymentFailed;
        }
      }
    }
    // Grouping by denomination reorders; the pipeline's stage contracts
    // (fork draw, commit) are index-ordered, so restore that order.
    std::sort(eligible.begin(), eligible.end());
    GlobalOps().verify += (verifier_.stats() - before).full_verifies;
    return eligible;
  };

  // Mutate: serial inserts on each coin's home shard — duplicates
  // within the batch resolve there in index order, first wins.
  plan.mutate = [this, st, shed_on_full](const std::vector<std::size_t>& eligible) {
    const std::vector<DepositItem>& items = *st->items;
    std::vector<Status> spend;
    if (runtime_ != nullptr) {
      std::vector<rel::LicenseId> serials;
      serials.reserve(eligible.size());
      for (std::size_t i : eligible) serials.push_back(SerialKey(items[i].coin));
      runtime_->SpendBatch(serials, &spend, shed_on_full);
    } else {
      spend.reserve(eligible.size());
      for (std::size_t i : eligible) {
        spend.push_back(spent_serials_.Insert(SerialKey(items[i].coin))
                            ? Status::kOk
                            : Status::kAlreadySpent);
      }
    }
    // A repeated serial is a double-spent coin, not a re-redeemed
    // license: surface the typed payment status.
    for (Status& s : spend) {
      if (s == Status::kAlreadySpent) s = Status::kDoubleSpend;
    }
    return spend;
  };

  // No issue stage: deposits sign nothing. Commit credits the accounts
  // on the dispatch thread in index order — exactly one credit per
  // fresh serial.
  plan.commit = [this, st](std::size_t k, std::size_t i, Status) {
    (void)k;
    const DepositItem& item = (*st->items)[i];
    accounts_[item.merchant_account] += item.coin.denomination;
    ++deposited_coins_;
    st->out[i] = Status::kOk;
  };
  plan.reject = [this, st](std::size_t i, Status s) {
    if (s == Status::kDoubleSpend) ++double_spend_attempts_;
    st->out[i] = s;
  };
  return plan;
}

std::vector<Status> PaymentProvider::DepositBatch(
    const std::vector<DepositItem>& items, bool shed_on_full) {
  if (items.empty()) return {};

  auto st = std::make_shared<DepositBatchState>();
  st->items = &items;  // borrowed: Run completes before we return
  server::BatchPipeline::Plan plan = BuildDepositPlan(st, shed_on_full);
  server::BatchPipeline::Run(plan, nullptr, nullptr, &obs_deposit_);
  return std::move(st->out);
}

void PaymentProvider::StreamDepositBatch(
    std::vector<DepositItem> items,
    std::function<void(std::vector<Status>)> on_done, bool shed_on_full) {
  if (items.empty()) {
    if (on_done != nullptr) on_done({});
    return;
  }
  auto st = std::make_shared<DepositBatchState>();
  st->owned = std::move(items);
  st->items = &st->owned;
  staged_->Submit(BuildDepositPlan(st, shed_on_full), &obs_deposit_,
                  [st, cb = std::move(on_done)] {
                    if (cb != nullptr) cb(std::move(st->out));
                  });
}

server::BatchPipelineTimings PaymentProvider::FlushDeposits() {
  return staged_->Flush();
}

void PaymentProvider::set_observability(const obs::Sink& sink,
                                        const std::string& prefix) {
  obs_deposit_.tracer = sink.tracer;
  obs_deposit_.registry = sink.registry;
  obs_deposit_.span_verify = "deposit.verify";
  obs_deposit_.span_mutate = "deposit.spend";
  obs_deposit_.span_issue = "deposit.issue";
  if (sink.registry != nullptr) {
    const std::string base = prefix + "pipeline.deposit.";
    obs_deposit_.hist_verify_us = sink.registry->Histogram(base + "verify_us");
    obs_deposit_.hist_mutate_us = sink.registry->Histogram(base + "mutate_us");
    obs_deposit_.hist_issue_us = sink.registry->Histogram(base + "issue_us");
    obs_deposit_.ctr_items = sink.registry->Counter(base + "items");
    obs_deposit_.ctr_shed = sink.registry->Counter(base + "shed");
  }
  if (runtime_ != nullptr) {
    runtime_->set_observability(sink.registry, prefix + "deposit_runtime.");
  }
}

Status PaymentProvider::DirectDebit(const std::string& account,
                                    const std::string& payee,
                                    std::uint64_t amount,
                                    std::uint64_t timestamp_s) {
  auto acct = accounts_.find(account);
  if (acct == accounts_.end()) return Status::kUnknownAccount;
  auto to = accounts_.find(payee);
  if (to == accounts_.end()) return Status::kUnknownAccount;
  if (acct->second < amount) return Status::kInsufficientFunds;
  acct->second -= amount;
  to->second += amount;
  debit_log_.push_back(DebitRecord{account, payee, amount, timestamp_s});
  return Status::kOk;
}

std::vector<std::uint32_t> PlanCoins(std::uint64_t amount) {
  std::vector<std::uint32_t> plan;
  const auto& denoms = PaymentProvider::Denominations();
  for (auto it = denoms.rbegin(); it != denoms.rend(); ++it) {
    while (amount >= *it) {
      plan.push_back(*it);
      amount -= *it;
    }
  }
  return plan;  // denominations include 1, so amount is now 0
}

}  // namespace core
}  // namespace p2drm
