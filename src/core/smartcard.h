#ifndef P2DRM_CORE_SMARTCARD_H_
#define P2DRM_CORE_SMARTCARD_H_

/// \file smartcard.h
/// \brief The user's smart card: key custody and pseudonym management.
///
/// The card is the user-side trusted element the paper assumes. It holds
/// the master identity key, mints fresh pseudonym key pairs, builds the
/// TTP identity escrow, runs the blinding side of the pseudonym-issuance
/// protocol, and performs private-key operations (license content-key
/// unwrapping, transfer possession proofs) without ever exporting keys.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/certificates.h"
#include "crypto/blind_rsa.h"
#include "crypto/rsa.h"
#include "rel/ids.h"

namespace p2drm {
namespace core {

/// A pseudonym held by the card: private key + its blind-signed certificate.
struct Pseudonym {
  crypto::RsaPrivateKey key;
  PseudonymCertificate cert;
  std::uint64_t purchases_used = 0;  ///< linkability accounting (RF-4)
};

/// In-flight pseudonym issuance (between blind request and CA response).
struct PseudonymRequest {
  crypto::RsaPrivateKey key;
  std::vector<std::uint8_t> escrow;
  crypto::BlindingContext blinding;
};

/// The smart card actor.
class SmartCard {
 public:
  /// \param holder_name real identity for enrolment
  /// \param pseudonym_bits modulus size for pseudonym keys
  /// \param rng card-internal randomness
  SmartCard(std::string holder_name, std::size_t pseudonym_bits,
            bignum::RandomSource* rng);

  const std::string& holder_name() const { return holder_name_; }
  const crypto::RsaPublicKey& MasterKey() const { return master_public_; }

  /// Installs the enrolment result.
  void StoreIdentityCertificate(IdentityCertificate cert);
  bool IsEnrolled() const { return enrolled_; }
  std::uint64_t CardId() const;

  /// Builds a pseudonym-issuance request: fresh key pair, escrow of the
  /// card id under \p ttp_key, and the blinded certificate hash for the CA.
  /// Requires prior enrolment.
  PseudonymRequest BeginPseudonym(const crypto::RsaPublicKey& ca_key,
                                  const crypto::RsaPublicKey& ttp_key);

  /// Completes issuance: unblinds the CA's response, verifies the resulting
  /// certificate, stores and returns the pseudonym. Returns nullptr when
  /// the signature does not verify (dishonest CA).
  Pseudonym* FinishPseudonym(PseudonymRequest request,
                             const bignum::BigInt& blind_signature,
                             const crypto::RsaPublicKey& ca_key);

  /// Pseudonym selection policy: returns a pseudonym that has been used for
  /// fewer than \p max_uses purchases, or nullptr if a fresh one is needed.
  Pseudonym* UsablePseudonym(std::uint64_t max_uses);

  /// All pseudonyms minted by this card (analysis / tests).
  const std::vector<std::unique_ptr<Pseudonym>>& pseudonyms() const {
    return pseudonyms_;
  }

  /// Finds the pseudonym whose key fingerprint is \p id (nullptr if none).
  Pseudonym* FindPseudonym(const rel::KeyFingerprint& id);

  /// Card-internal private-key operation: unwraps a license content key
  /// bound to one of this card's pseudonyms. Returns false when the
  /// pseudonym is unknown or the ciphertext fails authentication.
  bool UnwrapContentKey(const rel::KeyFingerprint& pseudonym_id,
                        const std::vector<std::uint8_t>& wrapped,
                        std::vector<std::uint8_t>* content_key);

  /// Signs \p message with the pseudonym's private key (possession proof
  /// for transfer). Returns empty when the pseudonym is unknown.
  std::vector<std::uint8_t> SignWithPseudonym(
      const rel::KeyFingerprint& pseudonym_id,
      const std::vector<std::uint8_t>& message);

 private:
  std::string holder_name_;
  std::size_t pseudonym_bits_;
  bignum::RandomSource* rng_;
  crypto::RsaPrivateKey master_key_;
  crypto::RsaPublicKey master_public_;
  bool enrolled_ = false;
  IdentityCertificate identity_;
  std::vector<std::unique_ptr<Pseudonym>> pseudonyms_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_SMARTCARD_H_
