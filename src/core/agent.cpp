#include "core/agent.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "core/metrics.h"
#include "core/protocol.h"
#include "crypto/blind_rsa.h"

namespace p2drm {
namespace core {

namespace proto = protocol;

namespace {

// Coins a failed batch item could refund (purchases carry payment,
// redeems carry none).
const std::vector<Coin>* PaymentOf(const proto::PurchaseRequest& req) {
  return &req.payment;
}
const std::vector<Coin>* PaymentOf(const proto::RedeemRequest&) {
  return nullptr;
}

// True for statuses that guarantee the server never executed the
// request, so coins it carried are still the client's: the RPC-layer
// codes produced before a handler runs, and kOverloaded — the batch
// pipeline's shed contract is "before any state change" (the coins were
// not deposited; docs/server.md). Other actor-produced statuses
// (kBadRequest included — ContentProvider returns it too) stay
// ambiguous: no refund, matching the pre-batching semantics.
bool ProvablyNotExecuted(Status s) {
  return s == Status::kUnavailable || s == Status::kVersionMismatch ||
         s == Status::kUnknownTag || s == Status::kOverloaded;
}

}  // namespace

UserAgent::UserAgent(const std::string& name, const AgentConfig& config,
                     P2drmSystem* system, bignum::RandomSource* rng)
    : name_(name),
      config_(config),
      system_(system),
      rng_(rng),
      rpc_(&system->transport(), name),
      card_(name, config.pseudonym_bits, rng),
      device_(name + "-device", config.device_security_level,
              &system->clock(), rng) {
  system_->bank().OpenAccount(name_, config_.initial_bank_balance);

  if (config_.obs.registry != nullptr) {
    obs_retried_ = config_.obs.registry->Counter("agent.retried_items");
    obs_backoff_ms_ = config_.obs.registry->Counter("agent.backoff_ms");
    obs_exhausted_ = config_.obs.registry->Counter("agent.exhausted_items");
  }

  // Enrolment (identified channel). An agent without its certificates is
  // unusable, so fail construction loudly rather than limp along.
  proto::EnrolRequest enrol;
  enrol.holder_name = name_;
  enrol.master_key = card_.MasterKey();
  auto enrolled = rpc_.Call(P2drmSystem::kCaEndpoint, enrol);
  if (!enrolled.ok()) {
    throw std::runtime_error("UserAgent " + name_ + ": enrolment failed: " +
                             StatusName(enrolled.status));
  }
  card_.StoreIdentityCertificate(enrolled.value.certificate);

  // Device certification.
  proto::DeviceCertRequest dev;
  dev.device_key = device_.DeviceKey();
  dev.security_level = config_.device_security_level;
  auto certified = rpc_.Call(P2drmSystem::kCaEndpoint, dev);
  if (!certified.ok()) {
    throw std::runtime_error("UserAgent " + name_ +
                             ": device certification failed: " +
                             StatusName(certified.status));
  }
  device_.InstallCertificate(certified.value.certificate);
}

std::uint64_t UserAgent::WalletValue() const {
  return std::accumulate(
      wallet_.begin(), wallet_.end(), std::uint64_t{0},
      [](std::uint64_t acc, const Coin& c) { return acc + c.denomination; });
}

Status UserAgent::WithdrawOne(std::uint32_t denomination) {
  // Mint the coin locally, blind its canonical bytes, have the bank sign.
  Coin coin;
  rng_->Fill(coin.serial.data(), coin.serial.size());
  coin.denomination = denomination;

  const crypto::RsaPublicKey& denom_key =
      system_->bank().DenominationKey(denomination);
  GlobalOps().blind_prep += 1;
  crypto::BlindingContext ctx =
      crypto::BlindMessage(denom_key, coin.CanonicalBytes(), rng_);

  proto::WithdrawRequest req;
  req.account = name_;
  req.denomination = denomination;
  req.blinded = ctx.blinded;
  auto resp = rpc_.Call(P2drmSystem::kBankEndpoint, req);
  if (!resp.ok()) return resp.status;

  coin.signature = crypto::Unblind(denom_key, ctx, resp.value.blind_signature);
  // Paranoia: never bank an invalid coin.
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(denom_key, coin.CanonicalBytes(),
                            coin.signature)) {
    return Status::kBadSignature;
  }
  wallet_.push_back(std::move(coin));
  return Status::kOk;
}

Status UserAgent::WithdrawCoins(std::uint64_t amount) {
  for (std::uint32_t denom : PlanCoins(amount)) {
    Status s = WithdrawOne(denom);
    if (s != Status::kOk) return s;
  }
  return Status::kOk;
}

std::vector<Coin> UserAgent::TakeCoins(std::uint64_t amount) {
  if (amount == 0) return {};
  // Top up the wallet if short, then pick greedily (largest first) for an
  // exact cover. Wallet contents always come from PlanCoins, so an exact
  // greedy cover exists whenever total value suffices.
  if (WalletValue() < amount) {
    if (WithdrawCoins(amount - WalletValue()) != Status::kOk) return {};
  }
  std::vector<Coin> picked;
  std::uint64_t remaining = amount;
  std::sort(wallet_.begin(), wallet_.end(),
            [](const Coin& a, const Coin& b) {
              return a.denomination > b.denomination;
            });
  for (auto it = wallet_.begin(); it != wallet_.end() && remaining > 0;) {
    if (it->denomination <= remaining) {
      remaining -= it->denomination;
      picked.push_back(std::move(*it));
      it = wallet_.erase(it);
    } else {
      ++it;
    }
  }
  if (remaining != 0) {
    // Exact cover failed (e.g. wallet fragmented): withdraw the exact rest.
    if (WithdrawCoins(remaining) != Status::kOk ||
        WalletValue() < remaining) {
      // Return picked coins to the wallet and fail.
      for (auto& c : picked) wallet_.push_back(std::move(c));
      return {};
    }
    auto rest = TakeCoins(remaining);
    if (rest.empty()) {
      for (auto& c : picked) wallet_.push_back(std::move(c));
      return {};
    }
    for (auto& c : rest) picked.push_back(std::move(c));
  }
  return picked;
}

Pseudonym* UserAgent::EnsurePseudonym() {
  Pseudonym* existing = card_.UsablePseudonym(config_.pseudonym_max_uses);
  if (existing != nullptr) return existing;

  PseudonymRequest req = card_.BeginPseudonym(system_->ca().PublicKey(),
                                              system_->ttp().EscrowKey());
  proto::PseudonymSignRequest wire;
  wire.card_id = card_.CardId();
  wire.blinded = req.blinding.blinded;
  auto resp = rpc_.Call(P2drmSystem::kCaEndpoint, wire);
  if (!resp.ok()) return nullptr;
  return card_.FinishPseudonym(std::move(req), resp.value.blind_signature,
                               system_->ca().PublicKey());
}

Status UserAgent::InstallIssued(const rel::License& license,
                                Pseudonym* pseudonym, rel::License* out) {
  pseudonym->purchases_used += 1;
  if (!device_.InstallLicense(license, system_->cp().PublicKey())) {
    return Status::kBadSignature;
  }
  if (out != nullptr) *out = license;
  return Status::kOk;
}

void UserAgent::Backoff(std::uint32_t retry_after_ms) {
  std::uint32_t wait =
      std::min(retry_after_ms, config_.overload_backoff_cap_ms);
  retry_stats_.backoff_ms += wait;
  if (wait == 0) return;
  if (config_.obs.registry != nullptr) {
    config_.obs.registry->Add(obs_backoff_ms_, wait);
  }
  // Span around the wait: with a wait_hook that advances a virtual
  // timebase the span's end lands `wait` later on that timebase.
  obs::Span span(config_.obs.tracer, "agent.backoff");
  if (config_.wait_hook != nullptr) {
    // Scheduled wait: the harness decides what "waiting" means —
    // typically advancing the virtual timebase — so long hints cost no
    // wall-clock.
    config_.wait_hook(wait);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(wait));
}

template <typename Req>
net::RpcResult<typename Req::Response> UserAgent::CallAnonymousWithRetry(
    const Req& req) {
  auto resp = rpc_.CallAnonymous(P2drmSystem::kCpEndpoint, req);
  for (std::size_t attempt = 1;
       resp.overloaded() && attempt < config_.overload_max_attempts;
       ++attempt) {
    // A shed request left no server-side trace, so resending the
    // identical bytes is safe.
    Backoff(resp.retry_after_ms);
    retry_stats_.retried_items += 1;
    retry_stats_.retry_round_trips += 1;
    if (config_.obs.registry != nullptr) {
      config_.obs.registry->Add(obs_retried_);
    }
    resp = rpc_.CallAnonymous(P2drmSystem::kCpEndpoint, req);
  }
  if (resp.overloaded()) {
    retry_stats_.exhausted_items += 1;
    if (config_.obs.registry != nullptr) {
      config_.obs.registry->Add(obs_exhausted_);
    }
  }
  return resp;
}

template <typename Req>
std::vector<net::RpcResult<typename Req::Response>>
UserAgent::CallBatchAnonymousWithRetry(const std::vector<Req>& reqs) {
  auto resps = rpc_.CallBatchAnonymous(P2drmSystem::kCpEndpoint, reqs);
  for (std::size_t attempt = 1; attempt < config_.overload_max_attempts;
       ++attempt) {
    std::vector<std::size_t> shed;
    std::uint32_t hint = 0;
    for (std::size_t w = 0; w < resps.size(); ++w) {
      if (resps[w].overloaded()) {
        shed.push_back(w);
        hint = std::max(hint, resps[w].retry_after_ms);
      }
    }
    if (shed.empty()) break;
    // Re-batch ONLY the shed indices: everything else already has its
    // final answer, and a shed item left no server-side trace.
    Backoff(hint);
    retry_stats_.retried_items += shed.size();
    retry_stats_.retry_round_trips += 1;
    if (config_.obs.registry != nullptr) {
      config_.obs.registry->Add(obs_retried_, shed.size());
    }
    std::vector<Req> retry_reqs;
    retry_reqs.reserve(shed.size());
    for (std::size_t w : shed) retry_reqs.push_back(reqs[w]);
    auto retry_resps =
        rpc_.CallBatchAnonymous(P2drmSystem::kCpEndpoint, retry_reqs);
    for (std::size_t j = 0; j < shed.size(); ++j) {
      resps[shed[j]] = std::move(retry_resps[j]);
    }
  }
  for (const auto& r : resps) {
    if (r.overloaded()) {
      retry_stats_.exhausted_items += 1;
      if (config_.obs.registry != nullptr) {
        config_.obs.registry->Add(obs_exhausted_);
      }
    }
  }
  return resps;
}

template <typename Req>
void UserAgent::FinishBatch(const std::vector<Req>& wire_reqs,
                            const std::vector<std::size_t>& wire_index,
                            const std::vector<Pseudonym*>& wire_pseudonym,
                            std::vector<Status>* statuses,
                            std::vector<rel::License>* out) {
  if (wire_reqs.empty()) return;  // nothing prepared: spend no round trip
  auto resps = CallBatchAnonymousWithRetry(wire_reqs);
  for (std::size_t w = 0; w < resps.size(); ++w) {
    std::size_t i = wire_index[w];
    wire_pseudonym[w]->purchases_used -= 1;  // InstallIssued re-charges
    if (!resps[w].ok()) {
      (*statuses)[i] = resps[w].status;
      // Refund coins the server provably never touched; other failures
      // may have executed server-side, so coins stay spent, same as the
      // single-call path.
      const std::vector<Coin>* payment = PaymentOf(wire_reqs[w]);
      if (ProvablyNotExecuted(resps[w].status) && payment != nullptr) {
        wallet_.insert(wallet_.end(), payment->begin(), payment->end());
      }
      continue;
    }
    (*statuses)[i] = InstallIssued(resps[w].value.license, wire_pseudonym[w],
                                   out != nullptr ? &(*out)[i] : nullptr);
  }
}

Status UserAgent::BuyContent(rel::ContentId content, rel::License* out) {
  auto offer = system_->cp().FindOffer(content);
  if (!offer.has_value()) return Status::kUnknownContent;

  Pseudonym* pseudonym = EnsurePseudonym();
  if (pseudonym == nullptr) return Status::kBadCertificate;

  std::vector<Coin> payment = TakeCoins(offer->price);
  if (offer->price != 0 && payment.empty()) {
    return Status::kInsufficientFunds;
  }

  proto::PurchaseRequest req;
  req.buyer = pseudonym->cert;
  req.content_id = content;
  req.payment = std::move(payment);
  // Anonymous channel: the CP must not learn who is calling.
  auto resp = CallAnonymousWithRetry(req);
  if (!resp.ok()) {
    if (ProvablyNotExecuted(resp.status)) {
      wallet_.insert(wallet_.end(), req.payment.begin(), req.payment.end());
    }
    return resp.status;
  }
  return InstallIssued(resp.value.license, pseudonym, out);
}

std::vector<Status> UserAgent::BuyContentBatch(
    const std::vector<rel::ContentId>& contents,
    std::vector<rel::License>* out) {
  std::vector<Status> statuses(contents.size(), Status::kBadRequest);
  if (out != nullptr) out->assign(contents.size(), rel::License{});

  // Client-side preparation (pseudonyms, coins) per item; items that fail
  // locally never reach the wire.
  std::vector<proto::PurchaseRequest> wire_reqs;
  std::vector<std::size_t> wire_index;    // wire item -> input index
  std::vector<Pseudonym*> wire_pseudonym;  // wire item -> charged pseudonym
  for (std::size_t i = 0; i < contents.size(); ++i) {
    auto offer = system_->cp().FindOffer(contents[i]);
    if (!offer.has_value()) {
      statuses[i] = Status::kUnknownContent;
      continue;
    }
    Pseudonym* pseudonym = EnsurePseudonym();
    if (pseudonym == nullptr) {
      statuses[i] = Status::kBadCertificate;
      continue;
    }
    std::vector<Coin> payment = TakeCoins(offer->price);
    if (offer->price != 0 && payment.empty()) {
      statuses[i] = Status::kInsufficientFunds;
      continue;
    }
    proto::PurchaseRequest req;
    req.buyer = pseudonym->cert;
    req.content_id = contents[i];
    req.payment = std::move(payment);
    wire_reqs.push_back(std::move(req));
    wire_index.push_back(i);
    // Pre-charge so the linkability policy (pseudonym_max_uses) holds
    // across the batch; FinishBatch refunds before re-charging installs.
    pseudonym->purchases_used += 1;
    wire_pseudonym.push_back(pseudonym);
  }

  // One metered round trip for every prepared purchase.
  FinishBatch(wire_reqs, wire_index, wire_pseudonym, &statuses, out);
  return statuses;
}

UseResult UserAgent::Play(rel::ContentId content) {
  proto::FetchContentRequest req;
  req.content_id = content;
  auto resp = rpc_.CallAnonymous(P2drmSystem::kCpEndpoint, req);
  if (!resp.ok()) {
    UseResult r;
    r.error = "content not available";
    return r;
  }
  return device_.Use(content, rel::Action::kPlay, &card_, resp.value.content);
}

Status UserAgent::GiveLicense(const rel::LicenseId& id,
                              std::vector<std::uint8_t>* out_bytes) {
  const rel::License* held = device_.FindLicense(id);
  if (held == nullptr) return Status::kBadRequest;

  // Possession proof by the card that owns the bound pseudonym.
  std::vector<std::uint8_t> sig = card_.SignWithPseudonym(
      held->bound_key, ContentProvider::TransferChallengeBytes(held->id));
  if (sig.empty()) return Status::kBadRequest;

  proto::ExchangeRequest req;
  req.license = *held;
  req.possession_sig = std::move(sig);
  auto resp = CallAnonymousWithRetry(req);
  if (!resp.ok()) return resp.status;

  // The old license is now spent server-side; a compliant device deletes it.
  device_.RemoveLicense(id);
  *out_bytes = resp.value.anonymous_license.Serialize();
  return Status::kOk;
}

std::vector<Status> UserAgent::GiveLicenseBatch(
    const std::vector<rel::LicenseId>& ids,
    std::vector<std::vector<std::uint8_t>>* bearer_bytes) {
  std::vector<Status> statuses(ids.size(), Status::kBadRequest);
  if (bearer_bytes != nullptr) {
    bearer_bytes->assign(ids.size(), {});
  }

  // Client-side preparation per item (held license + possession proof);
  // items that fail locally never reach the wire.
  std::vector<proto::ExchangeRequest> wire_reqs;
  std::vector<std::size_t> wire_index;  // wire item -> input index
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const rel::License* held = device_.FindLicense(ids[i]);
    if (held == nullptr) continue;  // statuses[i] stays kBadRequest
    std::vector<std::uint8_t> sig = card_.SignWithPseudonym(
        held->bound_key, ContentProvider::TransferChallengeBytes(held->id));
    if (sig.empty()) continue;
    proto::ExchangeRequest req;
    req.license = *held;
    req.possession_sig = std::move(sig);
    wire_reqs.push_back(std::move(req));
    wire_index.push_back(i);
  }
  if (wire_reqs.empty()) return statuses;  // spend no round trip

  // N exchanges, ONE transport round trip (plus bounded retries of any
  // shed items).
  auto resps = CallBatchAnonymousWithRetry(wire_reqs);
  for (std::size_t w = 0; w < resps.size(); ++w) {
    std::size_t i = wire_index[w];
    statuses[i] = resps[w].status;
    if (!resps[w].ok()) continue;
    // The old license is spent server-side; a compliant device deletes
    // it and hands over the bearer bytes.
    device_.RemoveLicense(ids[i]);
    if (bearer_bytes != nullptr) {
      (*bearer_bytes)[i] = resps[w].value.anonymous_license.Serialize();
    }
  }
  return statuses;
}

Status UserAgent::ReceiveLicense(
    const std::vector<std::uint8_t>& anonymous_license_bytes,
    rel::License* out) {
  rel::License anon;
  try {
    anon = rel::License::Deserialize(anonymous_license_bytes);
  } catch (const std::exception&) {
    return Status::kBadRequest;
  }

  Pseudonym* pseudonym = EnsurePseudonym();
  if (pseudonym == nullptr) return Status::kBadCertificate;

  proto::RedeemRequest req;
  req.anonymous_license = anon;
  req.taker = pseudonym->cert;
  auto resp = CallAnonymousWithRetry(req);
  if (!resp.ok()) return resp.status;
  return InstallIssued(resp.value.license, pseudonym, out);
}

std::vector<Status> UserAgent::ReceiveLicenseBatch(
    const std::vector<std::vector<std::uint8_t>>& anonymous_license_bytes,
    std::vector<rel::License>* out) {
  std::vector<Status> statuses(anonymous_license_bytes.size(),
                               Status::kBadRequest);
  if (out != nullptr) {
    out->assign(anonymous_license_bytes.size(), rel::License{});
  }

  std::vector<proto::RedeemRequest> wire_reqs;
  std::vector<std::size_t> wire_index;
  std::vector<Pseudonym*> wire_pseudonym;
  for (std::size_t i = 0; i < anonymous_license_bytes.size(); ++i) {
    rel::License anon;
    try {
      anon = rel::License::Deserialize(anonymous_license_bytes[i]);
    } catch (const std::exception&) {
      continue;  // statuses[i] stays kBadRequest
    }
    Pseudonym* pseudonym = EnsurePseudonym();
    if (pseudonym == nullptr) {
      statuses[i] = Status::kBadCertificate;
      continue;
    }
    proto::RedeemRequest req;
    req.anonymous_license = std::move(anon);
    req.taker = pseudonym->cert;
    wire_reqs.push_back(std::move(req));
    wire_index.push_back(i);
    pseudonym->purchases_used += 1;  // pre-charge, as in BuyContentBatch
    wire_pseudonym.push_back(pseudonym);
  }

  // N redeems, ONE transport round trip.
  FinishBatch(wire_reqs, wire_index, wire_pseudonym, &statuses, out);
  return statuses;
}

Status UserAgent::SyncCrl() {
  proto::FetchCrlRequest req;
  auto resp = rpc_.Call(P2drmSystem::kCpEndpoint, req);
  if (!resp.ok()) return resp.status;
  store::RevocationList crl = store::RevocationList::Deserialize(
      resp.value.crl_snapshot, store::CrlStrategy::kSortedSet);
  device_.UpdateCrl(crl);
  return Status::kOk;
}

}  // namespace core
}  // namespace p2drm
