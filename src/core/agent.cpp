#include "core/agent.h"

#include <algorithm>
#include <numeric>

#include "core/metrics.h"
#include "core/protocol.h"
#include "crypto/blind_rsa.h"

namespace p2drm {
namespace core {

namespace proto = protocol;

UserAgent::UserAgent(const std::string& name, const AgentConfig& config,
                     P2drmSystem* system, bignum::RandomSource* rng)
    : name_(name),
      config_(config),
      system_(system),
      rng_(rng),
      card_(name, config.pseudonym_bits, rng),
      device_(name + "-device", config.device_security_level,
              &system->clock(), rng) {
  system_->bank().OpenAccount(name_, config_.initial_bank_balance);

  // Enrolment (identified channel).
  proto::EnrolRequest enrol;
  enrol.holder_name = name_;
  enrol.master_key = card_.MasterKey();
  auto raw = system_->transport().Call(name_, P2drmSystem::kCaEndpoint,
                                       enrol.Encode());
  card_.StoreIdentityCertificate(
      proto::EnrolResponse::Decode(raw).certificate);

  // Device certification.
  proto::DeviceCertRequest dev;
  dev.device_key = device_.DeviceKey();
  dev.security_level = config_.device_security_level;
  raw = system_->transport().Call(name_, P2drmSystem::kCaEndpoint,
                                  dev.Encode());
  device_.InstallCertificate(
      proto::DeviceCertResponse::Decode(raw).certificate);
}

std::uint64_t UserAgent::WalletValue() const {
  return std::accumulate(
      wallet_.begin(), wallet_.end(), std::uint64_t{0},
      [](std::uint64_t acc, const Coin& c) { return acc + c.denomination; });
}

Status UserAgent::WithdrawOne(std::uint32_t denomination) {
  // Mint the coin locally, blind its canonical bytes, have the bank sign.
  Coin coin;
  rng_->Fill(coin.serial.data(), coin.serial.size());
  coin.denomination = denomination;

  const crypto::RsaPublicKey& denom_key =
      system_->bank().DenominationKey(denomination);
  GlobalOps().blind_prep += 1;
  crypto::BlindingContext ctx =
      crypto::BlindMessage(denom_key, coin.CanonicalBytes(), rng_);

  proto::WithdrawRequest req;
  req.account = name_;
  req.denomination = denomination;
  req.blinded = ctx.blinded;
  auto raw = system_->transport().Call(name_, P2drmSystem::kBankEndpoint,
                                       req.Encode());
  auto resp = proto::WithdrawResponse::Decode(raw);
  if (resp.status != Status::kOk) return resp.status;

  coin.signature = crypto::Unblind(denom_key, ctx, resp.blind_signature);
  // Paranoia: never bank an invalid coin.
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(denom_key, coin.CanonicalBytes(),
                            coin.signature)) {
    return Status::kBadSignature;
  }
  wallet_.push_back(std::move(coin));
  return Status::kOk;
}

Status UserAgent::WithdrawCoins(std::uint64_t amount) {
  for (std::uint32_t denom : PlanCoins(amount)) {
    Status s = WithdrawOne(denom);
    if (s != Status::kOk) return s;
  }
  return Status::kOk;
}

std::vector<Coin> UserAgent::TakeCoins(std::uint64_t amount) {
  if (amount == 0) return {};
  // Top up the wallet if short, then pick greedily (largest first) for an
  // exact cover. Wallet contents always come from PlanCoins, so an exact
  // greedy cover exists whenever total value suffices.
  if (WalletValue() < amount) {
    if (WithdrawCoins(amount - WalletValue()) != Status::kOk) return {};
  }
  std::vector<Coin> picked;
  std::uint64_t remaining = amount;
  std::sort(wallet_.begin(), wallet_.end(),
            [](const Coin& a, const Coin& b) {
              return a.denomination > b.denomination;
            });
  for (auto it = wallet_.begin(); it != wallet_.end() && remaining > 0;) {
    if (it->denomination <= remaining) {
      remaining -= it->denomination;
      picked.push_back(std::move(*it));
      it = wallet_.erase(it);
    } else {
      ++it;
    }
  }
  if (remaining != 0) {
    // Exact cover failed (e.g. wallet fragmented): withdraw the exact rest.
    if (WithdrawCoins(remaining) != Status::kOk ||
        WalletValue() < remaining) {
      // Return picked coins to the wallet and fail.
      for (auto& c : picked) wallet_.push_back(std::move(c));
      return {};
    }
    auto rest = TakeCoins(remaining);
    if (rest.empty()) {
      for (auto& c : picked) wallet_.push_back(std::move(c));
      return {};
    }
    for (auto& c : rest) picked.push_back(std::move(c));
  }
  return picked;
}

Pseudonym* UserAgent::EnsurePseudonym() {
  Pseudonym* existing = card_.UsablePseudonym(config_.pseudonym_max_uses);
  if (existing != nullptr) return existing;

  PseudonymRequest req = card_.BeginPseudonym(system_->ca().PublicKey(),
                                              system_->ttp().EscrowKey());
  proto::PseudonymSignRequest wire;
  wire.card_id = card_.CardId();
  wire.blinded = req.blinding.blinded;
  auto raw = system_->transport().Call(name_, P2drmSystem::kCaEndpoint,
                                       wire.Encode());
  auto resp = proto::PseudonymSignResponse::Decode(raw);
  return card_.FinishPseudonym(std::move(req), resp.blind_signature,
                               system_->ca().PublicKey());
}

Status UserAgent::BuyContent(rel::ContentId content, rel::License* out) {
  auto offer = system_->cp().FindOffer(content);
  if (!offer.has_value()) return Status::kUnknownContent;

  Pseudonym* pseudonym = EnsurePseudonym();
  if (pseudonym == nullptr) return Status::kBadCertificate;

  std::vector<Coin> payment = TakeCoins(offer->price);
  if (offer->price != 0 && payment.empty()) {
    return Status::kInsufficientFunds;
  }

  proto::PurchaseRequest req;
  req.buyer = pseudonym->cert;
  req.content_id = content;
  req.payment = std::move(payment);
  // Anonymous channel: the CP must not learn who is calling.
  auto raw = system_->transport().Call(net::Transport::kAnonymous,
                                       P2drmSystem::kCpEndpoint, req.Encode());
  auto resp = proto::PurchaseResponse::Decode(raw);
  if (resp.status != Status::kOk) return resp.status;

  pseudonym->purchases_used += 1;
  if (!device_.InstallLicense(resp.license, system_->cp().PublicKey())) {
    return Status::kBadSignature;
  }
  if (out != nullptr) *out = resp.license;
  return Status::kOk;
}

UseResult UserAgent::Play(rel::ContentId content) {
  proto::FetchContentRequest req;
  req.content_id = content;
  auto raw = system_->transport().Call(net::Transport::kAnonymous,
                                       P2drmSystem::kCpEndpoint, req.Encode());
  auto resp = proto::FetchContentResponse::Decode(raw);
  if (resp.status != Status::kOk) {
    UseResult r;
    r.error = "content not available";
    return r;
  }
  return device_.Use(content, rel::Action::kPlay, &card_, resp.content);
}

Status UserAgent::GiveLicense(const rel::LicenseId& id,
                              std::vector<std::uint8_t>* out_bytes) {
  const rel::License* held = device_.FindLicense(id);
  if (held == nullptr) return Status::kBadRequest;

  // Possession proof by the card that owns the bound pseudonym.
  std::vector<std::uint8_t> sig = card_.SignWithPseudonym(
      held->bound_key, ContentProvider::TransferChallengeBytes(held->id));
  if (sig.empty()) return Status::kBadRequest;

  proto::ExchangeRequest req;
  req.license = *held;
  req.possession_sig = std::move(sig);
  auto raw = system_->transport().Call(net::Transport::kAnonymous,
                                       P2drmSystem::kCpEndpoint, req.Encode());
  auto resp = proto::ExchangeResponse::Decode(raw);
  if (resp.status != Status::kOk) return resp.status;

  // The old license is now spent server-side; a compliant device deletes it.
  device_.RemoveLicense(id);
  *out_bytes = resp.anonymous_license.Serialize();
  return Status::kOk;
}

Status UserAgent::ReceiveLicense(
    const std::vector<std::uint8_t>& anonymous_license_bytes,
    rel::License* out) {
  rel::License anon;
  try {
    anon = rel::License::Deserialize(anonymous_license_bytes);
  } catch (const std::exception&) {
    return Status::kBadRequest;
  }

  Pseudonym* pseudonym = EnsurePseudonym();
  if (pseudonym == nullptr) return Status::kBadCertificate;

  proto::RedeemRequest req;
  req.anonymous_license = anon;
  req.taker = pseudonym->cert;
  auto raw = system_->transport().Call(net::Transport::kAnonymous,
                                       P2drmSystem::kCpEndpoint, req.Encode());
  auto resp = proto::PurchaseResponse::Decode(raw);
  if (resp.status != Status::kOk) return resp.status;

  pseudonym->purchases_used += 1;
  if (!device_.InstallLicense(resp.license, system_->cp().PublicKey())) {
    return Status::kBadSignature;
  }
  if (out != nullptr) *out = resp.license;
  return Status::kOk;
}

void UserAgent::SyncCrl() {
  proto::FetchCrlRequest req;
  auto raw = system_->transport().Call(name_, P2drmSystem::kCpEndpoint,
                                       req.Encode());
  auto resp = proto::FetchCrlResponse::Decode(raw);
  store::RevocationList crl = store::RevocationList::Deserialize(
      resp.crl_snapshot, store::CrlStrategy::kSortedSet);
  device_.UpdateCrl(crl);
}

}  // namespace core
}  // namespace p2drm
