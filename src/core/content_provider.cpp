#include "core/content_provider.h"

#include <numeric>
#include <stdexcept>

#include "core/metrics.h"
#include "crypto/chacha20.h"
#include "net/codec.h"

namespace p2drm {
namespace core {

namespace {

/// Merchant account name at the bank.
constexpr const char* kMerchantAccount = "cp";

}  // namespace

ContentProvider::ContentProvider(const ContentProviderConfig& config,
                                 bignum::RandomSource* rng, const Clock* clock,
                                 PaymentProvider* bank,
                                 crypto::RsaPublicKey ca_key)
    : config_(config),
      rng_(rng),
      clock_(clock),
      bank_(bank),
      ca_key_(std::move(ca_key)),
      key_(crypto::GenerateRsaKey(config.signing_key_bits, rng)),
      public_key_(key_.PublicKey()),
      spent_(config.spent_backend),
      crl_(config.crl_strategy, config.expected_crl_entries) {
  GlobalOps().keygen += 1;
  if (bank_ != nullptr) bank_->OpenAccount(kMerchantAccount, 0);
  if (config_.redeem_shards > 0) {
    // Sharded path: the runtime owns the spent-set partitions and the
    // per-shard journal segments (it also replays any legacy unsharded
    // journal at the configured path).
    server::ServerRuntimeConfig rt;
    rt.shard_count = config_.redeem_shards;
    rt.queue_capacity = config_.redeem_queue_capacity;
    rt.spent_backend = config_.spent_backend;
    rt.journal_path_prefix = config_.spent_journal_path;
    runtime_ = std::make_unique<server::ServerRuntime>(rt);
  } else if (!config_.spent_journal_path.empty()) {
    // Crash recovery: rebuild the spent set from the journal, then reopen
    // the journal for appending.
    store::AppendLog::Replay(
        config_.spent_journal_path,
        [this](const std::vector<std::uint8_t>& record) {
          if (record.size() != 16) return;
          rel::LicenseId id;
          std::copy(record.begin(), record.end(), id.bytes.begin());
          spent_.Insert(id);
        });
    spent_journal_ =
        std::make_unique<store::AppendLog>(config_.spent_journal_path);
  }
}

ContentProvider::~ContentProvider() = default;

rel::ContentId ContentProvider::Publish(
    const std::string& title, const std::vector<std::uint8_t>& plaintext,
    std::uint64_t price, const rel::Rights& rights) {
  CatalogEntry entry;
  entry.offer.content_id = next_content_id_++;
  entry.offer.title = title;
  entry.offer.price = price;
  entry.offer.rights = rights;

  rng_->Fill(entry.content_key.data(), entry.content_key.size());
  entry.encrypted.content_id = entry.offer.content_id;
  rng_->Fill(entry.encrypted.nonce.data(), entry.encrypted.nonce.size());
  crypto::ChaCha20 cipher(entry.content_key, entry.encrypted.nonce);
  entry.encrypted.ciphertext = cipher.Crypt(plaintext);

  rel::ContentId id = entry.offer.content_id;
  catalog_.emplace(id, std::move(entry));
  return id;
}

std::vector<Offer> ContentProvider::Catalog() const {
  std::vector<Offer> offers;
  offers.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_) {
    (void)id;
    offers.push_back(entry.offer);
  }
  return offers;
}

std::optional<Offer> ContentProvider::FindOffer(rel::ContentId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return std::nullopt;
  return it->second.offer;
}

const EncryptedContent& ContentProvider::GetContent(rel::ContentId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) {
    throw std::out_of_range("ContentProvider: unknown content id");
  }
  return it->second.encrypted;
}

rel::LicenseId ContentProvider::FreshLicenseId() {
  rel::LicenseId id;
  rng_->Fill(id.bytes.data(), id.bytes.size());
  return id;
}

rel::License ContentProvider::IssueLicense(
    rel::LicenseKind kind, rel::ContentId content_id,
    const rel::Rights& rights, const crypto::RsaPublicKey* bound_key) {
  auto it = catalog_.find(content_id);
  if (it == catalog_.end()) {
    throw std::out_of_range("ContentProvider: unknown content id");
  }
  rel::License lic;
  lic.id = FreshLicenseId();
  lic.kind = kind;
  lic.content_id = content_id;
  lic.rights = rights;
  lic.issued_at_s = clock_->NowEpochSeconds();
  if (kind == rel::LicenseKind::kUserBound) {
    lic.bound_key = bound_key->Fingerprint();
    issued_keys_.emplace(lic.bound_key, *bound_key);
    std::vector<std::uint8_t> ck(it->second.content_key.begin(),
                                 it->second.content_key.end());
    GlobalOps().hybrid_enc += 1;
    lic.wrapped_content_key =
        crypto::RsaHybridEncrypt(*bound_key, ck, rng_).Serialize();
  }
  GlobalOps().sign += 1;
  lic.issuer_signature = crypto::RsaSignFdh(key_, lic.CanonicalBytes());
  ++licenses_issued_;
  return lic;
}

ContentProvider::PurchaseResult ContentProvider::Purchase(
    const PseudonymCertificate& buyer, rel::ContentId content_id,
    const std::vector<Coin>& payment) {
  PurchaseResult result;

  GlobalOps().verify += 1;
  if (!VerifyPseudonymCert(ca_key_, buyer)) {
    result.status = Status::kBadCertificate;
    return result;
  }
  if (crl_.IsRevoked(buyer.KeyId())) {
    result.status = Status::kRevoked;
    return result;
  }
  auto offer = FindOffer(content_id);
  if (!offer.has_value()) {
    result.status = Status::kUnknownContent;
    return result;
  }
  std::uint64_t paid = std::accumulate(
      payment.begin(), payment.end(), std::uint64_t{0},
      [](std::uint64_t acc, const Coin& c) { return acc + c.denomination; });
  if (paid != offer->price) {
    result.status = Status::kWrongPrice;
    return result;
  }
  // Deposit the coins. A failure mid-way rejects the purchase; already-
  // deposited coins stay deposited (the buyer attempted fraud or sent a
  // bad coin — the paper's bearer-instrument semantics).
  for (const Coin& coin : payment) {
    Status s = bank_->Deposit(coin, kMerchantAccount);
    if (s != Status::kOk) {
      result.status = s;
      return result;
    }
  }

  pseudonyms_seen_.insert(buyer.KeyId());
  result.license = IssueLicense(rel::LicenseKind::kUserBound, content_id,
                                offer->rights, &buyer.pseudonym_key);
  result.status = Status::kOk;
  return result;
}

std::vector<std::uint8_t> ContentProvider::TransferChallengeBytes(
    const rel::LicenseId& id) {
  net::ByteWriter w;
  w.U8(0x31);  // domain tag: transfer possession proof
  w.Fixed(id.bytes);
  return w.Take();
}

bool ContentProvider::MarkSpent(const rel::LicenseId& id) {
  if (runtime_ != nullptr) {
    // Serialize on the id's home shard, exactly like the batch path, so
    // single-item and batched redemptions can never double-spend one id.
    return runtime_->SpendOne(id) == Status::kOk;
  }
  if (!spent_.Insert(id)) return false;
  if (spent_journal_ != nullptr) {
    spent_journal_->Append(
        std::vector<std::uint8_t>(id.bytes.begin(), id.bytes.end()));
  }
  return true;
}

ContentProvider::ExchangeResult ContentProvider::ExchangeForAnonymous(
    const rel::License& license,
    const std::vector<std::uint8_t>& possession_sig) {
  ExchangeResult result;

  // The license must be ours, key-bound, and transferable.
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(public_key_, license.CanonicalBytes(),
                            license.issuer_signature)) {
    result.status = Status::kBadSignature;
    return result;
  }
  if (license.kind != rel::LicenseKind::kUserBound) {
    result.status = Status::kBadRequest;
    return result;
  }
  if (!license.rights.allow_transfer) {
    result.status = Status::kNotTransferable;
    return result;
  }
  if (crl_.IsRevoked(license.bound_key)) {
    result.status = Status::kRevoked;
    return result;
  }

  // Possession proof: the giver's card signs the transfer challenge with
  // the pseudonym key the license is bound to. The CP learns only that the
  // caller holds that key, not who they are. The verification key is the
  // one the license was issued against, remembered by fingerprint.
  auto key_it = issued_keys_.find(license.bound_key);
  if (key_it == issued_keys_.end()) {
    result.status = Status::kBadRequest;
    return result;
  }
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(key_it->second,
                            TransferChallengeBytes(license.id),
                            possession_sig)) {
    result.status = Status::kBadSignature;
    return result;
  }

  // Retire the old license; a spent id can never be exchanged again.
  if (!MarkSpent(license.id)) {
    result.status = Status::kAlreadySpent;
    return result;
  }

  result.anonymous_license = IssueLicense(
      rel::LicenseKind::kAnonymous, license.content_id, license.rights,
      nullptr);
  result.status = Status::kOk;
  return result;
}

RedemptionTranscript ContentProvider::MakeTranscript(
    const rel::LicenseId& id, const PseudonymCertificate& cert) {
  RedemptionTranscript t;
  t.license_id = id;
  t.pseudonym_cert = cert.Serialize();
  t.timestamp_s = clock_->NowEpochSeconds();
  GlobalOps().sign += 1;
  t.cp_signature = crypto::RsaSignFdh(key_, t.CanonicalBytes());
  return t;
}

ContentProvider::PurchaseResult ContentProvider::RedeemAnonymous(
    const rel::License& anonymous_license, const PseudonymCertificate& taker) {
  PurchaseResult result;

  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(public_key_, anonymous_license.CanonicalBytes(),
                            anonymous_license.issuer_signature)) {
    result.status = Status::kBadSignature;
    return result;
  }
  if (anonymous_license.kind != rel::LicenseKind::kAnonymous) {
    result.status = Status::kBadRequest;
    return result;
  }
  GlobalOps().verify += 1;
  if (!VerifyPseudonymCert(ca_key_, taker)) {
    result.status = Status::kBadCertificate;
    return result;
  }
  if (crl_.IsRevoked(taker.KeyId())) {
    result.status = Status::kRevoked;
    return result;
  }

  Status spend = MarkSpent(anonymous_license.id) ? Status::kOk
                                                 : Status::kAlreadySpent;
  return FinalizeRedemption(RedeemItem{anonymous_license, taker}, spend);
}

ContentProvider::PurchaseResult ContentProvider::FinalizeRedemption(
    const RedeemItem& item, Status spend_status) {
  PurchaseResult result;
  RedemptionTranscript transcript =
      MakeTranscript(item.anonymous_license.id, item.taker);

  if (spend_status == Status::kAlreadySpent) {
    // Double redemption: build fraud evidence from the first transcript.
    ++double_redemptions_;
    auto first = redemption_transcripts_.find(item.anonymous_license.id);
    if (first != redemption_transcripts_.end()) {
      FraudEvidence evidence;
      evidence.first = first->second;
      evidence.second = transcript;
      fraud_queue_.push_back(std::move(evidence));
    }
    result.status = Status::kAlreadySpent;
    return result;
  }
  redemption_transcripts_.emplace(item.anonymous_license.id, transcript);

  pseudonyms_seen_.insert(item.taker.KeyId());
  result.license = IssueLicense(rel::LicenseKind::kUserBound,
                                item.anonymous_license.content_id,
                                item.anonymous_license.rights,
                                &item.taker.pseudonym_key);
  result.status = Status::kOk;
  return result;
}

std::vector<ContentProvider::PurchaseResult>
ContentProvider::RedeemAnonymousBatch(const std::vector<RedeemItem>& items) {
  std::vector<PurchaseResult> out(items.size());
  if (items.empty()) return out;
  server::BatchVerifierStats before = verifier_.stats();

  // Stage 1 — license signatures, amortized: every license in the batch
  // is signed by our own key, so one screened same-key verification
  // covers the whole group.
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<std::vector<std::uint8_t>> sigs;
  msgs.reserve(items.size());
  sigs.reserve(items.size());
  for (const RedeemItem& item : items) {
    msgs.push_back(item.anonymous_license.CanonicalBytes());
    sigs.push_back(item.anonymous_license.issuer_signature);
  }
  std::vector<bool> sig_ok =
      verifier_.VerifySameKeyBatch(public_key_, msgs, sigs, rng_);

  // Stage 2 — pseudonym certificates, verified once per distinct cert.
  std::vector<std::size_t> crl_items;
  std::vector<rel::KeyFingerprint> crl_keys;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!sig_ok[i]) {
      out[i].status = Status::kBadSignature;
    } else if (items[i].anonymous_license.kind != rel::LicenseKind::kAnonymous) {
      out[i].status = Status::kBadRequest;
    } else if (!verifier_.VerifyPseudonymCert(ca_key_, items[i].taker)) {
      out[i].status = Status::kBadCertificate;
    } else {
      crl_items.push_back(i);
      crl_keys.push_back(items[i].taker.KeyId());
    }
  }

  // Stage 3 — one shared CRL probe pass over the surviving items.
  std::vector<bool> revoked = verifier_.CrlProbePass(crl_, crl_keys);
  std::vector<std::size_t> eligible;
  eligible.reserve(crl_items.size());
  for (std::size_t j = 0; j < crl_items.size(); ++j) {
    if (revoked[j]) {
      out[crl_items[j]].status = Status::kRevoked;
    } else {
      eligible.push_back(crl_items[j]);
    }
  }

  // The RT-2 table counts the verifications actually performed, which is
  // the whole point of the batch path.
  GlobalOps().verify += (verifier_.stats() - before).full_verifies;

  // Stage 4 — spend-set updates on each id's home shard. Duplicates in
  // one batch serialize there in index order, first occurrence wins.
  std::vector<Status> spend;
  if (runtime_ != nullptr) {
    std::vector<rel::LicenseId> ids;
    ids.reserve(eligible.size());
    for (std::size_t i : eligible) {
      ids.push_back(items[i].anonymous_license.id);
    }
    runtime_->SpendBatch(ids, &spend, /*shed_on_full=*/true);
  } else {
    spend.reserve(eligible.size());
    for (std::size_t i : eligible) {
      spend.push_back(MarkSpent(items[i].anonymous_license.id)
                          ? Status::kOk
                          : Status::kAlreadySpent);
    }
  }

  // Stage 5 — transcripts, fraud evidence and issuance, in index order.
  for (std::size_t j = 0; j < eligible.size(); ++j) {
    std::size_t i = eligible[j];
    if (spend[j] == Status::kOverloaded) {
      // Shed by a full shard queue before any state change: the bearer
      // license is untouched and the client may simply retry.
      out[i].status = Status::kOverloaded;
      continue;
    }
    out[i] = FinalizeRedemption(items[i], spend[j]);
  }
  return out;
}

void ContentProvider::Revoke(const rel::KeyFingerprint& key_id) {
  crl_.Revoke(key_id);
}

std::vector<FraudEvidence> ContentProvider::TakeFraudEvidence() {
  std::vector<FraudEvidence> out = std::move(fraud_queue_);
  fraud_queue_.clear();
  return out;
}

}  // namespace core
}  // namespace p2drm
