#include "core/content_provider.h"

#include <chrono>
#include <numeric>
#include <stdexcept>

#include "core/metrics.h"
#include "crypto/chacha20.h"
#include "net/codec.h"

namespace p2drm {
namespace core {

namespace {

/// Merchant account name at the bank.
constexpr const char* kMerchantAccount = "cp";

/// Issue-stage RNG fork domain bytes (distinct per pipeline).
constexpr std::uint8_t kRedeemIssueDomain = 0x52;    // 'R'
constexpr std::uint8_t kPurchaseIssueDomain = 0x50;  // 'P'
constexpr std::uint8_t kExchangeIssueDomain = 0x58;  // 'X'

ContentProvider::PipelineTimings ToPipelineTimings(
    const server::BatchPipelineTimings& t) {
  ContentProvider::PipelineTimings out;
  out.verify_us = t.verify_us;
  out.spend_us = t.mutate_us;
  out.issue_us = t.issue_us;
  out.makespan_us = t.makespan_us;
  out.items = t.items;
  return out;
}

}  // namespace

ContentProvider::ContentProvider(const ContentProviderConfig& config,
                                 bignum::RandomSource* rng, const Clock* clock,
                                 PaymentProvider* bank,
                                 crypto::RsaPublicKey ca_key)
    : config_(config),
      rng_(rng),
      clock_(clock),
      bank_(bank),
      ca_key_(std::move(ca_key)),
      key_(crypto::GenerateRsaKey(config.signing_key_bits, rng)),
      public_key_(key_.PublicKey()),
      spent_(config.spent_backend),
      crl_(config.crl_strategy, config.expected_crl_entries) {
  GlobalOps().keygen += 1;
  if (bank_ != nullptr) bank_->OpenAccount(kMerchantAccount, 0);
  if (config_.redeem_shards > 0) {
    // Sharded path: the runtime owns the spent-set partitions and the
    // per-shard journal segments (it also replays any legacy unsharded
    // journal at the configured path).
    server::ServerRuntimeConfig rt;
    rt.shard_count = config_.redeem_shards;
    rt.queue_capacity = config_.redeem_queue_capacity;
    rt.spent_backend = config_.spent_backend;
    rt.journal_path_prefix = config_.spent_journal_path;
    runtime_ = std::make_unique<server::ServerRuntime>(rt);
  }
  if (config_.signer_pool_size > 0) {
    signer_pool_ =
        std::make_unique<server::SignerPool>(config_.signer_pool_size);
  }
  // The streaming front end always exists (it is cheap and thread-free);
  // without a pool its issue stage runs inline, which still buys the
  // deferred-commit window. The time lambda resolves time_source_ at
  // call time so set_time_source keeps working after construction.
  server::StagedBatchPipeline::Config staged;
  staged.pool = signer_pool_.get();
  staged.max_batches_in_flight = config_.max_batches_in_flight;
  staged.now_us = [this] {
    return time_source_ != nullptr ? time_source_() : server::SteadyNowUs();
  };
  staged_ = std::make_unique<server::StagedBatchPipeline>(std::move(staged));
  if (config_.redeem_shards == 0 && !config_.spent_journal_path.empty()) {
    // Crash recovery: rebuild the spent set from the journal, then reopen
    // the journal for appending.
    store::AppendLog::Replay(
        config_.spent_journal_path,
        [this](const std::vector<std::uint8_t>& record) {
          // One id per record, or a group-committed block of N ids
          // (AppendMany) — split by the fixed id width either way.
          if (record.empty() || record.size() % 16 != 0) return;
          for (std::size_t off = 0; off < record.size(); off += 16) {
            rel::LicenseId id;
            std::copy(record.begin() + static_cast<std::ptrdiff_t>(off),
                      record.begin() + static_cast<std::ptrdiff_t>(off + 16),
                      id.bytes.begin());
            spent_.Insert(id);
          }
        });
    spent_journal_ =
        std::make_unique<store::AppendLog>(config_.spent_journal_path);
  }
}

ContentProvider::~ContentProvider() = default;

rel::ContentId ContentProvider::Publish(
    const std::string& title, const std::vector<std::uint8_t>& plaintext,
    std::uint64_t price, const rel::Rights& rights) {
  CatalogEntry entry;
  entry.offer.content_id = next_content_id_++;
  entry.offer.title = title;
  entry.offer.price = price;
  entry.offer.rights = rights;

  rng_->Fill(entry.content_key.data(), entry.content_key.size());
  entry.encrypted.content_id = entry.offer.content_id;
  rng_->Fill(entry.encrypted.nonce.data(), entry.encrypted.nonce.size());
  crypto::ChaCha20 cipher(entry.content_key, entry.encrypted.nonce);
  entry.encrypted.ciphertext = cipher.Crypt(plaintext);

  rel::ContentId id = entry.offer.content_id;
  catalog_.emplace(id, std::move(entry));
  return id;
}

std::vector<Offer> ContentProvider::Catalog() const {
  std::vector<Offer> offers;
  offers.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_) {
    (void)id;
    offers.push_back(entry.offer);
  }
  return offers;
}

std::optional<Offer> ContentProvider::FindOffer(rel::ContentId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return std::nullopt;
  return it->second.offer;
}

const EncryptedContent& ContentProvider::GetContent(rel::ContentId id) const {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) {
    throw std::out_of_range("ContentProvider: unknown content id");
  }
  return it->second.encrypted;
}

rel::License ContentProvider::BuildLicense(
    rel::LicenseKind kind, rel::ContentId content_id,
    const rel::Rights& rights, const crypto::RsaPublicKey* bound_key,
    bignum::RandomSource* rng) const {
  auto it = catalog_.find(content_id);
  if (it == catalog_.end()) {
    throw std::out_of_range("ContentProvider: unknown content id");
  }
  rel::License lic;
  rng->Fill(lic.id.bytes.data(), lic.id.bytes.size());
  lic.kind = kind;
  lic.content_id = content_id;
  lic.rights = rights;
  lic.issued_at_s = clock_->NowEpochSeconds();
  if (kind == rel::LicenseKind::kUserBound) {
    lic.bound_key = bound_key->Fingerprint();
    std::vector<std::uint8_t> ck(it->second.content_key.begin(),
                                 it->second.content_key.end());
    GlobalOps().hybrid_enc += 1;
    lic.wrapped_content_key =
        crypto::RsaHybridEncrypt(*bound_key, ck, rng).Serialize();
  }
  GlobalOps().sign += 1;
  lic.issuer_signature = crypto::RsaSignFdh(key_, lic.CanonicalBytes());
  return lic;
}

void ContentProvider::RecordIssued(const rel::License& license,
                                   const crypto::RsaPublicKey* bound_key) {
  if (license.kind == rel::LicenseKind::kUserBound) {
    issued_keys_.emplace(license.bound_key, *bound_key);
  }
  ++licenses_issued_;
}

rel::License ContentProvider::IssueLicense(
    rel::LicenseKind kind, rel::ContentId content_id,
    const rel::Rights& rights, const crypto::RsaPublicKey* bound_key) {
  rel::License lic = BuildLicense(kind, content_id, rights, bound_key, rng_);
  RecordIssued(lic, bound_key);
  return lic;
}

crypto::HmacDrbg ContentProvider::RedeemIssueRng(
    const rel::LicenseId& redeemed_id) {
  std::vector<std::uint8_t> tag;
  tag.reserve(1 + redeemed_id.bytes.size());
  tag.push_back(kRedeemIssueDomain);
  tag.insert(tag.end(), redeemed_id.bytes.begin(), redeemed_id.bytes.end());
  return crypto::ForkRandom(rng_, tag);
}

crypto::HmacDrbg ContentProvider::PurchaseIssueRng() {
  std::uint64_t nonce = purchase_issue_nonce_++;
  std::vector<std::uint8_t> tag(9);
  tag[0] = kPurchaseIssueDomain;
  for (int i = 0; i < 8; ++i) {
    tag[1 + i] = static_cast<std::uint8_t>(nonce >> (8 * (7 - i)));
  }
  return crypto::ForkRandom(rng_, tag);
}

crypto::HmacDrbg ContentProvider::ExchangeIssueRng(
    const rel::LicenseId& retired_id) {
  std::vector<std::uint8_t> tag;
  tag.reserve(1 + retired_id.bytes.size());
  tag.push_back(kExchangeIssueDomain);
  tag.insert(tag.end(), retired_id.bytes.begin(), retired_id.bytes.end());
  return crypto::ForkRandom(rng_, tag);
}

std::vector<Status> ContentProvider::SpendEligible(
    const std::vector<std::size_t>& eligible,
    const std::function<const rel::LicenseId&(std::size_t)>& id_of) {
  std::vector<Status> spend;
  if (runtime_ != nullptr) {
    // Shard-serialized: duplicates inside one batch resolve on their
    // home shard in index order, first occurrence wins; a full shard
    // queue sheds its slice with kOverloaded before any state change.
    std::vector<rel::LicenseId> ids;
    ids.reserve(eligible.size());
    for (std::size_t i : eligible) ids.push_back(id_of(i));
    runtime_->SpendBatch(ids, &spend, /*shed_on_full=*/true);
  } else {
    // Unsharded path: one batch probe over the flat table (in index
    // order, so in-batch duplicates keep first-wins semantics) and one
    // group-committed journal block for the fresh subset.
    const std::size_t n = eligible.size();
    std::vector<rel::LicenseId> ids(n);
    for (std::size_t j = 0; j < n; ++j) ids[j] = id_of(eligible[j]);
    std::vector<std::uint8_t> fresh(n);
    spent_.InsertBatch(ids.data(), n, fresh.data());
    if (spent_journal_ != nullptr) {
      std::vector<std::uint8_t> blob;
      blob.reserve(n * 16);
      for (std::size_t j = 0; j < n; ++j) {
        if (fresh[j]) {
          blob.insert(blob.end(), ids[j].bytes.begin(), ids[j].bytes.end());
        }
      }
      if (!blob.empty()) {
        spent_journal_->AppendMany(blob.data(), 16, blob.size() / 16);
      }
    }
    spend.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      spend[j] = fresh[j] ? Status::kOk : Status::kAlreadySpent;
    }
  }
  return spend;
}

ContentProvider::PurchaseResult ContentProvider::Purchase(
    const PseudonymCertificate& buyer, rel::ContentId content_id,
    const std::vector<Coin>& payment) {
  PurchaseResult result;

  GlobalOps().verify += 1;
  if (!VerifyPseudonymCert(ca_key_, buyer)) {
    result.status = Status::kBadCertificate;
    return result;
  }
  if (crl_.IsRevoked(buyer.KeyId())) {
    result.status = Status::kRevoked;
    return result;
  }
  auto offer = FindOffer(content_id);
  if (!offer.has_value()) {
    result.status = Status::kUnknownContent;
    return result;
  }
  std::uint64_t paid = std::accumulate(
      payment.begin(), payment.end(), std::uint64_t{0},
      [](std::uint64_t acc, const Coin& c) { return acc + c.denomination; });
  if (paid != offer->price) {
    result.status = Status::kWrongPrice;
    return result;
  }
  // Deposit the coins. A failure mid-way rejects the purchase; already-
  // deposited coins stay deposited (the buyer attempted fraud or sent a
  // bad coin — the paper's bearer-instrument semantics).
  for (const Coin& coin : payment) {
    Status s = bank_->Deposit(coin, kMerchantAccount);
    if (s != Status::kOk) {
      result.status = s;
      return result;
    }
  }

  pseudonyms_seen_.insert(buyer.KeyId());
  result.license = IssueLicense(rel::LicenseKind::kUserBound, content_id,
                                offer->rights, &buyer.pseudonym_key);
  result.status = Status::kOk;
  return result;
}

/// Per-batch purchase state, heap-boxed so the same plan serves both the
/// synchronous Run and a streamed batch that outlives its Submit call.
struct ContentProvider::PurchaseBatchState {
  std::vector<PurchaseItem> owned;  ///< streaming moves the batch here
  const std::vector<PurchaseItem>* items = nullptr;  ///< always valid
  std::vector<PurchaseResult> out;
  std::vector<rel::Rights> rights_by_item;
  std::vector<crypto::HmacDrbg> forks;
  std::vector<rel::License> issued;
};

server::BatchPipeline::Plan ContentProvider::BuildPurchasePlan(
    std::shared_ptr<PurchaseBatchState> st) {
  st->out.resize(st->items->size());
  st->rights_by_item.resize(st->items->size());

  server::BatchPipeline::Plan plan;
  plan.item_count = st->items->size();

  // Verify: each distinct pseudonym certificate costs one full
  // verification (memoized within and across batches), then one shared
  // CRL probe pass covers every surviving item.
  plan.verify = [this, st] {
    const std::vector<PurchaseItem>& items = *st->items;
    server::BatchVerifierStats before = verifier_.stats();
    std::vector<std::size_t> crl_items;
    std::vector<rel::KeyFingerprint> crl_keys;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!verifier_.VerifyPseudonymCert(ca_key_, items[i].buyer)) {
        st->out[i].status = Status::kBadCertificate;
      } else {
        crl_items.push_back(i);
        crl_keys.push_back(items[i].buyer.KeyId());
      }
    }
    std::vector<bool> revoked = verifier_.CrlProbePass(crl_, crl_keys);
    std::vector<std::size_t> eligible;
    eligible.reserve(crl_items.size());
    for (std::size_t j = 0; j < crl_items.size(); ++j) {
      if (revoked[j]) {
        st->out[crl_items[j]].status = Status::kRevoked;
      } else {
        eligible.push_back(crl_items[j]);
      }
    }
    GlobalOps().verify += (verifier_.stats() - before).full_verifies;
    return eligible;
  };

  // Mutate: catalog/price validation, then ONE batched deposit covering
  // every surviving item's coins — double-spend checks shard at the
  // bank instead of serializing per coin. Blocking (never shed): a
  // purchase item must not come back kOverloaded with some of its coins
  // already deposited. Per-item status is the first failing coin's, as
  // in Purchase(); already-deposited coins stay deposited
  // (bearer-instrument rules).
  plan.mutate = [this, st](const std::vector<std::size_t>& eligible) {
    const std::vector<PurchaseItem>& items = *st->items;
    std::vector<Status> status(eligible.size(), Status::kOk);
    std::vector<PaymentProvider::DepositItem> coins;
    std::vector<std::size_t> coin_owner;  // coin -> index into eligible
    for (std::size_t j = 0; j < eligible.size(); ++j) {
      std::size_t i = eligible[j];
      auto offer = FindOffer(items[i].content_id);
      if (!offer.has_value()) {
        status[j] = Status::kUnknownContent;
        continue;
      }
      std::uint64_t paid = std::accumulate(
          items[i].payment.begin(), items[i].payment.end(), std::uint64_t{0},
          [](std::uint64_t acc, const Coin& c) {
            return acc + c.denomination;
          });
      if (paid != offer->price) {
        status[j] = Status::kWrongPrice;
        continue;
      }
      st->rights_by_item[i] = offer->rights;
      for (const Coin& coin : items[i].payment) {
        coins.push_back(PaymentProvider::DepositItem{coin, kMerchantAccount});
        coin_owner.push_back(j);
      }
    }
    if (!coins.empty()) {
      std::vector<Status> coin_st =
          bank_->DepositBatch(coins, /*shed_on_full=*/false);
      for (std::size_t c = 0; c < coins.size(); ++c) {
        if (coin_st[c] != Status::kOk &&
            status[coin_owner[c]] == Status::kOk) {
          status[coin_owner[c]] = coin_st[c];
        }
      }
    }
    return status;
  };

  // Issue: license signing and content-key wrapping on the signer pool
  // or shard workers, one nonce-tagged RNG fork per item drawn in index
  // order on the dispatch thread.
  plan.begin_issue = [st](std::size_t n) {
    st->forks.reserve(n);
    st->issued.resize(n);
  };
  plan.draw_fork = [this, st](std::size_t k, std::size_t i) {
    (void)k;
    (void)i;
    st->forks.push_back(PurchaseIssueRng());
  };
  plan.issue = [this, st](std::size_t k, std::size_t i, Status) {
    const std::vector<PurchaseItem>& items = *st->items;
    st->issued[k] = BuildLicense(rel::LicenseKind::kUserBound,
                                 items[i].content_id, st->rights_by_item[i],
                                 &items[i].buyer.pseudonym_key,
                                 &st->forks[k]);
  };

  // Commit — issued-key map, pseudonym bookkeeping and counters, on the
  // dispatch thread in index order.
  plan.commit = [this, st](std::size_t k, std::size_t i, Status) {
    const std::vector<PurchaseItem>& items = *st->items;
    pseudonyms_seen_.insert(items[i].buyer.KeyId());
    RecordIssued(st->issued[k], &items[i].buyer.pseudonym_key);
    st->out[i].license = std::move(st->issued[k]);
    st->out[i].status = Status::kOk;
  };
  plan.reject = [st](std::size_t i, Status s) { st->out[i].status = s; };
  return plan;
}

std::vector<ContentProvider::PurchaseResult> ContentProvider::PurchaseBatch(
    const std::vector<PurchaseItem>& items) {
  if (items.empty()) return {};
  auto st = std::make_shared<PurchaseBatchState>();
  st->items = &items;  // borrowed: Run completes before we return
  server::BatchPipeline::Plan plan = BuildPurchasePlan(st);
  last_timings_ = ToPipelineTimings(server::BatchPipeline::Run(
      plan, PipelineExecutor(), time_source_, &obs_purchase_));
  return std::move(st->out);
}

void ContentProvider::StreamPurchaseBatch(
    std::vector<PurchaseItem> items,
    std::function<void(std::vector<PurchaseResult>)> on_done) {
  auto st = std::make_shared<PurchaseBatchState>();
  st->owned = std::move(items);
  st->items = &st->owned;
  staged_->Submit(BuildPurchasePlan(st), &obs_purchase_,
                  [st, cb = std::move(on_done)] {
                    if (cb != nullptr) cb(std::move(st->out));
                  });
}

void ContentProvider::set_observability(const obs::Sink& sink,
                                        const std::string& prefix) {
  auto wire = [&](server::PipelineObs* p, const char* flow,
                  const char* span_verify, const char* span_mutate,
                  const char* span_issue) {
    p->tracer = sink.tracer;
    p->registry = sink.registry;
    p->span_verify = span_verify;
    p->span_mutate = span_mutate;
    p->span_issue = span_issue;
    if (sink.registry != nullptr) {
      const std::string base = prefix + "pipeline." + flow + ".";
      p->hist_verify_us = sink.registry->Histogram(base + "verify_us");
      p->hist_mutate_us = sink.registry->Histogram(base + "mutate_us");
      p->hist_issue_us = sink.registry->Histogram(base + "issue_us");
      p->ctr_items = sink.registry->Counter(base + "items");
      p->ctr_shed = sink.registry->Counter(base + "shed");
    }
  };
  wire(&obs_redeem_, "redeem", "redeem.verify", "redeem.spend",
       "redeem.issue");
  wire(&obs_purchase_, "purchase", "purchase.verify", "purchase.mutate",
       "purchase.issue");
  wire(&obs_exchange_, "exchange", "exchange.verify", "exchange.spend",
       "exchange.issue");
  if (runtime_ != nullptr) {
    runtime_->set_observability(sink.registry, prefix + "runtime.");
  }
  if (signer_pool_ != nullptr) {
    signer_pool_->set_observability(sink.registry, prefix + "signer_pool.");
  }
  if (staged_ != nullptr) {
    staged_->set_observability(sink.registry, prefix + "streaming.");
  }
}

std::vector<std::uint8_t> ContentProvider::TransferChallengeBytes(
    const rel::LicenseId& id) {
  net::ByteWriter w;
  w.U8(0x31);  // domain tag: transfer possession proof
  w.Fixed(id.bytes);
  return w.Take();
}

bool ContentProvider::MarkSpent(const rel::LicenseId& id) {
  if (runtime_ != nullptr) {
    // Serialize on the id's home shard, exactly like the batch path, so
    // single-item and batched redemptions can never double-spend one id.
    return runtime_->SpendOne(id) == Status::kOk;
  }
  if (!spent_.Insert(id)) return false;
  if (spent_journal_ != nullptr) {
    spent_journal_->Append(
        std::vector<std::uint8_t>(id.bytes.begin(), id.bytes.end()));
  }
  return true;
}

ContentProvider::ExchangeResult ContentProvider::ExchangeForAnonymous(
    const rel::License& license,
    const std::vector<std::uint8_t>& possession_sig) {
  ExchangeResult result;

  // The license must be ours, key-bound, and transferable.
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(public_key_, license.CanonicalBytes(),
                            license.issuer_signature)) {
    result.status = Status::kBadSignature;
    return result;
  }
  if (license.kind != rel::LicenseKind::kUserBound) {
    result.status = Status::kBadRequest;
    return result;
  }
  if (!license.rights.allow_transfer) {
    result.status = Status::kNotTransferable;
    return result;
  }
  if (crl_.IsRevoked(license.bound_key)) {
    result.status = Status::kRevoked;
    return result;
  }

  // Possession proof: the giver's card signs the transfer challenge with
  // the pseudonym key the license is bound to. The CP learns only that the
  // caller holds that key, not who they are. The verification key is the
  // one the license was issued against, remembered by fingerprint.
  auto key_it = issued_keys_.find(license.bound_key);
  if (key_it == issued_keys_.end()) {
    result.status = Status::kBadRequest;
    return result;
  }
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(key_it->second,
                            TransferChallengeBytes(license.id),
                            possession_sig)) {
    result.status = Status::kBadSignature;
    return result;
  }

  // Retire the old license; a spent id can never be exchanged again.
  if (!MarkSpent(license.id)) {
    result.status = Status::kAlreadySpent;
    return result;
  }

  // Batch of one: the bearer is signed from the same id-tagged fork
  // ExchangeBatch draws, so a fixed seed issues identical bytes at any
  // shard count.
  crypto::HmacDrbg issue_rng = ExchangeIssueRng(license.id);
  result.anonymous_license =
      BuildLicense(rel::LicenseKind::kAnonymous, license.content_id,
                   license.rights, nullptr, &issue_rng);
  RecordIssued(result.anonymous_license, nullptr);
  result.status = Status::kOk;
  return result;
}

/// Per-batch exchange state; see PurchaseBatchState for the boxing rule.
struct ContentProvider::ExchangeBatchState {
  std::vector<ExchangeItem> owned;  ///< streaming moves the batch here
  const std::vector<ExchangeItem>* items = nullptr;  ///< always valid
  std::vector<ExchangeResult> out;
  std::vector<crypto::HmacDrbg> forks;
  std::vector<rel::License> bearer;
};

server::BatchPipeline::Plan ContentProvider::BuildExchangePlan(
    std::shared_ptr<ExchangeBatchState> st) {
  st->out.resize(st->items->size());

  server::BatchPipeline::Plan plan;
  plan.item_count = st->items->size();

  // Verify: one screened same-key verification covers every issuer
  // signature (all licenses are ours), one shared pass answers the CRL
  // probes on the bound keys, and the per-item possession proofs reuse
  // the verifier's cached Montgomery contexts. Checks run in the exact
  // order ExchangeForAnonymous applies them, so per-item statuses match.
  // NOTE the issued_keys_ lookups: exchange verify reads state exchange
  // commits write, so exchange batches that depend on each other's
  // commits must not be streamed concurrently.
  plan.verify = [this, st] {
    const std::vector<ExchangeItem>& items = *st->items;
    server::BatchVerifierStats before = verifier_.stats();
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::vector<std::uint8_t>> sigs;
    msgs.reserve(items.size());
    sigs.reserve(items.size());
    for (const ExchangeItem& item : items) {
      msgs.push_back(item.license.CanonicalBytes());
      sigs.push_back(item.license.issuer_signature);
    }
    std::vector<bool> sig_ok =
        verifier_.VerifySameKeyBatch(public_key_, msgs, sigs, rng_);

    std::vector<std::size_t> crl_items;
    std::vector<rel::KeyFingerprint> crl_keys;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const rel::License& lic = items[i].license;
      if (!sig_ok[i]) {
        st->out[i].status = Status::kBadSignature;
      } else if (lic.kind != rel::LicenseKind::kUserBound) {
        st->out[i].status = Status::kBadRequest;
      } else if (!lic.rights.allow_transfer) {
        st->out[i].status = Status::kNotTransferable;
      } else {
        crl_items.push_back(i);
        crl_keys.push_back(lic.bound_key);
      }
    }
    std::vector<bool> revoked = verifier_.CrlProbePass(crl_, crl_keys);

    std::vector<std::size_t> eligible;
    eligible.reserve(crl_items.size());
    for (std::size_t j = 0; j < crl_items.size(); ++j) {
      std::size_t i = crl_items[j];
      if (revoked[j]) {
        st->out[i].status = Status::kRevoked;
        continue;
      }
      auto key_it = issued_keys_.find(items[i].license.bound_key);
      if (key_it == issued_keys_.end()) {
        st->out[i].status = Status::kBadRequest;
        continue;
      }
      if (!verifier_.VerifyFdh(key_it->second,
                               TransferChallengeBytes(items[i].license.id),
                               items[i].possession_sig)) {
        st->out[i].status = Status::kBadSignature;
        continue;
      }
      eligible.push_back(i);
    }
    GlobalOps().verify += (verifier_.stats() - before).full_verifies;
    return eligible;
  };

  // Mutate: retire the old licenses on their home shards. Shed items
  // keep their bearer-exchangeable license untouched.
  plan.mutate = [this, st](const std::vector<std::size_t>& eligible) {
    return SpendEligible(eligible,
                         [st](std::size_t i) -> const rel::LicenseId& {
                           return (*st->items)[i].license.id;
                         });
  };

  // Issue: bearer-license signing on the signer pool or shard workers,
  // one id-tagged fork per item drawn dispatch-side in index order.
  plan.begin_issue = [st](std::size_t n) {
    st->forks.reserve(n);
    st->bearer.resize(n);
  };
  plan.draw_fork = [this, st](std::size_t k, std::size_t i) {
    (void)k;
    st->forks.push_back(ExchangeIssueRng((*st->items)[i].license.id));
  };
  plan.issue = [this, st](std::size_t k, std::size_t i, Status) {
    const rel::License& lic = (*st->items)[i].license;
    st->bearer[k] = BuildLicense(rel::LicenseKind::kAnonymous,
                                 lic.content_id, lic.rights, nullptr,
                                 &st->forks[k]);
  };
  plan.commit = [this, st](std::size_t k, std::size_t i, Status) {
    RecordIssued(st->bearer[k], nullptr);
    st->out[i].anonymous_license = std::move(st->bearer[k]);
    st->out[i].status = Status::kOk;
  };
  plan.reject = [st](std::size_t i, Status s) { st->out[i].status = s; };
  return plan;
}

std::vector<ContentProvider::ExchangeResult> ContentProvider::ExchangeBatch(
    const std::vector<ExchangeItem>& items) {
  if (items.empty()) return {};
  auto st = std::make_shared<ExchangeBatchState>();
  st->items = &items;  // borrowed: Run completes before we return
  server::BatchPipeline::Plan plan = BuildExchangePlan(st);
  last_timings_ = ToPipelineTimings(server::BatchPipeline::Run(
      plan, PipelineExecutor(), time_source_, &obs_exchange_));
  return std::move(st->out);
}

void ContentProvider::StreamExchangeBatch(
    std::vector<ExchangeItem> items,
    std::function<void(std::vector<ExchangeResult>)> on_done) {
  auto st = std::make_shared<ExchangeBatchState>();
  st->owned = std::move(items);
  st->items = &st->owned;
  staged_->Submit(BuildExchangePlan(st), &obs_exchange_,
                  [st, cb = std::move(on_done)] {
                    if (cb != nullptr) cb(std::move(st->out));
                  });
}

RedemptionTranscript ContentProvider::MakeTranscript(
    const rel::LicenseId& id, const PseudonymCertificate& cert) const {
  RedemptionTranscript t;
  t.license_id = id;
  t.pseudonym_cert = cert.Serialize();
  t.timestamp_s = clock_->NowEpochSeconds();
  GlobalOps().sign += 1;
  t.cp_signature = crypto::RsaSignFdh(key_, t.CanonicalBytes());
  return t;
}

ContentProvider::PurchaseResult ContentProvider::RedeemAnonymous(
    const rel::License& anonymous_license, const PseudonymCertificate& taker) {
  PurchaseResult result;

  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(public_key_, anonymous_license.CanonicalBytes(),
                            anonymous_license.issuer_signature)) {
    result.status = Status::kBadSignature;
    return result;
  }
  if (anonymous_license.kind != rel::LicenseKind::kAnonymous) {
    result.status = Status::kBadRequest;
    return result;
  }
  GlobalOps().verify += 1;
  if (!VerifyPseudonymCert(ca_key_, taker)) {
    result.status = Status::kBadCertificate;
    return result;
  }
  if (crl_.IsRevoked(taker.KeyId())) {
    result.status = Status::kRevoked;
    return result;
  }

  // Same three stages as the batch path, one item wide: spend, then sign
  // with the id-tagged RNG fork, then commit. A single redemption and a
  // batch of one are therefore bit-identical under a fixed seed.
  Status spend = MarkSpent(anonymous_license.id) ? Status::kOk
                                                 : Status::kAlreadySpent;
  RedeemItem item{anonymous_license, taker};
  crypto::HmacDrbg issue_rng = RedeemIssueRng(anonymous_license.id);
  IssuedRedemption issued = SignRedemption(item, spend, &issue_rng);
  return CommitRedemption(item, std::move(issued));
}

ContentProvider::IssuedRedemption ContentProvider::SignRedemption(
    const RedeemItem& item, Status spend_status,
    bignum::RandomSource* rng) const {
  IssuedRedemption out;
  // The transcript is signed even for a double redemption — it is the
  // second half of the fraud evidence handed to the TTP.
  out.transcript = MakeTranscript(item.anonymous_license.id, item.taker);
  if (spend_status == Status::kAlreadySpent) {
    out.status = Status::kAlreadySpent;
    return out;
  }
  out.license = BuildLicense(rel::LicenseKind::kUserBound,
                             item.anonymous_license.content_id,
                             item.anonymous_license.rights,
                             &item.taker.pseudonym_key, rng);
  out.status = Status::kOk;
  return out;
}

void ContentProvider::ForEachIssue(
    std::size_t count, const std::function<void(std::size_t)>& sign_item) {
  if (signer_pool_ != nullptr) {
    // Dedicated pool first: issuance has no shard affinity, and keeping
    // it off the shard workers decouples signing latency from
    // spend-queue depth. RunAll joins, so borrowing sign_item and the
    // time source by reference is safe.
    const server::TimeSourceUs& now_us = time_source_;
    signer_pool_->RunAll(
        count, [&sign_item, &now_us](server::SignerContext& ctx,
                                     std::size_t k) {
          std::uint64_t t0 =
              now_us != nullptr ? now_us() : server::SteadyNowUs();
          sign_item(k);
          std::uint64_t t1 =
              now_us != nullptr ? now_us() : server::SteadyNowUs();
          ctx.AccrueSimClockUs(t1 - t0);
        });
    return;
  }
  if (runtime_ != nullptr) {
    // The injected time source (when any) must be thread-safe: these
    // tasks read it concurrently from the shard workers.
    const server::TimeSourceUs& now_us = time_source_;
    std::vector<server::ServerRuntime::Task> tasks;
    tasks.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      // `sign_item` outlives the tasks because RunAll joins; its calls
      // write disjoint per-k slots, so concurrent invocation is safe.
      tasks.push_back([&sign_item, &now_us, k](server::ShardContext& ctx) {
        std::uint64_t t0 =
            now_us != nullptr ? now_us() : server::SteadyNowUs();
        sign_item(k);
        std::uint64_t t1 =
            now_us != nullptr ? now_us() : server::SteadyNowUs();
        ctx.sim_clock_us += t1 - t0;
      });
    }
    runtime_->RunAll(std::move(tasks));
  } else {
    for (std::size_t k = 0; k < count; ++k) sign_item(k);
  }
}

server::BatchPipeline::IssueExecutor ContentProvider::PipelineExecutor() {
  return [this](std::size_t count,
                const std::function<void(std::size_t)>& sign_item) {
    ForEachIssue(count, sign_item);
  };
}

ContentProvider::PurchaseResult ContentProvider::CommitRedemption(
    const RedeemItem& item, IssuedRedemption issued) {
  PurchaseResult result;
  if (issued.status == Status::kAlreadySpent) {
    // Double redemption: build fraud evidence from the first transcript.
    ++double_redemptions_;
    auto first = redemption_transcripts_.find(item.anonymous_license.id);
    if (first != redemption_transcripts_.end()) {
      FraudEvidence evidence;
      evidence.first = first->second;
      evidence.second = std::move(issued.transcript);
      fraud_queue_.push_back(std::move(evidence));
    }
    result.status = Status::kAlreadySpent;
    return result;
  }
  redemption_transcripts_.emplace(item.anonymous_license.id,
                                  std::move(issued.transcript));

  pseudonyms_seen_.insert(item.taker.KeyId());
  RecordIssued(issued.license, &item.taker.pseudonym_key);
  result.license = std::move(issued.license);
  result.status = Status::kOk;
  return result;
}

/// Per-batch redemption state; see PurchaseBatchState for the boxing
/// rule.
struct ContentProvider::RedeemBatchState {
  std::vector<RedeemItem> owned;  ///< streaming moves the batch here
  const std::vector<RedeemItem>* items = nullptr;  ///< always valid
  std::vector<PurchaseResult> out;
  std::vector<crypto::HmacDrbg> forks;
  std::vector<IssuedRedemption> issued;
};

server::BatchPipeline::Plan ContentProvider::BuildRedeemPlan(
    std::shared_ptr<RedeemBatchState> st) {
  st->out.resize(st->items->size());

  server::BatchPipeline::Plan plan;
  plan.item_count = st->items->size();

  // Verify, amortized: every license in the batch is signed by our own
  // key, so one screened same-key verification covers the whole group;
  // each distinct pseudonym certificate is verified once; one shared
  // pass answers the CRL probes. The RT-2 table counts the
  // verifications actually performed, which is the whole point of the
  // batch path.
  plan.verify = [this, st] {
    const std::vector<RedeemItem>& items = *st->items;
    server::BatchVerifierStats before = verifier_.stats();
    std::vector<std::vector<std::uint8_t>> msgs;
    std::vector<std::vector<std::uint8_t>> sigs;
    msgs.reserve(items.size());
    sigs.reserve(items.size());
    for (const RedeemItem& item : items) {
      msgs.push_back(item.anonymous_license.CanonicalBytes());
      sigs.push_back(item.anonymous_license.issuer_signature);
    }
    std::vector<bool> sig_ok =
        verifier_.VerifySameKeyBatch(public_key_, msgs, sigs, rng_);

    std::vector<std::size_t> crl_items;
    std::vector<rel::KeyFingerprint> crl_keys;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!sig_ok[i]) {
        st->out[i].status = Status::kBadSignature;
      } else if (items[i].anonymous_license.kind !=
                 rel::LicenseKind::kAnonymous) {
        st->out[i].status = Status::kBadRequest;
      } else if (!verifier_.VerifyPseudonymCert(ca_key_, items[i].taker)) {
        st->out[i].status = Status::kBadCertificate;
      } else {
        crl_items.push_back(i);
        crl_keys.push_back(items[i].taker.KeyId());
      }
    }
    std::vector<bool> revoked = verifier_.CrlProbePass(crl_, crl_keys);
    std::vector<std::size_t> eligible;
    eligible.reserve(crl_items.size());
    for (std::size_t j = 0; j < crl_items.size(); ++j) {
      if (revoked[j]) {
        st->out[crl_items[j]].status = Status::kRevoked;
      } else {
        eligible.push_back(crl_items[j]);
      }
    }
    GlobalOps().verify += (verifier_.stats() - before).full_verifies;
    return eligible;
  };

  // Mutate: shard-serialized spent-set updates on each id's home shard.
  plan.mutate = [this, st](const std::vector<std::size_t>& eligible) {
    return SpendEligible(eligible,
                         [st](std::size_t i) -> const rel::LicenseId& {
                           return (*st->items)[i].anonymous_license.id;
                         });
  };
  // A detected double redemption still gets signed: the transcript is
  // the second half of the fraud evidence handed to the TTP.
  plan.proceed = [](Status s) { return s == Status::kAlreadySpent; };

  // Issue: transcript + fresh-license signing, the dominant per-item
  // private-key cost, fanned out to the signer pool or shard workers.
  plan.begin_issue = [st](std::size_t n) {
    st->forks.reserve(n);
    st->issued.resize(n);
  };
  plan.draw_fork = [this, st](std::size_t k, std::size_t i) {
    (void)k;
    st->forks.push_back(RedeemIssueRng((*st->items)[i].anonymous_license.id));
  };
  plan.issue = [this, st](std::size_t k, std::size_t i, Status spend) {
    st->issued[k] = SignRedemption((*st->items)[i], spend, &st->forks[k]);
  };

  // Commit — state mutations on the dispatch thread, in index order:
  // transcript map, fraud evidence, pseudonym bookkeeping, counters.
  plan.commit = [this, st](std::size_t k, std::size_t i, Status) {
    st->out[i] = CommitRedemption((*st->items)[i], std::move(st->issued[k]));
  };
  plan.reject = [st](std::size_t i, Status s) { st->out[i].status = s; };
  return plan;
}

std::vector<ContentProvider::PurchaseResult>
ContentProvider::RedeemAnonymousBatch(const std::vector<RedeemItem>& items) {
  if (items.empty()) return {};
  auto st = std::make_shared<RedeemBatchState>();
  st->items = &items;  // borrowed: Run completes before we return
  server::BatchPipeline::Plan plan = BuildRedeemPlan(st);
  last_timings_ = ToPipelineTimings(server::BatchPipeline::Run(
      plan, PipelineExecutor(), time_source_, &obs_redeem_));
  return std::move(st->out);
}

void ContentProvider::StreamRedeemBatch(
    std::vector<RedeemItem> items,
    std::function<void(std::vector<PurchaseResult>)> on_done) {
  auto st = std::make_shared<RedeemBatchState>();
  st->owned = std::move(items);
  st->items = &st->owned;
  staged_->Submit(BuildRedeemPlan(st), &obs_redeem_,
                  [st, cb = std::move(on_done)] {
                    if (cb != nullptr) cb(std::move(st->out));
                  });
}

ContentProvider::PipelineTimings ContentProvider::FlushStreaming() {
  last_timings_ = ToPipelineTimings(staged_->Flush());
  return last_timings_;
}

std::optional<RedemptionTranscript> ContentProvider::TranscriptFor(
    const rel::LicenseId& id) const {
  auto it = redemption_transcripts_.find(id);
  if (it == redemption_transcripts_.end()) return std::nullopt;
  return it->second;
}

void ContentProvider::Revoke(const rel::KeyFingerprint& key_id) {
  crl_.Revoke(key_id);
}

std::vector<FraudEvidence> ContentProvider::TakeFraudEvidence() {
  std::vector<FraudEvidence> out = std::move(fraud_queue_);
  fraud_queue_.clear();
  return out;
}

}  // namespace core
}  // namespace p2drm
