#include "core/ttp.h"

#include "core/metrics.h"
#include "net/codec.h"

namespace p2drm {
namespace core {

std::vector<std::uint8_t> RedemptionTranscript::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(0x11);  // domain tag: redemption transcript
  w.Fixed(license_id.bytes);
  w.Blob(pseudonym_cert);
  w.U64(timestamp_s);
  return w.Take();
}

std::vector<std::uint8_t> RedemptionTranscript::Serialize() const {
  net::ByteWriter w;
  w.Fixed(license_id.bytes);
  w.Blob(pseudonym_cert);
  w.U64(timestamp_s);
  w.Blob(cp_signature);
  return w.Take();
}

RedemptionTranscript RedemptionTranscript::Deserialize(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  RedemptionTranscript t;
  t.license_id.bytes = r.Fixed<16>();
  t.pseudonym_cert = r.Blob();
  t.timestamp_s = r.U64();
  t.cp_signature = r.Blob();
  r.ExpectEnd();
  return t;
}

std::vector<std::uint8_t> FraudEvidence::Serialize() const {
  net::ByteWriter w;
  w.Blob(first.Serialize());
  w.Blob(second.Serialize());
  return w.Take();
}

FraudEvidence FraudEvidence::Deserialize(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  FraudEvidence e;
  e.first = RedemptionTranscript::Deserialize(r.Blob());
  e.second = RedemptionTranscript::Deserialize(r.Blob());
  r.ExpectEnd();
  return e;
}

std::vector<std::uint8_t> EscrowPayload::Serialize() const {
  net::ByteWriter w;
  w.U64(card_id);
  w.Fixed(nonce);
  return w.Take();
}

bool EscrowPayload::Deserialize(const std::vector<std::uint8_t>& b,
                                EscrowPayload* out) {
  if (b.size() != 8 + 16) return false;
  net::ByteReader r(b);
  out->card_id = r.U64();
  out->nonce = r.Fixed<16>();
  return true;
}

TrustedThirdParty::TrustedThirdParty(std::size_t modulus_bits,
                                     bignum::RandomSource* rng)
    : key_(crypto::GenerateRsaKey(modulus_bits, rng)),
      public_key_(key_.PublicKey()) {
  GlobalOps().keygen += 1;
}

TrustedThirdParty::OpenResult TrustedThirdParty::OpenEscrow(
    const FraudEvidence& evidence, const crypto::RsaPublicKey& cp_key) {
  OpenResult result;

  // 1. Both transcripts must be provider-signed.
  GlobalOps().verify += 2;
  if (!crypto::RsaVerifyFdh(cp_key, evidence.first.CanonicalBytes(),
                            evidence.first.cp_signature) ||
      !crypto::RsaVerifyFdh(cp_key, evidence.second.CanonicalBytes(),
                            evidence.second.cp_signature)) {
    ++refused_count_;
    result.reason = "transcript signature invalid";
    return result;
  }

  // 2. They must conflict: same license id, distinct attempts.
  if (evidence.first.license_id != evidence.second.license_id) {
    ++refused_count_;
    result.reason = "transcripts reference different licenses";
    return result;
  }
  if (evidence.first.pseudonym_cert == evidence.second.pseudonym_cert &&
      evidence.first.timestamp_s == evidence.second.timestamp_s) {
    ++refused_count_;
    result.reason = "transcripts are identical, not conflicting";
    return result;
  }

  // 3. Open the escrow of the second (fraudulent) attempt.
  PseudonymCertificate cert;
  try {
    cert = PseudonymCertificate::Deserialize(evidence.second.pseudonym_cert);
  } catch (const net::CodecError&) {
    ++refused_count_;
    result.reason = "malformed pseudonym certificate";
    return result;
  }
  crypto::HybridCiphertext escrow_ct;
  try {
    escrow_ct = crypto::HybridCiphertext::Deserialize(cert.escrow);
  } catch (const std::exception&) {
    ++refused_count_;
    result.reason = "malformed escrow";
    return result;
  }
  std::vector<std::uint8_t> plain;
  GlobalOps().hybrid_dec += 1;
  if (!crypto::RsaHybridDecrypt(key_, escrow_ct, &plain)) {
    ++refused_count_;
    result.reason = "escrow does not decrypt";
    return result;
  }
  EscrowPayload payload;
  if (!EscrowPayload::Deserialize(plain, &payload)) {
    ++refused_count_;
    result.reason = "escrow payload malformed";
    return result;
  }

  ++opened_count_;
  result.opened = true;
  result.card_id = payload.card_id;
  return result;
}

}  // namespace core
}  // namespace p2drm
