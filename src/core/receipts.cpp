#include "core/receipts.h"

#include "core/metrics.h"
#include "crypto/sha256.h"

namespace p2drm {
namespace core {

std::vector<std::uint8_t> PurchaseOrder::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(0x51);  // domain tag: purchase order
  w.U64(content_id);
  w.U64(price);
  w.U64(timestamp_s);
  w.Fixed(buyer_commitment);
  return w.Take();
}

std::vector<std::uint8_t> PurchaseOrder::Serialize() const {
  net::ByteWriter w;
  w.U64(content_id);
  w.U64(price);
  w.U64(timestamp_s);
  w.Fixed(buyer_commitment);
  w.Blob(buyer_signature);
  return w.Take();
}

PurchaseOrder PurchaseOrder::Deserialize(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  PurchaseOrder o;
  o.content_id = r.U64();
  o.price = r.U64();
  o.timestamp_s = r.U64();
  o.buyer_commitment = r.Fixed<32>();
  o.buyer_signature = r.Blob();
  r.ExpectEnd();
  return o;
}

std::vector<std::uint8_t> PurchaseReceipt::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(0x52);  // domain tag: purchase receipt
  w.Fixed(order_hash);
  w.Fixed(license_id.bytes);
  w.U64(timestamp_s);
  return w.Take();
}

std::vector<std::uint8_t> PurchaseReceipt::Serialize() const {
  net::ByteWriter w;
  w.Fixed(order_hash);
  w.Fixed(license_id.bytes);
  w.U64(timestamp_s);
  w.Blob(provider_signature);
  return w.Take();
}

PurchaseReceipt PurchaseReceipt::Deserialize(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  PurchaseReceipt rc;
  rc.order_hash = r.Fixed<32>();
  rc.license_id.bytes = r.Fixed<16>();
  rc.timestamp_s = r.U64();
  rc.provider_signature = r.Blob();
  r.ExpectEnd();
  return rc;
}

std::array<std::uint8_t, 32> ComputeCommitment(const CommitmentOpening& o) {
  net::ByteWriter w;
  w.U8(0x53);  // domain tag: commitment
  w.Fixed(o.pseudonym);
  w.Fixed(o.nonce);
  return crypto::Sha256::Hash(w.Bytes());
}

bool CreateOrder(SmartCard* card, const rel::KeyFingerprint& pseudonym,
                 rel::ContentId content, std::uint64_t price,
                 std::uint64_t now_epoch_s, bignum::RandomSource* rng,
                 PurchaseOrder* order, CommitmentOpening* opening) {
  opening->pseudonym = pseudonym;
  rng->Fill(opening->nonce.data(), opening->nonce.size());

  order->content_id = content;
  order->price = price;
  order->timestamp_s = now_epoch_s;
  order->buyer_commitment = ComputeCommitment(*opening);
  order->buyer_signature =
      card->SignWithPseudonym(pseudonym, order->CanonicalBytes());
  return !order->buyer_signature.empty();
}

PurchaseReceipt IssueReceipt(const crypto::RsaPrivateKey& provider_key,
                             const PurchaseOrder& order,
                             const rel::LicenseId& license_id,
                             std::uint64_t now_epoch_s) {
  PurchaseReceipt receipt;
  receipt.order_hash = crypto::Sha256::Hash(order.Serialize());
  receipt.license_id = license_id;
  receipt.timestamp_s = now_epoch_s;
  GlobalOps().sign += 1;
  receipt.provider_signature =
      crypto::RsaSignFdh(provider_key, receipt.CanonicalBytes());
  return receipt;
}

const char* DisputeVerdictName(DisputeVerdict v) {
  switch (v) {
    case DisputeVerdict::kEvidenceHolds: return "evidence-holds";
    case DisputeVerdict::kBadOrderSignature: return "bad-order-signature";
    case DisputeVerdict::kBadReceiptSignature: return "bad-receipt-signature";
    case DisputeVerdict::kMismatchedReceipt: return "mismatched-receipt";
    case DisputeVerdict::kBadCommitmentOpening:
      return "bad-commitment-opening";
  }
  return "unknown";
}

DisputeVerdict ResolveDispute(const PurchaseOrder& order,
                              const PurchaseReceipt& receipt,
                              const crypto::RsaPublicKey& pseudonym_key,
                              const crypto::RsaPublicKey& provider_key,
                              const CommitmentOpening* opening) {
  GlobalOps().verify += 2;
  if (!crypto::RsaVerifyFdh(pseudonym_key, order.CanonicalBytes(),
                            order.buyer_signature)) {
    return DisputeVerdict::kBadOrderSignature;
  }
  if (!crypto::RsaVerifyFdh(provider_key, receipt.CanonicalBytes(),
                            receipt.provider_signature)) {
    return DisputeVerdict::kBadReceiptSignature;
  }
  if (receipt.order_hash != crypto::Sha256::Hash(order.Serialize())) {
    return DisputeVerdict::kMismatchedReceipt;
  }
  if (opening != nullptr) {
    if (ComputeCommitment(*opening) != order.buyer_commitment ||
        opening->pseudonym != pseudonym_key.Fingerprint()) {
      return DisputeVerdict::kBadCommitmentOpening;
    }
  }
  return DisputeVerdict::kEvidenceHolds;
}

}  // namespace core
}  // namespace p2drm
