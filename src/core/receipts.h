#ifndef P2DRM_CORE_RECEIPTS_H_
#define P2DRM_CORE_RECEIPTS_H_

/// \file receipts.h
/// \brief Anonymous non-repudiation receipts for purchases.
///
/// The P2DRM literature requires *non-repudiation without identification*:
/// after a dispute ("I paid and never got a working license" / "this user
/// never bought that content"), both sides need cryptographic evidence,
/// yet neither side should need the other's identity certificate. This
/// module implements that with a pair of artifacts:
///
///  * **NRO** (non-repudiation of origin): the buyer's order, signed with
///    the pseudonym key — it binds content, price and a *commitment*
///    `H(pseudonym_fp ‖ nonce)` that hides the pseudonym until the buyer
///    chooses to open it.
///  * **NRR** (non-repudiation of receipt): the provider's receipt over
///    the order hash and the issued license id, signed with the provider
///    key.
///
/// A dispute resolver with only the two *public* keys can later check the
/// pair; the buyer de-anonymizes themselves selectively, to the resolver
/// only, by revealing the commitment opening.

#include <cstdint>
#include <vector>

#include "bignum/random_source.h"
#include "core/smartcard.h"
#include "crypto/rsa.h"
#include "net/codec.h"
#include "rel/ids.h"
#include "rel/license.h"

namespace p2drm {
namespace core {

/// Buyer-signed order (NRO).
struct PurchaseOrder {
  rel::ContentId content_id = 0;
  std::uint64_t price = 0;
  std::uint64_t timestamp_s = 0;
  /// H(pseudonym fingerprint ‖ nonce): hides the buyer until opened.
  std::array<std::uint8_t, 32> buyer_commitment{};
  std::vector<std::uint8_t> buyer_signature;  ///< pseudonym-key signature

  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static PurchaseOrder Deserialize(const std::vector<std::uint8_t>& b);
};

/// Provider-signed receipt (NRR).
struct PurchaseReceipt {
  std::array<std::uint8_t, 32> order_hash{};  ///< SHA-256 of the order
  rel::LicenseId license_id;
  std::uint64_t timestamp_s = 0;
  std::vector<std::uint8_t> provider_signature;

  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static PurchaseReceipt Deserialize(const std::vector<std::uint8_t>& b);
};

/// Secret the buyer keeps to open the commitment later.
struct CommitmentOpening {
  rel::KeyFingerprint pseudonym;
  std::array<std::uint8_t, 16> nonce{};
};

/// Builds and signs an order with the buyer's card. Returns false when the
/// card does not hold \p pseudonym.
bool CreateOrder(SmartCard* card, const rel::KeyFingerprint& pseudonym,
                 rel::ContentId content, std::uint64_t price,
                 std::uint64_t now_epoch_s, bignum::RandomSource* rng,
                 PurchaseOrder* order, CommitmentOpening* opening);

/// Provider side: signs a receipt binding the order to the issued license.
PurchaseReceipt IssueReceipt(const crypto::RsaPrivateKey& provider_key,
                             const PurchaseOrder& order,
                             const rel::LicenseId& license_id,
                             std::uint64_t now_epoch_s);

/// Outcome of a dispute check.
enum class DisputeVerdict : std::uint8_t {
  kEvidenceHolds = 0,       ///< both signatures valid, receipt matches order
  kBadOrderSignature = 1,   ///< NRO fails under the claimed pseudonym key
  kBadReceiptSignature = 2, ///< NRR fails under the provider key
  kMismatchedReceipt = 3,   ///< receipt does not cover this order
  kBadCommitmentOpening = 4,///< opening does not match the commitment
};

const char* DisputeVerdictName(DisputeVerdict v);

/// Verifies the full evidence chain. \p opening may be null when the buyer
/// does not wish to de-anonymize (signatures and binding still checked; the
/// commitment is then taken on faith).
DisputeVerdict ResolveDispute(const PurchaseOrder& order,
                              const PurchaseReceipt& receipt,
                              const crypto::RsaPublicKey& pseudonym_key,
                              const crypto::RsaPublicKey& provider_key,
                              const CommitmentOpening* opening);

/// Recomputes the commitment from an opening (exposed for tests).
std::array<std::uint8_t, 32> ComputeCommitment(const CommitmentOpening& o);

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_RECEIPTS_H_
