#ifndef P2DRM_CORE_DEVICE_H_
#define P2DRM_CORE_DEVICE_H_

/// \file device.h
/// \brief Compliant rendering device: license store, rights enforcement and
/// content decryption.
///
/// The device is the enforcement point of the DRM side of the paper: it
/// refuses to decrypt without a valid provider-signed license bound to a
/// pseudonym whose private key sits in the inserted smart card, it meters
/// plays, honours expiry, and checks the revocation list before cooperating.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/certificates.h"
#include "core/clock.h"
#include "core/content_provider.h"
#include "core/delegation.h"
#include "core/smartcard.h"
#include "rel/license.h"
#include "rel/rights.h"
#include "store/revocation_list.h"

namespace p2drm {
namespace core {

/// Outcome of a device usage request.
struct UseResult {
  rel::Decision decision = rel::Decision::kDeniedAction;
  /// Decrypted content when decision == kAllow and the action renders.
  std::vector<std::uint8_t> plaintext;
  /// Diagnostic for failures that are not rights decisions (bad license,
  /// missing pseudonym, CRL hit).
  std::string error;
};

/// A compliant device.
class CompliantDevice {
 public:
  /// \param security_level robustness level certified by the CA
  CompliantDevice(std::string name, std::uint8_t security_level,
                  const Clock* clock, bignum::RandomSource* rng);

  const std::string& name() const { return name_; }
  std::uint8_t security_level() const { return security_level_; }
  const crypto::RsaPublicKey& DeviceKey() const { return public_key_; }

  /// Installs the CA-issued device certificate.
  void InstallCertificate(DeviceCertificate cert);
  const DeviceCertificate& Certificate() const { return certificate_; }
  rel::DeviceId Id() const { return public_key_.Fingerprint(); }

  /// Verifies the provider signature and stores the license.
  /// Returns false (not stored) on a bad signature.
  bool InstallLicense(const rel::License& license,
                      const crypto::RsaPublicKey& provider_key);

  /// Licenses held for \p content (may be several, e.g. after transfer).
  std::vector<const rel::License*> LicensesFor(rel::ContentId content) const;

  /// Looks up a held license by id (nullptr when absent).
  const rel::License* FindLicense(const rel::LicenseId& id) const;

  /// Removes a license (after it was exchanged away in a transfer).
  bool RemoveLicense(const rel::LicenseId& id);

  /// Syncs the device's CRL copy from the provider.
  void UpdateCrl(const store::RevocationList& crl);
  std::uint64_t CrlVersion() const { return crl_version_; }

  /// Exercises \p action on \p content:
  ///  1. find an installed license for the content,
  ///  2. evaluate its rights against device state and the clock,
  ///  3. check the bound pseudonym against the CRL,
  ///  4. have the card unwrap the content key and decrypt.
  /// On kAllow for kPlay the play meter is consumed.
  UseResult Use(rel::ContentId content, rel::Action action, SmartCard* card,
                const EncryptedContent& encrypted);

  /// Plays consumed on a given license (tests/inspection).
  std::uint32_t PlaysUsed(const rel::LicenseId& id) const;

  // -- delegation (star licenses) ------------------------------------------

  /// Validates a delegation against its installed parent license and the
  /// delegator key the provider bound it to, then stores it with a fresh
  /// usage meter. Returns the validation outcome (kOk = installed).
  DelegationCheck InstallDelegation(const DelegationLicense& delegation,
                                    const crypto::RsaPublicKey& delegator_key);

  /// Exercises \p action under an installed delegation: enforced rights
  /// are the parent ∩ restriction intersection with the delegation's own
  /// meter. Decryption still requires the delegator's card (the delegate
  /// uses the household device; keys never move).
  UseResult UseDelegated(const rel::LicenseId& delegation_id,
                         rel::Action action, SmartCard* delegator_card,
                         const EncryptedContent& encrypted);

  /// Plays consumed under a delegation (tests/inspection).
  std::uint32_t DelegatedPlaysUsed(const rel::LicenseId& delegation_id) const;

 private:
  std::string name_;
  std::uint8_t security_level_;
  const Clock* clock_;
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;
  DeviceCertificate certificate_;

  struct Held {
    rel::License license;
    rel::UsageState state;
  };
  std::map<rel::LicenseId, Held> licenses_;
  struct HeldDelegation {
    DelegationLicense delegation;
    rel::UsageState state;
  };
  std::map<rel::LicenseId, HeldDelegation> delegations_;
  // Local CRL copy (synced from the provider).
  std::set<rel::KeyFingerprint> revoked_;
  std::uint64_t crl_version_ = 0;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_DEVICE_H_
