#ifndef P2DRM_CORE_CERTIFICATION_AUTHORITY_H_
#define P2DRM_CORE_CERTIFICATION_AUTHORITY_H_

/// \file certification_authority.h
/// \brief The Certification Authority (CA).
///
/// The CA enrols smart cards (binding real identities to master keys),
/// certifies compliant devices, and — crucially for the paper — signs
/// pseudonym certificates *blindly*. The blind signature guarantees that
/// even a CA colluding with the content provider cannot link a pseudonym
/// certificate shown at purchase back to the enrolment session that
/// produced it.

#include <cstdint>
#include <map>
#include <string>

#include "bignum/bigint.h"
#include "bignum/random_source.h"
#include "core/certificates.h"
#include "crypto/rsa.h"

namespace p2drm {
namespace core {

/// Certification authority actor.
class CertificationAuthority {
 public:
  /// \param modulus_bits size of the CA signing key
  /// \param rng randomness for key generation
  CertificationAuthority(std::size_t modulus_bits,
                         bignum::RandomSource* rng);

  /// CA verification key, known to every actor.
  const crypto::RsaPublicKey& PublicKey() const { return public_key_; }

  /// Enrols a card: assigns a card id and certifies the master key.
  /// Identity proofing happens out of band (simulated).
  IdentityCertificate Enrol(const std::string& holder_name,
                            const crypto::RsaPublicKey& master_key);

  /// Blindly signs a pseudonym-certificate request. The CA checks that the
  /// requester holds a valid identity certificate (authenticated channel)
  /// but learns nothing about the pseudonym being certified.
  /// Throws std::invalid_argument for unknown cards.
  bignum::BigInt SignPseudonymBlinded(std::uint64_t card_id,
                                      const bignum::BigInt& blinded);

  /// Certifies a compliant device at \p security_level.
  DeviceCertificate CertifyDevice(const crypto::RsaPublicKey& device_key,
                                  std::uint8_t security_level);

  /// Number of enrolled cards.
  std::uint64_t EnrolledCards() const { return next_card_id_ - 1; }

  /// Blind signatures issued per card (rate-limiting / audit hook).
  std::uint64_t PseudonymsIssued(std::uint64_t card_id) const;

  /// Looks up the holder name for a card id (fraud handling only; in a
  /// deployment this would sit behind a legal process).
  std::string HolderName(std::uint64_t card_id) const;

 private:
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;
  std::uint64_t next_card_id_ = 1;
  std::map<std::uint64_t, std::string> card_holders_;
  std::map<std::uint64_t, std::uint64_t> pseudonym_counts_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_CERTIFICATION_AUTHORITY_H_
