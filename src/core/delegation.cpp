#include "core/delegation.h"

#include "core/metrics.h"

namespace p2drm {
namespace core {

std::vector<std::uint8_t> DelegationLicense::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(0x41);  // domain tag: delegation license
  w.Fixed(id.bytes);
  w.Fixed(parent_id.bytes);
  w.Fixed(delegator);
  w.Fixed(delegate);
  restrictions.Encode(&w);
  w.U64(created_at_s);
  return w.Take();
}

std::vector<std::uint8_t> DelegationLicense::Serialize() const {
  net::ByteWriter w;
  w.Fixed(id.bytes);
  w.Fixed(parent_id.bytes);
  w.Fixed(delegator);
  w.Fixed(delegate);
  restrictions.Encode(&w);
  w.U64(created_at_s);
  w.Blob(delegator_signature);
  return w.Take();
}

DelegationLicense DelegationLicense::Deserialize(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  DelegationLicense d;
  d.id.bytes = r.Fixed<16>();
  d.parent_id.bytes = r.Fixed<16>();
  d.delegator = r.Fixed<32>();
  d.delegate = r.Fixed<32>();
  d.restrictions = rel::Rights::Decode(&r);
  d.created_at_s = r.U64();
  d.delegator_signature = r.Blob();
  r.ExpectEnd();
  return d;
}

const char* DelegationCheckName(DelegationCheck c) {
  switch (c) {
    case DelegationCheck::kOk: return "ok";
    case DelegationCheck::kWrongParent: return "wrong-parent";
    case DelegationCheck::kBadSignature: return "bad-signature";
    case DelegationCheck::kNotDelegable: return "not-delegable";
  }
  return "unknown";
}

bool CreateDelegation(SmartCard* delegator_card, const rel::License& parent,
                      const rel::KeyFingerprint& delegate,
                      const rel::Rights& restrictions,
                      std::uint64_t now_epoch_s, bignum::RandomSource* rng,
                      DelegationLicense* out) {
  DelegationLicense d;
  rng->Fill(d.id.bytes.data(), d.id.bytes.size());
  d.parent_id = parent.id;
  d.delegator = parent.bound_key;
  d.delegate = delegate;
  d.restrictions = restrictions;
  d.created_at_s = now_epoch_s;
  d.delegator_signature =
      delegator_card->SignWithPseudonym(parent.bound_key, d.CanonicalBytes());
  if (d.delegator_signature.empty()) return false;
  *out = std::move(d);
  return true;
}

DelegationCheck ValidateDelegation(const DelegationLicense& delegation,
                                   const rel::License& parent,
                                   const crypto::RsaPublicKey& delegator_key) {
  if (delegation.parent_id != parent.id ||
      delegation.delegator != parent.bound_key ||
      delegator_key.Fingerprint() != parent.bound_key) {
    return DelegationCheck::kWrongParent;
  }
  GlobalOps().verify += 1;
  if (!crypto::RsaVerifyFdh(delegator_key, delegation.CanonicalBytes(),
                            delegation.delegator_signature)) {
    return DelegationCheck::kBadSignature;
  }
  // A delegation is only meaningful when the parent can render at all.
  if (!parent.rights.allow_play && !parent.rights.allow_display) {
    return DelegationCheck::kNotDelegable;
  }
  return DelegationCheck::kOk;
}

rel::Rights EffectiveRights(const DelegationLicense& delegation,
                            const rel::License& parent) {
  rel::Rights effective =
      rel::Rights::Intersect(parent.rights, delegation.restrictions);
  // Delegates never inherit transfer/copy even if the restriction forgot
  // to clear them — delegation is use, not ownership.
  effective.allow_transfer = false;
  effective.allow_copy = false;
  return effective;
}

}  // namespace core
}  // namespace p2drm
