#include "core/usage_stats.h"

#include <algorithm>
#include <stdexcept>

namespace p2drm {
namespace core {

RandomizedResponder::RandomizedResponder(double truth_probability)
    : p_(truth_probability) {
  if (!(p_ > 0.0) || p_ > 1.0) {
    throw std::invalid_argument(
        "RandomizedResponder: truth probability must be in (0, 1]");
  }
}

bool RandomizedResponder::Respond(bool truth,
                                  bignum::RandomSource* rng) const {
  // Draw u uniform in [0,1) with 32-bit resolution.
  double u = static_cast<double>(rng->NextUint64(1ull << 32)) /
             static_cast<double>(1ull << 32);
  if (u < p_) return truth;
  return rng->NextUint64(2) == 1;
}

UsageAggregator::UsageAggregator(double truth_probability)
    : p_(truth_probability) {
  if (!(p_ > 0.0) || p_ > 1.0) {
    throw std::invalid_argument(
        "UsageAggregator: truth probability must be in (0, 1]");
  }
}

void UsageAggregator::AddReport(rel::ContentId content, bool reported_bit) {
  Counts& c = counts_[content];
  c.total += 1;
  if (reported_bit) c.affirmative += 1;
}

std::uint64_t UsageAggregator::RawCount(rel::ContentId content) const {
  auto it = counts_.find(content);
  return it == counts_.end() ? 0 : it->second.affirmative;
}

std::uint64_t UsageAggregator::TotalReports(rel::ContentId content) const {
  auto it = counts_.find(content);
  return it == counts_.end() ? 0 : it->second.total;
}

double UsageAggregator::EstimatedCount(rel::ContentId content) const {
  auto it = counts_.find(content);
  if (it == counts_.end()) return 0.0;
  double total = static_cast<double>(it->second.total);
  double raw = static_cast<double>(it->second.affirmative);
  double estimate = (raw - total * (1.0 - p_) / 2.0) / p_;
  return std::clamp(estimate, 0.0, total);
}

}  // namespace core
}  // namespace p2drm
