#ifndef P2DRM_CORE_DOMAIN_H_
#define P2DRM_CORE_DOMAIN_H_

/// \file domain.h
/// \brief Authorized domains with private membership.
///
/// The P2DRM line of work extends single-user licensing to *authorized
/// domains* (a household's devices) managed by a domain manager device
/// that the content provider trusts — crucially with **private creation
/// and functioning**: the provider never learns which devices make up a
/// domain. This module implements that extension on top of the core
/// protocols:
///
///  * the domain manager buys licenses through the ordinary anonymous
///    purchase path (pseudonym certificate + e-cash), so the provider's
///    view of a domain is just another pseudonymous customer;
///  * member devices register with the manager locally (certificate
///    checked against the CA and the CRL, bounded domain size — the
///    compliance rules the provider relies on);
///  * content keys never leave the manager: members hand in encrypted
///    content and receive plaintext over the protected in-home link,
///    with play metering enforced domain-wide.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/agent.h"
#include "core/certificates.h"
#include "core/errors.h"
#include "core/system.h"
#include "rel/license.h"

namespace p2drm {
namespace core {

/// Configuration of an authorized domain.
struct DomainConfig {
  std::size_t max_members = 8;  ///< compliance bound on domain size
  AgentConfig agent;            ///< pseudonym/payment policy of the manager
};

/// The domain manager device.
class DomainManager {
 public:
  DomainManager(const std::string& name, const DomainConfig& config,
                P2drmSystem* system, bignum::RandomSource* rng);

  /// Registers a member device. Enforced locally: CA-valid certificate,
  /// not revoked, domain not full. The provider is not contacted and never
  /// learns the membership.
  Status Join(const DeviceCertificate& member);

  /// Removes a member. Returns false when it was not a member.
  bool Leave(const rel::DeviceId& member);

  std::size_t MemberCount() const { return members_.size(); }
  bool IsMember(const rel::DeviceId& id) const {
    return members_.count(id) != 0;
  }

  /// Buys \p content for the domain through the anonymous purchase path.
  Status AcquireContent(rel::ContentId content);

  /// Serves a play request from a member device: membership check, domain-
  /// wide rights evaluation (shared play meter), content-key unwrap on the
  /// manager's card, decryption. Non-members and revoked devices get
  /// nothing.
  UseResult MemberPlay(const rel::DeviceId& member, rel::ContentId content);

  /// Pulls the provider CRL so revoked members can be expelled.
  /// Members on the CRL are removed immediately.
  Status SyncCrl();

  /// Domain-wide plays consumed for \p content (tests/inspection).
  std::uint32_t DomainPlaysUsed(rel::ContentId content) const;

  /// The manager's client identity (for funding its account in tests).
  UserAgent& agent() { return agent_; }

 private:
  DomainConfig config_;
  P2drmSystem* system_;
  net::Rpc rpc_;
  UserAgent agent_;
  std::map<rel::DeviceId, DeviceCertificate> members_;
  std::set<rel::KeyFingerprint> revoked_;

  struct DomainLicense {
    rel::License license;
    rel::UsageState state;  // domain-wide meter
  };
  std::map<rel::ContentId, DomainLicense> licenses_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_DOMAIN_H_
