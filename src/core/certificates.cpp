#include "core/certificates.h"

namespace p2drm {
namespace core {

namespace {

// Domain-separation prefixes so a signature over one certificate flavour
// can never be replayed as another.
constexpr std::uint8_t kTagIdentity = 0x01;
constexpr std::uint8_t kTagPseudonym = 0x02;
constexpr std::uint8_t kTagDevice = 0x03;

}  // namespace

std::vector<std::uint8_t> IdentityCertificate::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(kTagIdentity);
  w.String(holder_name);
  w.U64(card_id);
  w.Blob(master_key.Serialize());
  return w.Take();
}

std::vector<std::uint8_t> IdentityCertificate::Serialize() const {
  net::ByteWriter w;
  w.String(holder_name);
  w.U64(card_id);
  w.Blob(master_key.Serialize());
  w.Blob(ca_signature);
  return w.Take();
}

IdentityCertificate IdentityCertificate::Deserialize(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  IdentityCertificate cert;
  cert.holder_name = r.String();
  cert.card_id = r.U64();
  cert.master_key = crypto::RsaPublicKey::Deserialize(r.Blob());
  cert.ca_signature = r.Blob();
  r.ExpectEnd();
  return cert;
}

std::vector<std::uint8_t> PseudonymCertificate::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(kTagPseudonym);
  w.Blob(pseudonym_key.Serialize());
  w.Blob(escrow);
  return w.Take();
}

std::vector<std::uint8_t> PseudonymCertificate::Serialize() const {
  net::ByteWriter w;
  w.Blob(pseudonym_key.Serialize());
  w.Blob(escrow);
  w.Blob(ca_signature);
  return w.Take();
}

PseudonymCertificate PseudonymCertificate::Deserialize(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  PseudonymCertificate cert;
  cert.pseudonym_key = crypto::RsaPublicKey::Deserialize(r.Blob());
  cert.escrow = r.Blob();
  cert.ca_signature = r.Blob();
  r.ExpectEnd();
  return cert;
}

std::vector<std::uint8_t> DeviceCertificate::CanonicalBytes() const {
  net::ByteWriter w;
  w.U8(kTagDevice);
  w.Fixed(device_id);
  w.Blob(device_key.Serialize());
  w.U8(security_level);
  return w.Take();
}

std::vector<std::uint8_t> DeviceCertificate::Serialize() const {
  net::ByteWriter w;
  w.Fixed(device_id);
  w.Blob(device_key.Serialize());
  w.U8(security_level);
  w.Blob(ca_signature);
  return w.Take();
}

DeviceCertificate DeviceCertificate::Deserialize(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  DeviceCertificate cert;
  cert.device_id = r.Fixed<32>();
  cert.device_key = crypto::RsaPublicKey::Deserialize(r.Blob());
  cert.security_level = r.U8();
  cert.ca_signature = r.Blob();
  r.ExpectEnd();
  return cert;
}

bool VerifyIdentityCert(const crypto::RsaPublicKey& ca_key,
                        const IdentityCertificate& cert) {
  return crypto::RsaVerifyFdh(ca_key, cert.CanonicalBytes(),
                              cert.ca_signature);
}

bool VerifyPseudonymCert(const crypto::RsaPublicKey& ca_key,
                         const PseudonymCertificate& cert) {
  return crypto::RsaVerifyFdh(ca_key, cert.CanonicalBytes(),
                              cert.ca_signature);
}

bool VerifyDeviceCert(const crypto::RsaPublicKey& ca_key,
                      const DeviceCertificate& cert) {
  return crypto::RsaVerifyFdh(ca_key, cert.CanonicalBytes(),
                              cert.ca_signature);
}

}  // namespace core
}  // namespace p2drm
