#ifndef P2DRM_CORE_PROTOCOL_H_
#define P2DRM_CORE_PROTOCOL_H_

/// \file protocol.h
/// \brief On-wire request/response message bodies for every P2DRM protocol.
///
/// Messages are the *payload* of the versioned RPC envelope (net/rpc.h):
/// the envelope carries the tag, correlation id and status code, the body
/// carries only the protocol fields. Each request names its tag
/// (Req::kTag) and its response type (Req::Response), which is what makes
/// the typed client stub Rpc::Call<Req>() and the ServiceRegistry
/// dispatch possible without per-actor switch statements.
///
/// All encodings use the canonical codec, so the byte counts the
/// Transport meters are the real protocol cost (RT-2). Endpoints: "ca",
/// "bank", "cp", "ttp" (see docs/protocol.md for the full tag table).

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "core/certificates.h"
#include "core/content_provider.h"
#include "core/errors.h"
#include "core/payment.h"
#include "core/ttp.h"
#include "net/codec.h"
#include "rel/license.h"

namespace p2drm {
namespace core {
namespace protocol {

/// Request tags (the envelope's tag byte). 0xF0 is reserved for the RPC
/// batch envelope (net::kBatchTag).
enum class Tag : std::uint8_t {
  kEnrol = 0x01,
  kPseudonymSign = 0x02,
  kDeviceCert = 0x03,
  kWithdraw = 0x10,
  kDeposit = 0x11,
  kCatalog = 0x20,
  kPurchase = 0x21,
  kExchange = 0x22,
  kRedeem = 0x23,
  kFetchContent = 0x24,
  kFetchCrl = 0x25,
  kOpenEscrow = 0x30,
};

// -- helpers ---------------------------------------------------------------

/// Writes a BigInt as a length-prefixed magnitude blob.
void WriteBigInt(net::ByteWriter* w, const bignum::BigInt& v);
bignum::BigInt ReadBigInt(net::ByteReader* r);

// -- CA --------------------------------------------------------------------

struct EnrolResponse {
  IdentityCertificate certificate;
  std::vector<std::uint8_t> Encode() const;
  static EnrolResponse Decode(const std::vector<std::uint8_t>& b);
};
struct EnrolRequest {
  static constexpr Tag kTag = Tag::kEnrol;
  using Response = EnrolResponse;
  std::string holder_name;
  crypto::RsaPublicKey master_key;
  std::vector<std::uint8_t> Encode() const;
  static EnrolRequest Decode(net::ByteReader* r);
};

struct PseudonymSignResponse {
  bignum::BigInt blind_signature;
  std::vector<std::uint8_t> Encode() const;
  static PseudonymSignResponse Decode(const std::vector<std::uint8_t>& b);
};
struct PseudonymSignRequest {
  static constexpr Tag kTag = Tag::kPseudonymSign;
  using Response = PseudonymSignResponse;
  std::uint64_t card_id = 0;
  bignum::BigInt blinded;
  std::vector<std::uint8_t> Encode() const;
  static PseudonymSignRequest Decode(net::ByteReader* r);
};

struct DeviceCertResponse {
  DeviceCertificate certificate;
  std::vector<std::uint8_t> Encode() const;
  static DeviceCertResponse Decode(const std::vector<std::uint8_t>& b);
};
struct DeviceCertRequest {
  static constexpr Tag kTag = Tag::kDeviceCert;
  using Response = DeviceCertResponse;
  crypto::RsaPublicKey device_key;
  std::uint8_t security_level = 0;
  std::vector<std::uint8_t> Encode() const;
  static DeviceCertRequest Decode(net::ByteReader* r);
};

// -- bank --------------------------------------------------------------------

struct WithdrawResponse {
  bignum::BigInt blind_signature;
  std::vector<std::uint8_t> Encode() const;
  static WithdrawResponse Decode(const std::vector<std::uint8_t>& b);
};
struct WithdrawRequest {
  static constexpr Tag kTag = Tag::kWithdraw;
  using Response = WithdrawResponse;
  std::string account;
  std::uint32_t denomination = 0;
  bignum::BigInt blinded;
  std::vector<std::uint8_t> Encode() const;
  static WithdrawRequest Decode(net::ByteReader* r);
};

struct DepositResponse {
  // Success/failure is fully carried by the envelope status.
  std::vector<std::uint8_t> Encode() const;
  static DepositResponse Decode(const std::vector<std::uint8_t>& b);
};
struct DepositRequest {
  static constexpr Tag kTag = Tag::kDeposit;
  using Response = DepositResponse;
  Coin coin;
  std::string merchant_account;
  std::vector<std::uint8_t> Encode() const;
  static DepositRequest Decode(net::ByteReader* r);
};

// -- content provider ---------------------------------------------------------

struct CatalogResponse {
  std::vector<Offer> offers;
  std::vector<std::uint8_t> Encode() const;
  static CatalogResponse Decode(const std::vector<std::uint8_t>& b);
};
struct CatalogRequest {
  static constexpr Tag kTag = Tag::kCatalog;
  using Response = CatalogResponse;
  std::vector<std::uint8_t> Encode() const;
  static CatalogRequest Decode(net::ByteReader*) { return {}; }
};

struct PurchaseResponse {
  rel::License license;
  std::vector<std::uint8_t> Encode() const;
  static PurchaseResponse Decode(const std::vector<std::uint8_t>& b);
};
struct PurchaseRequest {
  static constexpr Tag kTag = Tag::kPurchase;
  using Response = PurchaseResponse;
  PseudonymCertificate buyer;
  rel::ContentId content_id = 0;
  std::vector<Coin> payment;
  std::vector<std::uint8_t> Encode() const;
  static PurchaseRequest Decode(net::ByteReader* r);
};

struct ExchangeResponse {
  rel::License anonymous_license;
  std::vector<std::uint8_t> Encode() const;
  static ExchangeResponse Decode(const std::vector<std::uint8_t>& b);
};
struct ExchangeRequest {
  static constexpr Tag kTag = Tag::kExchange;
  using Response = ExchangeResponse;
  rel::License license;
  std::vector<std::uint8_t> possession_sig;
  std::vector<std::uint8_t> Encode() const;
  static ExchangeRequest Decode(net::ByteReader* r);
};

struct RedeemRequest {
  static constexpr Tag kTag = Tag::kRedeem;
  using Response = PurchaseResponse;  ///< same shape as a purchase
  rel::License anonymous_license;
  PseudonymCertificate taker;
  std::vector<std::uint8_t> Encode() const;
  static RedeemRequest Decode(net::ByteReader* r);
};

struct FetchContentResponse {
  EncryptedContent content;
  std::vector<std::uint8_t> Encode() const;
  static FetchContentResponse Decode(const std::vector<std::uint8_t>& b);
};
struct FetchContentRequest {
  static constexpr Tag kTag = Tag::kFetchContent;
  using Response = FetchContentResponse;
  rel::ContentId content_id = 0;
  std::vector<std::uint8_t> Encode() const;
  static FetchContentRequest Decode(net::ByteReader* r);
};

struct FetchCrlResponse {
  std::vector<std::uint8_t> crl_snapshot;  ///< RevocationList::Serialize()
  std::vector<std::uint8_t> Encode() const;
  static FetchCrlResponse Decode(const std::vector<std::uint8_t>& b);
};
struct FetchCrlRequest {
  static constexpr Tag kTag = Tag::kFetchCrl;
  using Response = FetchCrlResponse;
  std::vector<std::uint8_t> Encode() const;
  static FetchCrlRequest Decode(net::ByteReader*) { return {}; }
};

// -- TTP -----------------------------------------------------------------------

struct OpenEscrowResponse {
  bool opened = false;
  std::uint64_t card_id = 0;
  std::string reason;
  std::vector<std::uint8_t> Encode() const;
  static OpenEscrowResponse Decode(const std::vector<std::uint8_t>& b);
};
struct OpenEscrowRequest {
  static constexpr Tag kTag = Tag::kOpenEscrow;
  using Response = OpenEscrowResponse;
  FraudEvidence evidence;
  std::vector<std::uint8_t> Encode() const;
  static OpenEscrowRequest Decode(net::ByteReader* r);
};

}  // namespace protocol
}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_PROTOCOL_H_
