#ifndef P2DRM_CORE_PROTOCOL_H_
#define P2DRM_CORE_PROTOCOL_H_

/// \file protocol.h
/// \brief On-wire request/response messages for every P2DRM protocol.
///
/// Each request starts with a one-byte message tag; responses are tag-less
/// (the caller knows what it asked). All encodings use the canonical codec,
/// so the byte counts the Transport meters are the real protocol cost
/// (RT-2). Endpoints: "ca", "bank", "cp", "ttp".

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "core/certificates.h"
#include "core/content_provider.h"
#include "core/errors.h"
#include "core/payment.h"
#include "core/ttp.h"
#include "net/codec.h"
#include "rel/license.h"

namespace p2drm {
namespace core {
namespace protocol {

/// Request tags.
enum class Tag : std::uint8_t {
  kEnrol = 0x01,
  kPseudonymSign = 0x02,
  kDeviceCert = 0x03,
  kWithdraw = 0x10,
  kDeposit = 0x11,
  kCatalog = 0x20,
  kPurchase = 0x21,
  kExchange = 0x22,
  kRedeem = 0x23,
  kFetchContent = 0x24,
  kFetchCrl = 0x25,
  kOpenEscrow = 0x30,
};

// -- helpers ---------------------------------------------------------------

/// Writes a BigInt as a length-prefixed magnitude blob.
void WriteBigInt(net::ByteWriter* w, const bignum::BigInt& v);
bignum::BigInt ReadBigInt(net::ByteReader* r);

// -- CA --------------------------------------------------------------------

struct EnrolRequest {
  std::string holder_name;
  crypto::RsaPublicKey master_key;
  std::vector<std::uint8_t> Encode() const;
  static EnrolRequest Decode(net::ByteReader* r);
};
struct EnrolResponse {
  IdentityCertificate certificate;
  std::vector<std::uint8_t> Encode() const;
  static EnrolResponse Decode(const std::vector<std::uint8_t>& b);
};

struct PseudonymSignRequest {
  std::uint64_t card_id = 0;
  bignum::BigInt blinded;
  std::vector<std::uint8_t> Encode() const;
  static PseudonymSignRequest Decode(net::ByteReader* r);
};
struct PseudonymSignResponse {
  bignum::BigInt blind_signature;
  std::vector<std::uint8_t> Encode() const;
  static PseudonymSignResponse Decode(const std::vector<std::uint8_t>& b);
};

struct DeviceCertRequest {
  crypto::RsaPublicKey device_key;
  std::uint8_t security_level = 0;
  std::vector<std::uint8_t> Encode() const;
  static DeviceCertRequest Decode(net::ByteReader* r);
};
struct DeviceCertResponse {
  DeviceCertificate certificate;
  std::vector<std::uint8_t> Encode() const;
  static DeviceCertResponse Decode(const std::vector<std::uint8_t>& b);
};

// -- bank --------------------------------------------------------------------

struct WithdrawRequest {
  std::string account;
  std::uint32_t denomination = 0;
  bignum::BigInt blinded;
  std::vector<std::uint8_t> Encode() const;
  static WithdrawRequest Decode(net::ByteReader* r);
};
struct WithdrawResponse {
  Status status = Status::kBadRequest;
  bignum::BigInt blind_signature;  ///< valid when status == kOk
  std::vector<std::uint8_t> Encode() const;
  static WithdrawResponse Decode(const std::vector<std::uint8_t>& b);
};

struct DepositRequest {
  Coin coin;
  std::string merchant_account;
  std::vector<std::uint8_t> Encode() const;
  static DepositRequest Decode(net::ByteReader* r);
};
struct DepositResponse {
  Status status = Status::kBadRequest;
  std::vector<std::uint8_t> Encode() const;
  static DepositResponse Decode(const std::vector<std::uint8_t>& b);
};

// -- content provider ---------------------------------------------------------

struct CatalogRequest {
  std::vector<std::uint8_t> Encode() const;
};
struct CatalogResponse {
  std::vector<Offer> offers;
  std::vector<std::uint8_t> Encode() const;
  static CatalogResponse Decode(const std::vector<std::uint8_t>& b);
};

struct PurchaseRequest {
  PseudonymCertificate buyer;
  rel::ContentId content_id = 0;
  std::vector<Coin> payment;
  std::vector<std::uint8_t> Encode() const;
  static PurchaseRequest Decode(net::ByteReader* r);
};
struct PurchaseResponse {
  Status status = Status::kBadRequest;
  rel::License license;  ///< valid when status == kOk
  std::vector<std::uint8_t> Encode() const;
  static PurchaseResponse Decode(const std::vector<std::uint8_t>& b);
};

struct ExchangeRequest {
  rel::License license;
  std::vector<std::uint8_t> possession_sig;
  std::vector<std::uint8_t> Encode() const;
  static ExchangeRequest Decode(net::ByteReader* r);
};
struct ExchangeResponse {
  Status status = Status::kBadRequest;
  rel::License anonymous_license;  ///< valid when status == kOk
  std::vector<std::uint8_t> Encode() const;
  static ExchangeResponse Decode(const std::vector<std::uint8_t>& b);
};

struct RedeemRequest {
  rel::License anonymous_license;
  PseudonymCertificate taker;
  std::vector<std::uint8_t> Encode() const;
  static RedeemRequest Decode(net::ByteReader* r);
};
// Response shape identical to PurchaseResponse.

struct FetchContentRequest {
  rel::ContentId content_id = 0;
  std::vector<std::uint8_t> Encode() const;
  static FetchContentRequest Decode(net::ByteReader* r);
};
struct FetchContentResponse {
  Status status = Status::kBadRequest;
  EncryptedContent content;
  std::vector<std::uint8_t> Encode() const;
  static FetchContentResponse Decode(const std::vector<std::uint8_t>& b);
};

struct FetchCrlRequest {
  std::vector<std::uint8_t> Encode() const;
};
struct FetchCrlResponse {
  std::vector<std::uint8_t> crl_snapshot;  ///< RevocationList::Serialize()
  std::vector<std::uint8_t> Encode() const;
  static FetchCrlResponse Decode(const std::vector<std::uint8_t>& b);
};

// -- TTP -----------------------------------------------------------------------

struct OpenEscrowRequest {
  FraudEvidence evidence;
  std::vector<std::uint8_t> Encode() const;
  static OpenEscrowRequest Decode(net::ByteReader* r);
};
struct OpenEscrowResponse {
  bool opened = false;
  std::uint64_t card_id = 0;
  std::string reason;
  std::vector<std::uint8_t> Encode() const;
  static OpenEscrowResponse Decode(const std::vector<std::uint8_t>& b);
};

}  // namespace protocol
}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_PROTOCOL_H_
