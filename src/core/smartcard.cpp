#include "core/smartcard.h"

#include <stdexcept>

#include "core/metrics.h"
#include "core/ttp.h"

namespace p2drm {
namespace core {

SmartCard::SmartCard(std::string holder_name, std::size_t pseudonym_bits,
                     bignum::RandomSource* rng)
    : holder_name_(std::move(holder_name)),
      pseudonym_bits_(pseudonym_bits),
      rng_(rng),
      master_key_(crypto::GenerateRsaKey(pseudonym_bits, rng)),
      master_public_(master_key_.PublicKey()) {
  GlobalOps().keygen += 1;
}

void SmartCard::StoreIdentityCertificate(IdentityCertificate cert) {
  identity_ = std::move(cert);
  enrolled_ = true;
}

std::uint64_t SmartCard::CardId() const {
  if (!enrolled_) throw std::logic_error("SmartCard: not enrolled");
  return identity_.card_id;
}

PseudonymRequest SmartCard::BeginPseudonym(
    const crypto::RsaPublicKey& ca_key,
    const crypto::RsaPublicKey& ttp_key) {
  if (!enrolled_) throw std::logic_error("SmartCard: not enrolled");

  PseudonymRequest req;
  req.key = crypto::GenerateRsaKey(pseudonym_bits_, rng_);
  GlobalOps().keygen += 1;

  EscrowPayload payload;
  payload.card_id = identity_.card_id;
  rng_->Fill(payload.nonce.data(), payload.nonce.size());
  GlobalOps().hybrid_enc += 1;
  req.escrow =
      crypto::RsaHybridEncrypt(ttp_key, payload.Serialize(), rng_).Serialize();

  PseudonymCertificate draft;
  draft.pseudonym_key = req.key.PublicKey();
  draft.escrow = req.escrow;
  GlobalOps().blind_prep += 1;
  req.blinding = crypto::BlindMessage(ca_key, draft.CanonicalBytes(), rng_);
  return req;
}

Pseudonym* SmartCard::FinishPseudonym(PseudonymRequest request,
                                      const bignum::BigInt& blind_signature,
                                      const crypto::RsaPublicKey& ca_key) {
  PseudonymCertificate cert;
  cert.pseudonym_key = request.key.PublicKey();
  cert.escrow = request.escrow;
  cert.ca_signature =
      crypto::Unblind(ca_key, request.blinding, blind_signature);

  GlobalOps().verify += 1;
  if (!VerifyPseudonymCert(ca_key, cert)) return nullptr;

  auto pseudonym = std::make_unique<Pseudonym>();
  pseudonym->key = std::move(request.key);
  pseudonym->cert = std::move(cert);
  pseudonyms_.push_back(std::move(pseudonym));
  return pseudonyms_.back().get();
}

Pseudonym* SmartCard::UsablePseudonym(std::uint64_t max_uses) {
  for (auto& p : pseudonyms_) {
    if (p->purchases_used < max_uses) return p.get();
  }
  return nullptr;
}

Pseudonym* SmartCard::FindPseudonym(const rel::KeyFingerprint& id) {
  for (auto& p : pseudonyms_) {
    if (p->cert.KeyId() == id) return p.get();
  }
  return nullptr;
}

bool SmartCard::UnwrapContentKey(const rel::KeyFingerprint& pseudonym_id,
                                 const std::vector<std::uint8_t>& wrapped,
                                 std::vector<std::uint8_t>* content_key) {
  Pseudonym* p = FindPseudonym(pseudonym_id);
  if (p == nullptr) return false;
  crypto::HybridCiphertext ct;
  try {
    ct = crypto::HybridCiphertext::Deserialize(wrapped);
  } catch (const std::exception&) {
    return false;
  }
  GlobalOps().hybrid_dec += 1;
  return crypto::RsaHybridDecrypt(p->key, ct, content_key);
}

std::vector<std::uint8_t> SmartCard::SignWithPseudonym(
    const rel::KeyFingerprint& pseudonym_id,
    const std::vector<std::uint8_t>& message) {
  Pseudonym* p = FindPseudonym(pseudonym_id);
  if (p == nullptr) return {};
  GlobalOps().sign += 1;
  return crypto::RsaSignFdh(p->key, message);
}

}  // namespace core
}  // namespace p2drm
