#include "core/system.h"

#include "core/protocol.h"

namespace p2drm {
namespace core {

namespace proto = protocol;

P2drmSystem::P2drmSystem(const SystemConfig& config,
                         bignum::RandomSource* rng)
    : clock_(&timebase_), transport_(config.latency) {
  transport_.BindClock(&timebase_);
  ca_ = std::make_unique<CertificationAuthority>(config.ca_key_bits, rng);
  ttp_ = std::make_unique<TrustedThirdParty>(config.ttp_key_bits, rng);
  bank_ = std::make_unique<PaymentProvider>(config.bank_key_bits, rng,
                                            config.bank);
  cp_ = std::make_unique<ContentProvider>(config.cp, rng, &clock_,
                                          bank_.get(), ca_->PublicKey());
  RegisterEndpoints();
}

void P2drmSystem::RegisterEndpoints() {
  // -- CA --------------------------------------------------------------
  ca_service_.Register<proto::EnrolRequest>(
      [this](const proto::EnrolRequest& req, proto::EnrolResponse* resp) {
        resp->certificate = ca_->Enrol(req.holder_name, req.master_key);
        return Status::kOk;
      });
  ca_service_.Register<proto::PseudonymSignRequest>(
      [this](const proto::PseudonymSignRequest& req,
             proto::PseudonymSignResponse* resp) {
        resp->blind_signature =
            ca_->SignPseudonymBlinded(req.card_id, req.blinded);
        return Status::kOk;
      });
  ca_service_.Register<proto::DeviceCertRequest>(
      [this](const proto::DeviceCertRequest& req,
             proto::DeviceCertResponse* resp) {
        resp->certificate =
            ca_->CertifyDevice(req.device_key, req.security_level);
        return Status::kOk;
      });

  // -- bank ------------------------------------------------------------
  bank_service_.Register<proto::WithdrawRequest>(
      [this](const proto::WithdrawRequest& req,
             proto::WithdrawResponse* resp) {
        return bank_->Withdraw(req.account, req.denomination, req.blinded,
                               &resp->blind_signature);
      });
  bank_service_.Register<proto::DepositRequest>(
      [this](const proto::DepositRequest& req, proto::DepositResponse*) {
        return bank_->Deposit(req.coin, req.merchant_account);
      });
  // Batch fast path for deposits: one screened verification per
  // denomination group and sharded double-spend checks at the bank.
  bank_service_.RegisterBatch<proto::DepositRequest>(
      [this](const std::vector<proto::DepositRequest>& reqs,
             std::vector<proto::DepositResponse>*) {
        std::vector<PaymentProvider::DepositItem> items;
        items.reserve(reqs.size());
        for (const proto::DepositRequest& req : reqs) {
          items.push_back({req.coin, req.merchant_account});
        }
        return bank_->DepositBatch(items);
      });

  // -- content provider -------------------------------------------------
  cp_service_.Register<proto::CatalogRequest>(
      [this](const proto::CatalogRequest&, proto::CatalogResponse* resp) {
        resp->offers = cp_->Catalog();
        return Status::kOk;
      });
  cp_service_.Register<proto::PurchaseRequest>(
      [this](const proto::PurchaseRequest& req,
             proto::PurchaseResponse* resp) {
        auto out = cp_->Purchase(req.buyer, req.content_id, req.payment);
        resp->license = out.license;
        return out.status;
      });
  // Batch fast path for purchases (mirrors the redeem fast path below):
  // certificate verification memoizes per distinct cert, one CRL pass
  // covers the batch, and license signing runs on the shard workers.
  cp_service_.RegisterBatch<proto::PurchaseRequest>(
      [this](const std::vector<proto::PurchaseRequest>& reqs,
             std::vector<proto::PurchaseResponse>* resps) {
        std::vector<ContentProvider::PurchaseItem> items;
        items.reserve(reqs.size());
        for (const proto::PurchaseRequest& req : reqs) {
          items.push_back({req.buyer, req.content_id, req.payment});
        }
        auto results = cp_->PurchaseBatch(items);
        std::vector<Status> statuses(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
          statuses[i] = results[i].status;
          (*resps)[i].license = std::move(results[i].license);
        }
        return statuses;
      });
  cp_service_.Register<proto::ExchangeRequest>(
      [this](const proto::ExchangeRequest& req,
             proto::ExchangeResponse* resp) {
        auto out = cp_->ExchangeForAnonymous(req.license, req.possession_sig);
        resp->anonymous_license = out.anonymous_license;
        return out.status;
      });
  // Batch fast path for exchanges: one screened same-key pass over the
  // issuer signatures, one shared CRL pass, shard-parallel bearer
  // issuance (server/ subsystem). Wire format unchanged.
  cp_service_.RegisterBatch<proto::ExchangeRequest>(
      [this](const std::vector<proto::ExchangeRequest>& reqs,
             std::vector<proto::ExchangeResponse>* resps) {
        std::vector<ContentProvider::ExchangeItem> items;
        items.reserve(reqs.size());
        for (const proto::ExchangeRequest& req : reqs) {
          items.push_back({req.license, req.possession_sig});
        }
        auto results = cp_->ExchangeBatch(items);
        std::vector<Status> statuses(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
          statuses[i] = results[i].status;
          (*resps)[i].anonymous_license =
              std::move(results[i].anonymous_license);
        }
        return statuses;
      });
  cp_service_.Register<proto::RedeemRequest>(
      [this](const proto::RedeemRequest& req, proto::PurchaseResponse* resp) {
        auto out = cp_->RedeemAnonymous(req.anonymous_license, req.taker);
        resp->license = out.license;
        return out.status;
      });
  // Batch fast path: every redeem inside a kBatch envelope reaches the
  // provider in one call, so license verification, certificate checks
  // and CRL probes amortize across the whole batch (server/ subsystem).
  // The wire format is the ordinary batch envelope — clients see no
  // difference beyond per-item statuses such as kOverloaded.
  cp_service_.RegisterBatch<proto::RedeemRequest>(
      [this](const std::vector<proto::RedeemRequest>& reqs,
             std::vector<proto::PurchaseResponse>* resps) {
        std::vector<ContentProvider::RedeemItem> items;
        items.reserve(reqs.size());
        for (const proto::RedeemRequest& req : reqs) {
          items.push_back({req.anonymous_license, req.taker});
        }
        auto results = cp_->RedeemAnonymousBatch(items);
        std::vector<Status> statuses(results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
          statuses[i] = results[i].status;
          (*resps)[i].license = std::move(results[i].license);
        }
        return statuses;
      });
  cp_service_.Register<proto::FetchContentRequest>(
      [this](const proto::FetchContentRequest& req,
             proto::FetchContentResponse* resp) {
        if (!cp_->FindOffer(req.content_id).has_value()) {
          return Status::kUnknownContent;
        }
        resp->content = cp_->GetContent(req.content_id);
        return Status::kOk;
      });
  cp_service_.Register<proto::FetchCrlRequest>(
      [this](const proto::FetchCrlRequest&, proto::FetchCrlResponse* resp) {
        resp->crl_snapshot = cp_->Crl().Serialize();
        return Status::kOk;
      });

  // -- TTP ---------------------------------------------------------------
  ttp_service_.Register<proto::OpenEscrowRequest>(
      [this](const proto::OpenEscrowRequest& req,
             proto::OpenEscrowResponse* resp) {
        auto out = ttp_->OpenEscrow(req.evidence, cp_->PublicKey());
        resp->opened = out.opened;
        resp->card_id = out.card_id;
        resp->reason = out.reason;
        return Status::kOk;
      });

  ca_service_.BindTo(&transport_, kCaEndpoint);
  bank_service_.BindTo(&transport_, kBankEndpoint);
  cp_service_.BindTo(&transport_, kCpEndpoint);
  ttp_service_.BindTo(&transport_, kTtpEndpoint);
}

std::vector<std::uint64_t> P2drmSystem::ProcessFraud() {
  std::vector<std::uint64_t> identified;
  net::Rpc rpc(&transport_, kCpEndpoint);
  for (FraudEvidence& evidence : cp_->TakeFraudEvidence()) {
    proto::OpenEscrowRequest req;
    req.evidence = std::move(evidence);
    auto resp = rpc.Call(kTtpEndpoint, req);
    if (!resp.ok() || !resp.value.opened) continue;
    identified.push_back(resp.value.card_id);
    // Revoke the pseudonym that committed the fraud.
    PseudonymCertificate offender = PseudonymCertificate::Deserialize(
        req.evidence.second.pseudonym_cert);
    cp_->Revoke(offender.KeyId());
  }
  return identified;
}

}  // namespace core
}  // namespace p2drm
