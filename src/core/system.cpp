#include "core/system.h"

#include "core/protocol.h"

namespace p2drm {
namespace core {

namespace proto = protocol;

P2drmSystem::P2drmSystem(const SystemConfig& config,
                         bignum::RandomSource* rng)
    : transport_(config.latency) {
  ca_ = std::make_unique<CertificationAuthority>(config.ca_key_bits, rng);
  ttp_ = std::make_unique<TrustedThirdParty>(config.ttp_key_bits, rng);
  bank_ = std::make_unique<PaymentProvider>(config.bank_key_bits, rng);
  cp_ = std::make_unique<ContentProvider>(config.cp, rng, &clock_,
                                          bank_.get(), ca_->PublicKey());
  RegisterEndpoints();
}

void P2drmSystem::RegisterEndpoints() {
  transport_.RegisterEndpoint(
      kCaEndpoint, [this](const std::vector<std::uint8_t>& request) {
        net::ByteReader r(request);
        auto tag = static_cast<proto::Tag>(r.U8());
        switch (tag) {
          case proto::Tag::kEnrol: {
            auto req = proto::EnrolRequest::Decode(&r);
            proto::EnrolResponse resp;
            resp.certificate = ca_->Enrol(req.holder_name, req.master_key);
            return resp.Encode();
          }
          case proto::Tag::kPseudonymSign: {
            auto req = proto::PseudonymSignRequest::Decode(&r);
            proto::PseudonymSignResponse resp;
            resp.blind_signature =
                ca_->SignPseudonymBlinded(req.card_id, req.blinded);
            return resp.Encode();
          }
          case proto::Tag::kDeviceCert: {
            auto req = proto::DeviceCertRequest::Decode(&r);
            proto::DeviceCertResponse resp;
            resp.certificate =
                ca_->CertifyDevice(req.device_key, req.security_level);
            return resp.Encode();
          }
          default:
            throw net::CodecError("ca: unknown message tag");
        }
      });

  transport_.RegisterEndpoint(
      kBankEndpoint, [this](const std::vector<std::uint8_t>& request) {
        net::ByteReader r(request);
        auto tag = static_cast<proto::Tag>(r.U8());
        switch (tag) {
          case proto::Tag::kWithdraw: {
            auto req = proto::WithdrawRequest::Decode(&r);
            proto::WithdrawResponse resp;
            resp.status = bank_->Withdraw(req.account, req.denomination,
                                          req.blinded, &resp.blind_signature);
            return resp.Encode();
          }
          case proto::Tag::kDeposit: {
            auto req = proto::DepositRequest::Decode(&r);
            proto::DepositResponse resp;
            resp.status = bank_->Deposit(req.coin, req.merchant_account);
            return resp.Encode();
          }
          default:
            throw net::CodecError("bank: unknown message tag");
        }
      });

  transport_.RegisterEndpoint(
      kCpEndpoint, [this](const std::vector<std::uint8_t>& request) {
        net::ByteReader r(request);
        auto tag = static_cast<proto::Tag>(r.U8());
        switch (tag) {
          case proto::Tag::kCatalog: {
            proto::CatalogResponse resp;
            resp.offers = cp_->Catalog();
            return resp.Encode();
          }
          case proto::Tag::kPurchase: {
            auto req = proto::PurchaseRequest::Decode(&r);
            auto out = cp_->Purchase(req.buyer, req.content_id, req.payment);
            proto::PurchaseResponse resp;
            resp.status = out.status;
            resp.license = out.license;
            return resp.Encode();
          }
          case proto::Tag::kExchange: {
            auto req = proto::ExchangeRequest::Decode(&r);
            auto out = cp_->ExchangeForAnonymous(req.license,
                                                 req.possession_sig);
            proto::ExchangeResponse resp;
            resp.status = out.status;
            resp.anonymous_license = out.anonymous_license;
            return resp.Encode();
          }
          case proto::Tag::kRedeem: {
            auto req = proto::RedeemRequest::Decode(&r);
            auto out = cp_->RedeemAnonymous(req.anonymous_license, req.taker);
            proto::PurchaseResponse resp;
            resp.status = out.status;
            resp.license = out.license;
            return resp.Encode();
          }
          case proto::Tag::kFetchContent: {
            auto req = proto::FetchContentRequest::Decode(&r);
            proto::FetchContentResponse resp;
            if (cp_->FindOffer(req.content_id).has_value()) {
              resp.status = Status::kOk;
              resp.content = cp_->GetContent(req.content_id);
            } else {
              resp.status = Status::kUnknownContent;
            }
            return resp.Encode();
          }
          case proto::Tag::kFetchCrl: {
            proto::FetchCrlResponse resp;
            resp.crl_snapshot = cp_->Crl().Serialize();
            return resp.Encode();
          }
          default:
            throw net::CodecError("cp: unknown message tag");
        }
      });

  transport_.RegisterEndpoint(
      kTtpEndpoint, [this](const std::vector<std::uint8_t>& request) {
        net::ByteReader r(request);
        auto tag = static_cast<proto::Tag>(r.U8());
        if (tag != proto::Tag::kOpenEscrow) {
          throw net::CodecError("ttp: unknown message tag");
        }
        auto req = proto::OpenEscrowRequest::Decode(&r);
        auto out = ttp_->OpenEscrow(req.evidence, cp_->PublicKey());
        proto::OpenEscrowResponse resp;
        resp.opened = out.opened;
        resp.card_id = out.card_id;
        resp.reason = out.reason;
        return resp.Encode();
      });
}

std::vector<std::uint64_t> P2drmSystem::ProcessFraud() {
  std::vector<std::uint64_t> identified;
  for (FraudEvidence& evidence : cp_->TakeFraudEvidence()) {
    proto::OpenEscrowRequest req;
    req.evidence = std::move(evidence);
    auto raw = transport_.Call(kCpEndpoint, kTtpEndpoint, req.Encode());
    auto resp = proto::OpenEscrowResponse::Decode(raw);
    if (!resp.opened) continue;
    identified.push_back(resp.card_id);
    // Revoke the pseudonym that committed the fraud.
    PseudonymCertificate offender = PseudonymCertificate::Deserialize(
        req.evidence.second.pseudonym_cert);
    cp_->Revoke(offender.KeyId());
  }
  return identified;
}

}  // namespace core
}  // namespace p2drm
