#ifndef P2DRM_CORE_PAYMENT_H_
#define P2DRM_CORE_PAYMENT_H_

/// \file payment.h
/// \brief Anonymous payment: Chaum-style blind-signature e-cash.
///
/// The paper's purchase protocol needs payment that does not identify the
/// buyer to the content provider *or* let the bank link a withdrawal to a
/// spend. Coins are fixed-denomination serials blind-signed by the bank;
/// withdrawal is identified (the account is debited), deposit is anonymous,
/// and double-spending is caught by the serial set. The identified
/// `DirectDebit` path is the baseline-DRM payment and is deliberately
/// privacy-leaking: the bank records payee and amount.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/random_source.h"
#include "core/errors.h"
#include "crypto/rsa.h"
#include "server/batch_pipeline.h"
#include "server/batch_verifier.h"
#include "server/server_runtime.h"
#include "server/stage_executor.h"
#include "store/spent_set.h"

namespace p2drm {
namespace core {

/// A bearer coin: random serial blind-signed under the denomination key.
struct Coin {
  std::array<std::uint8_t, 16> serial{};
  std::uint32_t denomination = 0;
  std::vector<std::uint8_t> signature;  ///< bank RSA-FDH over CanonicalBytes

  /// The byte string the bank's blind signature covers.
  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static Coin Deserialize(const std::vector<std::uint8_t>& b);
};

/// Record of an identified (baseline) debit — the privacy leak we measure.
struct DebitRecord {
  std::string account;
  std::string payee;
  std::uint64_t amount = 0;
  std::uint64_t timestamp_s = 0;
};

/// Bank-side configuration.
struct PaymentProviderConfig {
  /// Number of deposit shards. 0 keeps the classic single-threaded
  /// spent-serial set; N > 0 spins up a server::ServerRuntime whose N
  /// workers own the serial partitions, so coin double-spend checks
  /// shard like the provider's spent set instead of serializing at the
  /// bank. Single deposits route through the same shards, so batched
  /// and unbatched traffic can never double-credit one serial.
  std::size_t deposit_shards = 0;
  /// Per-shard bounded-queue capacity (coins). DepositBatch calls that
  /// would overflow a shard queue are shed with Status::kOverloaded.
  std::size_t deposit_queue_capacity = 4096;
  /// Streaming deposit window: how many StreamDepositBatch batches may
  /// sit between submit and commit before the oldest is forced through.
  std::size_t max_batches_in_flight = 4;
};

/// The bank / payment provider actor.
class PaymentProvider {
 public:
  /// One signing key per denomination (a blind signature cannot carry the
  /// denomination in the message — the key *is* the denomination).
  PaymentProvider(std::size_t modulus_bits, bignum::RandomSource* rng,
                  const PaymentProviderConfig& config = PaymentProviderConfig());
  ~PaymentProvider();

  /// Supported coin denominations, ascending.
  static const std::vector<std::uint32_t>& Denominations();

  /// Verification key for \p denomination. Throws for unknown values.
  const crypto::RsaPublicKey& DenominationKey(std::uint32_t denomination) const;

  /// Opens an account with an initial balance.
  void OpenAccount(const std::string& account, std::uint64_t balance);

  std::uint64_t Balance(const std::string& account) const;

  /// Identified withdrawal: debits \p account by \p denomination and blind-
  /// signs the coin request. The bank learns who withdrew how much, but not
  /// the coin serial.
  Status Withdraw(const std::string& account, std::uint32_t denomination,
                  const bignum::BigInt& blinded, bignum::BigInt* blind_sig);

  /// Anonymous deposit by a merchant. Verifies the coin, rejects double
  /// spends by serial, credits \p merchant_account. With deposit shards
  /// the serial check serializes on the coin's home shard (never shed),
  /// exactly like one item of a DepositBatch.
  Status Deposit(const Coin& coin, const std::string& merchant_account);

  /// One decoded batched-deposit item (matches the wire DepositRequest).
  struct DepositItem {
    Coin coin;
    std::string merchant_account;
  };

  /// Deposits a whole batch through the shared server::BatchPipeline:
  /// verify (ONE screened same-key verification per denomination group,
  /// cached Montgomery contexts), mutate (serial inserts on each coin's
  /// home shard when deposit_shards > 0 — the backpressure point),
  /// commit (account credits, serialized on the dispatch thread).
  /// Per-item statuses are index-aligned and match Deposit() item for
  /// item; a duplicate serial — within the batch or across batches and
  /// single deposits — yields exactly one credit, every repeat a typed
  /// kDoubleSpend. Items shed by a full shard queue (only possible when
  /// \p shed_on_full) return kOverloaded with no trace: the serial is
  /// not burned and the coin may be re-deposited.
  std::vector<Status> DepositBatch(const std::vector<DepositItem>& items,
                                   bool shed_on_full = true);

  // -- streaming deposits (stage-pipelined submission) -------------------

  /// Streaming submission of one deposit batch through the bank's
  /// server::StagedBatchPipeline. Verify and the serial-shard mutate run
  /// inline (so cross-batch double-spend resolution stays submission-
  /// ordered); the account-credit commit is deferred until the in-flight
  /// window fills or FlushDeposits() runs, at which point \p on_done
  /// receives the index-aligned statuses. Deposits have no issue stage,
  /// so the win here is the deferred-commit window, not signer fan-out.
  /// Serial: for a fixed submission order the statuses and resulting
  /// balances are identical to calling DepositBatch per batch.
  void StreamDepositBatch(std::vector<DepositItem> items,
                          std::function<void(std::vector<Status>)> on_done,
                          bool shed_on_full = true);

  /// Commits every in-flight streamed deposit batch (oldest first) and
  /// fires the pending callbacks. Returns the aggregate busy timings.
  server::BatchPipelineTimings FlushDeposits();

  /// Streamed deposit batches submitted but not yet committed.
  std::size_t StreamingDepositsInFlight() const {
    return staged_ != nullptr ? staged_->InFlight() : 0;
  }

  /// The deposit shard runtime, or null when deposit_shards == 0.
  const server::ServerRuntime* DepositRuntime() const {
    return runtime_.get();
  }

  /// Wires tracing + metrics into the deposit pipeline (and the deposit
  /// runtime's queue accounting). Same contract as
  /// ContentProvider::set_observability.
  void set_observability(const obs::Sink& sink, const std::string& prefix = "");

  /// Baseline identified debit: moves funds and records the transaction.
  Status DirectDebit(const std::string& account, const std::string& payee,
                     std::uint64_t amount, std::uint64_t timestamp_s);

  /// The identified-transaction log (baseline privacy-leak accounting).
  const std::vector<DebitRecord>& DebitLog() const { return debit_log_; }

  /// Number of coins deposited (audit).
  std::uint64_t DepositedCoins() const { return deposited_coins_; }
  /// Number of rejected double-spend attempts.
  std::uint64_t DoubleSpendAttempts() const { return double_spend_attempts_; }

 private:
  /// Serial-set insert for one coin: kOk (fresh) or kDoubleSpend,
  /// routed through the shard runtime when configured.
  Status SpendSerial(const Coin& coin);
  static rel::LicenseId SerialKey(const Coin& coin);

  /// Heap-boxed per-batch state so one plan builder serves both the
  /// synchronous DepositBatch and the streaming path (where the batch
  /// outlives the submitting call).
  struct DepositBatchState;
  server::BatchPipeline::Plan BuildDepositPlan(
      std::shared_ptr<DepositBatchState> st, bool shed_on_full);

  PaymentProviderConfig config_;
  bignum::RandomSource* rng_;
  std::map<std::uint32_t, crypto::RsaPrivateKey> denom_keys_;
  std::map<std::uint32_t, crypto::RsaPublicKey> denom_pub_;
  std::map<std::string, std::uint64_t> accounts_;
  store::SpentSet spent_serials_;  ///< unsharded path; unused with runtime_
  std::unique_ptr<server::ServerRuntime> runtime_;  ///< sharded path
  /// Streaming deposit window (no signer pool: deposits sign nothing).
  std::unique_ptr<server::StagedBatchPipeline> staged_;
  server::BatchVerifier verifier_;
  std::vector<DebitRecord> debit_log_;
  std::uint64_t deposited_coins_ = 0;
  std::uint64_t double_spend_attempts_ = 0;
  server::PipelineObs obs_deposit_;  ///< null endpoints = off
};

/// Client-side helper: splits \p amount into available denominations,
/// largest first. Returns empty when \p amount is 0.
std::vector<std::uint32_t> PlanCoins(std::uint64_t amount);

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_PAYMENT_H_
