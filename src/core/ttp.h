#ifndef P2DRM_CORE_TTP_H_
#define P2DRM_CORE_TTP_H_

/// \file ttp.h
/// \brief Trusted Third Party: identity escrow and conditional anonymity.
///
/// Every pseudonym certificate carries an escrow blob encrypted to the TTP.
/// Honest users are never de-anonymized; only when the content provider
/// presents cryptographic evidence of fraud — two provider-signed
/// redemption transcripts for the same license id — does the TTP open the
/// escrow and reveal the card id behind the offending pseudonym. This is
/// the "revocable anonymity" piece of the paper.

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/certificates.h"
#include "crypto/rsa.h"
#include "rel/ids.h"

namespace p2drm {
namespace core {

/// A provider-signed record of one redemption attempt.
struct RedemptionTranscript {
  rel::LicenseId license_id;
  std::vector<std::uint8_t> pseudonym_cert;  ///< serialized certificate shown
  std::uint64_t timestamp_s = 0;
  std::vector<std::uint8_t> cp_signature;    ///< CP signature over the above

  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static RedemptionTranscript Deserialize(const std::vector<std::uint8_t>& b);
};

/// Two conflicting transcripts for the same license id.
struct FraudEvidence {
  RedemptionTranscript first;
  RedemptionTranscript second;

  std::vector<std::uint8_t> Serialize() const;
  static FraudEvidence Deserialize(const std::vector<std::uint8_t>& b);
};

/// Escrow plaintext layout: card id + random nonce (anti-dictionary).
struct EscrowPayload {
  std::uint64_t card_id = 0;
  std::array<std::uint8_t, 16> nonce{};

  std::vector<std::uint8_t> Serialize() const;
  static bool Deserialize(const std::vector<std::uint8_t>& b,
                          EscrowPayload* out);
};

/// The TTP actor.
class TrustedThirdParty {
 public:
  TrustedThirdParty(std::size_t modulus_bits, bignum::RandomSource* rng);

  /// Escrow encryption key; cards encrypt their identity to this key.
  const crypto::RsaPublicKey& EscrowKey() const { return public_key_; }

  /// Result of an escrow-opening request.
  struct OpenResult {
    bool opened = false;
    std::uint64_t card_id = 0;  ///< valid when opened
    std::string reason;         ///< refusal / failure reason otherwise
  };

  /// Verifies the evidence and, if convincing, decrypts the escrow of the
  /// *second* (fraudulent) transcript's pseudonym certificate.
  /// \param cp_key the content provider key the transcripts must verify
  ///        under (the TTP only accepts evidence from providers it knows).
  OpenResult OpenEscrow(const FraudEvidence& evidence,
                        const crypto::RsaPublicKey& cp_key);

  /// Audit counter: number of escrows actually opened.
  std::uint64_t OpenedCount() const { return opened_count_; }
  /// Audit counter: number of refused requests.
  std::uint64_t RefusedCount() const { return refused_count_; }

 private:
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;
  std::uint64_t opened_count_ = 0;
  std::uint64_t refused_count_ = 0;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_TTP_H_
