#ifndef P2DRM_CORE_CERTIFICATES_H_
#define P2DRM_CORE_CERTIFICATES_H_

/// \file certificates.h
/// \brief Certificate structures of the P2DRM PKI.
///
/// Three certificate flavours exist in the scheme:
///  * IdentityCertificate — issued by the CA at enrolment, binds a card's
///    real identity to its master public key. Never shown to the content
///    provider.
///  * PseudonymCertificate — a CA blind-signature over a fresh pseudonym
///    public key plus an identity escrow. Shown at purchase; unlinkable to
///    the identity and to other pseudonyms of the same card.
///  * DeviceCertificate — binds a device id to its key and security level;
///    subject to revocation.

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "net/codec.h"
#include "rel/ids.h"

namespace p2drm {
namespace core {

/// Card identity certificate (enrolment output).
struct IdentityCertificate {
  std::string holder_name;         ///< real-world identity (enrolment only)
  std::uint64_t card_id = 0;       ///< CA-assigned card number
  crypto::RsaPublicKey master_key; ///< card master public key
  std::vector<std::uint8_t> ca_signature;

  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static IdentityCertificate Deserialize(const std::vector<std::uint8_t>& b);
};

/// Pseudonym certificate: what a buyer shows the content provider.
///
/// The CA signature covers pseudonym_key ‖ escrow, but was produced
/// *blindly* — the CA never saw either, so certificates from the same card
/// are mutually unlinkable. The escrow decrypts (under the TTP key) to the
/// card id, enabling fraud-triggered de-anonymization.
struct PseudonymCertificate {
  crypto::RsaPublicKey pseudonym_key;
  std::vector<std::uint8_t> escrow;  ///< Enc_TTP(card_id ‖ nonce)
  std::vector<std::uint8_t> ca_signature;

  /// The byte string the CA's blind signature covers.
  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static PseudonymCertificate Deserialize(const std::vector<std::uint8_t>& b);

  /// Fingerprint of the pseudonym key (license binding target).
  rel::KeyFingerprint KeyId() const { return pseudonym_key.Fingerprint(); }
};

/// Compliant-device certificate.
struct DeviceCertificate {
  rel::DeviceId device_id{};
  crypto::RsaPublicKey device_key;
  std::uint8_t security_level = 0;
  std::vector<std::uint8_t> ca_signature;

  std::vector<std::uint8_t> CanonicalBytes() const;
  std::vector<std::uint8_t> Serialize() const;
  static DeviceCertificate Deserialize(const std::vector<std::uint8_t>& b);
};

/// Verifies \p cert's CA signature (identity flavour).
bool VerifyIdentityCert(const crypto::RsaPublicKey& ca_key,
                        const IdentityCertificate& cert);
/// Verifies \p cert's CA signature (pseudonym flavour).
bool VerifyPseudonymCert(const crypto::RsaPublicKey& ca_key,
                         const PseudonymCertificate& cert);
/// Verifies \p cert's CA signature (device flavour).
bool VerifyDeviceCert(const crypto::RsaPublicKey& ca_key,
                      const DeviceCertificate& cert);

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_CERTIFICATES_H_
