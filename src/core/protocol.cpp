#include "core/protocol.h"

namespace p2drm {
namespace core {
namespace protocol {

void WriteBigInt(net::ByteWriter* w, const bignum::BigInt& v) {
  w->Blob(v.ToBytes());
}

bignum::BigInt ReadBigInt(net::ByteReader* r) {
  return bignum::BigInt::FromBytes(r->Blob());
}

namespace {

void WriteOffer(net::ByteWriter* w, const Offer& o) {
  w->U64(o.content_id);
  w->String(o.title);
  w->U64(o.price);
  o.rights.Encode(w);
}

Offer ReadOffer(net::ByteReader* r) {
  Offer o;
  o.content_id = r->U64();
  o.title = r->String();
  o.price = r->U64();
  o.rights = rel::Rights::Decode(r);
  return o;
}

}  // namespace

// -- CA -----------------------------------------------------------------

std::vector<std::uint8_t> EnrolRequest::Encode() const {
  net::ByteWriter w;
  w.String(holder_name);
  w.Blob(master_key.Serialize());
  return w.Take();
}

EnrolRequest EnrolRequest::Decode(net::ByteReader* r) {
  EnrolRequest m;
  m.holder_name = r->String();
  m.master_key = crypto::RsaPublicKey::Deserialize(r->Blob());
  return m;
}

std::vector<std::uint8_t> EnrolResponse::Encode() const {
  net::ByteWriter w;
  w.Blob(certificate.Serialize());
  return w.Take();
}

EnrolResponse EnrolResponse::Decode(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  EnrolResponse m;
  m.certificate = IdentityCertificate::Deserialize(r.Blob());
  return m;
}

std::vector<std::uint8_t> PseudonymSignRequest::Encode() const {
  net::ByteWriter w;
  w.U64(card_id);
  WriteBigInt(&w, blinded);
  return w.Take();
}

PseudonymSignRequest PseudonymSignRequest::Decode(net::ByteReader* r) {
  PseudonymSignRequest m;
  m.card_id = r->U64();
  m.blinded = ReadBigInt(r);
  return m;
}

std::vector<std::uint8_t> PseudonymSignResponse::Encode() const {
  net::ByteWriter w;
  WriteBigInt(&w, blind_signature);
  return w.Take();
}

PseudonymSignResponse PseudonymSignResponse::Decode(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  PseudonymSignResponse m;
  m.blind_signature = ReadBigInt(&r);
  return m;
}

std::vector<std::uint8_t> DeviceCertRequest::Encode() const {
  net::ByteWriter w;
  w.Blob(device_key.Serialize());
  w.U8(security_level);
  return w.Take();
}

DeviceCertRequest DeviceCertRequest::Decode(net::ByteReader* r) {
  DeviceCertRequest m;
  m.device_key = crypto::RsaPublicKey::Deserialize(r->Blob());
  m.security_level = r->U8();
  return m;
}

std::vector<std::uint8_t> DeviceCertResponse::Encode() const {
  net::ByteWriter w;
  w.Blob(certificate.Serialize());
  return w.Take();
}

DeviceCertResponse DeviceCertResponse::Decode(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  DeviceCertResponse m;
  m.certificate = DeviceCertificate::Deserialize(r.Blob());
  return m;
}

// -- bank ---------------------------------------------------------------

std::vector<std::uint8_t> WithdrawRequest::Encode() const {
  net::ByteWriter w;
  w.String(account);
  w.U32(denomination);
  WriteBigInt(&w, blinded);
  return w.Take();
}

WithdrawRequest WithdrawRequest::Decode(net::ByteReader* r) {
  WithdrawRequest m;
  m.account = r->String();
  m.denomination = r->U32();
  m.blinded = ReadBigInt(r);
  return m;
}

std::vector<std::uint8_t> WithdrawResponse::Encode() const {
  net::ByteWriter w;
  WriteBigInt(&w, blind_signature);
  return w.Take();
}

WithdrawResponse WithdrawResponse::Decode(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  WithdrawResponse m;
  m.blind_signature = ReadBigInt(&r);
  return m;
}

std::vector<std::uint8_t> DepositRequest::Encode() const {
  net::ByteWriter w;
  w.Blob(coin.Serialize());
  w.String(merchant_account);
  return w.Take();
}

DepositRequest DepositRequest::Decode(net::ByteReader* r) {
  DepositRequest m;
  m.coin = Coin::Deserialize(r->Blob());
  m.merchant_account = r->String();
  return m;
}

std::vector<std::uint8_t> DepositResponse::Encode() const { return {}; }

DepositResponse DepositResponse::Decode(const std::vector<std::uint8_t>&) {
  return {};
}

// -- content provider ------------------------------------------------------

std::vector<std::uint8_t> CatalogRequest::Encode() const { return {}; }

std::vector<std::uint8_t> CatalogResponse::Encode() const {
  net::ByteWriter w;
  w.U32(static_cast<std::uint32_t>(offers.size()));
  for (const Offer& o : offers) WriteOffer(&w, o);
  return w.Take();
}

CatalogResponse CatalogResponse::Decode(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  CatalogResponse m;
  std::uint32_t n = r.U32();
  m.offers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.offers.push_back(ReadOffer(&r));
  return m;
}

std::vector<std::uint8_t> PurchaseRequest::Encode() const {
  net::ByteWriter w;
  w.Blob(buyer.Serialize());
  w.U64(content_id);
  w.U32(static_cast<std::uint32_t>(payment.size()));
  for (const Coin& c : payment) w.Blob(c.Serialize());
  return w.Take();
}

PurchaseRequest PurchaseRequest::Decode(net::ByteReader* r) {
  PurchaseRequest m;
  m.buyer = PseudonymCertificate::Deserialize(r->Blob());
  m.content_id = r->U64();
  std::uint32_t n = r->U32();
  m.payment.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.payment.push_back(Coin::Deserialize(r->Blob()));
  }
  return m;
}

std::vector<std::uint8_t> PurchaseResponse::Encode() const {
  net::ByteWriter w;
  w.Blob(license.Serialize());
  return w.Take();
}

PurchaseResponse PurchaseResponse::Decode(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  PurchaseResponse m;
  m.license = rel::License::Deserialize(r.Blob());
  return m;
}

std::vector<std::uint8_t> ExchangeRequest::Encode() const {
  net::ByteWriter w;
  w.Blob(license.Serialize());
  w.Blob(possession_sig);
  return w.Take();
}

ExchangeRequest ExchangeRequest::Decode(net::ByteReader* r) {
  ExchangeRequest m;
  m.license = rel::License::Deserialize(r->Blob());
  m.possession_sig = r->Blob();
  return m;
}

std::vector<std::uint8_t> ExchangeResponse::Encode() const {
  net::ByteWriter w;
  w.Blob(anonymous_license.Serialize());
  return w.Take();
}

ExchangeResponse ExchangeResponse::Decode(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  ExchangeResponse m;
  m.anonymous_license = rel::License::Deserialize(r.Blob());
  return m;
}

std::vector<std::uint8_t> RedeemRequest::Encode() const {
  net::ByteWriter w;
  w.Blob(anonymous_license.Serialize());
  w.Blob(taker.Serialize());
  return w.Take();
}

RedeemRequest RedeemRequest::Decode(net::ByteReader* r) {
  RedeemRequest m;
  m.anonymous_license = rel::License::Deserialize(r->Blob());
  m.taker = PseudonymCertificate::Deserialize(r->Blob());
  return m;
}

std::vector<std::uint8_t> FetchContentRequest::Encode() const {
  net::ByteWriter w;
  w.U64(content_id);
  return w.Take();
}

FetchContentRequest FetchContentRequest::Decode(net::ByteReader* r) {
  FetchContentRequest m;
  m.content_id = r->U64();
  return m;
}

std::vector<std::uint8_t> FetchContentResponse::Encode() const {
  net::ByteWriter w;
  w.U64(content.content_id);
  w.Fixed(content.nonce);
  w.Blob(content.ciphertext);
  return w.Take();
}

FetchContentResponse FetchContentResponse::Decode(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  FetchContentResponse m;
  m.content.content_id = r.U64();
  m.content.nonce = r.Fixed<12>();
  m.content.ciphertext = r.Blob();
  return m;
}

std::vector<std::uint8_t> FetchCrlRequest::Encode() const { return {}; }

std::vector<std::uint8_t> FetchCrlResponse::Encode() const {
  net::ByteWriter w;
  w.Blob(crl_snapshot);
  return w.Take();
}

FetchCrlResponse FetchCrlResponse::Decode(const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  FetchCrlResponse m;
  m.crl_snapshot = r.Blob();
  return m;
}

// -- TTP ---------------------------------------------------------------------

std::vector<std::uint8_t> OpenEscrowRequest::Encode() const {
  net::ByteWriter w;
  w.Blob(evidence.Serialize());
  return w.Take();
}

OpenEscrowRequest OpenEscrowRequest::Decode(net::ByteReader* r) {
  OpenEscrowRequest m;
  m.evidence = FraudEvidence::Deserialize(r->Blob());
  return m;
}

std::vector<std::uint8_t> OpenEscrowResponse::Encode() const {
  net::ByteWriter w;
  w.U8(opened ? 1 : 0);
  w.U64(card_id);
  w.String(reason);
  return w.Take();
}

OpenEscrowResponse OpenEscrowResponse::Decode(
    const std::vector<std::uint8_t>& b) {
  net::ByteReader r(b);
  OpenEscrowResponse m;
  m.opened = r.U8() != 0;
  m.card_id = r.U64();
  m.reason = r.String();
  return m;
}

}  // namespace protocol
}  // namespace core
}  // namespace p2drm
