#ifndef P2DRM_CORE_ERRORS_H_
#define P2DRM_CORE_ERRORS_H_

/// \file errors.h
/// \brief Protocol status codes shared by all actors.

#include <cstdint>

namespace p2drm {
namespace core {

/// Outcome of a protocol operation. Values are wire-stable.
enum class Status : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,        ///< malformed message
  kBadCertificate = 2,    ///< certificate signature invalid
  kBadSignature = 3,      ///< license or possession signature invalid
  kUnknownContent = 4,    ///< content id not in catalog
  kPaymentFailed = 5,     ///< coin invalid or rejected by the bank
  kDoubleSpend = 6,       ///< coin serial already deposited
  kAlreadySpent = 7,      ///< license id already redeemed
  kRevoked = 8,           ///< certificate/key on the revocation list
  kNotTransferable = 9,   ///< rights do not include transfer
  kInsufficientFunds = 10,///< account balance too low
  kUnknownAccount = 11,   ///< no such account
  kWrongPrice = 12,       ///< payment does not cover the offer price
  // RPC-layer codes (produced by the envelope dispatch, not by actors).
  kUnavailable = 13,      ///< no such endpoint on the transport
  kUnknownTag = 14,       ///< endpoint has no handler for the message tag
  kVersionMismatch = 15,  ///< envelope protocol version unsupported
  kInternalError = 16,    ///< handler threw; nothing usable came back
  kBadResponse = 17,      ///< client could not decode the response envelope
  kOverloaded = 18,       ///< server shed the request (bounded queue full)
  kWrongReplica = 19,     ///< request reached a replica that does not own
                          ///< the key under the current cluster ring epoch;
                          ///< the response payload carries a redirect hint
};

/// Human-readable status name.
inline const char* StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad-request";
    case Status::kBadCertificate: return "bad-certificate";
    case Status::kBadSignature: return "bad-signature";
    case Status::kUnknownContent: return "unknown-content";
    case Status::kPaymentFailed: return "payment-failed";
    case Status::kDoubleSpend: return "double-spend";
    case Status::kAlreadySpent: return "already-spent";
    case Status::kRevoked: return "revoked";
    case Status::kNotTransferable: return "not-transferable";
    case Status::kInsufficientFunds: return "insufficient-funds";
    case Status::kUnknownAccount: return "unknown-account";
    case Status::kWrongPrice: return "wrong-price";
    case Status::kUnavailable: return "unavailable";
    case Status::kUnknownTag: return "unknown-tag";
    case Status::kVersionMismatch: return "version-mismatch";
    case Status::kInternalError: return "internal-error";
    case Status::kBadResponse: return "bad-response";
    case Status::kOverloaded: return "overloaded";
    case Status::kWrongReplica: return "wrong-replica";
  }
  return "unknown";
}

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_ERRORS_H_
