#ifndef P2DRM_CORE_CONTENT_PROVIDER_H_
#define P2DRM_CORE_CONTENT_PROVIDER_H_

/// \file content_provider.h
/// \brief The content provider (CP): catalog, license issuance, anonymous
/// license exchange, and fraud handling.
///
/// Privacy posture: on the P2DRM paths the CP sees pseudonym certificates
/// and bearer coins only. Its persistent state — the spent-license set and
/// the redemption journal — contains no user identities. The identified
/// knowledge it *could* accumulate is exactly what the baseline
/// implementation (baseline/identified_drm.h) records, and the RF-4 bench
/// compares the two.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bignum/random_source.h"
#include "core/certificates.h"
#include "core/clock.h"
#include "core/errors.h"
#include "core/payment.h"
#include "core/ttp.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"
#include "rel/license.h"
#include "server/batch_pipeline.h"
#include "server/batch_verifier.h"
#include "server/server_runtime.h"
#include "server/signer_pool.h"
#include "server/stage_executor.h"
#include "store/append_log.h"
#include "store/revocation_list.h"
#include "store/spent_set.h"

namespace p2drm {
namespace core {

/// Content as distributed: ChaCha20-encrypted body plus its nonce.
/// Freely copyable — useless without a license.
struct EncryptedContent {
  rel::ContentId content_id = 0;
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> ciphertext;
};

/// A catalog entry as advertised to buyers.
struct Offer {
  rel::ContentId content_id = 0;
  std::string title;
  std::uint64_t price = 0;
  rel::Rights rights;
};

/// Content provider configuration.
struct ContentProviderConfig {
  std::size_t signing_key_bits = 1024;
  /// Spent-set storage engine; kFlat (docs/storage.md) unless a bench is
  /// ablating against the legacy backends.
  store::SpentSetBackend spent_backend = store::SpentSetBackend::kFlat;
  store::CrlStrategy crl_strategy = store::CrlStrategy::kBloomFronted;
  std::size_t expected_crl_entries = 1024;
  /// When non-empty, every spent license id is journaled here and the
  /// spent set is rebuilt from the journal at construction. With
  /// redeem_shards > 0 the path becomes the shard-segment prefix
  /// (`<path>.shard<k>`); an existing unsharded journal at the path
  /// itself is replayed once as a migration.
  std::string spent_journal_path;
  /// Number of redemption shards. 0 keeps the classic single-threaded
  /// spent set; N > 0 spins up a server::ServerRuntime whose N shard
  /// workers own the spent-set partitions and journal segments.
  std::size_t redeem_shards = 0;
  /// Per-shard bounded-queue capacity (items). Batch redemptions that
  /// would overflow a shard queue are shed with Status::kOverloaded.
  std::size_t redeem_queue_capacity = 4096;
  /// Dedicated work-stealing signer pool for the issue stage
  /// (server::SignerPool), sized independently of redeem_shards. 0 keeps
  /// the classic fan-out (shard workers when redeem_shards > 0, serial
  /// otherwise); N > 0 moves EVERY issue stage — synchronous batches and
  /// the streaming pipeline alike — onto N pool workers, so signing
  /// capacity decouples from spend-queue depth.
  std::size_t signer_pool_size = 0;
  /// Streaming window: StreamRedeemBatch/StreamPurchaseBatch/
  /// StreamExchangeBatch keep at most this many batches in flight before
  /// Submit blocks on the oldest batch's commit.
  std::size_t max_batches_in_flight = 4;
};

/// The content provider actor.
class ContentProvider {
 public:
  /// \param bank where coins are deposited (merchant account "cp")
  /// \param ca_key trusted CA verification key
  ContentProvider(const ContentProviderConfig& config,
                  bignum::RandomSource* rng, const Clock* clock,
                  PaymentProvider* bank, crypto::RsaPublicKey ca_key);
  ~ContentProvider();

  /// License/transcript verification key.
  const crypto::RsaPublicKey& PublicKey() const { return public_key_; }

  // -- catalog ------------------------------------------------------------

  /// Encrypts and publishes \p plaintext; returns its content id.
  rel::ContentId Publish(const std::string& title,
                         const std::vector<std::uint8_t>& plaintext,
                         std::uint64_t price, const rel::Rights& rights);

  std::vector<Offer> Catalog() const;
  std::optional<Offer> FindOffer(rel::ContentId id) const;

  /// The encrypted content blob (available to anyone; superdistribution).
  const EncryptedContent& GetContent(rel::ContentId id) const;

  // -- purchase (P2DRM path) -----------------------------------------------

  struct PurchaseResult {
    Status status = Status::kBadRequest;
    rel::License license;  ///< valid when status == kOk
  };

  /// Anonymous purchase: verifies the pseudonym certificate, checks the
  /// CRL, deposits the coins, and issues a license bound to the pseudonym
  /// key with the content key wrapped to it.
  PurchaseResult Purchase(const PseudonymCertificate& buyer,
                          rel::ContentId content_id,
                          const std::vector<Coin>& payment);

  /// One decoded batched-purchase item.
  struct PurchaseItem {
    PseudonymCertificate buyer;
    rel::ContentId content_id = 0;
    std::vector<Coin> payment;
  };

  /// Purchases a whole batch through the shared server::BatchPipeline:
  /// verify (memoized pseudonym-cert checks + one shared CRL pass),
  /// mutate (ONE PaymentProvider::DepositBatch call covering every
  /// item's coins, so double-spend checks shard at the bank), issue
  /// (license signing and content-key wrapping on the shard workers
  /// when redeem_shards > 0). Per-item statuses are index-aligned and
  /// match Purchase() item for item, except that repeated certificates
  /// inside or across batches cost one verification instead of one
  /// each, and a failing coin no longer stops the rest of its item's
  /// coins from being deposited (bearer-instrument rules make both
  /// reading equally unrecoverable for the buyer; the statuses agree).
  std::vector<PurchaseResult> PurchaseBatch(
      const std::vector<PurchaseItem>& items);

  // -- private transfer ----------------------------------------------------

  struct ExchangeResult {
    Status status = Status::kBadRequest;
    rel::License anonymous_license;  ///< valid when status == kOk
  };

  /// Giver side of a transfer: swaps a transferable key-bound license for
  /// an anonymous bearer license. \p possession_sig is the pseudonym-key
  /// signature over TransferChallengeBytes(license.id). Semantically a
  /// batch of one: the spend routes through the shard runtime when
  /// configured and the bearer is signed from the same id-tagged RNG
  /// fork ExchangeBatch draws, so single and batched exchanges are
  /// deterministic across shard counts.
  ExchangeResult ExchangeForAnonymous(
      const rel::License& license,
      const std::vector<std::uint8_t>& possession_sig);

  /// One decoded batched-exchange item.
  struct ExchangeItem {
    rel::License license;
    std::vector<std::uint8_t> possession_sig;
  };

  /// Exchanges a whole batch through the shared server::BatchPipeline:
  /// verify (ONE screened same-key verification covers every license
  /// signature, cached-context possession checks, one shared CRL pass
  /// over the bound keys), mutate (old-license retirement on each id's
  /// home shard — the backpressure point), issue (bearer-license
  /// signing on the shard workers, one id-tagged RNG fork per item
  /// drawn dispatch-side in index order). Per-item results are
  /// index-aligned and match ExchangeForAnonymous item for item, plus
  /// kOverloaded for items shed by a full shard queue (no trace; the
  /// held license is untouched and the client may retry).
  std::vector<ExchangeResult> ExchangeBatch(
      const std::vector<ExchangeItem>& items);

  /// Taker side: redeems an anonymous license for a key-bound one. Exactly
  /// one redemption per license id; the second attempt yields
  /// kAlreadySpent *and* a fraud-evidence record.
  PurchaseResult RedeemAnonymous(const rel::License& anonymous_license,
                                 const PseudonymCertificate& taker);

  /// The challenge a giver's card must sign to prove key possession.
  static std::vector<std::uint8_t> TransferChallengeBytes(
      const rel::LicenseId& id);

  // -- batched redemption (server fast path) --------------------------------

  /// One decoded batch item: an anonymous license plus the taker's
  /// pseudonym certificate.
  struct RedeemItem {
    rel::License anonymous_license;
    PseudonymCertificate taker;
  };

  /// Redeems a whole batch with amortized server-side crypto: ONE
  /// screened same-key verification covers every license signature, each
  /// distinct pseudonym certificate is verified once, one shared pass
  /// answers the CRL probes, and the spent-set updates run on the shard
  /// runtime when redeem_shards > 0. Per-item results are index-aligned
  /// and match RedeemAnonymous item for item, with one addition: an item
  /// shed by a full shard queue returns Status::kOverloaded and leaves no
  /// trace in the spent set.
  std::vector<PurchaseResult> RedeemAnonymousBatch(
      const std::vector<RedeemItem>& items);

  // -- streaming pipeline (cross-batch stage overlap) -----------------------
  //
  // The synchronous batch calls above are submit-and-join: batch B's
  // issue stage finishes before batch B+1's verify starts. The Stream*
  // entry points instead run verify/mutate/draw_fork inline (so sheds
  // surface immediately and the DRBG stream stays in submit order), fan
  // issue out to the signer pool, and defer the commit tail — batch
  // B+1's verify overlaps batch B's signing. Results arrive through
  // \p on_done, invoked on the caller's own thread at the batch's commit
  // point (inside a later Stream* call once the in-flight window fills,
  // or inside FlushStreaming). Ordering contract: commits apply in
  // submit order, each batch's tail in index order, and under a fixed
  // seed the issued bytes are identical to calling the synchronous
  // batch entry points in the same order. Batches streamed concurrently
  // must be commit-independent (an exchange whose verify needs an
  // issued-key-map entry a still-in-flight batch will write must wait
  // for FlushStreaming).

  /// Streams one redemption batch into the pipeline. \p on_done may be
  /// null (results dropped).
  void StreamRedeemBatch(std::vector<RedeemItem> items,
                         std::function<void(std::vector<PurchaseResult>)>
                             on_done);
  /// Streams one purchase batch. The coin deposits still run inline
  /// inside this call (blocking, like PurchaseBatch).
  void StreamPurchaseBatch(std::vector<PurchaseItem> items,
                           std::function<void(std::vector<PurchaseResult>)>
                               on_done);
  /// Streams one exchange batch.
  void StreamExchangeBatch(std::vector<ExchangeItem> items,
                           std::function<void(std::vector<ExchangeResult>)>
                               on_done);

  // FlushStreaming() — declared below PipelineTimings — joins and
  // commits every in-flight streamed batch and closes the window.

  /// Streamed batches submitted but not yet committed.
  std::size_t StreamingInFlight() const {
    return staged_ != nullptr ? staged_->InFlight() : 0;
  }

  /// The dedicated signer pool, or null when signer_pool_size == 0.
  const server::SignerPool* Pool() const { return signer_pool_.get(); }
  server::SignerPool* Pool() { return signer_pool_.get(); }

  /// Amortization counters for the batch path (RT-2 accounting).
  server::BatchVerifierStats BatchVerifyStats() const {
    return verifier_.stats();
  }

  /// Wall-clock breakdown of the most recent RedeemAnonymousBatch /
  /// PurchaseBatch / ExchangeBatch call by pipeline stage
  /// (microseconds). `issue_us` is
  /// the dispatch thread's wait on the signing stage — with shard
  /// workers it shrinks toward the slowest worker's share, while the
  /// signing work itself accrues on the workers' ShardContext sim
  /// clocks (see ShardSimClockUs), which is what the scaling bench
  /// reports as signatures/second.
  /// Under FlushStreaming the stage numbers are busy sums across the
  /// window's batches and `makespan_us` is the window's wall span —
  /// cross-batch overlap makes makespan < verify+spend+issue.
  struct PipelineTimings {
    double verify_us = 0;  ///< batch-verify stage (signatures, certs, CRL)
    double spend_us = 0;   ///< shard-serialized state stage (spend set / bank)
    double issue_us = 0;   ///< signing stage (transcripts + fresh licenses)
    double makespan_us = 0;  ///< end-to-end span (excludes the commit tail)
    std::size_t items = 0;
  };
  PipelineTimings LastBatchTimings() const { return last_timings_; }

  /// Joins and commits every in-flight streamed batch (running their
  /// on_done callbacks) and closes the timing window. The returned
  /// timings — also visible via LastBatchTimings — carry per-stage BUSY
  /// sums over the window plus `makespan_us` (first Stream* call to
  /// Flush end); overlap shows as makespan < verify+spend+issue.
  PipelineTimings FlushStreaming();

  /// Injects the clock behind LastBatchTimings and the shard workers'
  /// sim-clock accrual (null = steady_clock). A deterministic source
  /// pins stage timings in tests; a virtual-time harness can express
  /// service cost in the same timebase as wire latency. The source is
  /// called from the shard worker threads during the issue stage, so it
  /// must be thread-safe.
  void set_time_source(server::TimeSourceUs now_us) {
    time_source_ = std::move(now_us);
  }

  /// Wires tracing + metrics into every batch pipeline this provider
  /// runs (and into the shard runtime's queue accounting, when one
  /// exists). \p prefix namespaces the registry metric names — e.g.
  /// "shards4." in a bench that runs one provider per shard count.
  /// Call before traffic starts; idempotent (re-registration by name
  /// reuses the existing ids). Null sink members switch that endpoint
  /// off.
  void set_observability(const obs::Sink& sink, const std::string& prefix = "");

  /// First-seen redemption transcript for \p id (the fraud-evidence
  /// basis), if that id has been freshly redeemed.
  std::optional<RedemptionTranscript> TranscriptFor(
      const rel::LicenseId& id) const;

  /// The shard runtime, or null when redeem_shards == 0. The non-const
  /// overload exists for harnesses (tests, benches) that park or probe
  /// the workers directly.
  const server::ServerRuntime* Runtime() const { return runtime_.get(); }
  server::ServerRuntime* Runtime() { return runtime_.get(); }

  // -- revocation & fraud ---------------------------------------------------

  const store::RevocationList& Crl() const { return crl_; }

  /// Revokes a pseudonym key (or device id) directly.
  void Revoke(const rel::KeyFingerprint& key_id);

  /// Fraud evidence accumulated from double-redemption attempts, ready to
  /// hand to the TTP. Calling this drains the queue.
  std::vector<FraudEvidence> TakeFraudEvidence();

  // -- introspection --------------------------------------------------------

  std::size_t SpentSetSize() const {
    return runtime_ != nullptr ? runtime_->SpentSize() : spent_.Size();
  }
  std::uint64_t LicensesIssued() const { return licenses_issued_; }
  std::uint64_t DoubleRedemptionAttempts() const {
    return double_redemptions_;
  }
  /// Number of distinct pseudonyms seen across all operations — the upper
  /// bound on what a curious CP can profile (RF-4).
  std::size_t DistinctPseudonymsSeen() const { return pseudonyms_seen_.size(); }

 private:
  /// What the pure signing stage of a redemption produces. The transcript
  /// is always built (it is the fraud-evidence basis for double
  /// redemptions); the license only when the spend was fresh.
  struct IssuedRedemption {
    Status status = Status::kBadRequest;
    rel::License license;  ///< valid when status == kOk
    RedemptionTranscript transcript;
  };

  /// Pure part of license issuance: fresh id, content-key wrapping and
  /// issuer signature, drawing randomness only from \p rng. Const and
  /// thread-safe against concurrent callers (reads catalog_/key_/clock_,
  /// which never change during a batch); pair with RecordIssued on the
  /// dispatch thread.
  rel::License BuildLicense(rel::LicenseKind kind, rel::ContentId content_id,
                            const rel::Rights& rights,
                            const crypto::RsaPublicKey* bound_key,
                            bignum::RandomSource* rng) const;
  /// State-mutating part of issuance: issued-key map + counters.
  void RecordIssued(const rel::License& license,
                    const crypto::RsaPublicKey* bound_key);
  /// Dispatch-thread convenience: BuildLicense(rng_) + RecordIssued.
  rel::License IssueLicense(rel::LicenseKind kind, rel::ContentId content_id,
                            const rel::Rights& rights,
                            const crypto::RsaPublicKey* bound_key);
  RedemptionTranscript MakeTranscript(const rel::LicenseId& id,
                                      const PseudonymCertificate& cert) const;
  bool MarkSpent(const rel::LicenseId& id);
  /// Per-item RNG fork for the redemption issue stage, domain-tagged by
  /// the redeemed id. Forked on the dispatch thread in item-index order,
  /// so a fixed seed yields bit-identical issuance whether the signing
  /// then runs serially or on the shard workers.
  crypto::HmacDrbg RedeemIssueRng(const rel::LicenseId& redeemed_id);
  /// Per-item RNG fork for the purchase issue stage, domain-tagged by a
  /// monotonic issuance nonce assigned in item-index order.
  crypto::HmacDrbg PurchaseIssueRng();
  /// Per-item RNG fork for the exchange issue stage, domain-tagged by
  /// the retired license id (same rule as RedeemIssueRng).
  crypto::HmacDrbg ExchangeIssueRng(const rel::LicenseId& retired_id);
  /// Shared mutate stage of the redeem and exchange pipelines: marks
  /// \p eligible items' license ids spent on their home shards
  /// (SpendBatch, shedding) or serially, in index order.
  std::vector<Status> SpendEligible(
      const std::vector<std::size_t>& eligible,
      const std::function<const rel::LicenseId&(std::size_t)>& id_of);
  /// Pure signing stage of one redemption: transcript always, fresh
  /// license when \p spend_status is kOk. Const and thread-safe (runs on
  /// shard workers); all randomness comes from \p rng.
  IssuedRedemption SignRedemption(const RedeemItem& item, Status spend_status,
                                  bignum::RandomSource* rng) const;
  /// The issue-stage executor every pipeline shares: runs
  /// \p sign_item(k) for every k in [0, count) — fanned out to the
  /// signer pool when one exists (measured time accrued on the pool
  /// workers' sim clocks), else to the shard workers (ditto on the
  /// shard sim clocks) when the runtime exists, serially otherwise.
  /// \p sign_item must be thread-safe and write only disjoint state per
  /// k; ForEachIssue blocks until every call has returned.
  void ForEachIssue(std::size_t count,
                    const std::function<void(std::size_t)>& sign_item);
  /// ForEachIssue wrapped for BatchPipeline::Run.
  server::BatchPipeline::IssueExecutor PipelineExecutor();
  /// State-mutating stage of one redemption: transcript map, fraud
  /// evidence, pseudonym bookkeeping, issued-key map. Dispatch thread
  /// only, in item-index order.
  PurchaseResult CommitRedemption(const RedeemItem& item,
                                  IssuedRedemption issued);

  // Heap-boxed per-batch state for the shared plan builders: the
  // synchronous batch calls and the streaming Stream* calls run the SAME
  // plans, but a streamed batch outlives its Submit call, so everything
  // a plan touches lives in one of these (kept alive by the shared_ptr
  // the plan's callbacks capture) instead of a caller's stack frame.
  struct RedeemBatchState;
  struct PurchaseBatchState;
  struct ExchangeBatchState;
  server::BatchPipeline::Plan BuildRedeemPlan(
      std::shared_ptr<RedeemBatchState> st);
  server::BatchPipeline::Plan BuildPurchasePlan(
      std::shared_ptr<PurchaseBatchState> st);
  server::BatchPipeline::Plan BuildExchangePlan(
      std::shared_ptr<ExchangeBatchState> st);

  ContentProviderConfig config_;
  bignum::RandomSource* rng_;
  const Clock* clock_;
  PaymentProvider* bank_;
  crypto::RsaPublicKey ca_key_;
  crypto::RsaPrivateKey key_;
  crypto::RsaPublicKey public_key_;

  struct CatalogEntry {
    Offer offer;
    std::array<std::uint8_t, 32> content_key;
    EncryptedContent encrypted;
  };
  std::map<rel::ContentId, CatalogEntry> catalog_;
  rel::ContentId next_content_id_ = 1;

  store::SpentSet spent_;  ///< unsharded path; unused when runtime_ is set
  std::unique_ptr<store::AppendLog> spent_journal_;
  std::unique_ptr<server::ServerRuntime> runtime_;  ///< sharded path
  std::unique_ptr<server::SignerPool> signer_pool_;  ///< dedicated issue pool
  std::unique_ptr<server::StagedBatchPipeline> staged_;  ///< streaming front
  server::BatchVerifier verifier_;
  store::RevocationList crl_;
  // First-seen transcript per redeemed license id (fraud evidence basis).
  std::map<rel::LicenseId, RedemptionTranscript> redemption_transcripts_;
  std::vector<FraudEvidence> fraud_queue_;
  std::set<rel::KeyFingerprint> pseudonyms_seen_;
  // Pseudonym keys licenses were bound to, by fingerprint. Needed to verify
  // transfer possession proofs (the license itself carries only the
  // fingerprint).
  std::map<rel::KeyFingerprint, crypto::RsaPublicKey> issued_keys_;

  std::uint64_t licenses_issued_ = 0;
  std::uint64_t double_redemptions_ = 0;
  std::uint64_t purchase_issue_nonce_ = 0;  ///< purchase fork domain tags
  PipelineTimings last_timings_;
  server::TimeSourceUs time_source_;  ///< null = steady_clock
  // Per-flow pipeline observability (null endpoints = off).
  server::PipelineObs obs_redeem_;
  server::PipelineObs obs_purchase_;
  server::PipelineObs obs_exchange_;
};

}  // namespace core
}  // namespace p2drm

#endif  // P2DRM_CORE_CONTENT_PROVIDER_H_
